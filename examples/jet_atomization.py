"""Primary jet atomization (paper Sec. IV), scaled to laptop size.

A perturbed liquid column enters from the left wall; the CHNS stepper
advances the flow while the local-Cahn identifier drives AMR every few
steps — the interface is kept at the interface level and detected
filaments/droplets at the (deeper) feature level.  Prints the evolving
level histogram and the paper's "equivalent uniform grid points" metric.

The case is the registered ``jet_2d`` scenario (:mod:`repro.scenarios`);
``--vtk`` switches on the scenario's VTK time series (written into
``jet_output/vtk/``).  Exits non-zero on solver failure.

Run:  python examples/jet_atomization.py [--vtk]
"""

import sys

import numpy as np

from repro.amr.driver import level_fractions, uniform_equivalent_points
from repro.scenarios import build, run_scenario


def print_step(state) -> None:
    d = state.stepper.diagnostics()
    fr = level_fractions(state.mesh)
    hist = " ".join(
        f"L{l}:{f:.0%}"
        for l, f in zip(fr["levels"], fr["element_fraction"])
        if f > 0
    )
    print(f"step {state.step - 1}: {d.n_elems:5d} elems | phi in "
          f"[{d.phi_min:+.2f}, {d.phi_max:+.2f}] | "
          f"|v|max {np.abs(state.vel).max():.2f} | {hist}")


def main() -> int:
    write_vtk = "--vtk" in sys.argv
    config = build("jet_2d")
    config.outputs.vtk = write_vtk

    last = {}

    def on_step(state):
        print_step(state)
        last["mesh"] = state.mesh
        last["stepper"] = state.stepper

    result = run_scenario(
        config, on_step=on_step, workdir="jet_output" if write_vtk else None
    )
    if result.status != "succeeded":
        print(f"FAILED ({result.status}): {result.error}", file=sys.stderr)
        return 1

    mesh = last["mesh"]
    equiv = uniform_equivalent_points(mesh)
    print(f"\nfinal: levels {mesh.tree.levels.min()}.."
          f"{mesh.tree.levels.max()}, {mesh.n_dofs} DOFs vs {equiv:.3g} "
          f"equivalent uniform points ({equiv / mesh.n_dofs:.0f}x "
          "compression).")
    print("(The paper's production run: 3D, level 15, 35 trillion equivalent "
          "points, 64x beyond prior state of the art.)")
    t = last["stepper"].timers
    print(f"block times: CH {t.ch:.2f}s NS {t.ns:.2f}s PP {t.pp:.2f}s "
          f"VU {t.vu:.2f}s remesh {t.remesh:.2f}s")
    if write_vtk:
        print("VTK snapshots written to jet_output/vtk/ (open in ParaView)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
