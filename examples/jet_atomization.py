"""Primary jet atomization (paper Sec. IV), scaled to laptop size.

A perturbed liquid column enters from the left wall; the CHNS stepper
advances the flow while the local-Cahn identifier drives AMR every few
steps — the interface is kept at the interface level and detected
filaments/droplets at the (deeper) feature level.  Prints the evolving
level histogram and the paper's "equivalent uniform grid points" metric.

Run:  python examples/jet_atomization.py
"""

import sys

import numpy as np

from repro.amr.driver import (
    RemeshConfig,
    level_fractions,
    uniform_equivalent_points,
)
from repro.chns.initial_conditions import jet_column
from repro.chns.params import CHNSParams
from repro.chns.timestepper import CHNSTimeStepper, jet_inflow_bc
from repro.core.identifier import IdentifierConfig
from repro.mesh.mesh import mesh_from_field

CN = 0.03
MAX_LEVEL = 6
FEATURE_LEVEL = 7


def jet_phi(x):
    return jet_column(
        x, half_width=0.1, length=0.35, Cn=CN, perturb_amp=0.15, perturb_k=6
    )


def main() -> None:
    mesh = mesh_from_field(jet_phi, 2, max_level=MAX_LEVEL, min_level=3,
                           threshold=0.95)
    params = CHNSParams(
        Re=200.0, We=4.0, Pe=200.0, Cn=CN, rho_minus=0.2, eta_minus=0.2
    )
    stepper = CHNSTimeStepper(
        mesh,
        params,
        velocity_bc=lambda m: jet_inflow_bc(m, half_width=0.1, speed=1.0),
        remesh_config=RemeshConfig(
            coarse_level=3,
            interface_level=MAX_LEVEL,
            feature_level=FEATURE_LEVEL,
            identifier=IdentifierConfig(delta=-0.8, n_erode=4,
                                        n_extra_dilate=3),
        ),
        remesh_every=2,
    )
    stepper.initialize(jet_phi)
    print(f"initial mesh: {mesh.n_elems} elements "
          f"(equivalent uniform points: {uniform_equivalent_points(mesh):.3g})")

    write_vtk = "--vtk" in sys.argv
    if write_vtk:
        from repro.io.vtk import write_time_series

    dt = 5e-4
    for step in range(6):
        stepper.step(dt)
        if write_vtk:
            write_time_series(
                "jet_output", "jet", step, stepper.mesh,
                point_data={"phi": stepper.phi, "p": stepper.p},
                cell_data={"level": stepper.mesh.tree.levels.astype(float)},
            )
        d = stepper.diagnostics()
        fr = level_fractions(stepper.mesh)
        hist = " ".join(
            f"L{l}:{f:.0%}"
            for l, f in zip(fr["levels"], fr["element_fraction"])
            if f > 0
        )
        print(f"step {step}: {d.n_elems:5d} elems | phi in "
              f"[{d.phi_min:+.2f}, {d.phi_max:+.2f}] | "
              f"|v|max {np.abs(stepper.vel).max():.2f} | {hist}")

    mesh = stepper.mesh
    equiv = uniform_equivalent_points(mesh)
    print(f"\nfinal: levels {mesh.tree.levels.min()}..{mesh.tree.levels.max()}, "
          f"{mesh.n_dofs} DOFs vs {equiv:.3g} equivalent uniform points "
          f"({equiv / mesh.n_dofs:.0f}x compression).")
    print("(The paper's production run: 3D, level 15, 35 trillion equivalent "
          "points, 64x beyond prior state of the art.)")
    t = stepper.timers
    print(f"block times: CH {t.ch:.2f}s NS {t.ns:.2f}s PP {t.pp:.2f}s "
          f"VU {t.vu:.2f}s remesh {t.remesh:.2f}s")
    if write_vtk:
        print("VTK snapshots written to jet_output/ (open in ParaView)")


if __name__ == "__main__":
    main()
