"""Checkpoint / restart with a growing process count (paper Sec. II-E).

A CHNS drop-relaxation runs a few steps, checkpoints, and restarts on twice
as many (simulated) ranks: the extra ranks begin inactive (the checkpoint is
loaded inside the active sub-communicator) and receive elements at the first
repartition — exactly the paper's protocol for scaling a long simulation up
mid-run as the mesh grows.

Run:  python examples/checkpoint_restart.py
"""

import os
import tempfile

import numpy as np

from repro.amr.checkpoint import (
    rebalance_all,
    restart_distributed,
    save_checkpoint,
)
from repro.chns.ch_solver import CHSolver
from repro.chns.initial_conditions import drop
from repro.chns.params import CHNSParams
from repro.mesh.mesh import Mesh, mesh_from_field
from repro.mpi.comm import run_spmd


def main() -> None:
    params = CHNSParams(Pe=30.0, Cn=0.05)

    def phi0(x):
        return drop(x, (0.5, 0.5), 0.22, params.Cn)

    mesh = mesh_from_field(phi0, 2, max_level=5, min_level=3, threshold=0.95)
    ch = CHSolver(mesh, params)
    phi = mesh.interpolate(phi0)
    mu = ch.initial_mu(phi)
    print(f"run phase 1 (serial stand-in for a 2-rank job): "
          f"{mesh.n_elems} elements")
    for _ in range(3):
        res = ch.solve(phi, mu, None, dt=1e-3)
        phi, mu = res.phi, res.mu
        if not (res.newton.converged and np.all(np.isfinite(phi))):
            raise SystemExit(
                f"CH solve diverged (residual {res.newton.residual:.2e}) — "
                "refusing to checkpoint a bad state"
            )

    path = os.path.join(tempfile.mkdtemp(), "chns_ckpt")
    save_checkpoint(path, mesh.tree, {"phi": phi, "mu": mu}, nprocs=2)
    print(f"checkpoint written by nprocs=2 -> {path}.npz")

    def restart_on_four(comm):
        local, fields, active = restart_distributed(comm, path)
        pre = len(local)
        local = rebalance_all(comm, local)
        return (comm.rank, pre, len(local), active is not None)

    print("\nrestart on 4 simulated ranks:")
    for rank, pre, post, was_active in run_spmd(4, restart_on_four):
        state = "active" if was_active else "inactive"
        print(f"  rank {rank}: {state} at load ({pre:3d} elems) "
              f"-> {post:3d} elems after repartition")

    total = sum(r[2] for r in run_spmd(4, restart_on_four))
    assert total == mesh.n_elems
    print(f"\nall {mesh.n_elems} elements redistributed; previously inactive "
          f"ranks now hold work — the paper's Sec. II-E restart protocol.")


if __name__ == "__main__":
    main()
