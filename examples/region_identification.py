"""Region identification demo (paper Fig. 1): erosion/dilation pipeline.

Builds a scene with a large drop, a small droplet, and a thin filament;
runs both the uniform-grid image pipeline and the octree LOCALCAHNIDENTIFIER
(Algorithm 1), and renders ASCII maps of what gets flagged for local-Cahn
reduction.

Run:  python examples/region_identification.py
"""

import numpy as np

from repro.core import image
from repro.core.identifier import IdentifierConfig, identify_local_cahn
from repro.mesh.mesh import mesh_from_field


def scene_phi(x):
    small = np.linalg.norm(x - np.array([0.2, 0.25]), axis=-1) - 0.05
    big = np.linalg.norm(x - np.array([0.65, 0.6]), axis=-1) - 0.2
    y, xx = x[..., 1], x[..., 0]
    fil = np.maximum(np.abs(y - 0.6) - 0.02, (xx - 0.1) * (xx - 0.45))
    return np.tanh(np.minimum(np.minimum(small, big), fil) / 0.009)


def ascii_map(grid, chars=" .##"):  # 3 = immersed AND flagged
    """Downsample a 2D array of {0,1,2} codes to a terminal map."""
    n = grid.shape[0]
    step = max(n // 48, 1)
    rows = []
    for j in range(0, n, step)[::-1] if False else range(n - 1, -1, -step):
        rows.append("".join(chars[min(int(grid[i, j]), 3)] for i in range(0, n, step)))
    return "\n".join(rows)


def main() -> None:
    # ----------------------------------------------------- image pipeline
    n = 257
    xs = np.linspace(0, 1, n)
    X, Y = np.meshgrid(xs, xs, indexing="ij")
    phi = scene_phi(np.stack([X, Y], axis=-1))
    bw = image.threshold(phi, -0.8)
    roi = image.identify_regions(phi, delta=-0.8, n_erode=12, n_extra_dilate=3)
    print("Phase layout ('.' = immersed phase, '#' = flagged region):\n")
    print(ascii_map(bw + 2 * roi.astype(np.int8)))
    print(
        f"\nimage pipeline: {int(bw.sum())} immersed pixels, "
        f"{int(roi.sum())} flagged (small droplet + filament only)"
    )

    # --------------------------------------------------- octree identifier
    mesh = mesh_from_field(scene_phi, 2, max_level=7, min_level=4, threshold=0.9)
    res = identify_local_cahn(
        mesh,
        mesh.interpolate(scene_phi),
        IdentifierConfig(delta=-0.8, n_erode=5, n_extra_dilate=3,
                         cn_fine=0.5, cn_coarse=1.0),
    )
    centers = mesh.elem_centers()[res.detected]
    print(
        f"\noctree identifier: {mesh.n_elems} elements "
        f"(levels {mesh.tree.levels.min()}..{mesh.tree.levels.max()}), "
        f"{int(res.detected.sum())} flagged for reduced Cahn"
    )
    if len(centers):
        print("flagged element centroid cloud spans "
              f"x in [{centers[:,0].min():.2f}, {centers[:,0].max():.2f}], "
              f"y in [{centers[:,1].min():.2f}, {centers[:,1].max():.2f}]")
    print(f"erode/dilate MATVEC sweeps: {res.stats.steps}, "
          f"elements visited: {res.stats.elements_visited}")

    # A silently-empty identification means the pipeline regressed: both
    # pipelines must flag something (droplet + filament) for exit 0.
    if not (roi.any() and res.detected.any()):
        raise SystemExit("region identification flagged nothing — regression")


if __name__ == "__main__":
    main()
