"""Quickstart: simulate a rising bubble with CHNS on an adaptive octree mesh.

Demonstrates the core public API in ~40 lines of user code:

* build an interface-refined, 2:1-balanced mesh from a phase field,
* set up the two-block CHNS projection stepper (CH/NS/PP/VU solves),
* time-step with buoyancy and track mass / energy / bounds diagnostics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.chns.initial_conditions import rising_bubble
from repro.chns.params import CHNSParams
from repro.chns.timestepper import CHNSTimeStepper, no_slip_bc
from repro.mesh.mesh import mesh_from_field


def main() -> None:
    params = CHNSParams(
        Re=50.0,  # Reynolds
        We=2.0,  # Weber (surface tension)
        Pe=100.0,  # Peclet (interface diffusion)
        Cn=0.06,  # Cahn (interface thickness)
        Fr=1.0,  # Froude (gravity on)
        rho_minus=0.3,  # light bubble in heavy fluid
        eta_minus=0.5,
    )

    def phi0(x):
        return rising_bubble(x, center=(0.5, 0.3), radius=0.15, Cn=params.Cn)

    mesh = mesh_from_field(phi0, dim=2, max_level=5, min_level=3, threshold=0.95)
    print(f"mesh: {mesh.n_elems} elements, {mesh.n_dofs} DOFs, "
          f"levels {mesh.tree.levels.min()}..{mesh.tree.levels.max()}")

    stepper = CHNSTimeStepper(mesh, params, velocity_bc=no_slip_bc)
    stepper.initialize(phi0)

    dt = 1e-3
    print(f"\n{'step':>4} {'mass':>10} {'energy':>10} {'|v|max':>8} "
          f"{'phi range':>18} {'bubble y':>9}")
    for step in range(8):
        stepper.step(dt)
        d = stepper.diagnostics()
        w = np.maximum(-stepper.phi, 0.0)
        y_com = float((stepper.mesh.dof_xy()[:, 1] * w).sum() / w.sum())
        print(
            f"{step:>4} {d.mass:>10.6f} {d.energy:>10.6f} "
            f"{np.abs(stepper.vel).max():>8.4f} "
            f"[{d.phi_min:>7.3f}, {d.phi_max:>6.3f}] {y_com:>9.4f}"
        )

    t = stepper.timers
    print(f"\nblock times: CH {t.ch:.2f}s  NS {t.ns:.2f}s  "
          f"PP {t.pp:.2f}s  VU {t.vu:.2f}s")
    print("done: buoyant bubble drifts upward while mass stays conserved.")


if __name__ == "__main__":
    main()
