"""Quickstart: simulate a rising bubble with CHNS on an adaptive octree mesh.

Since PR 6 this is a thin wrapper over the declarative scenario registry
(:mod:`repro.scenarios`): the whole case — domain, physics, initial
condition, boundary conditions, time stepping — is one registered config,
and the same config runs from the CLI (``python -m repro.scenarios run
rising_bubble_2d``) or inside a concurrent batch.

Exits non-zero if the solve fails or diverges, so shell pipelines and CI
can trust the exit code.

Run:  python examples/quickstart.py
"""

import sys

import numpy as np

from repro.scenarios import build, run_scenario


def print_step(state) -> None:
    d = state.stepper.diagnostics()
    w = np.maximum(-state.phi, 0.0)
    y_com = float((state.mesh.dof_xy()[:, 1] * w).sum() / w.sum())
    print(
        f"{state.step:>4} {d.mass:>10.6f} {d.energy:>10.6f} "
        f"{np.abs(state.vel).max():>8.4f} "
        f"[{d.phi_min:>7.3f}, {d.phi_max:>6.3f}] {y_com:>9.4f}"
    )


def main() -> int:
    config = build("rising_bubble_2d")  # the full (non-quick) variant
    print(f"scenario: {config.name}  solver={config.solver}  "
          f"levels {config.domain.min_level}..{config.domain.max_level}  "
          f"{config.time.n_steps} steps of dt={config.time.dt:g}")
    print(f"\n{'step':>4} {'mass':>10} {'energy':>10} {'|v|max':>8} "
          f"{'phi range':>18} {'bubble y':>9}")

    result = run_scenario(config, on_step=print_step)
    if result.status != "succeeded":
        print(f"FAILED ({result.status}): {result.error}", file=sys.stderr)
        return 1

    t = result.wall_s
    print(f"\n{result.steps_done} steps in {t:.2f}s "
          f"({result.newton_iterations} Newton / "
          f"{result.krylov_iterations} Krylov iterations, "
          f"{result.n_elems_final} elements)")
    print("done: buoyant bubble drifts upward while mass stays conserved.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
