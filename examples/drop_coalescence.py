"""Two-drop coalescence under Cahn-Hilliard dynamics with AMR.

Two nearby drops merge: the diffuse interfaces overlap, the neck forms and
the combined drop relaxes toward a circle while Cahn-Hilliard energy decays
monotonically and total phase mass is conserved — the two discrete
invariants the solver guarantees.  The mesh follows the interface through
the topology change via the remeshing driver.

Run:  python examples/drop_coalescence.py
"""

import numpy as np

from repro.amr.driver import RemeshConfig, remesh
from repro.chns.ch_solver import CHSolver
from repro.chns.free_energy import ginzburg_landau_energy, total_mass
from repro.chns.initial_conditions import two_drops
from repro.chns.params import CHNSParams
from repro.mesh.mesh import mesh_from_field


def main() -> None:
    params = CHNSParams(Pe=20.0, Cn=0.04)

    def phi0(x):
        return two_drops(x, (0.42, 0.5), 0.12, (0.62, 0.5), 0.1, params.Cn)

    mesh = mesh_from_field(phi0, 2, max_level=5, min_level=3, threshold=0.95)
    ch = CHSolver(mesh, params)
    phi = mesh.interpolate(phi0)
    mu = ch.initial_mu(phi)

    m0 = total_mass(mesh, phi)
    cfg = RemeshConfig(coarse_level=3, interface_level=5, feature_level=5)
    dt = 2e-3
    print(f"{'step':>4} {'elems':>6} {'mass drift':>11} {'energy':>9} "
          f"{'neck phi(0.52,0.5)':>19}")
    for step in range(10):
        res = ch.solve(phi, mu, None, dt)
        phi, mu = res.phi, res.mu
        if step % 3 == 2:  # follow the interface
            mesh, fields, _ = remesh(mesh, {"phi": phi, "mu": mu}, cfg)
            phi, mu = fields["phi"], fields["mu"]
            ch = CHSolver(mesh, params)
        neck = float(mesh.evaluate_at(phi, np.array([[0.52, 0.5]]))[0])
        print(f"{step:>4} {mesh.n_elems:>6} "
              f"{total_mass(mesh, phi) - m0:>11.2e} "
              f"{ginzburg_landau_energy(mesh, phi, params.Cn):>9.5f} "
              f"{neck:>19.3f}")

    print("\nneck phi dropping toward -1 = the drops have merged; "
          "energy decays; mass drift stays at solver/transfer tolerance.")


if __name__ == "__main__":
    main()
