"""Two-drop coalescence under Cahn-Hilliard dynamics with AMR.

Two nearby drops merge: the diffuse interfaces overlap, the neck forms and
the combined drop relaxes toward a circle while Cahn-Hilliard energy decays
monotonically and total phase mass is conserved — the two discrete
invariants the solver guarantees.  The mesh follows the interface through
the topology change via the remeshing driver.

The case itself is the registered ``coalescence_2d`` scenario
(:mod:`repro.scenarios`); this script only adds the per-step narration.
Exits non-zero on solver failure.

Run:  python examples/drop_coalescence.py
"""

import sys

import numpy as np

from repro.chns.free_energy import ginzburg_landau_energy, total_mass
from repro.scenarios import build, run_scenario

_m0 = None


def print_step(state) -> None:
    global _m0
    mesh, phi = state.mesh, state.phi
    mass = total_mass(mesh, phi)
    if _m0 is None:
        _m0 = mass
    neck = float(mesh.evaluate_at(phi, np.array([[0.52, 0.5]]))[0])
    print(f"{state.step:>4} {mesh.n_elems:>6} {mass - _m0:>11.2e} "
          f"{ginzburg_landau_energy(mesh, phi, 0.04):>9.5f} {neck:>19.3f}")


def main() -> int:
    config = build("coalescence_2d")
    print(f"scenario: {config.name}  Pe={config.physics['Pe']:g} "
          f"Cn={config.physics['Cn']:g}  remesh every "
          f"{config.refinement.remesh_every} steps")
    print(f"{'step':>4} {'elems':>6} {'mass drift':>11} {'energy':>9} "
          f"{'neck phi(0.52,0.5)':>19}")

    result = run_scenario(config, on_step=print_step)
    if result.status != "succeeded":
        print(f"FAILED ({result.status}): {result.error}", file=sys.stderr)
        return 1

    print("\nneck phi dropping toward -1 = the drops have merged; "
          "energy decays; mass drift stays at solver/transfer tolerance.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
