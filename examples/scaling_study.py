"""Scaling study driver: simulator measurements + paper-scale model curves.

Runs the distributed MATVEC on simulated ranks (real SPMD kernels with
metered communication), fits the ghost-surface coefficient, and prints the
machine-model reproduction of the paper's Fig. 4a/4b curves plus the Fig. 5
application breakdown.  This is the command-line version of the benchmark
suite's scaling experiments.

Run:  python examples/scaling_study.py [--backend thread|process|serial]

The backend flag picks the SPMD execution backend (see ``repro.runtime``):
threads (default, zero-copy), forked processes (true multi-core), or the
deterministic serial scheduler.  Measured counters are identical on every
backend; wall-clock differs.
"""

import argparse
import sys
import time

import numpy as np

from repro.fem.operators import stiffness_matrix
from repro.mesh.distributed import DistributedField
from repro.mesh.mesh import mesh_from_field
from repro.mpi.comm import run_spmd
from repro.mpi.stats import CommStats
from repro.perf.machine import MachineModel, parallel_efficiency, weak_efficiency
from repro.perf.model import ApplicationModel, paper_fig5_solvers


def measure_matvec(mesh, nprocs, n_iters=3, backend=None):
    Ke = stiffness_matrix(mesh.elem_h(), mesh.dim)
    u = np.ones(mesh.n_nodes)
    stats = CommStats()

    def fn(comm):
        df = DistributedField(comm, mesh)
        owned = df.from_global(u)
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(n_iters):
            owned = df.matvec(Ke[df.elem_lo : df.elem_hi], owned)
        comm.barrier()
        # A diverged/NaN kernel must fail the run, not print a time: the
        # rank exception surfaces as SpmdError and the script exits 1.
        if not np.all(np.isfinite(owned)):
            raise RuntimeError(f"non-finite MATVEC result on rank {comm.rank}")
        return (time.perf_counter() - t0) / n_iters

    times = run_spmd(nprocs, fn, stats=stats, backend=backend)
    return max(times), stats.snapshot()


def main() -> int:
    from repro.runtime import available_backends, default_backend_name

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--backend",
        default=None,
        choices=sorted(available_backends()),
        help="SPMD execution backend (default: $REPRO_SPMD_BACKEND or "
        "'thread')",
    )
    args = ap.parse_args()
    backend = args.backend

    def phi(x):
        return np.linalg.norm(x - 0.5, axis=1) - 0.3

    mesh = mesh_from_field(phi, 2, max_level=7, min_level=4, threshold=0.03)
    print(f"simulator mesh: {mesh.n_elems} elements")
    print(f"SPMD backend: {backend or default_backend_name()}\n")
    print("-- simulator: distributed MATVEC (real kernels, metered) --")
    print(f"{'ranks':>5} {'ms/pass':>9} {'msgs':>6} {'bytes':>9}")
    for p in (1, 2, 4, 8):
        t, snap = measure_matvec(mesh, p, backend=backend)
        print(f"{p:>5} {t*1e3:>9.2f} {snap['messages']:>6} "
              f"{snap['bytes_sent']:>9}")

    model = MachineModel()
    print("\n-- model: Fig. 4a strong scaling (13M elements) --")
    procs = [224, 448, 896, 1792, 3584, 7168, 14336, 28672]
    times = np.array([model.matvec_time(13e6, p) for p in procs])
    eff = parallel_efficiency(times, np.array(procs))
    for p, t, e in zip(procs, times, eff):
        print(f"{p:>6} procs: {t:8.4f} s  (eff {e:.0%})")
    print("paper anchors: 2.87 s @ 224, 0.027 s @ 28672, 81% efficiency")

    print("\n-- model: Fig. 4b weak scaling (35K elements/core) --")
    wprocs = [28, 112, 448, 1792, 7168, 14336]
    wt = np.array([model.matvec_time(35_000 * p, p) for p in wprocs])
    for p, t, e in zip(wprocs, wt, weak_efficiency(wt)):
        print(f"{p:>6} procs: {t:8.3f} s  (weak eff {e:.0%})")
    print("paper anchors: 1.58 s @ 28 -> 1.9 s @ 14336 (82%)")

    print("\n-- model: Fig. 5 application breakdown (700M elements) --")
    app = ApplicationModel(machine=model, n_elems=700e6, dim=3,
                           solvers=paper_fig5_solvers())
    fprocs = [14336, 28672, 57344, 114688]
    b = app.breakdown(fprocs)
    header = "block  " + "".join(f"{p:>10}" for p in fprocs)
    print(header)
    for name in ("ch", "ns", "pp", "vu", "remesh"):
        print(f"{name:<6} " + "".join(f"{x:>10.2f}" for x in b[name]))
    print("\nspeedups for 8x procs (paper: NS 6.6, PP 5.3, VU 5.5, CH 4.0):")
    for name in ("ns", "pp", "vu", "ch"):
        print(f"  {name.upper()}: {app.speedup(name, fprocs[0], fprocs[-1]):.2f}x")

    if not (np.all(np.isfinite(times)) and np.all(np.isfinite(wt))):
        print("ERROR: non-finite model timings", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
