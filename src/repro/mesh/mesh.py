"""Adaptive octree FEM mesh.

Wraps a 2:1-balanced linear octree and its CG node table with the geometric
conveniences used by the solvers: unit-cube coordinates, element sizes,
boundary masks, and field sampling.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

import numpy as np

from ..octree import morton
from ..octree.balance import balance, is_balanced
from ..octree.tree import Octree
from .nodes import NodeTable, enumerate_nodes


class Mesh:
    """FEM view of a balanced linear octree over the unit cube.

    Every ``Mesh`` instance carries a process-unique ``generation`` token.
    Symbolic plans precomputed against a mesh (``repro.fem.plan``, the
    ghost-exchange schedules in ``repro.mesh.distributed``) are keyed on it:
    an AMR remesh builds a *new* ``Mesh`` with a new generation, so every
    cached plan bound to the old topology invalidates cleanly.
    """

    _generation_counter = itertools.count()

    def __init__(self, tree: Octree, *, check_balance: bool = True):
        if check_balance and not is_balanced(tree):
            raise ValueError("Mesh requires a 2:1-balanced octree; call balance()")
        self.tree = tree
        self.dim = tree.dim
        self.nodes: NodeTable = enumerate_nodes(tree)
        self._scale = float(1 << morton.MAX_DEPTH)
        self.generation = next(Mesh._generation_counter)
        self._elem_h: Optional[np.ndarray] = None

    # ------------------------------------------------------------- factory

    @classmethod
    def from_tree(cls, tree: Octree) -> "Mesh":
        """Balance (if needed) and build."""
        b = tree if is_balanced(tree) else balance(tree)
        return cls(b, check_balance=False)

    # ------------------------------------------------------------ geometry

    @property
    def n_elems(self) -> int:
        return len(self.tree)

    @property
    def n_dofs(self) -> int:
        return self.nodes.n_dofs

    @property
    def n_nodes(self) -> int:
        return self.nodes.n_nodes

    def node_xy(self) -> np.ndarray:
        """Node coordinates in the unit cube, shape (n_nodes, dim)."""
        return self.nodes.coords / self._scale

    def dof_xy(self) -> np.ndarray:
        """Coordinates of DOF-carrying (non-hanging) nodes."""
        return self.nodes.coords[self.nodes.node_of_dof] / self._scale

    def elem_h(self) -> np.ndarray:
        """Element side lengths in unit-cube units, shape (n_elems,).

        Cached: the octree backing a ``Mesh`` never mutates (adaptation
        builds a new ``Mesh``), and this array feeds every elemental-operator
        evaluation in the solver hot path.
        """
        if self._elem_h is None:
            self._elem_h = self.tree.sizes().astype(np.float64) / self._scale
        return self._elem_h

    def elem_centers(self) -> np.ndarray:
        return self.tree.centers() / self._scale

    # ----------------------------------------------------------- boundaries

    def boundary_node_mask(self) -> np.ndarray:
        """Nodes on the unit-cube boundary."""
        c = self.nodes.coords
        hi = 1 << morton.MAX_DEPTH
        return np.any((c == 0) | (c == hi), axis=1)

    def boundary_dof_mask(self) -> np.ndarray:
        return self.boundary_node_mask()[self.nodes.node_of_dof]

    def face_dof_mask(self, axis: int, side: int) -> np.ndarray:
        """DOFs on one face of the cube: ``side`` 0 (low) or 1 (high)."""
        c = self.nodes.coords[self.nodes.node_of_dof]
        hi = 1 << morton.MAX_DEPTH
        target = 0 if side == 0 else hi
        return c[:, axis] == target

    # ------------------------------------------------------------- sampling

    def interpolate(self, f: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """DOF vector of a function sampled at DOF node coordinates."""
        return np.asarray(f(self.dof_xy()))

    def node_values(self, u: np.ndarray) -> np.ndarray:
        """All-node values (hanging interpolated) of a DOF vector."""
        return self.nodes.node_values(u)

    def elem_gather(self, u: np.ndarray) -> np.ndarray:
        """Per-element corner values (n_elems, 2**dim[, k]) of a DOF vector.

        This is the paper's GhostRead + elemental copy: hanging corners
        receive interpolated values automatically through ``P``.
        """
        nv = self.nodes.node_values(u)
        return nv[self.nodes.elem_nodes]

    def elem_scatter(self, contrib: np.ndarray) -> np.ndarray:
        """Accumulate per-element corner contributions into a DOF vector
        (GhostWrite with ADD_VALUES semantics): ``P.T`` applied to the nodal
        accumulation."""
        en = self.nodes.elem_nodes
        if contrib.ndim == 2:
            acc = np.zeros(self.n_nodes)
            np.add.at(acc, en.ravel(), contrib.ravel())
        else:
            k = contrib.shape[2]
            acc = np.zeros((self.n_nodes, k))
            np.add.at(acc, en.ravel(), contrib.reshape(-1, k))
        return self.nodes.accumulate(acc)

    def evaluate_at(self, u: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Evaluate the FE field at arbitrary unit-cube points."""
        points = np.asarray(points, dtype=np.float64)
        grid = np.clip(
            (points * self._scale).astype(np.int64), 0, (1 << morton.MAX_DEPTH) - 1
        )
        elems = self.tree.locate_points(grid)
        if np.any(elems < 0):
            raise ValueError("point outside the mesh domain")
        a = self.tree.anchors[elems]
        s = self.tree.sizes()[elems].astype(np.float64)
        xi = np.clip((points * self._scale - a) / s[:, None], 0.0, 1.0)
        corner_vals = self.node_values(u)[self.nodes.elem_nodes[elems]]
        nc = 1 << self.dim
        w = np.ones((len(points), nc))
        for c in range(nc):
            for axis in range(self.dim):
                bit = (c >> axis) & 1
                w[:, c] *= xi[:, axis] if bit else (1.0 - xi[:, axis])
        if corner_vals.ndim == 3:
            return np.einsum("pc,pck->pk", w, corner_vals)
        return np.einsum("pc,pc->p", w, corner_vals)


def mesh_from_field(
    field: Callable[[np.ndarray], np.ndarray],
    dim: int,
    *,
    max_level: int,
    min_level: int = 2,
    threshold: float = 1.0,
) -> Mesh:
    """Convenience: interface-refined, balanced mesh from a level-set-like
    field (see :func:`repro.octree.build.tree_from_function`)."""
    from ..octree.build import tree_from_function

    t = tree_from_function(
        dim, field, max_level=max_level, min_level=min_level, threshold=threshold
    )
    return Mesh.from_tree(t)
