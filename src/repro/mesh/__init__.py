"""Adaptive FEM meshes with hanging nodes; inter-grid transfer."""

from .distributed import DistributedField  # noqa: F401
from .intergrid import (  # noqa: F401
    par_transfer_node_centered,
    transfer_cell_centered,
    transfer_node_centered,
)
from .mesh import Mesh, mesh_from_field  # noqa: F401
from .nodes import NodeTable, enumerate_nodes  # noqa: F401
