"""Nodal enumeration for continuous-Galerkin FEM on 2:1-balanced octrees.

Linear CG elements place nodes at element corners.  On an adaptive octree a
corner of a fine element may lie in the interior of a coarser neighbor's face
or edge — a *hanging* node.  Hanging nodes carry no degree of freedom; their
values interpolate multilinearly from the coarse element's corner nodes (the
paper, Sec. II-B2, challenge 3: thresholded fields take values strictly
between the binary limits exactly at these nodes).

The enumeration is mesh-free in the paper's sense: nodes are identified by
their location code only, and hangingness is decided by point-location
queries against the leaf set — no neighbor lists are stored.

The central product is the interpolation matrix ``P`` with shape
``(n_nodes, n_dofs)``: for any vector of independent DOFs ``u``, ``P @ u``
gives values at *all* nodes (hanging included).  Every FEM kernel downstream
(MATVEC, assembly, erosion/dilation) is expressed through ``P`` and its
transpose, which is exactly the gather/scatter structure of the paper's
elemental loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..octree import morton
from ..octree.tree import Octree

_PACK_BITS = morton.MAX_DEPTH + 1  # node coords span [0, 2**MAX_DEPTH] inclusive


def pack_points(points: np.ndarray, dim: int) -> np.ndarray:
    """Unique uint64 key per grid point (coords may equal 2**MAX_DEPTH)."""
    points = np.asarray(points, dtype=np.uint64)
    out = np.zeros(points.shape[:-1], dtype=np.uint64)
    for axis in range(dim):
        out |= points[..., axis] << np.uint64(axis * _PACK_BITS)
    return out


def unpack_points(keys: np.ndarray, dim: int) -> np.ndarray:
    keys = np.asarray(keys, dtype=np.uint64)
    mask = np.uint64((1 << _PACK_BITS) - 1)
    out = np.zeros(keys.shape + (dim,), dtype=np.int64)
    for axis in range(dim):
        out[..., axis] = ((keys >> np.uint64(axis * _PACK_BITS)) & mask).astype(
            np.int64
        )
    return out


@dataclass
class NodeTable:
    """Nodes, element connectivity, hanging-node interpolation."""

    coords: np.ndarray  # (n_nodes, dim) integer grid coords
    elem_nodes: np.ndarray  # (n_elems, 2**dim) node indices, Morton corner order
    is_hanging: np.ndarray  # (n_nodes,) bool
    dof_of_node: np.ndarray  # (n_nodes,) dof index or -1 for hanging
    node_of_dof: np.ndarray  # (n_dofs,) node index
    P: sp.csr_matrix  # (n_nodes, n_dofs) interpolation

    @property
    def n_nodes(self) -> int:
        return len(self.coords)

    @property
    def n_dofs(self) -> int:
        return len(self.node_of_dof)

    def node_values(self, dof_values: np.ndarray) -> np.ndarray:
        """Values at every node (hanging nodes interpolated): ``P @ u``.

        Supports multi-DOF arrays of shape ``(n_dofs, k)``.
        """
        return self.P @ dof_values

    def accumulate(self, node_accum: np.ndarray) -> np.ndarray:
        """Scatter-add nodal contributions back to DOFs: ``P.T @ a``."""
        return self.P.T @ node_accum


def enumerate_nodes(tree: Octree) -> NodeTable:
    """Enumerate CG nodes of a 2:1-balanced linear octree."""
    dim = tree.dim
    nc = 1 << dim
    corners = tree.corners()  # (N, nc, dim)
    packed = pack_points(corners, dim)
    uniq, inv = np.unique(packed, return_inverse=True)
    elem_nodes = inv.reshape(len(tree), nc).astype(np.int64)
    coords = unpack_points(uniq, dim)
    n_nodes = len(coords)

    # --- find touching leaves via probe points p + off, off in {0,-1}^dim ---
    offsets = np.zeros((nc, dim), dtype=np.int64)
    for c in range(nc):
        for axis in range(dim):
            offsets[c, axis] = -((c >> axis) & 1)
    probes = coords[:, None, :] + offsets[None, :, :]  # (M, nc, dim)
    bound = 1 << morton.MAX_DEPTH
    valid = np.all((probes >= 0) & (probes < bound), axis=-1)
    touch = np.full((n_nodes, nc), -1, dtype=np.int64)
    flat_ok = valid.reshape(-1)
    flat_pts = probes.reshape(-1, dim)
    loc = np.full(len(flat_pts), -1, dtype=np.int64)
    if np.any(flat_ok):
        loc[flat_ok] = tree.locate_points(flat_pts[flat_ok])
    touch = loc.reshape(n_nodes, nc)

    # --- hangingness: p must be a corner of every touching leaf -------------
    t_idx = np.where(touch >= 0, touch, 0)
    t_anchor = tree.anchors[t_idx]  # (M, nc, dim)
    t_size = tree.sizes()[t_idx]  # (M, nc)
    rel = coords[:, None, :] - t_anchor
    is_corner = np.all(
        (rel == 0) | (rel == t_size[..., None]), axis=-1
    )  # (M, nc)
    non_corner = (touch >= 0) & ~is_corner
    is_hanging = np.any(non_corner, axis=1)

    # --- interpolation parents for hanging nodes ----------------------------
    # Use the coarsest touching leaf for which the node is interior to a
    # face/edge; multilinear evaluation in that element gives the weights.
    dof_of_node = np.full(n_nodes, -1, dtype=np.int64)
    dof_of_node[~is_hanging] = np.arange(int((~is_hanging).sum()))
    node_of_dof = np.nonzero(~is_hanging)[0].astype(np.int64)
    n_dofs = len(node_of_dof)

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    # Non-hanging rows: identity.
    nh = ~is_hanging
    rows.append(np.nonzero(nh)[0])
    cols.append(dof_of_node[nh])
    vals.append(np.ones(n_dofs))

    h_idx = np.nonzero(is_hanging)[0]
    if len(h_idx):
        # Pick per hanging node the touching leaf with minimum level among
        # the non-corner ones.
        lev = np.where(non_corner[h_idx], tree.levels[t_idx[h_idx]], 10**9)
        pick = np.argmin(lev, axis=1)
        leaf = touch[h_idx, pick]
        a = tree.anchors[leaf]
        s = tree.sizes()[leaf].astype(np.float64)
        xi = (coords[h_idx] - a) / s[:, None]  # in [0,1]^dim
        # Multilinear weights over the leaf's 2**dim corners.
        w = np.ones((len(h_idx), nc))
        for c in range(nc):
            for axis in range(dim):
                bit = (c >> axis) & 1
                w[:, c] *= xi[:, axis] if bit else (1.0 - xi[:, axis])
        # Corner node ids of the chosen leaves.
        corner_nodes = elem_nodes[leaf]  # works because leaf is an element idx
        keep = w > 1e-12
        r = np.repeat(h_idx, keep.sum(axis=1))
        c_nodes = corner_nodes[keep]
        weights = w[keep]
        # Resolve chains: parents that are themselves hanging get substituted
        # until only DOF-carrying nodes remain (bounded by MAX_DEPTH).
        entries = {"r": r, "n": c_nodes, "w": weights}
        for _ in range(morton.MAX_DEPTH + 1):
            hang_par = is_hanging[entries["n"]]
            if not np.any(hang_par):
                break
            # Keep resolved entries; expand hanging parents one level.
            keep_r = entries["r"][~hang_par]
            keep_n = entries["n"][~hang_par]
            keep_w = entries["w"][~hang_par]
            er = entries["r"][hang_par]
            en = entries["n"][hang_par]
            ew = entries["w"][hang_par]
            # Each hanging parent en has its own first-level expansion,
            # recorded in (r, c_nodes, weights) rows where r == en.
            order = np.argsort(r, kind="stable")
            rs, ns, ws = r[order], c_nodes[order], weights[order]
            starts = np.searchsorted(rs, en, side="left")
            ends = np.searchsorted(rs, en, side="right")
            counts = ends - starts
            new_r = np.repeat(er, counts)
            new_w_scale = np.repeat(ew, counts)
            gather = np.concatenate(
                [np.arange(s0, e0) for s0, e0 in zip(starts, ends)]
            ) if len(en) else np.zeros(0, np.int64)
            new_n = ns[gather]
            new_w = new_w_scale * ws[gather]
            entries = {
                "r": np.concatenate([keep_r, new_r]),
                "n": np.concatenate([keep_n, new_n]),
                "w": np.concatenate([keep_w, new_w]),
            }
        else:  # pragma: no cover - would indicate an unbalanced tree
            raise RuntimeError("hanging-node chain did not resolve")
        rows.append(entries["r"])
        cols.append(dof_of_node[entries["n"]])
        vals.append(entries["w"])

    P = sp.csr_matrix(
        (
            np.concatenate(vals),
            (np.concatenate(rows), np.concatenate(cols)),
        ),
        shape=(n_nodes, n_dofs),
    )
    P.sum_duplicates()

    return NodeTable(
        coords=coords,
        elem_nodes=elem_nodes,
        is_hanging=is_hanging,
        dof_of_node=dof_of_node,
        node_of_dof=node_of_dof,
        P=P,
    )
