"""Multi-level inter-grid transfer (paper Sec. II-C2).

After remeshing, fields move from the old grid to the new grid across an
*arbitrary* number of levels in one shot — the paper's point of departure
from frameworks that transfer one level at a time.

Node-centered transfer evaluates the old FE field at each new DOF node using
the old element containing the node (coarse-to-fine interpolation; for
fine-to-coarse it is nodal injection, one of the paper's listed choices).
Cell-centered transfer copies coarse values onto overlapped fine cells and
volume-averages fine values into coarse cells.

The parallel variant follows the paper's four steps: (1) search grid-grid
overlaps via partition-endpoint rank search over the ⊑ ordering; (2) detach
and ship source-element *nodes* — deduplicated per destination by flagging,
not element-by-element copies; (3) run the serial transfer locally;
(4) (aggregation case) results live on the destination partition, keeping
the fine-side workload balanced.
"""

from __future__ import annotations

import numpy as np

from ..mpi.comm import Comm
from ..mpi.sparse_exchange import nbx_exchange
from ..octree import morton
from ..octree.overlap import local_overlap_range_interval, overlapping_ranks
from ..octree.tree import Octree
from .mesh import Mesh
from .nodes import pack_points


def _eval_in_elements(
    tree: Octree,
    corner_vals: np.ndarray,
    points: np.ndarray,
    nudge_ref: np.ndarray,
) -> np.ndarray:
    """Evaluate a piecewise-multilinear field at grid points.

    ``corner_vals``: (n_elems, 2**dim) nodal values per source element.
    ``nudge_ref``: per point, a reference point strictly inside the cell the
    caller wants the evaluation to come from; the source element is located
    with a one-grid-unit nudge toward it, so points sitting exactly on
    element boundaries are evaluated from the intended side (values are
    continuous across faces, so any side gives the same answer — the paper's
    "final value is arbitrarily picked from one of the instances").
    """
    dim = tree.dim
    probe = points + np.sign(nudge_ref - points).astype(np.int64)
    probe = np.clip(probe, 0, (1 << morton.MAX_DEPTH) - 1)
    elems = tree.locate_points(probe)
    if np.any(elems < 0):
        raise ValueError("transfer point not covered by the source grid")
    a = tree.anchors[elems]
    s = tree.sizes()[elems].astype(np.float64)
    xi = (points - a) / s[:, None]
    if np.any(xi < -1e-9) or np.any(xi > 1 + 1e-9):
        raise AssertionError("evaluation point left the located element")
    xi = np.clip(xi, 0.0, 1.0)
    nc = 1 << dim
    w = np.ones((len(points), nc))
    for c in range(nc):
        for axis in range(dim):
            bit = (c >> axis) & 1
            w[:, c] *= xi[:, axis] if bit else (1.0 - xi[:, axis])
    vals = corner_vals[elems]
    if vals.ndim == 3:
        return np.einsum("pc,pck->pk", w, vals)
    return np.einsum("pc,pc->p", w, vals)


def transfer_node_centered(
    old_mesh: Mesh, u_old: np.ndarray, new_mesh: Mesh
) -> np.ndarray:
    """Transfer a DOF vector between meshes across arbitrary level jumps."""
    corner_vals = old_mesh.elem_gather(u_old)
    new_tree = new_mesh.tree
    # For every new DOF node pick one new element owning it as a corner, and
    # nudge the evaluation into that element's interior.
    node_elem = np.zeros(new_mesh.n_nodes, dtype=np.int64)
    node_elem[new_mesh.nodes.elem_nodes.ravel()] = np.repeat(
        np.arange(new_mesh.n_elems), 1 << new_mesh.dim
    )
    dof_nodes = new_mesh.nodes.node_of_dof
    pts = new_mesh.nodes.coords[dof_nodes]
    owner = node_elem[dof_nodes]
    centers = new_tree.centers()[owner].astype(np.int64)
    return _eval_in_elements(old_mesh.tree, corner_vals, pts, centers)


def transfer_cell_centered(
    old_tree: Octree, vals: np.ndarray, new_tree: Octree
) -> np.ndarray:
    """Cell-centered transfer: copy coarse->fine, volume-average fine->coarse."""
    vals = np.asarray(vals, dtype=np.float64)
    out = np.zeros(len(new_tree))
    # Which old leaf covers each new center (old coarser or equal)?
    new_centers = new_tree.centers().astype(np.int64)
    old_idx = old_tree.locate_points(new_centers)
    if np.any(old_idx < 0):
        raise ValueError("grids do not cover the same region")
    covered = old_tree.levels[old_idx] <= new_tree.levels
    out[covered] = vals[old_idx[covered]]
    # New leaves coarser than the old grid: average contained old leaves.
    todo = ~covered
    if np.any(todo):
        old_centers = old_tree.centers().astype(np.int64)
        new_of_old = new_tree.locate_points(old_centers)
        w = old_tree.volumes()
        num = np.zeros(len(new_tree))
        den = np.zeros(len(new_tree))
        np.add.at(num, new_of_old, w * vals)
        np.add.at(den, new_of_old, w)
        out[todo] = num[todo] / den[todo]
    return out


# --------------------------------------------------------------- parallel


def par_transfer_node_centered(
    comm: Comm,
    old_tree_local: Octree,
    old_corner_vals: np.ndarray,
    new_mesh_local: Mesh,
    old_endpoints,
    new_endpoints,
) -> np.ndarray:
    """Distributed node-centered transfer between SFC-partitioned grids.

    Each rank holds a chunk of the old grid as *self-contained elemental
    data* — octants plus per-corner field values ``old_corner_vals`` of shape
    ``(n_local_old_elems, 2**dim)`` (hanging nodes already interpolated, i.e.
    the detached-node view of the paper) — and a local Mesh of its chunk of
    the new grid.  ``old_endpoints`` / ``new_endpoints`` are the allgathered
    partition endpoints ``(lows, highs)`` of the two grids.  Returns the
    new-local DOF values.

    Realizes the paper's four steps at simulator scale: overlap ranks found
    from endpoints only (identical on all processes), node payloads
    deduplicated per destination by corner-key flagging, shipped via the NBX
    sparse exchange, then the serial evaluation runs locally.
    """
    old_lows, old_highs = old_endpoints
    new_lows, new_highs = new_endpoints
    dim = new_mesh_local.dim

    # --- step 1+2: ship my old elements to every overlapping new rank -----
    outgoing = {}
    if len(old_tree_local):
        my_lo = (old_tree_local.anchors[0], int(old_tree_local.levels[0]))
        my_hi = (old_tree_local.anchors[-1], int(old_tree_local.levels[-1]))
        targets = overlapping_ranks(my_lo, my_hi, new_lows, new_highs, dim)
        corner_keys = pack_points(old_tree_local.corners(), dim)  # (n, nc)
        for q in targets:
            if new_lows[q] is None:
                continue
            s, e = local_overlap_range_interval(
                old_tree_local, new_lows[q], new_highs[q]
            )
            if e <= s:
                continue
            # Detach nodes for element range [s, e): flag + gather unique
            # corner keys so shared nodes ship once, not per element.
            sub_keys = corner_keys[s:e]
            uniq, conn = np.unique(sub_keys, return_inverse=True)
            conn = conn.reshape(sub_keys.shape)
            node_vals = np.zeros(len(uniq))
            node_vals[conn.ravel()] = old_corner_vals[s:e].ravel()
            outgoing[q] = {
                "anchors": old_tree_local.anchors[s:e],
                "levels": old_tree_local.levels[s:e],
                "conn": conn,
                "node_vals": node_vals,
            }

    incoming = nbx_exchange(comm, outgoing)

    # --- step 3: build a local source patch and evaluate -------------------
    pieces = sorted(incoming.items())
    if not pieces:
        if len(new_mesh_local.tree) and new_mesh_local.n_dofs:
            raise ValueError("no source data received for a non-empty chunk")
        return np.zeros(0)
    anchors = np.concatenate([p["anchors"] for _, p in pieces])
    levels = np.concatenate([p["levels"] for _, p in pieces])
    vals_list = []
    for _, p in pieces:
        vals_list.append(p["node_vals"][p["conn"]])
    corner_vals = np.concatenate(vals_list)
    order = np.argsort(morton.keys(anchors, levels, dim), kind="stable")
    patch = Octree(anchors[order], levels[order], dim, presorted=True)
    # Duplicate elements may arrive from neighboring ranks; linearizing
    # with value carry-over:
    keys = patch.keys()
    keep = np.ones(len(keys), dtype=bool)
    keep[1:] = keys[1:] != keys[:-1]
    patch = Octree(patch.anchors[keep], patch.levels[keep], dim, presorted=True)
    corner_vals = corner_vals[order][keep]

    node_elem = np.zeros(new_mesh_local.n_nodes, dtype=np.int64)
    node_elem[new_mesh_local.nodes.elem_nodes.ravel()] = np.repeat(
        np.arange(new_mesh_local.n_elems), 1 << dim
    )
    dof_nodes = new_mesh_local.nodes.node_of_dof
    pts = new_mesh_local.nodes.coords[dof_nodes]
    owner = node_elem[dof_nodes]
    centers = new_mesh_local.tree.centers()[owner].astype(np.int64)
    return _eval_in_elements(patch, corner_vals, pts, centers)
