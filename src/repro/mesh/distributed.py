"""Distributed elemental kernels: ghost exchange, MATVEC, erosion/dilation.

Elements are SFC-partitioned into contiguous chunks; each rank owns the
nodes whose SFC-first touching element it owns (the standard octree FEM
ownership rule).  ``GhostRead`` pulls owned values of remote nodes needed by
local elements; ``GhostWrite`` pushes accumulated (ADD_VALUES) or assigned
(INSERT_VALUES) contributions back to owners.  Both ride the NBX sparse
exchange, and all traffic lands in the communicator's counters — these are
the measurements behind the Fig. 4 scaling reproduction.

The neighbor-discovery step (who needs which of my nodes) is set up with an
allgather at simulator scale; the production equivalent is the paper's
sorted outsourcing pattern whose communication fix (NBX vs raw Alltoall) is
implemented and benchmarked separately in :mod:`repro.mpi.sparse_exchange`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mpi.comm import Comm
from ..mpi.sparse_exchange import nbx_exchange
from .mesh import Mesh


class DistributedField:
    """Per-rank view of a node-centered field over a partitioned mesh."""

    def __init__(self, comm: Comm, mesh: Mesh):
        self.comm = comm
        self.mesh = mesh
        n_elems = mesh.n_elems
        bounds = np.linspace(0, n_elems, comm.size + 1).astype(np.int64)
        self.elem_lo = int(bounds[comm.rank])
        self.elem_hi = int(bounds[comm.rank + 1])
        en = mesh.nodes.elem_nodes
        self.local_elem_nodes = en[self.elem_lo : self.elem_hi]

        # Node ownership: rank of the first (SFC-smallest) touching element.
        first_elem = np.full(mesh.n_nodes, n_elems, dtype=np.int64)
        np.minimum.at(
            first_elem,
            en.ravel(),
            np.repeat(np.arange(n_elems), en.shape[1]),
        )
        self.node_owner = np.searchsorted(bounds, first_elem, side="right") - 1

        self.needed = np.unique(self.local_elem_nodes)
        self.owned = self.needed[self.node_owner[self.needed] == comm.rank]
        self.ghosts = self.needed[self.node_owner[self.needed] != comm.rank]
        # Map global node id -> position in `needed`.
        self._needed_pos = {int(g): i for i, g in enumerate(self.needed)}
        self.local_conn = np.searchsorted(self.needed, self.local_elem_nodes)

        # Exchange maps (setup allgather; see module docstring).
        all_needed = comm.allgather(self.needed)
        self.send_map: dict[int, np.ndarray] = {}
        for q in range(comm.size):
            if q == comm.rank:
                continue
            theirs = all_needed[q]
            mine = theirs[self.node_owner[theirs] == comm.rank]
            if len(mine):
                self.send_map[q] = mine
        self.recv_from = sorted(
            {int(self.node_owner[g]) for g in self.ghosts}
        )

    # ------------------------------------------------------------- fields

    def from_global(self, node_values: np.ndarray) -> np.ndarray:
        """Owned-node slice of a (replicated) global node vector."""
        return node_values[self.owned].copy()

    def to_global(self, owned_values: np.ndarray, comm_gather: bool = True):
        """Allgather owned slices into the full global vector (diagnostics)."""
        pieces = self.comm.allgather((self.owned, owned_values))
        out = np.zeros(self.mesh.n_nodes)
        for ids, vals in pieces:
            out[ids] = vals
        return out

    # -------------------------------------------------------------- comms

    def ghost_read(self, owned_values: np.ndarray) -> np.ndarray:
        """Values over all `needed` nodes: owned locally, ghosts fetched."""
        outgoing = {
            q: (ids, owned_values[np.searchsorted(self.owned, ids)])
            for q, ids in self.send_map.items()
        }
        incoming = nbx_exchange(self.comm, outgoing)
        full = np.zeros(len(self.needed))
        own_pos = np.searchsorted(self.needed, self.owned)
        full[own_pos] = owned_values
        for _, (ids, vals) in incoming.items():
            full[np.searchsorted(self.needed, ids)] = vals
        return full

    def ghost_write(
        self,
        needed_values: np.ndarray,
        owned_values: np.ndarray,
        mode: str,
        push_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Push ghost contributions back to their owners.

        ``mode='add'``: accumulate into owners (MATVEC scatter).
        ``mode='insert'``: overwrite owners (erosion/dilation; concurrent
        identical inserts are consistent, the paper's remark).  For inserts
        ``push_mask`` (over `needed`) must mark the nodes actually written —
        unwritten ghosts carry stale reads and must not travel."""
        ghost_pos = np.searchsorted(self.needed, self.ghosts)
        outgoing = {}
        by_owner: dict[int, list] = {}
        for g, pos in zip(self.ghosts, ghost_pos):
            if push_mask is not None and not push_mask[pos]:
                continue
            by_owner.setdefault(int(self.node_owner[g]), []).append((g, pos))
        for q, pairs in by_owner.items():
            ids = np.array([g for g, _ in pairs], dtype=np.int64)
            vals = needed_values[[p for _, p in pairs]]
            outgoing[q] = (ids, vals)
        incoming = nbx_exchange(self.comm, outgoing)
        out = owned_values.copy()
        for _, (ids, vals) in incoming.items():
            pos = np.searchsorted(self.owned, ids)
            if mode == "add":
                np.add.at(out, pos, vals)
            else:
                out[pos] = vals
        return out

    # ------------------------------------------------------------ kernels

    def matvec(self, Ke: np.ndarray, owned_values: np.ndarray) -> np.ndarray:
        """Distributed elemental MATVEC: GhostRead -> local pass -> GhostWrite.

        ``Ke``: elemental matrices for the *local* element chunk.
        """
        nv = self.ghost_read(owned_values)
        ue = nv[self.local_conn]
        ve = np.einsum("eij,ej->ei", Ke, ue)
        acc = np.zeros(len(self.needed))
        np.add.at(acc, self.local_conn.ravel(), ve.ravel())
        own_pos = np.searchsorted(self.needed, self.owned)
        local_part = acc[own_pos]
        return self.ghost_write(acc, local_part, mode="add")

    def matvec_matrix_free(
        self, owned_values: np.ndarray, coeff=1.0
    ) -> np.ndarray:
        """Matrix-free reference MATVEC: re-assemble each elemental
        stiffness on the fly inside an explicit per-element loop, the way
        the paper's production kernel trades FLOPs for memory.

        Numerically identical to precomputing the ``Ke`` batch and calling
        :meth:`matvec` (same accumulation order), so it doubles as the
        validation reference for the batched GEMM path.  Unlike that path,
        the per-element work runs in the interpreter — compute-dense ranks
        like these are what backend scaling studies must exercise, since a
        fully vectorized kernel spends microseconds per rank and measures
        only transport overhead.
        """
        from ..fem.operators import stiffness_matrix

        nv = self.ghost_read(owned_values)
        h = self.mesh.elem_h()[self.elem_lo : self.elem_hi]
        dim = self.mesh.dim
        acc = np.zeros(len(self.needed))
        for conn, he in zip(self.local_conn, h):
            Ke = stiffness_matrix(he[None], dim, coeff)[0]
            acc[conn] += Ke @ nv[conn]
        own_pos = np.searchsorted(self.needed, self.owned)
        return self.ghost_write(acc, acc[own_pos], mode="add")

    def erode_dilate_step(
        self,
        owned_values: np.ndarray,
        val: float,
        wait: np.ndarray,
        counters: np.ndarray,
        tol: float = 1e-9,
    ) -> np.ndarray:
        """One distributed level-aware erosion/dilation sweep (Algorithm 2).

        ``wait``/``counters`` are per-local-element arrays maintained by the
        caller across sweeps.
        """
        nv = self.ghost_read(owned_values)
        ev = nv[self.local_conn]
        nc = ev.shape[1]
        has_if = np.abs(np.abs(ev.sum(axis=1)) - nc) > tol
        trigger = has_if & (counters >= wait)
        counters[has_if & ~trigger] += 1
        counters[trigger] = 0
        new_nv = nv.copy()
        written = np.zeros(len(self.needed), dtype=bool)
        if np.any(trigger):
            idx = self.local_conn[trigger].ravel()
            new_nv[idx] = val
            written[idx] = True
        own_pos = np.searchsorted(self.needed, self.owned)
        owned_new = new_nv[own_pos]
        return self.ghost_write(new_nv, owned_new, mode="insert", push_mask=written)
