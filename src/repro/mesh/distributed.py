"""Distributed elemental kernels: ghost exchange, MATVEC, erosion/dilation.

Elements are SFC-partitioned into contiguous chunks; each rank owns the
nodes whose SFC-first touching element it owns (the standard octree FEM
ownership rule).  ``GhostRead`` pulls owned values of remote nodes needed by
local elements; ``GhostWrite`` pushes accumulated (ADD_VALUES) or assigned
(INSERT_VALUES) contributions back to owners.  Both ride the NBX sparse
exchange, and all traffic lands in the communicator's counters — these are
the measurements behind the Fig. 4 scaling reproduction.

All index arithmetic the exchanges need — positions of owned/ghost nodes in
the ``needed`` array, per-peer send/receive index maps, the global-node →
owned-position inverse — is precomputed once into an :class:`ExchangePlan`
at construction.  ``ghost_read``/``ghost_write`` are then pure fancy-indexed
gathers and scatters: no ``searchsorted`` and no per-node Python loop on the
per-MATVEC hot path.

The neighbor-discovery step (who needs which of my nodes) is set up with an
allgather at simulator scale; the production equivalent is the paper's
sorted outsourcing pattern whose communication fix (NBX vs raw Alltoall) is
implemented and benchmarked separately in :mod:`repro.mpi.sparse_exchange`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..mpi.comm import Comm
from ..mpi.sparse_exchange import nbx_exchange
from .mesh import Mesh


@dataclass
class ExchangePlan:
    """Precomputed ghost-exchange schedule for one ``DistributedField``.

    Built once per (mesh generation, communicator size, rank); every
    ``ghost_read``/``ghost_write`` reuses these index arrays.  Message *ids*
    still travel with the payloads (the NBX wire format is unchanged), but
    neither side recomputes any map per call.
    """

    generation: int  #: mesh generation this schedule was built against
    own_pos: np.ndarray  #: positions of `owned` within `needed`
    ghost_pos: np.ndarray  #: positions of `ghosts` within `needed`
    #: per-peer owned node ids the peer needs (GhostRead sends, sorted)
    send_ids: dict = field(default_factory=dict)
    #: per-peer positions of `send_ids[q]` within `owned`
    send_pos: dict = field(default_factory=dict)
    #: per-owner ghost node ids (GhostWrite sends, sorted within owner)
    ghost_ids_by_owner: dict = field(default_factory=dict)
    #: per-owner positions of those ghosts within `needed`
    ghost_pos_by_owner: dict = field(default_factory=dict)
    #: per-owner positions within `needed` of ids arriving in GhostRead
    recv_needed_pos: dict = field(default_factory=dict)
    #: inverse ownership map: global node id -> position in `owned` (or -1)
    owned_lookup: np.ndarray = None


class DistributedField:
    """Per-rank view of a node-centered field over a partitioned mesh."""

    def __init__(self, comm: Comm, mesh: Mesh):
        self.comm = comm
        self.mesh = mesh
        n_elems = mesh.n_elems
        bounds = np.linspace(0, n_elems, comm.size + 1).astype(np.int64)
        self.elem_lo = int(bounds[comm.rank])
        self.elem_hi = int(bounds[comm.rank + 1])
        en = mesh.nodes.elem_nodes
        self.local_elem_nodes = en[self.elem_lo : self.elem_hi]

        # Node ownership: rank of the first (SFC-smallest) touching element.
        first_elem = np.full(mesh.n_nodes, n_elems, dtype=np.int64)
        np.minimum.at(
            first_elem,
            en.ravel(),
            np.repeat(np.arange(n_elems), en.shape[1]),
        )
        self.node_owner = np.searchsorted(bounds, first_elem, side="right") - 1

        self.needed = np.unique(self.local_elem_nodes)
        self.owned = self.needed[self.node_owner[self.needed] == comm.rank]
        self.ghosts = self.needed[self.node_owner[self.needed] != comm.rank]
        self.local_conn = np.searchsorted(self.needed, self.local_elem_nodes)

        # Exchange maps (setup allgather; see module docstring).
        all_needed = comm.allgather(self.needed)
        self.send_map: dict[int, np.ndarray] = {}
        for q in range(comm.size):
            if q == comm.rank:
                continue
            theirs = all_needed[q]
            mine = theirs[self.node_owner[theirs] == comm.rank]
            if len(mine):
                self.send_map[q] = mine
        self.recv_from = sorted(
            {int(q) for q in np.unique(self.node_owner[self.ghosts])}
        )

        with obs.span("ghost.plan_build"):
            self.plan = self._build_exchange_plan()

    def _build_exchange_plan(self) -> ExchangePlan:
        """Symbolic phase of the ghost exchange: all per-call index maps."""
        plan = ExchangePlan(
            generation=int(self.mesh.generation),
            own_pos=np.searchsorted(self.needed, self.owned),
            ghost_pos=np.searchsorted(self.needed, self.ghosts),
        )
        # GhostRead send side: owned values each peer needs, and their
        # positions in the owned array.
        for q, ids in self.send_map.items():
            plan.send_ids[q] = ids
            plan.send_pos[q] = np.searchsorted(self.owned, ids)
        # GhostWrite send side: ghosts grouped by owner, ascending node id
        # within each owner (stable sort of the already-sorted ghost array —
        # the exact order the per-node loop used to produce, so the wire
        # bytes are unchanged).
        ghost_owner = self.node_owner[self.ghosts]
        order = np.argsort(ghost_owner, kind="stable")
        for q in np.unique(ghost_owner):
            sel = order[ghost_owner[order] == q]
            plan.ghost_ids_by_owner[int(q)] = self.ghosts[sel]
            plan.ghost_pos_by_owner[int(q)] = plan.ghost_pos[sel]
            # GhostRead receive side: owner q sends exactly these ghosts, in
            # this order (it filters its copy of our sorted `needed`).
            plan.recv_needed_pos[int(q)] = plan.ghost_pos[sel]
        # GhostWrite receive side: global node id -> position in `owned`,
        # valid for any masked subset a peer chooses to push.
        plan.owned_lookup = np.full(self.mesh.n_nodes, -1, dtype=np.int64)
        plan.owned_lookup[self.owned] = np.arange(len(self.owned))
        return plan

    # ------------------------------------------------------------- fields

    def from_global(self, node_values: np.ndarray) -> np.ndarray:
        """Owned-node slice of a (replicated) global node vector."""
        return node_values[self.owned].copy()

    def to_global(self, owned_values: np.ndarray) -> np.ndarray:
        """Allgather owned slices into the full global vector (diagnostics)."""
        pieces = self.comm.allgather((self.owned, owned_values))
        out = np.zeros(self.mesh.n_nodes)
        for ids, vals in pieces:
            out[ids] = vals
        return out

    # -------------------------------------------------------------- comms

    def ghost_read(self, owned_values: np.ndarray) -> np.ndarray:
        """Values over all `needed` nodes: owned locally, ghosts fetched."""
        plan = self.plan
        with obs.span("ghost.read"):
            obs.incr("ghost.reads")
            outgoing = {
                q: (ids, owned_values[plan.send_pos[q]])
                for q, ids in plan.send_ids.items()
            }
            incoming = nbx_exchange(self.comm, outgoing)
            full = np.zeros(len(self.needed))
            full[plan.own_pos] = owned_values
            for q, (_, vals) in incoming.items():
                full[plan.recv_needed_pos[q]] = vals
            return full

    def ghost_write(
        self,
        needed_values: np.ndarray,
        owned_values: np.ndarray,
        mode: str,
        push_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Push ghost contributions back to their owners.

        ``mode='add'``: accumulate into owners (MATVEC scatter).
        ``mode='insert'``: overwrite owners (erosion/dilation; concurrent
        identical inserts are consistent, the paper's remark).  For inserts
        ``push_mask`` (over `needed`) must mark the nodes actually written —
        unwritten ghosts carry stale reads and must not travel."""
        plan = self.plan
        with obs.span("ghost.write"):
            obs.incr("ghost.writes")
            outgoing = {}
            for q, pos in plan.ghost_pos_by_owner.items():
                ids = plan.ghost_ids_by_owner[q]
                if push_mask is not None:
                    sel = push_mask[pos]
                    if not np.any(sel):
                        continue
                    ids, pos = ids[sel], pos[sel]
                outgoing[q] = (ids, needed_values[pos])
            incoming = nbx_exchange(self.comm, outgoing)
            out = owned_values.copy()
            # Sorted peer order: NBX delivery order is schedule-dependent,
            # and float accumulation does not commute bitwise — fixing the
            # reduction order makes results identical across backends.
            for q in sorted(incoming):
                ids, vals = incoming[q]
                pos = plan.owned_lookup[ids]
                if mode == "add":
                    np.add.at(out, pos, vals)
                else:
                    out[pos] = vals
            return out

    # ------------------------------------------------------------ kernels

    def matvec(self, Ke: np.ndarray, owned_values: np.ndarray) -> np.ndarray:
        """Distributed elemental MATVEC: GhostRead -> local pass -> GhostWrite.

        ``Ke``: elemental matrices for the *local* element chunk.  The local
        pass dispatches through :mod:`repro.fem.kernels` (fused JIT
        gather/GEMV/scatter, or the einsum + ``add.at`` fallback).
        """
        from ..fem import kernels

        nv = self.ghost_read(owned_values)
        acc = np.zeros(len(self.needed))
        fn = kernels.select("elem_matvec")
        if fn is None:
            ue = nv[self.local_conn]
            ve = np.einsum("eij,ej->ei", Ke, ue)
            np.add.at(acc, self.local_conn.ravel(), ve.ravel())
        else:  # pragma: no cover - needs numba
            fn(
                np.ascontiguousarray(np.asarray(Ke, dtype=np.float64)),
                self.local_conn,
                nv,
                acc,
            )
        local_part = acc[self.plan.own_pos]
        return self.ghost_write(acc, local_part, mode="add")

    def matvec_matrix_free(
        self, owned_values: np.ndarray, coeff=1.0
    ) -> np.ndarray:
        """Matrix-free reference MATVEC: re-assemble each elemental
        stiffness on the fly inside an explicit per-element loop, the way
        the paper's production kernel trades FLOPs for memory.

        On the NumPy fallback path this is numerically identical to
        precomputing the ``Ke`` batch and calling :meth:`matvec` (same
        accumulation order — pinned under ``kernels.fallback_only()`` in
        ``tests/mesh/test_distributed.py``), so it doubles as the
        validation reference for the batched GEMM path.  With Numba the
        on-the-fly elemental stiffness fuses into a serial JIT loop
        (scalar ``coeff`` only) that agrees with the fallback to round-off.
        Unlike the batched path, the fallback's per-element work runs in
        the interpreter — compute-dense ranks like these are what backend
        scaling studies must exercise, since a fully vectorized kernel
        spends microseconds per rank and measures only transport overhead.
        """
        from ..fem import kernels
        from ..fem.basis import tabulate
        from ..fem.operators import stiffness_matrix

        nv = self.ghost_read(owned_values)
        h = self.mesh.elem_h()[self.elem_lo : self.elem_hi]
        dim = self.mesh.dim
        acc = np.zeros(len(self.needed))
        fn = kernels.select("mf_stiffness") if np.isscalar(coeff) else None
        if fn is None:
            for conn, he in zip(self.local_conn, h):
                Ke = stiffness_matrix(he[None], dim, coeff)[0]
                acc[conn] += Ke @ nv[conn]
        else:  # pragma: no cover - needs numba
            _, w, _, dN = tabulate(dim)
            fn(
                self.local_conn,
                nv,
                w,
                dN,
                np.asarray(h, dtype=np.float64) ** (dim - 2),
                float(coeff),
                acc,
            )
        return self.ghost_write(acc, acc[self.plan.own_pos], mode="add")

    def erode_dilate_step(
        self,
        owned_values: np.ndarray,
        val: float,
        wait: np.ndarray,
        counters: np.ndarray,
        tol: float = 1e-9,
    ) -> np.ndarray:
        """One distributed level-aware erosion/dilation sweep (Algorithm 2).

        ``wait``/``counters`` are per-local-element arrays maintained by the
        caller across sweeps.
        """
        nv = self.ghost_read(owned_values)
        ev = nv[self.local_conn]
        nc = ev.shape[1]
        has_if = np.abs(np.abs(ev.sum(axis=1)) - nc) > tol
        trigger = has_if & (counters >= wait)
        counters[has_if & ~trigger] += 1
        counters[trigger] = 0
        new_nv = nv.copy()
        written = np.zeros(len(self.needed), dtype=bool)
        if np.any(trigger):
            idx = self.local_conn[trigger].ravel()
            new_nv[idx] = val
            written[idx] = True
        owned_new = new_nv[self.plan.own_pos]
        return self.ghost_write(new_nv, owned_new, mode="insert", push_mask=written)
