"""The paper's primary contribution: local-Cahn region identification."""

from .connected_components import (  # noqa: F401
    flag_small_components,
    label_components,
)
from .elemental_cahn import elemental_cahn, erode_dilate_cahn  # noqa: F401
from .erode_dilate import ErodeDilateStats, Stage, erode_dilate  # noqa: F401
from .identifier import (  # noqa: F401
    IdentifierConfig,
    IdentifierResult,
    identify_local_cahn,
)
from .multilevel import CahnStage, identify_multilevel_cahn  # noqa: F401
from .threshold import interface_elements, threshold_octree  # noqa: F401
