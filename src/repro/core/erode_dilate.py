"""Level-aware erosion/dilation as MATVEC passes (paper Algorithm 2).

Each step is one pass over the local elements: gather nodal values
(GhostRead), detect interface elements (Eq. 5), and write the stage value
into every node of triggered elements (GhostWrite with INSERT_VALUES — the
paper's remark: concurrent identical inserts are race-free, so no element
ordering matters).

The octree twist is the *level counter*: an element ``b_l - l`` levels
coarser than the base (finest) level erodes/dilates only every
``b_l - l + 1``-th visit, so the morphological front advances at a uniform
physical speed across resolution jumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..mesh.mesh import Mesh
from .threshold import interface_elements


class Stage(Enum):
    EROSION = -1.0
    DILATION = +1.0


@dataclass
class ErodeDilateStats:
    """Per-call diagnostics (used by the MATVEC scaling benchmark)."""

    steps: int = 0
    elements_visited: int = 0
    elements_triggered: int = 0


def erode_dilate(
    mesh: Mesh,
    bw: np.ndarray,
    stage: Stage,
    num_steps: int,
    base_level: int | None = None,
    stats: ErodeDilateStats | None = None,
) -> np.ndarray:
    """Run ``num_steps`` erosion or dilation sweeps on a ±1 nodal DOF vector.

    ``base_level`` defaults to the finest level present in the mesh.
    Returns the updated DOF vector (a new array).
    """
    if base_level is None:
        base_level = int(mesh.tree.levels.max())
    val = stage.value
    levels = mesh.tree.levels
    wait = base_level - levels  # visits to skip between triggers
    if np.any(wait < 0):
        raise ValueError("base_level must be at least the finest mesh level")
    counters = np.zeros(mesh.n_elems, dtype=np.int64)
    vec = np.asarray(bw, dtype=np.float64).copy()
    en = mesh.nodes.elem_nodes
    node_of_dof = mesh.nodes.node_of_dof

    for _ in range(num_steps):
        nodal = mesh.node_values(vec)  # GhostRead (hanging interpolated)
        has_if = interface_elements(mesh, vec)
        trigger = has_if & (counters >= wait)
        counters[has_if & ~trigger] += 1
        counters[trigger] = 0
        if stats is not None:
            stats.steps += 1
            stats.elements_visited += mesh.n_elems
            stats.elements_triggered += int(trigger.sum())
        if np.any(trigger):
            nodal_new = nodal.copy()
            nodal_new[en[trigger].ravel()] = val  # INSERT_VALUES
            vec = nodal_new[node_of_dof]  # GhostWrite back to owners
        # else: vec unchanged this sweep
    return vec
