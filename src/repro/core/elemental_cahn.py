"""Elemental local-Cahn marking (paper Algorithm 3 / Eq. 6) and the
island-removal / padding pass on the Cn field (Algorithm 4).

Detection rule (Eq. 6): an element receives the *reduced* Cahn number when
all its nodes are +1 under thresholding (inside the immersed phase) and all
its nodes are -1 after the extra dilation — i.e. the feature it belongs to
eroded away and never grew back: a droplet or filament thinner than the
morphological radius.

Note on labels: the paper's Algorithm 3 listing assigns ``Cn_2`` (with
``Cn_1 < Cn_2``) to detected elements while the surrounding text reduces Cn
there; we follow the text (and physics): detected elements get ``cn_fine``,
the smaller value.
"""

from __future__ import annotations

import numpy as np

from ..mesh.mesh import Mesh
from .erode_dilate import Stage, erode_dilate


def elemental_cahn(
    mesh: Mesh,
    bw_o: np.ndarray,
    bw_d: np.ndarray,
    cn_fine: float,
    cn_coarse: float,
    tol: float = 1e-9,
) -> np.ndarray:
    """Per-element Cn from the thresholded (``bw_o``) and extra-dilated
    (``bw_d``) nodal vectors."""
    if not cn_fine < cn_coarse:
        raise ValueError("cn_fine must be smaller than cn_coarse")
    eo = mesh.elem_gather(bw_o).sum(axis=1)
    ed = mesh.elem_gather(bw_d).sum(axis=1)
    nc = 1 << mesh.dim
    detected = (np.abs(eo - nc) <= tol) & (np.abs(ed + nc) <= tol)
    return np.where(detected, cn_fine, cn_coarse)


def erode_dilate_cahn(
    mesh: Mesh,
    elem_cn: np.ndarray,
    cn_fine: float,
    cn_coarse: float,
    *,
    base_level: int | None = None,
    n_erode: int = 1,
    n_dilate: int = 3,
) -> np.ndarray:
    """Algorithm 4: remove tiny islands of reduced Cn, then pad the kept
    regions so they keep covering the feature until the next identification.

    The elemental Cn field is lifted to a nodal ±1 vector (-1 marks reduced
    Cn), run through the same level-aware erosion/dilation kernels, and
    dropped back to elements: any -1 corner keeps the element at reduced Cn.
    Padding adds no refinement by itself — refinement happens only at the
    interface (paper Sec. II-B3).
    """
    elem_cn = np.asarray(elem_cn, dtype=np.float64)
    nodal = np.ones(mesh.n_nodes)
    local = np.abs(elem_cn - cn_fine) < 1e-12
    nodal[mesh.nodes.elem_nodes[local].ravel()] = -1.0
    vec = nodal[mesh.nodes.node_of_dof]
    if n_erode:
        vec = erode_dilate(mesh, vec, Stage.DILATION, n_erode, base_level)
        # NB: on the Cn indicator the *reduced* region is the -1 phase, so
        # "removing small -1 islands" is a DILATION of the +1 background.
    if n_dilate:
        vec = erode_dilate(mesh, vec, Stage.EROSION, n_dilate, base_level)
        # ... and padding the -1 region is an EROSION of the background.
    ev = mesh.elem_gather(vec)
    any_local = np.any(ev < 0.0, axis=1)
    return np.where(any_local, cn_fine, cn_coarse)
