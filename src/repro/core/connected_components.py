"""Connected-component labeling baseline (paper Sec. V, Harrison et al.).

The paper positions erosion/dilation against the alternative of detecting
small features by connected-component labeling, arguing CCL is (i) more
expensive and non-trivial to implement in parallel, and (ii) *insufficient*:
a thin filament attached to a large body is one component, so a size filter
never flags it (Fig. 1b).  This module implements the baseline so the claim
can be measured: components of the immersed phase are labeled by union-find
over element adjacency (shared nodes), sizes are accumulated, and small
components are flagged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh.mesh import Mesh
from .threshold import threshold_octree


def _find(parent: np.ndarray, i: int) -> int:
    root = i
    while parent[root] != root:
        root = parent[root]
    while parent[i] != root:  # path compression
        parent[i], i = root, parent[i]
    return root


def label_components(mesh: Mesh, phi: np.ndarray, delta: float = 0.8):
    """Label connected regions of the immersed phase.

    An element belongs to the region when *any* corner is thresholded
    immersed; elements sharing such a node are connected.  Returns
    ``(labels, n_components)`` with ``labels[e] = -1`` outside the phase and
    component ids ``0..n-1`` otherwise.
    """
    bw = threshold_octree(phi, delta)
    nodal = mesh.node_values(bw)
    node_in = nodal > 0.0
    elem_in = np.any(node_in[mesh.nodes.elem_nodes], axis=1)

    labels = np.full(mesh.n_elems, -1, dtype=np.int64)
    elems = np.nonzero(elem_in)[0]
    if len(elems) == 0:
        return labels, 0

    # Union-find over elements, merged through shared immersed nodes.
    parent = np.arange(len(elems), dtype=np.int64)
    local_of = {int(e): i for i, e in enumerate(elems)}
    node_owner = np.full(mesh.n_nodes, -1, dtype=np.int64)
    en = mesh.nodes.elem_nodes
    for i, e in enumerate(elems):
        for n in en[e]:
            if not node_in[n]:
                continue
            if node_owner[n] < 0:
                node_owner[n] = i
            else:
                ra, rb = _find(parent, node_owner[n]), _find(parent, i)
                if ra != rb:
                    parent[rb] = ra

    roots = np.array([_find(parent, i) for i in range(len(elems))])
    uniq, compact = np.unique(roots, return_inverse=True)
    labels[elems] = compact
    return labels, len(uniq)


@dataclass
class ComponentStats:
    n_components: int
    volumes: np.ndarray  # physical volume per component
    small_elements: np.ndarray  # bool per element: in a small component


def flag_small_components(
    mesh: Mesh, phi: np.ndarray, *, delta: float = 0.8, volume_threshold: float
) -> ComponentStats:
    """The CCL-based detector: flag every element belonging to a connected
    component whose total volume falls below ``volume_threshold``.

    This is the strongest size-filter baseline — and it still cannot flag a
    thin filament attached to a large body (the benchmark demonstrates it).
    """
    labels, n = label_components(mesh, phi, delta)
    vols = np.zeros(max(n, 1))
    elem_vol = mesh.elem_h() ** mesh.dim
    sel = labels >= 0
    np.add.at(vols, labels[sel], elem_vol[sel])
    small = np.zeros(mesh.n_elems, dtype=bool)
    if n:
        small_ids = np.nonzero(vols < volume_threshold)[0]
        small[sel] = np.isin(labels[sel], small_ids)
    return ComponentStats(n_components=n, volumes=vols[:n], small_elements=small)
