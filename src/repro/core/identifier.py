"""LOCALCAHNIDENTIFIER (paper Algorithm 1): the end-to-end pipeline that
finds droplets/filaments whose scale approaches the diffuse-interface
thickness and returns the per-element local Cahn number.

Pipeline: threshold (Eq. 4) → level-aware erosion (Alg. 2) → extra dilation
(Alg. 2) → elemental Cn (Alg. 3 / Eq. 6) → island removal + padding on the
Cn field (Alg. 4).  Complexity is O(N) per sweep — each sweep is one
elemental MATVEC pass — which is the basis of the Fig. 4 scaling claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..mesh.mesh import Mesh
from .elemental_cahn import elemental_cahn, erode_dilate_cahn
from .erode_dilate import ErodeDilateStats, Stage, erode_dilate
from .threshold import threshold_octree


@dataclass
class IdentifierConfig:
    """Hyper-parameters of Algorithm 1 (the paper's defaults in brackets)."""

    delta: float = 0.8  # threshold [±0.8 by immersed-phase sign]
    n_erode: int = 2  # erosion sweeps
    n_extra_dilate: int = 3  # extra dilations beyond erosions [3-4]
    cn_fine: float = 0.5  # reduced Cahn for detected features (relative)
    cn_coarse: float = 1.0  # ambient Cahn (relative)
    cleanup_erode: int = 1  # Alg. 4 island-removal sweeps
    cleanup_dilate: int = 3  # Alg. 4 padding sweeps
    base_level: Optional[int] = None  # defaults to finest mesh level


@dataclass
class IdentifierResult:
    elem_cn: np.ndarray  # per-element Cahn number
    bw_o: np.ndarray  # thresholded nodal vector (±1, DOFs)
    bw_d: np.ndarray  # after erosion + dilation
    detected: np.ndarray  # bool mask of reduced-Cn elements
    stats: ErodeDilateStats


def identify_local_cahn(
    mesh: Mesh, phi: np.ndarray, config: IdentifierConfig | None = None
) -> IdentifierResult:
    """Run Algorithm 1 on a phase-field DOF vector.

    ``phi`` follows the CHNS convention (immersed phase toward -1 or +1);
    choose ``config.delta`` accordingly: with the immersed phase at -1, use
    ``delta = -0.8`` so thresholding marks it +1.
    """
    cfg = config or IdentifierConfig()
    stats = ErodeDilateStats()
    base = (
        int(mesh.tree.levels.max()) if cfg.base_level is None else cfg.base_level
    )
    bw_o = threshold_octree(phi, cfg.delta)
    bw_e = erode_dilate(mesh, bw_o, Stage.EROSION, cfg.n_erode, base, stats)
    bw_d = erode_dilate(
        mesh,
        bw_e,
        Stage.DILATION,
        cfg.n_erode + cfg.n_extra_dilate,
        base,
        stats,
    )
    elem_cn = elemental_cahn(mesh, bw_o, bw_d, cfg.cn_fine, cfg.cn_coarse)
    elem_cn = erode_dilate_cahn(
        mesh,
        elem_cn,
        cfg.cn_fine,
        cfg.cn_coarse,
        base_level=base,
        n_erode=cfg.cleanup_erode,
        n_dilate=cfg.cleanup_dilate,
    )
    detected = np.abs(elem_cn - cfg.cn_fine) < 1e-12
    return IdentifierResult(
        elem_cn=elem_cn, bw_o=bw_o, bw_d=bw_d, detected=detected, stats=stats
    )
