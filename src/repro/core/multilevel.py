"""Multi-level local Cahn (the paper's stated extension, Sec. II-B3).

The base identifier assigns two Cahn levels (ambient + reduced).  The paper
notes the algorithm "can be easily extended to multi-level Cn.  Each level of
Cn will have its own set of numbers of erosion and dilation steps."  Here,
each stage carries its own erosion depth: a feature that vanishes under
``n_erode`` sweeps has a morphological radius below ``n_erode`` cells, so
stages with increasing erosion depth form a granulometry — the *smallest*
features are caught by the shallowest stage and receive the *finest* Cn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..mesh.mesh import Mesh
from .elemental_cahn import elemental_cahn, erode_dilate_cahn
from .erode_dilate import Stage, erode_dilate
from .threshold import threshold_octree


@dataclass
class CahnStage:
    """One granulometry stage: features eroded away by ``n_erode`` sweeps
    (and not recovered after ``n_erode + n_extra_dilate`` dilations) are
    assigned ``cn``."""

    cn: float
    n_erode: int
    n_extra_dilate: int = 3
    cleanup_erode: int = 1
    cleanup_dilate: int = 2


@dataclass
class MultilevelResult:
    elem_cn: np.ndarray
    stage_masks: list  # bool mask per stage (who was assigned that stage)


def identify_multilevel_cahn(
    mesh: Mesh,
    phi: np.ndarray,
    stages: Sequence[CahnStage],
    *,
    cn_ambient: float = 1.0,
    delta: float = 0.8,
    base_level: int | None = None,
) -> MultilevelResult:
    """Assign each element the Cn of the shallowest stage that detects it.

    ``stages`` must be ordered by increasing ``n_erode`` and increasing
    ``cn`` (smaller features -> finer Cn); the ambient Cn applies elsewhere.
    """
    stages = list(stages)
    if not stages:
        raise ValueError("need at least one stage")
    erosions = [s.n_erode for s in stages]
    cns = [s.cn for s in stages]
    if erosions != sorted(erosions) or cns != sorted(cns):
        raise ValueError(
            "stages must have increasing n_erode and increasing cn"
        )
    if cns[-1] >= cn_ambient:
        raise ValueError("every stage cn must be below cn_ambient")

    base = int(mesh.tree.levels.max()) if base_level is None else base_level
    bw_o = threshold_octree(phi, delta)
    elem_cn = np.full(mesh.n_elems, cn_ambient)
    assigned = np.zeros(mesh.n_elems, dtype=bool)
    masks = []
    # Erosion is incremental: reuse the running eroded field across stages.
    bw_run = bw_o.copy()
    done_erosions = 0
    for s in stages:
        bw_run = erode_dilate(
            mesh, bw_run, Stage.EROSION, s.n_erode - done_erosions, base
        )
        done_erosions = s.n_erode
        bw_d = erode_dilate(
            mesh, bw_run, Stage.DILATION, s.n_erode + s.n_extra_dilate, base
        )
        stage_cn = elemental_cahn(mesh, bw_o, bw_d, s.cn, cn_ambient)
        stage_cn = erode_dilate_cahn(
            mesh,
            stage_cn,
            s.cn,
            cn_ambient,
            base_level=base,
            n_erode=s.cleanup_erode,
            n_dilate=s.cleanup_dilate,
        )
        detected = (np.abs(stage_cn - s.cn) < 1e-12) & ~assigned
        elem_cn[detected] = s.cn
        assigned |= detected
        masks.append(detected)
    return MultilevelResult(elem_cn=elem_cn, stage_masks=masks)
