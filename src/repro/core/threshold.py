"""Thresholding of the phase field on octree meshes (paper Eq. 4).

The octree variant maps to ±1 rather than 1/0: "purely a mathematical
convenience in detecting the interface elements" — an element then contains
interface iff the nodal sum's magnitude differs from the node count
(paper Eq. 5), which remains valid when hanging nodes interpolate values
strictly between the binary limits.
"""

from __future__ import annotations

import numpy as np

from ..mesh.mesh import Mesh


def threshold_octree(phi: np.ndarray, delta: float = 0.8) -> np.ndarray:
    """``phi_BW,o``: +1 where phi <= delta (immersed phase), else -1."""
    return np.where(np.asarray(phi) <= delta, 1.0, -1.0)


def interface_elements(mesh: Mesh, bw: np.ndarray, tol: float = 1e-9) -> np.ndarray:
    """Mask of elements containing interface: ``|Σ_nodes phi_BW,o| != nodes``
    (paper Eq. 5).  Hanging corners carry interpolated (fractional) values,
    which correctly flag their elements too."""
    ev = mesh.elem_gather(bw)  # (n_elems, nc)
    nc = ev.shape[1]
    return np.abs(np.abs(ev.sum(axis=1)) - nc) > tol


def pure_phase_elements(mesh: Mesh, bw: np.ndarray, sign: float, tol: float = 1e-9):
    """Elements whose corners are all at ``sign`` (+1 or -1)."""
    ev = mesh.elem_gather(bw)
    nc = ev.shape[1]
    return np.abs(ev.sum(axis=1) - sign * nc) <= tol
