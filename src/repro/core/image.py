"""Uniform-grid reference implementation of the region identifier
(paper Sec. II-B1, Fig. 1).

The mesh algorithms are "inspired by the classic image processing idea of
erosion and dilation"; this module implements that classic pipeline on plain
NumPy grids — threshold T, erosion E, dilation D, subtraction S — with a
3**dim box structuring element (a node flips when any of its 3**dim - 1
neighbors differs, matching the element-based mesh operations exactly on
uniform meshes; the tests verify this equivalence).

Implemented with pure array shifts — no image library — per the from-scratch
substrate policy.
"""

from __future__ import annotations

import itertools

import numpy as np


def threshold(phi: np.ndarray, delta: float = 0.8) -> np.ndarray:
    """``T(phi)``: binary 0/1 image; immersed phase (phi <= delta) becomes 1.

    Use ``delta = -0.8`` when the immersed phase sits at phi = -1 and the
    bulk at +1 (the paper picks ±0.8 by which phase is immersed).
    """
    return (np.asarray(phi) <= delta).astype(np.int8)


def _neighbor_any(bw: np.ndarray, value: int) -> np.ndarray:
    """Mask of pixels having any (box-stencil) neighbor equal to ``value``,
    treating out-of-domain as *not* matching."""
    match = bw == value
    out = np.zeros(bw.shape, dtype=bool)
    dim = bw.ndim
    for off in itertools.product((-1, 0, 1), repeat=dim):
        if all(o == 0 for o in off):
            continue
        src = tuple(
            slice(max(-o, 0), bw.shape[d] - max(o, 0)) for d, o in enumerate(off)
        )
        dst = tuple(
            slice(max(o, 0), bw.shape[d] - max(-o, 0)) for d, o in enumerate(off)
        )
        out[dst] |= match[src]
    return out


def erode(bw: np.ndarray, steps: int = 1) -> np.ndarray:
    """``E(phi)``: shrink the 1-region; a 1 with any 0 neighbor becomes 0."""
    bw = np.asarray(bw).astype(np.int8)
    for _ in range(steps):
        bw = np.where((bw == 1) & _neighbor_any(bw, 0), 0, bw).astype(np.int8)
    return bw


def dilate(bw: np.ndarray, steps: int = 1) -> np.ndarray:
    """``D(phi)``: grow the 1-region; a 0 with any 1 neighbor becomes 1."""
    bw = np.asarray(bw).astype(np.int8)
    for _ in range(steps):
        bw = np.where((bw == 0) & _neighbor_any(bw, 1), 1, bw).astype(np.int8)
    return bw


def subtract(bw_orig: np.ndarray, bw_dilated: np.ndarray) -> np.ndarray:
    """``S(phi)``: pixels 1 in the original but 0 after erode+dilate — the
    features thin enough to vanish under erosion (regions of interest)."""
    return ((bw_orig == 1) & (bw_dilated == 0)).astype(np.int8)


def identify_regions(
    phi: np.ndarray,
    *,
    delta: float = 0.8,
    n_erode: int = 2,
    n_extra_dilate: int = 3,
) -> np.ndarray:
    """Full T/E/D/S pipeline of Fig. 1.

    The number of dilations exceeds the erosions by ``n_extra_dilate``
    (paper: 3-4 extra steps suffice) so surviving bulk regions regrow past
    their thresholded footprint and are *not* flagged.
    """
    bw = threshold(phi, delta)
    eroded = erode(bw, n_erode)
    dilated = dilate(eroded, n_erode + n_extra_dilate)
    return subtract(bw, dilated)
