"""AMR remeshing driver: identification → multi-level refine/coarsen →
2:1 balance → inter-grid transfer.

This orchestrates the paper's per-timestep adaptation loop: the interface
region (``|phi| < delta_star``) is resolved at ``interface_level``; elements
flagged by the local-Cahn identifier get ``feature_level`` (deeper); pure
phases coarsen toward ``coarse_level``.  Refinement and coarsening may jump
several levels at once (Algorithms 5-6), after which balance is restored and
all fields transfer to the new grid in a single multi-level pass.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields as dc_fields
from typing import Dict, Optional

import numpy as np

from .. import obs
from ..core.identifier import IdentifierConfig, IdentifierResult, identify_local_cahn
from ..core.threshold import interface_elements, threshold_octree
from ..mesh.intergrid import transfer_node_centered
from ..mesh.mesh import Mesh
from ..octree.balance import balance
from ..octree.coarsen import coarsen
from ..octree.refine import refine


@dataclass
class RemeshConfig:
    coarse_level: int  # pure-phase resolution
    interface_level: int  # resolution of |phi| < delta_star
    feature_level: int  # resolution of identified key features
    delta_star: float = 0.95  # interface band threshold
    identifier: Optional[IdentifierConfig] = None  # None -> no local Cahn

    def __post_init__(self):
        if not (
            self.coarse_level <= self.interface_level <= self.feature_level
        ):
            raise ValueError("levels must satisfy coarse <= interface <= feature")

    # JSON round-trip: the declarative scenario registry (repro.scenarios)
    # stores refinement policies as plain dicts inside scenario configs.

    def to_dict(self) -> dict:
        d = asdict(self)
        if self.identifier is not None:
            d["identifier"] = asdict(self.identifier)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "RemeshConfig":
        from ..core.identifier import IdentifierConfig

        d = dict(d)
        known = {f.name for f in dc_fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown RemeshConfig keys: {sorted(unknown)}")
        ident = d.pop("identifier", None)
        if ident is not None:
            ident = IdentifierConfig(**ident)
        return cls(identifier=ident, **d)


@dataclass
class RemeshInfo:
    target_levels: np.ndarray
    n_refined: int
    n_coarsened: int
    identifier: Optional[IdentifierResult]
    level_histogram: np.ndarray


def compute_target_levels(
    mesh: Mesh,
    phi: np.ndarray,
    cfg: RemeshConfig,
    identifier_result: Optional[IdentifierResult] = None,
) -> np.ndarray:
    """Per-element desired level from the phase field and detected features.

    Refinement happens only near the interface — even elements with reduced
    Cn stay coarse away from it (paper Sec. II-B3: padding does not trigger
    refinement).
    """
    ev = mesh.elem_gather(phi)
    near = np.any(np.abs(ev) < cfg.delta_star, axis=1)
    crossing = (ev.min(axis=1) < 0) & (ev.max(axis=1) > 0)
    interface = near | crossing
    target = np.full(mesh.n_elems, cfg.coarse_level, dtype=np.int64)
    target[interface] = cfg.interface_level
    if identifier_result is not None:
        target[interface & identifier_result.detected] = cfg.feature_level
    return target


def remesh(
    mesh: Mesh,
    fields: Dict[str, np.ndarray],
    cfg: RemeshConfig,
    *,
    phi_name: str = "phi",
):
    """One adaptation cycle.  Returns ``(new_mesh, new_fields, info)``."""
    with obs.span("remesh"):
        phi = fields[phi_name]
        with obs.span("remesh.identify"):
            ident = (
                identify_local_cahn(mesh, phi, cfg.identifier)
                if cfg.identifier is not None
                else None
            )
            targets = compute_target_levels(mesh, phi, cfg, ident)

        tree = mesh.tree
        # Multi-level refinement where targets exceed current levels.
        with obs.span("remesh.refine"):
            refined = refine(tree, np.maximum(tree.levels, targets))
        n_refined = len(refined) - len(tree)
        # Coarsening votes: map original targets onto the refined leaves.
        with obs.span("remesh.coarsen"):
            orig = tree.locate_points(refined.centers().astype(np.int64))
            votes = np.minimum(refined.levels, targets[orig])
            coarsened = coarsen(refined, votes)
        n_coarsened = len(refined) - len(coarsened)
        with obs.span("remesh.balance"):
            balanced = balance(coarsened)

        with obs.span("remesh.transfer"):
            new_mesh = Mesh(balanced, check_balance=False)
            new_fields = {
                name: transfer_node_centered(mesh, vec, new_mesh)
                for name, vec in fields.items()
            }
        obs.incr("remesh.cycles")
        obs.gauge("remesh.n_refined", n_refined)
        obs.gauge("remesh.n_coarsened", n_coarsened)
        obs.gauge("remesh.n_elems", new_mesh.n_elems)
        hist = np.bincount(balanced.levels, minlength=cfg.feature_level + 1)
        info = RemeshInfo(
            target_levels=targets,
            n_refined=n_refined,
            n_coarsened=n_coarsened,
            identifier=ident,
            level_histogram=hist,
        )
    return new_mesh, new_fields, info


def level_fractions(mesh: Mesh) -> dict:
    """Element-count and volume fractions per level (paper Fig. 8)."""
    levels = mesh.tree.levels
    counts = np.bincount(levels)
    vols = np.zeros(len(counts))
    np.add.at(vols, levels, mesh.tree.volumes())
    total_v = vols.sum()
    return {
        "levels": np.arange(len(counts)),
        "element_fraction": counts / max(len(levels), 1),
        "volume_fraction": vols / total_v if total_v else vols,
        "counts": counts,
    }


def uniform_equivalent_points(mesh: Mesh) -> float:
    """Grid points of the uniform mesh at the finest level — the paper's
    "equivalent 35 trillion grid points" metric."""
    finest = int(mesh.tree.levels.max())
    return float((2**finest + 1)) ** mesh.dim
