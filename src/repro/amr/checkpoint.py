"""Checkpoint / restart with growing process counts (paper Sec. II-E).

Checkpoints are dumped at frequent intervals; a restart may use the *same or
larger* number of processes.  On a larger job, the world communicator is
split into an *active* communicator (the size of the writing job), which
loads the checkpoint and rebuilds the mesh, and an *inactive* communicator
whose ranks hold no data; the first repartition redistributes elements over
the full world, activating everyone.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

import numpy as np

from ..mpi.comm import Comm
from ..octree import morton
from ..octree.partition import repartition
from ..octree.tree import Octree


def save_checkpoint(
    path: str,
    tree: Octree,
    fields: Dict[str, np.ndarray],
    nprocs: int,
    meta: Optional[dict] = None,
) -> None:
    """Serialize a (gathered) tree + per-DOF fields, recording the writer's
    process count.  ``meta`` carries JSON-serializable restart scalars (step
    index, simulated time, config digest — the scenario runner's restart
    hook); checkpoints written without it load with ``meta == {}``.

    The write is atomic (tmp file + ``os.replace``) so an interrupt mid-dump
    never leaves a torn checkpoint behind for the restart path to trip on.
    """
    payload = {
        "dim": np.int64(tree.dim),
        "anchors": tree.anchors,
        "levels": tree.levels,
        "nprocs": np.int64(nprocs),
        "meta_json": np.str_(json.dumps(meta or {})),
    }
    for name, vec in fields.items():
        payload[f"field_{name}"] = np.asarray(vec)
    final = path if path.endswith(".npz") else path + ".npz"
    tmp = final + ".tmp.npz"
    np.savez(tmp[: -len(".npz")], **payload)
    os.replace(tmp, final)


def load_checkpoint(path: str) -> Tuple[Octree, Dict[str, np.ndarray], int]:
    tree, fields, nprocs, _ = load_checkpoint_meta(path)
    return tree, fields, nprocs


def load_checkpoint_meta(
    path: str,
) -> Tuple[Octree, Dict[str, np.ndarray], int, dict]:
    """Like :func:`load_checkpoint` but also returns the restart ``meta``
    dict ({} for checkpoints written before meta existed)."""
    data = np.load(path if path.endswith(".npz") else path + ".npz")
    tree = Octree(data["anchors"], data["levels"], int(data["dim"]), presorted=True)
    fields = {
        k[len("field_") :]: data[k] for k in data.files if k.startswith("field_")
    }
    meta = json.loads(str(data["meta_json"])) if "meta_json" in data.files else {}
    return tree, fields, int(data["nprocs"]), meta


def restart_distributed(
    comm: Comm, path: str
) -> Tuple[Octree, Dict[str, slice], "Comm | None"]:
    """Reload a checkpoint on ``comm`` which may be larger than the writer.

    Returns ``(local_tree, field_slices, active_comm)``: ranks beyond the
    writer count start with empty chunks (inactive); a subsequent
    :func:`rebalance_all` spreads the load over every rank, matching the
    paper's activation-on-repartition behavior.
    """
    tree, fields, n_active = load_checkpoint(path)
    n_active = min(n_active, comm.size)
    active = comm.rank < n_active
    # MPI_Comm_split into active / inactive groups.
    sub = comm.split(0 if active else 1)
    if active:
        bounds = np.linspace(0, len(tree), n_active + 1).astype(np.int64)
        lo, hi = int(bounds[sub.rank]), int(bounds[sub.rank + 1])
        local = Octree(
            tree.anchors[lo:hi], tree.levels[lo:hi], tree.dim, presorted=True
        )
    else:
        local = Octree.empty(tree.dim)
    return local, fields, (sub if active else None)


def rebalance_all(comm: Comm, local: Octree) -> Octree:
    """Repartition over the *full* communicator — inactive ranks receive
    elements and become active."""
    return repartition(comm, local)
