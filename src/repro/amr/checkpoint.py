"""Checkpoint / restart with growing process counts (paper Sec. II-E).

Checkpoints are dumped at frequent intervals; a restart may use the *same or
larger* number of processes.  On a larger job, the world communicator is
split into an *active* communicator (the size of the writing job), which
loads the checkpoint and rebuilds the mesh, and an *inactive* communicator
whose ranks hold no data; the first repartition redistributes elements over
the full world, activating everyone.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import numpy as np

from ..mpi.comm import Comm
from ..octree import morton
from ..octree.partition import repartition
from ..octree.tree import Octree


def save_checkpoint(
    path: str, tree: Octree, fields: Dict[str, np.ndarray], nprocs: int
) -> None:
    """Serialize a (gathered) tree + per-DOF fields, recording the writer's
    process count."""
    payload = {
        "dim": np.int64(tree.dim),
        "anchors": tree.anchors,
        "levels": tree.levels,
        "nprocs": np.int64(nprocs),
    }
    for name, vec in fields.items():
        payload[f"field_{name}"] = np.asarray(vec)
    np.savez(path, **payload)


def load_checkpoint(path: str) -> Tuple[Octree, Dict[str, np.ndarray], int]:
    data = np.load(path if path.endswith(".npz") else path + ".npz")
    tree = Octree(data["anchors"], data["levels"], int(data["dim"]), presorted=True)
    fields = {
        k[len("field_") :]: data[k] for k in data.files if k.startswith("field_")
    }
    return tree, fields, int(data["nprocs"])


def restart_distributed(
    comm: Comm, path: str
) -> Tuple[Octree, Dict[str, slice], "Comm | None"]:
    """Reload a checkpoint on ``comm`` which may be larger than the writer.

    Returns ``(local_tree, field_slices, active_comm)``: ranks beyond the
    writer count start with empty chunks (inactive); a subsequent
    :func:`rebalance_all` spreads the load over every rank, matching the
    paper's activation-on-repartition behavior.
    """
    tree, fields, n_active = load_checkpoint(path)
    n_active = min(n_active, comm.size)
    active = comm.rank < n_active
    # MPI_Comm_split into active / inactive groups.
    sub = comm.split(0 if active else 1)
    if active:
        bounds = np.linspace(0, len(tree), n_active + 1).astype(np.int64)
        lo, hi = int(bounds[sub.rank]), int(bounds[sub.rank + 1])
        local = Octree(
            tree.anchors[lo:hi], tree.levels[lo:hi], tree.dim, presorted=True
        )
    else:
        local = Octree.empty(tree.dim)
    return local, fields, (sub if active else None)


def rebalance_all(comm: Comm, local: Octree) -> Octree:
    """Repartition over the *full* communicator — inactive ranks receive
    elements and become active."""
    return repartition(comm, local)
