"""AMR remeshing driver and checkpoint/restart."""

from .checkpoint import (  # noqa: F401
    load_checkpoint,
    rebalance_all,
    restart_distributed,
    save_checkpoint,
)
from .driver import (  # noqa: F401
    RemeshConfig,
    RemeshInfo,
    level_fractions,
    remesh,
    uniform_equivalent_points,
)
