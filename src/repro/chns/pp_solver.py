"""PP-Solve: variable-density pressure Poisson equation
(paper Sec. II-A, step 3).

Projection-based pressure splitting with variable density: find the pressure
increment driving the tentative velocity toward solenoidality,

    div( (1/rho) grad p ) = (We/dt) div(v*)

discretized weakly (no-penetration boundaries make the flux term vanish):

    K_{1/rho} p = -(We/dt) ∫ N div(v*)  →  +(We/dt) ∫ grad N · v*

The operator has the constant nullspace; we solve with CG + Jacobi and a
mean-zero projection, the iterative-solver choice the paper lands on after
finding AMG setup too expensive at scale (Sec. III footnote).

The variable-coefficient stiffness is re-assembled every step (the density
field moves), but only numerically: the symbolic scatter/projection pattern
comes from the per-generation :mod:`repro.fem.plan` cache shared by all
four block solvers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..la.krylov import SolveResult, cg
from ..la.precond import JacobiPreconditioner
from ..mesh.mesh import Mesh
from . import forms
from .params import CHNSParams


@dataclass
class PPResult:
    p: np.ndarray
    solve: SolveResult


class PPSolver:
    def __init__(self, mesh: Mesh, params: CHNSParams):
        self.mesh = mesh
        self.params = params
        self.M_lumped = np.asarray(forms.mass(mesh).sum(axis=1)).ravel()

    def solve(
        self,
        phi: np.ndarray,
        vel_star: np.ndarray,
        dt: float,
        *,
        p0: np.ndarray | None = None,
        tol: float = 1e-9,
    ) -> PPResult:
        mesh, prm = self.mesh, self.params
        with obs.span("pp.assemble"):
            phi_q = forms.field_at_quad(mesh, phi)
            inv_rho_q = 1.0 / prm.rho_clamped(phi_q)
            K = forms.stiffness(mesh, inv_rho_q)

            vq = forms.field_at_quad(mesh, vel_star)  # (e, q, dim)
            b = (prm.We / dt) * forms.flux_divergence_load(mesh, vq)
            b -= b.mean()  # compatibility with the constant nullspace

        res = cg(
            K,
            b,
            x0=p0,
            M=JacobiPreconditioner(K.diagonal() + 1e-12),
            tol=tol,
            maxiter=6000,
        )
        p = res.x - res.x.mean()  # fix the nullspace component
        return PPResult(p=p, solve=res)
