"""PP-Solve: variable-density pressure Poisson equation
(paper Sec. II-A, step 3).

Projection-based pressure splitting with variable density: find the pressure
increment driving the tentative velocity toward solenoidality,

    div( (1/rho) grad p ) = (We/dt) div(v*)

discretized weakly (no-penetration boundaries make the flux term vanish):

    K_{1/rho} p = -(We/dt) ∫ N div(v*)  →  +(We/dt) ∫ grad N · v*

The operator has the constant nullspace; we solve with CG + Jacobi and a
mean-zero projection, the iterative-solver choice the paper lands on after
finding AMG setup too expensive at scale (Sec. III footnote).

The variable-coefficient stiffness is re-assembled every step (the density
field moves), but only numerically: the symbolic scatter/projection pattern
comes from the per-generation :mod:`repro.fem.plan` cache shared by all
four block solvers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..fem.assembly import apply_dirichlet
from ..la.krylov import SolveResult, cg
from ..la.precond import JacobiPreconditioner, make_preconditioner
from ..mesh.mesh import Mesh
from . import forms
from .params import CHNSParams


@dataclass
class PPResult:
    p: np.ndarray
    solve: SolveResult


class PPSolver:
    def __init__(self, mesh: Mesh, params: CHNSParams):
        self.mesh = mesh
        self.params = params
        self.M_lumped = np.asarray(forms.mass(mesh).sum(axis=1)).ravel()

    def solve(
        self,
        phi: np.ndarray,
        vel_star: np.ndarray,
        dt: float,
        *,
        p0: np.ndarray | None = None,
        tol: float = 1e-9,
        precond: str = "jacobi",
        vel_n: np.ndarray | None = None,
        exact_projection: bool = False,
        correction_masks=None,
    ) -> PPResult:
        """``precond="pcd"`` replaces the Jacobi inner preconditioner with a
        GMG V-cycle on ``K_{1/rho}`` itself — the exact pressure Schur
        operator of the projection step — with mean-zero nullspace
        projection wrapped around the cycle.

        ``vel_n`` switches to the *relative* (incremental) right-hand side
        ``div(v* - v^n)``: only the divergence injected by this step's
        momentum update is projected.  The absolute form re-projects the
        O(h^2) weak-divergence residue that the pointwise-gradient velocity
        correction cannot remove, and the ``1/dt`` scaling turns that
        residue into a pressure mode that random-walks as ``dt`` shrinks;
        the relative form cancels the accumulated history exactly.

        ``exact_projection`` replaces the assembled Laplacian ``K_{1/rho}``
        with the *true* discrete Schur operator ``S = D M^{-1} G`` — the
        matrix-free composition of the consistent-gradient correction the
        VU solve applies (including its Dirichlet clamping, via
        ``correction_masks``) with the weak divergence.  With it the
        corrected velocity's weak divergence equals the projection target
        to solver tolerance, so no divergence residue survives to be
        re-amplified; the approximate ``K`` form leaves an O(h^2)-relative
        residue per step.  ``K`` still serves as the CG preconditioner."""
        mesh, prm = self.mesh, self.params
        with obs.span("pp.assemble"):
            phi_q = forms.field_at_quad(mesh, phi)
            inv_rho_q = 1.0 / prm.rho_clamped(phi_q)
            K = forms.stiffness(mesh, inv_rho_q)

            dv = vel_star if vel_n is None else vel_star - vel_n
            vq = forms.field_at_quad(mesh, dv)  # (e, q, dim)
            b = (prm.We / dt) * forms.flux_divergence_load(mesh, vq)
            b -= b.mean()  # compatibility with the constant nullspace

        A_op = (
            self._schur_operator(inv_rho_q, correction_masks, K)
            if exact_projection
            else K
        )
        if precond == "jacobi":
            M = JacobiPreconditioner(K.diagonal() + 1e-12)
        else:
            M = make_preconditioner(precond, K, mesh=mesh, remove_mean=True)
        res = cg(
            A_op,
            b,
            x0=p0,
            M=M,
            tol=tol,
            maxiter=6000,
        )
        obs.incr("pp.krylov_iterations", res.iterations)
        p = res.x - res.x.mean()  # fix the nullspace component
        return PPResult(p=p, solve=res)

    def _schur_operator(self, inv_rho_q, correction_masks, K):
        """Matrix-free ``S = D M^{-1} G + c h^2 K``: apply the
        consistent-gradient load (with 1/rho inside, exactly as the VU
        correction), invert the (Dirichlet-clamped) consistent mass per
        component, take the weak divergence.  LU-factored mass solves keep
        the composition exact to round-off — this runs on verify-sized
        meshes.

        The ``c h^2 K`` term is Brezzi-Pitkaranta pressure stabilization:
        equal-order Q1-Q1 makes the bare Schur complement near-singular on
        checkerboard modes (the inf-sup defect), and enforcing the weak
        divergence exactly lets those modes grow without bound through the
        pressure-accumulation feedback.  The stabilization gives them an
        ``O(h^2)`` eigenvalue — the same size as the smoothest physical
        mode of ``K`` — at the cost of an O(h^2)-relative, dt-independent
        divergence residue that cancels in same-mesh temporal ladders."""
        import scipy.sparse.linalg as spla

        mesh = self.mesh
        n, dim = mesh.n_dofs, mesh.dim
        M = forms.mass(mesh)
        stab = 0.1 * float(np.max(mesh.elem_h())) ** 2
        lus: dict = {}

        def lu_for(mask):
            key = None if mask is None else mask.tobytes()
            if key not in lus:
                if mask is None:
                    A = M.tocsc()
                else:
                    A, _ = apply_dirichlet(
                        M, np.zeros(n), mask, np.zeros(n)
                    )
                    A = A.tocsc()
                lus[key] = spla.splu(A)
            return lus[key]

        def matvec(delta):
            gq = forms.grad_at_quad(mesh, delta)  # (e, q, dim)
            w = np.empty((n, dim))
            for i in range(dim):
                load = forms.source(mesh, inv_rho_q * gq[..., i])
                mask = (
                    None if correction_masks is None else correction_masks[i]
                )
                if mask is not None:
                    load = load.copy()
                    load[mask] = 0.0
                w[:, i] = lu_for(mask).solve(load)
            wq = forms.field_at_quad(mesh, w)
            out = forms.flux_divergence_load(mesh, wq) + stab * (K @ delta)
            return out - out.mean()

        return matvec
