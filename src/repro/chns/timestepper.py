"""Two-block projection time stepper for CHNS (paper Sec. II-A).

Each block performs the four solves in order — CH, NS, PP, VU — and each
timestep runs ``n_blocks`` blocks (the paper's scheme, from Khanwale et al.,
uses two).  Per-solver wall times are recorded; the application-scaling
benchmark (Fig. 5) feeds on these timers.

Optional AMR: every ``remesh_every`` steps the local-Cahn identifier and the
multi-level refine/coarsen/balance/transfer pipeline rebuild the mesh, after
which the block solvers are reconstructed (operators depend on the mesh).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from .. import obs
from ..amr.driver import RemeshConfig, remesh
from ..mesh.mesh import Mesh
from . import forms
from .ch_solver import CHSolver
from .free_energy import ginzburg_landau_energy, total_mass
from .ns_solver import NSSolver
from .params import CHNSParams
from .pp_solver import PPSolver
from .vu_solver import VUSolver


@dataclass
class StepTimers:
    ch: float = 0.0
    ns: float = 0.0
    pp: float = 0.0
    vu: float = 0.0
    remesh: float = 0.0

    def total(self) -> float:
        return self.ch + self.ns + self.pp + self.vu + self.remesh

    def __iadd__(self, other: "StepTimers") -> "StepTimers":
        self.ch += other.ch
        self.ns += other.ns
        self.pp += other.pp
        self.vu += other.vu
        self.remesh += other.remesh
        return self


@dataclass
class Diagnostics:
    mass: float
    energy: float
    div_l2: float
    phi_min: float
    phi_max: float
    n_elems: int


class CHNSTimeStepper:
    """Owns the mesh, the field state, and the four block solvers."""

    def __init__(
        self,
        mesh: Mesh,
        params: CHNSParams,
        *,
        n_blocks: int = 1,
        velocity_bc: Optional[Callable[[Mesh], tuple]] = None,
        remesh_config: Optional[RemeshConfig] = None,
        remesh_every: int = 0,
        precond: Optional[str] = None,
        ch_theta: float = 1.0,
        sources: Optional[Dict[str, Callable]] = None,
        t0: float = 0.0,
        pp_mode: str = "split",
    ):
        """``precond`` names the NS/PP inner-solve preconditioner
        (``None``/"jacobi" keeps the historical behavior; ``"pcd"`` enables
        the GMG-backed block preconditioner).  ``ch_theta`` blends the CH
        block between backward Euler (1.0, default) and Crank-Nicolson
        (0.5).  ``sources`` holds manufactured forcing callables keyed
        ``"ch"`` (scalar ``f(x, t)``) and ``"ns"`` (vector ``f(x, t)``) —
        the MMS hook; ``t0`` anchors the simulated time they see.

        ``pp_mode`` selects the pressure-splitting flavor:

        * ``"split"`` (default, historical): each block's Poisson solve
          rebuilds the pressure from ``div v*`` and the stored field is the
          splitting variable — the momentum predictor's explicit ``grad p^n``
          plus the correction's ``grad p^{n+1}`` make the *effective*
          pressure ``p^n + p^{n+1} ~ 2 p``.
        * ``"incremental"`` (van Kan): the momentum predictor carries the
          full accumulated pressure, the Poisson solve projects only the
          increment driven by ``div(v* - v^n)``, and ``p += delta``.  The
          per-step correction is then O(dt), which makes the splitting
          error second order in time.
        * ``"schur"``: incremental accumulation with the *exact* discrete
          Schur projection (``PPSolver.solve(exact_projection=True)``) —
          the corrected velocity's weak divergence is pinned to the solver
          tolerance every step, so neither the O(h^2) grad/div adjointness
          residue nor the Dirichlet-clamp leakage can accumulate.  The
          configuration the temporal MMS ladders in :mod:`repro.verify`
          measure; too expensive per step for production scenarios.
        """
        self.params = params
        self.n_blocks = n_blocks
        self.velocity_bc = velocity_bc
        self.remesh_config = remesh_config
        self.remesh_every = remesh_every
        self.precond = precond or "jacobi"
        self.ch_theta = float(ch_theta)
        if pp_mode not in ("split", "incremental", "schur"):
            raise ValueError(f"unknown pp_mode {pp_mode!r}")
        self.pp_mode = pp_mode
        self.sources = sources or {}
        self.t0 = float(t0)
        self.t = float(t0)
        self.step_count = 0
        self.timers = StepTimers()
        #: cumulative nonlinear/linear work: Newton iterations (CH block)
        #: and Krylov iterations (NS/PP/VU solves) — the scenario results
        #: store reads these as the per-job solver cost.  The per-block
        #: ``krylov_ns``/``krylov_pp``/``krylov_vu`` split feeds the
        #: preconditioner ablation benchmark.
        self.iteration_counts = {
            "newton": 0,
            "krylov": 0,
            "krylov_ns": 0,
            "krylov_pp": 0,
            "krylov_vu": 0,
        }
        self._bind_mesh(mesh)

    # ------------------------------------------------------------- state

    def _bind_mesh(self, mesh: Mesh) -> None:
        self.mesh = mesh
        self.ch = CHSolver(mesh, self.params)
        self.ns = NSSolver(mesh, self.params)
        self.pp = PPSolver(mesh, self.params)
        self.vu = VUSolver(mesh, self.params)
        if self.velocity_bc is not None:
            self.v_masks, self.v_values = self.velocity_bc(mesh)
        else:
            self.v_masks = self.v_values = None

    def initialize(self, phi0: Callable[[np.ndarray], np.ndarray]) -> None:
        """Set phi from a function of unit-cube coordinates; velocity and
        pressure start at rest; mu is made consistent with phi."""
        mesh = self.mesh
        self.t = self.t0
        self.phi = mesh.interpolate(phi0)
        self.mu = self.ch.initial_mu(self.phi)
        self.vel = np.zeros((mesh.n_dofs, mesh.dim))
        self.vel_old = np.zeros_like(self.vel)
        self.p = np.zeros(mesh.n_dofs)
        if self.v_masks is not None and self.v_values is not None:
            for i in range(mesh.dim):
                self.vel[self.v_masks[i], i] = self.v_values[i][self.v_masks[i]]
                self.vel_old[:, i] = self.vel[:, i]

    def restore(
        self,
        *,
        phi: np.ndarray,
        mu: np.ndarray,
        vel: np.ndarray,
        vel_old: np.ndarray,
        p: np.ndarray,
        step_count: int,
        t: Optional[float] = None,
    ) -> None:
        """Resume from checkpointed state instead of :meth:`initialize`.

        The stepper's per-step evolution carries no hidden cross-step
        solver state (Newton's LU-fallback counter is per-solve, assembly
        plans are pure functions of the mesh), so restoring these six
        items reproduces an uninterrupted run bit-for-bit — the contract
        the scenario checkpoint/restart test pins down.
        """
        n, dim = self.mesh.n_dofs, self.mesh.dim
        for name, vec, shape in (
            ("phi", phi, (n,)),
            ("mu", mu, (n,)),
            ("p", p, (n,)),
            ("vel", vel, (n, dim)),
            ("vel_old", vel_old, (n, dim)),
        ):
            if np.shape(vec) != shape:
                raise ValueError(
                    f"restore: {name} has shape {np.shape(vec)}, expected "
                    f"{shape} for this mesh"
                )
        self.phi = np.asarray(phi, dtype=float)
        self.mu = np.asarray(mu, dtype=float)
        self.vel = np.asarray(vel, dtype=float)
        self.vel_old = np.asarray(vel_old, dtype=float)
        self.p = np.asarray(p, dtype=float)
        self.step_count = int(step_count)
        if t is not None:
            self.t = float(t)

    # -------------------------------------------------------------- step

    def step(self, dt: float) -> StepTimers:
        """One timestep.  Per-solver wall times land both in the returned
        :class:`StepTimers` (the stable public surface) and — when
        :mod:`repro.obs` tracing is enabled — in the span tree under
        ``chns.step/{remesh,ch,ns,pp,vu}``: one measurement, two views."""
        timers = StepTimers()
        with obs.span("chns.step"):
            if (
                self.remesh_every
                and self.remesh_config is not None
                and self.step_count > 0
                and self.step_count % self.remesh_every == 0
            ):
                with obs.stopwatch("chns.remesh") as sw:
                    self._do_remesh()
                timers.remesh += sw.elapsed

            dt_b = dt / self.n_blocks
            for k in range(self.n_blocks):
                t_n = self.t + k * dt_b
                s_phi, ns_forcing = self._block_sources(t_n, dt_b)
                with obs.stopwatch("chns.ch") as sw_ch:
                    # CN (theta<1) advects phi with the midpoint-extrapolated
                    # velocity so the whole block stays second order; BE
                    # keeps the historical v^n.
                    ch_vel = (
                        self.vel
                        if self.ch_theta == 1.0
                        else 1.5 * self.vel - 0.5 * self.vel_old
                    )
                    ch_res = self.ch.solve(
                        self.phi, self.mu, ch_vel, dt_b,
                        theta=self.ch_theta, source_phi=s_phi,
                    )
                    self.phi, self.mu = ch_res.phi, ch_res.mu
                with obs.stopwatch("chns.ns") as sw_ns:
                    ns_res = self.ns.solve(
                        self.phi,
                        self.mu,
                        self.vel,
                        self.vel_old,
                        self.p,
                        dt_b,
                        dirichlet_masks=self.v_masks,
                        dirichlet_values=self.v_values,
                        precond=self.precond,
                        forcing=ns_forcing,
                    )
                with obs.stopwatch("chns.pp") as sw_pp:
                    # Splitting note ("split" mode): the momentum predictor
                    # carried grad p^n explicitly and the correction applies
                    # grad p^{n+1}, so the *effective* pressure of the
                    # scheme is p^n + p^{n+1} ~ 2 p — the stored field is
                    # the splitting variable, half the physical pressure.
                    # Naive accumulation (p += delta) on the absolute RHS is
                    # NOT an option: the pointwise-gradient correction and
                    # the weak-divergence Poisson RHS are not discrete
                    # adjoints, and the O(h^2) mismatch re-amplified by the
                    # 1/dt Poisson scaling makes an accumulated pressure
                    # drift without bound.  "incremental" mode avoids both
                    # problems by projecting only div(v* - v^n), which makes
                    # the increment O(dt) and cancels the residue history.
                    incremental = self.pp_mode != "split"
                    schur = self.pp_mode == "schur"
                    pp_res = self.pp.solve(
                        self.phi, ns_res.vel_star, dt_b,
                        p0=None if incremental else self.p,
                        precond=self.precond,
                        # The exact projection re-zeros the full divergence
                        # every step (nothing survives to accumulate), so
                        # it uses the absolute RHS; the approximate form
                        # must go relative to keep the residue out.
                        vel_n=self.vel if incremental and not schur else None,
                        exact_projection=schur,
                        correction_masks=self.v_masks if schur else None,
                    )
                    if incremental:
                        self.p = self.p + pp_res.p
                        self.p -= self.p.mean()
                    else:
                        self.p = pp_res.p
                with obs.stopwatch("chns.vu") as sw_vu:
                    vu_res = self.vu.solve(
                        self.phi,
                        ns_res.vel_star,
                        pp_res.p,
                        dt_b,
                        dirichlet_masks=self.v_masks,
                        dirichlet_values=self.v_values,
                    )
                self.vel_old = self.vel
                self.vel = vu_res.vel
                self.iteration_counts["newton"] += ch_res.newton.iterations
                it_ns = sum(s.iterations for s in ns_res.solves)
                it_pp = pp_res.solve.iterations
                it_vu = sum(s.iterations for s in vu_res.solves)
                self.iteration_counts["krylov"] += it_ns + it_pp + it_vu
                self.iteration_counts["krylov_ns"] += it_ns
                self.iteration_counts["krylov_pp"] += it_pp
                self.iteration_counts["krylov_vu"] += it_vu
                timers.ch += sw_ch.elapsed
                timers.ns += sw_ns.elapsed
                timers.pp += sw_pp.elapsed
                timers.vu += sw_vu.elapsed
            obs.incr("chns.steps")
            obs.gauge("chns.n_elems", self.mesh.n_elems)

        self.t += dt
        self.step_count += 1
        self.timers += timers
        return timers

    def _block_sources(self, t_n: float, dt_b: float):
        """Assembled manufactured-forcing loads for one block starting at
        ``t_n``: the CH load is theta-weighted to match the CH scheme, the
        NS load is the trapezoidal average matching the CN predictor."""
        s_phi = ns_forcing = None
        f_ch = self.sources.get("ch")
        if f_ch is not None:
            th = self.ch_theta
            s_phi = th * forms.source_at(self.mesh, f_ch, t_n + dt_b)
            if th != 1.0:
                s_phi = s_phi + (1.0 - th) * forms.source_at(
                    self.mesh, f_ch, t_n
                )
        f_ns = self.sources.get("ns")
        if f_ns is not None:
            ns_forcing = 0.5 * (
                forms.source_at(self.mesh, f_ns, t_n)
                + forms.source_at(self.mesh, f_ns, t_n + dt_b)
            )
        return s_phi, ns_forcing

    def _do_remesh(self) -> None:
        fields = {
            "phi": self.phi,
            "mu": self.mu,
            "p": self.p,
        }
        for i in range(self.mesh.dim):
            fields[f"v{i}"] = self.vel[:, i]
            fields[f"vold{i}"] = self.vel_old[:, i]
        new_mesh, new_fields, _ = remesh(self.mesh, fields, self.remesh_config)
        self._bind_mesh(new_mesh)
        self.phi = new_fields["phi"]
        self.mu = new_fields["mu"]
        self.p = new_fields["p"]
        self.vel = np.stack(
            [new_fields[f"v{i}"] for i in range(new_mesh.dim)], axis=1
        )
        self.vel_old = np.stack(
            [new_fields[f"vold{i}"] for i in range(new_mesh.dim)], axis=1
        )

    # -------------------------------------------------------- diagnostics

    def diagnostics(self) -> Diagnostics:
        return Diagnostics(
            mass=total_mass(self.mesh, self.phi),
            energy=ginzburg_landau_energy(self.mesh, self.phi, self.params.Cn),
            div_l2=forms.divergence_l2(self.mesh, self.vel),
            phi_min=float(self.phi.min()),
            phi_max=float(self.phi.max()),
            n_elems=self.mesh.n_elems,
        )


def no_slip_bc(mesh: Mesh):
    """All-wall no-slip velocity boundary conditions."""
    masks = [mesh.boundary_dof_mask() for _ in range(mesh.dim)]
    values = [np.zeros(mesh.n_dofs) for _ in range(mesh.dim)]
    return masks, values


def lid_driven_bc(mesh: Mesh, lid_speed: float = 1.0):
    """No-slip walls with a moving top lid (classic cavity flow)."""
    masks, values = no_slip_bc(mesh)
    top = mesh.face_dof_mask(1, 1)
    values[0][top] = lid_speed
    return masks, values


def jet_inflow_bc(mesh: Mesh, half_width: float = 0.08, speed: float = 1.0):
    """Left-wall inflow over |y - 0.5| < half_width, no-slip elsewhere,
    natural outflow on the right wall."""
    dim = mesh.dim
    xy = mesh.dof_xy()
    boundary = mesh.boundary_dof_mask()
    right = mesh.face_dof_mask(0, 1)
    masks = [boundary & ~right for _ in range(dim)]
    values = [np.zeros(mesh.n_dofs) for _ in range(dim)]
    inflow = mesh.face_dof_mask(0, 0) & (np.abs(xy[:, 1] - 0.5) < half_width)
    values[0][inflow] = speed
    return masks, values
