"""VU-Solve: velocity correction / projection (paper Sec. II-A, step 4).

The tentative velocity is corrected with the new pressure,

    v^{n+1} = v* - (dt / (We rho)) grad p,

realized as one mass solve *per direction*: the paper's memory remark —
splitting the update per component shrinks the assembled matrix from
``N x DIM x k`` to ``N x k`` nonzeros, and the mass matrix is assembled once
and reused for every direction (and every later step) until the mesh
changes, with no further Mat_Assembly calls.  (The one-time assembly itself
rides the per-generation :mod:`repro.fem.plan` symbolic cache, so even the
post-remesh rebuild shares pattern work with the other block solvers.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fem.assembly import apply_dirichlet
from ..la.krylov import SolveResult, cg
from ..la.precond import JacobiPreconditioner
from ..mesh.mesh import Mesh
from . import forms
from .params import CHNSParams


@dataclass
class VUResult:
    vel: np.ndarray  # (n_dofs, dim) solenoidal velocity
    solves: list


class VUSolver:
    def __init__(self, mesh: Mesh, params: CHNSParams):
        self.mesh = mesh
        self.params = params
        # Assembled once; reused across directions and steps (paper remark).
        self.M = forms.mass(mesh)
        self._pc = JacobiPreconditioner(self.M)

    def solve(
        self,
        phi: np.ndarray,
        vel_star: np.ndarray,
        p: np.ndarray,
        dt: float,
        *,
        dirichlet_masks=None,
        dirichlet_values=None,
        tol: float = 1e-10,
    ) -> VUResult:
        mesh, prm = self.mesh, self.params
        dim = mesh.dim
        phi_q = forms.field_at_quad(mesh, phi)
        inv_rho_q = 1.0 / prm.rho_clamped(phi_q)
        grad_p_q = forms.grad_at_quad(mesh, p)  # (e, q, dim)

        vel = np.zeros_like(vel_star)
        solves = []
        for i in range(dim):
            rhs = self.M @ vel_star[:, i] - (dt / prm.We) * forms.source(
                mesh, inv_rho_q * grad_p_q[..., i]
            )
            if dirichlet_masks is not None:
                mask = dirichlet_masks[i]
                vals = (
                    dirichlet_values[i]
                    if dirichlet_values is not None
                    else np.zeros(mesh.n_dofs)
                )
                A_i, rhs_i = apply_dirichlet(self.M, rhs, mask, vals)
                pc = JacobiPreconditioner(A_i)
            else:
                A_i, rhs_i, pc = self.M, rhs, self._pc
            res = cg(
                A_i, rhs_i, x0=vel_star[:, i].copy(), M=pc, tol=tol, maxiter=3000
            )
            solves.append(res)
            vel[:, i] = res.x
        return VUResult(vel=vel, solves=solves)
