"""Non-dimensional parameters and mixture properties of the CHNS model
(paper Sec. II-A, Eqs. 1-3).

All quantities follow the paper's normalization by the heavy phase (+):
``rho(phi) = ((rho_+ - rho_-)/(2 rho_+)) phi + (rho_+ + rho_-)/(2 rho_+)``
and similarly for viscosity, so ``rho(+1) = 1`` and ``rho(-1) =
rho_-/rho_+``.  The degenerate mobility is ``m(phi) = sqrt(1 - phi^2)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class CHNSParams:
    """Peclet, Reynolds, Weber, Cahn, Froude + phase property ratios."""

    Re: float = 100.0  # u_r L_r / nu_r
    We: float = 1.0  # rho_r u_r^2 L_r / sigma
    Pe: float = 100.0  # u_r L_r^2 / (m_r sigma)
    Cn: float = 0.05  # eps / L_r (diffuse interface thickness)
    Fr: float = np.inf  # u_r^2 / (g L_r); inf = no gravity
    rho_plus: float = 1.0
    rho_minus: float = 0.1
    eta_plus: float = 1.0
    eta_minus: float = 0.1
    gravity_dir: tuple = (0.0, -1.0)

    def __post_init__(self):
        for name in ("Re", "We", "Pe", "Cn"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.rho_plus <= 0 or self.rho_minus <= 0:
            raise ValueError("densities must be positive")

    # ------------------------------------------------------------ mixtures

    def rho(self, phi: np.ndarray) -> np.ndarray:
        """Non-dimensional mixture density (1 at phi=+1)."""
        rp, rm = self.rho_plus, self.rho_minus
        return ((rp - rm) / (2 * rp)) * np.asarray(phi) + (rp + rm) / (2 * rp)

    def eta(self, phi: np.ndarray) -> np.ndarray:
        """Non-dimensional mixture viscosity (1 at phi=+1)."""
        ep, em = self.eta_plus, self.eta_minus
        return ((ep - em) / (2 * ep)) * np.asarray(phi) + (ep + em) / (2 * ep)

    def rho_clamped(self, phi: np.ndarray) -> np.ndarray:
        """Density evaluated on phi clipped to [-1, 1] and floored away from
        zero — bound violations at coarse resolution must not produce
        negative density (the failure mode the local-Cahn scheme targets)."""
        r = self.rho(np.clip(phi, -1.0, 1.0))
        floor = 0.1 * min(self.rho_minus / self.rho_plus, 1.0)
        return np.maximum(r, floor)

    def eta_clamped(self, phi: np.ndarray) -> np.ndarray:
        e = self.eta(np.clip(phi, -1.0, 1.0))
        floor = 0.1 * min(self.eta_minus / self.eta_plus, 1.0)
        return np.maximum(e, floor)

    def J_coeff(self) -> float:
        """Prefactor of the diffusive mass flux ``J_i`` (paper Eq. 1):
        ``(rho_- - rho_+) / (2 rho_+ Cn)``."""
        return (self.rho_minus - self.rho_plus) / (2 * self.rho_plus * self.Cn)

    def gravity_coeff(self) -> float:
        """1/Fr, zero when gravity is off."""
        return 0.0 if np.isinf(self.Fr) else 1.0 / self.Fr
