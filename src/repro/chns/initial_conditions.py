"""Initial phase-field configurations for the examples and benchmarks.

All profiles use the equilibrium tanh shape with interface thickness set by
the Cahn number; by the paper's convention phi = -1 in the immersed (light /
dispersed) phase and +1 in the bulk, but each helper takes an ``inside``
sign so either convention works.
"""

from __future__ import annotations

import numpy as np


def tanh_profile(signed_distance: np.ndarray, Cn: float, inside: float = -1.0):
    """Equilibrium diffuse-interface profile for a signed distance field
    (negative inside the feature)."""
    return -inside * np.tanh(np.asarray(signed_distance) / (np.sqrt(2.0) * Cn))


def drop(x: np.ndarray, center, radius: float, Cn: float, inside=-1.0):
    d = np.linalg.norm(np.asarray(x) - np.asarray(center), axis=-1) - radius
    return tanh_profile(d, Cn, inside)


def two_drops(x, c1, r1, c2, r2, Cn, inside=-1.0):
    """Two drops (e.g. a coalescence setup): union via min distance."""
    d1 = np.linalg.norm(np.asarray(x) - np.asarray(c1), axis=-1) - r1
    d2 = np.linalg.norm(np.asarray(x) - np.asarray(c2), axis=-1) - r2
    return tanh_profile(np.minimum(d1, d2), Cn, inside)


def filament(x, y0: float, half_width: float, x0: float, x1: float, Cn, inside=-1.0):
    """Horizontal filament (thin ligament) spanning [x0, x1]."""
    x = np.asarray(x)
    d_band = np.abs(x[..., 1] - y0) - half_width
    d_span = np.maximum(x0 - x[..., 0], x[..., 0] - x1)
    return tanh_profile(np.maximum(d_band, d_span), Cn, inside)


def jet_column(
    x,
    y0: float = 0.5,
    half_width: float = 0.08,
    length: float = 0.45,
    Cn: float = 0.02,
    perturb_amp: float = 0.0,
    perturb_k: float = 6.0,
    inside=-1.0,
):
    """Liquid jet entering from the left wall: a rounded-tip column with an
    optional sinusoidal surface perturbation that seeds primary atomization
    (paper Sec. IV)."""
    x = np.asarray(x)
    r = half_width * (
        1.0 + perturb_amp * np.sin(2 * np.pi * perturb_k * x[..., 0])
    )
    dy = np.abs(x[..., 1] - y0)
    # Inside the column while x < length; rounded cap beyond.
    d_body = dy - r
    d_cap = np.sqrt((x[..., 0] - length) ** 2 + dy**2) - half_width
    d = np.where(x[..., 0] <= length, d_body, d_cap)
    return tanh_profile(d, Cn, inside)


def rising_bubble(x, center=(0.5, 0.25), radius=0.15, Cn=0.02):
    """Light bubble (phi = -1 inside) in heavy fluid — with gravity it rises."""
    return drop(x, center, radius, Cn, inside=-1.0)
