"""Initial phase-field configurations for the examples and benchmarks.

All profiles use the equilibrium tanh shape with interface thickness set by
the Cahn number; by the paper's convention phi = -1 in the immersed (light /
dispersed) phase and +1 in the bulk, but each helper takes an ``inside``
sign so either convention works.
"""

from __future__ import annotations

import numpy as np


def tanh_profile(signed_distance: np.ndarray, Cn: float, inside: float = -1.0):
    """Equilibrium diffuse-interface profile for a signed distance field
    (negative inside the feature)."""
    return -inside * np.tanh(np.asarray(signed_distance) / (np.sqrt(2.0) * Cn))


def drop(x: np.ndarray, center, radius: float, Cn: float, inside=-1.0):
    d = np.linalg.norm(np.asarray(x) - np.asarray(center), axis=-1) - radius
    return tanh_profile(d, Cn, inside)


def two_drops(x, c1, r1, c2, r2, Cn, inside=-1.0):
    """Two drops (e.g. a coalescence setup): union via min distance."""
    d1 = np.linalg.norm(np.asarray(x) - np.asarray(c1), axis=-1) - r1
    d2 = np.linalg.norm(np.asarray(x) - np.asarray(c2), axis=-1) - r2
    return tanh_profile(np.minimum(d1, d2), Cn, inside)


def filament(x, y0: float, half_width: float, x0: float, x1: float, Cn, inside=-1.0):
    """Horizontal filament (thin ligament) spanning [x0, x1]."""
    x = np.asarray(x)
    d_band = np.abs(x[..., 1] - y0) - half_width
    d_span = np.maximum(x0 - x[..., 0], x[..., 0] - x1)
    return tanh_profile(np.maximum(d_band, d_span), Cn, inside)


def jet_column(
    x,
    y0: float = 0.5,
    half_width: float = 0.08,
    length: float = 0.45,
    Cn: float = 0.02,
    perturb_amp: float = 0.0,
    perturb_k: float = 6.0,
    inside=-1.0,
):
    """Liquid jet entering from the left wall: a rounded-tip column with an
    optional sinusoidal surface perturbation that seeds primary atomization
    (paper Sec. IV)."""
    x = np.asarray(x)
    r = half_width * (
        1.0 + perturb_amp * np.sin(2 * np.pi * perturb_k * x[..., 0])
    )
    dy = np.abs(x[..., 1] - y0)
    # Inside the column while x < length; rounded cap beyond.
    d_body = dy - r
    d_cap = np.sqrt((x[..., 0] - length) ** 2 + dy**2) - half_width
    d = np.where(x[..., 0] <= length, d_body, d_cap)
    return tanh_profile(d, Cn, inside)


def rising_bubble(x, center=(0.5, 0.25), radius=0.15, Cn=0.02):
    """Light bubble (phi = -1 inside) in heavy fluid — with gravity it rises."""
    return drop(x, center, radius, Cn, inside=-1.0)


def rayleigh_taylor(
    x,
    y0: float = 0.5,
    amp: float = 0.05,
    k: float = 1.0,
    Cn: float = 0.02,
    inside=-1.0,
):
    """Heavy fluid (phi = +1) resting on light fluid below a perturbed
    interface ``y = y0 + amp cos(2 pi k x)`` — the classic Rayleigh-Taylor
    instability setup (gravity pulls the heavy phase down through the
    light one).  The last coordinate is the vertical axis; in 3D the
    perturbation is the product of cosines in the horizontal directions.
    """
    x = np.asarray(x)
    vert = x[..., -1]
    pert = np.cos(2 * np.pi * k * x[..., 0])
    if x.shape[-1] == 3:
        pert = pert * np.cos(2 * np.pi * k * x[..., 1])
    d = (y0 + amp * pert) - vert  # negative above the interface (heavy side)
    return tanh_profile(d, Cn, inside)


def spinodal(x, seed: int = 0, amp: float = 0.2, n_modes: int = 4, Cn=0.05):
    """Seeded small-amplitude perturbation around the mixed state phi = 0 —
    the classic spinodal-decomposition initial condition.  The field is a
    deterministic function of ``seed``: a superposition of ``n_modes``
    random Fourier modes per axis from ``np.random.default_rng(seed)``, so
    every backend and every restart sees bit-identical initial data.
    """
    x = np.asarray(x)
    dim = x.shape[-1]
    rng = np.random.default_rng(seed)
    out = np.zeros(x.shape[:-1])
    for _ in range(n_modes):
        kvec = rng.integers(1, 5, size=dim)
        phase = rng.uniform(0.0, 2 * np.pi)
        weight = rng.uniform(0.5, 1.0)
        arg = 2 * np.pi * np.tensordot(x, kvec.astype(float), axes=([-1], [0]))
        out = out + weight * np.cos(arg + phase)
    return np.clip(amp * out / n_modes, -0.9, 0.9)
