"""Mesh-level weak-form assembly helpers shared by the CHNS block solvers.

Thin layer over :mod:`repro.fem.operators` that evaluates DOF fields at
quadrature points and assembles the global sparse operators each solver
block needs.  Every operator here is a GEMM-expressed batched elemental
computation followed by a node-wise scatter (paper Sec. II-D).

All matrix assembly routes through :func:`repro.fem.plan.plan_assemble`:
the COO pattern and hanging-node projection are precomputed once per mesh
generation, and each call here only performs the cheap numeric update.  The
slow reference path lives in :func:`repro.fem.assembly.assemble_matrix`.

The elemental batches route through :mod:`repro.fem.kernels`: with Numba
the quadrature contraction runs as a fused JIT loop (convection evaluates
the advecting velocity from its corner values *inside* the element loop),
without it the original :mod:`repro.fem.operators` einsum path runs
unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from ..fem import kernels
from ..fem.assembly import assemble_vector
from ..fem.plan import plan_assemble
from ..fem.operators import (
    gradient_at_quad,
    gradient_load_vector,
    load_vector,
    value_at_quad,
)
from ..mesh.mesh import Mesh


def field_at_quad(mesh: Mesh, u: np.ndarray) -> np.ndarray:
    """DOF field -> values at quadrature points (n_elems, nq[, k])."""
    return value_at_quad(mesh.elem_gather(u), mesh.dim)


def grad_at_quad(mesh: Mesh, u: np.ndarray) -> np.ndarray:
    """DOF field -> gradients at quadrature points (n_elems, nq, dim[, k])."""
    return gradient_at_quad(mesh.elem_gather(u), mesh.elem_h(), mesh.dim)


def mass(mesh: Mesh, coeff=1.0) -> sp.csr_matrix:
    """Global (weighted) mass matrix; ``coeff`` may be a quad-point array."""
    return plan_assemble(mesh, kernels.mass_ke(mesh.elem_h(), mesh.dim, coeff))


def stiffness(mesh: Mesh, coeff=1.0) -> sp.csr_matrix:
    return plan_assemble(
        mesh, kernels.stiffness_ke(mesh.elem_h(), mesh.dim, coeff)
    )


def convection(mesh: Mesh, vel_dofs: np.ndarray, rho_q=None) -> sp.csr_matrix:
    """``∫ c N_i (v · grad N_j)`` with velocity given as (n_dofs, dim).

    The velocity quad-point evaluation is fused into the element loop
    (corner-valued kernel) — no (n_elems, nq, dim) intermediate on the JIT
    path.
    """
    vel_c = mesh.elem_gather(vel_dofs)  # (e, nc, dim)
    return plan_assemble(
        mesh,
        kernels.convection_ke_corners(mesh.elem_h(), mesh.dim, vel_c, rho_q),
    )


def convection_from_quad(mesh: Mesh, vq: np.ndarray) -> sp.csr_matrix:
    """Convection by an advecting field already sampled at quadrature points
    (e.g. the NS diffusive mass flux), shape (n_elems, nq, dim)."""
    return plan_assemble(
        mesh, kernels.convection_ke(mesh.elem_h(), mesh.dim, vq)
    )


def source(mesh: Mesh, f_q) -> np.ndarray:
    """Global load vector of a quad-point (or constant) source."""
    return assemble_vector(mesh, load_vector(mesh.elem_h(), mesh.dim, f_q))


def quad_xy(mesh: Mesh) -> np.ndarray:
    """Physical (unit-cube) coordinates of every quadrature point, shape
    (n_elems, nq, dim) — where manufactured source terms are sampled."""
    from ..fem.basis import quad_point_coords
    from ..octree import morton

    scale = float(1 << morton.MAX_DEPTH)
    return quad_point_coords(
        mesh.tree.anchors / scale, mesh.elem_h(), mesh.dim
    )


def source_at(mesh: Mesh, f: Callable, t: float = 0.0) -> np.ndarray:
    """Load vector(s) of a space-time source ``f(x, t)`` sampled at the
    quadrature points (the MMS forcing hook: :mod:`repro.verify` derives
    ``f`` symbolically and the block solvers add the result to their RHS).

    ``f`` maps ``((npts, dim), t)`` to ``(npts,)`` for a scalar source
    (returns ``(n_dofs,)``) or to ``(npts, k)`` for a vector one (returns
    ``(n_dofs, k)``).
    """
    xq = quad_xy(mesh)
    e, q, dim = xq.shape
    fv = np.asarray(f(xq.reshape(-1, dim), t), dtype=float)
    if fv.ndim == 1:
        return source(mesh, fv.reshape(e, q))
    return np.stack(
        [source(mesh, fv[:, j].reshape(e, q)) for j in range(fv.shape[1])],
        axis=1,
    )


def flux_divergence_load(mesh: Mesh, flux_q: np.ndarray) -> np.ndarray:
    """Weak divergence of a quad-point flux: ``-∫ F · grad N_i`` appears in
    the equations as ``+∫ N_i div F`` integrated by parts; the caller picks
    the sign.  Returns ``∫ F · grad N_i``."""
    return assemble_vector(
        mesh, gradient_load_vector(mesh.elem_h(), mesh.dim, flux_q)
    )


def divergence_of(mesh: Mesh, vel_dofs: np.ndarray) -> np.ndarray:
    """L2-projected divergence of a velocity DOF field (diagnostic)."""
    vq = grad_at_quad(mesh, vel_dofs)  # (e, q, dim, dim): d v_k / d x_d
    div_q = np.einsum("eqdd->eq", vq)
    b = source(mesh, div_q)
    lumped = np.asarray(mass(mesh).sum(axis=1)).ravel()
    return b / lumped


def divergence_l2(mesh: Mesh, vel_dofs: np.ndarray) -> float:
    """``||div v||_{L2}`` computed at quadrature points."""
    from ..fem.basis import tabulate

    vq = grad_at_quad(mesh, vel_dofs)
    div_q = np.einsum("eqdd->eq", vq)
    _, w, _, _ = tabulate(mesh.dim)
    h = mesh.elem_h()
    val = np.einsum("q,eq->e", w, div_q**2) * h**mesh.dim
    return float(np.sqrt(val.sum()))
