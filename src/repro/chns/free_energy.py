"""Double-well free energy and degenerate mobility for Cahn-Hilliard."""

from __future__ import annotations

import numpy as np

from ..fem.operators import gradient_at_quad, value_at_quad
from ..mesh.mesh import Mesh

_MOBILITY_FLOOR = 1e-8


def psi(phi: np.ndarray) -> np.ndarray:
    """Double-well potential ``(phi^2 - 1)^2 / 4`` with minima at ±1."""
    p2 = np.asarray(phi) ** 2
    return 0.25 * (p2 - 1.0) ** 2


def psi_prime(phi: np.ndarray) -> np.ndarray:
    """``psi'(phi) = phi^3 - phi`` (enters the chemical potential)."""
    phi = np.asarray(phi)
    return phi**3 - phi


def psi_double_prime(phi: np.ndarray) -> np.ndarray:
    """``psi''(phi) = 3 phi^2 - 1`` (Newton Jacobian of the CH block)."""
    return 3.0 * np.asarray(phi) ** 2 - 1.0


def mobility(phi: np.ndarray) -> np.ndarray:
    """Degenerate mobility ``m(phi) = sqrt(1 - phi^2)`` (paper Sec. II-A),
    clamped: discrete over/undershoots must not make it imaginary."""
    return np.sqrt(np.maximum(1.0 - np.asarray(phi) ** 2, _MOBILITY_FLOOR))


def ginzburg_landau_energy(mesh: Mesh, phi: np.ndarray, Cn: float) -> float:
    """``E[phi] = ∫ psi(phi) + (Cn^2/2) |grad phi|^2`` — the Lyapunov
    functional our semi-implicit CH discretization should not increase for
    pure Cahn-Hilliard dynamics (tested)."""
    ev = mesh.elem_gather(phi)
    h = mesh.elem_h()
    vq = value_at_quad(ev, mesh.dim)
    gq = gradient_at_quad(ev, h, mesh.dim)
    from ..fem.basis import tabulate

    _, w, _, _ = tabulate(mesh.dim)
    dens = psi(vq) + 0.5 * Cn**2 * np.sum(gq**2, axis=-1)
    per_elem = np.einsum("q,eq->e", w, dens) * h**mesh.dim
    return float(per_elem.sum())


def total_mass(mesh: Mesh, phi: np.ndarray) -> float:
    """``∫ phi`` — conserved by Cahn-Hilliard with no-flux boundaries."""
    ev = mesh.elem_gather(phi)
    h = mesh.elem_h()
    vq = value_at_quad(ev, mesh.dim)
    from ..fem.basis import tabulate

    _, w, _, _ = tabulate(mesh.dim)
    per_elem = np.einsum("q,eq->e", w, vq) * h**mesh.dim
    return float(per_elem.sum())
