"""CH-Solve: fully implicit advective Cahn-Hilliard block
(paper Sec. II-A, step 1 of the two-block projection scheme).

Unknowns are the mixed pair ``(phi, mu)`` (chemical potential), stacked as
``[phi; mu]``.  The nonlinear residual is solved by Newton with an
analytically assembled Jacobian; the degenerate mobility is evaluated at the
current Newton iterate (its phi-derivative is dropped from the Jacobian — a
standard quasi-Newton simplification protected by the line search).

Weak residual (no-flux boundaries are natural):

  R_phi = M (phi - phi_n)/dt + C(v) phi + (1/(Pe Cn)) K_m mu = 0
  R_mu  = M mu - P(psi'(phi)) - Cn^2 K phi = 0
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .. import obs
from ..fem.operators import value_at_quad
from ..la.newton import IterateCache, NewtonResult, newton_solve
from ..mesh.mesh import Mesh
from . import forms
from .free_energy import mobility, psi_double_prime, psi_prime
from .params import CHNSParams


@dataclass
class CHResult:
    phi: np.ndarray
    mu: np.ndarray
    newton: NewtonResult


class CHSolver:
    """Reusable CH block for a fixed mesh (re-created after remeshing).

    ``residual`` and ``jacobian`` at one Newton iterate need the same two
    expensive mesh-wide products — the quad-point phi evaluation and the
    mobility-stiffness assembly.  A per-iterate :class:`IterateCache` keyed
    on the phi component shares them, so each iterate pays for exactly one
    mobility-stiffness assembly and one ``field_at_quad`` instead of two
    (``self.counters`` records both, pinned down by the tests).
    """

    def __init__(self, mesh: Mesh, params: CHNSParams):
        self.mesh = mesh
        self.params = params
        self.M = forms.mass(mesh)
        self.K = forms.stiffness(mesh)
        self._iterate = IterateCache()
        self.counters = {
            "mobility_assemblies": 0,
            "phi_quad_evals": 0,
            "residual_evals": 0,
            "jacobian_evals": 0,
        }

    def _phi_at_quad(self, phi: np.ndarray) -> np.ndarray:
        def build():
            self.counters["phi_quad_evals"] += 1
            obs.incr("ch.phi_quad_evals")
            return forms.field_at_quad(self.mesh, phi)

        return self._iterate.get(phi, "phi_q", build)

    def _mobility_stiffness(self, phi: np.ndarray) -> sp.csr_matrix:
        phi_q = self._phi_at_quad(phi)

        def build():
            self.counters["mobility_assemblies"] += 1
            obs.incr("ch.mobility_assemblies")
            return forms.stiffness(self.mesh, mobility(phi_q))

        return self._iterate.get(phi, "Km", build)

    def operators(
        self,
        phi_n: np.ndarray,
        mu_n: np.ndarray,
        vel: np.ndarray | None,
        dt: float,
        *,
        theta: float = 1.0,
        source_phi: np.ndarray | None = None,
        source_mu: np.ndarray | None = None,
    ):
        """The Newton callbacks ``(residual, jacobian, split)`` for one CH
        step (exposed so tests and benchmarks can probe single iterates).

        ``theta`` blends the evolutionary terms between backward Euler
        (``theta=1``, the default — the exact historical scheme) and
        Crank-Nicolson (``theta=0.5``, second order in time; the MMS
        temporal ladder runs here).  The chemical-potential equation is an
        algebraic constraint, not an evolution equation, so it stays fully
        implicit for every theta.  ``source_phi``/``source_mu`` are
        pre-assembled load vectors (manufactured forcing) subtracted from
        the residuals.
        """
        mesh, prm = self.mesh, self.params
        n = mesh.n_dofs
        M, K = self.M, self.K
        Cv = (
            forms.convection(mesh, vel)
            if vel is not None
            else sp.csr_matrix((n, n))
        )
        mob_coeff = 1.0 / (prm.Pe * prm.Cn)
        Cn2 = prm.Cn**2
        if theta != 1.0:
            # Old-time flux/advection contributions, assembled once.
            Km_n = forms.stiffness(
                mesh, mobility(forms.field_at_quad(mesh, phi_n))
            )
            expl = (1.0 - theta) * (
                Cv @ phi_n + mob_coeff * (Km_n @ mu_n)
            )
        else:
            expl = None

        def split(x):
            return x[:n], x[n:]

        def residual(x):
            self.counters["residual_evals"] += 1
            phi, mu = split(x)
            Km = self._mobility_stiffness(phi)
            if theta == 1.0:
                r_phi = (
                    M @ ((phi - phi_n) / dt)
                    + Cv @ phi
                    + mob_coeff * (Km @ mu)
                )
            else:
                r_phi = (
                    M @ ((phi - phi_n) / dt)
                    + theta * (Cv @ phi + mob_coeff * (Km @ mu))
                    + expl
                )
            if source_phi is not None:
                r_phi = r_phi - source_phi
            psi_q = psi_prime(self._phi_at_quad(phi))
            r_mu = M @ mu - forms.source(mesh, psi_q) - Cn2 * (K @ phi)
            if source_mu is not None:
                r_mu = r_mu - source_mu
            return np.concatenate([r_phi, r_mu])

        def jacobian(x):
            self.counters["jacobian_evals"] += 1
            phi, mu = split(x)
            Km = self._mobility_stiffness(phi)
            if theta == 1.0:
                J11 = M / dt + Cv
                J12 = mob_coeff * Km
            else:
                J11 = M / dt + theta * Cv
                J12 = (theta * mob_coeff) * Km
            psi2_q = psi_double_prime(self._phi_at_quad(phi))
            M_psi2 = forms.mass(mesh, psi2_q)
            J21 = -M_psi2 - Cn2 * K
            J22 = M
            return sp.bmat([[J11, J12], [J21, J22]], format="csr")

        return residual, jacobian, split

    def solve(
        self,
        phi_n: np.ndarray,
        mu_n: np.ndarray,
        vel: np.ndarray | None,
        dt: float,
        *,
        tol: float = 1e-9,
        theta: float = 1.0,
        source_phi: np.ndarray | None = None,
        source_mu: np.ndarray | None = None,
    ) -> CHResult:
        residual, jacobian, split = self.operators(
            phi_n, mu_n, vel, dt,
            theta=theta, source_phi=source_phi, source_mu=source_mu,
        )
        self._iterate.clear()
        x0 = np.concatenate([phi_n, mu_n])
        res = newton_solve(
            residual, jacobian, x0, tol=tol * max(np.linalg.norm(x0), 1.0),
            rtol=1e-8, maxiter=20,
        )
        phi, mu = split(res.x)
        return CHResult(phi=phi, mu=mu, newton=res)

    def initial_mu(self, phi: np.ndarray) -> np.ndarray:
        """Consistent chemical potential for an initial phi (solve R_mu=0)."""
        from ..la.krylov import cg
        from ..la.precond import JacobiPreconditioner

        psi_q = psi_prime(forms.field_at_quad(self.mesh, phi))
        b = forms.source(self.mesh, psi_q) + self.params.Cn**2 * (self.K @ phi)
        res = cg(self.M, b, M=JacobiPreconditioner(self.M), tol=1e-12, maxiter=2000)
        return res.x
