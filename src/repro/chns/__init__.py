"""Cahn-Hilliard Navier-Stokes solver (two-block projection scheme)."""

from .analysis import (  # noqa: F401
    breakup_detected,
    droplet_statistics,
    interface_measure,
    phase_volume,
)
from .ch_solver import CHSolver  # noqa: F401
from .ns_solver import NSSolver  # noqa: F401
from .params import CHNSParams  # noqa: F401
from .pp_solver import PPSolver  # noqa: F401
from .timestepper import (  # noqa: F401
    CHNSTimeStepper,
    jet_inflow_bc,
    lid_driven_bc,
    no_slip_bc,
)
from .vu_solver import VUSolver  # noqa: F401
