"""Post-processing analysis for multiphase runs.

The paper defers "the more detailed physics discussion" to a future paper;
this module provides the measurements that discussion needs: per-droplet
statistics (count, volumes, centroids, Sauter mean diameter — the standard
atomization spray metric), interface measure, and phase volumes.  Droplets
are identified with the connected-component labeler; interface measure uses
the diffuse-interface functional ``(3/(2*sqrt(2)*Cn)) ∫ Cn^2|∇phi|^2 + psi``
whose value approximates the sharp-interface area (length in 2D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.connected_components import label_components
from ..fem.basis import tabulate
from ..fem.operators import gradient_at_quad, value_at_quad
from ..mesh.mesh import Mesh
from .free_energy import psi


@dataclass
class DropletStats:
    count: int
    volumes: np.ndarray  # (count,)
    centroids: np.ndarray  # (count, dim)
    equivalent_diameters: np.ndarray  # (count,)
    sauter_mean_diameter: float  # D32, the atomization headline number
    largest_fraction: float  # volume share of the biggest structure


def phase_volume(mesh: Mesh, phi: np.ndarray, *, immersed_sign: float = -1.0):
    """Volume of the immersed phase, ``∫ (1 - sign*phi)/2``."""
    ev = mesh.elem_gather(phi)
    vq = value_at_quad(ev, mesh.dim)
    _, w, _, _ = tabulate(mesh.dim)
    h = mesh.elem_h()
    # Fraction of the immersed phase: 1 where phi == immersed_sign, 0 at the
    # other well -> (1 + sign*phi)/2.
    frac = 0.5 * (1.0 + immersed_sign * vq)
    per_elem = np.einsum("q,eq->e", w, np.clip(frac, 0.0, 1.0)) * h**mesh.dim
    return float(per_elem.sum())


def interface_measure(mesh: Mesh, phi: np.ndarray, Cn: float) -> float:
    """Sharp-interface area/length estimate from the diffuse profile.

    For the equilibrium tanh profile, ``∫ (Cn^2/2)|∇phi|^2 + psi(phi)``
    equals ``(2*sqrt(2)/3) * Cn * |interface|``; inverting gives the measure.
    """
    ev = mesh.elem_gather(phi)
    h = mesh.elem_h()
    vq = value_at_quad(ev, mesh.dim)
    gq = gradient_at_quad(ev, h, mesh.dim)
    _, w, _, _ = tabulate(mesh.dim)
    dens = 0.5 * Cn**2 * np.sum(gq**2, axis=-1) + psi(vq)
    total = float((np.einsum("q,eq->e", w, dens) * h**mesh.dim).sum())
    return total / (2.0 * np.sqrt(2.0) / 3.0 * Cn)


def droplet_statistics(
    mesh: Mesh, phi: np.ndarray, *, delta: float = -0.8
) -> DropletStats:
    """Per-droplet census of the immersed phase."""
    labels, n = label_components(mesh, phi, delta)
    dim = mesh.dim
    if n == 0:
        z = np.zeros(0)
        return DropletStats(0, z, np.zeros((0, dim)), z, 0.0, 0.0)
    vol_e = mesh.elem_h() ** dim
    centers = mesh.elem_centers()
    sel = labels >= 0
    vols = np.zeros(n)
    np.add.at(vols, labels[sel], vol_e[sel])
    cents = np.zeros((n, dim))
    for d in range(dim):
        acc = np.zeros(n)
        np.add.at(acc, labels[sel], vol_e[sel] * centers[sel, d])
        cents[:, d] = acc / vols
    if dim == 2:
        diam = 2.0 * np.sqrt(vols / np.pi)
    else:
        diam = (6.0 * vols / np.pi) ** (1.0 / 3.0)
    d32 = float((diam**3).sum() / (diam**2).sum())
    return DropletStats(
        count=n,
        volumes=vols,
        centroids=cents,
        equivalent_diameters=diam,
        sauter_mean_diameter=d32,
        largest_fraction=float(vols.max() / vols.sum()),
    )


def breakup_detected(
    prev: DropletStats, curr: DropletStats, *, min_volume: float = 0.0
) -> bool:
    """Did the droplet count (above a volume floor) increase — i.e. did the
    jet/ligament break up between two snapshots?"""
    n_prev = int((prev.volumes > min_volume).sum())
    n_curr = int((curr.volumes > min_volume).sum())
    return n_curr > n_prev
