"""NS-Solve: semi-implicit Crank-Nicolson momentum predictor
(paper Sec. II-A, step 2).

Mixture density/viscosity come from the freshly solved phi.  Convection is
linearized about the extrapolated velocity ``v* = 2 v^n - v^{n-1}``
("the explicit parts ... avoid an expensive setup of Newton iteration for
NS").  The same operator serves every velocity component, so it is
assembled once per step and reused DIM times — the paper's VU-solve memory
remark applied one block earlier.

Momentum weak form per component i (all terms non-dimensional, Eq. 1):

  [M_rho/dt + (C_rho(v*) + C_J)/2 + K_eta/(2 Re)] v_i^{n+1}
      = [M_rho/dt - (C_rho(v*) + C_J)/2 - K_eta/(2 Re)] v_i^n
        - (1/We) G_i p^n + (Cn/We) S_i(phi) + (rho g_i / Fr) M 1

with S_i the capillary term ``∫ (d_i phi)(grad phi) · grad N`` (integration
by parts of the paper's div(grad phi ⊗ grad phi)), and C_J the convection by
the diffusive flux ``J = J_coeff * m(phi) grad mu`` scaled by 1/Pe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .. import obs
from ..fem.assembly import apply_dirichlet
from ..la.krylov import SolveResult, bicgstab
from ..la.precond import JacobiPreconditioner, make_preconditioner
from ..mesh.mesh import Mesh
from . import forms
from .free_energy import mobility
from .params import CHNSParams


@dataclass
class NSResult:
    vel_star: np.ndarray  # (n_dofs, dim) tentative velocity
    solves: list


class NSSolver:
    def __init__(self, mesh: Mesh, params: CHNSParams):
        self.mesh = mesh
        self.params = params
        self.M = forms.mass(mesh)

    def solve(
        self,
        phi: np.ndarray,
        mu: np.ndarray,
        vel_n: np.ndarray,
        vel_nm1: np.ndarray,
        p_n: np.ndarray,
        dt: float,
        *,
        dirichlet_masks=None,
        dirichlet_values=None,
        tol: float = 1e-9,
        precond: str = "jacobi",
        forcing: np.ndarray | None = None,
    ) -> NSResult:
        """``precond`` names the inner-solve preconditioner (see
        :func:`repro.la.precond.make_preconditioner`); ``"jacobi"`` is the
        historical default.  ``"pcd"`` runs a GMG V-cycle on the elliptic
        part ``M_rho/dt + K_eta/(2 Re)`` of the momentum operator.
        ``forcing`` is a pre-assembled load vector (n_dofs, dim) added to
        each component RHS — the MMS manufactured-solution hook."""
        mesh, prm = self.mesh, self.params
        dim = mesh.dim

        with obs.span("ns.assemble"):
            phi_q = forms.field_at_quad(mesh, phi)
            rho_q = prm.rho_clamped(phi_q)
            eta_q = prm.eta_clamped(phi_q)

            # Extrapolated advecting velocity (CN linearization).
            v_star = 2.0 * vel_n - vel_nm1
            vq = forms.field_at_quad(mesh, v_star)  # (e, q, dim)
            # Diffusive mass flux J = J_coeff * m(phi) grad(mu) (paper Eq. 1),
            # advected with coefficient 1/Pe.
            grad_mu_q = forms.grad_at_quad(mesh, mu)
            J_q = prm.J_coeff() * mobility(phi_q)[..., None] * grad_mu_q
            adv_q = rho_q[..., None] * vq + (1.0 / prm.Pe) * J_q

            M_rho = forms.mass(mesh, rho_q)
            C = forms.convection(mesh, v_star, rho_q)  # rho v* · grad
            C_J = forms.convection_from_quad(mesh, (1.0 / prm.Pe) * J_q)
            K_eta = forms.stiffness(mesh, eta_q)

            A_imp = (M_rho / dt + 0.5 * (C + C_J) + (0.5 / prm.Re) * K_eta).tocsr()
            A_exp = (M_rho / dt - 0.5 * (C + C_J) - (0.5 / prm.Re) * K_eta).tocsr()

            # Capillary force (Cn/We) div(grad phi ⊗ grad phi), by parts:
            # F_i = -(Cn/We) ∫ (d_i phi) grad phi · grad N.
            grad_phi_q = forms.grad_at_quad(mesh, phi)  # (e, q, dim)
            grad_p_q = forms.grad_at_quad(mesh, p_n)

            if precond == "pcd":
                # PCD drops the convection block: the V-cycle runs on the
                # symmetric reactive-diffusive part only.
                A_ell = (M_rho / dt + (0.5 / prm.Re) * K_eta).tocsr()

        vel_new = np.zeros_like(vel_n)
        solves = []
        pcd_cache: dict = {}
        for i in range(dim):
            rhs = A_exp @ vel_n[:, i]
            if forcing is not None:
                rhs = rhs + forcing[:, i]
            # Pressure gradient (1/We) d_i p, explicit at t^n.
            rhs -= (1.0 / prm.We) * forms.source(mesh, grad_p_q[..., i])
            # Capillary stress: Eq. 1 carries +(Cn/We) d_j(d_i phi d_j phi)
            # on the LHS; moved to the RHS and integrated by parts it
            # becomes +(Cn/We) ∫ (d_i phi grad phi) · grad N.
            flux = grad_phi_q[..., i : i + 1] * grad_phi_q  # (e,q,dim)
            rhs += (prm.Cn / prm.We) * forms.flux_divergence_load(mesh, flux)
            # Gravity rho g_i / Fr.
            gcoef = prm.gravity_coeff()
            if gcoef and i < len(prm.gravity_dir) and prm.gravity_dir[i]:
                rhs += gcoef * prm.gravity_dir[i] * forms.source(mesh, rho_q)

            if dirichlet_masks is not None:
                mask = dirichlet_masks[i]
                vals = (
                    dirichlet_values[i]
                    if dirichlet_values is not None
                    else np.zeros(mesh.n_dofs)
                )
                A_i, rhs_i = apply_dirichlet(A_imp, rhs, mask, vals)
            else:
                mask = None
                A_i, rhs_i = A_imp, rhs
            if precond == "jacobi":
                M_i = JacobiPreconditioner(A_i)
            elif precond == "pcd":
                # Components sharing a Dirichlet mask (the common case)
                # share one GMG hierarchy + Galerkin chain.
                key = None if mask is None else mask.tobytes()
                M_i = pcd_cache.get(key)
                if M_i is None:
                    if mask is None:
                        A_e = A_ell
                    else:
                        A_e, _ = apply_dirichlet(
                            A_ell, np.zeros(mesh.n_dofs), mask,
                            np.zeros(mesh.n_dofs),
                        )
                    M_i = make_preconditioner("pcd", A_i, mesh=mesh, elliptic=A_e)
                    pcd_cache[key] = M_i
            else:
                M_i = make_preconditioner(precond, A_i)
            res = bicgstab(
                A_i,
                rhs_i,
                x0=vel_n[:, i].copy(),
                M=M_i,
                tol=tol,
                maxiter=4000,
            )
            obs.incr("ns.krylov_iterations", res.iterations)
            solves.append(res)
            vel_new[:, i] = res.x
        return NSResult(vel_star=vel_new, solves=solves)
