"""CommSchedule IR: whole-program SPMD communication-schedule extraction.

The runtime collective-mismatch checker (:mod:`repro.analysis.runtime_check`)
can only report a divergence *while it happens*; spmdlint's R1 can only see
one function at a time.  This module closes the gap in both directions:

* :func:`extract_schedule` compiles an SPMD entry point — any function that
  receives a :class:`~repro.mpi.comm.Comm` — into a **CommSchedule**: an
  abstract per-rank program over collectives, point-to-point sends/receives,
  symbolic loop bounds and rank predicates.  Extraction is interprocedural:
  calls that pass the communicator to another function in the program are
  inlined (depth- and cycle-guarded), and the rank-taint lattice of
  :class:`~repro.analysis.lint.FunctionContext` is threaded through call
  sites, so a helper called with rank-dependent arguments is analyzed with
  its parameters tainted.

* :func:`check_schedule` is a small model checker: it symbolically executes
  ``nranks`` ranks over the schedule — evaluating rank predicates, unrolling
  ``range`` loops whose bounds are known, tracking sub-communicator
  membership through evaluable ``split`` colors — and reports deadlocks
  (mismatched collective sequences, rule **R7** when reached through a
  helper chain) and orphaned point-to-point operations (rule **R8**) with a
  per-rank trace naming the diverging operation.  It is the static twin of
  :class:`~repro.analysis.runtime_check.CollectiveMismatchError`.

* :meth:`CommSchedule.to_dict` is the JSON "program plan" artifact consumed
  by ``python -m repro.analysis --schedule`` and, eventually, the ROADMAP's
  compiled MPI backend: the collective sequence and exchange structure of a
  step, pre-resolved before any rank executes.

The dynamic half of the contract lives in
:mod:`repro.analysis.conformance`: with ``REPRO_SPMD_CHECK=1`` the runtime
fingerprint stream of every rank is checked to be a *refinement* of the
static schedule compiled here.
"""

from __future__ import annotations

import ast
import inspect
import os
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Union

from .callgraph import (
    P2P_METHODS,
    _SCHEDULE_NEUTRAL_CALLS,
    FunctionInfo,
    Program,
    call_comm_args,
    comm_param_names,
)
from .lint import (
    COLLECTIVE_FUNCTIONS,
    COLLECTIVE_METHODS,
    Finding,
    FunctionContext,
    _call_name,
    _collect_suppressions,
    _dotted,
    _flatten_target_names,
)

#: Inlining guard: maximum call depth through comm-passing helpers.
MAX_INLINE_DEPTH = 16

#: Model-checker guard: maximum number of uniform-choice combinations
#: explored before falling back to arm-equality checks.
MAX_CHOICES = 64

#: Sentinel for "cannot be evaluated statically".
UNKNOWN = "<?>"

_ROOT_TOKEN = "c0"


class ScheduleError(RuntimeError):
    """Extraction failed structurally (not a program defect)."""


# ==========================================================================
# Symbolic expressions
# ==========================================================================


@dataclass
class CommRef:
    """A binding that holds a communicator (identified by schedule token)."""

    token: str


@dataclass
class SymExpr:
    """Expression source text plus the (symbolic) environment it closes over.

    ``env`` maps names to ``SymExpr`` / :class:`CommRef` / Python constants;
    inlined call frames chain environments by substitution at bind time.
    The AST is parsed lazily and never pickled (schedules ship to forked
    worker processes for conformance checking).
    """

    text: str
    env: dict[str, Any] = field(default_factory=dict)

    def __getstate__(self) -> dict[str, Any]:
        return {"text": self.text, "env": self.env}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.text = state["text"]
        self.env = state["env"]

    def tree(self) -> Optional[ast.expr]:
        cached = self.__dict__.get("_tree", False)
        if cached is False:
            try:
                parsed: Optional[ast.expr] = ast.parse(
                    self.text.strip() or "None", mode="eval"
                ).body
            except SyntaxError:
                parsed = None
            self.__dict__["_tree"] = parsed
            return parsed
        return cached  # type: ignore[return-value]

    def sig(self, depth: int = 0) -> str:
        """Canonical-ish text with bound names resolved (for matching and
        diagnostics)."""
        if depth > 4 or not self.env:
            return self.text
        out = self.text
        for name, val in sorted(self.env.items(), key=lambda kv: -len(kv[0])):
            if isinstance(val, SymExpr):
                rep = val.sig(depth + 1)
            elif isinstance(val, CommRef):
                rep = val.token
            else:
                rep = repr(val)
            out = _subst_name(out, name, rep)
        return out


def _subst_name(text: str, name: str, rep: str) -> str:
    """Whole-word textual substitution (diagnostics only — evaluation walks
    the AST with the environment, never this string)."""
    import re

    return re.sub(rf"\b{re.escape(name)}\b", rep, text)


class RankEnv:
    """Per-rank evaluation context for one model-checker rank.

    ``comm_env[token] = (rank, size)`` gives this rank's view of each
    communicator it belongs to; unknown tokens evaluate to :data:`UNKNOWN`.
    """

    def __init__(self, rank: int, size: int):
        self.comm_env: dict[str, tuple[int, int]] = {_ROOT_TOKEN: (rank, size)}

    def rank_of(self, token: str) -> Any:
        pair = self.comm_env.get(token)
        return pair[0] if pair is not None else UNKNOWN

    def size_of(self, token: str) -> Any:
        pair = self.comm_env.get(token)
        return pair[1] if pair is not None else UNKNOWN


def eval_sym(
    expr: Optional[SymExpr],
    rank_env: Optional[RankEnv],
    extra: Optional[dict[str, Any]] = None,
) -> Any:
    """Evaluate a symbolic expression for one rank; :data:`UNKNOWN` when any
    needed fact is missing.  Handles constants, bound names, ``comm.rank`` /
    ``comm.size`` attribute reads, arithmetic/comparison/boolean operators,
    ``is (not) None``, and a few pure builtins."""
    if expr is None:
        return UNKNOWN
    tree = expr.tree()
    if tree is None:
        return UNKNOWN
    return _eval_node(tree, expr.env, rank_env, extra or {})


def _eval_node(
    node: ast.AST,
    env: dict[str, Any],
    rank_env: Optional[RankEnv],
    extra: dict[str, Any],
) -> Any:
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in extra:
            return extra[node.id]
        if node.id in env:
            val = env[node.id]
            if isinstance(val, SymExpr):
                return eval_sym(val, rank_env)
            if isinstance(val, CommRef):
                return val
            return val
        return UNKNOWN
    if isinstance(node, ast.Attribute):
        base = _eval_node(node.value, env, rank_env, extra)
        if isinstance(base, CommRef) and rank_env is not None:
            if node.attr == "rank":
                return rank_env.rank_of(base.token)
            if node.attr == "size":
                return rank_env.size_of(base.token)
        return UNKNOWN
    if isinstance(node, ast.UnaryOp):
        v = _eval_node(node.operand, env, rank_env, extra)
        if v is UNKNOWN or isinstance(v, CommRef):
            return UNKNOWN
        try:
            if isinstance(node.op, ast.USub):
                return -v
            if isinstance(node.op, ast.UAdd):
                return +v
            if isinstance(node.op, ast.Not):
                return not v
        except TypeError:
            return UNKNOWN
        return UNKNOWN
    if isinstance(node, ast.BinOp):
        a = _eval_node(node.left, env, rank_env, extra)
        b = _eval_node(node.right, env, rank_env, extra)
        if a is UNKNOWN or b is UNKNOWN:
            return UNKNOWN
        try:
            if isinstance(node.op, ast.Add):
                return a + b
            if isinstance(node.op, ast.Sub):
                return a - b
            if isinstance(node.op, ast.Mult):
                return a * b
            if isinstance(node.op, ast.FloorDiv):
                return a // b
            if isinstance(node.op, ast.Mod):
                return a % b
            if isinstance(node.op, ast.Div):
                return a / b
        except (TypeError, ZeroDivisionError):
            return UNKNOWN
        return UNKNOWN
    if isinstance(node, ast.BoolOp):
        vals = [_eval_node(v, env, rank_env, extra) for v in node.values]
        if isinstance(node.op, ast.And):
            if any(v is False for v in vals):
                return False
            if all(v is not UNKNOWN for v in vals):
                return vals[-1]
        else:  # Or
            for v in vals:
                if v is not UNKNOWN and v:
                    return v
            if all(v is not UNKNOWN for v in vals):
                return vals[-1]
        return UNKNOWN
    if isinstance(node, ast.Compare):
        left = _eval_node(node.left, env, rank_env, extra)
        result: Any = True
        for op, comparator in zip(node.ops, node.comparators):
            right = _eval_node(comparator, env, rank_env, extra)
            if isinstance(op, (ast.Is, ast.IsNot)) and (
                left is None or right is None
            ):
                # `x is None` is decidable whenever either side evaluated
                # (UNKNOWN means "some value we cannot compute", which for
                # a comparison *against the None literal* stays unknown).
                if left is UNKNOWN or right is UNKNOWN:
                    return UNKNOWN
                same = left is None and right is None
                result = same if isinstance(op, ast.Is) else not same
                left = right
                continue
            if left is UNKNOWN or right is UNKNOWN:
                return UNKNOWN
            try:
                if isinstance(op, ast.Eq):
                    ok = left == right
                elif isinstance(op, ast.NotEq):
                    ok = left != right
                elif isinstance(op, ast.Lt):
                    ok = left < right
                elif isinstance(op, ast.LtE):
                    ok = left <= right
                elif isinstance(op, ast.Gt):
                    ok = left > right
                elif isinstance(op, ast.GtE):
                    ok = left >= right
                elif isinstance(op, ast.Is):
                    ok = left is right
                elif isinstance(op, ast.IsNot):
                    ok = left is not right
                else:
                    return UNKNOWN
            except TypeError:
                return UNKNOWN
            if not ok:
                return False
            left = right
        return result
    if isinstance(node, ast.IfExp):
        t = _eval_node(node.test, env, rank_env, extra)
        if t is UNKNOWN:
            return UNKNOWN
        branch = node.body if t else node.orelse
        return _eval_node(branch, env, rank_env, extra)
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in ("int", "max", "min", "len", "abs"):
            vals = [_eval_node(a, env, rank_env, extra) for a in node.args]
            if any(v is UNKNOWN or isinstance(v, CommRef) for v in vals):
                return UNKNOWN
            try:
                return {"int": int, "max": max, "min": min, "len": len, "abs": abs}[
                    str(name)
                ](*vals)
            except (TypeError, ValueError):
                return UNKNOWN
        return UNKNOWN
    return UNKNOWN


# ==========================================================================
# IR nodes
# ==========================================================================


@dataclass
class Node:
    loc: str = ""

    def to_dict(self) -> dict[str, Any]:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass
class Seq(Node):
    items: list[Node] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "seq", "items": [n.to_dict() for n in self.items]}


@dataclass
class Coll(Node):
    """One collective operation on communicator ``comm`` (schedule token).

    ``op`` is the *static* name as called (``barrier``, ``alltoallv``,
    ``split``, ``split_cached``, ``ibarrier``); the runtime-fingerprint
    lowering lives in :data:`FINGERPRINT_LOWERING`.
    """

    op: str = ""
    comm: str = _ROOT_TOKEN
    color: Optional[SymExpr] = None  #: split only
    new_token: Optional[str] = None  #: split only

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "kind": "coll", "op": self.op, "comm": self.comm, "loc": self.loc,
        }
        if self.color is not None:
            d["color"] = self.color.sig()
        if self.new_token is not None:
            d["new_comm"] = self.new_token
        return d


@dataclass
class Send(Node):
    dest: Optional[SymExpr] = None
    tag: Optional[SymExpr] = None
    comm: str = _ROOT_TOKEN
    dynamic: bool = False  #: under a data-dependent loop/branch

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "send", "comm": self.comm, "loc": self.loc,
            "dest": self.dest.sig() if self.dest else UNKNOWN,
            "tag": self.tag.sig() if self.tag else "0",
            "dynamic": self.dynamic,
        }


@dataclass
class Recv(Node):
    source: Optional[SymExpr] = None
    tag: Optional[SymExpr] = None
    comm: str = _ROOT_TOKEN
    dynamic: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "recv", "comm": self.comm, "loc": self.loc,
            "source": self.source.sig() if self.source else "ANY",
            "tag": self.tag.sig() if self.tag else "ANY",
            "dynamic": self.dynamic,
        }


@dataclass
class Branch(Node):
    cond: Optional[SymExpr] = None
    rank_dependent: bool = False
    then: Seq = field(default_factory=Seq)
    orelse: Seq = field(default_factory=Seq)
    via: str = ""  #: inline chain (R7 attribution), e.g. "f -> g"

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "branch", "loc": self.loc,
            "cond": self.cond.sig() if self.cond else UNKNOWN,
            "rank_dependent": self.rank_dependent,
            "then": self.then.to_dict(), "orelse": self.orelse.to_dict(),
        }


@dataclass
class Loop(Node):
    kind: str = "dynamic"  #: "range" | "dynamic" | "rank"
    bound: Optional[SymExpr] = None  #: iteration count (range loops)
    start: Optional[SymExpr] = None
    target: Optional[str] = None  #: loop variable (range loops)
    body: Seq = field(default_factory=Seq)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": f"loop.{self.kind}", "loc": self.loc,
            "bound": self.bound.sig() if self.bound else UNKNOWN,
            "target": self.target,
            "body": self.body.to_dict(),
        }


@dataclass
class Opaque(Node):
    """A call the extractor could not resolve but that receives the
    communicator — it *may* communicate arbitrarily."""

    name: str = "?"
    reason: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "opaque", "name": self.name, "loc": self.loc,
            "reason": self.reason,
        }


@dataclass
class CommSchedule:
    """The extracted schedule of one SPMD entry point."""

    entry: str  #: human label, e.g. "spmd_programs.py:collectives_program"
    path: str
    qualname: str
    body: Seq = field(default_factory=Seq)
    opaque: list[str] = field(default_factory=list)  #: imprecision notes
    inlined: list[str] = field(default_factory=list)  #: helpers inlined

    def to_dict(self) -> dict[str, Any]:
        return {
            "entry": self.entry,
            "path": self.path,
            "qualname": self.qualname,
            "schedule": self.body.to_dict(),
            "opaque": list(self.opaque),
            "inlined": sorted(set(self.inlined)),
            "ops": count_ops(self.body),
        }

    def is_comm_free(self) -> bool:
        return not any(True for _ in iter_nodes(self.body))


def iter_nodes(node: Node) -> Iterable[Node]:
    """All comm-relevant leaves (Coll/Send/Recv/Opaque) under ``node``."""
    if isinstance(node, Seq):
        for item in node.items:
            yield from iter_nodes(item)
    elif isinstance(node, Branch):
        yield from iter_nodes(node.then)
        yield from iter_nodes(node.orelse)
    elif isinstance(node, Loop):
        yield from iter_nodes(node.body)
    elif isinstance(node, (Coll, Send, Recv, Opaque)):
        yield node


def count_ops(node: Any) -> dict[str, int]:
    if isinstance(node, CommSchedule):
        node = node.body
    out: dict[str, int] = {}
    for leaf in iter_nodes(node):
        key = (
            f"coll.{leaf.op}" if isinstance(leaf, Coll)
            else "send" if isinstance(leaf, Send)
            else "recv" if isinstance(leaf, Recv)
            else "opaque"
        )
        out[key] = out.get(key, 0) + 1
    return out


# ==========================================================================
# Extraction
# ==========================================================================


#: Comm methods that yield received, rank-dependent data (taint seeds for
#: predicates inside the schedule, mirrored from the lint lattice).
_RANK_DEP_METHODS = frozenset({"recv", "recv_with_status", "iprobe", "scan", "exscan"})


class _Frame:
    """One (possibly inlined) function during extraction."""

    def __init__(
        self,
        info: FunctionInfo,
        bindings: dict[str, Any],
        ctx: FunctionContext,
        chain: tuple[str, ...],
    ):
        self.info = info
        self.bindings = bindings  #: name -> SymExpr | CommRef | constant
        self.ctx = ctx
        self.chain = chain  #: inline chain labels (for diagnostics)

    def comm_token(self, node: ast.AST) -> Optional[str]:
        """Schedule token of an expression, if it denotes a communicator."""
        if isinstance(node, ast.Name):
            val = self.bindings.get(node.id)
            if isinstance(val, CommRef):
                return val.token
            return None
        label = _dotted(node)
        if label in ("self.comm", "self._comm"):
            val = self.bindings.get(label)
            if isinstance(val, CommRef):
                return val.token
        return None

    def sym(self, node: ast.AST) -> SymExpr:
        text = ast.unparse(node)
        names = {
            n.id for n in ast.walk(node) if isinstance(n, ast.Name)
        }
        env = {n: self.bindings[n] for n in names if n in self.bindings}
        # Attribute roots like `self.comm.rank`.
        for sub in ast.walk(node):
            label = _dotted(sub)
            if label in ("self.comm", "self._comm") and label in self.bindings:
                env[label.split(".")[0]] = self.bindings[label]
                text = text.replace(label, label.split(".", 1)[1])
        return SymExpr(text, env)

    def tainted(self, node: ast.AST) -> bool:
        return self.ctx._expr_rank_tainted(node)


class Extractor:
    """Compiles one entry point into a :class:`CommSchedule`."""

    def __init__(self, program: Program):
        self.program = program
        self._token_counter = 0
        self.schedule: Optional[CommSchedule] = None
        self._sup_cache: dict[str, dict[int, Any]] = {}

    def _suppressed(self, frame: "_Frame", node: ast.AST) -> bool:
        """Is there a ``# spmdlint: ignore[R1/R7]`` on this line?  The same
        escape hatch the linter honors: the author asserts the predicate is
        collectively consistent, so the branch is modeled as uniform."""
        path = frame.info.path
        sups = self._sup_cache.get(path)
        if sups is None:
            src = self.program.sources.get(path, "")
            sups = _collect_suppressions(src) if src else {}
            self._sup_cache[path] = sups
        sup = sups.get(getattr(node, "lineno", -1))
        return sup is not None and bool({"R1", "R7"} & set(sup.rules))

    # -- public ------------------------------------------------------------

    def extract(
        self,
        info: FunctionInfo,
        comm_param: Optional[str] = None,
    ) -> CommSchedule:
        self._token_counter = 0
        sched = CommSchedule(
            entry=info.label(), path=info.path, qualname=info.qualname
        )
        self.schedule = sched
        bindings: dict[str, Any] = {}
        comm_name = comm_param or (
            info.comm_params[0] if info.comm_params else None
        )
        if comm_name is None:
            # Methods reaching the comm through self.
            bindings["self.comm"] = CommRef(_ROOT_TOKEN)
            bindings["self._comm"] = CommRef(_ROOT_TOKEN)
        else:
            bindings[comm_name] = CommRef(_ROOT_TOKEN)
        _bind_defaults(info.node, bindings, {})
        ctx = FunctionContext(info.node, info.class_name)
        frame = _Frame(info, bindings, ctx, (info.label(),))
        sched.body = self._block(
            list(getattr(info.node, "body", [])), frame, depth=0, dynamic=False
        )
        return sched

    # -- statement walking --------------------------------------------------

    def _block(
        self, stmts: list[ast.stmt], frame: _Frame, depth: int, dynamic: bool
    ) -> Seq:
        """Extract a statement block.  Early ``return``/``raise`` inside a
        branch folds the *rest of the block* into the non-exiting arm, so a
        rank taking the exit simply has a shorter schedule."""
        seq = Seq(items=[])
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                then_term = _always_exits(stmt.body)
                else_term = _always_exits(stmt.orelse) if stmt.orelse else False
                then_seq = self._block(stmt.body, frame, depth, dynamic)
                else_seq = self._block(stmt.orelse, frame, depth, dynamic)
                rest = stmts[i + 1:]
                if then_term and not else_term and rest:
                    cont = self._block(rest, frame, depth, dynamic)
                    else_seq.items.extend(cont.items)
                    seq.items.append(self._branch(stmt, then_seq, else_seq, frame))
                    return seq
                if else_term and not then_term and rest:
                    cont = self._block(rest, frame, depth, dynamic)
                    then_seq.items.extend(cont.items)
                    seq.items.append(self._branch(stmt, then_seq, else_seq, frame))
                    return seq
                seq.items.append(self._branch(stmt, then_seq, else_seq, frame))
                if then_term and else_term:
                    return seq
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                seq.items.extend(self._exprs_of(stmt.iter, frame, depth, dynamic))
                seq.items.append(self._for(stmt, frame, depth, dynamic))
                continue
            if isinstance(stmt, ast.While):
                seq.items.extend(self._exprs_of(stmt.test, frame, depth, dynamic))
                tainted = frame.tainted(stmt.test) and not self._suppressed(
                    frame, stmt
                )
                body = self._block(
                    list(stmt.body), frame, depth, dynamic=True
                )
                kind = "rank" if tainted else "dynamic"
                seq.items.append(
                    Loop(loc=self._loc(frame, stmt), kind=kind, body=body)
                )
                continue
            if isinstance(stmt, ast.Try):
                for part in (stmt.body, stmt.orelse, stmt.finalbody):
                    seq.items.extend(self._block(part, frame, depth, dynamic).items)
                for h in stmt.handlers:
                    hseq = self._block(h.body, frame, depth, dynamic)
                    if hseq.items:
                        seq.items.append(
                            Branch(
                                loc=self._loc(frame, h),
                                cond=SymExpr("<exception>"),
                                rank_dependent=False,
                                then=hseq,
                                orelse=Seq(items=[]),
                            )
                        )
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    seq.items.extend(
                        self._exprs_of(item.context_expr, frame, depth, dynamic)
                    )
                seq.items.extend(self._block(list(stmt.body), frame, depth, dynamic).items)
                continue
            if isinstance(stmt, (ast.Return, ast.Raise)):
                if getattr(stmt, "value", None) is not None:
                    seq.items.extend(
                        self._exprs_of(stmt.value, frame, depth, dynamic)
                    )
                return seq
            if isinstance(stmt, ast.Assign):
                seq.items.extend(
                    self._assign(stmt, frame, depth, dynamic)
                )
                continue
            if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                if stmt.value is not None:
                    seq.items.extend(self._exprs_of(stmt.value, frame, depth, dynamic))
                continue
            # Expression statements, asserts, dels, etc.
            for child in ast.iter_child_nodes(stmt):
                seq.items.extend(self._exprs_of(child, frame, depth, dynamic))
        return seq

    def _branch(
        self, stmt: ast.If, then_seq: Seq, else_seq: Seq, frame: _Frame
    ) -> Branch:
        return Branch(
            loc=self._loc(frame, stmt),
            cond=frame.sym(stmt.test),
            rank_dependent=(
                frame.tainted(stmt.test) and not self._suppressed(frame, stmt)
            ),
            then=then_seq,
            orelse=else_seq,
            via=" -> ".join(frame.chain),
        )

    def _for(
        self, stmt: Union[ast.For, ast.AsyncFor], frame: _Frame, depth: int,
        dynamic: bool,
    ) -> Loop:
        loc = self._loc(frame, stmt)
        tainted = frame.tainted(stmt.iter) and not self._suppressed(frame, stmt)
        it = stmt.iter
        target = (
            stmt.target.id if isinstance(stmt.target, ast.Name) else None
        )
        # Loop targets shadow outer bindings; a communicator-holding name
        # rebound by the loop stays a communicator on a fresh (unknown
        # membership) token, anything else becomes unknown.
        for tname in _flatten_target_names(stmt.target):
            if isinstance(frame.bindings.get(tname), CommRef):
                frame.bindings[tname] = CommRef(self._new_token(loc))
            else:
                frame.bindings.pop(tname, None)
        if (
            not tainted
            and isinstance(it, ast.Call)
            and _call_name(it) in ("range", "enumerate")
        ):
            args = it.args
            if _call_name(it) == "range" and 1 <= len(args) <= 2:
                start = frame.sym(args[0]) if len(args) == 2 else SymExpr("0")
                stop = frame.sym(args[-1])
                body = self._block(list(stmt.body), frame, depth, dynamic)
                return Loop(
                    loc=loc, kind="range", bound=stop, start=start,
                    target=target, body=body,
                )
        body = self._block(list(stmt.body), frame, depth, dynamic=True)
        return Loop(loc=loc, kind="rank" if tainted else "dynamic", body=body)

    def _assign(
        self, stmt: ast.Assign, frame: _Frame, depth: int, dynamic: bool
    ) -> list[Node]:
        """Assignment: track communicator bindings, then treat the value as
        an expression."""
        out = self._exprs_of(stmt.value, frame, depth, dynamic)
        # Alias tracking: `cur = comm`, `sub = comm.split(...)` (the split
        # itself was emitted by _exprs_of, which records the fresh token in
        # self._last_split_token).
        value_token: Optional[str] = frame.comm_token(stmt.value)
        if value_token is None and isinstance(stmt.value, ast.Call):
            name = _call_name(stmt.value)
            if name in ("split", "split_cached"):
                value_token = self.__dict__.pop("_last_split_token", None)
        if value_token is not None:
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    frame.bindings[t.id] = CommRef(value_token)
        else:
            for t in stmt.targets:
                if not isinstance(t, ast.Name):
                    continue
                if isinstance(frame.bindings.get(t.id), CommRef):
                    # A communicator-holding name reassigned to something we
                    # cannot resolve (``cur = sub`` walking the k-way
                    # ladder): it stays a communicator, on a fresh token
                    # with unknown membership — dropping it would silently
                    # erase that communicator's collectives.
                    frame.bindings[t.id] = CommRef(
                        self._new_token(self._loc(frame, stmt))
                    )
                elif not _has_comm_op(stmt.value):
                    # Bind plain `name = <expr>` symbolically so predicates
                    # downstream can evaluate through it.
                    frame.bindings[t.id] = frame.sym(stmt.value)
                else:
                    frame.bindings.pop(t.id, None)
        return out

    # -- expression walking -------------------------------------------------

    def _exprs_of(
        self, node: ast.AST, frame: _Frame, depth: int, dynamic: bool
    ) -> list[Node]:
        """Comm operations inside one expression, in left-to-right order."""
        out: list[Node] = []
        if isinstance(node, ast.Call):
            # Evaluation order: the callee expression first (method chains
            # like ``comm.recv(...).sum()`` hide a comm op inside ``func``),
            # then arguments, then the call itself.
            if isinstance(node.func, ast.Attribute):
                out.extend(self._exprs_of(node.func.value, frame, depth, dynamic))
            for child in list(node.args) + [kw.value for kw in node.keywords]:
                out.extend(self._exprs_of(child, frame, depth, dynamic))
            out.extend(self._call(node, frame, depth, dynamic))
            return out
        if isinstance(node, ast.IfExp):
            out.extend(self._exprs_of(node.test, frame, depth, dynamic))
            then_ops = self._exprs_of(node.body, frame, depth, dynamic)
            else_ops = self._exprs_of(node.orelse, frame, depth, dynamic)
            if then_ops or else_ops:
                out.append(
                    Branch(
                        loc=self._loc(frame, node),
                        cond=frame.sym(node.test),
                        rank_dependent=frame.tainted(node.test),
                        then=Seq(items=then_ops),
                        orelse=Seq(items=else_ops),
                        via=" -> ".join(frame.chain),
                    )
                )
            return out
        for child in ast.iter_child_nodes(node):
            out.extend(self._exprs_of(child, frame, depth, dynamic))
        return out

    def _call(
        self, node: ast.Call, frame: _Frame, depth: int, dynamic: bool
    ) -> list[Node]:
        fn = node.func
        loc = self._loc(frame, node)
        name = _call_name(node)
        # -- Comm method calls ------------------------------------------
        if isinstance(fn, ast.Attribute):
            token = frame.comm_token(fn.value)
            if token is not None:
                if fn.attr in ("split", "split_cached"):
                    new = self._new_token(loc)
                    self.__dict__["_last_split_token"] = new
                    color = node.args[0] if node.args else None
                    for kw in node.keywords:
                        if kw.arg == "color":
                            color = kw.value
                    return [
                        Coll(
                            loc=loc, op=fn.attr, comm=token,
                            color=frame.sym(color) if color is not None else None,
                            new_token=new,
                        )
                    ]
                if fn.attr in COLLECTIVE_METHODS:
                    return [Coll(loc=loc, op=fn.attr, comm=token)]
                if fn.attr in ("send", "isend"):
                    dest = _arg(node, 1, "dest")
                    tag = _arg(node, 2, "tag")
                    return [
                        Send(
                            loc=loc, comm=token, dynamic=dynamic,
                            dest=frame.sym(dest) if dest is not None else None,
                            tag=frame.sym(tag) if tag is not None else None,
                        )
                    ]
                if fn.attr in ("recv", "recv_with_status"):
                    src = _arg(node, 0, "source")
                    tag = _arg(node, 1, "tag")
                    return [
                        Recv(
                            loc=loc, comm=token, dynamic=dynamic,
                            source=frame.sym(src) if src is not None else None,
                            tag=frame.sym(tag) if tag is not None else None,
                        )
                    ]
                if fn.attr == "sendrecv":
                    dest = _arg(node, 1, "dest")
                    src = _arg(node, 2, "source")
                    tag = _arg(node, 3, "tag")
                    return [
                        Send(
                            loc=loc, comm=token, dynamic=dynamic,
                            dest=frame.sym(dest) if dest is not None else None,
                            tag=frame.sym(tag) if tag is not None else None,
                        ),
                        Recv(
                            loc=loc, comm=token, dynamic=dynamic,
                            source=frame.sym(src) if src is not None else None,
                            tag=frame.sym(tag) if tag is not None else None,
                        ),
                    ]
                if fn.attr in ("iprobe", "ibarrier"):
                    return []  # non-blocking; no rendezvous of their own
        # -- comm-passing program calls: inline -------------------------
        if name in _SCHEDULE_NEUTRAL_CALLS:
            return []
        comm_args = call_comm_args(node, _comm_names(frame))
        if not comm_args:
            return []  # no communicator reaches it: comm-free by construction
        callee = self.program.resolve_call(node, _comm_names(frame))
        if callee is None:
            note = f"{name} at {loc} (unresolved comm-passing call)"
            assert self.schedule is not None
            self.schedule.opaque.append(note)
            return [Opaque(loc=loc, name=str(name), reason="unresolved")]
        if depth >= MAX_INLINE_DEPTH or callee.label() in frame.chain:
            reason = "depth" if depth >= MAX_INLINE_DEPTH else "recursion"
            assert self.schedule is not None
            self.schedule.opaque.append(f"{name} at {loc} ({reason} limit)")
            return [Opaque(loc=loc, name=str(name), reason=reason)]
        return self._inline(node, callee, frame, depth, dynamic)

    def _inline(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        frame: _Frame,
        depth: int,
        dynamic: bool,
    ) -> list[Node]:
        bindings: dict[str, Any] = {}
        tainted_params: set[str] = set()
        params = _param_names(callee.node)
        pos = list(call.args)
        # Drop `self`/`cls` for method calls resolved by name.
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        for i, p in enumerate(params):
            actual: Optional[ast.AST] = pos[i] if i < len(pos) else None
            for kw in call.keywords:
                if kw.arg == p:
                    actual = kw.value
            if actual is None:
                continue  # default applies; bound below
            token = frame.comm_token(actual)
            if token is not None:
                bindings[p] = CommRef(token)
            else:
                bindings[p] = frame.sym(actual)
            if frame.tainted(actual):
                tainted_params.add(p)
        _bind_defaults(callee.node, bindings, {})
        ctx = FunctionContext(
            callee.node, callee.class_name, seed_tainted=tainted_params
        )
        assert self.schedule is not None
        self.schedule.inlined.append(callee.label())
        sub = _Frame(
            callee, bindings, ctx, frame.chain + (callee.label(),)
        )
        return self._block(
            list(getattr(callee.node, "body", [])), sub, depth + 1, dynamic
        ).items

    # -- helpers -------------------------------------------------------------

    def _new_token(self, loc: str) -> str:
        self._token_counter += 1
        return f"c{self._token_counter}@{loc}"

    @staticmethod
    def _loc(frame: _Frame, node: ast.AST) -> str:
        return f"{os.path.basename(frame.info.path)}:{getattr(node, 'lineno', 0)}"


def _comm_names(frame: _Frame) -> set[str]:
    return {
        n for n, v in frame.bindings.items() if isinstance(v, CommRef)
    } | {"self.comm", "self._comm"}


def _param_names(fn: ast.AST) -> list[str]:
    args = getattr(fn, "args", None)
    if args is None:
        return []
    return [a.arg for a in list(args.posonlyargs) + list(args.args)] + [
        a.arg for a in args.kwonlyargs
    ]


def _bind_defaults(
    fn: ast.AST, bindings: dict[str, Any], outer: dict[str, Any]
) -> None:
    """Bind unbound parameters to their literal defaults (``None``, ints)."""
    args = getattr(fn, "args", None)
    if args is None:
        return
    pos = list(args.posonlyargs) + list(args.args)
    for a, d in zip(pos[len(pos) - len(args.defaults):], args.defaults):
        if a.arg not in bindings and isinstance(d, ast.Constant):
            bindings[a.arg] = d.value
    for a, kd in zip(args.kwonlyargs, args.kw_defaults):
        if a.arg not in bindings and isinstance(kd, ast.Constant):
            bindings[a.arg] = kd.value


def _always_exits(stmts: list[ast.stmt]) -> bool:
    """Does this block unconditionally return/raise/continue/break?"""
    for s in stmts:
        if isinstance(s, (ast.Return, ast.Raise)):
            return True
        if isinstance(s, ast.If) and s.orelse:
            if _always_exits(s.body) and _always_exits(s.orelse):
                return True
    return False


def _has_comm_op(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            n = _call_name(sub)
            if n in COLLECTIVE_METHODS or n in P2P_METHODS:
                return True
            if n in COLLECTIVE_FUNCTIONS:
                return True
    return False


def _arg(call: ast.Call, index: int, kw: str) -> Optional[ast.AST]:
    for k in call.keywords:
        if k.arg == kw:
            return k.value
    if index < len(call.args):
        return call.args[index]
    return None


# ==========================================================================
# Entry-point helpers
# ==========================================================================


def extract_schedule(
    program: Program, path: str, qualname: str
) -> CommSchedule:
    """Extract the schedule of the function ``qualname`` defined in ``path``
    (which must be part of ``program``)."""
    info = program.functions.get((path, qualname))
    if info is None:
        matches = [
            fi for fi in program.by_name.get(qualname.split(".")[-1], [])
            if fi.qualname == qualname
        ]
        if len(matches) == 1:
            info = matches[0]
    if info is None:
        raise ScheduleError(f"no function {qualname!r} in {path!r}")
    return Extractor(program).extract(info)


def extract_callable(
    fn: Callable[..., Any], extra_roots: Iterable[str] = ()
) -> CommSchedule:
    """Extract the schedule of a live function object (used for entry points
    registered at runtime): its defining file joins ``src/repro`` in the
    program index."""
    path = inspect.getsourcefile(fn)
    if path is None:
        raise ScheduleError(f"cannot locate source of {fn!r}")
    path = os.path.abspath(path)
    roots = [_repo_src_root(), *extra_roots, path]
    program = Program.load(roots)
    qualname = fn.__qualname__.replace(".<locals>.", ".")
    return extract_schedule(program, path, qualname)


def extract_source(
    source: str, qualname: str, extra_sources: Optional[dict[str, str]] = None
) -> CommSchedule:
    """Extract from a source string (test fixtures)."""
    program = Program.load([_repo_src_root()])
    path = "<string>"
    program.sources[path] = source
    tree = ast.parse(textwrap.dedent(source), filename=path)
    from .callgraph import _index_functions

    for info in _index_functions(tree, path):
        program.functions[info.key] = info
        program.by_name.setdefault(info.name, []).append(info)
    program._may_collective = None
    program._may_communicate = None
    return extract_schedule(program, path, qualname)


def _repo_src_root() -> str:
    here = os.path.dirname(os.path.abspath(__file__))  # .../src/repro/analysis
    return os.path.dirname(here)  # .../src/repro


# ==========================================================================
# Model checker
# ==========================================================================


@dataclass
class ScheduleFinding:
    """One model-checker verdict (deadlock / mismatch / orphaned p2p)."""

    rule: str  #: "R7" (collective divergence) or "R8" (orphaned p2p)
    loc: str
    message: str
    traces: dict[int, list[str]] = field(default_factory=dict)

    def format(self) -> str:
        lines = [f"{self.loc}: {self.rule} {self.message}"]
        for rank in sorted(self.traces):
            tail = self.traces[rank][-6:]
            joined = " ; ".join(tail) if tail else "(no collectives)"
            lines.append(f"  rank {rank}: {joined}")
        return "\n".join(lines)

    def as_finding(self, path: str) -> Finding:
        line = 0
        if ":" in self.loc:
            try:
                line = int(self.loc.rsplit(":", 1)[1])
            except ValueError:
                line = 0
        return Finding("R8" if self.rule == "R8" else "R7", path, line, 0, self.message)


class _RankState:
    __slots__ = ("rank", "env", "events", "trace")

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.env = RankEnv(rank, size)
        self.events: list[tuple[Any, ...]] = []
        self.trace: list[str] = []  #: human-readable collective trace


def check_schedule(
    schedule: CommSchedule, nranks: int = 2
) -> list[ScheduleFinding]:
    """Model-check ``schedule`` for ``nranks`` ranks.

    Returns an empty list when the collective sequence provably matches on
    every rank and every non-dynamic send/recv pairs up; otherwise findings
    carry per-rank traces naming the diverging operation.
    """
    checker = _Checker(schedule, nranks)
    checker.run()
    return checker.findings


class _Checker:
    def __init__(self, schedule: CommSchedule, nranks: int):
        self.schedule = schedule
        self.nranks = nranks
        self.findings: list[ScheduleFinding] = []
        self.ranks = [_RankState(r, nranks) for r in range(nranks)]
        #: token -> list of member-rank groups (root: one group of all)
        self.groups: dict[str, list[list[int]]] = {
            _ROOT_TOKEN: [list(range(nranks))]
        }
        self.sends: list[tuple[int, Any, Any, str, bool]] = []
        self.recvs: list[tuple[int, Any, Any, str, bool]] = []

    # -- driver ------------------------------------------------------------

    def run(self) -> None:
        self._walk(self.schedule.body, list(range(self.nranks)), dynamic=False)
        self._check_collective_consistency()
        self._check_p2p()

    # -- walking -----------------------------------------------------------

    def _walk(self, node: Node, active: list[int], dynamic: bool) -> None:
        if not active:
            return
        if isinstance(node, Seq):
            for item in node.items:
                self._walk(item, active, dynamic)
            return
        if isinstance(node, Coll):
            self._coll(node, active)
            return
        if isinstance(node, Send):
            self._p2p(node, active, dynamic, is_send=True)
            return
        if isinstance(node, Recv):
            self._p2p(node, active, dynamic, is_send=False)
            return
        if isinstance(node, Opaque):
            for r in active:
                self.ranks[r].events.append(("opaque", node.name, node.loc))
                self.ranks[r].trace.append(f"<opaque {node.name}> @ {node.loc}")
            return
        if isinstance(node, Branch):
            self._branch(node, active, dynamic)
            return
        if isinstance(node, Loop):
            self._loop(node, active, dynamic)
            return

    def _coll(self, node: Coll, active: list[int]) -> None:
        if node.op in ("split", "split_cached") and node.new_token:
            self._split(node, active)
        for r in active:
            self.ranks[r].events.append(("coll", node.op, node.comm, node.loc))
            self.ranks[r].trace.append(f"{node.op} @ {node.loc}")

    def _split(self, node: Coll, active: list[int]) -> None:
        colors: dict[int, Any] = {}
        for r in active:
            colors[r] = eval_sym(node.color, self.ranks[r].env)
        token = str(node.new_token)
        if any(c is UNKNOWN for c in colors.values()):
            return  # membership unknown; ops on this token compare globally
        by_color: dict[Any, list[int]] = {}
        for r, c in sorted(colors.items()):
            if isinstance(c, (int, float)) and c < 0:
                continue  # undefined color: rank gets no subcomm
            by_color.setdefault(c, []).append(r)
        groups = [members for _, members in sorted(by_color.items(), key=lambda kv: str(kv[0]))]
        self.groups[token] = groups
        for members in groups:
            for idx, r in enumerate(sorted(members)):
                self.ranks[r].env.comm_env[token] = (idx, len(members))

    def _p2p(
        self, node: Union[Send, Recv], active: list[int], dynamic: bool,
        is_send: bool,
    ) -> None:
        dyn = dynamic or node.dynamic
        for r in active:
            st = self.ranks[r]
            expr = node.dest if is_send else node.source  # type: ignore[union-attr]
            peer = eval_sym(expr, st.env) if expr is not None else (
                UNKNOWN if is_send else -1  # recv() default: ANY_SOURCE
            )
            tag = eval_sym(node.tag, st.env) if node.tag is not None else (
                0 if is_send else -1
            )
            if tag is UNKNOWN and node.tag is not None:
                tag = f"~{node.tag.sig()}"
            # Map a subcomm-local peer to a global rank when membership known.
            gpeer = peer
            if (
                isinstance(peer, int)
                and peer >= 0
                and node.comm != _ROOT_TOKEN
                and node.comm in self.groups
            ):
                for members in self.groups[node.comm]:
                    if r in members:
                        srt = sorted(members)
                        gpeer = srt[peer] if peer < len(srt) else UNKNOWN
                        break
            entry = (r, gpeer, tag, node.loc, dyn or gpeer is UNKNOWN)
            (self.sends if is_send else self.recvs).append(entry)

    def _branch(self, node: Branch, active: list[int], dynamic: bool) -> None:
        vals = {r: eval_sym(node.cond, self.ranks[r].env) for r in active}
        known = all(v is not UNKNOWN for v in vals.values())
        if known:
            take = [r for r in active if vals[r]]
            skip = [r for r in active if not vals[r]]
            self._walk(node.then, take, dynamic)
            self._walk(node.orelse, skip, dynamic)
            return
        # Undecidable condition.  A uniform condition means every rank takes
        # the same arm, so record a choice composite; a rank-dependent one
        # may split ranks arbitrarily — the arms must then have *identical*
        # collective footprints, or this is exactly the R1/R7 deadlock.
        # P2p inside either arm may or may not execute, so it is recorded as
        # dynamic (existence-level matching only).
        then_events, then_traces = self._subwalk(node.then, active, dynamic=True)
        else_events, else_traces = self._subwalk(node.orelse, active, dynamic=True)
        if node.rank_dependent:
            for r in active:
                pa = _project_all(then_events[r])
                pb = _project_all(else_events[r])
                if pa != pb:
                    self.findings.append(
                        ScheduleFinding(
                            rule="R7",
                            loc=node.loc,
                            message=(
                                "rank-dependent branch with undecidable "
                                f"predicate `{node.cond.sig() if node.cond else '?'}` "
                                "has differing collective footprints: "
                                f"taken={pa or '()'} vs not-taken={pb or '()'}"
                                + (f" (via {node.via})" if node.via else "")
                            ),
                            traces={
                                r: then_traces[r] or ["(no collectives)"],
                            },
                        )
                    )
                    break
            # Model the "all take / none take" envelope for the remainder.
            self._emit_choice(node, active, then_events, else_events,
                              then_traces, else_traces)
            return
        self._emit_choice(node, active, then_events, else_events,
                          then_traces, else_traces)

    def _emit_choice(
        self,
        node: Branch,
        active: list[int],
        then_events: dict[int, list[tuple[Any, ...]]],
        else_events: dict[int, list[tuple[Any, ...]]],
        then_traces: dict[int, list[str]],
        else_traces: dict[int, list[str]],
    ) -> None:
        for r in active:
            pa = _project_all(then_events[r])
            pb = _project_all(else_events[r])
            if pa == pb:
                # Arms agree on collectives: inline one arm's events.
                self.ranks[r].events.extend(then_events[r])
                self.ranks[r].trace.extend(then_traces[r])
            else:
                self.ranks[r].events.append(("choice", pa, pb, node.loc))
                self.ranks[r].trace.append(
                    f"either[{'/'.join(_fmt_proj(pa))} | "
                    f"{'/'.join(_fmt_proj(pb))}] @ {node.loc}"
                )

    def _loop(self, node: Loop, active: list[int], dynamic: bool) -> None:
        if node.kind == "range":
            bounds = {
                r: eval_sym(node.bound, self.ranks[r].env) for r in active
            }
            starts = {
                r: eval_sym(node.start, self.ranks[r].env) for r in active
            }
            if all(
                isinstance(bounds[r], int) and isinstance(starts[r], int)
                for r in active
            ):
                distinct = {(starts[r], bounds[r]) for r in active}
                if len(distinct) == 1:
                    lo, hi = next(iter(distinct))
                    for i in range(lo, min(hi, lo + 4 * self.nranks + 8)):
                        self._walk_with_target(node, active, dynamic, i)
                    return
                # Rank-dependent trip count: collectives inside would run a
                # different number of times per rank.
                self._flag_rank_loop(node, active)
                return
        if node.kind == "rank":
            self._flag_rank_loop(node, active)
            return
        # Dynamic loop: uniform-but-unknown trip count.  Emit one abstract
        # iteration as a star composite.
        events, traces = self._subwalk(node.body, active, dynamic=True)
        for r in active:
            proj = _project_all(events[r])
            if proj:
                self.ranks[r].events.append(("star", proj, node.loc))
                self.ranks[r].trace.append(
                    f"repeat[{'/'.join(_fmt_proj(proj))}] @ {node.loc}"
                )

    def _flag_rank_loop(self, node: Loop, active: list[int]) -> None:
        events, traces = self._subwalk(node.body, active, dynamic=True)
        flagged = False
        for r in active:
            proj = [e for e in _project_all(events[r]) if e[0] != "opaque"]
            if proj and not flagged:
                self.findings.append(
                    ScheduleFinding(
                        rule="R7",
                        loc=node.loc,
                        message=(
                            "collective inside a loop whose trip count is "
                            "rank-dependent — ranks execute "
                            f"{_fmt_proj(proj)} a differing number of times"
                        ),
                        traces={r: traces[r]},
                    )
                )
                flagged = True
            if _project_all(events[r]):
                self.ranks[r].events.append(
                    ("star", tuple(_project_all(events[r])), node.loc)
                )
                self.ranks[r].trace.append(
                    f"repeat?[{'/'.join(_fmt_proj(_project_all(events[r])))}] @ {node.loc}"
                )

    def _walk_with_target(
        self, node: Loop, active: list[int], dynamic: bool, i: int
    ) -> None:
        """One unrolled range iteration: bind the loop variable to ``i``."""
        if node.target is not None:
            rebound = _bind_in_tree(node.body, node.target, i)
            self._walk(rebound, active, dynamic)
        else:
            self._walk(node.body, active, dynamic)

    def _subwalk(
        self, node: Node, active: list[int], dynamic: bool = False
    ) -> tuple[dict[int, list[tuple[Any, ...]]], dict[int, list[str]]]:
        """Walk a subtree into fresh per-rank buffers (for composites)."""
        saved_events = {r: self.ranks[r].events for r in active}
        saved_traces = {r: self.ranks[r].trace for r in active}
        for r in active:
            self.ranks[r].events = []
            self.ranks[r].trace = []
        self._walk(node, active, dynamic)
        events = {r: self.ranks[r].events for r in active}
        traces = {r: self.ranks[r].trace for r in active}
        for r in active:
            self.ranks[r].events = saved_events[r]
            self.ranks[r].trace = saved_traces[r]
        return events, traces

    # -- verdicts ----------------------------------------------------------

    def _check_collective_consistency(self) -> None:
        """Per communicator group, every member's projected collective
        sequence must be identical."""
        for token, groups in sorted(self.groups.items()):
            for members in groups:
                self._compare_group(token, members)
        # Tokens with unknown membership: compare across every rank that
        # touched them (lockstep approximation).
        known = set(self.groups)
        unknown_tokens = sorted(
            {
                e[2]
                for st in self.ranks
                for e in st.events
                if e[0] == "coll" and e[2] not in known
            }
        )
        for token in unknown_tokens:
            members = [
                st.rank
                for st in self.ranks
                if any(e[0] == "coll" and e[2] == token for e in st.events)
            ]
            self._compare_group(token, members)

    def _compare_group(self, token: str, members: list[int]) -> None:
        if len(members) < 2:
            return
        seqs = {
            r: _project_token(self.ranks[r].events, token) for r in members
        }
        ref_rank = members[0]
        ref = seqs[ref_rank]
        for r in members[1:]:
            if seqs[r] == ref:
                continue
            k = _first_diff(ref, seqs[r])
            mine = seqs[r][k] if k < len(seqs[r]) else None
            theirs = ref[k] if k < len(ref) else None
            self.findings.append(
                ScheduleFinding(
                    rule="R7",
                    loc=_loc_of(mine) or _loc_of(theirs) or self.schedule.entry,
                    message=(
                        f"collective sequence diverges on comm {token}: "
                        f"rank {ref_rank} executes {_fmt_ev(theirs)} as "
                        f"collective #{k + 1}, rank {r} executes "
                        f"{_fmt_ev(mine)}"
                    ),
                    traces={
                        ref_rank: self.ranks[ref_rank].trace,
                        r: self.ranks[r].trace,
                    },
                )
            )
            return  # one finding per group keeps reports readable

    def _check_p2p(self) -> None:
        strict_sends = [s for s in self.sends if not s[4]]
        strict_recvs = [list(x) + [False] for x in self.recvs if not x[4]]
        dyn_send_ranks = {s[0] for s in self.sends if s[4]}
        dyn_recv_ranks = {x[0] for x in self.recvs if x[4]}
        for (src, dest, tag, loc, _dyn) in strict_sends:
            matched = False
            for rec in strict_recvs:
                r_rank, r_src, r_tag, _r_loc, _r_dyn, used = rec
                if used:
                    continue
                if r_rank != dest:
                    continue
                if r_src not in (-1, src) and r_src is not UNKNOWN:
                    continue
                if r_tag not in (-1, tag) and not (
                    isinstance(r_tag, str) or isinstance(tag, str)
                ):
                    continue
                rec[5] = True
                matched = True
                break
            if not matched and dest not in dyn_recv_ranks and dest is not UNKNOWN:
                self.findings.append(
                    ScheduleFinding(
                        rule="R8",
                        loc=loc,
                        message=(
                            f"send from rank {src} to rank {dest} (tag {tag}) "
                            "has no statically matching recv — unreachable "
                            "rendezvous"
                        ),
                        traces={src: self.ranks[src].trace},
                    )
                )
        for rec in strict_recvs:
            r_rank, r_src, r_tag, r_loc, _r_dyn, used = rec
            if used:
                continue
            if r_src == -1 or r_src is UNKNOWN:
                if self.sends:
                    continue  # some send may feed an ANY_SOURCE recv
            elif r_src in dyn_send_ranks:
                continue
            elif any(
                s[0] == r_src and s[1] in (r_rank, UNKNOWN) for s in self.sends
            ):
                continue
            self.findings.append(
                ScheduleFinding(
                    rule="R8",
                    loc=str(r_loc),
                    message=(
                        f"recv on rank {r_rank} from "
                        f"{'ANY' if r_src == -1 else r_src} (tag {r_tag}) has "
                        "no statically matching send — the rank blocks forever"
                    ),
                    traces={int(r_rank): self.ranks[int(r_rank)].trace},
                )
            )


# -- event projection helpers ----------------------------------------------


def _project_all(events: list[tuple[Any, ...]]) -> tuple[Any, ...]:
    """Collective-relevant projection of an event list (p2p dropped)."""
    out = []
    for e in events:
        if e[0] in ("coll", "star", "choice", "opaque"):
            out.append(e)
    return tuple(out)


def _project_token(
    events: list[tuple[Any, ...]], token: str
) -> tuple[Any, ...]:
    out: list[tuple[Any, ...]] = []
    for e in events:
        if e[0] == "coll" and e[2] == token:
            out.append(e)
        elif e[0] == "star":
            body = _project_token_nested(e[1], token)
            if body:
                out.append(("star", body, e[2]))
        elif e[0] == "choice":
            a = _project_token_nested(e[1], token)
            b = _project_token_nested(e[2], token)
            if a or b:
                out.append(("choice", a, b, e[3]))
        elif e[0] == "opaque":
            out.append(e)
    return tuple(out)


def _project_token_nested(
    events: Iterable[tuple[Any, ...]], token: str
) -> tuple[Any, ...]:
    return _project_token(list(events), token)


def _first_diff(a: tuple[Any, ...], b: tuple[Any, ...]) -> int:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return i
    return min(len(a), len(b))


def _fmt_ev(e: Optional[tuple[Any, ...]]) -> str:
    if e is None:
        return "<nothing — the rank has already finished>"
    if e[0] == "coll":
        return f"`{e[1]}` at {e[3]}"
    if e[0] == "star":
        return f"repeat[{'/'.join(_fmt_proj(e[1]))}] at {e[2]}"
    if e[0] == "choice":
        return f"either-of at {e[3]}"
    if e[0] == "opaque":
        return f"<opaque {e[1]}> at {e[2]}"
    return str(e)


def _fmt_proj(proj: Iterable[tuple[Any, ...]]) -> list[str]:
    out = []
    for e in proj:
        if e[0] == "coll":
            out.append(str(e[1]))
        elif e[0] == "star":
            out.append("repeat[...]")
        elif e[0] == "choice":
            out.append("either[...]")
        else:
            out.append(str(e[0]))
    return out


def _loc_of(e: Optional[tuple[Any, ...]]) -> Optional[str]:
    if e is None:
        return None
    if e[0] == "coll":
        return str(e[3])
    if e[0] in ("star", "opaque"):
        return str(e[2])
    if e[0] == "choice":
        return str(e[3])
    return None


def _bind_in_tree(node: Node, name: str, value: int) -> Node:
    """A copy of ``node`` with ``name`` bound to ``value`` in every SymExpr
    environment (loop unrolling)."""
    import copy

    out = copy.deepcopy(node)

    def rec(n: Node) -> None:
        for attr in ("cond", "dest", "source", "tag", "bound", "start", "color"):
            expr = getattr(n, attr, None)
            if isinstance(expr, SymExpr) and name not in expr.env:
                expr.env[name] = value
        if isinstance(n, Seq):
            for item in n.items:
                rec(item)
        elif isinstance(n, Branch):
            rec(n.then)
            rec(n.orelse)
        elif isinstance(n, Loop):
            rec(n.body)

    rec(out)
    return out
