"""repro.analysis — SPMD correctness tooling.

Two halves, one defect taxonomy:

* **spmdlint** (:mod:`repro.analysis.lint`, :mod:`repro.analysis.rules`) —
  an AST linter for the SPMD bug classes this codebase is exposed to:
  rank-divergent collectives, unordered peer iteration, wall-clock /
  unseeded randomness in rank functions, stale assembly plans, and
  mutation of zero-copy receive buffers.  Run it with
  ``python -m repro.analysis src/``.

* **runtime checkers** (:mod:`repro.analysis.runtime_check`) — opt-in via
  ``REPRO_SPMD_CHECK=1``: a MUST-style cross-rank collective-matching
  validator wired into :class:`repro.mpi.comm.Comm`, and a write-epoch
  race detector over the thread backend's shared payload buffers.

DESIGN.md §7 documents the rule catalogue and the checker wire protocol.
"""

from .lint import (
    COLLECTIVE_FUNCTIONS,
    COLLECTIVE_METHODS,
    Finding,
    FunctionContext,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    rule_catalogue,
)
from .runtime_check import (
    CHECK_ENV,
    BufferTracker,
    CollectiveMismatchError,
    SharedBufferRaceError,
    SpmdCheckError,
    checks_enabled,
    force_checks,
    note_buffer_read,
    note_buffer_write,
    verify_collective,
)

__all__ = [
    "COLLECTIVE_FUNCTIONS",
    "COLLECTIVE_METHODS",
    "Finding",
    "FunctionContext",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule_catalogue",
    "CHECK_ENV",
    "BufferTracker",
    "CollectiveMismatchError",
    "SharedBufferRaceError",
    "SpmdCheckError",
    "checks_enabled",
    "force_checks",
    "note_buffer_read",
    "note_buffer_write",
    "verify_collective",
]
