"""spmdlint rule catalogue (R1–R6).

Each rule targets one defect class observed in (or adjacent to) this
repository's SPMD code; DESIGN.md §7 documents the catalogue with examples.

R1  rank-divergent collective
    A collective call (Comm method or a repo collective entry point)
    reachable only under rank-dependent control flow — the classic SPMD
    deadlock/corruption: some ranks enter the rendezvous, others don't.
    Rank taint seeds: any ``.rank`` attribute, results of rank-asymmetric
    calls (``recv``, ``scan``, ``exscan``, ``iprobe``), and names assigned
    from tainted expressions (fixpoint).  Early exits (``return``/``raise``
    under a tainted branch) poison the rest of the function; ``break``/
    ``continue`` poison the rest of the enclosing loop.

R2  unordered iteration feeding order-sensitive effects
    Iterating a dict/set (or materializing its view) where the body issues
    messages or accumulates floats: NBX delivery order is schedule-
    dependent and float reduction does not commute bitwise — the PR 3
    ``ghost_write`` bug class.  ``sorted(...)`` is the canonical fix.

R3  wall-clock / unseeded randomness inside SPMD-executed functions
    ``time.time``-family reads and unseeded RNG calls make rank behaviour
    differ between runs and backends, breaking the obs determinism
    contract (DESIGN.md §6).  ``time.sleep`` is allowed (no value).

R4  assembly without a generation check
    Calling ``plan.assemble(Ke)`` on a plan that did not provably come from
    ``get_plan``/``AssemblyPlan`` in the same scope, with no ``check(mesh)``
    or ``assemble_for`` in sight: a cached plan can be stale against
    ``Mesh.generation`` after an AMR remesh.

R5  in-place mutation of received message buffers
    The thread backend's transport is zero-copy: a received payload *is*
    the sender's array.  Mutating it races the sending rank (and differs
    from the process backend, which copies).  ``.copy()`` launders the
    taint; the runtime twin of this rule is the write-epoch race detector
    in :mod:`repro.analysis.runtime_check`.

R6  kernel application without a generation check
    Calling ``kernel.apply(Ke, u)`` on a :class:`repro.fem.kernels.
    BoundKernel` that did not provably come from ``get_kernel``/
    ``BoundKernel`` in the same scope, with no ``check(mesh)`` or
    ``apply_for`` in sight: a bound kernel caches connectivity for one
    ``(Mesh.generation, dtype)`` key and is stale after an AMR remesh —
    the kernel-cache mirror of R4.

R7  rank-divergent collective through a helper call chain
    The interprocedural extension of R1: a call under rank-dependent
    control flow whose *callee* (resolved through the module call graph)
    transitively reaches a collective — invisible to R1's syntactic
    collective-name list.  The AST pass resolves helpers within the linted
    module; the whole-program variant (cross-module chains, loop trip
    divergence, collective *sequence* mismatches between concrete ranks)
    is emitted by the schedule model checker
    (:func:`repro.analysis.schedule.check_schedule`) under the same rule id.

R8  send with no statically matching receive
    A point-to-point send whose (dest, tag) rendezvous has no matching
    receive in the whole-program schedule — the sender blocks forever (or
    the receive blocks, for the orphan-recv dual).  Matching requires the
    model checker's concrete-rank symbolic execution, so this rule has no
    AST pass: findings come exclusively from
    :func:`repro.analysis.schedule.check_schedule`; the class below only
    anchors the rule id in the catalogue.
"""

from __future__ import annotations

import ast
from typing import Optional

from .lint import (
    Finding,
    FunctionContext,
    Rule,
    _call_name,
    _dotted,
    is_collective_call,
    iter_functions,
)

#: ndarray methods that mutate in place.
_INPLACE_METHODS = frozenset(
    {"sort", "fill", "resize", "put", "partition", "byteswap", "setflags"}
)

#: time-module calls that read the clock (``sleep`` deliberately absent).
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.datetime.now",
        "datetime.utcnow",
        "datetime.datetime.utcnow",
        "uuid.uuid4",
    }
)


def _loop_target_names(loop: ast.For) -> set[str]:
    out: set[str] = set()

    def rec(t: ast.AST) -> None:
        if isinstance(t, ast.Name):
            out.add(t.id)
        elif isinstance(t, (ast.Tuple, ast.List)):
            for e in t.elts:
                rec(e)
        elif isinstance(t, ast.Starred):
            rec(t.value)

    rec(loop.target)
    return out


def _references(node: ast.AST, names: set[str]) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in names for sub in ast.walk(node)
    )


def _contains(node: ast.AST, kinds: tuple) -> bool:
    return any(isinstance(sub, kinds) for sub in ast.walk(node))


class RankDivergentCollective(Rule):
    id = "R1"
    title = "collective call under rank-dependent control flow"

    def check_function(self, ctx: FunctionContext, path: str) -> list[Finding]:
        findings: list[Finding] = []
        state = {"fn_div": None}
        self._stmts(
            getattr(ctx.node, "body", []), 0, ctx, path, findings, state, []
        )
        return findings

    # -- statement walker --------------------------------------------------

    def _stmts(self, body, depth, ctx, path, findings, state, loops) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs are linted as their own contexts
            if isinstance(stmt, ast.If):
                self._expr(stmt.test, depth, ctx, path, findings, state, loops)
                tainted = ctx._expr_rank_tainted(stmt.test)
                d = depth + (1 if tainted else 0)
                self._stmts(stmt.body, d, ctx, path, findings, state, loops)
                self._stmts(stmt.orelse, d, ctx, path, findings, state, loops)
                if tainted:
                    if _contains(stmt, (ast.Return, ast.Raise)):
                        state["fn_div"] = state["fn_div"] or stmt.lineno
                    if loops and _contains(stmt, (ast.Break, ast.Continue)):
                        loops[-1].setdefault("div", stmt.lineno)
            elif isinstance(stmt, ast.While):
                self._expr(stmt.test, depth, ctx, path, findings, state, loops)
                tainted = ctx._expr_rank_tainted(stmt.test)
                loops.append({})
                self._stmts(
                    stmt.body, depth + (1 if tainted else 0),
                    ctx, path, findings, state, loops,
                )
                loops.pop()
                self._stmts(stmt.orelse, depth, ctx, path, findings, state, loops)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._expr(stmt.iter, depth, ctx, path, findings, state, loops)
                tainted = ctx._expr_rank_tainted(stmt.iter)
                loops.append({})
                self._stmts(
                    stmt.body, depth + (1 if tainted else 0),
                    ctx, path, findings, state, loops,
                )
                loops.pop()
                self._stmts(stmt.orelse, depth, ctx, path, findings, state, loops)
            elif isinstance(stmt, ast.Try):
                for part in (stmt.body, stmt.orelse, stmt.finalbody):
                    self._stmts(part, depth, ctx, path, findings, state, loops)
                for h in stmt.handlers:
                    self._stmts(h.body, depth, ctx, path, findings, state, loops)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._expr(
                        item.context_expr, depth, ctx, path, findings, state, loops
                    )
                self._stmts(stmt.body, depth, ctx, path, findings, state, loops)
            else:
                for child in ast.iter_child_nodes(stmt):
                    self._expr(child, depth, ctx, path, findings, state, loops)

    # -- expression walker (handles conditional expressions) ---------------

    def _expr(self, node, depth, ctx, path, findings, state, loops) -> None:
        if isinstance(node, ast.IfExp):
            self._expr(node.test, depth, ctx, path, findings, state, loops)
            d = depth + (1 if ctx._expr_rank_tainted(node.test) else 0)
            self._expr(node.body, d, ctx, path, findings, state, loops)
            self._expr(node.orelse, d, ctx, path, findings, state, loops)
            return
        if isinstance(node, ast.Call) and is_collective_call(node):
            name = _call_name(node)
            if depth > 0:
                findings.append(
                    self.finding(
                        path, node,
                        f"collective `{name}` reached under rank-dependent "
                        "control flow — some ranks may skip the rendezvous",
                    )
                )
            elif state["fn_div"] is not None:
                findings.append(
                    self.finding(
                        path, node,
                        f"collective `{name}` after rank-dependent early "
                        f"exit at line {state['fn_div']} — ranks taking the "
                        "exit never reach it",
                    )
                )
            elif any("div" in fr for fr in loops):
                line = next(fr["div"] for fr in loops if "div" in fr)
                findings.append(
                    self.finding(
                        path, node,
                        f"collective `{name}` in a loop with a rank-"
                        f"dependent break/continue at line {line}",
                    )
                )
        for child in ast.iter_child_nodes(node):
            self._expr(child, depth, ctx, path, findings, state, loops)


class UnorderedIterationOrder(Rule):
    id = "R2"
    title = "unordered container feeds order-sensitive accumulation or sends"

    def check_function(self, ctx: FunctionContext, path: str) -> list[Finding]:
        if not ctx.is_spmd:
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.node):
            if isinstance(node, ast.For) and ctx._expr_unordered(node.iter):
                findings.extend(self._check_loop(node, ctx, path))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_materialization(node, ctx, path))
        return findings

    def _check_loop(self, loop: ast.For, ctx, path) -> list[Finding]:
        targets = _loop_target_names(loop)
        for sub in ast.walk(loop):
            if sub is loop.iter or any(
                sub is t for t in ast.walk(loop.iter)
            ):
                continue
            if isinstance(sub, ast.AugAssign) and (
                _references(sub.value, targets)
                or (
                    isinstance(sub.target, ast.Subscript)
                    and _references(sub.target, targets)
                )
            ):
                return [self._report(loop, path, "accumulation", sub.lineno)]
            if isinstance(sub, ast.Call):
                name = _call_name(sub)
                f = sub.func
                if (
                    isinstance(f, ast.Attribute)
                    and f.attr == "at"
                    and any(_references(a, targets) for a in sub.args)
                ):
                    return [self._report(loop, path, "ufunc.at accumulation", sub.lineno)]
                if name in ("send", "isend", "post", "sendrecv") and any(
                    _references(a, targets) for a in sub.args
                ):
                    return [self._report(loop, path, "message issue", sub.lineno)]
        return []

    def _report(self, loop, path, what, line) -> Finding:
        return self.finding(
            path, loop,
            f"iteration over unordered container feeds {what} at line "
            f"{line}; delivery/float order is schedule-dependent — iterate "
            "`sorted(...)`",
        )

    def _check_materialization(self, node: ast.Call, ctx, path) -> list[Finding]:
        name = _call_name(node)
        if name not in ("list", "tuple", "concatenate", "hstack", "vstack"):
            return []
        for arg in node.args:
            if ctx._expr_unordered(arg):
                return [
                    self.finding(
                        path, node,
                        f"`{name}(...)` materializes an unordered container "
                        "view; element order is schedule-dependent — wrap "
                        "in `sorted(...)` or index by sorted keys",
                    )
                ]
        return []


class NondeterminismInSpmd(Rule):
    id = "R3"
    title = "wall-clock or unseeded randomness in an SPMD-executed function"

    def check_function(self, ctx: FunctionContext, path: str) -> list[Finding]:
        if not ctx.is_spmd:
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if dotted in _CLOCK_CALLS:
                findings.append(
                    self.finding(
                        path, node,
                        f"`{dotted}()` inside SPMD code: wall-clock values "
                        "differ per rank and per backend, breaking the "
                        "cross-backend determinism contract",
                    )
                )
            elif dotted.startswith("random."):
                findings.append(
                    self.finding(
                        path, node,
                        f"`{dotted}()` inside SPMD code: unseeded global "
                        "RNG is schedule-dependent — use a rank-seeded "
                        "`np.random.default_rng(seed)`",
                    )
                )
            elif dotted.startswith(("np.random.", "numpy.random.")):
                tail = dotted.rsplit(".", 1)[1]
                if tail == "default_rng" and node.args:
                    continue  # explicitly seeded
                if tail in ("Generator", "SeedSequence", "PCG64"):
                    continue
                findings.append(
                    self.finding(
                        path, node,
                        f"`{dotted}()` inside SPMD code: unseeded NumPy "
                        "randomness is not reproducible across backends — "
                        "pass an explicit per-rank seed",
                    )
                )
        return findings


class StalePlanAssembly(Rule):
    id = "R4"
    title = "AssemblyPlan.assemble without a mesh-generation check"

    def check_function(self, ctx: FunctionContext, path: str) -> list[Finding]:
        fn = ctx.node
        fresh: set[str] = set()  # names provably bound to a fresh plan here
        checked: set[str] = set()  # receivers with a .check()/.assemble_for()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _call_name(node.value) in ("get_plan", "AssemblyPlan"):
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            fresh.add(t.id)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("check", "assemble_for"):
                    recv = _dotted(node.func.value)
                    if recv:
                        checked.add(recv)
        findings: list[Finding] = []
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "assemble"
            ):
                continue
            recv = node.func.value
            if isinstance(recv, ast.Name) and (recv.id == "self" or recv.id in fresh):
                continue
            if isinstance(recv, ast.Call) and _call_name(recv) in (
                "get_plan",
                "AssemblyPlan",
            ):
                continue
            recv_name = _dotted(recv)
            if recv_name and recv_name in checked:
                continue
            findings.append(
                self.finding(
                    path, node,
                    "`.assemble(...)` on a plan that may be stale against "
                    "`Mesh.generation` — use `plan.assemble_for(mesh, Ke)`, "
                    "call `plan.check(mesh)` first, or fetch via "
                    "`get_plan(mesh)`",
                )
            )
        return findings


class StaleKernelUse(Rule):
    id = "R6"
    title = "BoundKernel.apply without a mesh-generation check"

    def check_function(self, ctx: FunctionContext, path: str) -> list[Finding]:
        fn = ctx.node
        fresh: set[str] = set()  # names provably bound to a fresh kernel here
        checked: set[str] = set()  # receivers with a .check()/.apply_for()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _call_name(node.value) in ("get_kernel", "BoundKernel"):
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            fresh.add(t.id)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("check", "apply_for"):
                    recv = _dotted(node.func.value)
                    if recv:
                        checked.add(recv)
        findings: list[Finding] = []
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "apply"
            ):
                continue
            recv = node.func.value
            if isinstance(recv, ast.Name) and (recv.id == "self" or recv.id in fresh):
                continue
            if isinstance(recv, ast.Call) and _call_name(recv) in (
                "get_kernel",
                "BoundKernel",
            ):
                continue
            recv_name = _dotted(recv)
            if recv_name and recv_name in checked:
                continue
            findings.append(
                self.finding(
                    path, node,
                    "`.apply(...)` on a kernel compiled/bound for a "
                    "`(Mesh.generation, dtype)` key that may be stale — use "
                    "`kernel.apply_for(mesh, Ke, u)`, call "
                    "`kernel.check(mesh)` first, or fetch via "
                    "`get_kernel(mesh, ...)`",
                )
            )
        return findings


class MutatedReceiveBuffer(Rule):
    id = "R5"
    title = "in-place mutation of a received (zero-copy) message buffer"

    def check_function(self, ctx: FunctionContext, path: str) -> list[Finding]:
        if not ctx.is_spmd or not ctx.received:
            return []
        findings: list[Finding] = []
        recv = ctx.received

        def base_name(node: ast.AST) -> Optional[str]:
            while isinstance(node, ast.Subscript):
                node = node.value
            return node.id if isinstance(node, ast.Name) else None

        for node in ast.walk(ctx.node):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Subscript) and base_name(t) in recv:
                        findings.append(self._report(path, t, base_name(t)))
            elif isinstance(node, ast.AugAssign):
                name = base_name(node.target)
                if name in recv:
                    findings.append(self._report(path, node, name))
            elif isinstance(node, ast.Call):
                f = node.func
                if (
                    isinstance(f, ast.Attribute)
                    and f.attr in _INPLACE_METHODS
                    and isinstance(f.value, ast.Name)
                    and f.value.id in recv
                ):
                    findings.append(self._report(path, node, f.value.id))
                elif (
                    isinstance(f, ast.Attribute)
                    and f.attr == "at"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in recv
                ):
                    findings.append(self._report(path, node, node.args[0].id))
                elif (
                    _dotted(f) in ("np.copyto", "numpy.copyto")
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in recv
                ):
                    findings.append(self._report(path, node, node.args[0].id))
        return findings

    def _report(self, path, node, name) -> Finding:
        return self.finding(
            path, node,
            f"`{name}` came from a receive: on the zero-copy thread "
            "transport it aliases the sender's live array — `.copy()` "
            "before mutating (runtime twin: REPRO_SPMD_CHECK=1 race "
            "detector)",
        )


class RankDivergentCollectiveViaHelpers(Rule):
    id = "R7"
    title = "rank-divergent collective through a helper call chain"

    def check_module(self, tree: ast.Module, path: str) -> list[Finding]:
        from .callgraph import Program

        program = Program()
        program.add_tree(path, tree)
        out: list[Finding] = []
        for fn, class_name in iter_functions(tree):
            ctx = FunctionContext(fn, class_name)
            out.extend(self._check(ctx, path, program))
        return out

    def _check(self, ctx: FunctionContext, path: str, program) -> list[Finding]:
        comm_names = _comm_param_names(ctx.node)
        if not comm_names:
            return []
        findings: list[Finding] = []
        self._walk(getattr(ctx.node, "body", []), 0, ctx, path, program,
                   comm_names, findings)
        return findings

    def _walk(self, body, depth, ctx, path, program, comm_names, findings):
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                d = depth + (1 if ctx._expr_rank_tainted(stmt.test) else 0)
                self._walk(stmt.body, d, ctx, path, program, comm_names, findings)
                self._walk(stmt.orelse, d, ctx, path, program, comm_names, findings)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                guard = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
                d = depth + (1 if ctx._expr_rank_tainted(guard) else 0)
                self._walk(stmt.body, d, ctx, path, program, comm_names, findings)
                self._walk(stmt.orelse, d, ctx, path, program, comm_names, findings)
            elif isinstance(stmt, ast.Try):
                for part in (stmt.body, stmt.orelse, stmt.finalbody):
                    self._walk(part, depth, ctx, path, program, comm_names, findings)
                for h in stmt.handlers:
                    self._walk(h.body, depth, ctx, path, program, comm_names, findings)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk(stmt.body, depth, ctx, path, program, comm_names, findings)
            else:
                if depth > 0:
                    self._calls(stmt, ctx, path, program, comm_names, findings)

    def _calls(self, stmt, ctx, path, program, comm_names, findings):
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call) or is_collective_call(node):
                continue  # direct collectives are R1's finding, not ours
            info = program.resolve_call(node, comm_names)
            if info is None or not program.may_collective(info):
                continue
            chain = " -> ".join(program.collective_chain(info))
            findings.append(
                self.finding(
                    path, node,
                    f"`{_call_name(node)}(...)` under rank-dependent control "
                    f"flow reaches a collective through its helper chain "
                    f"{chain} — some ranks may skip the rendezvous",
                )
            )


def _comm_param_names(fn: ast.AST) -> set[str]:
    """Names holding communicators in this function: comm-ish parameters
    plus results of ``split``/``split_cached``."""
    out: set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            ann = _dotted(a.annotation) if a.annotation is not None else None
            if a.arg in ("comm", "world", "cur", "sub") or (
                ann is not None and ann.rsplit(".", 1)[-1] == "Comm"
            ):
                out.add(a.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _call_name(node.value) in ("split", "split_cached"):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        out.add(t.id)
    return out


class UnmatchedPointToPoint(Rule):
    id = "R8"
    title = "send with no statically matching receive"

    # Whole-program only: rendezvous matching needs the schedule model
    # checker's concrete-rank execution (see check_schedule); the AST pass
    # contributes nothing, this class anchors the id in the catalogue.
    def check_function(self, ctx: FunctionContext, path: str) -> list[Finding]:
        return []


RULES = [
    RankDivergentCollective,
    UnorderedIterationOrder,
    NondeterminismInSpmd,
    StalePlanAssembly,
    MutatedReceiveBuffer,
    StaleKernelUse,
    RankDivergentCollectiveViaHelpers,
    UnmatchedPointToPoint,
]
