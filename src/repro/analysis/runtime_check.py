"""Opt-in SPMD runtime checkers (``REPRO_SPMD_CHECK=1``).

The dynamic half of :mod:`repro.analysis`: what the AST linter cannot prove,
these checkers verify while the program runs — in the spirit of MUST's
runtime MPI correctness analysis, riding this repo's own transport.

**Collective matching.**  Before executing, every blocking collective on
:class:`repro.mpi.comm.Comm` publishes a *fingerprint* — operation name,
user call site, and (for symmetric operations) the payload's dtype/shape
signature — through one extra transport rendezvous.  Every rank compares
the gathered fingerprints and raises :class:`CollectiveMismatchError`
naming the diverging ranks and call sites the moment ranks disagree, instead
of deadlocking or silently corrupting a reduction.  The fingerprint exchange
deliberately bypasses ``CommStats`` metering, so enabling checks never
changes the counters the equivalence tests pin down.

**Shared-buffer races.**  The thread backend's transport is zero-copy:
payloads and collective results are shared by reference between rank
threads.  :class:`BufferTracker` implements a happens-before write-epoch
race detector over those buffers: the epoch advances at every collective
rendezvous (the transport's only synchronization points), sends/receives
record read accesses automatically, and SPMD code declares intentional
writes via :func:`note_buffer_write`.  Two accesses to the same underlying
buffer from different ranks within one epoch, at least one a write, raise
:class:`SharedBufferRaceError` carrying both stack traces.  Accesses are
keyed on the ndarray *base* buffer, so views alias correctly.

Both checkers are disabled by default; the fast path is one module-level
function call per collective (gated <5% by ``benchmarks/bench_spmd_check.py``
on the collective-dense workload).  Overhead of the enabled checkers is
visible to the obs layer as ``spmdcheck.*`` spans.
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
from typing import Any, Optional

import numpy as np

from .. import obs

#: Environment variable enabling the runtime checkers ("1"/"true"/"on").
CHECK_ENV = "REPRO_SPMD_CHECK"

#: Test/benchmark override: force-enable (True), force-disable (False), or
#: defer to the environment (None).
_FORCED: Optional[bool] = None


def checks_enabled() -> bool:
    """Are the runtime SPMD checkers active?  (One dict lookup when not
    forced — this is the per-collective fast path.)"""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(CHECK_ENV, "").lower() in ("1", "true", "on")


class force_checks:
    """Context manager pinning :func:`checks_enabled` for tests/benchmarks."""

    def __init__(self, enabled: Optional[bool]):
        self._value = enabled
        self._saved: Optional[bool] = None

    def __enter__(self) -> "force_checks":
        global _FORCED
        self._saved = _FORCED
        _FORCED = self._value
        return self

    def __exit__(self, *exc) -> None:
        global _FORCED
        _FORCED = self._saved


class SpmdCheckError(RuntimeError):
    """Base class for runtime-checker verdicts."""


class CollectiveMismatchError(SpmdCheckError):
    """Ranks disagreed on which collective to execute (or on its signature)."""


class SharedBufferRaceError(SpmdCheckError):
    """Unsynchronized cross-rank write to a zero-copy shared buffer."""


# --------------------------------------------------------------------------
# Collective matching

#: Path fragments whose frames are infrastructure, not user call sites.
_INFRA_FRAGMENTS = (
    os.path.join("repro", "mpi", "comm.py"),
    os.path.join("repro", "mpi", "collectives.py"),
    os.path.join("repro", "analysis", ""),
    os.path.join("repro", "obs", ""),
    os.path.join("repro", "runtime", ""),
)


def _user_call_site() -> str:
    """``file:line`` of the innermost frame outside the comm/obs/runtime
    infrastructure — the place the user actually invoked the collective."""
    frame = sys._getframe(1)
    while frame is not None:
        fname = frame.f_code.co_filename
        if not any(frag in fname for frag in _INFRA_FRAGMENTS):
            return f"{os.path.basename(fname)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


def _value_signature(value: Any, depth: int = 0) -> Any:
    """Hashable dtype/shape summary of a collective payload."""
    if value is None:
        return "none"
    if isinstance(value, np.ndarray):
        return ("ndarray", value.dtype.str, tuple(value.shape))
    if isinstance(value, (bool, int, float, complex, str, bytes)):
        return type(value).__name__
    if depth < 3 and isinstance(value, (tuple, list)):
        return (
            type(value).__name__,
            tuple(_value_signature(v, depth + 1) for v in value[:8]),
        )
    if isinstance(value, dict):
        return ("dict", len(value))
    return type(value).__name__


def collective_fingerprint(op: str, value: Any, symmetric: bool) -> tuple:
    """What each rank publishes before a collective executes."""
    return (op, _user_call_site(), _value_signature(value) if symmetric else None)


def verify_collective(comm, op: str, value: Any, symmetric: bool) -> None:
    """Cross-rank fingerprint agreement check (no-op unless enabled).

    Runs one extra unmetered rendezvous on ``comm``'s world; raises
    :class:`CollectiveMismatchError` on *every* rank when fingerprints
    disagree, naming the diverging ranks and their call sites.
    """
    if not checks_enabled():
        return
    monitor = getattr(comm, "_schedule_monitor", None)
    if monitor is not None:
        # Conformance first (pure local): the static schedule must be able
        # to produce this collective before we even rendezvous for it.
        monitor.advance(op)
    with obs.span("spmdcheck.collective"):
        fp = collective_fingerprint(op, value, symmetric)
        all_fps = comm._world.exchange(comm.rank, fp, list)
        obs.incr("spmdcheck.collectives")
        ref = all_fps[0]
        bad = [r for r, got in enumerate(all_fps) if got != ref]
        if not bad:
            return
        lines = ["SPMD collective mismatch — ranks disagree on the next collective:"]
        for r, (r_op, r_site, r_sig) in enumerate(all_fps):
            sig = f" sig={r_sig}" if r_sig is not None else ""
            marker = "  <-- diverges" if r in bad else ""
            lines.append(f"  rank {r}: {r_op} @ {r_site}{sig}{marker}")
        lines.append(f"diverging ranks (vs rank 0): {bad}")
        raise CollectiveMismatchError("\n".join(lines))


# --------------------------------------------------------------------------
# Shared-buffer write-epoch race detection (thread backend)


def _buffer_root(arr: np.ndarray) -> Any:
    """The object owning the underlying memory (collapses view chains)."""
    while isinstance(arr, np.ndarray) and arr.base is not None:
        arr = arr.base
    return arr


def _access_stack(limit: int = 12) -> str:
    frames = traceback.extract_stack()[:-2]
    kept = [
        f
        for f in frames
        if not any(frag in f.filename for frag in _INFRA_FRAGMENTS)
        or "tests" in f.filename
    ]
    return "".join(traceback.format_list(kept[-limit:])).rstrip()


class _Access:
    __slots__ = ("rank", "epoch", "kind", "stack", "buf")

    def __init__(self, rank: int, epoch: int, kind: str, stack: str, buf: Any):
        self.rank = rank
        self.epoch = epoch
        self.kind = kind  # "send" | "recv" | "read" | "write"
        self.stack = stack
        self.buf = buf  # strong ref: keeps id() stable for the epoch


class BufferTracker:
    """Happens-before (write-epoch) race detector for zero-copy buffers.

    One tracker per top-level thread-backend world, shared by subworlds.
    The epoch counter advances inside every collective rendezvous, at the
    instant all ranks are blocked in the barrier — accesses in different
    epochs are therefore ordered, and only same-epoch cross-rank access
    pairs with at least one write can race.  Sub-communicator collectives
    bump the same global epoch: an over-approximation (a subcomm barrier
    does not order non-members) that can miss races but never reports a
    false one... a racing pair it *does* report genuinely had no ordering
    barrier between its two accesses on this transport.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.epoch = 0
        self.races_detected = 0
        self._accesses: dict[int, list[_Access]] = {}

    def bump_epoch(self) -> None:
        """Advance the epoch (call only while all ranks sit in a barrier)."""
        with self._lock:
            self.epoch += 1
            self._accesses.clear()

    def record_payload(self, payload: Any, rank: int, kind: str) -> None:
        """Record accesses for every ndarray reachable in ``payload``."""
        for leaf in _ndarray_leaves(payload):
            self.record(leaf, rank, kind)

    def record(self, arr: np.ndarray, rank: int, kind: str) -> None:
        root = _buffer_root(arr)
        write = kind == "write"
        with self._lock:
            acc = _Access(rank, self.epoch, kind, _access_stack(), root)
            lst = self._accesses.setdefault(id(root), [])
            for prev in lst:
                if prev.rank != rank and (write or prev.kind == "write"):
                    self.races_detected += 1
                    obs.incr("spmdcheck.races")
                    raise SharedBufferRaceError(
                        "shared-buffer race on the zero-copy transport "
                        f"(epoch {self.epoch}, no barrier between accesses):\n"
                        f"  rank {prev.rank} {prev.kind} "
                        f"{_describe(prev.buf)} at:\n{_indent(prev.stack)}\n"
                        f"  rank {rank} {kind} {_describe(root)} at:\n"
                        f"{_indent(acc.stack)}"
                    )
            lst.append(acc)


def _ndarray_leaves(payload: Any, depth: int = 0):
    if isinstance(payload, np.ndarray):
        yield payload
    elif depth < 4:
        if isinstance(payload, (tuple, list)):
            for item in payload:
                yield from _ndarray_leaves(item, depth + 1)
        elif isinstance(payload, dict):
            for item in payload.values():
                yield from _ndarray_leaves(item, depth + 1)


def _describe(buf: Any) -> str:
    if isinstance(buf, np.ndarray):
        return f"ndarray(dtype={buf.dtype}, shape={buf.shape})"
    return type(buf).__name__


def _indent(text: str, pad: str = "    ") -> str:
    return "\n".join(pad + line for line in text.splitlines())


def _tracker_of(comm) -> Optional[BufferTracker]:
    return getattr(getattr(comm, "_world", comm), "tracker", None)


def note_buffer_write(comm, arr: np.ndarray) -> None:
    """Declare an in-place write to ``arr`` by this rank.

    SPMD code that intentionally mutates an array which may be shared with
    another rank (sent, received, or a collective result on the thread
    backend) calls this before writing; with ``REPRO_SPMD_CHECK=1`` the
    tracker raises :class:`SharedBufferRaceError` if another rank touched
    the same buffer since the last barrier.  No-op on backends without a
    zero-copy transport (process) and when checks are disabled.
    """
    tracker = _tracker_of(comm)
    if tracker is not None and isinstance(arr, np.ndarray):
        tracker.record(arr, comm.rank, "write")


def note_buffer_read(comm, arr: np.ndarray) -> None:
    """Declare a read of a possibly-shared buffer (see
    :func:`note_buffer_write`)."""
    tracker = _tracker_of(comm)
    if tracker is not None and isinstance(arr, np.ndarray):
        tracker.record(arr, comm.rank, "read")
