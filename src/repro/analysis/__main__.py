"""``python -m repro.analysis [paths...]`` — run spmdlint.

Exit status 0 when clean, 1 when any finding survives suppression (this is
what the CI gate keys on), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from .lint import lint_paths, rule_catalogue


def main(argv: list[str] | None = None) -> int:
    catalogue = rule_catalogue()
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="spmdlint: AST-based SPMD correctness linter.",
        epilog="rules: "
        + "; ".join(f"{rid}: {title}" for rid, title in sorted(catalogue.items())),
    )
    parser.add_argument("paths", nargs="+", help="files or directory trees to lint")
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all), e.g. --rules R1,R2",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    args = parser.parse_args(argv)

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in catalogue and r != "R0"]
        if unknown:
            parser.error(f"unknown rules {unknown}; known: {sorted(catalogue)}")

    try:
        findings = lint_paths(args.paths, rules)
    except OSError as exc:
        print(f"spmdlint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.format())
        n = len(findings)
        print(f"spmdlint: {n} finding{'s' if n != 1 else ''}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
