"""``python -m repro.analysis [paths...]`` — run spmdlint and the schedule
analyzer.

Lint mode (default): exit status 0 when clean, 1 when any finding survives
suppression (this is what the CI gate keys on), 2 on usage errors.
``--baseline FILE`` gates on *new* findings only (``--write-baseline`` to
record the current state).

Schedule mode: ``--schedule out.json`` extracts the CommSchedule of every
registered SPMD entry point (plus any ``module:function`` names given as
paths) and writes the JSON export; ``--check`` additionally model-checks
each schedule for ``--nranks`` concrete ranks and reports R7/R8 findings.
"""

from __future__ import annotations

import argparse
import json
import sys

from .lint import Finding, lint_paths_ex, rule_catalogue


def main(argv: list[str] | None = None) -> int:
    catalogue = rule_catalogue()
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="spmdlint: AST-based SPMD correctness linter + "
        "whole-program comm-schedule analyzer.",
        epilog="rules: "
        + "; ".join(f"{rid}: {title}" for rid, title in sorted(catalogue.items())),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directory trees to lint (schedule mode: optional "
        "extra entry points as module:function)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all), e.g. --rules R1,R2",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="JSON baseline of accepted findings: exit 1 only on findings "
        "not in the baseline (CI ratchet)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as a baseline file and exit 0",
    )
    parser.add_argument(
        "--schedule",
        default=None,
        metavar="FILE",
        help="schedule mode: extract every registered SPMD entry point's "
        "CommSchedule and write the JSON export here ('-' for stdout)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="schedule mode: model-check each extracted schedule "
        "(deadlocks, R7/R8) for --nranks concrete ranks",
    )
    parser.add_argument(
        "--nranks",
        type=int,
        default=4,
        help="schedule mode: concrete rank count for --check (default 4)",
    )
    args = parser.parse_args(argv)

    if args.schedule is not None or args.check:
        return _schedule_mode(args, parser)
    if not args.paths:
        parser.error("lint mode needs at least one path")

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in catalogue and r != "R0"]
        if unknown:
            parser.error(f"unknown rules {unknown}; known: {sorted(catalogue)}")

    try:
        findings, sup_counts = lint_paths_ex(args.paths, rules)
    except OSError as exc:
        print(f"spmdlint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        with open(args.write_baseline, "w", encoding="utf-8") as fh:
            json.dump([f.as_dict() for f in findings], fh, indent=2)
        print(
            f"spmdlint: wrote baseline with {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} to {args.write_baseline}"
        )
        return 0

    gated = findings
    if args.baseline is not None:
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                baseline_raw = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"spmdlint: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        gated = _subtract_baseline(findings, baseline_raw)

    if args.format == "json":
        print(json.dumps([f.as_dict() for f in gated], indent=2))
    else:
        for f in gated:
            print(f.format())
        n = len(gated)
        summary = f"spmdlint: {n} finding{'s' if n != 1 else ''}"
        if args.baseline is not None:
            summary += f" ({len(findings) - n} in baseline)"
        if sup_counts:
            per_rule = ", ".join(
                f"{rule}: {count}" for rule, count in sorted(sup_counts.items())
            )
            total = sum(sup_counts.values())
            summary += (
                f"; {total} suppression{'s' if total != 1 else ''} used"
                f" ({per_rule})"
            )
        print(summary)
    return 1 if gated else 0


def _subtract_baseline(
    findings: list[Finding], baseline_raw: list[dict]
) -> list[Finding]:
    """Findings not accounted for by the baseline.

    Keyed on (path, rule, message) — deliberately *not* the line number, so
    unrelated edits that shift an accepted finding do not wake the gate.
    Multiset semantics: the baseline covers as many identical findings as it
    recorded, no more.
    """
    budget: dict[tuple, int] = {}
    for item in baseline_raw:
        key = (item.get("path"), item.get("rule"), item.get("message"))
        budget[key] = budget.get(key, 0) + 1
    out: list[Finding] = []
    for f in findings:
        key = (f.path, f.rule, f.message)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            out.append(f)
    return out


def _schedule_mode(args, parser: argparse.ArgumentParser) -> int:
    """Extract (and optionally model-check) all registered entry points."""
    from .schedule import check_schedule, count_ops, extract_callable

    from repro.runtime.entry_points import load_default_entry_points

    entries = dict(load_default_entry_points())
    for spec in args.paths:
        if ":" not in spec:
            parser.error(
                f"schedule mode takes module:function entry points, got {spec!r}"
            )
        mod_name, fn_name = spec.split(":", 1)
        import importlib

        try:
            fn = getattr(importlib.import_module(mod_name), fn_name)
        except (ImportError, AttributeError) as exc:
            print(f"schedule: cannot load {spec}: {exc}", file=sys.stderr)
            return 2
        entries[spec] = fn

    export: dict[str, dict] = {}
    all_findings = []
    for name in sorted(entries):
        try:
            sched = extract_callable(entries[name])
        except (OSError, TypeError, ValueError) as exc:
            print(f"schedule: cannot extract {name}: {exc}", file=sys.stderr)
            return 2
        record = sched.to_dict()
        record["ops"] = count_ops(sched)
        if args.check:
            findings = check_schedule(sched, nranks=args.nranks)
            record["findings"] = [
                f.as_finding(sched.path).as_dict() for f in findings
            ]
            for f in findings:
                all_findings.append((name, f))
        export[name] = record

    payload = json.dumps(
        {"nranks": args.nranks if args.check else None, "entry_points": export},
        indent=2,
    )
    if args.schedule in (None, "-"):
        print(payload)
    else:
        with open(args.schedule, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")

    for name, f in all_findings:
        print(f"{name}: {f.format()}", file=sys.stderr)
    n = len(entries)
    print(
        f"schedule: {n} entry point{'s' if n != 1 else ''}, "
        f"{len(all_findings)} finding{'s' if len(all_findings) != 1 else ''}"
        + (f" at nranks={args.nranks}" if args.check else " (extract only)"),
        file=sys.stderr,
    )
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main())
