"""Whole-program function index and call graph for the schedule extractor.

The lint rules in :mod:`repro.analysis.rules` are *intra*procedural: each
:class:`~repro.analysis.lint.FunctionContext` sees one function body.  The
schedule extractor (:mod:`repro.analysis.schedule`) and the interprocedural
rules R7/R8 need the opposite view: every function definition in the tree,
resolvable by name, with a "does this (transitively) communicate?" fixpoint
over the call graph.

Resolution is deliberately name-based and repo-tuned, like the linter
itself: this codebase always passes the communicator explicitly (``comm``
first argument or ``self.comm``), so *a call participates in the SPMD
schedule only if a communicator value reaches it* — either as an argument
or because it is a :class:`~repro.mpi.comm.Comm` method.  Calls that never
see a comm (solver math, stores, NumPy) are comm-free by construction and
are dropped from schedules without being resolved.  ``run_spmd`` itself is
treated as comm-free from the caller's perspective: it spawns a *nested*
world whose schedule is analyzed separately via its entry-point function.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .lint import COLLECTIVE_FUNCTIONS, COLLECTIVE_METHODS, _call_name, _dotted

#: Comm method names that are point-to-point, not collective.
P2P_METHODS = frozenset(
    {"send", "isend", "recv", "recv_with_status", "sendrecv", "iprobe"}
)

#: Parameter names/annotations that mark a communicator parameter.
_COMM_PARAM_NAMES = frozenset({"comm", "world", "cur", "sub"})

#: Calls that never contribute to the *enclosing* schedule even though a
#: comm flows into them: they start a nested SPMD world (``run_spmd``),
#: only read comm metadata, or are pure builtins taking the comm as a plain
#: object (``getattr(comm, ...)`` in the NBX epoch counter).
_SCHEDULE_NEUTRAL_CALLS = frozenset(
    {
        "run_spmd",
        "format_rank_states",
        "getattr",
        "setattr",
        "hasattr",
        "isinstance",
        "id",
        "len",
        "repr",
        "str",
        "type",
        "print",
    }
)


def comm_param_names(fn: ast.AST) -> list[str]:
    """Parameters of ``fn`` that carry a communicator, in signature order.

    A parameter is a communicator if it is named ``comm``/``world`` or is
    annotated ``Comm`` (any dotted prefix).
    """
    out: list[str] = []
    args = getattr(fn, "args", None)
    if args is None:
        return out
    every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    for a in every:
        if a.arg in ("comm", "world"):
            out.append(a.arg)
            continue
        ann = a.annotation
        if ann is not None:
            label = _dotted(ann) or (
                ann.value if isinstance(ann, ast.Constant) else None
            )
            if isinstance(label, str) and label.split(".")[-1] == "Comm":
                out.append(a.arg)
    return out


@dataclass
class FunctionInfo:
    """One function definition somewhere in the analyzed tree."""

    path: str
    qualname: str  #: ``name`` or ``Class.name`` (nested defs: ``outer.inner``)
    name: str
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    class_name: Optional[str] = None
    comm_params: list[str] = field(default_factory=list)

    @property
    def key(self) -> tuple[str, str]:
        return (self.path, self.qualname)

    @property
    def lineno(self) -> int:
        return int(getattr(self.node, "lineno", 0))

    def label(self) -> str:
        return f"{os.path.basename(self.path)}:{self.qualname}"


def _index_functions(
    tree: ast.Module, path: str
) -> Iterable[FunctionInfo]:
    """Every function def in ``tree`` with its qualified name."""

    def rec(node: ast.AST, prefix: str, class_name: Optional[str]):
        for sub in getattr(node, "body", []):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qn = f"{prefix}{sub.name}" if prefix else sub.name
                yield FunctionInfo(
                    path=path,
                    qualname=qn,
                    name=sub.name,
                    node=sub,
                    class_name=class_name,
                    comm_params=comm_param_names(sub),
                )
                yield from rec(sub, qn + ".", class_name)
            elif isinstance(sub, ast.ClassDef):
                yield from rec(sub, f"{prefix}{sub.name}.", sub.name)
            elif isinstance(sub, (ast.If, ast.Try, ast.With)):
                yield from rec(sub, prefix, class_name)

    yield from rec(tree, "", None)


def _is_comm_receiver(node: ast.AST) -> bool:
    """Does this call receiver look like a communicator value?  Used only to
    distinguish ``comm.send`` from e.g. ``socket.send`` — in this repo any
    receiver whose name chain mentions comm/world/cur/sub qualifies."""
    label = _dotted(node)
    if label is None:
        return False
    parts = label.split(".")
    return any(p in _COMM_PARAM_NAMES or p in ("_comm", "comms") for p in parts)


def call_comm_args(call: ast.Call, comm_names: set[str]) -> list[str]:
    """Names in ``comm_names`` that are passed (whole) as arguments."""
    out = []
    for a in list(call.args) + [kw.value for kw in call.keywords]:
        if isinstance(a, ast.Name) and a.id in comm_names:
            out.append(a.id)
        elif isinstance(a, ast.Attribute):
            label = _dotted(a)
            if label in ("self.comm", "self._comm"):
                out.append(label)
    return out


class Program:
    """Index of every function in a set of files, with comm-reachability.

    ``roots`` are files or directory trees; ``*.py`` files are parsed (files
    with syntax errors are skipped — the linter reports those separately).
    """

    def __init__(self) -> None:
        self.functions: dict[tuple[str, str], FunctionInfo] = {}
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.sources: dict[str, str] = {}
        self._may_collective: Optional[dict[tuple[str, str], bool]] = None
        self._may_communicate: Optional[dict[tuple[str, str], bool]] = None

    @classmethod
    def load(cls, roots: Iterable[str]) -> "Program":
        prog = cls()
        for path in _py_files(roots):
            prog.add_file(path)
        return prog

    def add_file(self, path: str) -> None:
        if path in self.sources:
            return
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError):
            return
        self.add_tree(path, tree, source)

    def add_tree(self, path: str, tree: ast.Module, source: str = "") -> None:
        """Index an already-parsed module (in-memory sources, the linter)."""
        if path in self.sources:
            return
        self.sources[path] = source
        for info in _index_functions(tree, path):
            self.functions[info.key] = info
            self.by_name.setdefault(info.name, []).append(info)
        self._may_collective = None
        self._may_communicate = None

    # -- resolution --------------------------------------------------------

    def resolve_call(
        self, call: ast.Call, comm_names: set[str]
    ) -> Optional[FunctionInfo]:
        """The program function this call targets, when a communicator is
        passed to it and the bare name resolves unambiguously.

        Comm *method* calls resolve to the method on :class:`Comm` only when
        defined exactly once in the program; free/attribute calls resolve by
        trailing name.  Ambiguous names (several same-named defs taking a
        comm) resolve to None — the caller then treats the call as opaque.
        """
        name = _call_name(call)
        if name is None or name in _SCHEDULE_NEUTRAL_CALLS:
            return None
        if not call_comm_args(call, comm_names):
            return None
        candidates = [
            fi for fi in self.by_name.get(name, []) if fi.comm_params
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- transitive comm reachability --------------------------------------

    def may_collective(self, info: FunctionInfo) -> bool:
        """Can this function (transitively, through resolvable comm-passing
        calls) reach a collective operation?"""
        if self._may_collective is None:
            self._may_collective = self._reachability(collective_only=True)
        return self._may_collective.get(info.key, False)

    def may_communicate(self, info: FunctionInfo) -> bool:
        """Like :meth:`may_collective` but any comm op (incl. p2p)."""
        if self._may_communicate is None:
            self._may_communicate = self._reachability(collective_only=False)
        return self._may_communicate.get(info.key, False)

    def _direct_comm_ops(self, info: FunctionInfo, collective_only: bool) -> bool:
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            f = node.func
            if isinstance(f, ast.Attribute):
                if f.attr in COLLECTIVE_METHODS and _is_comm_receiver(f.value):
                    return True
                if (
                    not collective_only
                    and f.attr in P2P_METHODS
                    and _is_comm_receiver(f.value)
                ):
                    return True
            if _call_name(node) in COLLECTIVE_FUNCTIONS:
                return True
        return False

    def _reachability(self, collective_only: bool) -> dict[tuple[str, str], bool]:
        reach = {
            key: self._direct_comm_ops(info, collective_only)
            for key, info in self.functions.items()
        }
        # Fixpoint over comm-passing resolvable calls.
        changed = True
        while changed:
            changed = False
            for key, info in self.functions.items():
                if reach[key]:
                    continue
                comm_names = set(info.comm_params) | {"comm", "cur", "sub"}
                for node in ast.walk(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = self.resolve_call(node, comm_names)
                    if callee is not None and reach.get(callee.key, False):
                        reach[key] = True
                        changed = True
                        break
        return reach

    def collective_chain(
        self, info: FunctionInfo, limit: int = 8
    ) -> list[str]:
        """A call chain ``[f, g, ..., <collective op>]`` witnessing
        :meth:`may_collective`, for diagnostics."""
        chain: list[str] = [info.label()]
        seen = {info.key}
        cur = info
        for _ in range(limit):
            # Direct collective in the current function?
            for node in ast.walk(cur.node):
                if isinstance(node, ast.Call):
                    f = node.func
                    if isinstance(f, ast.Attribute) and f.attr in COLLECTIVE_METHODS:
                        if _is_comm_receiver(f.value):
                            chain.append(f"`{f.attr}` at line {node.lineno}")
                            return chain
                    name = _call_name(node)
                    if name in COLLECTIVE_FUNCTIONS:
                        chain.append(f"`{name}` at line {node.lineno}")
                        return chain
            nxt = None
            comm_names = set(cur.comm_params) | {"comm", "cur", "sub"}
            for node in ast.walk(cur.node):
                if isinstance(node, ast.Call):
                    callee = self.resolve_call(node, comm_names)
                    if (
                        callee is not None
                        and callee.key not in seen
                        and self.may_collective(callee)
                    ):
                        nxt = callee
                        break
            if nxt is None:
                break
            seen.add(nxt.key)
            chain.append(nxt.label())
            cur = nxt
        return chain


def _py_files(roots: Iterable[str]) -> list[str]:
    files: list[str] = []
    for p in roots:
        if os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                files.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        elif p.endswith(".py"):
            files.append(p)
    return files
