"""spmdlint — AST-based SPMD correctness linter for this repository.

MPI correctness tools (MUST, ISP) exist because SPMD defects — a collective
reached on some ranks only, a float reduction whose order depends on hash
iteration, wall-clock entering a supposedly deterministic rank function —
evade unit tests: every rank passes alone, the ensemble diverges.  PR 3's
cross-backend determinism sweep flushed out exactly one such bug (unsorted
peer iteration in ``ghost_write``); ``spmdlint`` turns that bug class, and
four adjacent ones, into build-time findings.

The linter is *repo-specific by design*: its rules know this codebase's
communicator API (:class:`repro.mpi.comm.Comm`), its NBX entry points, its
assembly-plan generation contract, and its zero-copy thread transport.  See
:mod:`repro.analysis.rules` for the rule catalogue (R1–R6) and DESIGN.md §7
for the taint model.

Machinery provided here:

* :class:`Finding` — one diagnostic (rule id, location, message).
* :func:`lint_source` / :func:`lint_file` / :func:`lint_paths` — entry
  points; ``lint_paths`` is what ``python -m repro.analysis`` calls.
* Suppressions: a line carrying ``# spmdlint: ignore[R2] -- reason`` is
  exempt from the named rules.  The justification after ``--`` is
  **mandatory**: a bare ``ignore[..]`` is itself reported (rule R0), so
  every suppression in the tree documents why the code is actually safe.
* :class:`FunctionContext` — per-function fact base shared by the rules:
  which functions are SPMD-executed, which names are rank-tainted, which
  names hold unordered containers, which hold received (possibly aliased)
  buffers.  Taint is a flow-insensitive fixpoint over simple assignments —
  deliberately coarse, tuned so that the repository's idioms stay quiet and
  the defect patterns do not.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

#: Comm methods that are collective (every rank of the communicator must
#: call them, in the same order).  ``ibarrier`` is collective too — NBX
#: enters it on every rank.
COLLECTIVE_METHODS = frozenset(
    {
        "barrier",
        "ibarrier",
        "bcast",
        "gather",
        "allgather",
        "scatter",
        "reduce",
        "allreduce",
        "scan",
        "exscan",
        "alltoall",
        "alltoallv",
        "split",
        "split_cached",
    }
)

#: Free functions in this repo that are collective over their ``comm``
#: argument (they call collectives / NBX internally on every rank).
COLLECTIVE_FUNCTIONS = frozenset(
    {
        "nbx_exchange",
        "dense_exchange",
        "allreduce_sum",
        "allreduce_max",
        "allreduce_min",
        "allgatherv",
        "gatherv",
        "scatterv",
        "exscan_sum",
        "alltoallv_counts",
        "kway_sort",
        "sample_sort",
        "kway_stage_comms",
        "partition_balanced",
        "gather_world",
        "ghost_read",
        "ghost_write",
        "repartition",
        "gather_tree",
        "distributed_sort_tree",
        "partition_endpoints",
        "par_balance",
        "par_coarsen",
    }
)

#: Calls whose results are received message buffers — on the zero-copy
#: thread transport these may alias another rank's live array (rule R5) and
#: are per-rank data (taint seeds for R1 where noted).
RECEIVE_CALLS = frozenset(
    {
        "recv",
        "recv_with_status",
        "bcast",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "alltoallv",
        "nbx_exchange",
        "dense_exchange",
    }
)

#: Receive-ish calls whose result is genuinely rank-dependent (R1 taint
#: seeds).  Replicated results (bcast, allreduce, allgather) are excluded:
#: branching on them is collective-consistent.
RANK_DEPENDENT_CALLS = frozenset({"recv", "recv_with_status", "exscan", "scan", "iprobe"})

#: Collectives whose result is *replicated* — identical on every rank of the
#: communicator even when the per-rank contributions differ.  They launder
#: rank-taint: ``comm.allreduce(tainted)`` is uniform, so branching on it is
#: collective-consistent.  (``gather``/``scatter``/``scan`` stay out: their
#: results genuinely differ per rank.)
REPLICATED_COLLECTIVES = frozenset(
    {
        "bcast",
        "allgather",
        "allreduce",
        "allreduce_sum",
        "allreduce_max",
        "allreduce_min",
        "allgatherv",
    }
)

_SUPPRESS_RE = re.compile(
    r"#\s*spmdlint:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(?:--\s*(\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One linter diagnostic."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppression:
    rules: frozenset
    justification: str
    line: int
    used: bool = False


def _collect_suppressions(source: str) -> dict[int, Suppression]:
    out: dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m:
            rules = frozenset(r.strip() for r in m.group(1).split(",") if r.strip())
            out[lineno] = Suppression(rules, (m.group(2) or "").strip(), lineno)
    return out


# --------------------------------------------------------------------------
# Per-function fact base


def _call_name(node: ast.Call) -> Optional[str]:
    """Trailing name of the called object: ``foo`` or ``x.y.foo`` -> ``foo``."""
    f = node.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute/name chains as a dotted string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _assign_targets(node: ast.AST) -> Iterable[ast.AST]:
    if isinstance(node, ast.Assign):
        yield from node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if node.value is not None or isinstance(node, ast.AugAssign):
            yield node.target


def _flatten_target_names(target: ast.AST) -> Iterable[str]:
    """Name targets of an assignment, descending through tuple unpacking."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _flatten_target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _flatten_target_names(target.value)


class FunctionContext:
    """Facts about one function body, computed once and shared by the rules."""

    def __init__(
        self,
        fn: ast.AST,
        class_name: Optional[str] = None,
        seed_tainted: Optional[Iterable[str]] = None,
    ):
        self.node = fn
        self.class_name = class_name
        self.name = getattr(fn, "name", "<lambda>")
        self.is_spmd = self._detect_spmd(fn)
        # ``seed_tainted`` lets interprocedural callers (the schedule
        # extractor, R7) mark parameters whose *actual arguments* were
        # rank-tainted at the call site before the fixpoint runs.
        self.rank_tainted: set[str] = set(seed_tainted or ())
        self.unordered: set[str] = set()
        self.received: set[str] = set()
        self._compute_taints(fn)

    # -- SPMD detection ----------------------------------------------------

    @staticmethod
    def _detect_spmd(fn: ast.AST) -> bool:
        """A function is SPMD-executed if it takes a communicator (a param
        named/annotated ``comm``/``world``/``Comm``) or reaches one through
        ``self`` (``self.comm`` / ``self._comm``)."""
        args = getattr(fn, "args", None)
        if args is not None:
            every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            for a in every:
                if a.arg in ("comm", "world"):
                    return True
                ann = a.annotation
                if ann is not None:
                    label = _dotted(ann) or (
                        ann.value if isinstance(ann, ast.Constant) else None
                    )
                    if isinstance(label, str) and label.split(".")[-1] == "Comm":
                        return True
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Attribute) and sub.attr in ("comm", "_comm"):
                if isinstance(sub.value, ast.Name) and sub.value.id == "self":
                    return True
        return False

    # -- taint fixpoint ----------------------------------------------------

    def _expr_rank_tainted(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in RANK_DEPENDENT_CALLS:
                return True
            if name in REPLICATED_COLLECTIVES:
                # Replicated result: identical on every rank no matter how
                # tainted the per-rank contribution was.
                return False
        if isinstance(node, ast.Attribute) and node.attr == "rank":
            return True
        if isinstance(node, ast.Name):
            return node.id in self.rank_tainted
        return any(
            self._expr_rank_tainted(child) for child in ast.iter_child_nodes(node)
        )

    def _expr_received(self, node: ast.AST) -> bool:
        """Does this expression derive from a received message buffer?

        ``.copy()`` (and copy-producing constructors) launder the taint —
        the result is rank-private memory."""
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in RECEIVE_CALLS:
                return True
            if name in ("copy", "array", "asarray", "concatenate", "zeros_like",
                        "ascontiguousarray", "deepcopy"):
                return False
            if name in ("items", "values") and isinstance(node.func, ast.Attribute):
                # Views of a received container yield received elements.
                return self._expr_received(node.func.value)
        if isinstance(node, ast.Name):
            return node.id in self.received
        if isinstance(node, ast.Subscript):
            # incoming[q] — element of a received container; but a fancy-
            # indexed ndarray read makes a fresh array.  Conservatively only
            # containers (Name base) stay tainted.
            return self._expr_received(node.value)
        if isinstance(node, ast.Attribute):
            return False
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self._expr_received(e) for e in node.elts)
        if isinstance(node, ast.IfExp):
            return self._expr_received(node.body) or self._expr_received(node.orelse)
        if isinstance(node, ast.Starred):
            return self._expr_received(node.value)
        return False

    def _expr_unordered(self, node: ast.AST) -> bool:
        """Does this expression evaluate to an unordered container (dict/set
        or a view of one)?"""
        if isinstance(node, ast.Dict) or isinstance(node, ast.Set):
            return True
        if isinstance(node, (ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in ("dict", "set", "frozenset"):
                return True
            if name in ("nbx_exchange", "dense_exchange"):
                return True
            if name in ("sorted",):
                return False
            if name in ("items", "keys", "values") and isinstance(
                node.func, ast.Attribute
            ):
                # x.items() is only unordered if x is; plain dicts preserve
                # insertion order but *which* insertion order is schedule-
                # dependent for exchange results, so inherit from the base.
                return self._expr_unordered(node.func.value)
        if isinstance(node, ast.Name):
            return node.id in self.unordered
        return False

    def _annotation_unordered(self, ann: Optional[ast.AST]) -> bool:
        if ann is None:
            return False
        label = _dotted(ann)
        if label is None and isinstance(ann, ast.Subscript):
            label = _dotted(ann.value)
        if label is None:
            return False
        return label.split(".")[-1] in (
            "dict", "Dict", "set", "Set", "frozenset", "FrozenSet",
            "Mapping", "MutableMapping",
        )

    def _compute_taints(self, fn: ast.AST) -> None:
        # Parameter annotations seed the unordered set (Mapping params are
        # exchange patterns here).
        args = getattr(fn, "args", None)
        if args is not None:
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                if self._annotation_unordered(a.annotation):
                    self.unordered.add(a.arg)

        # Binding forms the fixpoint propagates through: plain assignments
        # (incl. tuple unpacking via _flatten_target_names), walrus
        # (``if (n := comm.recv(0)) ...``), aug-assign (``acc += tainted``),
        # and annotated assignments.
        assigns = [n for n in ast.walk(fn) for _ in [0] if isinstance(n, ast.Assign)]
        named_exprs = [n for n in ast.walk(fn) if isinstance(n, ast.NamedExpr)]
        aug_assigns = [n for n in ast.walk(fn) if isinstance(n, ast.AugAssign)]
        ann_assigns = [
            n
            for n in ast.walk(fn)
            if isinstance(n, ast.AnnAssign) and n.value is not None
        ]
        for_loops = [n for n in ast.walk(fn) if isinstance(n, ast.For)]
        comp_gens = [
            g
            for n in ast.walk(fn)
            if isinstance(n, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp))
            for g in n.generators
        ]

        def bind(names: Iterable[str], value: ast.AST) -> bool:
            changed = False
            names = list(names)
            for name in names:
                if (
                    self._expr_rank_tainted(value)
                    and name not in self.rank_tainted
                ):
                    self.rank_tainted.add(name)
                    changed = True
                if self._expr_unordered(value) and name not in self.unordered:
                    self.unordered.add(name)
                    changed = True
                if self._expr_received(value) and name not in self.received:
                    self.received.add(name)
                    changed = True
            return changed

        for _ in range(4):  # fixpoint over simple chains
            changed = False
            for node in assigns:
                for target in node.targets:
                    changed |= bind(_flatten_target_names(target), node.value)
            for walrus in named_exprs:
                changed |= bind(
                    _flatten_target_names(walrus.target), walrus.value
                )
            for aug in aug_assigns:
                changed |= bind(_flatten_target_names(aug.target), aug.value)
            for ann in ann_assigns:
                assert ann.value is not None
                changed |= bind(_flatten_target_names(ann.target), ann.value)
            # Loop / comprehension targets inherit from the iterable: over a
            # received container they carry received elements (``for q,
            # (ids, vals) in incoming.items()``); over a rank-dependent one
            # (``for job in todo[comm.rank::comm.size]``) they are
            # rank-tainted.
            for loop in for_loops:
                changed |= self._bind_iter_target(loop.target, loop.iter)
            for gen in comp_gens:
                changed |= self._bind_iter_target(gen.target, gen.iter)
            if not changed:
                break

    def _bind_iter_target(self, target: ast.AST, it: ast.AST) -> bool:
        changed = False
        received = self._expr_received(it)
        tainted = self._expr_rank_tainted(it)
        for name in _flatten_target_names(target):
            if received and name not in self.received:
                self.received.add(name)
                changed = True
            if tainted and name not in self.rank_tainted:
                self.rank_tainted.add(name)
                changed = True
        return changed


def is_collective_call(node: ast.Call) -> bool:
    """Is this call one of the repo's collective entry points?"""
    f = node.func
    if isinstance(f, ast.Attribute) and f.attr in COLLECTIVE_METHODS:
        return True
    name = _call_name(node)
    return name in COLLECTIVE_FUNCTIONS


# --------------------------------------------------------------------------
# Rule driver


class Rule:
    """Base class: one rule instance is created per linted file."""

    id: str = "R?"
    title: str = "?"

    def check_module(self, tree: ast.Module, path: str) -> list[Finding]:
        out: list[Finding] = []
        for fn, class_name in iter_functions(tree):
            ctx = FunctionContext(fn, class_name)
            out.extend(self.check_function(ctx, path))
        return out

    def check_function(self, ctx: FunctionContext, path: str) -> list[Finding]:
        return []

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            self.id,
            path,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            message,
        )


def iter_functions(tree: ast.Module):
    """All function defs with their enclosing class name (or None)."""
    for node in tree.body:
        yield from _iter_functions_in(node, None)


def _iter_functions_in(node: ast.AST, class_name: Optional[str]):
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        yield node, class_name
        for sub in node.body:
            yield from _iter_functions_in(sub, class_name)
    elif isinstance(node, ast.ClassDef):
        for sub in node.body:
            yield from _iter_functions_in(sub, node.name)
    elif hasattr(node, "body") and isinstance(getattr(node, "body"), list):
        for sub in node.body:
            yield from _iter_functions_in(sub, class_name)
        for sub in getattr(node, "orelse", []) or []:
            yield from _iter_functions_in(sub, class_name)


def all_rules() -> list[Rule]:
    from .rules import RULES

    return [cls() for cls in RULES]


def rule_catalogue() -> dict[str, str]:
    from .rules import RULES

    return {cls.id: cls.title for cls in RULES}


def lint_source(
    source: str, path: str = "<string>", rules: Optional[Iterable[str]] = None
) -> list[Finding]:
    """Lint one source string; returns findings after applying suppressions."""
    return lint_source_ex(source, path, rules)[0]


def lint_source_ex(
    source: str, path: str = "<string>", rules: Optional[Iterable[str]] = None
) -> tuple[list[Finding], dict[str, int]]:
    """Like :func:`lint_source` but also returns per-rule counts of *used*
    suppressions (for the CLI summary)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [Finding("R0", path, exc.lineno or 0, exc.offset or 0,
                     f"syntax error: {exc.msg}")],
            {},
        )
    active = all_rules()
    if rules is not None:
        wanted = set(rules)
        active = [r for r in active if r.id in wanted]
    raw: list[Finding] = []
    for rule in active:
        raw.extend(rule.check_module(tree, path))

    suppressions = _collect_suppressions(source)
    suppressed: dict[str, int] = {}
    kept: list[Finding] = []
    for f in sorted(raw, key=lambda f: (f.line, f.col, f.rule)):
        sup = suppressions.get(f.line)
        if sup is not None and f.rule in sup.rules:
            sup.used = True
            suppressed[f.rule] = suppressed.get(f.rule, 0) + 1
            continue
        kept.append(f)
    # A suppression without a justification is itself a finding (R0):
    # the acceptance contract is that every escape hatch documents *why*.
    for sup in suppressions.values():
        if not sup.justification:
            kept.append(
                Finding(
                    "R0", path, sup.line, 0,
                    "suppression without justification — write "
                    "`# spmdlint: ignore[RULE] -- <why this is safe>`",
                )
            )
    kept.sort(key=lambda f: (f.line, f.col, f.rule))
    return kept, suppressed


def lint_file(path: str, rules: Optional[Iterable[str]] = None) -> list[Finding]:
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path, rules)


def lint_paths(
    paths: Iterable[str], rules: Optional[Iterable[str]] = None
) -> list[Finding]:
    """Lint files and directory trees (``*.py``, sorted for stable output)."""
    return lint_paths_ex(paths, rules)[0]


def lint_paths_ex(
    paths: Iterable[str], rules: Optional[Iterable[str]] = None
) -> tuple[list[Finding], dict[str, int]]:
    """Like :func:`lint_paths` but also returns per-rule used-suppression
    counts aggregated over all files."""
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                files.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        else:
            files.append(p)
    out: list[Finding] = []
    counts: dict[str, int] = {}
    for fname in files:
        try:
            with open(fname, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError:
            continue
        findings, sup = lint_source_ex(source, fname, rules)
        out.extend(findings)
        for rule, n in sup.items():
            counts[rule] = counts.get(rule, 0) + n
    return out, counts
