"""Runtime conformance: fingerprint streams as refinements of CommSchedules.

The static half (:mod:`repro.analysis.schedule`) claims to know every
collective an SPMD entry point can execute.  This module makes that claim
falsifiable: ``run_spmd(..., schedule=sched)`` with ``REPRO_SPMD_CHECK=1``
attaches a per-rank :class:`ScheduleMonitor` to the communicator, and every
collective fingerprint published by the PR 5 runtime checker
(:func:`repro.analysis.runtime_check.verify_collective`) must advance the
monitor's automaton.  A collective the schedule cannot produce — or a rank
finishing with collectives still pending — raises
:class:`ScheduleConformanceError` naming the offending operation and what
the schedule expected instead.

**Refinement, not equality.**  The monitor compiles the schedule into an
epsilon-NFA over the *runtime fingerprint alphabet* for this rank's concrete
``(rank, size)``: decidable rank predicates are resolved, uniform ``range``
loops with known bounds are unrolled, undecidable branches become
alternations and data-dependent loops become Kleene stars.  The automaton
therefore accepts a superset of the streams the program can really emit —
every real stream must be accepted (soundness of extraction), while the
model checker separately bounds how much wider the superset is.

**Lowering.**  Static operation names are what the source *calls*
(``alltoallv``, ``split_cached``); the runtime fingerprints what the
transport *executes* (``alltoallv`` delegates to ``alltoall``; ``split``
rendezvouses through its membership ``allgather``; ``ibarrier`` and all
point-to-point traffic publish no fingerprint).  :data:`FINGERPRINT_LOWERING`
is that contract in one table.
"""

from __future__ import annotations

from typing import Any, Optional

from .runtime_check import SpmdCheckError, checks_enabled
from .schedule import (
    UNKNOWN,
    Branch,
    Coll,
    CommSchedule,
    Loop,
    Node,
    Opaque,
    RankEnv,
    Recv,
    Send,
    Seq,
    _bind_in_tree,
    eval_sym,
)

#: Static op name -> tuple of runtime fingerprint symbols it emits.
#: (``split_cached`` is handled structurally: zero-or-one ``allgather``.)
FINGERPRINT_LOWERING: dict[str, tuple[str, ...]] = {
    "barrier": ("barrier",),
    "ibarrier": (),  # no fingerprint rendezvous (non-blocking)
    "bcast": ("bcast",),
    "gather": ("gather",),
    "allgather": ("allgather",),
    "scatter": ("scatter",),
    "reduce": ("allreduce",),  # Comm.reduce delegates to allreduce
    "allreduce": ("allreduce",),
    "scan": ("scan",),
    "exscan": ("exscan",),
    "alltoall": ("alltoall",),
    "alltoallv": ("alltoall",),  # Comm.alltoallv delegates to alltoall
    "split": ("allgather",),  # membership rendezvous is an allgather
}

#: Unroll cap for known-bound range loops; beyond this a Kleene star is as
#: precise as anyone needs.
_UNROLL_CAP = 64


class ScheduleConformanceError(SpmdCheckError):
    """A runtime collective stream is not a refinement of the static
    CommSchedule it was launched under."""


class _NFA:
    """Epsilon-NFA over fingerprint symbols.  ``None`` edge symbol = any."""

    def __init__(self) -> None:
        self.n = 0
        self.eps: dict[int, set[int]] = {}
        self.edges: dict[int, list[tuple[Optional[str], int]]] = {}

    def state(self) -> int:
        s = self.n
        self.n += 1
        return s

    def link_eps(self, a: int, b: int) -> None:
        self.eps.setdefault(a, set()).add(b)

    def link(self, a: int, symbol: Optional[str], b: int) -> None:
        self.edges.setdefault(a, []).append((symbol, b))

    def closure(self, states: set[int]) -> set[int]:
        out = set(states)
        stack = list(states)
        while stack:
            s = stack.pop()
            for t in self.eps.get(s, ()):
                if t not in out:
                    out.add(t)
                    stack.append(t)
        return out

    def step(self, states: set[int], symbol: str) -> set[int]:
        nxt: set[int] = set()
        for s in states:
            for sym, d in self.edges.get(s, ()):
                if sym is None or sym == symbol:
                    nxt.add(d)
        return self.closure(nxt)

    def expected(self, states: set[int]) -> list[str]:
        syms = {
            sym if sym is not None else "<any>"
            for s in states
            for sym, _ in self.edges.get(s, ())
        }
        return sorted(syms)


class _Compiler:
    """Compiles a CommSchedule body to an NFA for one concrete rank."""

    def __init__(self, nfa: _NFA, env: RankEnv):
        self.nfa = nfa
        self.env = env

    def compile(self, node: Node, start: int) -> int:
        if isinstance(node, Seq):
            cur = start
            for item in node.items:
                cur = self.compile(item, cur)
            return cur
        if isinstance(node, Coll):
            return self._coll(node, start)
        if isinstance(node, (Send, Recv)):
            return start  # p2p publishes no fingerprint
        if isinstance(node, Opaque):
            # Unresolvable comm-passing call: accept any symbols here.
            w = self.nfa.state()
            end = self.nfa.state()
            self.nfa.link_eps(start, w)
            self.nfa.link(w, None, w)
            self.nfa.link_eps(w, end)
            return end
        if isinstance(node, Branch):
            return self._branch(node, start)
        if isinstance(node, Loop):
            return self._loop(node, start)
        return start

    def _coll(self, node: Coll, start: int) -> int:
        if node.op == "split_cached":
            # Cache hit: silent.  Miss: one split (= allgather rendezvous).
            end = self.nfa.state()
            self.nfa.link_eps(start, end)
            self.nfa.link(start, "allgather", end)
            return end
        cur = start
        for symbol in FINGERPRINT_LOWERING.get(node.op, ()):
            nxt = self.nfa.state()
            self.nfa.link(cur, symbol, nxt)
            cur = nxt
        return cur

    def _branch(self, node: Branch, start: int) -> int:
        cond = eval_sym(node.cond, self.env)
        if cond is not UNKNOWN:
            return self.compile(node.then if cond else node.orelse, start)
        then_end = self.compile(node.then, start)
        else_end = self.compile(node.orelse, start)
        end = self.nfa.state()
        self.nfa.link_eps(then_end, end)
        self.nfa.link_eps(else_end, end)
        return end

    def _loop(self, node: Loop, start: int) -> int:
        if node.kind == "range":
            lo = eval_sym(node.start, self.env)
            hi = eval_sym(node.bound, self.env)
            if (
                isinstance(lo, int)
                and isinstance(hi, int)
                and hi - lo <= _UNROLL_CAP
            ):
                cur = start
                for i in range(lo, hi):
                    body = (
                        _bind_in_tree(node.body, node.target, i)
                        if node.target is not None
                        else node.body
                    )
                    cur = self.compile(body, cur)
                return cur
        # Unknown/dynamic/rank-dependent trip count: Kleene star.
        body_start = self.nfa.state()
        body_end = self.compile(node.body, body_start)
        end = self.nfa.state()
        self.nfa.link_eps(start, body_start)
        self.nfa.link_eps(start, end)  # zero iterations
        self.nfa.link_eps(body_end, body_start)  # repeat
        self.nfa.link_eps(body_end, end)
        return end


class ScheduleMonitor:
    """Per-rank refinement monitor over the collective fingerprint stream.

    Attached to the communicator as ``comm._schedule_monitor`` (propagated
    to sub-communicators by :meth:`Comm.split`, so subcomm collectives feed
    the same linear per-rank stream) and advanced by
    :func:`~repro.analysis.runtime_check.verify_collective`.
    """

    def __init__(self, schedule: CommSchedule, rank: int, size: int):
        self.schedule = schedule
        self.rank = rank
        self.size = size
        self.history: list[str] = []
        self.nfa = _NFA()
        start = self.nfa.state()
        self.accept = _Compiler(self.nfa, RankEnv(rank, size)).compile(
            schedule.body, start
        )
        self.frontier = self.nfa.closure({start})

    def advance(self, op: str) -> None:
        """One runtime collective happened; the automaton must accept it."""
        nxt = self.nfa.step(self.frontier, op)
        if not nxt:
            raise ScheduleConformanceError(self._reject_message(op))
        self.frontier = nxt
        self.history.append(op)

    def finish(self) -> None:
        """End of the rank's run: the automaton must be in an accept state."""
        if self.accept not in self.frontier:
            raise ScheduleConformanceError(
                f"rank {self.rank}: SPMD program finished but the static "
                f"schedule of {self.schedule.entry} still expects "
                f"collectives (one of {self.nfa.expected(self.frontier)}); "
                f"stream so far: {self._stream()}"
            )

    def _reject_message(self, op: str) -> str:
        return (
            f"rank {self.rank}: runtime collective `{op}` is not a "
            f"refinement of the static schedule of {self.schedule.entry} "
            f"at position {len(self.history) + 1} — the schedule expects "
            f"{self.nfa.expected(self.frontier) or ['<end of schedule>']}; "
            f"stream so far: {self._stream()}"
        )

    def _stream(self) -> str:
        tail = self.history[-8:]
        pre = "... " if len(self.history) > 8 else ""
        return pre + (" ; ".join(tail) if tail else "(no collectives yet)")


class MonitoredEntry:
    """Picklable ``run_spmd`` wrapper: compile the monitor *inside* each
    rank (rank/size are only known there), run, then require acceptance."""

    def __init__(self, fn: Any, schedule: CommSchedule):
        self.fn = fn
        self.schedule = schedule

    def __call__(self, comm: Any, *args: Any) -> Any:
        monitor = attach_monitor(comm, self.schedule)
        result = self.fn(comm, *args)
        if monitor is not None:
            monitor.finish()
        return result


def attach_monitor(
    comm: Any, schedule: CommSchedule
) -> Optional[ScheduleMonitor]:
    """Attach a conformance monitor to ``comm`` (no-op — returning ``None``
    — unless ``REPRO_SPMD_CHECK`` is on, mirroring the other runtime
    checkers)."""
    if not checks_enabled():
        return None
    monitor = ScheduleMonitor(schedule, comm.rank, comm.size)
    comm._schedule_monitor = monitor
    return monitor
