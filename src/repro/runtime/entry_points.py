"""Registry of SPMD entry points for static schedule analysis.

An *entry point* is a module-level function handed to
:func:`repro.mpi.comm.run_spmd` — the root of one SPMD program.  Marking it
with :func:`spmd_entry_point` makes it discoverable by the comm-schedule
extractor (:mod:`repro.analysis.schedule`): the CI ``spmd-schedule`` job
extracts and model-checks every registered entry point, and ``python -m
repro.analysis --schedule out.json`` exports their program plans.

Registration is intentionally decoupled from execution — the decorator only
records the function; ``run_spmd`` neither knows nor cares.  Entry points
must be module-level (not closures): the process backend needs them
picklable and the extractor needs their source statically resolvable, so
the registry enforces both at decoration time.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

_REGISTRY: dict[str, Callable[..., Any]] = {}


def spmd_entry_point(
    name: Optional[str] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering an SPMD entry point under ``name`` (default:
    ``module.qualname``).  The function itself is returned unchanged."""

    def deco(fn: Callable[..., Any]) -> Callable[..., Any]:
        if "<locals>" in fn.__qualname__:
            raise TypeError(
                f"SPMD entry point {fn.__qualname__!r} is a closure — "
                "entry points must be module-level so the process backend "
                "can pickle them and the schedule extractor can resolve "
                "their source"
            )
        key = name or f"{fn.__module__}.{fn.__qualname__}"
        _REGISTRY[key] = fn
        return fn

    return deco


def registered_entry_points() -> dict[str, Callable[..., Any]]:
    """Snapshot of all registered entry points, keyed by registration name."""
    return dict(_REGISTRY)


def load_default_entry_points() -> dict[str, Callable[..., Any]]:
    """Import the modules that register the repo's standing entry points
    (scenario batch worker, runtime test programs are registered by their
    own test modules) and return the registry."""
    import repro.scenarios.batch  # noqa: F401  - registers scenarios.batch_worker

    return registered_entry_points()
