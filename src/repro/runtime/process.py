"""Process-per-rank backend: true parallelism for NumPy-heavy ranks.

Each rank is a forked OS process, so rank compute never shares a GIL.  The
transport is one ``multiprocessing.Queue`` inbox per top-level rank carrying
small control records; ndarray payloads ship through shared-memory blocks
(:mod:`repro.runtime.shm`).  ``fork`` keeps the SPMD closure and its captured
arrays out of pickle entirely — children inherit them copy-on-write.

Sub-communicators never allocate new OS resources: a split derives a
*context id* (deterministically, because splits are collective) and routes
through the top-level inboxes with world-local ranks translated to global
ones — the same context-id trick real MPI uses.  Collectives are
root-gather-then-broadcast over the same transport.

Counters live in a shared array (:class:`repro.mpi.stats.SharedCommStats`),
so ``comm.stats`` shows the same global live view as the thread backend; the
parent folds the totals back into the caller's ``CommStats`` when the run
completes.  Each rank also writes its last-known blocking state into a
shared board that the parent dumps if the run times out.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from typing import Any, Callable

from . import shm
from .base import Backend, format_rank_states
from .thread import ANY_SOURCE, ANY_TAG

_STATE_SLOT = 200  # bytes of last-known-state per rank

# Record kinds on the wire.
_USER = "u"
_CONTRIB = "c"
_RESULT = "r"
_IBARRIER = "b"


class _StateBoard:
    """Fixed-slot shared byte array: one last-known-state string per rank."""

    def __init__(self, array, nprocs: int) -> None:
        self._a = array
        self.nprocs = nprocs

    def set(self, rank: int, desc: str) -> None:
        data = desc.encode("utf-8", "replace")[: _STATE_SLOT - 1]
        lo = rank * _STATE_SLOT
        self._a[lo : lo + len(data) + 1] = data + b"\x00"

    def get(self, rank: int) -> str:
        lo = rank * _STATE_SLOT
        raw = bytes(self._a[lo : lo + _STATE_SLOT])
        return raw.split(b"\x00", 1)[0].decode("utf-8", "replace")

    def dump(self) -> str:
        """Serial-style structural table (deadlock reporter parity)."""
        return format_rank_states(
            {r: self.get(r) for r in range(self.nprocs)}
        )


class _ProcessRuntime:
    """Per-child shared handles: inbox queues, stats, state board, registry."""

    def __init__(self, inboxes, my_global: int, stats, board, timeout: float) -> None:
        self.inboxes = inboxes
        self.my_global = my_global
        self.stats = stats
        self.board = board
        self.timeout = timeout
        self.registry: dict = {}
        self.orphans: dict = {}

    def register(self, world: "ProcessWorld") -> None:
        self.registry[world.ctx] = world
        for rec in self.orphans.pop(world.ctx, []):
            world._deliver(rec)

    def send(self, dest_global: int, record: tuple) -> None:
        self.inboxes[dest_global].put(record)

    def _dispatch(self, record: tuple) -> None:
        ctx = record[1]
        world = self.registry.get(ctx)
        if world is None:
            # Message for a sub-communicator this rank has not created yet
            # (sender raced ahead); hold it until the split completes here.
            self.orphans.setdefault(ctx, []).append(record)
        else:
            world._deliver(record)

    def pump(self, block: bool, deadline: float, waiting_for: str) -> None:
        """Drain available records; optionally block for one (up to deadline)."""
        from repro.mpi.comm import SpmdError

        inbox = self.inboxes[self.my_global]
        got = False
        while True:
            try:
                self._dispatch(inbox.get_nowait())
                got = True
            except queue_mod.Empty:
                break
        if got or not block:
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise SpmdError(self._timeout_report(waiting_for))
        try:
            self._dispatch(inbox.get(timeout=min(remaining, 0.5)))
        except queue_mod.Empty:
            if time.monotonic() >= deadline:
                raise SpmdError(self._timeout_report(waiting_for)) from None

    def _timeout_report(self, waiting_for: str) -> str:
        """Per-op timeout message with the structural per-rank table
        (deadlock reporter parity with the thread/serial backends)."""
        return f"{waiting_for} timed out — deadlock?\n" + self.board.dump()

    def pump_briefly(self, seconds: float) -> None:
        """Blocking drain bounded by ``seconds``; no deadlock accounting."""
        inbox = self.inboxes[self.my_global]
        try:
            self._dispatch(inbox.get(timeout=seconds))
        except queue_mod.Empty:
            return
        while True:
            try:
                self._dispatch(inbox.get_nowait())
            except queue_mod.Empty:
                return


class ProcessWorld:
    """One communicator's view inside one rank process.

    ``ctx`` is the communicator's context id (a tuple, identical on every
    member); ``members`` maps world-local ranks to top-level global ranks.
    """

    def __init__(self, runtime: _ProcessRuntime, ctx: tuple, members) -> None:
        self.runtime = runtime
        self.ctx = ctx
        self.members = list(members)
        self.size = len(self.members)
        self.stats = runtime.stats
        self.timeout = runtime.timeout
        self._pending: list = []  # delivered user messages (src, tag, payload)
        self._contribs: dict = {}
        self._results: dict = {}
        self._ibar: dict = {}
        self._coll_seq = 0
        self.split_cache: dict = {}
        self.attrs: dict = {}
        runtime.register(self)

    # -------------------------------------------------------- record intake

    def _deliver(self, rec: tuple) -> None:
        kind = rec[0]
        if kind == _USER:
            _, _, src, tag, enc = rec
            self._pending.append((src, tag, shm.decode(enc)))
        elif kind == _CONTRIB:
            _, _, seq, src, enc = rec
            self._contribs.setdefault(seq, {})[src] = shm.decode(enc)
        elif kind == _RESULT:
            _, _, seq, enc = rec
            self._results[seq] = shm.decode(enc)
        elif kind == _IBARRIER:
            _, _, key = rec
            self._ibar[key] = self._ibar.get(key, 0) + 1

    def _match(self, source: int, tag: int):
        for i, (s, t, _) in enumerate(self._pending):
            if (source == ANY_SOURCE or s == source) and (tag == ANY_TAG or t == tag):
                return i
        return None

    def _wait(self, rank: int, ready, desc: str):
        """Pump the inbox until ``ready()`` is truthy; board shows ``desc``."""
        rt = self.runtime
        rt.board.set(rt.my_global, desc)
        deadline = time.monotonic() + self.timeout
        while True:
            out = ready()
            if out is not None:
                # On failure the board keeps `desc` as the last-known state.
                rt.board.set(rt.my_global, "running")
                return out
            rt.pump(block=True, deadline=deadline, waiting_for=desc)

    # Transport interface (see repro.runtime.base) -------------------------

    def post(self, dest: int, src: int, tag: int, payload: Any) -> None:
        self.runtime.send(
            self.members[dest], (_USER, self.ctx, src, tag, shm.encode(payload))
        )

    def wait_recv(self, rank: int, source: int, tag: int):
        def ready():
            i = self._match(source, tag)
            return None if i is None else self._pending.pop(i)

        return self._wait(
            rank, ready, f"recv(source={source}, tag={tag}) ctx={self.ctx}"
        )

    def probe(self, rank: int, source: int, tag: int):
        self.runtime.pump(block=False, deadline=0.0, waiting_for="probe")
        i = self._match(source, tag)
        if i is None:
            # A miss costs a ~2ms blocking pump instead of a pure spin:
            # probe loops (NBX drains) would otherwise burn the core while
            # peers are trying to get scheduled to send.
            self.runtime.pump_briefly(0.002)
            i = self._match(source, tag)
        if i is None:
            return None
        s, t, _ = self._pending[i]
        return (s, t)

    def exchange(self, rank: int, value: Any, combine: Callable[[list], Any]) -> Any:
        seq = self._coll_seq
        self._coll_seq += 1
        if rank == 0:
            def have_all():
                got = self._contribs.get(seq, {})
                return (got,) if len(got) >= self.size - 1 else None

            got = self._wait(
                rank, have_all, f"collective #{seq} (root) ctx={self.ctx}"
            )[0] if self.size > 1 else {}
            self._contribs.pop(seq, None)
            vals = [value] + [got[r] for r in range(1, self.size)]
            result = combine(vals)
            for r in range(1, self.size):
                # Fresh encoding per destination: each receiver consumes
                # (and unlinks) its own shared-memory block.
                self.runtime.send(
                    self.members[r], (_RESULT, self.ctx, seq, shm.encode(result))
                )
            return result
        self.runtime.send(
            self.members[0], (_CONTRIB, self.ctx, seq, rank, shm.encode(value))
        )

        def have_result():
            # Boxed so a legitimate None result (e.g. a barrier) is not
            # mistaken for "not ready yet".
            if seq in self._results:
                return (self._results.pop(seq),)
            return None

        return self._wait(
            rank, have_result, f"collective #{seq} (awaiting root) ctx={self.ctx}"
        )[0]

    def ibarrier_arrive(self, rank: int, key) -> None:
        # Everyone-tells-everyone: O(p^2) records per barrier, but the only
        # correct shape over per-producer-FIFO queues.  NBX exits its drain
        # loop when the barrier completes, i.e. once *every* member's
        # arrival record has landed here — and each arrival rides the same
        # FIFO as that member's earlier user messages, which are therefore
        # already delivered.  A cheaper root-counted completion broadcast
        # is NOT ordered behind other senders' messages and loses them.
        for g in self.members:
            self.runtime.send(g, (_IBARRIER, self.ctx, key))

    def ibarrier_done(self, rank: int, key) -> bool:
        self.runtime.pump(block=False, deadline=0.0, waiting_for="ibarrier")
        return self._ibar.get(key, 0) >= self.size

    def subworld(self, key, ranks: list[int]) -> "ProcessWorld":
        # Splits are collective and `key` embeds (member tuple, split count),
        # so appending it to the parent context gives every member the same
        # fresh context id with no coordination.
        if key not in self.split_cache:
            self.split_cache[key] = ProcessWorld(
                self.runtime,
                self.ctx + (key,),
                [self.members[r] for r in ranks],
            )
        return self.split_cache[key]

    def set_attr(self, key, value) -> None:
        self.attrs[key] = value  # rank-local; see repro.runtime.base

    def get_attr(self, key, default=None):
        return self.attrs.get(key, default)


def _child_main(rank, nprocs, fn, args, inboxes, result_q, shared, board_arr, timeout):
    from repro.mpi.comm import Comm
    from repro.mpi.stats import SharedCommStats

    board = _StateBoard(board_arr, nprocs)
    runtime = _ProcessRuntime(inboxes, rank, SharedCommStats(shared), board, timeout)
    world = ProcessWorld(runtime, (), range(nprocs))
    try:
        result = fn(Comm(world, rank), *args)
        try:
            result_q.put(("ok", rank, result))
        except Exception as exc:  # result not picklable
            result_q.put(
                ("err", rank, f"result of rank {rank} not picklable: {exc!r}")
            )
    except BaseException as exc:  # noqa: BLE001 - serialized to the parent
        result_q.put(
            ("err", rank, f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
        )


class ProcessBackend(Backend):
    """Rank-per-OS-process backend over fork + shared memory."""

    name = "process"

    @staticmethod
    def is_available() -> bool:
        return "fork" in mp.get_all_start_methods()

    def run(self, nprocs, fn, args, timeout, stats) -> list:
        from repro.mpi.comm import SpmdError
        from repro.mpi.stats import SharedCommStats

        if not self.is_available():
            raise SpmdError(
                "process backend needs the 'fork' start method (POSIX only); "
                "use backend='thread' or 'serial'"
            )
        ctx = mp.get_context("fork")
        inboxes = [ctx.Queue() for _ in range(nprocs)]
        result_q = ctx.Queue()
        shared = ctx.Array("q", len(SharedCommStats.FIELDS), lock=True)
        board_arr = ctx.Array("c", nprocs * _STATE_SLOT, lock=False)
        board = _StateBoard(board_arr, nprocs)
        procs = [
            ctx.Process(
                target=_child_main,
                args=(r, nprocs, fn, args, inboxes, result_q, shared,
                      board_arr, timeout),
                daemon=True,
            )
            for r in range(nprocs)
        ]
        for p in procs:
            p.start()

        results: list = [None] * nprocs
        done = [False] * nprocs
        # Grace margin: ranks detect their own recv timeouts at `timeout` and
        # report a precise error; the parent backstop only fires for waits
        # that have no per-operation deadline (e.g. a stuck collective root).
        deadline = time.monotonic() + timeout + 2.0
        try:
            while not all(done):
                try:
                    kind, r, payload = result_q.get(timeout=0.1)
                except queue_mod.Empty:
                    if time.monotonic() > deadline:
                        raise SpmdError(
                            f"SPMD run timed out after {timeout}s (deadlock?)\n"
                            "last-known " + board.dump()
                        )
                    dead = [
                        r for r in range(nprocs)
                        if not done[r] and not procs[r].is_alive()
                        and procs[r].exitcode not in (0, None)
                    ]
                    if dead:
                        r = dead[0]
                        raise SpmdError(
                            f"rank {r} died with exit code {procs[r].exitcode} "
                            "before reporting a result"
                        )
                    continue
                if kind == "err":
                    raise SpmdError(f"rank {r} failed: {payload}")
                results[r] = payload
                done[r] = True
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(2.0)
            for q in [*inboxes, result_q]:
                q.close()
                q.cancel_join_thread()
            # Fold the shared counters into the caller's stats object so the
            # aggregate matches the thread backend exactly.
            stats.merge(SharedCommStats(shared).snapshot())
        return results
