"""Pluggable SPMD execution backends.

``repro.mpi.comm.run_spmd`` delegates rank execution and message transport
to one of the backends registered here:

``thread`` (default)
    one thread per rank, zero-copy mailboxes — fastest startup, exact
    communication metering, but the GIL serializes rank compute.
``process``
    one forked OS process per rank with shared-memory ndarray transport —
    real core-level parallelism for NumPy-heavy ranks (POSIX only).
``serial``
    deterministic single-threaded round-robin scheduler — reproducible
    interleavings and structural deadlock reports for debugging.

Select per call (``run_spmd(..., backend="process")``) or globally via the
``REPRO_SPMD_BACKEND`` environment variable.  See ``docs/API.md`` ("Choosing
an execution backend") for guidance and caveats.
"""

from .base import (  # noqa: F401
    BACKEND_ENV,
    DEFAULT_TIMEOUT,
    TIMEOUT_ENV,
    Backend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
    resolve_timeout,
)
from .process import ProcessBackend
from .serial import SerialBackend
from .thread import ThreadBackend

register_backend(ThreadBackend.name, ThreadBackend)
register_backend(ProcessBackend.name, ProcessBackend)
register_backend(SerialBackend.name, SerialBackend)

__all__ = [
    "Backend",
    "ThreadBackend",
    "ProcessBackend",
    "SerialBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "resolve_timeout",
    "BACKEND_ENV",
    "TIMEOUT_ENV",
    "DEFAULT_TIMEOUT",
]
