"""Execution-backend abstraction for the SPMD simulator.

The paper's algorithms are SPMD programs written against :class:`repro.mpi.comm.Comm`.
*How* the ranks execute — one thread each, one OS process each, or a
deterministic single-threaded schedule — is a transport decision, not an
algorithmic one, so it lives behind the :class:`Backend` interface defined
here.  ``run_spmd`` picks a backend explicitly (``backend=``) or from the
``REPRO_SPMD_BACKEND`` environment variable, defaulting to the zero-copy
thread simulator.

A backend supplies a *world* object per communicator.  Worlds are duck-typed;
the contract consumed by :class:`~repro.mpi.comm.Comm` is:

``size``, ``stats``, ``timeout``
    group size, a :class:`~repro.mpi.stats.CommStats`-compatible recorder,
    and the deadlock timeout in seconds.
``post(dest, src, tag, payload)``
    deposit a message in ``dest``'s mailbox (ranks are world-local).
``wait_recv(rank, source, tag) -> (src, tag, payload)``
    blocking matched receive on ``rank``'s own mailbox; raises
    :class:`~repro.mpi.comm.SpmdError` past ``timeout``.
``probe(rank, source, tag) -> (src, tag) | None``
    non-blocking match test.
``exchange(rank, value, combine) -> combined``
    one collective rendezvous: every rank deposits ``value``; ``combine``
    (identical on all ranks) maps the rank-ordered list to the result all
    ranks return.
``ibarrier_arrive(rank, key)`` / ``ibarrier_done(rank, key) -> bool``
    non-blocking barrier used by the NBX sparse exchange.
``subworld(key, ranks) -> world``
    the shared world for the subgroup ``ranks`` (world-local indices);
    ``key`` is identical on every member of a collective split.
``set_attr(key, value)`` / ``get_attr(key, default)``
    communicator attribute cache (the paper's MPI attribute idiom).  The
    process backend keeps attrs rank-local, which every in-repo user is
    compatible with (all keys embed the rank).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

DEFAULT_TIMEOUT = 120.0

#: Environment variable naming the default backend ("thread"|"process"|"serial").
BACKEND_ENV = "REPRO_SPMD_BACKEND"

#: Environment variable overriding the default deadlock timeout (seconds).
TIMEOUT_ENV = "REPRO_SPMD_TIMEOUT"


def format_rank_states(states: dict[int, Optional[str]]) -> str:
    """The per-rank "waiting on" table every backend emits on a deadlock
    timeout — one line per rank, serial-backend style:

        per-rank state:
          rank 0: recv(source=1, tag=0) on comm of size 4
          rank 1: running

    ``states`` maps rank to a wait description (None/empty = running).
    """
    lines = ["per-rank state:"]
    for r in sorted(states):
        lines.append(f"  rank {r}: {states[r] or 'running'}")
    return "\n".join(lines)


class Backend:
    """Executes an SPMD program: ``fn(comm)`` on every rank of a world."""

    #: registry name; subclasses set it ("thread", "process", "serial").
    name: str = "?"

    def run(
        self,
        nprocs: int,
        fn: Callable[..., Any],
        args: tuple,
        timeout: float,
        stats,
    ) -> list:
        """Run ``fn(Comm(world, r), *args)`` for ranks ``r in range(nprocs)``
        and return the per-rank results in rank order.

        Must raise :class:`repro.mpi.comm.SpmdError` on any rank failure or
        on a deadlock past ``timeout``, and must meter all traffic into
        ``stats`` so counters agree across backends.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} ({self.name})>"


_REGISTRY: dict[str, Callable[[], Backend]] = {}
_INSTANCES: dict[str, Backend] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> list[str]:
    """Names of all registered backends (importing ``repro.runtime`` registers
    the three built-ins)."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> Backend:
    """The singleton backend registered under ``name``."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown SPMD backend {name!r}; available: {available_backends()}"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _REGISTRY[name]()
    return _INSTANCES[name]


def default_backend_name() -> str:
    """The backend ``run_spmd`` uses when none is passed explicitly."""
    return os.environ.get(BACKEND_ENV, "thread")


def resolve_backend(backend: Optional[object]) -> Backend:
    """Map a ``backend=`` argument (None, name, or instance) to an instance."""
    if backend is None:
        return get_backend(default_backend_name())
    if isinstance(backend, Backend):
        return backend
    return get_backend(str(backend))


def resolve_timeout(timeout: Optional[float]) -> float:
    """Explicit argument beats ``REPRO_SPMD_TIMEOUT`` beats the default."""
    if timeout is not None:
        return float(timeout)
    env = os.environ.get(TIMEOUT_ENV)
    if env:
        try:
            return float(env)
        except ValueError:
            pass
    return DEFAULT_TIMEOUT
