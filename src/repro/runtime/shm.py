"""ndarray payload shipping over POSIX shared memory.

The process backend moves message payloads between rank processes.  Control
messages and small arrays travel pickled through the ``multiprocessing``
queues; large ndarrays are copied once into a ``multiprocessing.shared_memory``
block and only the (name, dtype, shape) descriptor is pickled, so the bytes
cross the process boundary through the page cache instead of a pipe.

Lifecycle: the sender creates the block, copies the array in, closes its
mapping and *unregisters* the block from its resource tracker; the receiver
attaches, copies out, closes, and unlinks.  Each encoded descriptor is
consumed exactly once (our mailboxes deliver every message exactly once), so
ownership hand-off is unambiguous.  A receiver that dies before decoding can
leak a block until reboot — acceptable for a simulator, and the parent
process reaps any stragglers it observes on normal shutdown.
"""

from __future__ import annotations

import os
import pickle
from multiprocessing import shared_memory
from typing import Any

import numpy as np

#: Arrays at least this large (bytes) go through shared memory; smaller ones
#: ride the queue pickle.  Overridable via REPRO_SPMD_SHM_MIN.
SHM_MIN_BYTES = int(os.environ.get("REPRO_SPMD_SHM_MIN", 16384))

_PICKLED = 0
_SHM_ARRAY = 1


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach a block from this process's resource tracker (ownership moves
    to the receiver, which unlinks)."""
    try:  # pragma: no cover - private API, best effort
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


def encode(payload: Any) -> tuple:
    """Encode one message payload for queue transport.

    Top-level contiguous-convertible ndarrays of at least ``SHM_MIN_BYTES``
    go to a fresh shared-memory block; everything else (control tuples,
    scalars, small arrays, containers) is passed through for queue pickling.
    """
    if (
        isinstance(payload, np.ndarray)
        and payload.nbytes >= SHM_MIN_BYTES
        and payload.dtype.hasobject is False
    ):
        arr = np.ascontiguousarray(payload)
        shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        np.ndarray(arr.shape, arr.dtype, buffer=shm.buf)[...] = arr
        name = shm.name
        shm.close()
        _untrack(shm)
        return (_SHM_ARRAY, name, arr.dtype.str, arr.shape)
    return (_PICKLED, payload)


def decode(enc: tuple) -> Any:
    """Decode (and release) a payload produced by :func:`encode`."""
    if enc[0] == _PICKLED:
        return enc[1]
    _, name, dtype, shape = enc
    shm = shared_memory.SharedMemory(name=name)
    try:
        return np.ndarray(shape, np.dtype(dtype), buffer=shm.buf).copy()
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass


def payload_roundtrips(payload: Any) -> bool:
    """True if a payload survives pickling (diagnostic helper)."""
    try:
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        return True
    except Exception:
        return False
