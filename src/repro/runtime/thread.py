"""Thread-per-rank backend: the original zero-copy SPMD simulator.

One OS thread per rank; mailboxes hold payload *references* (SPMD code
follows the MPI discipline of never mutating a sent buffer), collectives
rendezvous on a double barrier.  Cheap to launch and ideal for
communication-structure measurement, but the GIL serializes Python-level
work across ranks — use the process backend when ranks do heavy NumPy work.

On a deadlock timeout the error carries the serial backend's structural
"per-rank state" table (what each rank is blocked on, maintained by a
shared wait board) followed by the per-rank stack traces, so the blocked
operation is visible without a debugger.

With ``REPRO_SPMD_CHECK=1`` the world carries a
:class:`repro.analysis.runtime_check.BufferTracker`: the zero-copy payload
references this backend shares between ranks are exactly the buffers whose
unsynchronized cross-rank mutation the write-epoch race detector catches.
Sends, receives, and collective results record read accesses automatically;
the epoch advances inside every collective rendezvous (while all ranks are
blocked in the barrier).
"""

from __future__ import annotations

import sys
import threading
import time
import traceback
from typing import Any, Callable, Optional

from .base import Backend, format_rank_states

ANY_SOURCE = -1
ANY_TAG = -1


class _Mailbox:
    """Unordered-match message store for one destination rank.

    ``on_timeout`` (if set) is called when a blocking get expires and its
    return value is appended to the error — the deadlock report must be
    built *here*, while every peer still sits in its blocked frame; by the
    time the error reaches the backend's main loop the peers' own
    deadlines (the same instant) have unwound their stacks.
    """

    def __init__(self, on_timeout: Optional[Callable[[], str]] = None) -> None:
        self._cv = threading.Condition()
        self._messages: list[tuple[int, int, Any]] = []
        self._on_timeout = on_timeout

    def put(self, src: int, tag: int, payload: Any) -> None:
        with self._cv:
            self._messages.append((src, tag, payload))
            self._cv.notify_all()

    def _match(self, source: int, tag: int) -> Optional[int]:
        for i, (s, t, _) in enumerate(self._messages):
            if (source == ANY_SOURCE or s == source) and (tag == ANY_TAG or t == tag):
                return i
        return None

    def get(self, source: int, tag: int, timeout: float):
        from repro.mpi.comm import SpmdError

        deadline = time.monotonic() + timeout
        with self._cv:
            while True:
                i = self._match(source, tag)
                if i is not None:
                    return self._messages.pop(i)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    msg = f"recv(source={source}, tag={tag}) timed out — deadlock?"
                    if self._on_timeout is not None:
                        msg += "\n" + self._on_timeout()
                    raise SpmdError(msg)
                self._cv.wait(remaining)

    def probe(self, source: int, tag: int) -> Optional[tuple[int, int]]:
        with self._cv:
            i = self._match(source, tag)
            if i is None:
                return None
            s, t, _ = self._messages[i]
            return (s, t)


class _CollectiveContext:
    """One reusable rendezvous slot per communicator.

    Ranks deposit contributions, synchronize on a barrier, read the combined
    result, and synchronize again before the slot is reused.  The double
    barrier makes back-to-back collectives safe.
    """

    def __init__(self, size: int, tracker=None) -> None:
        self.size = size
        self.slots: list[Any] = [None] * size
        self.result: Any = None
        self.barrier = threading.Barrier(size)
        self.tracker = tracker

    def exchange(self, rank: int, value: Any, combine: Callable[[list], Any]) -> Any:
        self.slots[rank] = value
        idx = self.barrier.wait()
        if idx == 0:
            self.result = combine(self.slots)
            if self.tracker is not None:
                # Every peer is blocked in the next barrier.wait() right
                # now, so this is a true happens-before point: bump here.
                self.tracker.bump_epoch()
        self.barrier.wait()
        out = self.result
        idx = self.barrier.wait()
        if idx == 0:
            self.slots = [None] * self.size
            self.result = None
        self.barrier.wait()
        return out


class ThreadWorld:
    """Shared state for one communicator (group of rank threads)."""

    def __init__(
        self,
        size: int,
        stats,
        timeout: float,
        rank_threads: dict | None = None,
        tracker=None,
        wait_board: dict | None = None,
    ) -> None:
        self.size = size
        self.stats = stats
        self.timeout = timeout
        # Top-level rank -> thread, filled in by the backend after spawn and
        # shared (by reference) with every subworld for deadlock reports.
        self.rank_threads: dict[int, threading.Thread] = (
            {} if rank_threads is None else rank_threads
        )
        #: thread ident -> "waiting on" description; shared with subworlds
        #: so the deadlock table covers blocked sub-communicator waits too.
        self.wait_board: dict[int, str] = {} if wait_board is None else wait_board
        #: REPRO_SPMD_CHECK=1 write-epoch race detector (None when off).
        self.tracker = tracker
        self.mailboxes = [_Mailbox(self._deadlock_report) for _ in range(size)]
        self.collective = _CollectiveContext(size, tracker)
        self.split_lock = threading.Lock()
        self.split_cache: dict = {}
        self.attr_lock = threading.Lock()
        self.attrs: dict = {}
        self.ibarrier_lock = threading.Lock()
        self.ibarrier_counts: dict = {}

    def _set_wait(self, desc: str | None) -> None:
        ident = threading.get_ident()
        if desc is None:
            self.wait_board.pop(ident, None)
        else:
            self.wait_board[ident] = desc

    # Transport interface (see repro.runtime.base) -------------------------

    def post(self, dest: int, src: int, tag: int, payload: Any) -> None:
        if self.tracker is not None:
            # Sending is a read of the (shared-by-reference) payload.
            self.tracker.record_payload(payload, src, "send")
        self.mailboxes[dest].put(src, tag, payload)

    def wait_recv(self, rank: int, source: int, tag: int):
        self._set_wait(
            f"recv(source={source}, tag={tag}) on comm of size {self.size}"
        )
        try:
            got = self.mailboxes[rank].get(source, tag, self.timeout)
        finally:
            self._set_wait(None)
        if self.tracker is not None:
            self.tracker.record_payload(got[2], rank, "recv")
        return got

    def probe(self, rank: int, source: int, tag: int):
        return self.mailboxes[rank].probe(source, tag)

    def exchange(self, rank: int, value: Any, combine: Callable[[list], Any]) -> Any:
        self._set_wait(f"collective on comm of size {self.size}")
        try:
            out = self.collective.exchange(rank, value, combine)
        finally:
            self._set_wait(None)
        if self.tracker is not None and out is not None:
            # Collective results are shared by reference across all ranks.
            self.tracker.record_payload(out, rank, "recv")
        return out

    def ibarrier_arrive(self, rank: int, key) -> None:
        with self.ibarrier_lock:
            self.ibarrier_counts[key] = self.ibarrier_counts.get(key, 0) + 1

    def ibarrier_done(self, rank: int, key) -> bool:
        with self.ibarrier_lock:
            return self.ibarrier_counts.get(key, 0) >= self.size

    def subworld(self, key, ranks: list[int]) -> "ThreadWorld":
        # All ranks of a subgroup must share one world.  Splits are
        # collective, so every member presents the same key; the first
        # arrival creates the world, the rest find it in the cache.
        with self.split_lock:
            if key not in self.split_cache:
                self.split_cache[key] = type(self)(
                    len(ranks),
                    self.stats,
                    self.timeout,
                    self.rank_threads,
                    self.tracker,
                    self.wait_board,
                )
            return self.split_cache[key]

    def set_attr(self, key, value) -> None:
        with self.attr_lock:
            self.attrs[key] = value

    def get_attr(self, key, default=None):
        with self.attr_lock:
            return self.attrs.get(key, default)

    def _deadlock_report(self) -> str:
        if not self.rank_threads:
            return "(rank threads unknown)"
        return _deadlock_report(self.rank_threads, self.wait_board)


def _wait_table(
    rank_threads: dict[int, threading.Thread], wait_board: dict[int, str]
) -> str:
    """Serial-style structural table: what every top-level rank waits on."""
    states = {}
    for r, t in rank_threads.items():
        if not t.is_alive():
            states[r] = "finished"
        else:
            states[r] = wait_board.get(t.ident) or "running"
    return format_rank_states(states)


def _format_rank_stacks(rank_threads: dict[int, threading.Thread]) -> str:
    """Per-rank stack traces for the deadlock report."""
    frames = sys._current_frames()
    chunks = []
    for r in sorted(rank_threads):
        t = rank_threads[r]
        if not t.is_alive():
            chunks.append(f"rank {r}: finished")
            continue
        frame = frames.get(t.ident)
        if frame is None:
            chunks.append(f"rank {r}: <no frame>")
            continue
        stack = "".join(traceback.format_stack(frame))
        chunks.append(f"rank {r} stack:\n{stack.rstrip()}")
    return "\n".join(chunks)


def _deadlock_report(
    rank_threads: dict[int, threading.Thread], wait_board: dict[int, str]
) -> str:
    """Structural waiting-on table first (deadlock reporter parity with the
    serial backend), raw stacks after for the full picture."""
    return _wait_table(rank_threads, wait_board) + "\n" + _format_rank_stacks(
        rank_threads
    )


class ThreadBackend(Backend):
    """Default backend: one daemon thread per rank, zero-copy mailboxes."""

    name = "thread"

    def run(self, nprocs, fn, args, timeout, stats) -> list:
        from repro.analysis.runtime_check import BufferTracker, checks_enabled
        from repro.mpi.comm import Comm, SpmdError

        tracker = BufferTracker() if checks_enabled() else None
        world = ThreadWorld(nprocs, stats, timeout, tracker=tracker)
        results: list = [None] * nprocs
        errors: list = [None] * nprocs

        def runner(r: int) -> None:
            try:
                results[r] = fn(Comm(world, r), *args)
            except BaseException as exc:  # noqa: BLE001 - reported to the caller
                errors[r] = exc

        threads = {
            r: threading.Thread(target=runner, args=(r,), daemon=True)
            for r in range(nprocs)
        }
        world.rank_threads.update(threads)
        for t in threads.values():
            t.start()
        deadline = time.monotonic() + timeout
        while True:
            alive = [t for t in threads.values() if t.is_alive()]
            # A failed rank usually leaves its peers blocked in a collective;
            # report the root cause, not the ensuing hang (threads are daemons).
            for r, exc in enumerate(errors):
                if exc is not None:
                    raise SpmdError(f"rank {r} failed: {exc!r}") from exc
            if not alive:
                break
            if time.monotonic() > deadline:
                raise SpmdError(
                    f"SPMD run timed out after {timeout}s (deadlock?)\n"
                    + _deadlock_report(threads, world.wait_board)
                )
            alive[0].join(min(0.05, max(deadline - time.monotonic(), 0.001)))
        return results
