"""Serial backend: deterministic single-threaded round-robin scheduling.

Ranks are cooperative tasks; exactly one executes at any moment and control
is handed off round-robin at the communication wait points (blocked receive,
collective rendezvous, non-blocking-barrier poll).  Because the schedule
depends only on the program's communication structure, two runs of the same
program interleave identically — ideal for debugging and for reproducing
heisenbugs found under the thread backend.

Deadlocks are detected *structurally*: the moment every unfinished rank is
blocked with no possible wake-up, the run aborts with a report naming what
each rank was waiting for (no timeout needed).  A poll-loop livelock (e.g. an
NBX drain loop whose barrier can never complete) is caught by a bounded count
of consecutive unproductive handoffs.

Implementation note: ranks are carried by OS threads, but a baton guarantees
only one ever runs; the interleaving is fully deterministic.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from .base import Backend
from .thread import ANY_SOURCE, ANY_TAG


class _Aborted(BaseException):
    """Internal: unwind a rank after another rank failed or timed out."""


class DeadlockError(Exception):
    """Internal marker; converted to SpmdError by the backend."""


class _Scheduler:
    """Round-robin baton over the top-level ranks."""

    def __init__(self, n: int) -> None:
        self.cv = threading.Condition()
        self.n = n
        self.current = 0
        self.finished = [False] * n
        # blocked[r] is a wait description while r cannot progress, else None.
        self.blocked: list[Optional[str]] = [None] * n
        self.blocked_at = [0] * n
        self.progress = 1  # bumped on every event that could unblock a rank
        self.abort: Optional[str] = None
        self._idle_spins = 0
        self._last_spin_progress = -1
        self.spin_limit = 20_000 * n

    # All public methods acquire self.cv; user code never holds it.

    def wait_initial(self, rank: int) -> None:
        with self.cv:
            self._wait_for_turn(rank)

    def bump(self) -> None:
        with self.cv:
            self.progress += 1

    def yield_turn(self, rank: int, desc: Optional[str] = None) -> None:
        """Hand the baton to the next runnable rank.

        ``desc`` marks a hard block (only re-runnable after progress);
        ``None`` is a polling yield (always re-runnable).
        """
        with self.cv:
            if desc is not None:
                self.blocked[rank] = desc
                self.blocked_at[rank] = self.progress
            else:
                if self.progress == self._last_spin_progress:
                    self._idle_spins += 1
                    if self._idle_spins > self.spin_limit:
                        raise self._deadlock(
                            "livelock: ranks polling with no progress"
                        )
                else:
                    self._idle_spins = 0
                    self._last_spin_progress = self.progress
            self._handoff(rank)
            self._wait_for_turn(rank)
            self.blocked[rank] = None

    def finish(self, rank: int) -> None:
        with self.cv:
            self.finished[rank] = True
            self.blocked[rank] = None
            if self.abort is None and not all(self.finished):
                self._handoff(rank)
            self.cv.notify_all()

    def fail(self, reason: str) -> None:
        with self.cv:
            if self.abort is None:
                self.abort = reason
            self.cv.notify_all()

    # ------------------------------------------------------------ internals

    def _runnable(self, r: int) -> bool:
        if self.finished[r]:
            return False
        return self.blocked[r] is None or self.progress > self.blocked_at[r]

    def _handoff(self, rank: int) -> None:
        for step in range(1, self.n + 1):
            c = (rank + step) % self.n
            if self._runnable(c):
                self.current = c
                self.cv.notify_all()
                return
        if all(self.finished):
            return
        raise self._deadlock("all ranks blocked")

    def _deadlock(self, why: str) -> DeadlockError:
        lines = [f"SPMD deadlock ({why}); per-rank state:"]
        for r in range(self.n):
            if self.finished[r]:
                state = "finished"
            else:
                state = self.blocked[r] or "polling (runnable)"
            lines.append(f"  rank {r}: {state}")
        self.abort = "\n".join(lines)
        self.cv.notify_all()
        return DeadlockError(self.abort)

    def _wait_for_turn(self, rank: int) -> None:
        while self.current != rank:
            if self.abort is not None:
                raise _Aborted()
            self.cv.wait(0.2)
        if self.abort is not None:
            raise _Aborted()


def _match(messages: list, source: int, tag: int) -> Optional[int]:
    for i, (s, t, _) in enumerate(messages):
        if (source == ANY_SOURCE or s == source) and (tag == ANY_TAG or t == tag):
            return i
    return None


class SerialWorld:
    """Single-runner world: plain lists, no locks, scheduler-mediated waits.

    ``owners`` maps this world's local ranks to top-level scheduler ranks so
    sub-communicators created by ``split`` share the one global baton.
    """

    def __init__(self, size, stats, timeout, sched: _Scheduler, owners) -> None:
        self.size = size
        self.stats = stats
        self.timeout = timeout
        self.sched = sched
        self.owners = list(owners)
        self.boxes: list[list] = [[] for _ in range(size)]
        self.split_cache: dict = {}
        self.attrs: dict = {}
        self._contribs: dict = {}
        self._results: dict = {}
        self._result_reads: dict = {}
        self._ibar: dict = {}
        self._coll_seq = [0] * size

    # Transport interface (see repro.runtime.base) -------------------------

    def post(self, dest: int, src: int, tag: int, payload: Any) -> None:
        self.boxes[dest].append((src, tag, payload))
        self.sched.bump()

    def wait_recv(self, rank: int, source: int, tag: int):
        while True:
            i = _match(self.boxes[rank], source, tag)
            if i is not None:
                return self.boxes[rank].pop(i)
            self.sched.yield_turn(
                self.owners[rank],
                f"recv(source={source}, tag={tag}) on comm of size {self.size}",
            )

    def probe(self, rank: int, source: int, tag: int):
        i = _match(self.boxes[rank], source, tag)
        if i is None:
            # Give peers a deterministic chance to send before reporting no.
            self.sched.yield_turn(self.owners[rank])
            i = _match(self.boxes[rank], source, tag)
        if i is None:
            return None
        s, t, _ = self.boxes[rank][i]
        return (s, t)

    def exchange(self, rank: int, value: Any, combine: Callable[[list], Any]) -> Any:
        # Root-gathers-then-broadcasts, all through scheduler wait points;
        # payloads pass by reference (zero-copy, like the thread backend).
        seq = self._coll_seq[rank]
        self._coll_seq[rank] += 1
        contribs = self._contribs.setdefault(seq, {})
        contribs[rank] = value
        self.sched.bump()
        if rank == 0:
            while len(contribs) < self.size:
                self.sched.yield_turn(
                    self.owners[0],
                    f"collective #{seq} (root; {len(contribs)}/{self.size} arrived)",
                )
            result = combine([contribs[r] for r in range(self.size)])
            del self._contribs[seq]
            self._results[seq] = result
            self._result_reads[seq] = self.size - 1
            self.sched.bump()
            return result
        while seq not in self._results:
            self.sched.yield_turn(
                self.owners[rank], f"collective #{seq} (awaiting result)"
            )
        result = self._results[seq]
        self._result_reads[seq] -= 1
        if self._result_reads[seq] == 0:
            del self._results[seq]
            del self._result_reads[seq]
        return result

    def ibarrier_arrive(self, rank: int, key) -> None:
        self._ibar[key] = self._ibar.get(key, 0) + 1
        self.sched.bump()

    def ibarrier_done(self, rank: int, key) -> bool:
        if self._ibar.get(key, 0) >= self.size:
            return True
        self.sched.yield_turn(self.owners[rank])
        return self._ibar.get(key, 0) >= self.size

    def subworld(self, key, ranks: list[int]) -> "SerialWorld":
        if key not in self.split_cache:
            self.split_cache[key] = SerialWorld(
                len(ranks),
                self.stats,
                self.timeout,
                self.sched,
                [self.owners[r] for r in ranks],
            )
        return self.split_cache[key]

    def set_attr(self, key, value) -> None:
        self.attrs[key] = value

    def get_attr(self, key, default=None):
        return self.attrs.get(key, default)


class SerialBackend(Backend):
    """Deterministic debugging backend (one rank runs at a time)."""

    name = "serial"

    def run(self, nprocs, fn, args, timeout, stats) -> list:
        from repro.mpi.comm import Comm, SpmdError

        import time

        sched = _Scheduler(nprocs)
        world = SerialWorld(nprocs, stats, timeout, sched, range(nprocs))
        results: list = [None] * nprocs
        errors: list = [None] * nprocs

        def runner(r: int) -> None:
            try:
                sched.wait_initial(r)
                results[r] = fn(Comm(world, r), *args)
            except _Aborted:
                errors[r] = _Aborted()
            except DeadlockError as exc:
                errors[r] = exc
                sched.fail(str(exc))
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors[r] = exc
                sched.fail(f"rank {r} failed: {exc!r}")
            finally:
                try:
                    sched.finish(r)
                except DeadlockError as exc:
                    # This rank finished but its peers can never proceed.
                    if errors[r] is None:
                        errors[r] = exc
                except _Aborted:
                    pass

        threads = [
            threading.Thread(target=runner, args=(r,), daemon=True)
            for r in range(nprocs)
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + timeout
        while any(t.is_alive() for t in threads):
            if time.monotonic() > deadline:
                with sched.cv:
                    states = [
                        f"  rank {r}: "
                        + (
                            "finished"
                            if sched.finished[r]
                            else sched.blocked[r] or "running/polling"
                        )
                        for r in range(nprocs)
                    ]
                sched.fail("wall timeout")
                raise SpmdError(
                    f"SPMD run timed out after {timeout}s (deadlock?)\n"
                    + "\n".join(states)
                )
            for t in threads:
                t.join(0.05)
        # Report the root cause: a real error beats a deadlock report beats
        # the _Aborted unwinds it caused in the other ranks.
        for r, exc in enumerate(errors):
            if exc is not None and not isinstance(exc, (_Aborted, DeadlockError)):
                raise SpmdError(f"rank {r} failed: {exc!r}") from exc
        for r, exc in enumerate(errors):
            if isinstance(exc, DeadlockError):
                raise SpmdError(str(exc)) from exc
        if sched.abort is not None:
            raise SpmdError(sched.abort)
        return results
