"""Block-sparse matrix storage (PETSc MATMPIBAIJ substitute).

The paper stores multi-DOF systems in block format — "much more efficient
than the non-block version ... for the multi-dof system" — with the block
size equal to the number of DOFs per node.  This module provides a builder
with MPI-style INSERT/ADD value semantics and a frozen BSR product form, plus
the VU-solve trick of assembling once and reusing across directions (no
repeated Mat_Assembly_Begin/End; see the paper's remark in Sec. II-A).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

INSERT_VALUES = "insert"
ADD_VALUES = "add"


class BlockMatrixBuilder:
    """Accumulates dense node-blocks, then freezes to scipy BSR."""

    def __init__(self, n_block_rows: int, ndof: int):
        self.nb = n_block_rows
        self.ndof = ndof
        self._blocks: dict[tuple[int, int], np.ndarray] = {}
        self._frozen: sp.bsr_matrix | None = None

    def set_block(self, i: int, j: int, block: np.ndarray, mode: str = ADD_VALUES):
        if self._frozen is not None:
            raise RuntimeError("matrix already assembled; create a new builder")
        block = np.asarray(block, dtype=np.float64)
        if block.shape != (self.ndof, self.ndof):
            raise ValueError("block shape mismatch")
        key = (int(i), int(j))
        if mode == ADD_VALUES and key in self._blocks:
            self._blocks[key] = self._blocks[key] + block
        else:  # INSERT overwrites; concurrent inserts of equal values are
            # harmless, which is what the erosion/dilation remark relies on.
            self._blocks[key] = block.copy()

    def set_blocks(self, ii, jj, blocks, mode: str = ADD_VALUES):
        for i, j, b in zip(np.asarray(ii).ravel(), np.asarray(jj).ravel(), blocks):
            self.set_block(i, j, b, mode)

    def assemble(self) -> sp.bsr_matrix:
        """Freeze (Mat_Assembly_Begin/End).  Subsequent solves reuse the
        product form without re-assembly."""
        if self._frozen is None:
            if self._blocks:
                keys = np.array(sorted(self._blocks))
                data = np.stack([self._blocks[tuple(k)] for k in keys])
                coo_like = sp.coo_matrix(
                    (np.ones(len(keys)), (keys[:, 0], keys[:, 1])),
                    shape=(self.nb, self.nb),
                ).tocsr()
                order = np.lexsort((keys[:, 1], keys[:, 0]))
                self._frozen = sp.bsr_matrix(
                    (data[order], coo_like.indices, coo_like.indptr),
                    shape=(self.nb * self.ndof, self.nb * self.ndof),
                    blocksize=(self.ndof, self.ndof),
                )
            else:
                self._frozen = sp.bsr_matrix(
                    (self.nb * self.ndof, self.nb * self.ndof),
                    blocksize=(self.ndof, self.ndof),
                )
        return self._frozen


def interleave_fields(fields: list[np.ndarray]) -> np.ndarray:
    """Stack per-field DOF vectors into the interleaved (BAIJ) layout."""
    return np.stack(fields, axis=1).ravel()


def deinterleave_fields(x: np.ndarray, ndof: int) -> list[np.ndarray]:
    """Inverse of :func:`interleave_fields`."""
    xr = x.reshape(-1, ndof)
    return [np.ascontiguousarray(xr[:, d]) for d in range(ndof)]
