"""Linear algebra substrate (PETSc KSP/SNES/BAIJ substitute)."""

from .bsr import ADD_VALUES, INSERT_VALUES, BlockMatrixBuilder  # noqa: F401
from .gmg import GeometricMultigrid, prolongation  # noqa: F401
from .krylov import SolveResult, bicgstab, cg, gmres  # noqa: F401
from .newton import NewtonResult, newton_solve  # noqa: F401
from .precond import (  # noqa: F401
    BlockJacobiPreconditioner,
    JacobiPreconditioner,
    PCDPreconditioner,
    SSORPreconditioner,
    make_preconditioner,
)
