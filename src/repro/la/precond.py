"""Preconditioners for the Krylov solvers."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


class JacobiPreconditioner:
    """Diagonal scaling.  Accepts a CSR matrix, a diagonal vector, or any
    operator exposing ``diagonal()`` (e.g. the matrix-free elemental
    operator)."""

    def __init__(self, A):
        if sp.issparse(A):
            d = A.diagonal()
        elif isinstance(A, np.ndarray) and A.ndim == 1:
            d = A
        elif hasattr(A, "diagonal"):
            d = np.asarray(A.diagonal())
        else:
            raise TypeError("cannot extract a diagonal")
        d = np.where(np.abs(d) > 1e-300, d, 1.0)
        self.inv_diag = 1.0 / d

    def matvec(self, r: np.ndarray) -> np.ndarray:
        return self.inv_diag * r

    __call__ = matvec


class BlockJacobiPreconditioner:
    """Point-block Jacobi for interleaved multi-DOF systems (BAIJ layout):
    inverts the ``ndof x ndof`` diagonal block of every node."""

    def __init__(self, A: sp.spmatrix, ndof: int):
        A = A.tocsr()
        n = A.shape[0]
        if n % ndof:
            raise ValueError("matrix size not a multiple of the block size")
        nb = n // ndof
        blocks = np.zeros((nb, ndof, ndof))
        for i in range(ndof):
            for j in range(ndof):
                idx = np.arange(nb) * ndof
                blocks[:, i, j] = np.asarray(
                    A[idx + i, idx + j]
                ).ravel()
        # Regularize empty blocks.
        sing = np.abs(np.linalg.det(blocks)) < 1e-300
        blocks[sing] += np.eye(ndof)
        self.inv_blocks = np.linalg.inv(blocks)
        self.ndof = ndof

    def matvec(self, r: np.ndarray) -> np.ndarray:
        nb = len(self.inv_blocks)
        rb = r.reshape(nb, self.ndof)
        return np.einsum("bij,bj->bi", self.inv_blocks, rb).ravel()

    __call__ = matvec


class SSORPreconditioner:
    """Symmetric SOR sweep (assembled CSR only)."""

    def __init__(self, A: sp.csr_matrix, omega: float = 1.0):
        A = A.tocsr()
        self.omega = omega
        self.L = sp.tril(A, k=-1).tocsr()
        self.U = sp.triu(A, k=1).tocsr()
        d = A.diagonal()
        self.D = np.where(np.abs(d) > 1e-300, d, 1.0)

    def matvec(self, r: np.ndarray) -> np.ndarray:
        from scipy.sparse.linalg import spsolve_triangular

        w = self.omega
        # (D/w + L) y = r ; then (D/w + U) z = D y / w
        M1 = (sp.diags(self.D / w) + self.L).tocsr()
        y = spsolve_triangular(M1, r, lower=True)
        M2 = (sp.diags(self.D / w) + self.U).tocsr()
        return spsolve_triangular(M2, (self.D / w) * y, lower=False)

    __call__ = matvec
