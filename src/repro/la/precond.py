"""Preconditioners for the Krylov solvers.

Besides the algebraic smoothers (Jacobi/point-block Jacobi/SSOR) this
module carries :class:`PCDPreconditioner`, the physics-based
pressure-convection-diffusion block preconditioner the paper's future-work
section points at: one geometric-multigrid V-cycle on the *elliptic part*
of the operator.  For the pressure-Poisson solve the elliptic part IS the
operator (``K_{1/rho}`` is the exact pressure Schur complement of the
projection step), so PCD there is pure GMG with nullspace handling; for the
momentum predictor the convection block is dropped under the usual PCD
commutator argument and the V-cycle runs on ``M_rho/dt + K_eta/(2 Re)``.

:func:`make_preconditioner` resolves the ``precond=`` config knob
(scenario schema / solver signatures) to a concrete instance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp


class JacobiPreconditioner:
    """Diagonal scaling.  Accepts a CSR matrix, a diagonal vector, or any
    operator exposing ``diagonal()`` (e.g. the matrix-free elemental
    operator)."""

    def __init__(self, A):
        if sp.issparse(A):
            d = A.diagonal()
        elif isinstance(A, np.ndarray) and A.ndim == 1:
            d = A
        elif hasattr(A, "diagonal"):
            d = np.asarray(A.diagonal())
        else:
            raise TypeError("cannot extract a diagonal")
        d = np.where(np.abs(d) > 1e-300, d, 1.0)
        self.inv_diag = 1.0 / d

    def matvec(self, r: np.ndarray) -> np.ndarray:
        return self.inv_diag * r

    __call__ = matvec


class BlockJacobiPreconditioner:
    """Point-block Jacobi for interleaved multi-DOF systems (BAIJ layout):
    inverts the ``ndof x ndof`` diagonal block of every node."""

    def __init__(self, A: sp.spmatrix, ndof: int):
        A = A.tocsr()
        n = A.shape[0]
        if n % ndof:
            raise ValueError("matrix size not a multiple of the block size")
        nb = n // ndof
        blocks = np.zeros((nb, ndof, ndof))
        for i in range(ndof):
            for j in range(ndof):
                idx = np.arange(nb) * ndof
                blocks[:, i, j] = np.asarray(
                    A[idx + i, idx + j]
                ).ravel()
        # Regularize empty blocks.
        sing = np.abs(np.linalg.det(blocks)) < 1e-300
        blocks[sing] += np.eye(ndof)
        self.inv_blocks = np.linalg.inv(blocks)
        self.ndof = ndof

    def matvec(self, r: np.ndarray) -> np.ndarray:
        nb = len(self.inv_blocks)
        rb = r.reshape(nb, self.ndof)
        return np.einsum("bij,bj->bi", self.inv_blocks, rb).ravel()

    __call__ = matvec


class SSORPreconditioner:
    """Symmetric SOR sweep (assembled CSR only)."""

    def __init__(self, A: sp.csr_matrix, omega: float = 1.0):
        A = A.tocsr()
        self.omega = omega
        self.L = sp.tril(A, k=-1).tocsr()
        self.U = sp.triu(A, k=1).tocsr()
        d = A.diagonal()
        self.D = np.where(np.abs(d) > 1e-300, d, 1.0)

    def matvec(self, r: np.ndarray) -> np.ndarray:
        from scipy.sparse.linalg import spsolve_triangular

        w = self.omega
        # (D/w + L) y = r ; then (D/w + U) z = D y / w
        M1 = (sp.diags(self.D / w) + self.L).tocsr()
        y = spsolve_triangular(M1, r, lower=True)
        M2 = (sp.diags(self.D / w) + self.U).tocsr()
        return spsolve_triangular(M2, (self.D / w) * y, lower=False)

    __call__ = matvec


class PCDPreconditioner:
    """Pressure-convection-diffusion block preconditioner.

    Applies one geometric-multigrid V-cycle on the elliptic (symmetric,
    convection-free) part of the operator.  The commutator argument behind
    PCD says the Schur complement of the momentum block is well approximated
    by its diffusive/reactive part, so a single V-cycle on that part is a
    spectrally-equivalent application of its inverse — the convection block
    only perturbs it at O(dt).

    ``remove_mean`` handles the pure-Neumann pressure-Poisson nullspace:
    both the residual handed to the cycle and the returned correction are
    projected onto the mean-zero subspace, keeping the Krylov iteration in
    the range of the singular operator.

    The coarse-mesh hierarchy is cached per ``Mesh.generation`` inside
    :mod:`repro.la.gmg`, so per-timestep rebuilds (the density coefficient
    moves every step) pay only the Galerkin triple products.
    """

    def __init__(
        self,
        mesh,
        A_elliptic: sp.spmatrix,
        *,
        remove_mean: bool = False,
        coarsest_level: int = 2,
    ):
        from .gmg import GeometricMultigrid

        finest = int(mesh.tree.levels.max())
        coarsest_level = min(int(coarsest_level), finest - 1)
        self._gmg = GeometricMultigrid(
            mesh, A_elliptic.tocsr(), coarsest_level=coarsest_level
        )
        self.remove_mean = remove_mean

    def matvec(self, r: np.ndarray) -> np.ndarray:
        if self.remove_mean:
            r = r - r.mean()
        z = self._gmg.v_cycle(r)
        if self.remove_mean:
            z = z - z.mean()
        return z

    __call__ = matvec


def make_preconditioner(
    name: Optional[str],
    A: sp.spmatrix,
    *,
    mesh=None,
    elliptic: Optional[sp.spmatrix] = None,
    block_size: int = 1,
    remove_mean: bool = False,
):
    """Resolve a ``precond=`` knob to a preconditioner instance (or None).

    ``name``: ``"jacobi"`` | ``"block_jacobi"`` | ``"ssor"`` | ``"pcd"`` |
    ``"none"``/None.  PCD additionally needs ``mesh`` and, when the operator
    itself is not elliptic (the momentum predictor), its elliptic part via
    ``elliptic=``.
    """
    if name is None or name == "none":
        return None
    if name == "jacobi":
        return JacobiPreconditioner(A)
    if name == "block_jacobi":
        return BlockJacobiPreconditioner(A, block_size)
    if name == "ssor":
        return SSORPreconditioner(A)
    if name == "pcd":
        if mesh is None:
            raise ValueError("precond='pcd' needs the mesh for the GMG hierarchy")
        return PCDPreconditioner(
            mesh,
            elliptic if elliptic is not None else A,
            remove_mean=remove_mean,
        )
    raise ValueError(f"unknown preconditioner {name!r}")
