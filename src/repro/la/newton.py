"""Newton-Krylov nonlinear solver (PETSc SNES substitute).

Used by the fully-implicit Cahn-Hilliard block solve (paper Sec. II-A,
step 1).  The residual/Jacobian callbacks assemble sparse operators; inner
linear solves use our Krylov module.

:class:`IterateCache` is the per-iterate operator cache the CH block plugs
its callbacks into: Newton evaluates ``residual`` and ``jacobian`` at the
same iterate back to back, and both need the same expensive mesh-wide
products (quad-point field values, the mobility stiffness).  Keying a small
cache on the iterate vector lets the two callbacks share one evaluation
instead of assembling everything twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from .. import obs
from .krylov import bicgstab, gmres
from .precond import JacobiPreconditioner


class IterateCache:
    """Share expensive products between callbacks evaluated at one iterate.

    ``get(x, key, build)`` returns the cached value of ``key`` if ``x``
    matches the iterate the cache currently holds (exact array equality —
    line-search trial points at new iterates invalidate automatically), and
    calls ``build()`` otherwise.  Only the latest iterate is retained: the
    Newton loop never revisits older ones.
    """

    def __init__(self):
        self._x: Optional[np.ndarray] = None
        self._vals: dict = {}

    def at(self, x: np.ndarray) -> dict:
        """The value dict for iterate ``x``, cleared if ``x`` is new."""
        if (
            self._x is None
            or self._x.shape != x.shape
            or not np.array_equal(self._x, x)
        ):
            self._x = x.copy()
            self._vals = {}
        return self._vals

    def get(self, x: np.ndarray, key, build: Callable[[], object]):
        vals = self.at(x)
        if key not in vals:
            vals[key] = build()
        return vals[key]

    def clear(self) -> None:
        self._x = None
        self._vals = {}


@dataclass
class NewtonResult:
    x: np.ndarray
    iterations: int
    residual: float
    converged: bool


def newton_solve(
    residual: Callable[[np.ndarray], np.ndarray],
    jacobian: Callable[[np.ndarray], sp.spmatrix],
    x0: np.ndarray,
    *,
    tol: float = 1e-9,
    rtol: float = 1e-8,
    maxiter: int = 25,
    linear_tol: float = 1e-8,
    damping: float = 1.0,
    solver: str = "bicgstab",
) -> NewtonResult:
    """Damped Newton with Jacobi-preconditioned Krylov inner solves.

    Converges when ``||F(x)|| < tol`` or drops by ``rtol`` relative to the
    initial residual.  If the Krylov inner solve stagnates twice, the
    remaining iterations reuse the sparse-LU path directly instead of paying
    a doomed 4000-iteration Krylov attempt plus a factorization each time.
    """
    with obs.span("newton"):
        return _newton_body(
            residual, jacobian, x0, tol, rtol, maxiter, linear_tol,
            damping, solver,
        )


def _newton_body(
    residual, jacobian, x0, tol, rtol, maxiter, linear_tol, damping, solver
) -> NewtonResult:
    x = x0.copy()
    with obs.span("newton.residual"):
        F = residual(x)
    norm_F = float(np.linalg.norm(F))
    norm0 = norm_F
    if norm0 < tol:
        return NewtonResult(x, 0, norm0, True)
    lin = bicgstab if solver == "bicgstab" else gmres
    lu_fallbacks = 0
    for it in range(1, maxiter + 1):
        obs.incr("newton.iterations")
        with obs.span("newton.jacobian"):
            J = jacobian(x).tocsr()
        with obs.span("newton.linear"):
            if solver == "lu" or lu_fallbacks >= 2:
                obs.incr("newton.lu_solves")
                dx = sp.linalg.splu(J.tocsc()).solve(-F)
            else:
                M = JacobiPreconditioner(J)
                res = lin(J, -F, M=M, tol=linear_tol, maxiter=4000)
                dx = res.x
                if not res.converged or not np.all(np.isfinite(dx)):
                    # Krylov stagnated on a badly scaled Jacobian (the mixed
                    # phi/mu block is saddle-like): sparse-LU fallback.
                    obs.incr("newton.lu_fallbacks")
                    dx = sp.linalg.splu(J.tocsc()).solve(-F)
                    lu_fallbacks += 1
        # Backtracking line search on the residual norm (computed once per
        # trial; the reference norm is hoisted out of the loop).
        step = damping
        for _ in range(8):
            obs.incr("newton.line_search_trials")
            x_new = x + step * dx
            with obs.span("newton.residual"):
                F_new = residual(x_new)
            norm_new = float(np.linalg.norm(F_new))
            if norm_new < (1.0 - 0.1 * step) * norm_F or step < 1e-3:
                break
            step *= 0.5
        x, F, norm_F = x_new, F_new, norm_new
        if norm_F < tol or norm_F < rtol * norm0:
            return NewtonResult(x, it, norm_F, True)
    return NewtonResult(x, maxiter, norm_F, False)
