"""Newton-Krylov nonlinear solver (PETSc SNES substitute).

Used by the fully-implicit Cahn-Hilliard block solve (paper Sec. II-A,
step 1).  The residual/Jacobian callbacks assemble sparse operators; inner
linear solves use our Krylov module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from .krylov import bicgstab, gmres
from .precond import JacobiPreconditioner


@dataclass
class NewtonResult:
    x: np.ndarray
    iterations: int
    residual: float
    converged: bool


def newton_solve(
    residual: Callable[[np.ndarray], np.ndarray],
    jacobian: Callable[[np.ndarray], sp.spmatrix],
    x0: np.ndarray,
    *,
    tol: float = 1e-9,
    rtol: float = 1e-8,
    maxiter: int = 25,
    linear_tol: float = 1e-8,
    damping: float = 1.0,
    solver: str = "bicgstab",
) -> NewtonResult:
    """Damped Newton with Jacobi-preconditioned Krylov inner solves.

    Converges when ``||F(x)|| < tol`` or drops by ``rtol`` relative to the
    initial residual.
    """
    x = x0.copy()
    F = residual(x)
    norm0 = float(np.linalg.norm(F))
    if norm0 < tol:
        return NewtonResult(x, 0, norm0, True)
    lin = bicgstab if solver == "bicgstab" else gmres
    for it in range(1, maxiter + 1):
        J = jacobian(x).tocsr()
        if solver == "lu":
            dx = sp.linalg.splu(J.tocsc()).solve(-F)
        else:
            M = JacobiPreconditioner(J)
            res = lin(J, -F, M=M, tol=linear_tol, maxiter=4000)
            dx = res.x
            if not res.converged or not np.all(np.isfinite(dx)):
                # Krylov stagnated on a badly scaled Jacobian (the mixed
                # phi/mu block is saddle-like): sparse-LU fallback.
                dx = sp.linalg.splu(J.tocsc()).solve(-F)
        # Backtracking line search on the residual norm.
        step = damping
        for _ in range(8):
            x_new = x + step * dx
            F_new = residual(x_new)
            if float(np.linalg.norm(F_new)) < (1.0 - 0.1 * step) * float(
                np.linalg.norm(F)
            ) or step < 1e-3:
                break
            step *= 0.5
        x, F = x_new, F_new
        norm = float(np.linalg.norm(F))
        if norm < tol or norm < rtol * norm0:
            return NewtonResult(x, it, norm, True)
    return NewtonResult(x, maxiter, float(np.linalg.norm(F)), False)
