"""Krylov solvers (PETSc KSP substitute).

Implemented from scratch on top of a minimal operator protocol: anything
with ``matvec(x) -> y`` (or a bare callable / scipy sparse matrix) works,
so matrix-free elemental operators and assembled CSR matrices share solvers.
The paper uses PETSc's iterative solvers (it found AMG setup too costly at
scale, Sec. III footnote 5); we provide CG, BiCGStab and restarted GMRES
with Jacobi/block-Jacobi preconditioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from .. import obs


def _as_matvec(A) -> Callable[[np.ndarray], np.ndarray]:
    if sp.issparse(A):
        return lambda x: A @ x
    if hasattr(A, "matvec"):
        return A.matvec
    if callable(A):
        return A
    raise TypeError(f"cannot interpret {type(A)} as an operator")


@dataclass
class SolveResult:
    x: np.ndarray
    iterations: int
    residual: float
    converged: bool

    def __iter__(self):  # allow x, info = solve(...)
        yield self.x
        yield self


def cg(
    A,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    M=None,
    tol: float = 1e-10,
    maxiter: int = 1000,
) -> SolveResult:
    """Preconditioned conjugate gradients (SPD systems)."""
    with obs.span("krylov.cg"):
        res = _cg_body(A, b, x0, M, tol, maxiter)
    obs.incr("krylov.solves")
    obs.incr("krylov.iterations", res.iterations)
    return res


def _cg_body(A, b, x0, M, tol, maxiter) -> SolveResult:
    mv = _as_matvec(A)
    pc = _as_matvec(M) if M is not None else (lambda r: r)
    x = np.zeros_like(b) if x0 is None else x0.copy()
    r = b - mv(x)
    z = pc(r)
    p = z.copy()
    rz = float(r @ z)
    bnorm = float(np.linalg.norm(b)) or 1.0
    if float(np.linalg.norm(r)) / bnorm < tol:
        return SolveResult(x, 0, float(np.linalg.norm(r)) / bnorm, True)
    for it in range(1, maxiter + 1):
        Ap = mv(p)
        pAp = float(p @ Ap)
        if pAp <= 0:
            # Not SPD (or breakdown); bail out with current iterate.
            return SolveResult(x, it, float(np.linalg.norm(r)) / bnorm, False)
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        res = float(np.linalg.norm(r)) / bnorm
        if res < tol:
            return SolveResult(x, it, res, True)
        z = pc(r)
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return SolveResult(x, maxiter, float(np.linalg.norm(b - mv(x))) / bnorm, False)


def bicgstab(
    A,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    M=None,
    tol: float = 1e-10,
    maxiter: int = 2000,
) -> SolveResult:
    """BiCGStab for nonsymmetric systems (momentum / convection blocks)."""
    mv = _as_matvec(A)
    pc = _as_matvec(M) if M is not None else (lambda r: r)
    x = np.zeros_like(b) if x0 is None else x0.copy()
    r = b - mv(x)
    r0 = r.copy()
    # Divergence on ill-conditioned systems shows up as overflow before the
    # breakdown checks trip; the caller (e.g. Newton's LU fallback) handles
    # the non-converged result, so the intermediate warnings are noise.
    _old_err = np.seterr(over="ignore", invalid="ignore")
    try:
        with obs.span("krylov.bicgstab"):
            res = _bicgstab_body(mv, pc, x, r, r0, bnorm_of(b), tol, maxiter, b)
    finally:
        np.seterr(**_old_err)
    obs.incr("krylov.solves")
    obs.incr("krylov.iterations", res.iterations)
    return res


def bnorm_of(b: np.ndarray) -> float:
    return float(np.linalg.norm(b)) or 1.0


def _bicgstab_body(mv, pc, x, r, r0, bnorm, tol, maxiter, b):
    rho = alpha = omega = 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    for it in range(1, maxiter + 1):
        rho_new = float(r0 @ r)
        if rho_new == 0.0:
            break
        beta = (rho_new / rho) * (alpha / omega) if it > 1 else 0.0
        p = r + beta * (p - omega * v) if it > 1 else r.copy()
        ph = pc(p)
        v = mv(ph)
        denom = float(r0 @ v)
        if denom == 0.0:
            break
        alpha = rho_new / denom
        s = r - alpha * v
        if float(np.linalg.norm(s)) / bnorm < tol:
            x += alpha * ph
            return SolveResult(x, it, float(np.linalg.norm(s)) / bnorm, True)
        sh = pc(s)
        t = mv(sh)
        tt = float(t @ t)
        omega = float(t @ s) / tt if tt > 0 else 0.0
        x += alpha * ph + omega * sh
        r = s - omega * t
        res = float(np.linalg.norm(r)) / bnorm
        if res < tol:
            return SolveResult(x, it, res, True)
        if omega == 0.0:
            break
        rho = rho_new
        if not np.all(np.isfinite(x)):
            break  # diverged; report non-convergence
    res = float(np.linalg.norm(b - mv(x))) / bnorm
    if not np.isfinite(res):
        res = np.inf
    return SolveResult(x, maxiter, res, False)


def gmres(
    A,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    M=None,
    tol: float = 1e-10,
    restart: int = 50,
    maxiter: int = 2000,
) -> SolveResult:
    """Restarted GMRES with left preconditioning."""
    with obs.span("krylov.gmres"):
        res = _gmres_body(A, b, x0, M, tol, restart, maxiter)
    obs.incr("krylov.solves")
    obs.incr("krylov.iterations", res.iterations)
    return res


def _gmres_body(A, b, x0, M, tol, restart, maxiter) -> SolveResult:
    mv = _as_matvec(A)
    pc = _as_matvec(M) if M is not None else (lambda r: r)
    x = np.zeros_like(b) if x0 is None else x0.copy()
    bnorm = float(np.linalg.norm(pc(b))) or 1.0
    total_it = 0
    while total_it < maxiter:
        r = pc(b - mv(x))
        beta = float(np.linalg.norm(r))
        if beta / bnorm < tol:
            return SolveResult(x, total_it, beta / bnorm, True)
        m = min(restart, maxiter - total_it)
        Q = np.zeros((len(b), m + 1))
        H = np.zeros((m + 1, m))
        Q[:, 0] = r / beta
        g = np.zeros(m + 1)
        g[0] = beta
        cs = np.zeros(m)
        sn = np.zeros(m)
        k_used = 0
        for k in range(m):
            total_it += 1
            wv = pc(mv(Q[:, k]))
            for j in range(k + 1):
                H[j, k] = float(Q[:, j] @ wv)
                wv -= H[j, k] * Q[:, j]
            H[k + 1, k] = float(np.linalg.norm(wv))
            if H[k + 1, k] > 1e-14:
                Q[:, k + 1] = wv / H[k + 1, k]
            # Givens rotations to maintain the least-squares triangle.
            for j in range(k):
                t = cs[j] * H[j, k] + sn[j] * H[j + 1, k]
                H[j + 1, k] = -sn[j] * H[j, k] + cs[j] * H[j + 1, k]
                H[j, k] = t
            denom = np.hypot(H[k, k], H[k + 1, k])
            cs[k] = H[k, k] / denom if denom else 1.0
            sn[k] = H[k + 1, k] / denom if denom else 0.0
            H[k, k] = denom
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            k_used = k + 1
            if abs(g[k + 1]) / bnorm < tol:
                break
        # lstsq tolerates the (rank-deficient) breakdown case — e.g. a zero
        # or singular operator — where solve() would raise.
        y = np.linalg.lstsq(H[:k_used, :k_used], g[:k_used], rcond=None)[0]
        x = x + Q[:, :k_used] @ y
        if abs(g[k_used]) / bnorm < tol:
            # Verify with the true residual: the least-squares estimate can
            # report a false zero on breakdown (e.g. a singular operator).
            res = float(np.linalg.norm(b - mv(x))) / (float(np.linalg.norm(b)) or 1.0)
            return SolveResult(x, total_it, res, res < 10 * tol)
    res = float(np.linalg.norm(b - mv(x))) / (float(np.linalg.norm(b)) or 1.0)
    return SolveResult(x, total_it, res, res < tol)
