"""Geometric multigrid for the variable-coefficient pressure Poisson solve.

The paper's future work: "scalable solvers, like Geometric multigrid (GMG),
promise to yield a better solve time" for the variable-density PP-solve —
it used plain iterative solvers after finding AMG setup too costly at scale.
This module implements the missing piece at laptop scale: a V-cycle on a
hierarchy of uniform meshes with FE interpolation for prolongation, Galerkin
coarse operators (``A_c = P^T A_f P``), damped-Jacobi smoothing and a direct
coarsest solve.  It is exposed both as a standalone solver and as a
preconditioner for our CG — the ablation benchmark quantifies the iteration
savings the paper anticipated.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..mesh.mesh import Mesh
from ..octree.build import uniform_tree


def prolongation(coarse: Mesh, fine: Mesh) -> sp.csr_matrix:
    """FE interpolation matrix from coarse DOFs to fine DOFs.

    Each fine node evaluates the coarse multilinear field at its location —
    the same operation as the inter-grid transfer, materialized as a sparse
    operator so it can participate in Galerkin products.
    """
    pts = fine.nodes.coords[fine.nodes.node_of_dof]
    grid = np.clip(pts, 0, (1 << 19) - 1)
    elems = coarse.tree.locate_points(grid)
    a = coarse.tree.anchors[elems]
    s = coarse.tree.sizes()[elems].astype(np.float64)
    xi = np.clip((pts - a) / s[:, None], 0.0, 1.0)
    nc = 1 << coarse.dim
    rows, cols, vals = [], [], []
    corner_dofs = coarse.nodes.elem_nodes[elems]  # uniform: nodes == dofs
    for c in range(nc):
        w = np.ones(len(pts))
        for axis in range(coarse.dim):
            bit = (c >> axis) & 1
            w *= xi[:, axis] if bit else (1.0 - xi[:, axis])
        keep = w > 1e-12
        rows.append(np.nonzero(keep)[0])
        cols.append(corner_dofs[keep, c])
        vals.append(w[keep])
    P = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(fine.n_dofs, coarse.n_dofs),
    )
    P.sum_duplicates()
    return P


@dataclass
class _Level:
    A: sp.csr_matrix
    P: Optional[sp.csr_matrix]  # to the next finer level (None on finest)
    inv_diag: np.ndarray


#: Per-mesh-generation hierarchy cache: the coarse uniform meshes and the
#: prolongation chain depend only on the fine mesh topology, not on the
#: operator, so per-timestep preconditioner rebuilds (the density field
#: moves every step) pay only for the Galerkin products.
_HIER_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_HIER_CACHE_MAX = 4


def hierarchy_for(fine_mesh: Mesh, coarsest_level: int):
    """``(meshes, prolongations)`` below ``fine_mesh``: uniform meshes at
    every tree level from one below the finest down to ``coarsest_level``,
    plus the FE interpolation chain between consecutive pairs.  Cached per
    ``Mesh.generation`` (AMR remeshes invalidate by building a new Mesh)."""
    key = (fine_mesh.generation, int(coarsest_level))
    hit = _HIER_CACHE.get(key)
    if hit is not None:
        _HIER_CACHE.move_to_end(key)
        return hit
    finest = int(fine_mesh.tree.levels.max())
    if coarsest_level >= finest:
        raise ValueError("coarsest_level must be below the fine level")
    meshes = [fine_mesh]
    for lev in range(finest - 1, coarsest_level - 1, -1):
        meshes.append(Mesh.from_tree(uniform_tree(fine_mesh.dim, lev)))
    Ps = [prolongation(meshes[i + 1], meshes[i]) for i in range(len(meshes) - 1)]
    _HIER_CACHE[key] = (meshes, Ps)
    while len(_HIER_CACHE) > _HIER_CACHE_MAX:
        _HIER_CACHE.popitem(last=False)
    return meshes, Ps


def clear_hierarchy_cache() -> None:
    _HIER_CACHE.clear()


class GeometricMultigrid:
    """V-cycle hierarchy over uniform refinement levels.

    ``assemble``: callback building the fine operator on a given Mesh; coarse
    operators are Galerkin products, so variable coefficients are inherited
    exactly.  Usable directly (``solve``) or as a preconditioner (callable).

    The fine mesh may be adaptive: the hierarchy below it is built from
    *uniform* meshes starting one level below the finest octant, and the
    geometric FE interpolation of :func:`prolongation` handles the
    nonconforming transfer (every fine DOF evaluates the coarse multilinear
    field at its location, wherever it sits).
    """

    def __init__(
        self,
        fine_mesh: Mesh,
        A_fine: sp.csr_matrix,
        *,
        coarsest_level: int = 2,
        omega: float = 2.0 / 3.0,
        pre_smooth: int = 2,
        post_smooth: int = 2,
    ):
        self.omega = omega
        self.pre = pre_smooth
        self.post = post_smooth

        meshes, Ps = hierarchy_for(fine_mesh, coarsest_level)
        self.levels: list[_Level] = []
        A = A_fine.tocsr()
        for i in range(len(meshes)):
            P = Ps[i] if i < len(Ps) else None
            d = A.diagonal()
            d = np.where(np.abs(d) > 1e-300, d, 1.0)
            self.levels.append(_Level(A=A, P=P, inv_diag=1.0 / d))
            if P is not None:
                A = (P.T @ A @ P).tocsr()
        self._coarse_lu = spla.splu(self.levels[-1].A.tocsc() + 1e-12 * sp.eye(
            self.levels[-1].A.shape[0], format="csc"
        ))

    def _smooth(self, lvl: _Level, x: np.ndarray, b: np.ndarray, n: int):
        for _ in range(n):
            x = x + self.omega * lvl.inv_diag * (b - lvl.A @ x)
        return x

    def v_cycle(self, b: np.ndarray, level: int = 0) -> np.ndarray:
        lvl = self.levels[level]
        if level == len(self.levels) - 1:
            return self._coarse_lu.solve(b)
        x = self._smooth(lvl, np.zeros_like(b), b, self.pre)
        r = b - lvl.A @ x
        rc = lvl.P.T @ r
        ec = self.v_cycle(rc, level + 1)
        x = x + lvl.P @ ec
        return self._smooth(lvl, x, b, self.post)

    # Preconditioner protocol.
    def matvec(self, r: np.ndarray) -> np.ndarray:
        return self.v_cycle(r)

    __call__ = matvec

    def solve(
        self, b: np.ndarray, *, tol: float = 1e-10, maxiter: int = 50
    ):
        """Stationary V-cycle iteration (no Krylov wrapper)."""
        x = np.zeros_like(b)
        bnorm = float(np.linalg.norm(b)) or 1.0
        for it in range(1, maxiter + 1):
            r = b - self.levels[0].A @ x
            res = float(np.linalg.norm(r)) / bnorm
            if res < tol:
                return x, it - 1, res
            x = x + self.v_cycle(r)
        r = b - self.levels[0].A @ x
        return x, maxiter, float(np.linalg.norm(r)) / bnorm
