"""Performance models reproducing the paper's scaling figures."""

from .machine import MachineModel, parallel_efficiency, weak_efficiency  # noqa: F401
from .model import ApplicationModel, SolverCosts, paper_fig5_solvers  # noqa: F401
