"""Calibration utilities and the full-application scaling model (Fig. 5).

``fit_ghost_coeff``/``fit_t_elem`` turn simulator measurements into model
constants.  ``ApplicationModel`` composes per-solver models out of measured
iteration counts and the machine model; it produces the NS/PP/VU/CH and
remeshing curves of the paper's application-scaling study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .machine import MachineModel


def fit_ghost_coeff(
    grains: np.ndarray, ghost_bytes: np.ndarray, dim: int, bytes_per_dof: float = 8.0
) -> float:
    """Least-squares fit of ``bytes = c * grain^((d-1)/d)`` from simulator
    ghost-exchange measurements (per rank)."""
    grains = np.asarray(grains, dtype=np.float64)
    ghost = np.asarray(ghost_bytes, dtype=np.float64) / bytes_per_dof
    x = grains ** ((dim - 1) / dim)
    return float((x @ ghost) / (x @ x))


def fit_t_elem(n_elems: float, p: int, measured_time: float) -> float:
    """Per-element compute constant from one anchor measurement (the
    communication share at the anchor is folded in conservatively)."""
    return measured_time * p / n_elems


def phase_profile(report, blocks=("ch", "ns", "pp", "vu", "remesh")) -> dict:
    """Per-step mean seconds of each CHNS solver block, read off an
    ``repro.obs`` :class:`~repro.obs.report.WorldReport` of a traced run.

    The timestepper nests one span per block under ``chns.step`` and counts
    steps in the ``chns.steps`` counter, so each block's mean inclusive time
    divided by steps-per-rank is its per-step cost.  Blocks the run never
    entered report 0.0.
    """
    steps = report.counter_total("chns.steps") / max(report.n_ranks, 1)
    div = max(steps, 1.0)
    return {
        b: report.phase_seconds(f"chns.step/chns.{b}") / div for b in blocks
    }


def iter_profile_from_obs(report) -> dict:
    """Measured iteration counts for :func:`paper_fig5_solvers` from obs
    counters of a traced CHNS run: mean Krylov iterations per solve for the
    linear blocks, and Newton (outer) iterations per step for CH — the
    quantity its :class:`SolverCosts` profile scales with.  Empty dict when
    the run recorded no solves (profile stays at paper defaults)."""
    solves = report.counter_total("krylov.solves")
    if not solves:
        return {}
    mean_krylov = report.counter_total("krylov.iterations") / solves
    out = {k: mean_krylov for k in ("ns", "pp", "vu")}
    steps = report.counter_total("chns.steps")
    newton = report.counter_total("newton.iterations")
    if steps and newton:
        out["ch"] = newton / steps
    return out


@dataclass
class SolverCosts:
    """Per-timestep Krylov profile of one solver block, measured from the
    small-scale CHNS run: average iterations and MATVEC-equivalent passes
    per iteration (dot products count as collectives)."""

    iterations: float
    matvecs_per_iter: float = 1.0
    collectives_per_iter: float = 2.0
    assembly_passes: float = 1.0
    dofs_per_node: int = 1


@dataclass
class ApplicationModel:
    """Fig. 5 composition: four solver blocks + remeshing."""

    machine: MachineModel
    n_elems: float  # global element count (paper: ~700M)
    dim: int = 3
    ghost_coeff: float = 6.0
    solvers: dict = field(default_factory=dict)
    # Remeshing constants: sort+balance+transfer passes, plus a small
    # super-linear metadata term that reproduces the paper's cost upturn
    # past ~57K processes (splitter/endpoint handling growing with p).
    remesh_sort_keys_factor: float = 1.0
    remesh_passes: float = 6.0
    remesh_p_linear: float = 5.0e-5  # s per process (metadata/Allgatherv)

    def solver_time(self, name: str, p: int) -> float:
        c = self.solvers[name]
        m = self.machine
        per_pass = m.matvec_time(
            self.n_elems,
            p,
            self.dim,
            ghost_coeff=self.ghost_coeff,
            bytes_per_node_dof=8.0 * c.dofs_per_node,
            n_collectives=0.0,
        )
        t = c.iterations * (
            c.matvecs_per_iter * per_pass
            + c.collectives_per_iter * m.allreduce_time(p)
        )
        t += c.assembly_passes * per_pass
        return float(t)

    def remesh_time(self, p: int) -> float:
        m = self.machine
        keys = self.n_elems * self.remesh_sort_keys_factor
        t = m.kway_sort_time(keys, p)
        t += self.remesh_passes * m.matvec_time(
            self.n_elems, p, self.dim, ghost_coeff=self.ghost_coeff,
            n_collectives=1.0,
        )
        t += self.remesh_p_linear * p  # the upturn term
        return float(t)

    def breakdown(self, procs) -> dict:
        procs = np.asarray(procs)
        out = {"procs": procs}
        for name in self.solvers:
            out[name] = np.array([self.solver_time(name, int(p)) for p in procs])
        out["remesh"] = np.array([self.remesh_time(int(p)) for p in procs])
        return out

    def speedup(self, name: str, p_lo: int, p_hi: int) -> float:
        if name == "remesh":
            return self.remesh_time(p_lo) / self.remesh_time(p_hi)
        return self.solver_time(name, p_lo) / self.solver_time(name, p_hi)


def paper_fig5_solvers(iter_profile: dict | None = None) -> dict:
    """Default Fig. 5 solver profiles.  ``iter_profile`` overrides measured
    iteration counts (from the benchmark's small-scale CHNS run)."""
    base = {
        # CH: Newton x Krylov on a 2-dof block system: norms, line-search
        # evaluations and re-assembly every iteration make it collective-
        # heavy; worst-scaling block (paper: 4x for 8x procs).
        "ch": SolverCosts(iterations=40, matvecs_per_iter=2.2,
                          collectives_per_iter=24.0, assembly_passes=3.0,
                          dofs_per_node=2),
        # NS: per-component solves, light collectives; best-scaling (6.6x).
        "ns": SolverCosts(iterations=90, matvecs_per_iter=1.0,
                          collectives_per_iter=2.0, assembly_passes=3.0),
        # PP: variable-coefficient Poisson, most iterations (dominant cost,
        # paper Sec. III-B); 5.3x.
        "pp": SolverCosts(iterations=300, matvecs_per_iter=1.0,
                          collectives_per_iter=5.0, assembly_passes=1.0),
        # VU: mass solves per direction, few iterations each; 5.5x.
        "vu": SolverCosts(iterations=45, matvecs_per_iter=1.0,
                          collectives_per_iter=4.5, assembly_passes=0.0),
    }
    if iter_profile:
        for k, v in iter_profile.items():
            if k in base:
                base[k].iterations = v
    return base
