"""Analytic machine model for paper-scale extrapolation.

The reproduction band for this paper is "too slow for core solver; only
small demos" — Python cannot run 114,688 ranks.  The substitution
(documented in DESIGN.md §3) is:

1. run the *real* SPMD algorithms in the thread simulator at 2-64 ranks,
   recording exact message counts, byte volumes, and per-element work;
2. feed those measurements into this alpha-beta-gamma machine model,
   calibrated against the paper's published anchor points (Frontera,
   56 cores/node);
3. evaluate the model at the paper's process counts.

The model is the classic postal model plus a log-depth collective term:

    T(p) = W(p) * t_elem                       # local work
         + n_msgs(p) * alpha                   # message latencies
         + bytes(p) * beta                     # bandwidth
         + n_coll(p) * gamma * log2(p)         # allreduce-style collectives

Surface-to-volume scaling of ghost exchange on SFC partitions gives
``bytes(p) ~ c * (N/p)^((d-1)/d)`` per rank; the coefficient ``c`` is fitted
from simulator counters, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class MachineModel:
    """Frontera-flavoured constants (defaults calibrated in the benches)."""

    t_elem: float = 4.28e-5  # s per element per MATVEC pass (anchor: Fig. 4a)
    alpha: float = 9.9e-5  # s per message (effective software+sync latency)
    beta: float = 1.0e-9  # s per byte (inverse bandwidth per rank)
    gamma: float = 2.2e-3  # s per collective per log2(p) stage (at-scale
    # allreduce including system noise; anchored to the Fig. 5 efficiencies)
    imbalance: float = 0.02  # fractional load-imbalance growth per log2(p)
    congestion_p: float = 2.0e4  # dense-Alltoall congestion knee (procs)
    cores_per_node: int = 56  # Frontera footnote

    def matvec_time(
        self,
        n_elems: float,
        p: int,
        dim: int = 3,
        *,
        ghost_coeff: float = 6.0,
        msgs_per_rank: float = 26.0,
        bytes_per_node_dof: float = 8.0,
        n_collectives: float = 0.0,
    ) -> float:
        """One MATVEC pass over a distributed mesh of ``n_elems`` elements."""
        grain = n_elems / p
        surface = ghost_coeff * grain ** ((dim - 1) / dim)
        t = grain * self.t_elem * (1.0 + self.imbalance * np.log2(max(p, 2)))
        t += msgs_per_rank * self.alpha
        t += surface * bytes_per_node_dof * self.beta
        t += n_collectives * self.gamma * np.log2(max(p, 2))
        return float(t)

    def allreduce_time(self, p: int, nbytes: float = 8.0) -> float:
        return self.gamma * np.log2(max(p, 2)) + nbytes * self.beta

    def alltoall_dense_time(self, p: int, bytes_per_pair: float = 8.0) -> float:
        """Raw MPI_Alltoall: Omega(p) per rank, with a cubic congestion
        factor past the network's saturation knee — this is what makes the
        cost "blow up 15x from 28K to 56K cores" (paper Sec. II-C3c)."""
        base = p * (self.alpha * 0.01 + bytes_per_pair * self.beta)
        congestion = 1.0 + (p / self.congestion_p) ** 3
        return base * congestion + self.gamma * np.log2(max(p, 2))

    def sparse_exchange_time(self, n_neighbors: float, nbytes: float) -> float:
        """NBX: proportional to the true sparsity."""
        return n_neighbors * self.alpha + nbytes * self.beta + 2 * self.gamma

    def kway_sort_time(
        self, n_keys: float, p: int, k: int = 128, key_bytes: int = 8
    ) -> float:
        """Hierarchical k-way staged sample sort (paper Sec. II-C3a)."""
        grain = n_keys / p
        stages = max(int(np.ceil(np.log(max(p, 2)) / np.log(k))), 1)
        t_local = stages * grain * np.log2(max(grain, 2)) * 2.0e-9
        t_exchange = stages * (
            k * self.alpha + grain * key_bytes * self.beta
        )
        t_splitters = stages * (k * key_bytes * self.beta + self.gamma * np.log2(max(p, 2)))
        return float(t_local + t_exchange + t_splitters)


def parallel_efficiency(times: np.ndarray, procs: np.ndarray) -> np.ndarray:
    """Strong-scaling efficiency relative to the smallest run."""
    times = np.asarray(times, dtype=np.float64)
    procs = np.asarray(procs, dtype=np.float64)
    return (times[0] * procs[0]) / (times * procs)


def weak_efficiency(times: np.ndarray) -> np.ndarray:
    """Weak-scaling efficiency relative to the smallest run."""
    times = np.asarray(times, dtype=np.float64)
    return times[0] / times
