"""Domains for incomplete octrees.

The paper's framework (Sec. II-C) supports *incomplete* octrees: leaf sets
restricted to a carved computational domain (e.g. a nozzle geometry).  An
octant entirely outside the domain is *void* and is discarded; octants that
intersect the domain boundary are *intercepted* and retained.  We express the
domain as a "retain" predicate on octant boxes, following the domain-test
approach described in the paper's parallel-coarsening discussion (option one).
"""

from __future__ import annotations

import numpy as np

from . import morton


class Domain:
    """Base class: the full root cube (complete octrees)."""

    def retain(self, anchors: np.ndarray, levels: np.ndarray) -> np.ndarray:
        """Boolean mask of octants that intersect the domain (non-void)."""
        return np.ones(np.asarray(levels).shape, dtype=bool)

    def fully_inside(self, anchors: np.ndarray, levels: np.ndarray) -> np.ndarray:
        """Boolean mask of octants entirely inside the domain (no boundary cut)."""
        return np.ones(np.asarray(levels).shape, dtype=bool)


class BoxDomain(Domain):
    """Axis-aligned box in unit coordinates ``[lo, hi] subset [0, 1]**dim``."""

    def __init__(self, lo, hi):
        self.lo = np.asarray(lo, dtype=np.float64)
        self.hi = np.asarray(hi, dtype=np.float64)
        if np.any(self.lo >= self.hi):
            raise ValueError("degenerate box")

    def _bounds(self, anchors, levels):
        scale = float(1 << morton.MAX_DEPTH)
        anchors = np.asarray(anchors, dtype=np.float64) / scale
        size = morton.cell_size(levels).astype(np.float64) / scale
        return anchors, anchors + size[..., None]

    def retain(self, anchors, levels):
        a, b = self._bounds(anchors, levels)
        return np.all((b > self.lo) & (a < self.hi), axis=-1)

    def fully_inside(self, anchors, levels):
        a, b = self._bounds(anchors, levels)
        return np.all((a >= self.lo) & (b <= self.hi), axis=-1)


class SphereDomain(Domain):
    """Ball of given center/radius in unit coordinates.

    The retain test is conservative (box-vs-sphere distance), which is exactly
    what an octree domain test needs: it may retain a few extra cut octants
    but never discards an intersecting one.
    """

    def __init__(self, center, radius: float):
        self.center = np.asarray(center, dtype=np.float64)
        self.radius = float(radius)

    def retain(self, anchors, levels):
        scale = float(1 << morton.MAX_DEPTH)
        a = np.asarray(anchors, dtype=np.float64) / scale
        size = morton.cell_size(levels).astype(np.float64) / scale
        b = a + size[..., None]
        # Distance from sphere center to the box.
        nearest = np.clip(self.center, a, b)
        d2 = np.sum((nearest - self.center) ** 2, axis=-1)
        return d2 <= self.radius**2

    def fully_inside(self, anchors, levels):
        scale = float(1 << morton.MAX_DEPTH)
        a = np.asarray(anchors, dtype=np.float64) / scale
        size = morton.cell_size(levels).astype(np.float64) / scale
        b = a + size[..., None]
        farthest = np.where(
            np.abs(a - self.center) > np.abs(b - self.center), a, b
        )
        d2 = np.sum((farthest - self.center) ** 2, axis=-1)
        return d2 <= self.radius**2


class ComplementDomain(Domain):
    """Everything outside an obstacle's ``fully_inside`` region.

    Useful for flows around immersed objects: octants fully inside the
    obstacle are void.
    """

    def __init__(self, obstacle: Domain):
        self.obstacle = obstacle

    def retain(self, anchors, levels):
        return ~self.obstacle.fully_inside(anchors, levels)

    def fully_inside(self, anchors, levels):
        return ~self.obstacle.retain(anchors, levels)
