"""2:1 balancing of linear octrees.

A leaf set is 2:1-balanced when any two leaves sharing a face, edge, or
corner differ by at most one level.  Balance is a prerequisite for the
hanging-node FEM construction (each hanging node then interpolates from
non-hanging parents) and is restored after every multi-level refinement or
coarsening, as in the paper (Sec. II-C1a).

The implementation is "ripple" balancing: repeatedly locate, for every leaf,
the leaf containing each directional sample point; any located leaf more than
one level coarser is refined (directly to the required level via the
multi-level :func:`~repro.octree.refine.refine`), until a fixed point.
Termination is guaranteed because levels only increase and are bounded by
``MAX_DEPTH``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .domain import Domain
from . import morton
from .neighbors import leaf_neighbors
from .refine import refine
from .tree import Octree


def balance(tree: Octree, *, domain: Optional[Domain] = None) -> Octree:
    """Return the minimal 2:1-balanced refinement of a linear octree."""
    if not tree.is_linear():
        raise ValueError("balance requires a linear (leaf) octree")
    current = tree
    for _ in range(4 * morton.MAX_DEPTH):  # +1 ripple: bounded by depth span
        nbr = leaf_neighbors(current)  # (n, m) leaf indices
        levels = current.levels
        valid = nbr >= 0
        nbr_levels = np.where(valid, levels[np.where(valid, nbr, 0)], 10**9)
        # The leaf in direction d must be at least (my level - 1).
        required = levels[:, None] - 1
        viol = valid & (nbr_levels < required)
        if not np.any(viol):
            return current
        targets = levels.copy()
        flat_nbr = nbr[viol]
        flat_req = np.broadcast_to(required, viol.shape)[viol]
        np.maximum.at(targets, flat_nbr, flat_req)
        # Refine offenders by at most one level per pass: the +1 ripple
        # converges to the *minimal* balanced closure (refining straight to
        # the required level would refine the offender's whole footprint,
        # over-resolving the parts far from the fine neighbor).
        targets = np.minimum(targets, levels + 1)
        current = refine(current, targets, domain=domain)
    raise RuntimeError("2:1 balance did not converge")  # pragma: no cover


def is_balanced(tree: Octree) -> bool:
    """Check the 2:1 condition over all face/edge/corner adjacencies."""
    if len(tree) < 2:
        return True
    nbr = leaf_neighbors(tree)
    valid = nbr >= 0
    nbr_levels = np.where(valid, tree.levels[np.where(valid, nbr, 0)], 0)
    diff = np.abs(np.where(valid, nbr_levels - tree.levels[:, None], 0))
    return bool(np.all(diff <= 1))
