"""Multi-level octree coarsening (paper Algorithm 6, COARSEN).

Each input leaf *votes* the coarsest level it can accept being promoted to
(``votes[i] <= tree.levels[i]``).  An ancestor ``A`` of input leaves is output
iff (i) no input leaf under ``A`` votes a level finer than ``level(A)``, and
(ii) the same cannot be said of ``A``'s parent — i.e. the output is the
*coarsest* set of ancestors consistent with every vote.  Incomplete subtrees
are allowed: a parent with missing (void) children may still be emitted, as
in the paper.

Two implementations:

* :func:`coarsen` — vectorized bottom-up merge (production version).
* :func:`coarsen_recursive` — literal post-order transcription of
  Algorithm 6 with push/pop output semantics (oracle for tests).
"""

from __future__ import annotations

import numpy as np

from . import morton
from .tree import Octree


def coarsen(tree: Octree, votes: np.ndarray) -> Octree:
    """Coarsen a linear octree to the consensus of per-leaf votes."""
    votes = np.asarray(votes, dtype=np.int64).reshape(-1)
    if len(votes) != len(tree):
        raise ValueError("votes length mismatch")
    if np.any(votes > tree.levels):
        raise ValueError("votes must be at or coarser than current levels")
    if np.any(votes < 0):
        raise ValueError("votes must be nonnegative")
    if len(tree) == 0:
        return Octree.empty(tree.dim)

    anchors = tree.anchors.copy()
    levels = tree.levels.copy()
    maxvote = votes.copy()  # per current octant: finest vote among inputs inside

    for lev in range(int(levels.max()), 0, -1):
        at = np.nonzero(levels == lev)[0]
        if len(at) == 0:
            continue
        # Candidates: members at this level whose subtree accepts the parent.
        cand = at[maxvote[at] <= lev - 1]
        if len(cand) == 0:
            continue
        pa = morton.coarsen_anchor(anchors[cand], levels[cand], lev - 1)
        pkey = morton.keys(pa, np.full(len(cand), lev - 1), tree.dim)
        order = np.argsort(pkey, kind="stable")
        cand, pa, pkey = cand[order], pa[order], pkey[order]
        uniq, start, counts = np.unique(pkey, return_index=True, return_counts=True)
        # A parent may be formed only if *every* current member under it is a
        # candidate at this level (no finer leftovers, no non-candidate
        # sibling).  Members under a parent are contiguous in the sorted tree.
        p_anchors = pa[start]
        p_levels = np.full(len(uniq), lev - 1, dtype=np.int64)
        lo, hi = morton.descendant_key_range(p_anchors, p_levels, tree.dim)
        k = morton.keys(anchors, levels, tree.dim)  # current set keys (sorted)
        n_under = np.searchsorted(k, hi) - np.searchsorted(k, lo)
        form = n_under == counts
        if not np.any(form):
            continue
        # Indices of members being merged, and their replacement parents.
        grp_max = np.maximum.reduceat(maxvote[cand], start)
        drop = cand[np.repeat(form, counts)]
        keep = np.ones(len(levels), dtype=bool)
        keep[drop] = False
        nform = int(form.sum())
        anchors = np.concatenate([anchors[keep], p_anchors[form]])
        levels = np.concatenate([levels[keep], np.full(nform, lev - 1, np.int64)])
        maxvote = np.concatenate([maxvote[keep], grp_max[form]])
        order = np.argsort(
            morton.keys(anchors, levels, tree.dim), kind="stable"
        )
        anchors, levels, maxvote = anchors[order], levels[order], maxvote[order]

    return Octree(anchors, levels, tree.dim, presorted=True)


def coarsen_recursive(tree: Octree, votes: np.ndarray) -> Octree:
    """Literal Algorithm 6: post-order traversal, push/pop output stack.

    Returns the coarsened tree; used as an oracle against :func:`coarsen`.
    """
    votes = np.asarray(votes, dtype=np.int64).reshape(-1)
    if np.any(votes > tree.levels):
        raise ValueError("votes must be at or coarser than current levels")
    anchors, levels, dim = tree.anchors, tree.levels, tree.dim
    out_a: list = []
    out_l: list = []
    cursor = [0]

    def visit(r_anchor: np.ndarray, r_level: int) -> int:
        """Returns coarsen_to: the finest vote among inputs in this subtree."""
        coarsen_to = 0
        i = cursor[0]
        if i >= len(levels) or not morton.overlaps(
            r_anchor, r_level, anchors[i], levels[i]
        ):
            return coarsen_to
        if r_level < levels[i]:
            pre_size = len(out_a)
            ca, _ = morton.children(r_anchor, np.int64(r_level), dim)
            for c in range(1 << dim):
                lc = visit(ca[c], r_level + 1)
                coarsen_to = max(coarsen_to, lc)
            if coarsen_to <= r_level:
                # Undo child emits and emit the subtree root instead.
                del out_a[pre_size:]
                del out_l[pre_size:]
                out_a.append(r_anchor)
                out_l.append(r_level)
        else:
            out_a.append(r_anchor)
            out_l.append(r_level)
            coarsen_to = int(votes[i])
        while cursor[0] < len(levels) and (
            levels[cursor[0]] == r_level
            and np.array_equal(anchors[cursor[0]], r_anchor)
        ):
            cursor[0] += 1
        return coarsen_to

    if len(levels) == 0:
        return Octree.empty(dim)
    visit(np.zeros(dim, dtype=np.int64), 0)
    return Octree(np.stack(out_a), np.asarray(out_l), dim, presorted=True)
