"""Parallel multi-level coarsening (paper Algorithm 7, PARCOARSEN).

The distributed input octree is coarsened locally on each rank (tentative
pass), tentative coarse octants at partition endpoints are exchanged with
neighbor ranks, inputs overlapped by a *coarser* remote contender are
repartitioned toward that contender ("option three" in the paper — no
redundant domain tests, no ping-pong after splitting), and a second local
pass finishes the job.

The paper notes the rare case of a tentative octant so coarse that it
overlaps multiple remote partitions, resolved by a distributed exponential
search; we realize the same effect by iterating the endpoint-exchange step
to a fixed point (each iteration moves inputs strictly toward coarsest
contenders, and the level of any contender is bounded, so it terminates).
"""

from __future__ import annotations

import numpy as np

from ..mpi.comm import Comm
from ..mpi.sparse_exchange import nbx_exchange
from . import morton
from .coarsen import coarsen
from .overlap import local_overlap_range
from .tree import Octree

_MAX_ROUNDS = 64


def _endpoint(tree: Octree, idx: int):
    if len(tree) == 0:
        return None
    return (tree.anchors[idx].copy(), int(tree.levels[idx]))


def par_coarsen(comm: Comm, local: Octree, votes: np.ndarray) -> Octree:
    """Coarsen a distributed sorted linear octree to the global consensus of
    per-leaf votes.  Returns the new local chunk; concatenated over ranks the
    result equals the serial :func:`~repro.octree.coarsen.coarsen` of the
    gathered input (tested property), with duplicates removed.
    """
    # Validate under names that are never reassigned: the loop below carries
    # `cur_votes` rebound from exchanged (rank-dependent) data, and the
    # flow-insensitive linter would read a reuse of the `votes` name as
    # making this uniform input check a rank-dependent early exit ahead of
    # the loop's collectives.
    votes_in = np.asarray(votes, dtype=np.int64).reshape(-1)
    if len(votes_in) != len(local):
        raise ValueError("votes length mismatch")
    cur_votes = votes_in
    dim = local.dim
    anchors = local.anchors
    levels = local.levels

    for _ in range(_MAX_ROUNDS):
        cur = Octree(anchors, levels, dim, presorted=True)
        tentative = coarsen(cur, cur_votes)  # first (tentative) pass
        head = _endpoint(tentative, 0)
        tail = _endpoint(tentative, -1)
        # Exchange tentative endpoints with both neighbors.
        eps = comm.allgather((head, tail))

        # Which of my inputs move?  The relevant neighbors are the nearest
        # *non-empty* ranks on either side (empty ranks must not break the
        # chain).  A previous coarser-or-equal contender wins ties; the next
        # contender must be strictly coarser (the paper's asymmetry prevents
        # both sides claiming the same inputs).
        r = comm.rank
        prev_rank = next(
            (q for q in range(r - 1, -1, -1) if eps[q][1] is not None), None
        )
        next_rank = next(
            (q for q in range(r + 1, comm.size) if eps[q][0] is not None), None
        )
        send_prev = np.zeros(len(levels), dtype=bool)
        send_next = np.zeros(len(levels), dtype=bool)
        if prev_rank is not None and head is not None:
            prev_tail = eps[prev_rank][1]
            if prev_tail[1] <= head[1]:  # level comparison: they win ties
                s, e = local_overlap_range(cur, prev_tail[0], prev_tail[1])
                send_prev[s:e] = True
        if next_rank is not None and tail is not None:
            next_head = eps[next_rank][0]
            if next_head[1] < tail[1]:
                s, e = local_overlap_range(cur, next_head[0], next_head[1])
                send_next[s:e] = True
        send_prev &= ~send_next  # an input moves one way only

        moved = int(send_prev.sum() + send_next.sum())
        total_moved = comm.allreduce(moved)
        if total_moved == 0:
            return tentative

        # Repartition overlapped inputs toward the coarsest contender (votes
        # travel along); the sparse pattern uses the NBX exchange.
        keep = ~(send_prev | send_next)
        outgoing = {}
        if prev_rank is not None and np.any(send_prev):
            outgoing[prev_rank] = (
                anchors[send_prev],
                levels[send_prev],
                cur_votes[send_prev],
            )
        if next_rank is not None and np.any(send_next):
            outgoing[next_rank] = (
                anchors[send_next],
                levels[send_next],
                cur_votes[send_next],
            )
        incoming = nbx_exchange(comm, outgoing)
        # Indexed by sorted source rank (spmdlint R2): exchange arrival order
        # is schedule-dependent, and the stable argsort below preserves the
        # concatenation order between equal morton keys.
        pieces = [(anchors[keep], levels[keep], cur_votes[keep])] + [
            incoming[q] for q in sorted(incoming)
        ]
        anchors = np.concatenate([p[0] for p in pieces])
        levels = np.concatenate([p[1] for p in pieces])
        cur_votes = np.concatenate([p[2] for p in pieces])
        order = np.argsort(morton.keys(anchors, levels, dim), kind="stable")
        anchors, levels, cur_votes = anchors[order], levels[order], cur_votes[order]

    raise RuntimeError("par_coarsen did not converge")  # pragma: no cover
