"""Multi-level octree refinement (paper Algorithm 5, REFINE).

Replaces each leaf of a linear octree by its descendants at a per-leaf target
level, *in a single pass*, emitting output already in sorted (pre-order SFC)
order.  Unlike level-by-level AMR libraries, the jump may be arbitrarily
large — the paper's motivation is interfaces whose required depth changes by
many levels in one remeshing step.

Two implementations are provided:

* :func:`refine` — vectorized production version (groups leaves by level
  jump; per-leaf descendant blocks are emitted in Morton order, so the
  concatenation over sorted disjoint leaves is globally sorted).
* :func:`refine_recursive` — a literal transcription of Algorithm 5's
  SFC traversal, used as a cross-check oracle in the tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import morton
from .domain import Domain
from .tree import Octree


def _morton_offsets(depth: int, dim: int) -> np.ndarray:
    """Anchors (in child-size units) of all depth-``depth`` descendants of a
    unit cell, listed in Morton (pre-order, equal-depth) order."""
    n = 1 << (dim * depth)
    codes = np.arange(n, dtype=np.uint64)
    out = np.empty((n, dim), dtype=np.int64)
    for axis in range(dim):
        out[:, axis] = morton._contract(codes >> np.uint64(axis), dim)
    return out


def refine(
    tree: Octree,
    target_levels: np.ndarray,
    *,
    domain: Optional[Domain] = None,
) -> Octree:
    """Replace each leaf by its descendants at ``target_levels[i]``.

    ``target_levels[i] >= tree.levels[i]`` is required (equal = keep).  Void
    descendants (per ``domain``) are discarded, matching the paper's handling
    of boundary-intercepted octants.
    """
    target_levels = np.asarray(target_levels, dtype=np.int64).reshape(-1)
    if len(target_levels) != len(tree):
        raise ValueError("target_levels length mismatch")
    if np.any(target_levels < tree.levels):
        raise ValueError("refine cannot coarsen: target level above current")
    if np.any(target_levels > morton.MAX_DEPTH):
        raise ValueError("target level exceeds MAX_DEPTH")

    jumps = target_levels - tree.levels
    pieces_a = []
    pieces_l = []
    order_tags = []
    for d in np.unique(jumps):
        sel = jumps == d
        idx = np.nonzero(sel)[0]
        if d == 0:
            pieces_a.append(tree.anchors[sel])
            pieces_l.append(tree.levels[sel])
            order_tags.append(np.stack([idx, np.zeros_like(idx)], axis=1))
            continue
        offs = _morton_offsets(int(d), tree.dim)  # (m, dim)
        m = len(offs)
        child_size = morton.cell_size(tree.levels[sel] + d)  # (k,)
        anchors = (
            tree.anchors[sel][:, None, :] + offs[None, :, :] * child_size[:, None, None]
        ).reshape(-1, tree.dim)
        levels = np.repeat(target_levels[sel], m)
        pieces_a.append(anchors)
        pieces_l.append(levels)
        order_tags.append(
            np.stack(
                [np.repeat(idx, m), np.tile(np.arange(m, dtype=np.int64), len(idx))],
                axis=1,
            )
        )
    anchors = np.concatenate(pieces_a) if pieces_a else np.zeros((0, tree.dim), np.int64)
    levels = np.concatenate(pieces_l) if pieces_l else np.zeros(0, np.int64)
    tags = np.concatenate(order_tags) if order_tags else np.zeros((0, 2), np.int64)
    # Restore global pre-order: per-leaf blocks are already in Morton order,
    # leaves are sorted and disjoint, so sorting by (leaf index, block pos) is
    # enough — cheaper than re-keying.
    perm = np.lexsort((tags[:, 1], tags[:, 0]))
    out = Octree(anchors[perm], levels[perm], tree.dim, presorted=True)
    if domain is not None:
        keep = domain.retain(out.anchors, out.levels)
        out = Octree(out.anchors[keep], out.levels[keep], tree.dim, presorted=True)
    return out


def refine_recursive(tree: Octree, target_levels: np.ndarray) -> Octree:
    """Literal Algorithm 5: single-pass SFC traversal with an input cursor."""
    target_levels = np.asarray(target_levels, dtype=np.int64).reshape(-1)
    if np.any(target_levels < tree.levels):
        raise ValueError("refine cannot coarsen")
    out_a: list = []
    out_l: list = []
    cursor = [0]  # oct_in / level_in pointer, passed by reference

    anchors, levels, dim = tree.anchors, tree.levels, tree.dim

    def visit(r_anchor: np.ndarray, r_level: int) -> None:
        i = cursor[0]
        if i >= len(levels):
            return
        if not morton.overlaps(r_anchor, r_level, anchors[i], levels[i]):
            return
        if r_level < target_levels[i]:
            ca, cl = morton.children(r_anchor, np.int64(r_level), dim)
            for c in range(1 << dim):
                visit(ca[c], int(cl[c]))
        else:
            out_a.append(r_anchor)
            out_l.append(r_level)
        # Advance past every input octant equal to the current subtree root.
        while cursor[0] < len(levels) and (
            levels[cursor[0]] == r_level
            and np.array_equal(anchors[cursor[0]], r_anchor)
        ):
            cursor[0] += 1

    # Traverse from each input leaf's coarsest enclosing start; simplest
    # faithful choice is the root.
    visit(np.zeros(dim, dtype=np.int64), 0)
    if not out_a:
        return Octree.empty(dim)
    return Octree(np.stack(out_a), np.asarray(out_l), dim, presorted=True)
