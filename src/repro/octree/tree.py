"""Linear octree container.

A :class:`Octree` stores a set of octants as flat NumPy arrays of anchors and
levels, in pre-order SFC order (see :mod:`repro.octree.morton`).  A *linear*
octree additionally contains no duplicate and no overlapping (ancestor /
descendant) pairs, i.e. it is a set of leaves.  Incomplete octrees — leaf sets
that do not cover the whole root cube, used for carved domains (Sec. II-C1a of
the paper) — are fully supported; nothing in this module assumes coverage.
"""

from __future__ import annotations

import numpy as np

from . import morton


class Octree:
    """An SFC-sorted list of octants (possibly a non-leaf multiset before
    :func:`linearize`)."""

    __slots__ = ("anchors", "levels", "dim")

    def __init__(self, anchors, levels, dim: int, *, presorted: bool = False):
        anchors = np.asarray(anchors, dtype=np.int64).reshape(-1, dim)
        levels = np.asarray(levels, dtype=np.int64).reshape(-1)
        if anchors.shape[0] != levels.shape[0]:
            raise ValueError("anchors / levels length mismatch")
        if not presorted and len(levels) > 1:
            order = np.argsort(morton.keys(anchors, levels, dim), kind="stable")
            anchors = anchors[order]
            levels = levels[order]
        self.anchors = anchors
        self.levels = levels
        self.dim = dim

    # ------------------------------------------------------------------ basic

    @classmethod
    def root(cls, dim: int) -> "Octree":
        """The tree containing only the root octant."""
        return cls(np.zeros((1, dim), dtype=np.int64), np.zeros(1, dtype=np.int64), dim)

    @classmethod
    def empty(cls, dim: int) -> "Octree":
        return cls(
            np.zeros((0, dim), dtype=np.int64), np.zeros(0, dtype=np.int64), dim
        )

    def __len__(self) -> int:
        return len(self.levels)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Octree):
            return NotImplemented
        return (
            self.dim == other.dim
            and len(self) == len(other)
            and np.array_equal(self.anchors, other.anchors)
            and np.array_equal(self.levels, other.levels)
        )

    def __repr__(self) -> str:
        return f"Octree(dim={self.dim}, n={len(self)})"

    def keys(self) -> np.ndarray:
        return morton.keys(self.anchors, self.levels, self.dim)

    def copy(self) -> "Octree":
        return Octree(self.anchors.copy(), self.levels.copy(), self.dim, presorted=True)

    def is_sorted(self) -> bool:
        k = self.keys()
        return bool(np.all(k[:-1] <= k[1:]))

    def is_linear(self) -> bool:
        """True iff sorted, duplicate-free, and overlap-free (a true leaf set)."""
        if len(self) < 2:
            return True
        k = self.keys()
        if not np.all(k[:-1] < k[1:]):
            return False
        # In pre-order, an ancestor is immediately followed (somewhere) by its
        # descendants; overlap-freedom of a sorted set reduces to checking
        # consecutive pairs.
        anc = morton.is_ancestor(
            self.anchors[:-1], self.levels[:-1], self.anchors[1:], self.levels[1:]
        )
        return not bool(np.any(anc))

    # ----------------------------------------------------------- set algebra

    def linearize(self) -> "Octree":
        """Remove duplicates and ancestors, keeping the finest octants.

        This matches the standard octree ``linearize`` operation: of any
        overlapping pair, the coarser octant is dropped.
        """
        if len(self) < 2:
            return self.copy()
        k = self.keys()
        order = np.argsort(k, kind="stable")
        a = self.anchors[order]
        l = self.levels[order]
        # Drop exact duplicates first.
        ks = k[order]
        keep = np.ones(len(ks), dtype=bool)
        keep[1:] = ks[1:] != ks[:-1]
        a, l = a[keep], l[keep]
        # Iteratively drop octants that are ancestors of their successor.  One
        # pass can expose new adjacent ancestor pairs (a < b < c with a an
        # ancestor of c), so repeat until stable; each pass strictly shrinks.
        while len(l) > 1:
            anc = morton.is_ancestor(a[:-1], l[:-1], a[1:], l[1:])
            if not np.any(anc):
                break
            keep = np.ones(len(l), dtype=bool)
            keep[:-1][anc] = False
            a, l = a[keep], l[keep]
        return Octree(a, l, self.dim, presorted=True)

    def merged(self, other: "Octree") -> "Octree":
        if self.dim != other.dim:
            raise ValueError("dimension mismatch")
        return Octree(
            np.concatenate([self.anchors, other.anchors]),
            np.concatenate([self.levels, other.levels]),
            self.dim,
        )

    # ------------------------------------------------------------- geometry

    def sizes(self) -> np.ndarray:
        """Side length of each octant in grid units."""
        return morton.cell_size(self.levels)

    def volumes(self) -> np.ndarray:
        """Volume of each octant in grid units**dim (float to avoid overflow)."""
        return morton.cell_size(self.levels).astype(np.float64) ** self.dim

    def centers(self) -> np.ndarray:
        """Centers of octants in grid coordinates (float)."""
        return self.anchors + 0.5 * self.sizes()[:, None]

    def corners(self) -> np.ndarray:
        """Corner coordinates, shape ``(n, 2**dim, dim)``, in Morton corner order."""
        n = len(self)
        nc = 1 << self.dim
        offsets = np.zeros((nc, self.dim), dtype=np.int64)
        for c in range(nc):
            for axis in range(self.dim):
                offsets[c, axis] = (c >> axis) & 1
        return self.anchors[:, None, :] + offsets[None, :, :] * self.sizes()[:, None, None]

    # --------------------------------------------------------------- search

    def locate_points(self, points: np.ndarray) -> np.ndarray:
        """Index of the leaf containing each grid point, or -1 if uncovered.

        ``points`` are integer grid coordinates; a point belongs to the leaf
        whose half-open box ``[anchor, anchor + size)`` contains it.  Requires
        a linear (leaf) tree.
        """
        points = np.asarray(points, dtype=np.int64).reshape(-1, self.dim)
        if len(self) == 0:
            return np.full(len(points), -1, dtype=np.int64)
        pk = morton.point_keys(points, self.dim)
        k = self.keys()
        # Candidate: the last leaf with key <= point key.  In pre-order the
        # containing leaf (if any) is exactly this candidate.
        idx = np.searchsorted(k, pk, side="right") - 1
        valid = idx >= 0
        out = np.full(len(points), -1, dtype=np.int64)
        if np.any(valid):
            cand = idx[valid]
            contains = morton.is_ancestor(
                self.anchors[cand],
                self.levels[cand],
                points[valid],
                np.full(int(valid.sum()), morton.MAX_DEPTH),
            )
            res = np.where(contains, cand, -1)
            out[valid] = res
        return out

    def find(self, anchors, levels) -> np.ndarray:
        """Index of each exact octant in the tree, or -1 if absent."""
        anchors = np.asarray(anchors, dtype=np.int64).reshape(-1, self.dim)
        levels = np.asarray(levels, dtype=np.int64).reshape(-1)
        q = morton.keys(anchors, levels, self.dim)
        k = self.keys()
        idx = np.searchsorted(k, q)
        out = np.full(len(q), -1, dtype=np.int64)
        ok = (idx < len(k))
        ok[ok] = k[idx[ok]] == q[ok]
        out[ok] = idx[ok]
        return out

    def coverage(self) -> float:
        """Total covered volume as a fraction of the root cube."""
        total = float((1 << morton.MAX_DEPTH)) ** self.dim
        return float(self.volumes().sum()) / total
