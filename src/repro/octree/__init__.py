"""Linear octree substrate (paper Sec. II-C)."""

from .balance import balance, is_balanced  # noqa: F401
from .build import (  # noqa: F401
    build_tree,
    complete_region,
    tree_from_function,
    tree_from_points,
    uniform_tree,
)
from .coarsen import coarsen, coarsen_recursive  # noqa: F401
from .domain import BoxDomain, ComplementDomain, Domain, SphereDomain  # noqa: F401
from .hilbert import hilbert_keys, hilbert_sort  # noqa: F401
from .level_by_level import (  # noqa: F401
    coarsen_level_by_level,
    refine_level_by_level,
)
from .parbalance import par_balance  # noqa: F401
from .parcoarsen import par_coarsen  # noqa: F401
from .refine import refine, refine_recursive  # noqa: F401
from .tree import Octree  # noqa: F401
