"""Hilbert space-filling-curve ordering (partition-quality extension).

The paper's framework (Dendro lineage) supports Hilbert ordering as an
alternative to Morton: the Hilbert curve has no long jumps, so contiguous
SFC chunks have smaller surface area — less ghost traffic per rank.  This
module computes Hilbert indices for octants via the classic per-level
state-transition (Gray-code rotation) construction, generic in dimension,
and the partition-quality benchmark measures the boundary-size difference
against Morton.

The index of an octant at level ``l`` is the Hilbert rank of its ancestor
path truncated to ``l`` digits; keys append the level like Morton keys so
ancestors again precede descendants.
"""

from __future__ import annotations

import numpy as np

from . import morton


def _rotate_right(x: int, k: int, dim: int) -> int:
    k %= dim
    mask = (1 << dim) - 1
    return ((x >> k) | (x << (dim - k))) & mask


def _rotate_left(x: int, k: int, dim: int) -> int:
    return _rotate_right(x, dim - (k % dim), dim)


def _gray(i: int) -> int:
    return i ^ (i >> 1)


def _gray_inverse(g: int) -> int:
    i = g
    while g:
        g >>= 1
        i ^= g
    return i


def _trailing_set_bits(i: int) -> int:
    n = 0
    while i & 1:
        n += 1
        i >>= 1
    return n


def _entry(i: int) -> int:
    """Entry point of the i-th subcube in the canonical frame (Hamilton)."""
    if i == 0:
        return 0
    return _gray(2 * ((i - 1) // 2))


def _direction(i: int, dim: int) -> int:
    if i == 0:
        return 0
    if i % 2 == 0:
        return _trailing_set_bits(i - 1) % dim
    return _trailing_set_bits(i) % dim


def hilbert_index_single(cell: np.ndarray, level: int, dim: int) -> int:
    """Hilbert rank of a cell given by per-axis integer coords in
    ``[0, 2**level)`` (Hamilton's algorithm, bit-interleaved form)."""
    x = [int(c) for c in cell]
    h = 0
    e = 0  # entry point (as bit pattern)
    d = 0  # direction
    for lev in range(level - 1, -1, -1):
        # Bits of each axis at this refinement level, packed little-endian
        # axis order (axis 0 = bit 0), matching the Morton convention.
        l_bits = 0
        for axis in range(dim):
            l_bits |= ((x[axis] >> lev) & 1) << axis
        # Transform into the current frame.
        t = _rotate_right(l_bits ^ e, d + 1, dim)
        w = _gray_inverse(t)
        h = (h << dim) | w
        # Update the frame.
        e = e ^ _rotate_left(_entry(w), d + 1, dim)
        d = (d + _direction(w, dim) + 1) % dim
    return h


def hilbert_index_inverse(h: int, level: int, dim: int) -> np.ndarray:
    """Inverse of :func:`hilbert_index_single`: the per-axis cell coords in
    ``[0, 2**level)`` of the cell with Hilbert rank ``h`` at ``level``.

    Runs the same per-level frame recursion as the forward transform, but
    un-ranks each ``dim``-bit digit (Gray-code then un-rotate) instead of
    ranking it.
    """
    h = int(h)
    x = [0] * dim
    e = 0
    d = 0
    for lev in range(level - 1, -1, -1):
        w = (h >> (dim * lev)) & ((1 << dim) - 1)
        t = _gray(w)
        l_bits = _rotate_left(t, d + 1, dim) ^ e
        for axis in range(dim):
            x[axis] |= ((l_bits >> axis) & 1) << lev
        e = e ^ _rotate_left(_entry(w), d + 1, dim)
        d = (d + _direction(w, dim) + 1) % dim
    return np.array(x, dtype=np.int64)


def hilbert_keys(anchors: np.ndarray, levels: np.ndarray, dim: int) -> np.ndarray:
    """Hilbert analogue of :func:`repro.octree.morton.keys`.

    The octant's ancestor path (its cell coordinates at its own level) is
    ranked on the Hilbert curve at that level, shifted to MAX_DEPTH digits
    so different levels interleave, and the level is appended — preserving
    the ancestor-precedes-descendant property.
    """
    anchors = np.asarray(anchors, dtype=np.int64).reshape(-1, dim)
    levels = np.asarray(levels, dtype=np.int64).reshape(-1)
    out = np.zeros(len(levels), dtype=np.uint64)
    for i in range(len(levels)):
        lev = int(levels[i])
        cell = anchors[i] >> (morton.MAX_DEPTH - lev)
        h = hilbert_index_single(cell, lev, dim)
        h <<= dim * (morton.MAX_DEPTH - lev)  # pad to uniform depth
        out[i] = (np.uint64(h) << np.uint64(morton.LEVEL_BITS)) | np.uint64(lev)
    return out


def hilbert_sort(anchors: np.ndarray, levels: np.ndarray, dim: int) -> np.ndarray:
    """Permutation ordering octants along the Hilbert curve."""
    return np.argsort(hilbert_keys(anchors, levels, dim), kind="stable")


def chunk_surface_ratio(
    anchors: np.ndarray, levels: np.ndarray, dim: int, nparts: int, order: str
) -> float:
    """Average boundary-to-volume proxy of contiguous chunks under an
    ordering: the number of chunk-external face adjacencies, normalized by
    chunk size.  Lower = better partition locality (less ghost traffic)."""
    if order == "hilbert":
        perm = hilbert_sort(anchors, levels, dim)
    elif order == "morton":
        perm = np.argsort(morton.keys(anchors, levels, dim), kind="stable")
    else:
        raise ValueError("order must be 'morton' or 'hilbert'")
    a = np.asarray(anchors)[perm]
    l = np.asarray(levels)[perm]
    n = len(l)
    bounds = np.linspace(0, n, nparts + 1).astype(np.int64)
    part = np.zeros(n, dtype=np.int64)
    for r in range(nparts):
        part[bounds[r] : bounds[r + 1]] = r
    # Face adjacency via sorted same-level face-neighbor probing.
    from .tree import Octree

    t = Octree(a, l, dim)
    order2 = np.argsort(morton.keys(a, l, dim), kind="stable")
    inv = np.empty(n, dtype=np.int64)
    inv[order2] = np.arange(n)
    # t is sorted by morton; map part ids accordingly.
    part_sorted = part[np.argsort(morton.keys(a, l, dim), kind="stable")]
    from .neighbors import leaf_neighbors

    nbr = leaf_neighbors(t)
    valid = nbr >= 0
    cross = valid & (part_sorted[np.where(valid, nbr, 0)] != part_sorted[:, None])
    return float(cross.sum()) / n
