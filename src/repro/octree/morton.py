"""Morton (Z-order space-filling-curve) keys for linear octrees.

Octants are identified by an *anchor* (the lexicographically smallest corner,
given in integer coordinates on the grid of the deepest admissible level) and
a *level* (the depth in the tree; the root is level 0).  The side length of an
octant at level ``l`` is ``2**(MAX_DEPTH - l)`` grid units, so the domain is
the cube ``[0, 2**MAX_DEPTH)**dim``.

The 64-bit key produced by :func:`keys` is ``(morton(anchor) << LEVEL_BITS) |
level``.  Sorting by this key yields the *pre-order* traversal of the octree:
an ancestor always precedes its descendants, and disjoint octants appear in
SFC order.  This is the total order ``<`` used throughout the paper's
algorithms (linearization, 2:1 balance, partitioning, the overlap/rank search
of Sec. II-C2c).

Everything in this module is vectorized over NumPy arrays; scalar ints work
too via NumPy broadcasting.
"""

from __future__ import annotations

import numpy as np

#: Deepest admissible refinement level.  The paper's jet atomization run uses
#: level 15; 19 leaves headroom while keeping 3-D keys within 64 bits
#: (3*19 = 57 anchor bits + 6 level bits = 63).
MAX_DEPTH = 19

#: Bits reserved at the bottom of the key for the level field.
LEVEL_BITS = 6

_U = np.uint64


def cell_size(level):
    """Side length (in grid units at MAX_DEPTH resolution) of a level-``l`` octant."""
    level = np.asarray(level)
    if np.any(level < 0) or np.any(level > MAX_DEPTH):
        raise ValueError(f"level out of range [0, {MAX_DEPTH}]")
    return np.asarray(1 << (MAX_DEPTH - level.astype(np.int64)), dtype=np.int64)


def _dilate(x: np.ndarray, dim: int) -> np.ndarray:
    """Spread the low MAX_DEPTH bits of ``x`` so consecutive bits are ``dim`` apart."""
    x = x.astype(_U)
    if dim == 2:
        # Classic magic-number dilation for up to 32 input bits.
        x = (x | (x << _U(16))) & _U(0x0000FFFF0000FFFF)
        x = (x | (x << _U(8))) & _U(0x00FF00FF00FF00FF)
        x = (x | (x << _U(4))) & _U(0x0F0F0F0F0F0F0F0F)
        x = (x | (x << _U(2))) & _U(0x3333333333333333)
        x = (x | (x << _U(1))) & _U(0x5555555555555555)
        return x
    if dim == 3:
        # Dilation for up to 21 input bits.
        x = (x | (x << _U(32))) & _U(0x1F00000000FFFF)
        x = (x | (x << _U(16))) & _U(0x1F0000FF0000FF)
        x = (x | (x << _U(8))) & _U(0x100F00F00F00F00F)
        x = (x | (x << _U(4))) & _U(0x10C30C30C30C30C3)
        x = (x | (x << _U(2))) & _U(0x1249249249249249)
        return x
    raise ValueError(f"dim must be 2 or 3, got {dim}")


def morton(anchors: np.ndarray, dim: int) -> np.ndarray:
    """Interleaved Morton codes of anchor coordinates (shape (..., dim))."""
    anchors = np.asarray(anchors, dtype=np.int64)
    if anchors.shape[-1] != dim:
        raise ValueError(f"anchors last axis {anchors.shape[-1]} != dim {dim}")
    if np.any(anchors < 0) or np.any(anchors >= (1 << MAX_DEPTH)):
        raise ValueError("anchor coordinates out of domain")
    out = np.zeros(anchors.shape[:-1], dtype=_U)
    for axis in range(dim):
        out |= _dilate(anchors[..., axis].astype(_U), dim) << _U(axis)
    return out


def keys(anchors: np.ndarray, levels: np.ndarray, dim: int) -> np.ndarray:
    """Pre-order SFC keys: ``(morton(anchor) << LEVEL_BITS) | level``."""
    levels = np.asarray(levels, dtype=np.int64)
    if np.any(levels < 0) or np.any(levels > MAX_DEPTH):
        raise ValueError("levels out of range")
    m = morton(anchors, dim)
    return (m << _U(LEVEL_BITS)) | levels.astype(_U)


def point_keys(points: np.ndarray, dim: int) -> np.ndarray:
    """Keys of grid points treated as octants at MAX_DEPTH (for point location)."""
    return keys(points, np.full(np.asarray(points).shape[:-1], MAX_DEPTH), dim)


def is_ancestor(a_anchor, a_level, b_anchor, b_level, strict: bool = False):
    """Elementwise test: is octant *a* an ancestor of octant *b*?

    With ``strict=False``, an octant counts as its own ancestor.
    """
    a_anchor = np.asarray(a_anchor, dtype=np.int64)
    b_anchor = np.asarray(b_anchor, dtype=np.int64)
    a_level = np.asarray(a_level, dtype=np.int64)
    b_level = np.asarray(b_level, dtype=np.int64)
    size_a = cell_size(a_level)
    trunc = b_anchor & ~(size_a - 1)[..., None]
    contained = np.all(trunc == a_anchor, axis=-1)
    if strict:
        return contained & (a_level < b_level)
    return contained & (a_level <= b_level)


def overlaps(a_anchor, a_level, b_anchor, b_level):
    """Elementwise test: do the two octants overlap (one is an ancestor of the other)?"""
    return is_ancestor(a_anchor, a_level, b_anchor, b_level) | is_ancestor(
        b_anchor, b_level, a_anchor, a_level
    )


def parent(anchors, levels):
    """Parent octants. Level-0 input raises."""
    anchors = np.asarray(anchors, dtype=np.int64)
    levels = np.asarray(levels, dtype=np.int64)
    if np.any(levels < 1):
        raise ValueError("root has no parent")
    psize = cell_size(levels - 1)
    return anchors & ~(psize - 1)[..., None], levels - 1


def children(anchors, levels, dim: int):
    """All ``2**dim`` children of each octant, in Morton order.

    Returns ``(child_anchors, child_levels)`` with shapes ``(..., 2**dim, dim)``
    and ``(..., 2**dim)``.
    """
    anchors = np.asarray(anchors, dtype=np.int64)
    levels = np.asarray(levels, dtype=np.int64)
    if np.any(levels >= MAX_DEPTH):
        raise ValueError("cannot refine past MAX_DEPTH")
    half = cell_size(levels + 1)  # child size
    nchild = 1 << dim
    offsets = np.zeros((nchild, dim), dtype=np.int64)
    for c in range(nchild):
        for axis in range(dim):
            offsets[c, axis] = (c >> axis) & 1
    child_anchors = anchors[..., None, :] + offsets * half[..., None, None]
    child_levels = np.broadcast_to(
        (levels + 1)[..., None], levels.shape + (nchild,)
    ).copy()
    return child_anchors, child_levels


def descendant_key_range(anchors, levels, dim: int):
    """Half-open key interval ``[lo, hi)`` containing exactly the keys of all
    descendants (self included) of each octant.

    Any octant *x* satisfies ``lo <= key(x) < hi`` iff the octant is a
    descendant-or-self.  Used for binary-search-based overlap queries.
    """
    anchors = np.asarray(anchors, dtype=np.int64)
    levels = np.asarray(levels, dtype=np.int64)
    m = morton(anchors, dim)
    span = (_U(1) << ((MAX_DEPTH - levels).astype(_U) * _U(dim)))
    lo = (m << _U(LEVEL_BITS)) | levels.astype(_U)
    hi = (m + span) << _U(LEVEL_BITS)
    return lo, hi


def decode_key(key: np.ndarray, dim: int):
    """Inverse of :func:`keys`: recover ``(anchors, levels)``."""
    key = np.asarray(key, dtype=_U)
    levels = (key & _U((1 << LEVEL_BITS) - 1)).astype(np.int64)
    m = key >> _U(LEVEL_BITS)
    anchors = np.zeros(key.shape + (dim,), dtype=np.int64)
    for axis in range(dim):
        anchors[..., axis] = _contract(m >> _U(axis), dim)
    return anchors, levels


def _contract(x: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`_dilate`."""
    x = x.astype(_U)
    if dim == 2:
        x &= _U(0x5555555555555555)
        x = (x | (x >> _U(1))) & _U(0x3333333333333333)
        x = (x | (x >> _U(2))) & _U(0x0F0F0F0F0F0F0F0F)
        x = (x | (x >> _U(4))) & _U(0x00FF00FF00FF00FF)
        x = (x | (x >> _U(8))) & _U(0x0000FFFF0000FFFF)
        x = (x | (x >> _U(16))) & _U(0x00000000FFFFFFFF)
        return x.astype(np.int64)
    if dim == 3:
        x &= _U(0x1249249249249249)
        x = (x | (x >> _U(2))) & _U(0x10C30C30C30C30C3)
        x = (x | (x >> _U(4))) & _U(0x100F00F00F00F00F)
        x = (x | (x >> _U(8))) & _U(0x1F0000FF0000FF)
        x = (x | (x >> _U(16))) & _U(0x1F00000000FFFF)
        x = (x | (x >> _U(32))) & _U(0x00000000001FFFFF)
        return x.astype(np.int64)
    raise ValueError(f"dim must be 2 or 3, got {dim}")


def child_index(anchors, levels, dim: int):
    """Morton child index (0 .. 2**dim - 1) of each octant within its parent."""
    anchors = np.asarray(anchors, dtype=np.int64)
    levels = np.asarray(levels, dtype=np.int64)
    size = cell_size(levels)
    idx = np.zeros(levels.shape, dtype=np.int64)
    for axis in range(dim):
        bit = (anchors[..., axis] // size) & 1
        idx |= bit << axis
    return idx


def coarsen_anchor(anchors, from_levels, to_levels):
    """Anchor of the ancestor of each octant at the (coarser) ``to_levels``."""
    anchors = np.asarray(anchors, dtype=np.int64)
    size = cell_size(to_levels)
    return anchors & ~(size - 1)[..., None]
