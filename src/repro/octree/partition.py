"""SFC-based partitioning of distributed linear octrees.

A distributed octree assigns each rank a contiguous chunk of the globally
SFC-sorted leaf list.  Partitioning supports per-leaf weights so remeshing
can rebalance element work (the paper treats load balancing as its own step
after coarsening and 2:1 balance restoration).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..mpi.comm import Comm
from ..mpi.sort import kway_sort
from . import morton
from .tree import Octree


def scatter_tree(tree: Octree, nparts: int) -> list[Octree]:
    """Split a (sorted, linear) tree into ``nparts`` contiguous chunks —
    utility for setting up distributed tests and benchmarks."""
    bounds = np.linspace(0, len(tree), nparts + 1).astype(np.int64)
    return [
        Octree(
            tree.anchors[bounds[r] : bounds[r + 1]],
            tree.levels[bounds[r] : bounds[r + 1]],
            tree.dim,
            presorted=True,
        )
        for r in range(nparts)
    ]


def gather_tree(comm: Comm, local: Octree) -> Octree:
    """Allgather a distributed tree into a full copy on every rank."""
    parts = comm.allgather((local.anchors, local.levels))
    anchors = np.concatenate([p[0] for p in parts])
    levels = np.concatenate([p[1] for p in parts])
    return Octree(anchors, levels, local.dim, presorted=True)


def repartition(
    comm: Comm,
    local: Octree,
    weights: Optional[np.ndarray] = None,
    payload: Optional[np.ndarray] = None,
):
    """Repartition a distributed sorted octree to balance (weighted) load.

    Preserves global SFC order.  Returns the new local tree (and payload).
    """
    n = len(local)
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    local_tot = float(w.sum())
    prefix = comm.exscan(local_tot)
    prefix = 0.0 if prefix is None else prefix
    total = comm.allreduce(local_tot)
    if total <= 0:
        total = 1.0
    # Destination rank by cumulative weight midpoint.
    cum = prefix + np.cumsum(w) - 0.5 * w
    dest = np.minimum((cum / total * comm.size).astype(np.int64), comm.size - 1)
    keys = local.keys()
    sends_k = [keys[dest == r] for r in range(comm.size)]
    recv_k = np.concatenate(comm.alltoallv(sends_k))
    anchors, levels = morton.decode_key(recv_k, local.dim)
    out = Octree(anchors, levels, local.dim, presorted=True)
    if payload is not None:
        sends_p = [payload[dest == r] for r in range(comm.size)]
        recv_p = np.concatenate(comm.alltoallv(sends_p))
        return out, recv_p
    return out


def distributed_sort_tree(
    comm: Comm, local: Octree, payload: Optional[np.ndarray] = None, *, k: int = 128
):
    """Globally sort an arbitrarily scattered octant multiset (hierarchical
    k-way staged sort, paper Sec. II-C3a) and return the local sorted chunk."""
    keys = local.keys()
    if payload is not None:
        skeys, spayload = kway_sort(comm, keys, payload, k=k)
    else:
        skeys = kway_sort(comm, keys, k=k)
    anchors, levels = morton.decode_key(skeys, local.dim)
    out = Octree(anchors, levels, local.dim, presorted=True)
    if payload is not None:
        return out, spayload
    return out


def partition_endpoints(comm: Comm, local: Octree):
    """Arrays of every rank's first/last octants (``G^-``, ``G^+`` of the
    paper's overlap search).  Empty ranks contribute ``None``."""
    first = (
        (local.anchors[0].copy(), int(local.levels[0])) if len(local) else None
    )
    last = (
        (local.anchors[-1].copy(), int(local.levels[-1])) if len(local) else None
    )
    eps = comm.allgather((first, last))
    return [e[0] for e in eps], [e[1] for e in eps]
