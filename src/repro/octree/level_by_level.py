"""Level-by-level refinement/coarsening baselines.

The paper's contribution #2 is multi-level refinement and coarsening in a
*single pass*; existing frameworks (p4est-style AMR drivers and the works
cited as [10-15]) change the mesh one level per pass, rebuilding intermediate
grids.  These baselines implement that prior-art protocol faithfully —
repeated single-level sweeps, each followed by re-linearization, exactly as a
framework constrained to ±1 level per adaptation step would run — so the
ablation benchmark can compare cost at equal results.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .coarsen import coarsen
from .domain import Domain
from .refine import refine
from .tree import Octree


def refine_level_by_level(
    tree: Octree,
    target_levels: np.ndarray,
    *,
    domain: Optional[Domain] = None,
):
    """Reach per-leaf targets one level per pass (prior-art baseline).

    Returns ``(tree, n_passes)``.  Each pass refines every leaf still above
    its target by exactly one level, then carries the targets to the children
    (one intermediate grid per level of depth change).
    """
    target_levels = np.asarray(target_levels, dtype=np.int64)
    if np.any(target_levels < tree.levels):
        raise ValueError("refine cannot coarsen")
    current = tree
    targets = target_levels
    passes = 0
    while np.any(targets > current.levels):
        step = np.minimum(targets, current.levels + 1)
        nxt = refine(current, step, domain=domain)
        # Re-derive targets for the new leaves (the intermediate-grid cost
        # the paper's single-pass algorithm avoids).
        orig = current.locate_points(nxt.centers().astype(np.int64))
        targets = np.maximum(targets[orig], nxt.levels)
        current = nxt
        passes += 1
    return current, passes


def coarsen_level_by_level(tree: Octree, votes: np.ndarray):
    """Reach per-leaf coarsening votes one level per pass.

    Returns ``(tree, n_passes)``.  Each pass promotes families by at most one
    level (votes clamped to ``level - 1``), then votes are re-derived on the
    surviving leaves.
    """
    votes = np.asarray(votes, dtype=np.int64)
    if np.any(votes > tree.levels):
        raise ValueError("votes must be at or coarser than current levels")
    current = tree
    cur_votes = votes
    passes = 0
    while True:
        step = np.maximum(cur_votes, current.levels - 1)
        nxt = coarsen(current, step)
        passes += 1
        if len(nxt) == len(current):
            # One extra fixed-point check pass, as a real driver would run.
            return nxt, passes
        # A new coarse leaf inherits the max (finest-constraint) vote over
        # the leaves it replaced: one dissenting descendant must keep
        # blocking deeper promotion, exactly as in the single-pass consensus.
        into = nxt.locate_points(current.centers().astype(np.int64))
        merged_votes = np.full(len(nxt), -1, dtype=np.int64)
        np.maximum.at(merged_votes, into, cur_votes)
        merged_votes = np.minimum(merged_votes, nxt.levels)
        current, cur_votes = nxt, merged_votes
