"""Distributed 2:1 balance restoration.

After parallel refinement or coarsening, the 2:1 condition must be restored
across rank boundaries (paper Sec. II-C1a: "once the refinement is
completed, the 2:1-balance condition must be restored").  The algorithm here
iterates to a global fixed point:

1. each rank ripple-balances its local (incomplete) chunk;
2. leaves whose balance stencil reaches outside the local chunk route their
   sample points to the owning rank (found from allgathered partition
   endpoint ranges) via the NBX sparse exchange; owners reply with the level
   of the containing leaf;
3. local leaves more than one level coarser than a remote neighbor are
   refined (multi-level, directly to the required level);
4. an allreduce detects global convergence.

Levels only increase and are bounded, so termination is guaranteed; the
result equals the serial balance of the gathered tree (tested property).
"""

from __future__ import annotations

import numpy as np

from ..mpi.comm import Comm
from ..mpi.sparse_exchange import nbx_exchange
from . import morton
from .balance import balance
from .neighbors import neighbor_sample_points
from .refine import refine
from .tree import Octree

_MAX_ROUNDS = 64


def _owner_of_points(points: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Rank owning each grid point, from the allgathered first-key table."""
    keys = morton.point_keys(points, points.shape[-1])
    return np.maximum(np.searchsorted(starts, keys, side="right") - 1, 0)


def par_balance(comm: Comm, local: Octree) -> Octree:
    """Restore global 2:1 balance on an SFC-partitioned linear octree."""
    dim = local.dim
    current = local

    for _ in range(_MAX_ROUNDS):
        current = balance(current)  # local pass (incomplete chunk)

        # Partition table: first key per rank (empty ranks excluded).
        first = current.keys()[0] if len(current) else None
        firsts = comm.allgather(first)
        owners = [r for r, f in enumerate(firsts) if f is not None]
        starts = np.array(
            [firsts[r] for r in owners], dtype=np.uint64
        )

        # Sample points outside my coverage -> query their owners.
        if len(current):
            pts, inside = neighbor_sample_points(
                current.anchors, current.levels, dim
            )
            flat = pts.reshape(-1, dim)
            ok = inside.reshape(-1)
            located = np.full(len(flat), -1, dtype=np.int64)
            if np.any(ok):
                located[ok] = current.locate_points(flat[ok])
            remote_sel = ok & (located < 0)
            remote_pts = flat[remote_sel]
            # Level each remote point must satisfy: my leaf level - 1.
            need = np.repeat(
                current.levels, pts.shape[1]
            )[remote_sel] - 1
        else:
            remote_pts = np.zeros((0, dim), np.int64)
            need = np.zeros(0, np.int64)

        outgoing = {}
        if len(remote_pts):
            dest = np.array(owners)[
                _owner_of_points(remote_pts, starts)
            ]
            for q in np.unique(dest):
                if q == comm.rank:
                    continue
                sel = dest == q
                outgoing[int(q)] = (remote_pts[sel], need[sel])
        incoming = nbx_exchange(comm, outgoing)

        # Serve queries: refine my leaves that violate a remote requirement,
        # by at most one level per round (minimal +1 ripple, matching the
        # serial balance closure).
        targets = current.levels.copy()
        # Sorted by querying rank (spmdlint R2): keeps the update order
        # rank-deterministic even though `maximum` happens to commute.
        for _, (qpts, qneed) in sorted(incoming.items()):
            if not len(current):
                continue
            idx = current.locate_points(qpts)
            hit = idx >= 0
            if np.any(hit):
                np.maximum.at(targets, idx[hit], qneed[hit])
        targets = np.minimum(targets, current.levels + 1)
        changed = int(np.sum(targets > current.levels))
        if changed:
            current = refine(current, targets)
        total_changed = comm.allreduce(changed)
        if total_changed == 0:
            return current

    raise RuntimeError("par_balance did not converge")  # pragma: no cover
