"""Neighbor queries on linear octrees.

Octrees store no explicit neighbor pointers (the paper stresses that its
algorithms avoid neighbor data structures); everything here reduces to point
location via binary search on SFC keys.
"""

from __future__ import annotations

import numpy as np

from . import morton
from .tree import Octree


def direction_stencil(dim: int) -> np.ndarray:
    """All ``3**dim - 1`` direction vectors in {-1, 0, 1}**dim, excluding 0."""
    grids = np.meshgrid(*([np.array([-1, 0, 1])] * dim), indexing="ij")
    dirs = np.stack([g.ravel() for g in grids], axis=1)
    return dirs[np.any(dirs != 0, axis=1)]


def neighbor_sample_points(anchors: np.ndarray, levels: np.ndarray, dim: int):
    """Sample points just outside each octant, one per direction.

    Returns ``points`` of shape ``(n, 3**dim - 1, dim)`` and a boolean
    ``inside`` mask marking points that fall inside the root cube.  The point
    for direction ``d`` sits one grid unit outside the octant across the
    middle of the corresponding face / edge / corner; by the octant-alignment
    covering property, the leaf containing this point is coarser-or-equal to
    *every* leaf touching the octant across that face / edge / corner, so a
    single sample per direction suffices for 2:1-balance checks.
    """
    anchors = np.asarray(anchors, dtype=np.int64)
    levels = np.asarray(levels, dtype=np.int64)
    size = morton.cell_size(levels)
    dirs = direction_stencil(dim)  # (m, dim)
    # coordinate per axis: -1 -> anchor-1 ; 0 -> anchor + size//2 ; 1 -> anchor+size
    lo = anchors[:, None, :] - 1
    mid = anchors[:, None, :] + (size[:, None, None] // 2)
    hi = anchors[:, None, :] + size[:, None, None]
    d = dirs[None, :, :]
    points = np.where(d < 0, lo, np.where(d == 0, mid, hi))
    bound = 1 << morton.MAX_DEPTH
    inside = np.all((points >= 0) & (points < bound), axis=-1)
    return points, inside


def leaf_neighbors(tree: Octree, indices: np.ndarray | None = None):
    """For each leaf (or subset), the index of the leaf containing each
    directional sample point (-1 where outside the root cube or uncovered).

    Returns an ``(n, 3**dim - 1)`` array of leaf indices.
    """
    if indices is None:
        anchors, levels = tree.anchors, tree.levels
    else:
        anchors, levels = tree.anchors[indices], tree.levels[indices]
    points, inside = neighbor_sample_points(anchors, levels, tree.dim)
    flat = points.reshape(-1, tree.dim)
    ok = inside.reshape(-1)
    out = np.full(len(flat), -1, dtype=np.int64)
    if np.any(ok):
        out[ok] = tree.locate_points(flat[ok])
    return out.reshape(points.shape[:2])


def face_neighbor_anchors(anchors, levels, dim: int):
    """Same-level face-neighbor anchors, shape ``(n, 2*dim, dim)``, plus an
    ``inside`` root-cube mask ``(n, 2*dim)``."""
    anchors = np.asarray(anchors, dtype=np.int64)
    levels = np.asarray(levels, dtype=np.int64)
    size = morton.cell_size(levels)
    n = len(levels)
    out = np.repeat(anchors[:, None, :], 2 * dim, axis=1)
    for axis in range(dim):
        out[:, 2 * axis, axis] -= size
        out[:, 2 * axis + 1, axis] += size
    bound = 1 << morton.MAX_DEPTH
    inside = np.all((out >= 0) & (out < bound), axis=-1)
    return out, inside
