"""Overlap/rank search over two leaf sets (paper Sec. II-C2c/d).

The paper extends the total order on octants to a total *quasiorder* over
"overlap regions": for leaves x, y from two grids, ``x ⌢ y`` (equivalent)
iff they overlap (one is an ancestor of the other), and ``x ⊑ y`` iff
``x < y`` in SFC order or ``x ⌢ y``.  Rank functions over ``⊑`` are
non-decreasing on sorted leaf sets, so binary search finds which remote
partitions overlap a local interval using only partition endpoints:

    interval G_p^-..G_p^+ intersects H_q^-..H_q^+
        iff  G_p^- ⊑ H_q^+  and  H_q^- ⊑ G_p^+

All functions take octants as ``(anchor, level)`` pairs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from . import morton
from .tree import Octree

Oct = tuple  # (anchor ndarray, level int)


def sq_below(a: Oct, b: Oct, dim: int) -> bool:
    """``a ⊑ b``: a precedes b in SFC order, or a and b overlap."""
    ka = morton.keys(np.asarray(a[0])[None], np.asarray([a[1]]), dim)[0]
    kb = morton.keys(np.asarray(b[0])[None], np.asarray([b[1]]), dim)[0]
    if ka <= kb:
        return True
    return bool(morton.overlaps(np.asarray(a[0]), a[1], np.asarray(b[0]), b[1]))


def intervals_intersect(
    g_lo: Oct, g_hi: Oct, h_lo: Oct, h_hi: Oct, dim: int
) -> bool:
    """Do the overlap-region intervals of two partitions intersect?"""
    return sq_below(g_lo, h_hi, dim) and sq_below(h_lo, g_hi, dim)


def overlapping_ranks(
    my_lo: Optional[Oct],
    my_hi: Optional[Oct],
    lows: Sequence[Optional[Oct]],
    highs: Sequence[Optional[Oct]],
    dim: int,
) -> list[int]:
    """Ranks q of grid H whose interval intersects my interval of grid G.

    ``lows``/``highs`` are the allgathered partition endpoints of H (``None``
    for empty ranks).  Uses only endpoints, so every process detects the same
    intersections (the paper's consistency requirement).
    """
    if my_lo is None or my_hi is None:
        return []
    out = []
    for q, (lo, hi) in enumerate(zip(lows, highs)):
        if lo is None or hi is None:
            continue
        if intervals_intersect(my_lo, my_hi, lo, hi, dim):
            out.append(q)
    return out


def overlapping_ranks_bsearch(
    my_lo: Optional[Oct],
    my_hi: Optional[Oct],
    lows: Sequence[Optional[Oct]],
    highs: Sequence[Optional[Oct]],
    dim: int,
) -> list[int]:
    """Binary-search formulation: ``rank_{H^+ ⊏}(G_p^-) <= q <
    rank_{H^- ⊑}(G_p^+)`` (paper Sec. II-C2d).  Empty ranks are skipped.

    Equivalent to :func:`overlapping_ranks`; kept separate because the tests
    verify the equivalence (the proofs in the paper hinge on it).
    """
    if my_lo is None or my_hi is None:
        return []
    idx = [q for q, (lo, hi) in enumerate(zip(lows, highs)) if lo is not None]
    if not idx:
        return []
    his = [highs[q] for q in idx]
    los = [lows[q] for q in idx]
    # first q such that NOT (H_q^+ ⊏ G_p^-)  i.e.  G_p^- ⊑ H_q^+
    lo_i = _lower_bound(his, lambda h: not sq_below(my_lo, h, dim))
    # first q such that NOT (H_q^- ⊑ G_p^+)
    hi_i = _lower_bound(los, lambda l: sq_below(l, my_hi, dim))
    return [idx[i] for i in range(lo_i, hi_i)]


def _lower_bound(items, pred) -> int:
    """First index where ``pred(items[i])`` is False (pred is monotone
    True...True False...False)."""
    lo, hi = 0, len(items)
    while lo < hi:
        mid = (lo + hi) // 2
        if pred(items[mid]):
            lo = mid + 1
        else:
            hi = mid
    return lo


def local_overlap_range(tree: Octree, q_anchor, q_level) -> tuple[int, int]:
    """Half-open index range of local leaves overlapping the query octant.

    In a linear tree the overlapping leaves are contiguous: the descendants
    of the query (a key range) plus at most one ancestor (the leaf containing
    the query's anchor).
    """
    if len(tree) == 0:
        return (0, 0)
    q_anchor = np.asarray(q_anchor, dtype=np.int64)
    lo, hi = morton.descendant_key_range(
        q_anchor[None], np.asarray([q_level]), tree.dim
    )
    k = tree.keys()
    start = int(np.searchsorted(k, lo[0]))
    end = int(np.searchsorted(k, hi[0]))
    if start > 0:
        prev = start - 1
        if morton.is_ancestor(
            tree.anchors[prev], tree.levels[prev], q_anchor, q_level
        ):
            start = prev
    return (start, max(end, start))


def local_overlap_range_interval(
    tree: Octree, first: Oct, last: Oct
) -> tuple[int, int]:
    """Index range of local leaves overlapping any octant in the remote
    SFC-interval ``[first, last]`` (used by inter-grid transfer)."""
    s1, _ = local_overlap_range(tree, first[0], first[1])
    _, e2 = local_overlap_range(tree, last[0], last[1])
    # Leaves strictly between the two endpoints in SFC order also overlap the
    # interval (they lie inside it).
    return (s1, max(e2, s1))
