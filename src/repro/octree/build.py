"""Octree construction.

Trees are grown top-down from a refinement predicate (e.g. "refine while the
diffuse interface crosses this octant"), optionally restricted to a carved
:class:`~repro.octree.domain.Domain` — void octants are discarded as they are
produced, yielding an incomplete octree exactly as in the paper.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from . import morton
from .domain import Domain
from .tree import Octree

RefinePredicate = Callable[[np.ndarray, np.ndarray], np.ndarray]
"""Maps (anchors (n, dim), levels (n,)) -> bool mask: True = subdivide."""


def build_tree(
    dim: int,
    refine: RefinePredicate,
    *,
    max_level: int,
    min_level: int = 0,
    domain: Optional[Domain] = None,
) -> Octree:
    """Grow a linear octree from the root.

    Every octant below ``min_level`` is always subdivided; octants at
    ``max_level`` never are.  ``refine`` decides everything in between.
    Void octants (per ``domain``) are discarded.
    """
    if not 0 <= min_level <= max_level <= morton.MAX_DEPTH:
        raise ValueError("bad level bounds")
    anchors = np.zeros((1, dim), dtype=np.int64)
    levels = np.zeros(1, dtype=np.int64)
    done_a, done_l = [], []
    while len(levels):
        if domain is not None:
            keep = domain.retain(anchors, levels)
            anchors, levels = anchors[keep], levels[keep]
            if not len(levels):
                break
        want = refine(anchors, levels) if len(levels) else np.zeros(0, bool)
        want = np.asarray(want, dtype=bool) | (levels < min_level)
        want &= levels < max_level
        if np.any(~want):
            done_a.append(anchors[~want])
            done_l.append(levels[~want])
        if not np.any(want):
            break
        ca, cl = morton.children(anchors[want], levels[want], dim)
        anchors = ca.reshape(-1, dim)
        levels = cl.reshape(-1)
    if done_a:
        out = Octree(np.concatenate(done_a), np.concatenate(done_l), dim)
    else:
        out = Octree.empty(dim)
    return out


def uniform_tree(dim: int, level: int, domain: Optional[Domain] = None) -> Octree:
    """Complete uniform tree at the given level (restricted to ``domain``)."""

    def never(anchors, levels):
        return np.zeros(len(levels), dtype=bool)

    return build_tree(dim, never, max_level=level, min_level=level, domain=domain)


def tree_from_function(
    dim: int,
    field: Callable[[np.ndarray], np.ndarray],
    *,
    max_level: int,
    min_level: int = 2,
    threshold: float = 1.0,
    domain: Optional[Domain] = None,
) -> Octree:
    """Refine octants crossed by (or near) the zero set of ``field``.

    ``field`` takes unit-cube coordinates ``(n, dim)`` and returns ``(n,)``
    values; the canonical use is a phase field ``phi`` with ``|phi| < 1`` near
    the interface (the paper refines where ``|phi| < delta``).  An octant is
    subdivided when the field changes sign across its corners/center or any
    sample magnitude falls below ``threshold``.
    """
    scale = float(1 << morton.MAX_DEPTH)
    nc = 1 << dim
    corner_off = np.zeros((nc + 1, dim), dtype=np.float64)
    for c in range(nc):
        for axis in range(dim):
            corner_off[c, axis] = (c >> axis) & 1
    corner_off[nc] = 0.5  # center sample

    def pred(anchors, levels):
        size = morton.cell_size(levels).astype(np.float64)
        pts = (
            anchors[:, None, :].astype(np.float64)
            + corner_off[None, :, :] * size[:, None, None]
        ) / scale
        vals = np.asarray(field(pts.reshape(-1, dim))).reshape(len(levels), nc + 1)
        near = np.any(np.abs(vals) < threshold, axis=1)
        crossing = (vals.min(axis=1) < 0) & (vals.max(axis=1) > 0)
        return near | crossing

    return build_tree(
        dim, pred, max_level=max_level, min_level=min_level, domain=domain
    )


def tree_from_points(
    dim: int,
    points: np.ndarray,
    *,
    max_points_per_leaf: int = 8,
    max_level: int = morton.MAX_DEPTH,
    min_level: int = 0,
) -> Octree:
    """Refine until no leaf holds more than ``max_points_per_leaf`` samples.

    ``points`` are unit-cube coordinates (n, dim) — e.g. Lagrangian droplet
    seeds or sensor locations.  The classic point-octree construction used to
    initialize particle-laden configurations.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != dim:
        raise ValueError("points must have shape (n, dim)")
    if np.any(points < 0) or np.any(points >= 1):
        raise ValueError("points must lie in [0, 1)")
    grid = (points * (1 << morton.MAX_DEPTH)).astype(np.int64)

    def pred(anchors, levels):
        lo, hi = morton.descendant_key_range(anchors, levels, dim)
        pk = np.sort(morton.point_keys(grid, dim))
        counts = np.searchsorted(pk, hi) - np.searchsorted(pk, lo)
        return counts > max_points_per_leaf

    return build_tree(dim, pred, max_level=max_level, min_level=min_level)


def complete_region(
    a_anchor, a_level: int, b_anchor, b_level: int, dim: int
) -> Octree:
    """Minimal complete linear octree covering the SFC range between two
    octants ``a < b`` (exclusive of a and b themselves) — the p4est-style
    ``complete_region`` primitive used when constructing complete trees from
    scattered seeds."""
    a_anchor = np.asarray(a_anchor, dtype=np.int64)
    b_anchor = np.asarray(b_anchor, dtype=np.int64)
    ka = morton.keys(a_anchor[None], np.asarray([a_level]), dim)[0]
    kb = morton.keys(b_anchor[None], np.asarray([b_level]), dim)[0]
    if not ka < kb:
        raise ValueError("need a < b in SFC order")
    out_a, out_l = [], []

    def visit(anchor, level):
        k = morton.keys(anchor[None], np.asarray([level]), dim)[0]
        lo, hi = morton.descendant_key_range(anchor[None], np.asarray([level]), dim)
        # Entirely outside the open interval (a, b)?
        if hi[0] <= ka or k >= kb:
            return
        # Inside an endpoint (exclusive): nothing to emit there.
        if morton.is_ancestor(a_anchor, a_level, anchor, level) or morton.is_ancestor(
            b_anchor, b_level, anchor, level
        ):
            return
        # Strict ancestor of an endpoint: must descend to carve around it.
        anc_a = bool(morton.is_ancestor(anchor, level, a_anchor, a_level, strict=True))
        anc_b = bool(morton.is_ancestor(anchor, level, b_anchor, b_level, strict=True))
        if not anc_a and not anc_b:
            if k > ka:
                out_a.append(anchor.copy())
                out_l.append(level)
            return
        ca, cl = morton.children(anchor, np.int64(level), dim)
        for c in range(1 << dim):
            visit(ca[c], int(cl[c]))

    visit(np.zeros(dim, dtype=np.int64), 0)
    if not out_a:
        return Octree.empty(dim)
    return Octree(np.stack(out_a), np.asarray(out_l), dim, presorted=True)
