"""Simulated MPI substrate: SPMD threads, collectives, sparse exchange."""

from .comm import ANY_SOURCE, ANY_TAG, Comm, SpmdError, run_spmd  # noqa: F401
from .sort import kway_sort, partition_balanced, sample_sort  # noqa: F401
from .sparse_exchange import dense_exchange, nbx_exchange  # noqa: F401
from .stats import CommStats  # noqa: F401
