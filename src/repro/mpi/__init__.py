"""Simulated MPI substrate: SPMD ranks, collectives, sparse exchange.

Rank execution is pluggable (thread / process / serial) — see
:mod:`repro.runtime`.
"""

from .comm import ANY_SOURCE, ANY_TAG, Comm, SpmdError, run_spmd  # noqa: F401
from .sort import kway_sort, partition_balanced, sample_sort  # noqa: F401
from .sparse_exchange import dense_exchange, nbx_exchange  # noqa: F401
from .stats import CommStats, SharedCommStats  # noqa: F401
