"""Dynamic sparse data exchange.

The paper (Sec. II-C3c) replaced a raw ``MPI_Alltoall`` used to route nodes
back to their originating processes with the NBX algorithm of Hoefler,
Siebert & Lumsdaine ("Scalable communication protocols for dynamic sparse
data exchange", PPoPP 2010), eliminating the Omega(p) collective that blew up
15x between 28K and 56K cores.

Both the dense baseline and NBX are implemented here so the benchmark
(`benchmarks/bench_nbx_vs_alltoall.py`) can compare their communication
volumes directly.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from .comm import ANY_SOURCE, ANY_TAG, Comm

_NBX_TAG = 7_771


def dense_exchange(comm: Comm, outgoing: Mapping[int, Any]) -> dict[int, Any]:
    """Baseline: obtain receive counts with a dense all-to-all, then exchange.

    Models the paper's original implementation: every rank contributes a
    length-``p`` count vector regardless of how sparse the pattern is.
    """
    counts = [1 if dest in outgoing else 0 for dest in range(comm.size)]
    recv_counts = comm.alltoall(counts)
    # Sorted so message issue order is rank-deterministic (spmdlint R2):
    # callers build `outgoing` in discovery order, which can differ run to
    # run, and matched receives below key on the source rank.
    for dest, payload in sorted(outgoing.items()):
        comm.send(payload, dest, tag=_NBX_TAG)
    received: dict[int, Any] = {}
    for src, cnt in enumerate(recv_counts):
        for _ in range(cnt):
            received[src] = comm.recv(src, tag=_NBX_TAG)
    return received


def nbx_exchange(comm: Comm, outgoing: Mapping[int, Any]) -> dict[int, Any]:
    """NBX: non-blocking consensus sparse exchange.

    Each rank sends its messages, then enters a non-blocking barrier once its
    sends are done; it keeps receiving until the barrier completes, at which
    point every message in flight has been delivered.  No Omega(p) primitive
    is involved — communication is proportional to the actual sparsity.
    """
    # Epoch separation: successive NBX calls are collective and in lockstep,
    # so a per-comm call counter gives every call a distinct tag and ibarrier
    # key; without this, a fast rank's next exchange would bleed into a slow
    # rank's current drain loop.
    comm._nbx_seq = getattr(comm, "_nbx_seq", 0) + 1
    key = ("nbx", comm._nbx_seq)
    tag = _NBX_TAG + comm._nbx_seq
    # Sorted for deterministic issue order (spmdlint R2), like dense_exchange.
    for dest, payload in sorted(outgoing.items()):
        comm.send(payload, dest, tag=tag)
    # In real NBX the barrier is entered after local sends complete
    # (synchronous sends confirm delivery); our in-process transport delivers
    # eagerly, so sends are complete here by construction.
    bar = comm.ibarrier(key=key)
    received: dict[int, Any] = {}
    while True:
        status = comm.iprobe(ANY_SOURCE, tag)
        if status is not None:
            src, _ = status
            received[src] = comm.recv(src, tag=tag)
            continue
        if bar.done():
            # Drain anything that raced the barrier completion.
            status = comm.iprobe(ANY_SOURCE, tag)
            if status is None:
                break
        else:
            time.sleep(0)  # yield to other rank threads
    return received
