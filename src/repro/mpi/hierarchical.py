"""Hierarchical k-way communicator staging (paper Sec. II-C3a/b).

Distributed octree sort uses a staged k-way exchange: the process set is
recursively divided into at most ``k`` superpartitions per stage, giving
``O(log_k p)`` stages, splitter storage ``O(k)`` instead of ``O(p)``, and
Allreduce traffic ``O(k log_k p)``.  Splitting a communicator is expensive,
and the split arguments do not depend on the data, so the sequence of
sub-communicators is *memoized* on the root communicator (the paper uses an
MPI attribute cache) — later sorts reuse it without extra splits.
"""

from __future__ import annotations

from .comm import Comm


def kway_stage_comms(comm: Comm, k: int) -> list[tuple[Comm, int, int]]:
    """The memoized ladder of stage communicators for a k-way exchange.

    Returns a list of ``(stage_comm, group_index, ngroups)``: at each stage
    the current communicator's ranks are divided into ``ngroups <= k``
    contiguous blocks; ``group_index`` is this rank's block and
    ``stage_comm`` is the communicator *within* the block for the next stage.
    The ladder stops when the block fits within ``k`` ranks.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    cached = comm.get_attr(("kway_ladder", k, comm.rank))
    if cached is not None:  # spmdlint: ignore[R7] -- hit/miss is collectively consistent: the cache is only populated after every rank of `comm` ran the full (collective) ladder build below, so all ranks take the same arm
        return cached
    ladder: list[tuple[Comm, int, int]] = []
    cur = comm
    depth = 0
    while cur.size > k:  # spmdlint: ignore[R7] -- every rank of `cur` sees the same cur.size, so the ladder descends the same number of stages on all ranks
        ngroups = k  # k-way: k superpartitions per stage (cur.size > k here)
        # Contiguous blocks of near-equal size.
        base = cur.size // ngroups
        extra = cur.size % ngroups
        # Rank r belongs to the block found by inverting the block sizes.
        bounds = []
        acc = 0
        for g in range(ngroups):
            acc += base + (1 if g < extra else 0)
            bounds.append(acc)
        group = next(g for g, b in enumerate(bounds) if cur.rank < b)
        sub = cur.split_cached(group, cur.rank, cache_tag=("kway", k, depth))  # spmdlint: ignore[R1] -- every rank of `cur` sees the same cur.size, so the ladder descends in lockstep: all members reach this collective split on every iteration
        ladder.append((sub, group, ngroups))
        cur = sub
        depth += 1
    comm.set_attr(("kway_ladder", k, comm.rank), ladder)
    return ladder
