"""Communication statistics.

Every simulated communicator records the traffic it generates.  These
counters are the raw input to the performance model (:mod:`repro.perf`) that
reproduces the paper's Frontera scaling figures: the simulator runs the real
SPMD algorithms at small rank counts and the model extrapolates using the
measured message counts and byte volumes.
"""

from __future__ import annotations

import pickle
import sys
import threading
import warnings
from dataclasses import dataclass, field

import numpy as np


def payload_bytes(obj) -> int:
    """Wire size of a message payload (ndarray fast path, pickle fallback).

    Scalar sizing is width-aware: NumPy scalars report their true itemsize
    (``np.float32`` is 4 bytes, not 8), booleans are 1 byte, and native
    Python int/float count as the 8-byte machine words MPI would ship.
    Unpicklable payloads fall back to a ``sys.getsizeof`` estimate with a
    warning — never a silent constant — so miscounted traffic is visible in
    the runs that feed the performance model.
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (tuple, list)) and all(
        isinstance(x, np.ndarray) for x in obj
    ):
        return sum(x.nbytes for x in obj)
    if isinstance(obj, np.generic):  # any NumPy scalar, incl. np.bool_
        return obj.nbytes
    if isinstance(obj, bool):  # before int: bool is a subclass
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if obj is None:
        return 0
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:
        size = sys.getsizeof(obj, 64)
        warnings.warn(
            f"payload_bytes: unpicklable payload {type(obj).__name__} "
            f"({exc!r}); estimating {size} bytes via sys.getsizeof",
            RuntimeWarning,
            stacklevel=2,
        )
        return size


@dataclass
class CommStats:
    """Per-world aggregate communication counters (thread-safe)."""

    messages: int = 0
    bytes_sent: int = 0
    collectives: int = 0
    collective_bytes: int = 0
    barriers: int = 0
    comm_splits: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_p2p(self, nbytes: int) -> None:
        with self._lock:
            self.messages += 1
            self.bytes_sent += nbytes

    def record_collective(self, nbytes: int) -> None:
        with self._lock:
            self.collectives += 1
            self.collective_bytes += nbytes

    def record_barrier(self) -> None:
        with self._lock:
            self.barriers += 1

    def record_split(self) -> None:
        with self._lock:
            self.comm_splits += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "messages": self.messages,
                "bytes_sent": self.bytes_sent,
                "collectives": self.collectives,
                "collective_bytes": self.collective_bytes,
                "barriers": self.barriers,
                "comm_splits": self.comm_splits,
            }

    def merge(self, snap: dict) -> None:
        """Fold another recorder's snapshot into these counters.

        Used by the process backend to aggregate the cross-process shared
        counters back into the caller's ``CommStats`` after a run."""
        with self._lock:
            self.messages += snap.get("messages", 0)
            self.bytes_sent += snap.get("bytes_sent", 0)
            self.collectives += snap.get("collectives", 0)
            self.collective_bytes += snap.get("collective_bytes", 0)
            self.barriers += snap.get("barriers", 0)
            self.comm_splits += snap.get("comm_splits", 0)


class SharedCommStats:
    """``CommStats``-compatible recorder over a ``multiprocessing.Array``.

    All rank processes of the process backend share one array, so
    ``comm.stats.snapshot()`` inside SPMD code sees the same global live
    totals a thread-backend run would.  Construct the array as
    ``ctx.Array("q", len(SharedCommStats.FIELDS), lock=True)``.
    """

    FIELDS = (
        "messages",
        "bytes_sent",
        "collectives",
        "collective_bytes",
        "barriers",
        "comm_splits",
    )

    def __init__(self, array) -> None:
        self._a = array

    def record_p2p(self, nbytes: int) -> None:
        with self._a.get_lock():
            self._a[0] += 1
            self._a[1] += nbytes

    def record_collective(self, nbytes: int) -> None:
        with self._a.get_lock():
            self._a[2] += 1
            self._a[3] += nbytes

    def record_barrier(self) -> None:
        with self._a.get_lock():
            self._a[4] += 1

    def record_split(self) -> None:
        with self._a.get_lock():
            self._a[5] += 1

    def snapshot(self) -> dict:
        with self._a.get_lock():
            return dict(zip(self.FIELDS, list(self._a)))
