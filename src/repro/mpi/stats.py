"""Communication statistics.

Every simulated communicator records the traffic it generates.  These
counters are the raw input to the performance model (:mod:`repro.perf`) that
reproduces the paper's Frontera scaling figures: the simulator runs the real
SPMD algorithms at small rank counts and the model extrapolates using the
measured message counts and byte volumes.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field

import numpy as np


def payload_bytes(obj) -> int:
    """Wire size of a message payload (ndarray fast path, pickle fallback)."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (tuple, list)) and all(
        isinstance(x, np.ndarray) for x in obj
    ):
        return sum(x.nbytes for x in obj)
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if obj is None:
        return 0
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - unpicklable sentinel objects
        return 64


@dataclass
class CommStats:
    """Per-world aggregate communication counters (thread-safe)."""

    messages: int = 0
    bytes_sent: int = 0
    collectives: int = 0
    collective_bytes: int = 0
    barriers: int = 0
    comm_splits: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_p2p(self, nbytes: int) -> None:
        with self._lock:
            self.messages += 1
            self.bytes_sent += nbytes

    def record_collective(self, nbytes: int) -> None:
        with self._lock:
            self.collectives += 1
            self.collective_bytes += nbytes

    def record_barrier(self) -> None:
        with self._lock:
            self.barriers += 1

    def record_split(self) -> None:
        with self._lock:
            self.comm_splits += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "messages": self.messages,
                "bytes_sent": self.bytes_sent,
                "collectives": self.collectives,
                "collective_bytes": self.collective_bytes,
                "barriers": self.barriers,
                "comm_splits": self.comm_splits,
            }
