"""In-process SPMD communicator.

The paper's algorithms are MPI programs.  This module provides a faithful
shared-nothing-in-spirit simulator: :func:`run_spmd` runs one OS thread per
rank, and each rank talks to the others only through a :class:`Comm` whose
semantics mirror mpi4py (``send/recv``, ``bcast``, ``allreduce``,
``alltoallv``, ``split`` with memoization, non-blocking probe/barrier for the
NBX sparse exchange).  All traffic is metered (:mod:`repro.mpi.stats`) so the
performance model can extrapolate to the paper's process counts.

Payloads are passed by reference for speed; SPMD code here follows the MPI
discipline of never mutating a buffer it has sent (the test-suite exercises
this contract).  NumPy arrays are the preferred payload, matching the mpi4py
guidance of buffer-based messaging for performance.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Optional, Sequence

import numpy as np

from .stats import CommStats, payload_bytes

ANY_SOURCE = -1
ANY_TAG = -1

_DEFAULT_TIMEOUT = 120.0


class SpmdError(RuntimeError):
    """Raised when any rank of an SPMD run fails or the run deadlocks."""


class _Mailbox:
    """Unordered-match message store for one destination rank."""

    def __init__(self) -> None:
        self._cv = threading.Condition()
        self._messages: list[tuple[int, int, Any]] = []

    def put(self, src: int, tag: int, payload: Any) -> None:
        with self._cv:
            self._messages.append((src, tag, payload))
            self._cv.notify_all()

    def _match(self, source: int, tag: int) -> Optional[int]:
        for i, (s, t, _) in enumerate(self._messages):
            if (source == ANY_SOURCE or s == source) and (tag == ANY_TAG or t == tag):
                return i
        return None

    def get(self, source: int, tag: int, timeout: float):
        with self._cv:
            deadline = None
            while True:
                i = self._match(source, tag)
                if i is not None:
                    return self._messages.pop(i)
                if deadline is None:
                    import time

                    deadline = time.monotonic() + timeout
                import time

                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SpmdError(
                        f"recv(source={source}, tag={tag}) timed out — deadlock?"
                    )
                self._cv.wait(remaining)

    def probe(self, source: int, tag: int) -> Optional[tuple[int, int]]:
        with self._cv:
            i = self._match(source, tag)
            if i is None:
                return None
            s, t, _ = self._messages[i]
            return (s, t)


class _CollectiveContext:
    """One reusable rendezvous slot per communicator.

    Ranks deposit contributions, synchronize on a barrier, read the combined
    result, and synchronize again before the slot is reused.  The double
    barrier makes back-to-back collectives safe.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.slots: list[Any] = [None] * size
        self.result: Any = None
        self.barrier = threading.Barrier(size)
        self.lock = threading.Lock()

    def exchange(self, rank: int, value: Any, combine: Callable[[list], Any]) -> Any:
        self.slots[rank] = value
        idx = self.barrier.wait()
        if idx == 0:
            self.result = combine(self.slots)
        self.barrier.wait()
        out = self.result
        idx = self.barrier.wait()
        if idx == 0:
            self.slots = [None] * self.size
            self.result = None
        self.barrier.wait()
        return out


class _World:
    """Shared state for one communicator (group of ranks)."""

    def __init__(self, size: int, stats: CommStats, timeout: float) -> None:
        self.size = size
        self.stats = stats
        self.timeout = timeout
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.collective = _CollectiveContext(size)
        self.split_lock = threading.Lock()
        self.split_cache: dict = {}
        self.attr_lock = threading.Lock()
        self.attrs: dict = {}
        self.ibarrier_lock = threading.Lock()
        self.ibarrier_counts: dict[int, int] = {}


class Request:
    """Completed-at-creation request handle (sends are eager)."""

    def __init__(self, result: Any = None) -> None:
        self._result = result

    def wait(self) -> Any:
        return self._result

    def test(self) -> tuple[bool, Any]:
        return True, self._result


class Comm:
    """Rank-local view of a simulated communicator."""

    def __init__(self, world: _World, rank: int) -> None:
        self._world = world
        self.rank = rank
        self.size = world.size

    # ------------------------------------------------------------------ p2p

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"bad dest {dest}")
        self._world.stats.record_p2p(payload_bytes(obj))
        self._world.mailboxes[dest].put(self.rank, tag, obj)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        _, _, payload = self._world.mailboxes[self.rank].get(
            source, tag, self._world.timeout
        )
        return payload

    def recv_with_status(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Like :meth:`recv` but returns ``(payload, source, tag)``."""
        s, t, payload = self._world.mailboxes[self.rank].get(
            source, tag, self._world.timeout
        )
        return payload, s, t

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return Request()

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Non-blocking probe; returns (source, tag) or None."""
        return self._world.mailboxes[self.rank].probe(source, tag)

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # ----------------------------------------------------------- collectives

    def barrier(self) -> None:
        self._world.stats.record_barrier()
        self._world.collective.exchange(self.rank, None, lambda xs: None)

    def ibarrier(self, key: int = 0) -> "_IBarrier":
        """Non-blocking barrier used by the NBX sparse exchange."""
        w = self._world
        with w.ibarrier_lock:
            w.ibarrier_counts[key] = w.ibarrier_counts.get(key, 0) + 1
        return _IBarrier(w, key)

    def _collective(self, value: Any, combine: Callable[[list], Any]) -> Any:
        self._world.stats.record_collective(payload_bytes(value))
        return self._world.collective.exchange(self.rank, value, combine)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return self._collective(
            obj if self.rank == root else None, lambda xs: xs[root]
        )

    def gather(self, obj: Any, root: int = 0) -> Optional[list]:
        all_ = self._collective(obj, list)
        return list(all_) if self.rank == root else None

    def allgather(self, obj: Any) -> list:
        return list(self._collective(obj, list))

    def scatter(self, objs: Optional[Sequence], root: int = 0) -> Any:
        all_ = self._collective(
            list(objs) if self.rank == root else None, lambda xs: xs[root]
        )
        return all_[self.rank]

    def reduce(self, obj: Any, op: Callable = None, root: int = 0) -> Any:
        out = self.allreduce(obj, op)
        return out if self.rank == root else None

    def allreduce(self, obj: Any, op: Callable = None) -> Any:
        op = op if op is not None else _sum_op

        def combine(xs):
            acc = xs[0]
            for x in xs[1:]:
                acc = op(acc, x)
            return acc

        return self._collective(obj, combine)

    def scan(self, obj: Any, op: Callable = None) -> Any:
        """Inclusive prefix reduction."""
        op = op if op is not None else _sum_op
        all_ = self._collective(obj, list)
        acc = all_[0]
        for x in all_[1 : self.rank + 1]:
            acc = op(acc, x)
        return acc

    def exscan(self, obj: Any, op: Callable = None) -> Any:
        """Exclusive prefix reduction (None/zero-like on rank 0)."""
        op = op if op is not None else _sum_op
        all_ = self._collective(obj, list)
        if self.rank == 0:
            return None
        acc = all_[0]
        for x in all_[1 : self.rank]:
            acc = op(acc, x)
        return acc

    def alltoall(self, objs: Sequence) -> list:
        if len(objs) != self.size:
            raise ValueError("alltoall needs one item per rank")
        matrix = self._collective(list(objs), list)
        return [matrix[src][self.rank] for src in range(self.size)]

    def alltoallv(self, arrays: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Array-per-destination variant; returns array-per-source."""
        return self.alltoall(list(arrays))

    # ------------------------------------------------------------- split etc.

    def split(self, color: int, key: int = 0) -> Optional["Comm"]:
        """MPI_Comm_split.  Returns None for color < 0 (undefined)."""
        self._world.stats.record_split()
        self._n_splits = getattr(self, "_n_splits", 0) + 1
        triples = self.allgather((color, key, self.rank))
        if color < 0:
            return None
        members = sorted((k, r) for (c, k, r) in triples if c == color)
        ranks = [r for _, r in members]
        my_new_rank = ranks.index(self.rank)
        # All ranks of a subgroup must share one _World.  Splits are
        # collective, so every rank's per-comm call counter agrees; keying the
        # cache by (member tuple, call number) makes successive splits with
        # identical groups produce fresh worlds.
        with self._world.split_lock:
            key2 = (tuple(ranks), self._n_splits)
            if key2 not in self._world.split_cache:
                self._world.split_cache[key2] = _World(
                    len(ranks), self._world.stats, self._world.timeout
                )
            sub = self._world.split_cache[key2]
        return Comm(sub, my_new_rank)

    def split_cached(self, color: int, key: int = 0, cache_tag: Any = None):
        """Memoized ``split`` — the paper caches communicator sequences in an
        MPI attribute so repeated hierarchical sorts don't re-split."""
        # Keyed per rank: the cached object is this rank's view of the
        # sub-communicator, not a shared handle.
        ck = ("split_cached", cache_tag, color, key, self.rank)
        with self._world.attr_lock:
            hit = ck in self._world.attrs
        if hit:
            # Everyone who cached it returns it without communication.
            with self._world.attr_lock:
                return self._world.attrs[ck]
        sub = self.split(color, key)
        with self._world.attr_lock:
            self._world.attrs[ck] = sub
        return sub

    # -------------------------------------------------------------- attrs

    def set_attr(self, key: Any, value: Any) -> None:
        with self._world.attr_lock:
            self._world.attrs[key] = value

    def get_attr(self, key: Any, default: Any = None) -> Any:
        with self._world.attr_lock:
            return self._world.attrs.get(key, default)

    @property
    def stats(self) -> CommStats:
        return self._world.stats


class _IBarrier:
    def __init__(self, world: _World, key: int) -> None:
        self._world = world
        self._key = key

    def done(self) -> bool:
        with self._world.ibarrier_lock:
            return self._world.ibarrier_counts.get(self._key, 0) >= self._world.size


def _sum_op(a, b):
    return a + b


def MAX(a, b):
    return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)


def MIN(a, b):
    return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)


def SUM(a, b):
    return a + b


def LOR(a, b):
    return (a | b) if isinstance(a, np.ndarray) else (a or b)


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = _DEFAULT_TIMEOUT,
    stats: Optional[CommStats] = None,
) -> list:
    """Run ``fn(comm, *args)`` on ``nprocs`` simulated ranks; return per-rank
    results.  Any rank exception (or a deadlock past ``timeout``) raises
    :class:`SpmdError` with the first failing rank's traceback chained.
    """
    stats = stats if stats is not None else CommStats()
    world = _World(nprocs, stats, timeout)
    results: list = [None] * nprocs
    errors: list = [None] * nprocs

    def runner(r: int) -> None:
        try:
            results[r] = fn(Comm(world, r), *args)
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            errors[r] = exc

    threads = [
        threading.Thread(target=runner, args=(r,), daemon=True)
        for r in range(nprocs)
    ]
    for t in threads:
        t.start()
    import time as _time

    deadline = _time.monotonic() + timeout
    while True:
        alive = [t for t in threads if t.is_alive()]
        # A failed rank usually leaves its peers blocked in a collective;
        # report the root cause, not the ensuing hang (threads are daemons).
        for r, exc in enumerate(errors):
            if exc is not None:
                raise SpmdError(f"rank {r} failed: {exc!r}") from exc
        if not alive:
            break
        if _time.monotonic() > deadline:
            raise SpmdError(f"SPMD run timed out after {timeout}s (deadlock?)")
        alive[0].join(min(0.05, max(deadline - _time.monotonic(), 0.001)))
    return results
