"""In-process SPMD communicator.

The paper's algorithms are MPI programs.  This module provides a faithful
shared-nothing-in-spirit simulator: :func:`run_spmd` runs one simulated rank
per thread, OS process, or scheduler slot (see :mod:`repro.runtime`), and
each rank talks to the others only through a :class:`Comm` whose semantics
mirror mpi4py (``send/recv``, ``bcast``, ``allreduce``, ``alltoallv``,
``split`` with memoization, non-blocking probe/barrier for the NBX sparse
exchange).  All traffic is metered (:mod:`repro.mpi.stats`) so the
performance model can extrapolate to the paper's process counts; the
counters are backend-independent because metering happens here, above the
transport.

Payloads are passed by reference on the thread/serial backends for speed;
SPMD code here follows the MPI discipline of never mutating a buffer it has
sent (the test-suite exercises this contract).  NumPy arrays are the
preferred payload, matching the mpi4py guidance of buffer-based messaging
for performance — on the process backend they travel through shared memory.

``Comm`` is transport-agnostic: it talks to a duck-typed *world* object
whose contract is documented in :mod:`repro.runtime.base`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from .. import obs
from .stats import CommStats, payload_bytes

ANY_SOURCE = -1
ANY_TAG = -1

_DEFAULT_TIMEOUT = 120.0  # see repro.runtime.base.resolve_timeout


class SpmdError(RuntimeError):
    """Raised when any rank of an SPMD run fails or the run deadlocks."""


class Request:
    """Completed-at-creation request handle (sends are eager)."""

    def __init__(self, result: Any = None) -> None:
        self._result = result

    def wait(self) -> Any:
        return self._result

    def test(self) -> tuple[bool, Any]:
        return True, self._result


class Comm:
    """Rank-local view of a simulated communicator.

    Backend-independent: all transport goes through the world interface
    (:mod:`repro.runtime.base`), all metering happens here.
    """

    def __init__(self, world, rank: int) -> None:
        self._world = world
        self.rank = rank
        self.size = world.size

    # ------------------------------------------------------------------ p2p

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"bad dest {dest}")
        nbytes = payload_bytes(obj)
        self._world.stats.record_p2p(nbytes)
        obs.incr("comm.send_bytes", nbytes)
        with obs.span("comm.send"):
            self._world.post(dest, self.rank, tag, obj)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        with obs.span("comm.recv"):
            _, _, payload = self._world.wait_recv(self.rank, source, tag)
        return payload

    def recv_with_status(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Like :meth:`recv` but returns ``(payload, source, tag)``."""
        with obs.span("comm.recv"):
            s, t, payload = self._world.wait_recv(self.rank, source, tag)
        return payload, s, t

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return Request()

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Non-blocking probe; returns (source, tag) or None."""
        return self._world.probe(self.rank, source, tag)

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # ----------------------------------------------------------- collectives

    def barrier(self) -> None:
        self._verify("barrier", None, symmetric=True)
        self._world.stats.record_barrier()
        with obs.span("comm.barrier"):
            self._world.exchange(self.rank, None, lambda xs: None)

    def ibarrier(self, key: int = 0) -> "_IBarrier":
        """Non-blocking barrier used by the NBX sparse exchange."""
        self._world.ibarrier_arrive(self.rank, key)
        return _IBarrier(self._world, self.rank, key)

    def _verify(self, op: str, value: Any, symmetric: bool) -> None:
        """Cross-rank collective-matching check (``REPRO_SPMD_CHECK=1``).

        Delegates to :mod:`repro.analysis.runtime_check`; the fast path when
        checks are disabled is a single function call.  The fingerprint
        rendezvous bypasses ``CommStats``, so counters are check-invariant.
        """
        from repro.analysis.runtime_check import verify_collective

        verify_collective(self, op, value, symmetric)

    def _collective(
        self,
        value: Any,
        combine: Callable[[list], Any],
        op: str = "collective",
        symmetric: bool = False,
    ) -> Any:
        self._verify(op, value, symmetric)
        nbytes = payload_bytes(value)
        self._world.stats.record_collective(nbytes)
        obs.incr("comm.collective_bytes", nbytes)
        # Wait time at the rendezvous: rank imbalance shows up here.
        with obs.span("comm.collective"):
            return self._world.exchange(self.rank, value, combine)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return self._collective(
            obj if self.rank == root else None, lambda xs: xs[root], op="bcast"
        )

    def gather(self, obj: Any, root: int = 0) -> Optional[list]:
        all_ = self._collective(obj, list, op="gather")
        return list(all_) if self.rank == root else None

    def allgather(self, obj: Any) -> list:
        return list(self._collective(obj, list, op="allgather"))

    def scatter(self, objs: Optional[Sequence], root: int = 0) -> Any:
        all_ = self._collective(
            list(objs) if self.rank == root else None,
            lambda xs: xs[root],
            op="scatter",
        )
        return all_[self.rank]

    def reduce(self, obj: Any, op: Callable = None, root: int = 0) -> Any:
        out = self.allreduce(obj, op)
        return out if self.rank == root else None

    def allreduce(self, obj: Any, op: Callable = None) -> Any:
        op = op if op is not None else _sum_op

        def combine(xs):
            acc = xs[0]
            for x in xs[1:]:
                acc = op(acc, x)
            return acc

        return self._collective(obj, combine, op="allreduce", symmetric=True)

    def scan(self, obj: Any, op: Callable = None) -> Any:
        """Inclusive prefix reduction."""
        op = op if op is not None else _sum_op
        all_ = self._collective(obj, list, op="scan", symmetric=True)
        acc = all_[0]
        for x in all_[1 : self.rank + 1]:
            acc = op(acc, x)
        return acc

    def exscan(self, obj: Any, op: Callable = None) -> Any:
        """Exclusive prefix reduction (None/zero-like on rank 0)."""
        op = op if op is not None else _sum_op
        all_ = self._collective(obj, list, op="exscan", symmetric=True)
        if self.rank == 0:
            return None
        acc = all_[0]
        for x in all_[1 : self.rank]:
            acc = op(acc, x)
        return acc

    def alltoall(self, objs: Sequence) -> list:
        if len(objs) != self.size:
            raise ValueError("alltoall needs one item per rank")
        matrix = self._collective(list(objs), list, op="alltoall")
        return [matrix[src][self.rank] for src in range(self.size)]

    def alltoallv(self, arrays: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Array-per-destination variant; returns array-per-source."""
        return self.alltoall(list(arrays))

    # ------------------------------------------------------------- split etc.

    def split(self, color: int, key: int = 0) -> Optional["Comm"]:
        """MPI_Comm_split.  Returns None for color < 0 (undefined)."""
        self._world.stats.record_split()
        self._n_splits = getattr(self, "_n_splits", 0) + 1
        triples = self.allgather((color, key, self.rank))
        if color < 0:
            return None
        members = sorted((k, r) for (c, k, r) in triples if c == color)
        ranks = [r for _, r in members]
        my_new_rank = ranks.index(self.rank)
        # All ranks of a subgroup must share one world.  Splits are
        # collective, so every rank's per-comm call counter agrees; keying
        # the subworld by (member tuple, call number) makes successive splits
        # with identical groups produce fresh worlds.
        sub = self._world.subworld((tuple(ranks), self._n_splits), ranks)
        sub_comm = Comm(sub, my_new_rank)
        # Sub-communicator collectives feed the same per-rank conformance
        # stream (repro.analysis.conformance), so the monitor rides along.
        monitor = getattr(self, "_schedule_monitor", None)
        if monitor is not None:
            sub_comm._schedule_monitor = monitor
        return sub_comm

    def split_cached(self, color: int, key: int = 0, cache_tag: Any = None):
        """Memoized ``split`` — the paper caches communicator sequences in an
        MPI attribute so repeated hierarchical sorts don't re-split."""
        # Keyed per rank: the cached object is this rank's view of the
        # sub-communicator, not a shared handle.
        ck = ("split_cached", cache_tag, color, key, self.rank)
        cached = self._world.get_attr(ck, _ATTR_MISS)
        if cached is not _ATTR_MISS:
            # Everyone who cached it returns it without communication
            # (including a cached None from an undefined color).
            return cached
        sub = self.split(color, key)  # spmdlint: ignore[R1] -- split_cached is itself collective: the cache is only populated by a prior collective call with the same (cache_tag, color, key), so hit/miss agrees on every rank and all ranks reach this split together
        self._world.set_attr(ck, sub)
        return sub

    # -------------------------------------------------------------- attrs

    def set_attr(self, key: Any, value: Any) -> None:
        self._world.set_attr(key, value)

    def get_attr(self, key: Any, default: Any = None) -> Any:
        return self._world.get_attr(key, default)

    @property
    def stats(self) -> CommStats:
        return self._world.stats


_ATTR_MISS = object()


class _IBarrier:
    def __init__(self, world, rank: int, key) -> None:
        self._world = world
        self._rank = rank
        self._key = key

    def done(self) -> bool:
        return self._world.ibarrier_done(self._rank, self._key)


def _sum_op(a, b):
    return a + b


def MAX(a, b):
    return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)


def MIN(a, b):
    return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)


def SUM(a, b):
    return a + b


def LOR(a, b):
    return (a | b) if isinstance(a, np.ndarray) else (a or b)


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: Optional[float] = None,
    stats: Optional[CommStats] = None,
    backend: Optional[Any] = None,
    schedule: Optional[Any] = None,
) -> list:
    """Run ``fn(comm, *args)`` on ``nprocs`` simulated ranks; return per-rank
    results.  Any rank exception (or a deadlock past ``timeout``) raises
    :class:`SpmdError` with the failing rank identified.

    ``schedule`` (a :class:`repro.analysis.schedule.CommSchedule`) arms the
    conformance monitor: with ``REPRO_SPMD_CHECK=1``, every collective each
    rank executes must refine the static schedule, else
    :class:`~repro.analysis.conformance.ScheduleConformanceError` is raised
    inside that rank.  Without the check env the argument is free.

    ``backend`` selects how ranks execute: ``"thread"`` (default, zero-copy,
    GIL-bound), ``"process"`` (forked OS processes + shared-memory payloads,
    real core parallelism), or ``"serial"`` (deterministic round-robin, for
    debugging) — or a :class:`repro.runtime.Backend` instance.  When omitted,
    the ``REPRO_SPMD_BACKEND`` environment variable decides.  ``timeout``
    defaults to ``REPRO_SPMD_TIMEOUT`` seconds (else 120).  All backends
    meter traffic into ``stats`` identically.

    When the calling thread has :mod:`repro.obs` tracing enabled, every rank
    runs under its own tracer and the per-rank snapshots ride home on the
    result transport; read them afterwards via ``obs.last_spmd_traces()`` /
    ``obs.last_spmd_report()``.
    """
    # Imported lazily: repro.runtime's backends import Comm from this module.
    from repro.runtime import resolve_backend, resolve_timeout

    if schedule is not None:
        from repro.analysis.conformance import MonitoredEntry

        fn = MonitoredEntry(fn, schedule)
    b = resolve_backend(backend)
    timeout_s = resolve_timeout(timeout)
    stats = stats if stats is not None else CommStats()
    if not obs.rank_armed():
        return b.run(nprocs, fn, args, timeout_s, stats)
    results = b.run(nprocs, _traced_rank, (fn,) + args, timeout_s, stats)
    obs._set_last_spmd([snap for _, snap in results])
    return [res for res, _ in results]


def _traced_rank(comm: "Comm", fn: Callable[..., Any], *args: Any):
    """Rank wrapper installed by a traced ``run_spmd``: fresh per-rank
    tracer, snapshot shipped back alongside the user result."""
    obs.begin_rank()
    try:
        result = fn(comm, *args)
    finally:
        snap = obs.end_rank()
    return result, snap
