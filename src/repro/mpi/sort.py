"""Distributed sorting of octree keys.

Sorting keys in distributed memory is the building block of repartitioning,
2:1 balancing, and nodal enumeration (paper Sec. II-C3).  Two algorithms:

* :func:`sample_sort` — flat splitter-based sample sort (the "old
  implementation" whose Allreduce/Alltoall scaled as O(p)).
* :func:`kway_sort` — hierarchical k-way staged exchange (HykSort-flavored):
  at each stage data moves between at most ``k`` superpartitions of the
  current communicator, so splitter storage is O(k) and the exchange happens
  in O(log_k p) stages.

Both accept an optional ``payload`` array carried along with the keys (e.g.
coarsening votes, nodal ownership tags).  Results are globally sorted and
load-balanced to within one splitter bucket.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .comm import Comm
from .hierarchical import kway_stage_comms


def _split_by_splitters(keys: np.ndarray, splitters: np.ndarray) -> list[slice]:
    """Bucket boundaries of sorted ``keys`` for ``len(splitters)+1`` buckets."""
    cuts = np.searchsorted(keys, splitters, side="left")
    bounds = np.concatenate([[0], cuts, [len(keys)]])
    return [slice(int(bounds[i]), int(bounds[i + 1])) for i in range(len(bounds) - 1)]


def _choose_splitters(
    comm: Comm, keys: np.ndarray, nbuckets: int, oversample: int = 8
) -> np.ndarray:
    """Regular-sampling splitters agreed by all ranks of ``comm``."""
    ns = nbuckets * oversample
    if len(keys):
        idx = np.linspace(0, len(keys) - 1, ns).astype(np.int64)
        sample = keys[idx]
    else:
        sample = np.zeros(0, dtype=np.uint64 if keys.dtype == np.uint64 else keys.dtype)
    all_samples = np.concatenate(comm.allgather(sample))
    all_samples.sort()
    if len(all_samples) == 0:
        return all_samples[:0]
    pick = np.linspace(0, len(all_samples) - 1, nbuckets + 1).astype(np.int64)[1:-1]
    return all_samples[pick]


def sample_sort(
    comm: Comm, keys: np.ndarray, payload: Optional[np.ndarray] = None
):
    """Flat sample sort across all ranks of ``comm``.

    Returns ``sorted_keys`` (and ``sorted_payload`` if given), globally
    sorted: every key on rank r precedes every key on rank r+1.
    """
    keys = np.asarray(keys)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    payload = payload[order] if payload is not None else None
    splitters = _choose_splitters(comm, keys, comm.size)
    slices = _split_by_splitters(keys, splitters)
    out_k = comm.alltoallv([keys[s] for s in slices])
    merged_k = np.concatenate(out_k) if out_k else keys[:0]
    if payload is not None:  # spmdlint: ignore[R7] -- payload uniformity is an API contract: every rank of `comm` passes a payload or none does, so all ranks agree on this arm (and its alltoallv)
        out_p = comm.alltoallv([payload[s] for s in slices])
        merged_p = np.concatenate(out_p)
    order = np.argsort(merged_k, kind="stable")
    if payload is not None:
        return merged_k[order], merged_p[order]
    return merged_k[order]


def kway_sort(
    comm: Comm,
    keys: np.ndarray,
    payload: Optional[np.ndarray] = None,
    *,
    k: int = 128,
):
    """Hierarchical k-way staged sample sort (paper Sec. II-C3a).

    Each stage routes data into one of at most ``k`` superpartitions of the
    current (memoized) stage communicator, then recurses within the
    superpartition.  For ``p <= k`` this degenerates to one flat sample sort,
    matching the paper's default ``k = 128`` needing at most three stages up
    to 2M processes.
    """
    keys = np.asarray(keys)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    payload = payload[order] if payload is not None else None

    ladder = kway_stage_comms(comm, k)
    cur = comm
    for sub, group, ngroups in ladder:
        # Choose ngroups-1 splitters over the *current* communicator, route
        # buckets to superpartitions, keeping per-stage partition count <= k.
        splitters = _choose_splitters(cur, keys, ngroups)
        slices = _split_by_splitters(keys, splitters)
        # Target rank for bucket g: spread within the g-th block of cur.
        base = cur.size // ngroups
        extra = cur.size % ngroups
        starts = np.zeros(ngroups + 1, dtype=np.int64)
        for g in range(ngroups):
            starts[g + 1] = starts[g] + base + (1 if g < extra else 0)
        sends = [keys[:0]] * cur.size
        sends_p = [None] * cur.size
        for g, s in enumerate(slices):
            # Deterministic in-block spreading by source rank.
            width = int(starts[g + 1] - starts[g])
            dest = int(starts[g]) + (cur.rank % max(width, 1))
            sends[dest] = keys[s]
            if payload is not None:
                sends_p[dest] = payload[s]
        recv = cur.alltoallv(sends)
        keys = np.concatenate(recv)
        if payload is not None:  # spmdlint: ignore[R7] -- payload uniformity is an API contract (see sample_sort): all ranks agree on this arm's alltoallv
            recv_p = cur.alltoallv(
                [p if p is not None else payload[:0] for p in sends_p]
            )
            payload = np.concatenate(recv_p)
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        payload = payload[order] if payload is not None else None
        cur = sub
    # Final stage: flat sample sort within the last (<= k ranks) block...
    # which alone does not yield a *global* order across blocks; the staged
    # routing above already ensured block g holds only keys below block g+1.
    if payload is not None:  # spmdlint: ignore[R7] -- payload uniformity is an API contract (see sample_sort): both arms run one sample_sort; only the uniform payload alltoallv differs
        return sample_sort(cur, keys, payload)
    return sample_sort(cur, keys)


def is_globally_sorted(comm: Comm, keys: np.ndarray) -> bool:
    """Check local sortedness and cross-rank boundary order."""
    local_ok = bool(np.all(keys[:-1] <= keys[1:])) if len(keys) > 1 else True
    first = keys[0] if len(keys) else None
    last = keys[-1] if len(keys) else None
    triple = comm.allgather((local_ok, first, last))
    ok = all(t[0] for t in triple)
    prev_last = None
    for _, f, l in triple:
        if f is None:
            continue
        if prev_last is not None and f < prev_last:
            ok = False
        prev_last = l if l is not None else prev_last
    return ok


def partition_balanced(
    comm: Comm, keys: np.ndarray, payload: Optional[np.ndarray] = None
):
    """Repartition globally sorted data into near-equal chunks per rank.

    This is the load-balance step run after sorting/coarsening; it preserves
    global order.
    """
    keys = np.asarray(keys)
    counts = np.asarray(comm.allgather(len(keys)), dtype=np.int64)
    total = int(counts.sum())
    targets = np.full(comm.size, total // comm.size, dtype=np.int64)
    targets[: total % comm.size] += 1
    # Global index range currently held by this rank.
    my_start = int(counts[: comm.rank].sum())
    # Destination rank of each global index.
    bounds = np.concatenate([[0], np.cumsum(targets)])
    gidx = my_start + np.arange(len(keys), dtype=np.int64)
    dest = np.searchsorted(bounds, gidx, side="right") - 1
    sends = [keys[dest == r] for r in range(comm.size)]
    recv = comm.alltoallv(sends)
    out_k = np.concatenate(recv)
    if payload is not None:
        sends_p = [payload[dest == r] for r in range(comm.size)]
        out_p = np.concatenate(comm.alltoallv(sends_p))
        return out_k, out_p
    return out_k
