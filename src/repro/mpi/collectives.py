"""NumPy-typed convenience collectives over :class:`~repro.mpi.comm.Comm`.

Mirrors the mpi4py convention that buffer-based (array) operations are the
fast path; everything here takes and returns ndarrays.
"""

from __future__ import annotations

import numpy as np

from .comm import Comm


def allreduce_sum(comm: Comm, arr: np.ndarray) -> np.ndarray:
    return comm.allreduce(np.asarray(arr), lambda a, b: a + b)


def allreduce_max(comm: Comm, arr: np.ndarray) -> np.ndarray:
    return comm.allreduce(np.asarray(arr), np.maximum)


def allreduce_min(comm: Comm, arr: np.ndarray) -> np.ndarray:
    return comm.allreduce(np.asarray(arr), np.minimum)


def allgatherv(comm: Comm, arr: np.ndarray) -> np.ndarray:
    """Concatenate per-rank arrays in rank order."""
    parts = comm.allgather(np.asarray(arr))
    return np.concatenate(parts) if parts else np.asarray(arr)


def gatherv(comm: Comm, arr: np.ndarray, root: int = 0):
    parts = comm.gather(np.asarray(arr), root=root)
    if comm.rank == root:
        return np.concatenate(parts)
    return None


def scatterv(comm: Comm, arr, counts, root: int = 0) -> np.ndarray:
    """Scatter contiguous chunks with per-rank counts."""
    if comm.rank == root:
        counts = np.asarray(counts, dtype=np.int64)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        chunks = [arr[bounds[r] : bounds[r + 1]] for r in range(comm.size)]
    else:
        chunks = None
    return comm.scatter(chunks, root=root)


def exscan_sum(comm: Comm, value: int) -> int:
    """Exclusive prefix sum of scalars (0 on rank 0)."""
    out = comm.exscan(value)
    return 0 if out is None else out


def alltoallv_counts(comm: Comm, arrays: list[np.ndarray]):
    """Alltoallv returning both the received arrays and their source counts."""
    recv = comm.alltoallv(arrays)
    return recv, np.asarray([len(a) for a in recv], dtype=np.int64)
