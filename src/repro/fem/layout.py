"""zip/unzip data layout for multi-DOF elemental assembly (paper Sec. II-D).

PETSc's block storage (MATMPIBAIJ) interleaves DOFs in the global layout:
``[n0·d0, n0·d1, n1·d0, n1·d1, ...]``.  Writing an operator block
``L(dof_i, dof_j)`` into that layout strides through memory (Fig. 2: a 2-DOF
2D vector writes 0,2,4,6 then 1,3,5,7; Fig. 3 shows the matrix analogue).

The paper's fix:

1. *zip* the elemental data so equal DOFs are contiguous,
2. assemble per DOF-block with contiguous writes — each block is a pure
   GEMM/GEMV on vendor BLAS,
3. *unzip* once back to the interleaved global layout.

For matrices no explicit zip is ever performed: elemental assembly starts
from zeros, so only the final unzip exists (paper's remark).

Shapes: interleaved elemental vectors are (n_elems, nn*ndof) ordered
node-major; zipped vectors are (n_elems, ndof, nn).  Interleaved elemental
matrices are (n_elems, nn*ndof, nn*ndof); zipped matrices are
(n_elems, ndof, ndof, nn, nn).
"""

from __future__ import annotations

import numpy as np

from .basis import tabulate


# --------------------------------------------------------------------- zips


def zip_vector(ve: np.ndarray, ndof: int) -> np.ndarray:
    """Interleaved (e, nn*ndof) -> zipped (e, ndof, nn); a single pass."""
    n_elems, width = ve.shape
    nn = width // ndof
    return np.ascontiguousarray(ve.reshape(n_elems, nn, ndof).transpose(0, 2, 1))


def unzip_vector(vz: np.ndarray) -> np.ndarray:
    """Zipped (e, ndof, nn) -> interleaved (e, nn*ndof)."""
    n_elems, ndof, nn = vz.shape
    return np.ascontiguousarray(vz.transpose(0, 2, 1).reshape(n_elems, nn * ndof))


def zip_matrix(Ae: np.ndarray, ndof: int) -> np.ndarray:
    """Interleaved (e, nn*ndof, nn*ndof) -> zipped (e, ndof, ndof, nn, nn)."""
    n_elems, width, _ = Ae.shape
    nn = width // ndof
    return np.ascontiguousarray(
        Ae.reshape(n_elems, nn, ndof, nn, ndof).transpose(0, 2, 4, 1, 3)
    )


def unzip_matrix(Az: np.ndarray) -> np.ndarray:
    """Zipped (e, ndof, ndof, nn, nn) -> interleaved (e, nn*ndof, nn*ndof)."""
    n_elems, ndof, _, nn, _ = Az.shape
    return np.ascontiguousarray(
        Az.transpose(0, 3, 1, 4, 2).reshape(n_elems, nn * ndof, nn * ndof)
    )


def strided_indices(nn: int, ndof: int, dof: int) -> np.ndarray:
    """Global positions written by DOF block ``dof`` in the interleaved
    layout — the paper's example: dof 0 of a 2-DOF 2D element writes
    0, 2, 4, 6 and dof 1 writes 1, 3, 5, 7."""
    return np.arange(nn) * ndof + dof


# ------------------------------------------------- assembly kernel variants


def assemble_vector_strided(coeff_q: np.ndarray, h: np.ndarray, dim: int) -> np.ndarray:
    """Vector assembly writing straight into the interleaved layout.

    ``coeff_q``: (n_elems, ndof, nq) source terms per DOF field.  Each DOF
    loop writes with stride ``ndof`` — the baseline the paper improves on.
    """
    _, w, N, _ = tabulate(dim)
    n_elems, ndof, nq = coeff_q.shape
    nn = N.shape[1]
    scale = (np.asarray(h, dtype=np.float64) ** dim)[:, None]
    out = np.zeros((n_elems, nn * ndof))
    for dof in range(ndof):
        idx = strided_indices(nn, ndof, dof)
        out[:, idx] = np.einsum("q,eq,qi->ei", w, coeff_q[:, dof, :], N) * scale
    return out


def assemble_vector_zipped(coeff_q: np.ndarray, h: np.ndarray, dim: int) -> np.ndarray:
    """Vector assembly in the zipped layout + one unzip pass (paper's way).

    The per-block product is a single batched GEMV: ``b = (w ⊙ c) @ N``.
    With Numba the GEMV and the unzip fuse into one JIT loop writing the
    interleaved layout directly (no ``bz`` intermediate, no transpose copy).
    """
    from . import kernels

    _, w, N, _ = tabulate(dim)
    n_elems, ndof, nq = coeff_q.shape
    fn = kernels.select("vec_zipped")
    if fn is not None:  # pragma: no cover - needs numba
        nn = N.shape[1]
        out = np.empty((n_elems, nn * ndof))
        hpow = np.asarray(h, dtype=np.float64) ** dim
        fn(w, N, np.ascontiguousarray(coeff_q, dtype=np.float64), hpow, out)
        return out
    scale = (np.asarray(h, dtype=np.float64) ** dim)[:, None, None]
    # One GEMM over all elements and DOF blocks at once: contiguous writes.
    bz = (coeff_q * w[None, None, :]) @ N  # (e, ndof, nn)
    bz = bz * scale
    return unzip_vector(bz)


def assemble_matrix_strided(
    coeff_q: np.ndarray, h: np.ndarray, dim: int
) -> np.ndarray:
    """Matrix assembly writing each (dof_i, dof_j) block into the interleaved
    elemental matrix with doubly-strided access (paper Fig. 3 baseline)."""
    _, w, N, _ = tabulate(dim)
    n_elems, ndof, _, nq = coeff_q.shape
    nn = N.shape[1]
    scale = (np.asarray(h, dtype=np.float64) ** dim)[:, None, None]
    out = np.zeros((n_elems, nn * ndof, nn * ndof))
    for di in range(ndof):
        ri = strided_indices(nn, ndof, di)
        for dj in range(ndof):
            cj = strided_indices(nn, ndof, dj)
            blk = np.einsum("q,eq,qi,qj->eij", w, coeff_q[:, di, dj, :], N, N) * scale
            out[:, ri[:, None], cj[None, :]] = blk
    return out


def assemble_matrix_zipped(
    coeff_q: np.ndarray, h: np.ndarray, dim: int
) -> np.ndarray:
    """Matrix assembly as pure GEMM per DOF block in zipped layout, with a
    single final unzip (no explicit zip — paper's remark).  With Numba the
    per-block GEMM and the unzip fuse into one JIT loop writing the
    interleaved elemental matrix directly."""
    from . import kernels

    _, w, N, _ = tabulate(dim)
    n_elems, ndof, _, nq = coeff_q.shape
    fn = kernels.select("mat_zipped")
    if fn is not None:  # pragma: no cover - needs numba
        nn = N.shape[1]
        out = np.empty((n_elems, nn * ndof, nn * ndof))
        hpow = np.asarray(h, dtype=np.float64) ** dim
        fn(w, N, np.ascontiguousarray(coeff_q, dtype=np.float64), hpow, out)
        return out
    scale = (np.asarray(h, dtype=np.float64) ** dim)[:, None, None, None, None]
    # (e, di, dj, q) x (q, i) x (q, j): batched GEMM via matmul on the last
    # two axes: first scale N rows by the coefficient, then N^T @ (...).
    weighted = coeff_q * w[None, None, None, :]  # (e, di, dj, q)
    # (e,di,dj,q,i) would blow memory; contract with matmul instead:
    left = weighted[..., :, None] * N[None, None, None, :, :]  # (e,di,dj,q,i)
    Az = np.swapaxes(left, -1, -2) @ N  # (e,di,dj,i,j)
    Az = Az * scale
    return unzip_matrix(Az)
