"""FEM kernels: basis, GEMM-expressed operators, assembly plans, zip/unzip,
JIT-compiled fused element kernels (repro.fem.kernels)."""

from . import kernels  # noqa: F401
from .assembly import apply_dirichlet, assemble_matrix, assemble_vector  # noqa: F401
from .kernels import (  # noqa: F401
    BoundKernel,
    StaleKernelError,
    get_kernel,
    jit_enabled,
)
from .matvec import MatrixFreeOperator, apply_elemental  # noqa: F401
from .plan import (  # noqa: F401
    AssemblyPlan,
    StaleAssemblyPlanError,
    get_plan,
    plan_assemble,
)
from .operators import (  # noqa: F401
    convection_matrix,
    load_vector,
    mass_matrix,
    stiffness_matrix,
)
