"""FEM kernels: basis, GEMM-expressed operators, assembly, zip/unzip."""

from .assembly import apply_dirichlet, assemble_matrix, assemble_vector  # noqa: F401
from .matvec import MatrixFreeOperator, apply_elemental  # noqa: F401
from .operators import (  # noqa: F401
    convection_matrix,
    load_vector,
    mass_matrix,
    stiffness_matrix,
)
