"""Linear (multilinear) basis functions and Gauss quadrature on the
reference element ``[0, 1]**dim``.

Corner ordering matches Morton child order: corner ``c`` has coordinate bit
``(c >> axis) & 1`` along each axis, the same convention as
:func:`repro.octree.morton.children` and the mesh node tables — elemental
arrays line up with no permutation anywhere.

Octree elements are axis-aligned cubes of side ``h``, so the reference-to-
physical map is a pure scaling: ``det J = h**dim`` and reference gradients
pick up a factor ``1/h``.  The paper restricts its runs to linear basis
functions (Sec. II-A, third remark); so do we.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=None)
def corner_bits(dim: int) -> np.ndarray:
    """Corner coordinates (2**dim, dim) in {0,1}, Morton order."""
    nc = 1 << dim
    out = np.zeros((nc, dim), dtype=np.int64)
    for c in range(nc):
        for axis in range(dim):
            out[c, axis] = (c >> axis) & 1
    return out


@lru_cache(maxsize=None)
def gauss_points(dim: int, order: int = 2):
    """Tensor-product Gauss-Legendre points/weights on [0,1]**dim.

    Returns ``(points (nq, dim), weights (nq,))``; weights sum to 1.
    """
    x1, w1 = np.polynomial.legendre.leggauss(order)
    x1 = 0.5 * (x1 + 1.0)
    w1 = 0.5 * w1
    grids = np.meshgrid(*([x1] * dim), indexing="ij")
    pts = np.stack([g.ravel() for g in grids], axis=1)
    wgrids = np.meshgrid(*([w1] * dim), indexing="ij")
    w = np.ones(len(pts))
    for g in wgrids:
        w *= g.ravel()
    return pts, w


def shape_functions(xi: np.ndarray, dim: int) -> np.ndarray:
    """Multilinear shape functions N (npts, 2**dim) at reference points."""
    xi = np.atleast_2d(xi)
    bits = corner_bits(dim)
    nc = 1 << dim
    out = np.ones((len(xi), nc))
    for c in range(nc):
        for axis in range(dim):
            out[:, c] *= xi[:, axis] if bits[c, axis] else (1.0 - xi[:, axis])
    return out


def shape_gradients(xi: np.ndarray, dim: int) -> np.ndarray:
    """Reference gradients dN (npts, 2**dim, dim)."""
    xi = np.atleast_2d(xi)
    bits = corner_bits(dim)
    nc = 1 << dim
    out = np.ones((len(xi), nc, dim))
    for c in range(nc):
        for d in range(dim):
            for axis in range(dim):
                if axis == d:
                    out[:, c, d] *= 1.0 if bits[c, axis] else -1.0
                else:
                    out[:, c, d] *= xi[:, axis] if bits[c, axis] else (1.0 - xi[:, axis])
    return out


@lru_cache(maxsize=None)
def tabulate(dim: int, order: int = 2):
    """Quadrature tables: ``(points, weights, N, dN)`` with shapes
    (nq, dim), (nq,), (nq, nc), (nq, nc, dim)."""
    pts, w = gauss_points(dim, order)
    return pts, w, shape_functions(pts, dim), shape_gradients(pts, dim)


def quad_point_coords(anchors, sizes, dim: int, order: int = 2) -> np.ndarray:
    """Physical (unit-cube) coordinates of quadrature points per element,
    shape (n_elems, nq, dim).  ``anchors``/``sizes`` in unit-cube units."""
    pts, _, _, _ = tabulate(dim, order)
    return anchors[:, None, :] + pts[None, :, :] * np.asarray(sizes)[:, None, None]
