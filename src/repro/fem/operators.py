"""Batched elemental FEM operators, expressed as GEMM/GEMV contractions.

Following the paper's Sec. II-D strategy (extending Saurabh et al. [10]),
each elemental assembly is written as a dense matrix-matrix or matrix-vector
product over the whole batch of elements — ``einsum`` dispatches these to
vendor BLAS.  Because octree elements are axis-aligned cubes, the geometric
factors reduce to powers of the element size ``h``:

* mass terms scale as ``h**dim``
* stiffness terms as ``h**(dim-2)``
* convection terms as ``h**(dim-1)``

All functions return arrays of shape ``(n_elems, nc, nc)`` (matrices) or
``(n_elems, nc)`` (vectors), with ``nc = 2**dim`` corners in Morton order.
Coefficient arguments are sampled at quadrature points, shape
``(n_elems, nq)`` (or scalars / per-element vectors, broadcast).
"""

from __future__ import annotations

import numpy as np

from .basis import tabulate


def _coeff_q(coeff, n_elems: int, nq: int) -> np.ndarray:
    """Broadcast a coefficient spec to (n_elems, nq)."""
    if np.isscalar(coeff):
        return np.full((n_elems, nq), float(coeff))
    coeff = np.asarray(coeff, dtype=np.float64)
    if coeff.ndim == 1:  # per element
        return np.repeat(coeff[:, None], nq, axis=1)
    return coeff


def mass_matrix(h: np.ndarray, dim: int, coeff=1.0) -> np.ndarray:
    """``∫ c N_i N_j`` per element."""
    _, w, N, _ = tabulate(dim)
    h = np.asarray(h, dtype=np.float64)
    c = _coeff_q(coeff, len(h), len(w))
    ref = np.einsum("q,eq,qi,qj->eij", w, c, N, N)
    return ref * (h**dim)[:, None, None]


def stiffness_matrix(h: np.ndarray, dim: int, coeff=1.0) -> np.ndarray:
    """``∫ c ∇N_i · ∇N_j`` per element."""
    _, w, _, dN = tabulate(dim)
    h = np.asarray(h, dtype=np.float64)
    c = _coeff_q(coeff, len(h), len(w))
    ref = np.einsum("q,eq,qid,qjd->eij", w, c, dN, dN)
    return ref * (h ** (dim - 2))[:, None, None]


def convection_matrix(h: np.ndarray, dim: int, vel_q: np.ndarray) -> np.ndarray:
    """``∫ N_i (v · ∇N_j)`` per element; ``vel_q`` has shape
    (n_elems, nq, dim)."""
    _, w, N, dN = tabulate(dim)
    h = np.asarray(h, dtype=np.float64)
    ref = np.einsum("q,qi,eqd,qjd->eij", w, N, np.asarray(vel_q), dN)
    return ref * (h ** (dim - 1))[:, None, None]


def gradient_matrix(h: np.ndarray, dim: int, axis: int, coeff=1.0) -> np.ndarray:
    """``∫ c N_i ∂N_j/∂x_axis`` per element."""
    _, w, N, dN = tabulate(dim)
    h = np.asarray(h, dtype=np.float64)
    c = _coeff_q(coeff, len(h), len(w))
    ref = np.einsum("q,eq,qi,qj->eij", w, c, N, dN[:, :, axis])
    return ref * (h ** (dim - 1))[:, None, None]


def load_vector(h: np.ndarray, dim: int, f_q) -> np.ndarray:
    """``∫ f N_i`` per element (GEMV formulation: ``b_e = B q_e``)."""
    _, w, N, _ = tabulate(dim)
    h = np.asarray(h, dtype=np.float64)
    f = _coeff_q(f_q, len(h), len(w))
    ref = np.einsum("q,eq,qi->ei", w, f, N)
    return ref * (h**dim)[:, None]


def gradient_load_vector(h: np.ndarray, dim: int, flux_q: np.ndarray) -> np.ndarray:
    """``∫ F · ∇N_i`` per element; ``flux_q`` shape (n_elems, nq, dim).

    Used for weak divergence terms, e.g. the capillary stress
    ``(Cn/We) ∂_j(∂_iφ ∂_jφ)`` integrated by parts.
    """
    _, w, _, dN = tabulate(dim)
    h = np.asarray(h, dtype=np.float64)
    ref = np.einsum("q,eqd,qid->ei", w, np.asarray(flux_q), dN)
    return ref * (h ** (dim - 1))[:, None]


def value_at_quad(elem_vals: np.ndarray, dim: int) -> np.ndarray:
    """Field values at quadrature points from corner values
    (n_elems, nc[, k]) -> (n_elems, nq[, k])."""
    _, _, N, _ = tabulate(dim)
    if elem_vals.ndim == 3:
        return np.einsum("qi,eik->eqk", N, elem_vals)
    return np.einsum("qi,ei->eq", N, elem_vals)


def gradient_at_quad(elem_vals: np.ndarray, h: np.ndarray, dim: int) -> np.ndarray:
    """Field gradients at quadrature points, (n_elems, nq, dim[, k])."""
    _, _, _, dN = tabulate(dim)
    h = np.asarray(h, dtype=np.float64)
    if elem_vals.ndim == 3:
        g = np.einsum("qid,eik->eqdk", dN, elem_vals)
        return g / h[:, None, None, None]
    g = np.einsum("qid,ei->eqd", dN, elem_vals)
    return g / h[:, None, None]
