"""Symbolic/numeric split assembly: precomputed scatter plans per mesh.

The paper's Sec. II-D assembly strategy makes the elemental work pure batched
GEMM — but the *global* half of assembly (COO scatter, hanging-node
projection ``P^T A P``, duplicate summation) is topological: it depends only
on the mesh, not on the coefficient values.  The reference path
(:func:`repro.fem.assembly.assemble_matrix`) redoes all of it on every call,
i.e. for every operator of every Newton iteration of every timestep.

:class:`AssemblyPlan` splits that work once and for all per mesh:

* **symbolic phase** (``__init__``, once per mesh ``generation``): expand
  every elemental COO entry through the rows of ``P`` touching it, sort the
  expanded entries into the final CSR layout of ``A = P^T A_nodes P``, and
  record for each expanded entry its source slot in the raveled ``Ke`` batch,
  its interpolation weight ``P[r,a] * P[c,b]``, and its destination slot in
  ``csr.data``.
* **numeric phase** (:meth:`AssemblyPlan.assemble`, every call): one gather,
  one multiply, one ``bincount`` — no COO construction, no sparse matmul, no
  ``sum_duplicates``.  The returned matrices share the plan's ``indptr`` /
  ``indices`` arrays; only ``data`` is fresh per call.

Plans are keyed on :attr:`repro.mesh.mesh.Mesh.generation`.  AMR remeshes
build a new ``Mesh`` (new generation), so :func:`get_plan` transparently
rebuilds while a plan explicitly applied to a mesh of another generation
raises :class:`StaleAssemblyPlanError` — stale symbolic state can never
silently assemble against new topology.

The numeric phase is deterministic (fixed summation order), so repeated
``assemble`` calls with the same ``Ke`` are bitwise identical; against the
reference path the result agrees to round-off (enforced at 1e-14 in
``tests/fem/test_assembly_plan.py``).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import scipy.sparse as sp

from .. import obs
from ..mesh.mesh import Mesh
from . import kernels

#: Numeric-update counters, cumulative per process: how many times each plan
#: phase ran.  Benchmarks and tests read these to prove the symbolic phase is
#: amortized (``symbolic`` stays flat while ``numeric`` grows).
STATS = {"symbolic": 0, "numeric": 0}


class StaleAssemblyPlanError(RuntimeError):
    """An :class:`AssemblyPlan` was applied to a mesh of another generation."""


def _expand_ragged(indptr: np.ndarray, sel: np.ndarray):
    """Flattened CSR-row expansion: for each ``k``, the data offsets of row
    ``sel[k]`` of a CSR matrix.  Returns ``(offsets, group)`` where ``group``
    maps each expanded slot back to its ``k``."""
    cnt = indptr[sel + 1] - indptr[sel]
    total = int(cnt.sum())
    group = np.repeat(np.arange(len(sel), dtype=np.int64), cnt)
    starts = np.repeat(indptr[sel], cnt)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(cnt) - cnt, cnt
    )
    return starts + within, group


class AssemblyPlan:
    """One-time symbolic assembly for a fixed mesh; cheap numeric updates.

    ``assemble(Ke)`` is the drop-in fast path for
    ``assemble_matrix(mesh, Ke)``: same ``(n_dofs, n_dofs)`` CSR operator,
    any coefficient batch ``Ke`` of shape ``(n_elems, nc, nc)``.
    """

    def __init__(self, mesh: Mesh):
        with obs.span("assembly.symbolic"):
            self._build(mesh)
        STATS["symbolic"] += 1
        obs.incr("assembly.symbolic")

    def _build(self, mesh: Mesh) -> None:
        self.generation = int(mesh.generation)
        self.n_dofs = int(mesh.n_dofs)
        en = mesh.nodes.elem_nodes
        n_elems, nc = en.shape
        self.ke_shape = (n_elems, nc, nc)

        # Node-wise COO pattern of the elemental scatter (reference path's
        # rows/cols), one entry per raveled Ke slot.
        rows = np.repeat(en, nc, axis=1).ravel()
        cols = np.tile(en, (1, nc)).ravel()

        # Expand each COO entry through the touching rows of P:
        #   A[a, b] += Ke_k * P[rows_k, a] * P[cols_k, b].
        P = mesh.nodes.P.tocsr()
        r_off, k1 = _expand_ragged(P.indptr, rows)  # over row-P entries
        c_off, s1 = _expand_ragged(P.indptr, cols[k1])  # then col-P entries
        a = P.indices[r_off[s1]].astype(np.int64)
        b = P.indices[c_off].astype(np.int64)
        weight = P.data[r_off[s1]] * P.data[c_off]
        src = k1[s1]  # raveled Ke slot feeding each expanded entry

        # Final CSR layout: sort expanded entries by (a, b), dedupe.
        key = a * np.int64(self.n_dofs) + b
        uniq, slot = np.unique(key, return_inverse=True)
        order = np.argsort(slot, kind="stable")  # locality of the scatter
        self._src = src[order]
        self._weight = weight[order]
        self._slot = slot[order]
        self.nnz = len(uniq)

        indices = (uniq % self.n_dofs).astype(np.int64)
        counts = np.bincount(
            (uniq // self.n_dofs).astype(np.int64), minlength=self.n_dofs
        )
        indptr = np.zeros(self.n_dofs + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # Round-trip once through scipy so the shared index arrays already
        # carry the canonical dtype — later constructions then share them
        # by reference instead of copying.
        proto = sp.csr_matrix(
            (np.zeros(self.nnz), indices, indptr),
            shape=(self.n_dofs, self.n_dofs),
        )
        self.indices = proto.indices
        self.indptr = proto.indptr

        # Lazily-built diagonal sub-plan (see :meth:`diagonal`).
        self._diag_plan = None

        # Warm the JIT kernels for this element signature once per plan, so
        # the numeric phase never pays a compile.
        self.kernel_key = kernels.warm(mesh.dim)

    # ------------------------------------------------------------- numeric

    def check(self, mesh: Mesh) -> None:
        """Raise :class:`StaleAssemblyPlanError` unless ``mesh`` is the
        generation this plan was built for."""
        if int(mesh.generation) != self.generation:
            raise StaleAssemblyPlanError(
                f"AssemblyPlan built for mesh generation {self.generation} "
                f"applied to generation {int(mesh.generation)}; rebuild via "
                "repro.fem.plan.get_plan(mesh)"
            )

    def assemble(self, Ke: np.ndarray) -> sp.csr_matrix:
        """Numeric update: scatter a coefficient batch into the precomputed
        CSR layout.  ``Ke`` has shape ``(n_elems, nc, nc)``."""
        Ke = np.asarray(Ke, dtype=np.float64)
        if Ke.shape != self.ke_shape:
            raise ValueError(
                f"Ke shape {Ke.shape} does not match plan {self.ke_shape}"
            )
        with obs.span("assembly.numeric"):
            data = kernels.scatter_csr(
                Ke.ravel(), self._src, self._weight, self._slot, self.nnz
            )
        STATS["numeric"] += 1
        obs.incr("assembly.numeric")
        # Assign the precomputed structure directly: the validating
        # constructor copies index arrays (scipy >= 1.17), which would break
        # both the zero-copy contract and the structure-sharing property the
        # tests pin down.  The layout is canonical by construction (rows
        # sorted, columns sorted within rows, duplicates summed).
        A = sp.csr_matrix((self.n_dofs, self.n_dofs), dtype=np.float64)
        A.data = data
        A.indices = self.indices
        A.indptr = self.indptr
        A.has_sorted_indices = True
        A.has_canonical_format = True
        return A

    def assemble_for(self, mesh: Mesh, Ke: np.ndarray) -> sp.csr_matrix:
        """Generation-checked :meth:`assemble` (the safe entry point for
        callers holding both a plan and a mesh across remeshes)."""
        self.check(mesh)
        return self.assemble(Ke)

    def diagonal(self, Ke: np.ndarray) -> np.ndarray:
        """``assemble(Ke).diagonal()`` without assembling: scatter only the
        expanded entries whose destination sits on the CSR diagonal.

        The diagonal sub-plan preserves the full scatter's per-slot
        summation order (masking keeps relative entry order and bincount
        accumulates in ascending entry order), so the result is **bitwise**
        equal to the assembled diagonal — exact on hanging-node meshes,
        where the naive per-element ``Ke[:, i, i]`` scatter is not.
        """
        Ke = np.asarray(Ke, dtype=np.float64)
        if Ke.shape != self.ke_shape:
            raise ValueError(
                f"Ke shape {Ke.shape} does not match plan {self.ke_shape}"
            )
        if self._diag_plan is None:
            rows_of_pos = np.repeat(
                np.arange(self.n_dofs, dtype=np.int64), np.diff(self.indptr)
            )
            dest_row = rows_of_pos[self._slot]
            on_diag = dest_row == self.indices[self._slot]
            self._diag_plan = (
                self._src[on_diag],
                self._weight[on_diag],
                dest_row[on_diag],
            )
        d_src, d_weight, d_row = self._diag_plan
        with obs.span("assembly.diagonal"):
            return kernels.scatter_csr(
                Ke.ravel(), d_src, d_weight, d_row, self.n_dofs
            )


# ------------------------------------------------------------------- cache

#: Most-recently-used plans, keyed on mesh generation.  Bounded so long AMR
#: runs do not pin retired topologies; plans hold no reference to the Mesh.
_PLAN_CACHE: "OrderedDict[int, AssemblyPlan]" = OrderedDict()
_PLAN_CACHE_MAX = 4


def get_plan(mesh: Mesh) -> AssemblyPlan:
    """The process-wide :class:`AssemblyPlan` for this mesh generation,
    building (and caching) it on first use."""
    key = int(mesh.generation)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = AssemblyPlan(mesh)
        _PLAN_CACHE[key] = plan
        while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
            _PLAN_CACHE.popitem(last=False)
    else:
        _PLAN_CACHE.move_to_end(key)
    return plan


def clear_plan_cache() -> None:
    """Drop all cached plans (tests / memory pressure)."""
    _PLAN_CACHE.clear()


def plan_assemble(mesh: Mesh, Ke: np.ndarray) -> sp.csr_matrix:
    """Fast-path equivalent of :func:`repro.fem.assembly.assemble_matrix`:
    symbolic work cached per mesh generation, numeric update per call."""
    return get_plan(mesh).assemble(Ke)
