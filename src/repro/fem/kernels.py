"""repro.fem.kernels — JIT-compiled fused element kernels, NumPy fallback.

PR 2 made assembly *structurally* amortized (the :class:`~repro.fem.plan.
AssemblyPlan` scatter permutations are precomputed per ``Mesh.generation``),
but every per-call numeric update still ran as interpreted NumPy: an einsum
building the elemental batch, a ``bincount`` scatter, an einsum + ``add.at``
matrix-free MATVEC.  Following the lbmpy/pystencils code-generation line
(PAPERS.md), this module compiles those loops as fused, type-specialized
Numba ``njit`` kernels — coefficients are evaluated *inside* the element
loop (no materialized quad-point arrays for the fused-from-corner variants)
and the quadrature contraction, geometric scaling, and scatter run without
interpreter round-trips.

Contract (DESIGN.md §10):

* **Transparent fallback.**  Every kernel has a pure-NumPy fallback — the
  exact pre-existing code path.  Without Numba, or with ``REPRO_JIT=0``,
  selection silently returns the fallback; results are identical to the
  seed implementation bit-for-bit because the fallback *is* the seed
  implementation.
* **Determinism.**  The CSR scatter kernel accumulates in the same order as
  ``np.bincount`` (ascending expanded-entry index), so JIT and fallback
  scatters are **bit-identical** given the same ``Ke``.  Elemental-batch
  and MATVEC kernels reassociate the quadrature/corner sums, so they agree
  with the einsum path to round-off (1e-14 for float64, enforced by
  ``tests/fem/test_kernels.py``).
* **Observability.**  Every selection bumps ``STATS`` and the obs counters
  ``kernels.jit_hits`` / ``kernels.fallback``; benchmarks record
  :func:`provenance` so a number can never silently come from the wrong
  path.
* **Staleness.**  Mesh-bound kernels (:class:`BoundKernel`, from
  :func:`get_kernel`) carry the ``(Mesh.generation, dtype)`` key they were
  compiled/bound for and raise :class:`StaleKernelError` when applied
  across a remesh — the kernel-cache mirror of
  :class:`~repro.fem.plan.StaleAssemblyPlanError`, linted as spmdlint R6.

The loop sources below are plain Python functions written in nopython
style: :func:`python_kernel` returns them uncompiled, which is how the
differential test suite exercises the *same code object* Numba compiles on
hosts without Numba.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from functools import lru_cache
from typing import Callable, Optional

import numpy as np

from .. import obs
from .basis import tabulate

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import prange

    HAVE_NUMBA = True
    NUMBA_VERSION: Optional[str] = numba.__version__
except Exception:  # pragma: no cover - the baked container has no numba
    numba = None
    prange = range  # sources stay executable as pure Python
    HAVE_NUMBA = False
    NUMBA_VERSION = None

#: Cumulative per-process selection counters (mirrored into the obs
#: counters ``kernels.jit_hits`` / ``kernels.fallback``); benches and tests
#: read these to prove which path produced a number.
STATS = {"jit_hits": 0, "fallback": 0, "compiled": 0}

_FORCE_FALLBACK_DEPTH = 0


def reset_stats() -> None:
    """Zero the selection counters (tests / benchmark sections)."""
    for k in STATS:
        STATS[k] = 0


def jit_enabled() -> bool:
    """Is the JIT path selectable right now?  Requires Numba, no active
    :func:`fallback_only` scope, and ``REPRO_JIT`` not set to ``0``."""
    if not HAVE_NUMBA or _FORCE_FALLBACK_DEPTH:
        return False
    return os.environ.get("REPRO_JIT", "1") != "0"


class fallback_only:
    """Context manager forcing the NumPy fallback inside its scope —
    benchmarks use it to time the baseline, tests to pin fallback-path
    invariants regardless of the host's Numba availability."""

    def __enter__(self):
        global _FORCE_FALLBACK_DEPTH
        _FORCE_FALLBACK_DEPTH += 1
        return self

    def __exit__(self, *exc):
        global _FORCE_FALLBACK_DEPTH
        _FORCE_FALLBACK_DEPTH -= 1
        return False


class StaleKernelError(RuntimeError):
    """A :class:`BoundKernel` was applied to a mesh of another generation."""


# --------------------------------------------------------------------------
# Kernel sources.
#
# Each is a plain Python function in nopython style; `prange` is
# numba.prange when Numba is present (compiled with parallel=True where the
# per-element writes are independent) and plain `range` otherwise.  Kernels
# that must preserve a global accumulation order (the CSR scatter, the
# nodal scatters) are serial by construction.

_SOURCES: dict[str, tuple[Callable, bool]] = {}


def _source(name: str, parallel: bool):
    def deco(fn):
        _SOURCES[name] = (fn, parallel)
        return fn

    return deco


@_source("ke_mass", parallel=True)
def _src_ke_mass(w, N, coeff_q, hpow, out):
    # out[e,i,j] = h^dim * sum_q w[q] c[e,q] N[q,i] N[q,j]
    n_elems, nq = coeff_q.shape
    nc = N.shape[1]
    for e in prange(n_elems):
        for i in range(nc):
            for j in range(nc):
                acc = 0.0
                for q in range(nq):
                    acc += w[q] * coeff_q[e, q] * N[q, i] * N[q, j]
                out[e, i, j] = acc * hpow[e]


@_source("ke_stiffness", parallel=True)
def _src_ke_stiffness(w, dN, coeff_q, hpow, out):
    # out[e,i,j] = h^(dim-2) * sum_q w[q] c[e,q] (dN[q,i,:] . dN[q,j,:])
    n_elems, nq = coeff_q.shape
    nc = dN.shape[1]
    dim = dN.shape[2]
    for e in prange(n_elems):
        for i in range(nc):
            for j in range(nc):
                acc = 0.0
                for q in range(nq):
                    g = 0.0
                    for d in range(dim):
                        g += dN[q, i, d] * dN[q, j, d]
                    acc += w[q] * coeff_q[e, q] * g
                out[e, i, j] = acc * hpow[e]


@_source("ke_convection", parallel=True)
def _src_ke_convection(w, N, dN, vel_q, hpow, out):
    # out[e,i,j] = h^(dim-1) * sum_q w[q] N[q,i] (v[e,q,:] . dN[q,j,:])
    n_elems = vel_q.shape[0]
    nq = vel_q.shape[1]
    dim = vel_q.shape[2]
    nc = N.shape[1]
    for e in prange(n_elems):
        for i in range(nc):
            for j in range(nc):
                acc = 0.0
                for q in range(nq):
                    vg = 0.0
                    for d in range(dim):
                        vg += vel_q[e, q, d] * dN[q, j, d]
                    acc += w[q] * N[q, i] * vg
                out[e, i, j] = acc * hpow[e]


@_source("ke_mass_corners", parallel=True)
def _src_ke_mass_corners(w, N, cc, hpow, out):
    # Fused field_at_quad: c(q) = sum_k N[q,k] cc[e,k] evaluated in-loop,
    # never materialized as an (e, q) array.
    n_elems, nc = cc.shape
    nq = N.shape[0]
    for e in prange(n_elems):
        for i in range(nc):
            for j in range(nc):
                out[e, i, j] = 0.0
        for q in range(nq):
            c = 0.0
            for k in range(nc):
                c += N[q, k] * cc[e, k]
            cw = w[q] * c
            for i in range(nc):
                for j in range(nc):
                    out[e, i, j] += cw * N[q, i] * N[q, j]
        for i in range(nc):
            for j in range(nc):
                out[e, i, j] *= hpow[e]


@_source("ke_stiffness_corners", parallel=True)
def _src_ke_stiffness_corners(w, N, dN, cc, hpow, out):
    n_elems, nc = cc.shape
    nq = N.shape[0]
    dim = dN.shape[2]
    for e in prange(n_elems):
        for i in range(nc):
            for j in range(nc):
                out[e, i, j] = 0.0
        for q in range(nq):
            c = 0.0
            for k in range(nc):
                c += N[q, k] * cc[e, k]
            cw = w[q] * c
            for i in range(nc):
                for j in range(nc):
                    g = 0.0
                    for d in range(dim):
                        g += dN[q, i, d] * dN[q, j, d]
                    out[e, i, j] += cw * g
        for i in range(nc):
            for j in range(nc):
                out[e, i, j] *= hpow[e]


@_source("ke_convection_corners", parallel=True)
def _src_ke_convection_corners(w, N, dN, vel_c, hpow, out):
    # vel_c: (e, nc, dim) corner velocities; v(q) evaluated in-loop.
    n_elems = vel_c.shape[0]
    nc = vel_c.shape[1]
    dim = vel_c.shape[2]
    nq = N.shape[0]
    for e in prange(n_elems):
        for i in range(nc):
            for j in range(nc):
                out[e, i, j] = 0.0
        for q in range(nq):
            for j in range(nc):
                vg = 0.0
                for d in range(dim):
                    vq = 0.0
                    for k in range(nc):
                        vq += N[q, k] * vel_c[e, k, d]
                    vg += vq * dN[q, j, d]
                for i in range(nc):
                    out[e, i, j] += w[q] * N[q, i] * vg
        for i in range(nc):
            for j in range(nc):
                out[e, i, j] *= hpow[e]


@_source("ke_convection_corners_rho", parallel=True)
def _src_ke_convection_corners_rho(w, N, dN, vel_c, rho_q, hpow, out):
    # Same as ke_convection_corners with a quad-point density weight.
    n_elems = vel_c.shape[0]
    nc = vel_c.shape[1]
    dim = vel_c.shape[2]
    nq = N.shape[0]
    for e in prange(n_elems):
        for i in range(nc):
            for j in range(nc):
                out[e, i, j] = 0.0
        for q in range(nq):
            for j in range(nc):
                vg = 0.0
                for d in range(dim):
                    vq = 0.0
                    for k in range(nc):
                        vq += N[q, k] * vel_c[e, k, d]
                    vg += vq * rho_q[e, q] * dN[q, j, d]
                for i in range(nc):
                    out[e, i, j] += w[q] * N[q, i] * vg
        for i in range(nc):
            for j in range(nc):
                out[e, i, j] *= hpow[e]


@_source("scatter", parallel=False)
def _src_scatter(ke_flat, src, weight, slot, out):
    # Bit-identical to `np.bincount(slot, weights=ke_flat[src] * weight)`:
    # one multiply then one add per expanded entry, ascending entry index.
    # MUST stay serial — the summation order is the determinism contract.
    for n in range(src.shape[0]):
        out[slot[n]] += ke_flat[src[n]] * weight[n]


@_source("elem_matvec", parallel=False)
def _src_elem_matvec(Ke, elem_nodes, nv, acc):
    # Gather -> elemental GEMV -> scatter in one pass.  The scatter order
    # matches `np.add.at(acc, elem_nodes.ravel(), ve.ravel())` (element-
    # major, corner-minor); the GEMV reassociates vs einsum (1e-14).
    n_elems, nc = elem_nodes.shape
    for e in range(n_elems):
        for i in range(nc):
            v = 0.0
            for j in range(nc):
                v += Ke[e, i, j] * nv[elem_nodes[e, j]]
            acc[elem_nodes[e, i]] += v


@_source("mf_stiffness", parallel=False)
def _src_mf_stiffness(conn, nv, w, dN, hpow, coeff, acc):
    # Matrix-free MATVEC with the elemental stiffness rebuilt on the fly
    # inside the loop (the paper's FLOPs-for-memory trade), fused with the
    # gather/scatter.  Serial: accumulation order == the fallback loop.
    n_elems, nc = conn.shape
    nq = w.shape[0]
    dim = dN.shape[2]
    for e in range(n_elems):
        for i in range(nc):
            acc_i = 0.0
            for j in range(nc):
                kij = 0.0
                for q in range(nq):
                    g = 0.0
                    for d in range(dim):
                        g += dN[q, i, d] * dN[q, j, d]
                    kij += w[q] * g
                acc_i += kij * coeff * hpow[e] * nv[conn[e, j]]
            acc[conn[e, i]] += acc_i


@_source("vec_zipped", parallel=True)
def _src_vec_zipped(w, N, coeff_q, hpow, out):
    # Zipped GEMV fused with the unzip: out is the interleaved (e, nn*ndof)
    # elemental load vector, written contiguously per element.
    n_elems, ndof, nq = coeff_q.shape
    nn = N.shape[1]
    for e in prange(n_elems):
        for f in range(ndof):
            for i in range(nn):
                acc = 0.0
                for q in range(nq):
                    acc += coeff_q[e, f, q] * w[q] * N[q, i]
                out[e, i * ndof + f] = acc * hpow[e]


@_source("mat_zipped", parallel=True)
def _src_mat_zipped(w, N, coeff_q, hpow, out):
    # Zipped per-DOF-block GEMM fused with the unzip into the interleaved
    # elemental matrix (paper Figs. 2-3, without the transpose copies).
    n_elems = coeff_q.shape[0]
    ndof = coeff_q.shape[1]
    nq = coeff_q.shape[3]
    nn = N.shape[1]
    for e in prange(n_elems):
        for fi in range(ndof):
            for fj in range(ndof):
                for i in range(nn):
                    for j in range(nn):
                        acc = 0.0
                        for q in range(nq):
                            acc += coeff_q[e, fi, fj, q] * w[q] * N[q, i] * N[q, j]
                        out[e, i * ndof + fi, j * ndof + fj] = acc * hpow[e]


# --------------------------------------------------------------------------
# Compilation and selection


_COMPILED: dict[str, Callable] = {}


def kernel_names() -> list[str]:
    return sorted(_SOURCES)


def python_kernel(name: str) -> Callable:
    """The uncompiled loop source — the exact function Numba would compile.
    The differential suite runs these on hosts without Numba."""
    return _SOURCES[name][0]


def compiled(name: str) -> Optional[Callable]:
    """The njit-compiled kernel, compiling on first use; None without
    Numba.  Compilation is independent of :func:`jit_enabled` so tests can
    exercise compiled kernels under ``fallback_only``."""
    if not HAVE_NUMBA:  # pragma: no branch - trivial guard
        return None
    fn = _COMPILED.get(name)  # pragma: no cover - needs numba
    if fn is None:  # pragma: no cover - needs numba
        src, parallel = _SOURCES[name]
        fn = numba.njit(cache=True, parallel=parallel, fastmath=False)(src)
        _COMPILED[name] = fn
        STATS["compiled"] += 1
        obs.incr("kernels.compiled")
    return fn  # pragma: no cover - needs numba


def select(name: str) -> Optional[Callable]:
    """The compiled kernel when the JIT path is on, else None (caller runs
    its NumPy fallback).  Either way the selection counters advance — this
    is the single observability choke point."""
    if jit_enabled():
        fn = compiled(name)
        if fn is not None:  # pragma: no cover - needs numba
            STATS["jit_hits"] += 1
            obs.incr("kernels.jit_hits")
            return fn
    STATS["fallback"] += 1
    obs.incr("kernels.fallback")
    return None


# --------------------------------------------------------------------------
# Registry: (element kind, local width, dtype) keys, warmed once per plan


_ELEMENT_KINDS = {1: "line", 2: "quad", 3: "hex"}

#: Keys already warmed this process; :func:`provenance` reports them.
_WARMED: "OrderedDict[tuple, bool]" = OrderedDict()


def kernel_key(dim: int, ndof: int = 1, dtype=np.float64) -> tuple:
    """Registry key ``(element kind, local width, dtype name)``."""
    kind = _ELEMENT_KINDS.get(int(dim), f"cube{int(dim)}d")
    return (kind, (1 << int(dim)) * int(ndof), np.dtype(dtype).name)


@lru_cache(maxsize=None)
def _typed_tables(dim: int, dtype_name: str):
    """Quadrature tables cast to the kernel dtype (float32 kernels must not
    silently promote through float64 tables)."""
    pts, w, N, dN = tabulate(dim)
    dt = np.dtype(dtype_name)
    return (
        pts.astype(dt),
        np.ascontiguousarray(w.astype(dt)),
        np.ascontiguousarray(N.astype(dt)),
        np.ascontiguousarray(dN.astype(dt)),
    )


def warm(dim: int, ndof: int = 1, dtype=np.float64) -> tuple:
    """Compile every kernel for one element signature (no-op without
    Numba), so per-call selection never pays the compile.  Called once per
    :class:`~repro.fem.plan.AssemblyPlan` build; idempotent per key."""
    key = kernel_key(dim, ndof, dtype)
    if key in _WARMED:
        _WARMED.move_to_end(key)
        return key
    if HAVE_NUMBA and jit_enabled():  # pragma: no cover - needs numba
        dt = np.dtype(dtype)
        _, w, N, dN = _typed_tables(dim, dt.name)
        nc = 1 << dim
        e1 = np.ones(1, dtype=dt)
        cc = np.ones((1, nc), dtype=dt)
        cq = np.ones((1, len(w)), dtype=dt)
        vq = np.ones((1, len(w), dim), dtype=dt)
        vc = np.ones((1, nc, dim), dtype=dt)
        ke = np.zeros((1, nc, nc), dtype=dt)
        compiled("ke_mass")(w, N, cq, e1, ke)
        compiled("ke_stiffness")(w, dN, cq, e1, ke)
        compiled("ke_convection")(w, N, dN, vq, e1, ke)
        compiled("ke_mass_corners")(w, N, cc, e1, ke)
        compiled("ke_stiffness_corners")(w, N, dN, cc, e1, ke)
        compiled("ke_convection_corners")(w, N, dN, vc, e1, ke)
        compiled("ke_convection_corners_rho")(w, N, dN, vc, cq, e1, ke)
        idx = np.zeros(1, dtype=np.int64)
        f64 = np.zeros(1, dtype=np.float64)
        compiled("scatter")(np.ones(1), idx, np.ones(1), idx, f64.copy())
        en = np.zeros((1, nc), dtype=np.int64)
        compiled("elem_matvec")(
            ke.astype(np.float64), en, np.zeros(nc), np.zeros(nc)
        )
        compiled("mf_stiffness")(
            en, np.zeros(nc), w.astype(np.float64), dN.astype(np.float64),
            np.ones(1), 1.0, np.zeros(nc),
        )
        cz = np.ones((1, ndof, len(w)), dtype=dt)
        mz = np.ones((1, ndof, ndof, len(w)), dtype=dt)
        compiled("vec_zipped")(w, N, cz, e1, np.zeros((1, nc * ndof), dtype=dt))
        compiled("mat_zipped")(
            w, N, mz, e1, np.zeros((1, nc * ndof, nc * ndof), dtype=dt)
        )
    _WARMED[key] = True
    obs.incr("kernels.warmed")
    return key


def provenance() -> dict:
    """JIT availability + selection counters, recorded in every benchmark
    report that uses this module (honesty: a number without its path is
    not a measurement)."""
    return {
        "have_numba": HAVE_NUMBA,
        "numba_version": NUMBA_VERSION,
        "jit_enabled": jit_enabled(),
        "repro_jit_env": os.environ.get("REPRO_JIT"),
        "warmed_keys": ["/".join(map(str, k)) for k in _WARMED],
        "stats": dict(STATS),
    }


# --------------------------------------------------------------------------
# Elemental-batch entry points (the forms.py / layout.py hot paths)


def _coeff_q_like(coeff, n_elems: int, nq: int, dtype) -> np.ndarray:
    """Broadcast a coefficient spec to a contiguous (n_elems, nq) array of
    the kernel dtype (mirrors ``operators._coeff_q``)."""
    if np.isscalar(coeff):
        return np.full((n_elems, nq), coeff, dtype=dtype)
    coeff = np.asarray(coeff, dtype=dtype)
    if coeff.ndim == 1:  # per element
        return np.ascontiguousarray(np.repeat(coeff[:, None], nq, axis=1))
    return np.ascontiguousarray(coeff)


def mass_ke(h, dim: int, coeff=1.0, dtype=np.float64) -> np.ndarray:
    """Elemental mass batch ``∫ c N_i N_j`` — JIT fused loop or the
    :func:`repro.fem.operators.mass_matrix` einsum fallback."""
    fn = select("ke_mass")
    if fn is None:
        from .operators import mass_matrix

        return mass_matrix(h, dim, coeff)
    dt = np.dtype(dtype)
    _, w, N, _ = _typed_tables(dim, dt.name)
    h = np.asarray(h, dtype=dt)
    c = _coeff_q_like(coeff, len(h), len(w), dt)
    out = np.empty((len(h), N.shape[1], N.shape[1]), dtype=dt)
    fn(w, N, c, h**dim, out)
    return out


def stiffness_ke(h, dim: int, coeff=1.0, dtype=np.float64) -> np.ndarray:
    """Elemental stiffness batch ``∫ c ∇N_i · ∇N_j`` (JIT or einsum)."""
    fn = select("ke_stiffness")
    if fn is None:
        from .operators import stiffness_matrix

        return stiffness_matrix(h, dim, coeff)
    dt = np.dtype(dtype)
    _, w, _, dN = _typed_tables(dim, dt.name)
    h = np.asarray(h, dtype=dt)
    c = _coeff_q_like(coeff, len(h), len(w), dt)
    out = np.empty((len(h), dN.shape[1], dN.shape[1]), dtype=dt)
    fn(w, dN, c, h ** (dim - 2), out)
    return out


def convection_ke(h, dim: int, vel_q: np.ndarray, dtype=np.float64) -> np.ndarray:
    """Elemental convection batch ``∫ N_i (v · ∇N_j)`` from quad-point
    velocities (JIT or einsum)."""
    fn = select("ke_convection")
    if fn is None:
        from .operators import convection_matrix

        return convection_matrix(h, dim, vel_q)
    dt = np.dtype(dtype)
    _, w, N, dN = _typed_tables(dim, dt.name)
    h = np.asarray(h, dtype=dt)
    v = np.ascontiguousarray(np.asarray(vel_q, dtype=dt))
    out = np.empty((len(h), N.shape[1], N.shape[1]), dtype=dt)
    fn(w, N, dN, v, h ** (dim - 1), out)
    return out


def mass_ke_corners(h, dim: int, corner_vals, dtype=np.float64) -> np.ndarray:
    """Mass batch with the coefficient given as *corner* values (n_elems,
    nc): ``field_at_quad`` is fused into the element loop instead of
    materializing an (n_elems, nq) array."""
    fn = select("ke_mass_corners")
    dt = np.dtype(dtype)
    if fn is None:
        from .operators import mass_matrix, value_at_quad

        return mass_matrix(h, dim, value_at_quad(np.asarray(corner_vals), dim))
    _, w, N, _ = _typed_tables(dim, dt.name)
    h = np.asarray(h, dtype=dt)
    cc = np.ascontiguousarray(np.asarray(corner_vals, dtype=dt))
    out = np.empty((len(h), N.shape[1], N.shape[1]), dtype=dt)
    fn(w, N, cc, h**dim, out)
    return out


def stiffness_ke_corners(h, dim: int, corner_vals, dtype=np.float64) -> np.ndarray:
    """Stiffness batch with a corner-valued coefficient (fused
    ``field_at_quad``)."""
    fn = select("ke_stiffness_corners")
    dt = np.dtype(dtype)
    if fn is None:
        from .operators import stiffness_matrix, value_at_quad

        return stiffness_matrix(
            h, dim, value_at_quad(np.asarray(corner_vals), dim)
        )
    _, w, N, dN = _typed_tables(dim, dt.name)
    h = np.asarray(h, dtype=dt)
    cc = np.ascontiguousarray(np.asarray(corner_vals, dtype=dt))
    out = np.empty((len(h), N.shape[1], N.shape[1]), dtype=dt)
    fn(w, N, dN, cc, h ** (dim - 2), out)
    return out


def convection_ke_corners(
    h, dim: int, vel_corners, rho_q=None, dtype=np.float64
) -> np.ndarray:
    """Convection batch with *corner* velocities (n_elems, nc, dim):
    ``field_at_quad`` on the velocity is fused into the element loop, with
    an optional quad-point density weight ``rho_q``."""
    name = "ke_convection_corners" if rho_q is None else "ke_convection_corners_rho"
    fn = select(name)
    dt = np.dtype(dtype)
    if fn is None:
        from .operators import convection_matrix, value_at_quad

        vq = value_at_quad(np.asarray(vel_corners), dim)
        if rho_q is not None:
            vq = vq * np.asarray(rho_q)[..., None]
        return convection_matrix(h, dim, vq)
    _, w, N, dN = _typed_tables(dim, dt.name)
    h = np.asarray(h, dtype=dt)
    vc = np.ascontiguousarray(np.asarray(vel_corners, dtype=dt))
    out = np.empty((len(h), N.shape[1], N.shape[1]), dtype=dt)
    if rho_q is None:
        fn(w, N, dN, vc, h ** (dim - 1), out)
    else:
        rq = np.ascontiguousarray(np.asarray(rho_q, dtype=dt))
        fn(w, N, dN, vc, rq, h ** (dim - 1), out)
    return out


def scatter_csr(
    ke_flat: np.ndarray,
    src: np.ndarray,
    weight: np.ndarray,
    slot: np.ndarray,
    nnz: int,
) -> np.ndarray:
    """The plan numeric scatter: ``bincount(slot, ke_flat[src] * weight)``.
    The JIT loop accumulates in the identical (ascending-entry) order, so
    both paths are **bit-identical** — pinned by the differential suite."""
    fn = select("scatter")
    if fn is None:
        vals = ke_flat[src] * weight
        return np.bincount(slot, weights=vals, minlength=nnz)
    out = np.zeros(nnz, dtype=np.float64)
    fn(ke_flat, src, weight, slot, out)
    return out


# --------------------------------------------------------------------------
# Mesh-bound kernels (generation-keyed; spmdlint R6 guards stale use)


class BoundKernel:
    """A kernel selection bound to one ``(Mesh.generation, dtype)`` key.

    Holds the mesh's connectivity/interpolation arrays (never the mesh
    itself) so a retired topology cannot be silently applied: callers
    across a remesh boundary must go through :meth:`apply_for` or
    :meth:`check`, the exact contract spmdlint rule R6 enforces.
    """

    def __init__(self, mesh, name: str, dtype=np.float64):
        if name != "elem_matvec":
            raise ValueError(f"unknown bound kernel {name!r}")
        self.name = name
        self.generation = int(mesh.generation)
        self.dtype = np.dtype(dtype)
        self.key = kernel_key(mesh.dim, 1, dtype)
        self._elem_nodes = mesh.nodes.elem_nodes
        self._P = mesh.nodes.P
        self._n_nodes = int(mesh.n_nodes)
        warm(mesh.dim, 1, dtype)

    def check(self, mesh) -> None:
        """Raise :class:`StaleKernelError` unless ``mesh`` is the
        generation this kernel was bound for."""
        if int(mesh.generation) != self.generation:
            raise StaleKernelError(
                f"kernel {self.name!r} bound for mesh generation "
                f"{self.generation} (key {self.key}) applied to generation "
                f"{int(mesh.generation)}; rebind via "
                "repro.fem.kernels.get_kernel(mesh, ...)"
            )

    def apply(self, Ke: np.ndarray, u: np.ndarray) -> np.ndarray:
        """``v = (P^T [batched Ke] P) u`` — gather, elemental GEMV, and
        scatter fused in one JIT pass (fallback: einsum + ``add.at``)."""
        nv = self._P @ u
        fn = select(self.name)
        if fn is None:
            ve = np.einsum("eij,ej->ei", Ke, nv[self._elem_nodes])
            acc = np.zeros(self._n_nodes)
            np.add.at(acc, self._elem_nodes.ravel(), ve.ravel())
        else:  # pragma: no cover - needs numba
            acc = np.zeros(self._n_nodes)
            fn(
                np.ascontiguousarray(np.asarray(Ke, dtype=np.float64)),
                self._elem_nodes,
                nv,
                acc,
            )
        return self._P.T @ acc

    def apply_for(self, mesh, Ke: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Generation-checked :meth:`apply` (the safe entry point for
        callers holding a kernel across remeshes)."""
        self.check(mesh)
        return self.apply(Ke, u)


#: Most-recently-used bound kernels, keyed on (name, generation, dtype).
_BOUND_CACHE: "OrderedDict[tuple, BoundKernel]" = OrderedDict()
_BOUND_CACHE_MAX = 8


def get_kernel(mesh, name: str = "elem_matvec", dtype=np.float64) -> BoundKernel:
    """The process-wide :class:`BoundKernel` for this mesh generation,
    binding (and warming) on first use — the kernel twin of
    :func:`repro.fem.plan.get_plan`."""
    key = (name, int(mesh.generation), np.dtype(dtype).name)
    k = _BOUND_CACHE.get(key)
    if k is None:
        k = BoundKernel(mesh, name, dtype)
        _BOUND_CACHE[key] = k
        while len(_BOUND_CACHE) > _BOUND_CACHE_MAX:
            _BOUND_CACHE.popitem(last=False)
    else:
        _BOUND_CACHE.move_to_end(key)
    return k


def clear_kernel_cache() -> None:
    """Drop bound kernels and warm keys (tests / memory pressure); compiled
    machine code stays cached by Numba."""
    _BOUND_CACHE.clear()
    _WARMED.clear()
