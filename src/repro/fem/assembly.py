"""Global assembly of elemental operators — the documented *reference* path.

Assembly goes node-wise first (a plain COO scatter of the batched elemental
matrices) and is then projected through the hanging-node interpolation:
``A = P^T A_nodes P``.  This reproduces the paper's structure where the
elemental loop never special-cases hanging nodes — interpolation is folded
into the gather/scatter operators.

:func:`assemble_matrix` redoes the full symbolic work (COO construction,
sparse matmuls, duplicate summation) on every call.  The solver hot path
goes through :mod:`repro.fem.plan` instead, which precomputes all of that
once per mesh generation; this module stays as the slow, obviously-correct
reference the plan is validated against (``tests/fem/test_assembly_plan.py``
cross-checks them at 1e-14)."""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..mesh.mesh import Mesh


def assemble_matrix(mesh: Mesh, Ke: np.ndarray) -> sp.csr_matrix:
    """Assemble ``Σ_e P_e^T K_e P_e`` into a CSR matrix over DOFs.

    Reference path: rebuilds the COO pattern and re-runs the ``P^T A P``
    projection per call.  Hot loops use :func:`repro.fem.plan.plan_assemble`.
    """
    en = mesh.nodes.elem_nodes  # (n_elems, nc)
    n_elems, nc = en.shape
    rows = np.repeat(en, nc, axis=1).ravel()
    cols = np.tile(en, (1, nc)).ravel()
    # COO -> CSR conversion already sums duplicate entries, and the sparse
    # matmul product is duplicate-free by construction.
    A_nodes = sp.coo_matrix(
        (Ke.ravel(), (rows, cols)), shape=(mesh.n_nodes, mesh.n_nodes)
    ).tocsr()
    P = mesh.nodes.P
    return (P.T @ A_nodes @ P).tocsr()


def assemble_vector(mesh: Mesh, be: np.ndarray) -> np.ndarray:
    """Assemble elemental load vectors (n_elems, nc) into a DOF vector."""
    return mesh.elem_scatter(be)


def apply_dirichlet(
    A: sp.csr_matrix,
    b: np.ndarray,
    mask: np.ndarray,
    values: Optional[np.ndarray] = None,
):
    """Impose Dirichlet conditions by row/column elimination.

    Returns ``(A_bc, b_bc)``; the constrained rows become identity and the
    RHS is lifted so interior equations see the boundary data.
    """
    mask = np.asarray(mask, dtype=bool)
    vals = np.zeros(A.shape[0]) if values is None else np.asarray(values)
    g = np.zeros(A.shape[0])
    g[mask] = vals[mask] if vals.shape == g.shape else vals
    b_bc = b - A @ g
    b_bc[mask] = g[mask]
    keep = sp.diags((~mask).astype(np.float64))
    ident = sp.diags(mask.astype(np.float64))
    A_bc = (keep @ A @ keep + ident).tocsr()
    A_bc.eliminate_zeros()
    return A_bc, b_bc


def operator_row_sums(A: sp.csr_matrix) -> np.ndarray:
    return np.asarray(A.sum(axis=1)).ravel()
