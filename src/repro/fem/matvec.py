"""Matrix-free MATVEC over octree elements.

The paper's erosion/dilation identifiers and its scaling study (Fig. 4) are
built on this kernel: one pass over local elements with gather (GhostRead) /
scatter (GhostWrite), no assembled global matrix.  Here the gather/scatter
run through the hanging-node interpolation ``P``, so the kernel is exact on
adaptive meshes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..mesh.mesh import Mesh


def apply_elemental(mesh: Mesh, Ke: np.ndarray, u: np.ndarray) -> np.ndarray:
    """``v = A u`` with ``A = Σ_e P_e^T K_e P_e`` applied matrix-free.

    ``Ke`` is the batch of elemental matrices (n_elems, nc, nc).
    """
    ue = mesh.elem_gather(u)  # (n_elems, nc)
    ve = np.einsum("eij,ej->ei", Ke, ue)
    return mesh.elem_scatter(ve)


class MatrixFreeOperator:
    """Callable operator wrapping a batch of elemental matrices, with
    optional Dirichlet constraints (constrained DOFs act as identity)."""

    def __init__(
        self,
        mesh: Mesh,
        Ke: np.ndarray,
        dirichlet_mask: Optional[np.ndarray] = None,
    ):
        self.mesh = mesh
        self.Ke = Ke
        self.mask = dirichlet_mask
        self.shape = (mesh.n_dofs, mesh.n_dofs)
        self.dtype = np.float64

    def matvec(self, u: np.ndarray) -> np.ndarray:
        if self.mask is None:
            return apply_elemental(self.mesh, self.Ke, u)
        uu = u.copy()
        uu[self.mask] = 0.0
        v = apply_elemental(self.mesh, self.Ke, uu)
        v[self.mask] = u[self.mask]
        return v

    __call__ = matvec

    def diagonal(self) -> np.ndarray:
        """Assembled diagonal (for Jacobi preconditioning)."""
        nc = self.Ke.shape[1]
        diag_e = self.Ke[:, np.arange(nc), np.arange(nc)]
        d = self.mesh.elem_scatter(diag_e)
        if self.mask is not None:
            d[self.mask] = 1.0
        # P-weighted scatter can zero out rows only on degenerate meshes.
        d[d == 0.0] = 1.0
        return d
