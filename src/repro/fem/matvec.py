"""Matrix-free MATVEC over octree elements.

The paper's erosion/dilation identifiers and its scaling study (Fig. 4) are
built on this kernel: one pass over local elements with gather (GhostRead) /
scatter (GhostWrite), no assembled global matrix.  Here the gather/scatter
run through the hanging-node interpolation ``P``, so the kernel is exact on
adaptive meshes.

The hot loop dispatches through :mod:`repro.fem.kernels`: with Numba the
gather / elemental GEMV / scatter run as one fused JIT pass, otherwise the
original einsum + ``add.at`` fallback (results agree to 1e-14, enforced by
``tests/fem/test_kernels.py``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..mesh.mesh import Mesh
from . import kernels
from .plan import get_plan


def apply_elemental(mesh: Mesh, Ke: np.ndarray, u: np.ndarray) -> np.ndarray:
    """``v = A u`` with ``A = Σ_e P_e^T K_e P_e`` applied matrix-free.

    ``Ke`` is the batch of elemental matrices (n_elems, nc, nc).
    """
    return kernels.get_kernel(mesh, "elem_matvec").apply_for(mesh, Ke, u)


class MatrixFreeOperator:
    """Callable operator wrapping a batch of elemental matrices, with
    optional Dirichlet constraints (constrained DOFs act as identity)."""

    def __init__(
        self,
        mesh: Mesh,
        Ke: np.ndarray,
        dirichlet_mask: Optional[np.ndarray] = None,
    ):
        self.mesh = mesh
        self.Ke = Ke
        self.mask = dirichlet_mask
        self.shape = (mesh.n_dofs, mesh.n_dofs)
        self.dtype = np.float64
        self._kernel = kernels.get_kernel(mesh, "elem_matvec")

    def matvec(self, u: np.ndarray) -> np.ndarray:
        if self.mask is None:
            return self._kernel.apply_for(self.mesh, self.Ke, u)
        uu = u.copy()
        uu[self.mask] = 0.0
        v = self._kernel.apply_for(self.mesh, self.Ke, uu)
        v[self.mask] = u[self.mask]
        return v

    __call__ = matvec

    def diagonal(self) -> np.ndarray:
        """Assembled diagonal (for Jacobi preconditioning) — bitwise equal
        to ``plan.assemble(Ke).diagonal()`` via the plan's diagonal
        sub-plan, hence exact on hanging-node meshes (the historical
        per-element ``Ke[:, i, i]`` scatter was only approximate there)."""
        d = get_plan(self.mesh).diagonal(self.Ke)
        if self.mask is not None:
            d[self.mask] = 1.0
        # Zero diagonal entries can appear only on degenerate meshes; keep
        # them invertible for Jacobi.
        d[d == 0.0] = 1.0
        return d
