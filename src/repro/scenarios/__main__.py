"""Entry point: ``python -m repro.scenarios <verb>``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
