"""Concurrent batch driver: many independent scenario jobs over the
:mod:`repro.runtime` execution backends.

This is the "heavy traffic" shape of the ROADMAP north star — not one big
SPMD solve but *many concurrent independent simulations*.  The driver reuses
the runtime substrate directly: ``run_spmd(concurrency, worker)`` gives one
worker rank per concurrency slot (forked OS processes on the ``process``
backend for true multi-core throughput; threads or the deterministic serial
scheduler elsewhere), and jobs are dealt to ranks round-robin in a fixed
order, so a batch is reproducible on the serial backend.

Failure isolation is layered:

* *job level* — :func:`~repro.scenarios.runner.run_scenario` converts any
  in-simulation exception (divergence, non-finite state) into a ``failed``
  record; the worker keeps going with its next job;
* *rank level* — a worker rank dying (OOM, segfault under the process
  backend) loses only its unfinished jobs: every completed job has already
  written its own record file, and the next ``resume`` run re-runs exactly
  the jobs without a final verdict;
* *batch level* — ``KeyboardInterrupt``/rank errors still consolidate
  whatever finished into ``results.json`` before reporting.

Per-job wall budgets are cooperative (checked between steps by the runner),
which keeps them deterministic and backend-independent; a solver stuck
*inside* one step is bounded only by the SPMD deadlock timeout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..mpi.comm import SpmdError, run_spmd
from ..runtime.entry_points import spmd_entry_point
from .runner import JobResult, run_scenario
from .schema import ScenarioConfig
from .store import ResultsStore

#: Generous default SPMD watchdog: batch workers never block on communication,
#: so this only bounds a wedged worker process, not normal long batches.
DEFAULT_BATCH_TIMEOUT = 3600.0


@dataclass
class BatchJob:
    """One unit of batch work: a unique id + a validated config."""

    job_id: str
    config: ScenarioConfig


@dataclass
class BatchReport:
    """What a batch run did (also summarized into ``results.json`` meta)."""

    n_jobs: int
    n_run: int
    n_skipped: int
    wall_s: float
    statuses: dict = field(default_factory=dict)
    interrupted: bool = False
    results: dict = field(default_factory=dict)  # job_id -> JobResult

    @property
    def all_succeeded(self) -> bool:
        return not self.interrupted and set(self.statuses) <= {"succeeded"}

    def jobs_per_min(self) -> float:
        return 60.0 * self.n_run / self.wall_s if self.wall_s > 0 else 0.0


def make_jobs(
    configs: Sequence[ScenarioConfig],
    *,
    repeats: int = 1,
    base_seed: int = 0,
) -> List[BatchJob]:
    """Expand configs into uniquely-identified jobs.  ``repeats > 1`` clones
    each config with a distinct per-job seed (``base_seed + k``) — the
    ensemble pattern (many seeds of one scenario)."""
    jobs: List[BatchJob] = []
    for cfg in configs:
        for k in range(repeats):
            if repeats == 1:
                job_id, seed = cfg.name, cfg.control.seed or base_seed
            else:
                job_id, seed = f"{cfg.name}.r{k}", base_seed + k
            clone = ScenarioConfig.from_dict(cfg.to_dict())
            clone.control.seed = seed
            jobs.append(BatchJob(job_id=job_id, config=clone))
    ids = [j.job_id for j in jobs]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate job ids in batch: {sorted(ids)}")
    return jobs


def _run_assigned(jobs: List[BatchJob], store: ResultsStore,
                  backend_label: Optional[str]) -> List[dict]:
    """Run a worker rank's share of the batch, recording each job as it
    finishes.  Job-level failures never escape; a KeyboardInterrupt records
    the in-flight job as interrupted (via the runner) and unwinds."""
    out: List[dict] = []
    for job in jobs:
        try:
            result = run_scenario(
                job.config, job_id=job.job_id, workdir=store.workdir(job.job_id)
            )
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # store/VTK I/O errors etc.
            result = JobResult(
                job_id=job.job_id, name=job.config.name,
                family=job.config.family, status="failed",
                n_steps=job.config.time.n_steps, error=repr(exc),
            )
        if result.backend is None:
            result.backend = backend_label
        store.write_job(result)
        out.append(result.to_dict())
    return out


@spmd_entry_point("scenarios.batch_worker")
def _batch_worker(
    comm, todo: Sequence[BatchJob], store: ResultsStore,
    backend_label: Optional[str],
) -> List[dict]:
    """One batch worker rank: run this rank's round-robin share of the jobs.

    Module-level (not a closure) so the schedule extractor can compile it
    and the process backend can pickle it.  Deliberately communication-free:
    its CommSchedule is empty, so worker ranks never deadlock on each other
    and a dead rank only loses its own unfinished jobs.
    """
    mine = list(todo)[comm.rank :: comm.size]
    return _run_assigned(mine, store, backend_label)


def run_batch(
    jobs: Sequence[BatchJob],
    store: ResultsStore,
    *,
    concurrency: int = 1,
    backend: Optional[str] = None,
    resume: bool = True,
    spmd_timeout: float = DEFAULT_BATCH_TIMEOUT,
) -> BatchReport:
    """Run ``jobs`` with bounded concurrency; returns the consolidated view.

    ``resume=True`` (default) skips every job that already has a final
    verdict (succeeded/failed/timeout) in ``store`` — re-running a killed
    batch picks up only the unfinished jobs.  ``concurrency`` worker ranks
    execute on ``backend`` (default: ``REPRO_SPMD_BACKEND`` or thread).
    """
    t0 = time.perf_counter()
    store.prepare()
    done = store.finished_ids() if resume else set()
    todo = [j for j in jobs if j.job_id not in done]
    interrupted = False
    if todo:
        nranks = max(1, min(int(concurrency), len(todo)))
        try:
            run_spmd(
                nranks, _batch_worker, todo, store, backend,
                backend=backend, timeout=spmd_timeout,
            )
        except KeyboardInterrupt:
            interrupted = True
        except SpmdError:
            # A rank died mid-batch.  Finished jobs are already on disk;
            # everything else stays unfinished for the next resume.
            interrupted = True
    wall = time.perf_counter() - t0
    results = store.load_jobs()
    known = {j.job_id for j in jobs}
    statuses = ResultsStore.status_counts(
        {jid: r for jid, r in results.items() if jid in known}
    )
    report = BatchReport(
        n_jobs=len(jobs),
        n_run=len(todo),
        n_skipped=len(jobs) - len(todo),
        wall_s=round(wall, 4),
        statuses=statuses,
        interrupted=interrupted,
        results={jid: r for jid, r in results.items() if jid in known},
    )
    store.consolidate(
        meta={
            "last_batch": {
                "concurrency": int(concurrency),
                "backend": backend,
                "n_run": report.n_run,
                "n_skipped": report.n_skipped,
                "wall_s": report.wall_s,
                "jobs_per_min": round(report.jobs_per_min(), 3),
                "interrupted": interrupted,
            }
        }
    )
    return report
