"""``python -m repro.scenarios`` — run/list/status/report for scenario
batches.

Verbs::

    list                           registered families and variants
    run [NAMES...] [--all]         run scenarios as a concurrent batch
    status --out DIR               job statuses from a results store
    report --out DIR               aggregate throughput/cost report

``run`` exits non-zero unless every job in the batch succeeded, so CI and
shell pipelines can trust the exit code; ``status --assert-succeeded`` does
the same for an existing store.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from . import registry
from .batch import make_jobs, run_batch
from .runner import JobResult
from .schema import ScenarioConfig, ScenarioError
from .store import ResultsStore

DEFAULT_OUT = os.path.join("scenario_results")


def _fmt_row(cols, widths):
    return "  ".join(str(c).ljust(w) for c, w in zip(cols, widths))


def _print_results_table(results: dict) -> None:
    headers = ("job", "family", "status", "steps", "wall s", "newton", "error")
    rows = []
    for jid in sorted(results):
        r = results[jid]
        rows.append(
            (
                jid,
                r.family,
                r.status,
                f"{r.steps_done}/{r.n_steps}",
                f"{r.wall_s:.2f}",
                r.newton_iterations,
                (r.error or "")[:48],
            )
        )
    widths = [
        max(len(str(h)), *(len(str(row[i])) for row in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    print(_fmt_row(headers, widths))
    for row in rows:
        print(_fmt_row(row, widths))


# ------------------------------------------------------------------- verbs


def cmd_list(args) -> int:
    print(f"{len(registry.families())} families, "
          f"{len(registry.variants())} variants "
          "(names accept a bare family for its 2D variant):\n")
    for name in registry.variants():
        cfg = registry.build(name, quick=args.quick)
        print(
            f"  {name:<22} solver={cfg.solver:<5} dim={cfg.domain.dim} "
            f"levels {cfg.domain.min_level}..{cfg.domain.max_level} "
            f"steps={cfg.time.n_steps} dt={cfg.time.dt:g}"
            + (f"  remesh_every={cfg.refinement.remesh_every}"
               if cfg.refinement.remesh_every else "")
        )
    return 0


def _configs_from_args(args) -> List[ScenarioConfig]:
    dims = tuple(int(d) for d in args.dims.split(",")) if args.dims else (2, 3)
    if args.all:
        configs = registry.build_all(quick=args.quick, dims=dims)
    elif args.names:
        configs = [registry.build(n, quick=args.quick) for n in args.names]
        configs = [c for c in configs if c.domain.dim in dims]
    else:
        raise ScenarioError("run: give scenario names or --all")
    if not configs:
        raise ScenarioError("run: no scenarios selected (check names/--dims)")
    for cfg in configs:
        if args.steps:
            cfg.time.n_steps = args.steps
        if args.checkpoint_every is not None:
            cfg.control.checkpoint_every = args.checkpoint_every
        if args.timeout is not None:
            cfg.control.timeout_s = args.timeout
        if args.obs:
            cfg.outputs.obs = True
        cfg.validate()
    return configs


def cmd_run(args) -> int:
    if args.backend is not None:
        from ..runtime import available_backends

        if args.backend not in available_backends():
            raise ScenarioError(
                f"unknown SPMD backend {args.backend!r}; available: "
                f"{sorted(available_backends())}"
            )
    configs = _configs_from_args(args)
    jobs = make_jobs(configs, repeats=args.repeats, base_seed=args.seed)
    store = ResultsStore(args.out)
    print(
        f"batch: {len(jobs)} jobs ({', '.join(c.name for c in configs)}) "
        f"concurrency={args.concurrency} backend={args.backend or 'default'} "
        f"-> {args.out}"
    )
    report = run_batch(
        jobs,
        store,
        concurrency=args.concurrency,
        backend=args.backend,
        resume=not args.no_resume,
    )
    _print_results_table(report.results)
    print(
        f"\n{report.n_run} run, {report.n_skipped} resumed-as-done, "
        f"{report.wall_s:.1f}s wall ({report.jobs_per_min():.1f} jobs/min), "
        f"statuses: {report.statuses}"
    )
    if report.interrupted:
        print("batch interrupted — re-run with the same --out to resume",
              file=sys.stderr)
        return 2
    if not report.all_succeeded:
        print("batch finished with non-succeeded jobs", file=sys.stderr)
        return 1
    return 0


def cmd_status(args) -> int:
    store = ResultsStore(args.out)
    results = store.load_jobs()
    if not results:
        print(f"no results store under {args.out}", file=sys.stderr)
        return 1
    _print_results_table(results)
    counts = ResultsStore.status_counts(results)
    print(f"\nstatuses: {counts}")
    if args.assert_succeeded and set(counts) != {"succeeded"}:
        print("ERROR: not all jobs succeeded", file=sys.stderr)
        return 1
    return 0


def cmd_report(args) -> int:
    store = ResultsStore(args.out)
    results = store.load_jobs()
    if not results:
        print(f"no results store under {args.out}", file=sys.stderr)
        return 1
    by_family: dict = {}
    for r in results.values():
        f = by_family.setdefault(
            r.family,
            {"jobs": 0, "succeeded": 0, "wall_s": 0.0, "newton": 0,
             "krylov": 0, "steps": 0},
        )
        f["jobs"] += 1
        f["succeeded"] += r.status == "succeeded"
        f["wall_s"] += r.wall_s
        f["newton"] += r.newton_iterations
        f["krylov"] += r.krylov_iterations
        f["steps"] += r.steps_done
    total_wall = sum(f["wall_s"] for f in by_family.values())
    payload = {
        "store": args.out,
        "n_jobs": len(results),
        "statuses": ResultsStore.status_counts(results),
        "total_job_wall_s": round(total_wall, 3),
        "families": {
            k: {**v, "wall_s": round(v["wall_s"], 3)}
            for k, v in sorted(by_family.items())
        },
    }
    print(json.dumps(payload, indent=2))
    return 0


# ------------------------------------------------------------------ parser


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.scenarios", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = ap.add_subparsers(dest="verb", required=True)

    p_list = sub.add_parser("list", help="registered scenario families")
    p_list.add_argument("--quick", action="store_true",
                        help="show the quick (CI-sized) variants")
    p_list.set_defaults(fn=cmd_list)

    p_run = sub.add_parser("run", help="run scenarios as a concurrent batch")
    p_run.add_argument("names", nargs="*",
                       help="variant names (rising_bubble_2d, drop_3d, ...)")
    p_run.add_argument("--all", action="store_true",
                       help="every registered variant")
    p_run.add_argument("--quick", action="store_true",
                       help="CI-sized configs (seconds per job)")
    p_run.add_argument("--dims", default=None,
                       help="comma-separated dims filter, e.g. --dims 2")
    p_run.add_argument("--out", default=DEFAULT_OUT,
                       help=f"results store directory [{DEFAULT_OUT}]")
    p_run.add_argument("--concurrency", type=int, default=1,
                       help="concurrent jobs (worker ranks)")
    p_run.add_argument("--backend", default=None,
                       help="SPMD backend for the workers "
                            "(thread|process|serial)")
    p_run.add_argument("--repeats", type=int, default=1,
                       help="seeded repeats per scenario (ensembles)")
    p_run.add_argument("--seed", type=int, default=0, help="base seed")
    p_run.add_argument("--steps", type=int, default=0,
                       help="override n_steps on every selected config")
    p_run.add_argument("--checkpoint-every", type=int, default=None,
                       help="checkpoint cadence in steps (0 disables)")
    p_run.add_argument("--timeout", type=float, default=None,
                       help="per-job cooperative wall budget in seconds")
    p_run.add_argument("--obs", action="store_true",
                       help="attach a repro.obs span summary to each job")
    p_run.add_argument("--no-resume", action="store_true",
                       help="re-run jobs that already have a final verdict")
    p_run.set_defaults(fn=cmd_run)

    p_status = sub.add_parser("status", help="statuses from a results store")
    p_status.add_argument("--out", default=DEFAULT_OUT)
    p_status.add_argument("--assert-succeeded", action="store_true",
                          help="exit 1 unless every job succeeded")
    p_status.set_defaults(fn=cmd_status)

    p_report = sub.add_parser("report", help="aggregate JSON report")
    p_report.add_argument("--out", default=DEFAULT_OUT)
    p_report.set_defaults(fn=cmd_report)
    return ap


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
