"""JSON results store for scenario batches.

Layout under the store root::

    results.json          consolidated {meta, jobs: {job_id: record}}
    jobs/<job_id>.json    per-job record, written by whichever worker ran it
    work/<job_id>/        job workdir (checkpoint.npz, vtk/, ...)

Workers write *only* their own ``jobs/<job_id>.json`` (one job = one writer,
so concurrent ranks never contend), atomically via tmp-file + ``os.replace``.
The batch parent consolidates per-job records into ``results.json`` after a
run — and on load the per-job files win over the consolidated view, so a
batch killed mid-flight still resumes from exactly the jobs that finished.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

from .runner import JobResult
from .schema import FINISHED_STATUSES


def _atomic_write_json(path: str, payload: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    os.replace(tmp, path)


class ResultsStore:
    """Per-batch job records rooted at ``root``."""

    def __init__(self, root: str):
        self.root = root
        self.jobs_dir = os.path.join(root, "jobs")
        self.results_path = os.path.join(root, "results.json")

    def prepare(self) -> None:
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(os.path.join(self.root, "work"), exist_ok=True)

    def workdir(self, job_id: str) -> str:
        return os.path.join(self.root, "work", job_id)

    def job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    # ------------------------------------------------------------- writes

    def write_job(self, result: JobResult) -> None:
        """Record one finished/interrupted job (atomic, single-writer)."""
        self.prepare()
        _atomic_write_json(self.job_path(result.job_id), result.to_dict())

    def consolidate(self, meta: Optional[dict] = None) -> dict:
        """Merge per-job records into ``results.json`` and return it."""
        jobs = self.load_jobs()
        payload = {
            "meta": {
                "updated_unix": int(time.time()),
                "n_jobs": len(jobs),
                "statuses": self.status_counts(jobs),
                **(meta or {}),
            },
            "jobs": {jid: r.to_dict() for jid, r in sorted(jobs.items())},
        }
        os.makedirs(self.root, exist_ok=True)
        _atomic_write_json(self.results_path, payload)
        return payload

    # -------------------------------------------------------------- reads

    def load_jobs(self) -> Dict[str, JobResult]:
        """All known records; per-job files override ``results.json``."""
        jobs: Dict[str, JobResult] = {}
        if os.path.exists(self.results_path):
            with open(self.results_path) as fh:
                for jid, rec in json.load(fh).get("jobs", {}).items():
                    jobs[jid] = JobResult.from_dict(rec)
        if os.path.isdir(self.jobs_dir):
            for fname in sorted(os.listdir(self.jobs_dir)):
                if not fname.endswith(".json") or fname.endswith(".tmp"):
                    continue
                try:
                    with open(os.path.join(self.jobs_dir, fname)) as fh:
                        rec = json.load(fh)
                    jobs[rec["job_id"]] = JobResult.from_dict(rec)
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue  # torn write from a killed worker: re-run it
        return jobs

    def finished_ids(self) -> set:
        """Jobs with a final verdict — skipped by a resuming batch."""
        return {
            jid
            for jid, r in self.load_jobs().items()
            if r.status in FINISHED_STATUSES
        }

    @staticmethod
    def status_counts(jobs: Dict[str, JobResult]) -> dict:
        counts: dict = {}
        for r in jobs.values():
            counts[r.status] = counts.get(r.status, 0) + 1
        return counts
