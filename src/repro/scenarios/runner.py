"""Single-scenario runner: config in, :class:`JobResult` out.

Executes one :class:`~repro.scenarios.schema.ScenarioConfig` to completion
(or failure, or cooperative timeout), with optional checkpoint/restart via
:mod:`repro.amr.checkpoint`:

* ``solver="ch"`` runs the advective Cahn-Hilliard block alone (interface
  dynamics without flow — coalescence, spinodal, drop relaxation);
* ``solver="chns"`` runs the full two-block projection stepper.

Determinism contract: a run resumed from a checkpoint produces bit-identical
final state to an uninterrupted run (serial numerics carry no cross-step
solver state; the scenario tests pin this down).  Checkpoints record a
config digest and refuse to resume a *different* scenario.

Failure semantics: any exception inside the stepping loop — divergence,
non-finite state, solver errors — is caught and reported as a ``failed``
result with the exception text; only :class:`ScenarioInterrupt` (and a real
``KeyboardInterrupt``) escape differently, leaving an ``interrupted`` record
that the batch driver re-runs on resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
from dataclasses import asdict, dataclass, field
from typing import Callable, Optional

import numpy as np

from .. import obs
from ..amr.checkpoint import load_checkpoint_meta, save_checkpoint
from ..amr.driver import remesh
from ..chns.ch_solver import CHSolver
from ..chns.free_energy import ginzburg_landau_energy, total_mass
from ..chns.timestepper import CHNSTimeStepper
from ..mesh.mesh import Mesh, mesh_from_field
from .schema import ScenarioConfig, ScenarioError


class ScenarioInterrupt(Exception):
    """Injectable interrupt (tests / drivers): stop after the current step,
    leaving the checkpoint as the resume point."""


class SolverDivergence(RuntimeError):
    """The discrete state left the physical regime (NaN/Inf or blow-up)."""


class JobTimeout(RuntimeError):
    """Cooperative per-job wall-clock budget exceeded between steps."""


@dataclass
class StepState:
    """Live view handed to ``on_step`` callbacks (examples print from it)."""

    step: int
    mesh: Mesh
    phi: np.ndarray
    mu: np.ndarray
    vel: Optional[np.ndarray]
    p: Optional[np.ndarray]
    stepper: Optional[CHNSTimeStepper]


@dataclass
class JobResult:
    """One row of the results store (JSON round-trippable)."""

    job_id: str
    name: str
    family: str
    status: str  # pending|running|succeeded|failed|timeout|interrupted
    steps_done: int = 0
    n_steps: int = 0
    wall_s: float = 0.0
    newton_iterations: int = 0
    krylov_iterations: int = 0
    n_elems_final: int = 0
    diagnostics: dict = field(default_factory=dict)
    error: Optional[str] = None
    resumed_from_step: Optional[int] = None
    seed: int = 0
    backend: Optional[str] = None
    obs_summary: Optional[dict] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "JobResult":
        return cls(**d)


def config_digest(config: ScenarioConfig) -> str:
    """Stable digest of a scenario config — checkpoints embed it so a
    restart never silently continues a different scenario."""
    blob = json.dumps(config.to_dict(), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _check_finite(step: int, *arrays: np.ndarray) -> None:
    for a in arrays:
        if a is not None and not np.all(np.isfinite(a)):
            raise SolverDivergence(f"non-finite state after step {step}")


def _phi_sane(step: int, phi: np.ndarray) -> None:
    if np.abs(phi).max() > 10.0:
        raise SolverDivergence(
            f"phase field blew up after step {step} "
            f"(|phi|max = {np.abs(phi).max():.2e})"
        )


def _obs_summary(snapshot: dict) -> dict:
    """Compact WorldReport payload for the results store."""
    report = obs.world_report([snapshot])
    d = report.to_dict()
    spans = d.get("spans", [])
    if len(spans) > 24:  # keep the store small: cheapest spans dropped
        spans = sorted(spans, key=lambda s: -s.get("inclusive_mean_s", 0.0))[:24]
        d["spans"] = spans
        d["truncated"] = True
    return d


class _Clock:
    """Wall budget: started once per run, consulted between steps."""

    def __init__(self, timeout_s: Optional[float]):
        self.t0 = time.perf_counter()
        self.timeout_s = timeout_s

    def elapsed(self) -> float:
        return time.perf_counter() - self.t0

    def check(self, step: int) -> None:
        if self.timeout_s is not None and self.elapsed() > self.timeout_s:
            raise JobTimeout(
                f"exceeded {self.timeout_s:.1f}s budget before step {step} "
                f"({self.elapsed():.1f}s elapsed)"
            )


def run_scenario(
    config: ScenarioConfig,
    *,
    job_id: Optional[str] = None,
    workdir: Optional[str] = None,
    on_step: Optional[Callable[[StepState], None]] = None,
    interrupt_after_step: Optional[int] = None,
) -> JobResult:
    """Run one scenario job; never raises for in-simulation failures.

    ``workdir`` (required for checkpoints / VTK output) receives
    ``checkpoint.npz`` every ``control.checkpoint_every`` steps; when a
    valid checkpoint for *this* config already exists there, the run
    resumes from it.  ``interrupt_after_step=k`` raises
    :class:`ScenarioInterrupt` once step ``k`` has completed (checkpoint
    included) — the hook the interrupt/resume tests drive.
    """
    config.validate()
    result = JobResult(
        job_id=job_id or config.name,
        name=config.name,
        family=config.family,
        status="running",
        n_steps=config.time.n_steps,
        seed=config.control.seed,
        backend=config.control.backend,
    )
    clock = _Clock(config.control.timeout_s)
    if workdir:
        os.makedirs(workdir, exist_ok=True)
    obs_on = config.outputs.obs
    try:
        if obs_on:
            obs.enable()
        _run_loop(config, result, clock, workdir, on_step,
                  interrupt_after_step)
        result.status = "succeeded"
    except ScenarioInterrupt as exc:
        result.status = "interrupted"
        result.error = str(exc) or "interrupted"
    except JobTimeout as exc:
        result.status = "timeout"
        result.error = str(exc)
    except KeyboardInterrupt:
        result.status = "interrupted"
        result.error = "KeyboardInterrupt"
        raise  # real interrupts must still unwind the batch
    except Exception as exc:
        result.status = "failed"
        result.error = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
    finally:
        result.wall_s = round(clock.elapsed(), 4)
        if obs_on:
            result.obs_summary = _obs_summary(obs.snapshot())
            obs.disable()
    return result


# --------------------------------------------------------------------------
# The stepping loop (shared scaffolding, per-solver state advance)
# --------------------------------------------------------------------------


def _run_loop(config, result, clock, workdir, on_step, interrupt_after_step):
    ckpt_path = os.path.join(workdir, "checkpoint.npz") if workdir else None
    digest = config_digest(config)
    sim = _ChState(config) if config.solver == "ch" else _ChnsState(config)

    start_step = 0
    if ckpt_path and os.path.exists(ckpt_path):
        tree, fields, _, meta = load_checkpoint_meta(ckpt_path)
        if meta.get("config_digest") != digest:
            raise ScenarioError(
                f"checkpoint in {workdir} belongs to a different scenario "
                f"(digest {meta.get('config_digest')} != {digest})"
            )
        start_step = int(meta["step"])
        sim.restore(Mesh(tree, check_balance=False), fields, start_step)
        result.resumed_from_step = start_step
    else:
        sim.fresh_start()

    for step in range(start_step, config.time.n_steps):
        clock.check(step)
        sim.advance(step)
        done = step + 1
        result.steps_done = done
        phi = sim.phi
        _check_finite(step, *sim.state_arrays())
        _phi_sane(step, phi)
        every = config.outputs.diagnostics_every
        if on_step is not None and every and done % every == 0:
            on_step(sim.step_state(done))
        if config.outputs.vtk and workdir:
            _write_vtk(config, sim, workdir, done)
        ck_every = config.control.checkpoint_every
        if ckpt_path and ck_every and done % ck_every == 0:
            save_checkpoint(
                ckpt_path, sim.mesh.tree, sim.checkpoint_fields(),
                nprocs=config.control.nprocs,
                meta={"step": done, "config_digest": digest},
            )
        if interrupt_after_step is not None and done >= interrupt_after_step:
            raise ScenarioInterrupt(f"injected interrupt after step {done}")

    result.n_elems_final = sim.mesh.n_elems
    result.newton_iterations = sim.newton_iterations
    result.krylov_iterations = sim.krylov_iterations
    result.diagnostics = sim.diagnostics()


def _write_vtk(config, sim, workdir, done):
    from ..io.vtk import write_time_series

    write_time_series(
        os.path.join(workdir, "vtk"), config.name, done, sim.mesh,
        point_data={"phi": sim.phi},
        cell_data={"level": sim.mesh.tree.levels.astype(float)},
    )


class _ChState:
    """Cahn-Hilliard-only evolution (no flow): phi/mu + optional remesh."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        self.params = config.build_params()
        self.remesh_cfg = config.refinement.build()
        self.newton_iterations = 0
        self.krylov_iterations = 0

    def fresh_start(self) -> None:
        phi0 = self.config.build_ic()
        dom = self.config.domain
        self.mesh = mesh_from_field(
            phi0, dom.dim, max_level=dom.max_level, min_level=dom.min_level,
            threshold=dom.threshold,
        )
        self.solver = CHSolver(self.mesh, self.params)
        self.phi = self.mesh.interpolate(phi0)
        self.mu = self.solver.initial_mu(self.phi)

    def restore(self, mesh: Mesh, fields: dict, step: int) -> None:
        self.mesh = mesh
        self.solver = CHSolver(mesh, self.params)
        self.phi = np.asarray(fields["phi"], dtype=float)
        self.mu = np.asarray(fields["mu"], dtype=float)

    def advance(self, step: int) -> None:
        cfg = self.config
        every = cfg.refinement.remesh_every
        if every and step > 0 and step % every == 0:
            new_mesh, new_fields, _ = remesh(
                self.mesh, {"phi": self.phi, "mu": self.mu}, self.remesh_cfg
            )
            self.mesh = new_mesh
            self.phi, self.mu = new_fields["phi"], new_fields["mu"]
            self.solver = CHSolver(new_mesh, self.params)
        res = self.solver.solve(self.phi, self.mu, None, cfg.time.dt)
        self.phi, self.mu = res.phi, res.mu
        self.newton_iterations += res.newton.iterations
        if not res.newton.converged:
            raise SolverDivergence(
                f"CH Newton failed to converge at step {step} "
                f"(residual {res.newton.residual:.2e})"
            )

    def state_arrays(self):
        return (self.phi, self.mu)

    def checkpoint_fields(self) -> dict:
        return {"phi": self.phi, "mu": self.mu}

    def step_state(self, done: int) -> StepState:
        return StepState(done, self.mesh, self.phi, self.mu, None, None, None)

    def diagnostics(self) -> dict:
        return {
            "mass": float(total_mass(self.mesh, self.phi)),
            "energy": float(
                ginzburg_landau_energy(self.mesh, self.phi, self.params.Cn)
            ),
            "phi_min": float(self.phi.min()),
            "phi_max": float(self.phi.max()),
        }


class _ChnsState:
    """Full two-block CHNS projection evolution via the time stepper."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        self.params = config.build_params()

    def _make_stepper(self, mesh: Mesh) -> CHNSTimeStepper:
        cfg = self.config
        return CHNSTimeStepper(
            mesh,
            self.params,
            n_blocks=cfg.time.n_blocks,
            velocity_bc=cfg.build_bc(),
            remesh_config=cfg.refinement.build(),
            remesh_every=cfg.refinement.remesh_every,
            precond=cfg.precond,
        )

    def fresh_start(self) -> None:
        phi0 = self.config.build_ic()
        dom = self.config.domain
        mesh = mesh_from_field(
            phi0, dom.dim, max_level=dom.max_level, min_level=dom.min_level,
            threshold=dom.threshold,
        )
        self.stepper = self._make_stepper(mesh)
        self.stepper.initialize(phi0)

    def restore(self, mesh: Mesh, fields: dict, step: int) -> None:
        self.stepper = self._make_stepper(mesh)
        dim = mesh.dim
        self.stepper.restore(
            phi=fields["phi"],
            mu=fields["mu"],
            p=fields["p"],
            vel=np.stack([fields[f"v{i}"] for i in range(dim)], axis=1),
            vel_old=np.stack([fields[f"vold{i}"] for i in range(dim)], axis=1),
            step_count=step,
        )

    @property
    def mesh(self) -> Mesh:
        return self.stepper.mesh

    @property
    def phi(self) -> np.ndarray:
        return self.stepper.phi

    @property
    def newton_iterations(self) -> int:
        return self.stepper.iteration_counts["newton"]

    @property
    def krylov_iterations(self) -> int:
        return self.stepper.iteration_counts["krylov"]

    def advance(self, step: int) -> None:
        self.stepper.step(self.config.time.dt)

    def state_arrays(self):
        s = self.stepper
        return (s.phi, s.mu, s.vel, s.p)

    def checkpoint_fields(self) -> dict:
        s = self.stepper
        fields = {"phi": s.phi, "mu": s.mu, "p": s.p}
        for i in range(self.mesh.dim):
            fields[f"v{i}"] = s.vel[:, i]
            fields[f"vold{i}"] = s.vel_old[:, i]
        return fields

    def step_state(self, done: int) -> StepState:
        s = self.stepper
        return StepState(done, s.mesh, s.phi, s.mu, s.vel, s.p, s)

    def diagnostics(self) -> dict:
        s = self.stepper
        d = s.diagnostics()
        return {
            "mass": float(d.mass),
            "energy": float(d.energy),
            "phi_min": float(d.phi_min),
            "phi_max": float(d.phi_max),
            "vel_max": float(np.abs(s.vel).max()),
        }
