"""Declarative scenario schema: one validated, JSON-round-trippable config
describing a complete multiphase simulation.

A :class:`ScenarioConfig` names everything a run needs — domain, physics
parameters, initial condition, refinement policy, time stepping, outputs,
and job control — as plain data.  ``to_dict``/``from_dict`` round-trip it
through JSON exactly, and ``from_dict`` validates (unknown keys are errors,
level orderings and positivity are checked up front), so a config that
loads is a config that runs.  Initial conditions and boundary conditions
are referenced *by name* against small registries in this module; the
callables themselves never enter the serialized form.

The scenario registry (:mod:`repro.scenarios.registry`) publishes one
config builder per physics family; the batch driver and CLI consume only
the schema, never the builders.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields as dc_fields
from typing import Callable, Dict, Optional

import numpy as np

from ..amr.driver import RemeshConfig
from ..chns import initial_conditions as ic
from ..chns.params import CHNSParams
from ..chns.timestepper import jet_inflow_bc, lid_driven_bc, no_slip_bc

SOLVERS = ("ch", "chns")
PRECONDS = ("jacobi", "block_jacobi", "ssor", "pcd")
JOB_STATUSES = ("pending", "running", "succeeded", "failed", "timeout",
                "interrupted")
#: statuses the batch driver treats as final — anything else is re-run on
#: resume ("interrupted" included: the job never reached a verdict).
FINISHED_STATUSES = ("succeeded", "failed", "timeout")


class ScenarioError(ValueError):
    """Invalid scenario config (bad key, bad value, unknown IC/BC name)."""


# --------------------------------------------------------------------------
# Initial-condition and boundary-condition registries (name -> callable).
# ICs are functions of the DOF coordinates; the ``seed`` entry lets seeded
# ICs (spinodal) vary per job while staying bit-deterministic.
# --------------------------------------------------------------------------

IC_BUILDERS: Dict[str, Callable] = {
    "drop": ic.drop,
    "two_drops": ic.two_drops,
    "rising_bubble": ic.rising_bubble,
    "jet_column": ic.jet_column,
    "rayleigh_taylor": ic.rayleigh_taylor,
    "spinodal": ic.spinodal,
    "filament": ic.filament,
}

BC_BUILDERS: Dict[str, Callable] = {
    "no_slip": no_slip_bc,
    "lid_driven": lid_driven_bc,
    "jet_inflow": jet_inflow_bc,
}


def _from_known(cls, d: dict, what: str):
    known = {f.name for f in dc_fields(cls)}
    unknown = set(d) - known
    if unknown:
        raise ScenarioError(f"unknown {what} keys: {sorted(unknown)}")
    return cls(**d)


def _listify(obj):
    """Tuples -> lists, recursively, so ``to_dict`` output is exactly what
    ``json.loads(json.dumps(...))`` yields (one canonical wire form)."""
    if isinstance(obj, (list, tuple)):
        return [_listify(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _listify(v) for k, v in obj.items()}
    return obj


# --------------------------------------------------------------------------
# Sections
# --------------------------------------------------------------------------


@dataclass
class DomainConfig:
    """Unit-cube octree domain: dimensionality + initial refinement."""

    dim: int = 2
    max_level: int = 5
    min_level: int = 2
    threshold: float = 0.95  # interface-band threshold for mesh_from_field

    def validate(self) -> None:
        if self.dim not in (2, 3):
            raise ScenarioError(f"domain.dim must be 2 or 3, got {self.dim}")
        if not (0 < self.min_level <= self.max_level):
            raise ScenarioError(
                f"domain levels must satisfy 0 < min <= max, got "
                f"{self.min_level}..{self.max_level}"
            )


@dataclass
class InitialCondition:
    """A named phase-field profile plus its keyword parameters."""

    kind: str = "drop"
    params: dict = field(default_factory=dict)

    def validate(self) -> None:
        if self.kind not in IC_BUILDERS:
            raise ScenarioError(
                f"unknown initial condition {self.kind!r}; "
                f"registered: {sorted(IC_BUILDERS)}"
            )

    def build(self, seed: int = 0) -> Callable[[np.ndarray], np.ndarray]:
        """The phi0(x) callable.  ``seed`` reaches ICs that declare a
        ``seed`` parameter (e.g. spinodal) unless the config pins one."""
        fn = IC_BUILDERS[self.kind]
        kwargs = dict(self.params)
        if self.kind == "spinodal":
            kwargs.setdefault("seed", seed)
        return lambda x: fn(x, **kwargs)


@dataclass
class RefinementPolicy:
    """AMR policy: a serialized :class:`RemeshConfig` + remesh cadence.
    ``remesh_every == 0`` disables mid-run adaptation (the initial mesh is
    still interface-refined via the domain section)."""

    remesh_every: int = 0
    remesh: Optional[dict] = None  # RemeshConfig.to_dict() payload

    def validate(self) -> None:
        if self.remesh_every < 0:
            raise ScenarioError("refinement.remesh_every must be >= 0")
        if self.remesh_every > 0 and self.remesh is None:
            raise ScenarioError(
                "refinement.remesh is required when remesh_every > 0"
            )
        if self.remesh is not None:
            self.build()  # RemeshConfig validates level ordering

    def build(self) -> Optional[RemeshConfig]:
        return None if self.remesh is None else RemeshConfig.from_dict(self.remesh)


@dataclass
class TimeConfig:
    dt: float = 1e-3
    n_steps: int = 4
    n_blocks: int = 1  # projection blocks per step (CHNS only)

    def validate(self) -> None:
        if self.dt <= 0:
            raise ScenarioError("time.dt must be positive")
        if self.n_steps < 1:
            raise ScenarioError("time.n_steps must be >= 1")
        if self.n_blocks < 1:
            raise ScenarioError("time.n_blocks must be >= 1")


@dataclass
class OutputConfig:
    diagnostics_every: int = 1  # mass/energy/bounds cadence (0 = final only)
    obs: bool = False  # attach a repro.obs span/counter summary to the result
    vtk: bool = False  # write a VTK time series into the job workdir

    def validate(self) -> None:
        if self.diagnostics_every < 0:
            raise ScenarioError("outputs.diagnostics_every must be >= 0")


@dataclass
class JobControl:
    """Per-job execution knobs consumed by the runner and batch driver."""

    seed: int = 0  # reaches seeded ICs; recorded in the result
    timeout_s: Optional[float] = None  # cooperative per-job wall budget
    checkpoint_every: int = 0  # steps between checkpoints (0 = none)
    backend: Optional[str] = None  # informational: SPMD backend label
    nprocs: int = 1  # reserved for SPMD jobs; recorded in the result

    def validate(self) -> None:
        if self.backend is not None:
            from ..runtime import available_backends

            if self.backend not in available_backends():
                raise ScenarioError(
                    f"unknown backend {self.backend!r}; available: "
                    f"{sorted(available_backends())}"
                )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ScenarioError("control.timeout_s must be positive")
        if self.checkpoint_every < 0:
            raise ScenarioError("control.checkpoint_every must be >= 0")
        if self.nprocs < 1:
            raise ScenarioError("control.nprocs must be >= 1")


# --------------------------------------------------------------------------
# The scenario
# --------------------------------------------------------------------------


@dataclass
class ScenarioConfig:
    """Everything one simulation job needs, as validated plain data."""

    name: str
    family: str
    solver: str = "ch"  # "ch" (Cahn-Hilliard only) | "chns" (full projection)
    domain: DomainConfig = field(default_factory=DomainConfig)
    physics: dict = field(default_factory=dict)  # CHNSParams kwargs
    ic: InitialCondition = field(default_factory=InitialCondition)
    bc: Optional[str] = None  # velocity BC name (chns only; None = no_slip)
    bc_params: dict = field(default_factory=dict)
    #: NS/PP inner-solve preconditioner (None = historical Jacobi; "pcd"
    #: enables the GMG-backed block preconditioner from repro.la.precond).
    precond: Optional[str] = None
    refinement: RefinementPolicy = field(default_factory=RefinementPolicy)
    time: TimeConfig = field(default_factory=TimeConfig)
    outputs: OutputConfig = field(default_factory=OutputConfig)
    control: JobControl = field(default_factory=JobControl)

    # ----------------------------------------------------------- validate

    def validate(self) -> "ScenarioConfig":
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        if self.solver not in SOLVERS:
            raise ScenarioError(
                f"solver must be one of {SOLVERS}, got {self.solver!r}"
            )
        for section in (self.domain, self.ic, self.refinement, self.time,
                        self.outputs, self.control):
            section.validate()
        if self.bc is not None and self.bc not in BC_BUILDERS:
            raise ScenarioError(
                f"unknown velocity BC {self.bc!r}; registered: "
                f"{sorted(BC_BUILDERS)}"
            )
        if self.bc is not None and self.solver != "chns":
            raise ScenarioError("velocity BCs require solver='chns'")
        if self.precond is not None and self.precond not in PRECONDS:
            raise ScenarioError(
                f"unknown precond {self.precond!r}; one of {PRECONDS}"
            )
        if self.precond is not None and self.solver != "chns":
            raise ScenarioError("precond only applies to solver='chns'")
        self.build_params()  # CHNSParams validates positivity
        rm = self.refinement.build()
        if rm is not None and rm.feature_level < self.domain.max_level:
            raise ScenarioError(
                "refinement.feature_level must be >= domain.max_level "
                "(otherwise the first remesh throws away initial resolution)"
            )
        return self

    # -------------------------------------------------------------- build

    def build_params(self) -> CHNSParams:
        known = {f.name for f in dc_fields(CHNSParams)}
        unknown = set(self.physics) - known
        if unknown:
            raise ScenarioError(f"unknown physics keys: {sorted(unknown)}")
        kwargs = dict(self.physics)
        if "gravity_dir" in kwargs:
            kwargs["gravity_dir"] = tuple(kwargs["gravity_dir"])
        return CHNSParams(**kwargs)

    def build_ic(self) -> Callable[[np.ndarray], np.ndarray]:
        return self.ic.build(seed=self.control.seed)

    def build_bc(self) -> Optional[Callable]:
        if self.solver != "chns":
            return None
        name = self.bc or "no_slip"
        fn = BC_BUILDERS[name]
        params = dict(self.bc_params)
        return lambda mesh: fn(mesh, **params)

    # --------------------------------------------------------- round-trip

    def to_dict(self) -> dict:
        d = _listify(asdict(self))
        if np.isinf(d["physics"].get("Fr", 1.0)):
            d["physics"]["Fr"] = "inf"  # JSON has no Infinity literal
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioConfig":
        d = dict(d)
        known = {f.name for f in dc_fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ScenarioError(f"unknown scenario keys: {sorted(unknown)}")
        physics = dict(d.get("physics", {}))
        if physics.get("Fr") == "inf":
            physics["Fr"] = np.inf
        d["physics"] = physics
        for key, section in (
            ("domain", DomainConfig),
            ("ic", InitialCondition),
            ("refinement", RefinementPolicy),
            ("time", TimeConfig),
            ("outputs", OutputConfig),
            ("control", JobControl),
        ):
            if key in d and isinstance(d[key], dict):
                d[key] = _from_known(section, d[key], key)
        return cls(**d).validate()
