"""repro.scenarios — declarative scenario registry + concurrent batch
simulation service.

Three layers (DESIGN.md §8, docs/API.md):

* **schema** — :class:`ScenarioConfig`: one validated, JSON-round-trippable
  config covering domain, physics, initial condition, refinement policy,
  time stepping, outputs, and job control;
* **registry** — canonical CHNS cases (rising bubble, coalescence,
  Rayleigh-Taylor, spinodal, jet, drop; 2D and 3D variants) built by name,
  each with a CI-sized ``quick`` variant;
* **service** — :func:`run_scenario` executes one job (checkpoint/restart
  aware, failure-isolating), :func:`run_batch` runs many concurrently over
  the :mod:`repro.runtime` backends into a JSON :class:`ResultsStore`, and
  ``python -m repro.scenarios run/list/status/report`` is the CLI.
"""

from .batch import BatchJob, BatchReport, make_jobs, run_batch  # noqa: F401
from .registry import build, build_all, families, register, variants  # noqa: F401
from .runner import (  # noqa: F401
    JobResult,
    JobTimeout,
    ScenarioInterrupt,
    SolverDivergence,
    StepState,
    run_scenario,
)
from .schema import (  # noqa: F401
    BC_BUILDERS,
    IC_BUILDERS,
    DomainConfig,
    InitialCondition,
    JobControl,
    OutputConfig,
    RefinementPolicy,
    ScenarioConfig,
    ScenarioError,
    TimeConfig,
)
from .store import ResultsStore  # noqa: F401
