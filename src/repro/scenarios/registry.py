"""Scenario registry: the canonical CHNS benchmark cases as one-config-each.

Each *family* (rising bubble, coalescence, Rayleigh-Taylor, spinodal, jet,
drop) registers a builder producing a validated :class:`ScenarioConfig` per
dimensionality; ``quick=True`` shrinks any variant to a seconds-scale smoke
config (serial-backend friendly) without changing its physics shape.  The
CLI, batch driver, and examples all obtain configs exclusively through
:func:`build` / :func:`build_all`, so adding a physics case is one builder
function — see DESIGN.md "adding a new scenario".

Variant names are ``<family>_<dim>d`` (``rising_bubble_2d``, ``drop_3d``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .schema import (
    DomainConfig,
    InitialCondition,
    JobControl,
    OutputConfig,
    RefinementPolicy,
    ScenarioConfig,
    ScenarioError,
    TimeConfig,
)

#: (family, dim) -> builder(quick) -> ScenarioConfig
_FAMILIES: Dict[Tuple[str, int], Callable[[bool], ScenarioConfig]] = {}


def register(family: str, dim: int):
    """Decorator registering ``builder(quick: bool) -> ScenarioConfig``."""

    def wrap(fn):
        key = (family, dim)
        if key in _FAMILIES:
            raise ScenarioError(f"scenario {family}_{dim}d already registered")
        _FAMILIES[key] = fn
        return fn

    return wrap


def families() -> List[str]:
    """Registered family names, sorted."""
    return sorted({fam for fam, _ in _FAMILIES})


def variants() -> List[str]:
    """All registered variant names (``family_<dim>d``), sorted."""
    return sorted(f"{fam}_{dim}d" for fam, dim in _FAMILIES)


def _parse_variant(name: str) -> Tuple[str, int]:
    if name.endswith("_2d"):
        return name[:-3], 2
    if name.endswith("_3d"):
        return name[:-3], 3
    return name, 2  # bare family name = its 2D variant


def build(name: str, *, quick: bool = False) -> ScenarioConfig:
    """Build the named variant (``rising_bubble_2d``; a bare family name
    means its 2D variant)."""
    family, dim = _parse_variant(name)
    key = (family, dim)
    if key not in _FAMILIES:
        raise ScenarioError(
            f"unknown scenario {name!r}; registered: {variants()}"
        )
    cfg = _FAMILIES[key](quick)
    return cfg.validate()


def build_all(*, quick: bool = False, dims: Tuple[int, ...] = (2, 3)) -> list:
    """Configs for every registered variant whose dim is in ``dims``."""
    return [
        _FAMILIES[(fam, dim)](quick).validate()
        for fam, dim in sorted(_FAMILIES)
        if dim in dims
    ]


def _remesh(coarse: int, interface: int, feature: int, every: int,
            identifier: dict | None = None) -> RefinementPolicy:
    remesh = {
        "coarse_level": coarse,
        "interface_level": interface,
        "feature_level": feature,
        "delta_star": 0.95,
        "identifier": identifier,
    }
    return RefinementPolicy(remesh_every=every, remesh=remesh)


# --------------------------------------------------------------------------
# Families.  Non-quick sizes match the historical examples/ scripts; quick
# sizes are CI smoke material (a few hundred elements, 2-3 steps).
# --------------------------------------------------------------------------


@register("rising_bubble", 2)
def _rising_bubble_2d(quick: bool) -> ScenarioConfig:
    lvl = 4 if quick else 5
    return ScenarioConfig(
        name="rising_bubble_2d",
        family="rising_bubble",
        solver="chns",
        domain=DomainConfig(dim=2, max_level=lvl, min_level=3, threshold=0.95),
        physics=dict(Re=50.0, We=2.0, Pe=100.0, Cn=0.06, Fr=1.0,
                     rho_minus=0.3, eta_minus=0.5),
        ic=InitialCondition(
            kind="rising_bubble",
            params=dict(center=(0.5, 0.3), radius=0.15, Cn=0.06),
        ),
        bc="no_slip",
        time=TimeConfig(dt=1e-3, n_steps=2 if quick else 8),
    )


@register("rising_bubble", 3)
def _rising_bubble_3d(quick: bool) -> ScenarioConfig:
    lvl = 3 if quick else 4
    return ScenarioConfig(
        name="rising_bubble_3d",
        family="rising_bubble",
        solver="chns",
        domain=DomainConfig(dim=3, max_level=lvl, min_level=2, threshold=0.95),
        physics=dict(Re=50.0, We=2.0, Pe=100.0, Cn=0.1, Fr=1.0,
                     rho_minus=0.3, eta_minus=0.5,
                     gravity_dir=(0.0, 0.0, -1.0)),
        ic=InitialCondition(
            kind="rising_bubble",
            params=dict(center=(0.5, 0.5, 0.3), radius=0.2, Cn=0.1),
        ),
        bc="no_slip",
        time=TimeConfig(dt=1e-3, n_steps=2 if quick else 4),
    )


@register("coalescence", 2)
def _coalescence_2d(quick: bool) -> ScenarioConfig:
    lvl = 4 if quick else 5
    return ScenarioConfig(
        name="coalescence_2d",
        family="coalescence",
        solver="ch",
        domain=DomainConfig(dim=2, max_level=lvl, min_level=3, threshold=0.95),
        physics=dict(Pe=20.0, Cn=0.04),
        ic=InitialCondition(
            kind="two_drops",
            params=dict(c1=(0.42, 0.5), r1=0.12, c2=(0.62, 0.5), r2=0.1,
                        Cn=0.04),
        ),
        refinement=_remesh(3, lvl, lvl, every=3),
        time=TimeConfig(dt=2e-3, n_steps=3 if quick else 10),
    )


@register("rayleigh_taylor", 2)
def _rayleigh_taylor_2d(quick: bool) -> ScenarioConfig:
    lvl = 4 if quick else 6
    return ScenarioConfig(
        name="rayleigh_taylor_2d",
        family="rayleigh_taylor",
        solver="chns",
        domain=DomainConfig(dim=2, max_level=lvl, min_level=3, threshold=0.95),
        physics=dict(Re=100.0, We=50.0, Pe=100.0, Cn=0.05, Fr=0.5,
                     rho_minus=0.3, eta_minus=0.5),
        ic=InitialCondition(
            kind="rayleigh_taylor",
            params=dict(y0=0.5, amp=0.05, k=1.0, Cn=0.05),
        ),
        bc="no_slip",
        time=TimeConfig(dt=1e-3, n_steps=2 if quick else 8),
    )


@register("spinodal", 2)
def _spinodal_2d(quick: bool) -> ScenarioConfig:
    lvl = 4 if quick else 6
    return ScenarioConfig(
        name="spinodal_2d",
        family="spinodal",
        solver="ch",
        # Spinodal data has no localized interface at t=0: start uniform at
        # max_level (threshold > 1 refines everywhere).
        domain=DomainConfig(dim=2, max_level=lvl, min_level=lvl, threshold=2.0),
        physics=dict(Pe=10.0, Cn=0.08),
        ic=InitialCondition(kind="spinodal",
                            params=dict(amp=0.2, n_modes=4)),
        time=TimeConfig(dt=5e-4, n_steps=3 if quick else 12),
    )


@register("spinodal", 3)
def _spinodal_3d(quick: bool) -> ScenarioConfig:
    lvl = 3 if quick else 4
    return ScenarioConfig(
        name="spinodal_3d",
        family="spinodal",
        solver="ch",
        domain=DomainConfig(dim=3, max_level=lvl, min_level=lvl, threshold=2.0),
        physics=dict(Pe=10.0, Cn=0.12),
        ic=InitialCondition(kind="spinodal",
                            params=dict(amp=0.2, n_modes=3)),
        time=TimeConfig(dt=5e-4, n_steps=2 if quick else 6),
    )


@register("jet", 2)
def _jet_2d(quick: bool) -> ScenarioConfig:
    lvl = 4 if quick else 6
    feature = lvl if quick else 7
    identifier = None if quick else dict(delta=-0.8, n_erode=4,
                                         n_extra_dilate=3)
    return ScenarioConfig(
        name="jet_2d",
        family="jet",
        solver="chns",
        domain=DomainConfig(dim=2, max_level=lvl, min_level=3, threshold=0.95),
        physics=dict(Re=200.0, We=4.0, Pe=200.0, Cn=0.06 if quick else 0.03,
                     rho_minus=0.2, eta_minus=0.2),
        ic=InitialCondition(
            kind="jet_column",
            params=dict(half_width=0.1, length=0.35,
                        Cn=0.06 if quick else 0.03,
                        perturb_amp=0.15, perturb_k=6),
        ),
        bc="jet_inflow",
        bc_params=dict(half_width=0.1, speed=1.0),
        refinement=_remesh(3, lvl, feature, every=2, identifier=identifier),
        time=TimeConfig(dt=5e-4, n_steps=2 if quick else 6),
    )


@register("drop", 2)
def _drop_2d(quick: bool) -> ScenarioConfig:
    lvl = 4 if quick else 5
    return ScenarioConfig(
        name="drop_2d",
        family="drop",
        solver="ch",
        domain=DomainConfig(dim=2, max_level=lvl, min_level=3, threshold=0.95),
        physics=dict(Pe=30.0, Cn=0.05),
        ic=InitialCondition(kind="drop",
                            params=dict(center=(0.5, 0.5), radius=0.22,
                                        Cn=0.05)),
        time=TimeConfig(dt=1e-3, n_steps=2 if quick else 6),
    )


@register("drop", 3)
def _drop_3d(quick: bool) -> ScenarioConfig:
    lvl = 3 if quick else 4
    return ScenarioConfig(
        name="drop_3d",
        family="drop",
        solver="ch",
        domain=DomainConfig(dim=3, max_level=lvl, min_level=2, threshold=0.95),
        physics=dict(Pe=30.0, Cn=0.1),
        ic=InitialCondition(kind="drop",
                            params=dict(center=(0.5, 0.5, 0.5), radius=0.25,
                                        Cn=0.1)),
        time=TimeConfig(dt=1e-3, n_steps=2 if quick else 4),
    )
