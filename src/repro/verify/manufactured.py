"""Symbolically-derived manufactured solutions for the CHNS blocks.

Each factory picks an exact solution that satisfies the discrete boundary
conditions *exactly* (so no BC-inconsistency error pollutes the measured
order), substitutes it into the continuous PDE with sympy, and lambdifies
the residual as the forcing term the solvers inject through
``chns.forms.source_at``:

* CH: ``phi* = (1/2) cos(pi x) cos(pi y) cos(t)`` — no-flux on every wall
  (the natural CH boundary condition), and ``|phi*| <= 1/2`` keeps the
  degenerate mobility ``sqrt(1 - phi^2)`` away from its clamp floor.  The
  chemical potential is defined *as* ``mu* = psi'(phi*) - Cn^2 lap(phi*)``
  so the constraint equation needs no source at all.
* NS: divergence-free velocity from the streamfunction
  ``sin^2(pi x) sin^2(pi y) cos(t)`` — identically zero on the whole
  boundary, matching the no-slip masks — with pressure
  ``cos(pi x) cos(pi y) cos(t)`` (mean-zero, ``grad p . n = 0``, so the
  projection step's no-penetration weak form is exact).  Run single-phase
  (``phi = 1``, matched densities): the capillary, gravity and diffusive-
  flux terms vanish and the momentum forcing is the classical
  ``dv/dt + (v.grad)v + grad p / We - lap v / Re``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np
import sympy as sym

_X, _Y, _T = sym.symbols("x y t")
_SYMS = (_X, _Y, _T)


def _scalar(expr) -> Callable:
    """Lambdify a scalar expr as ``f(pts, t) -> (npts,)``."""
    fn = sym.lambdify(_SYMS, expr, "numpy")

    def call(pts: np.ndarray, t: float) -> np.ndarray:
        out = np.asarray(fn(pts[:, 0], pts[:, 1], t), dtype=float)
        return np.broadcast_to(out, (len(pts),)).copy()

    return call


def _vector(exprs) -> Callable:
    """Lambdify component exprs as ``f(pts, t) -> (npts, k)``."""
    fns = [_scalar(e) for e in exprs]

    def call(pts: np.ndarray, t: float) -> np.ndarray:
        return np.stack([f(pts, t) for f in fns], axis=1)

    return call


def _grad(expr):
    return [sym.diff(expr, _X), sym.diff(expr, _Y)]


def _lap(expr):
    return sym.diff(expr, _X, 2) + sym.diff(expr, _Y, 2)


@dataclass(frozen=True)
class CHManufactured:
    """Exact CH fields and forcing: every attribute is ``f(pts, t)``."""

    phi: Callable
    mu: Callable
    grad_phi: Callable  # (npts, 2)
    f_phi: Callable  # forcing for the phase-field equation


@dataclass(frozen=True)
class NSManufactured:
    """Exact single-phase NS fields and momentum forcing."""

    vel: Callable  # (npts, 2)
    p: Callable
    grad_vel: Callable  # (npts, 2, 2): d v_i / d x_j
    forcing: Callable  # (npts, 2)


@lru_cache(maxsize=None)
def ch_manufactured(Pe: float, Cn: float) -> CHManufactured:
    """Manufactured advection-free Cahn-Hilliard problem on [0,1]^2.

    Continuous equation (matching the weak residual in
    :class:`repro.chns.ch_solver.CHSolver`):

        d phi/dt - (1/(Pe Cn)) div( m(phi) grad mu ) = f_phi
        mu = psi'(phi) - Cn^2 lap(phi)        (exact, no source)
    """
    phi = sym.Rational(1, 2) * sym.cos(sym.pi * _X) * sym.cos(sym.pi * _Y) \
        * sym.cos(_T)
    mu = phi**3 - phi - Cn**2 * _lap(phi)
    m = sym.sqrt(1 - phi**2)
    flux_div = sym.diff(m * sym.diff(mu, _X), _X) + sym.diff(
        m * sym.diff(mu, _Y), _Y
    )
    f_phi = sym.diff(phi, _T) - flux_div / (Pe * Cn)
    return CHManufactured(
        phi=_scalar(phi),
        mu=_scalar(mu),
        grad_phi=_vector(_grad(phi)),
        f_phi=_scalar(sym.simplify(f_phi)),
    )


@lru_cache(maxsize=None)
def ns_manufactured(Re: float, We: float) -> NSManufactured:
    """Manufactured single-phase NS + projection problem on [0,1]^2."""
    g = sym.cos(_T)
    psi_s = sym.sin(sym.pi * _X) ** 2 * sym.sin(sym.pi * _Y) ** 2 * g
    u = sym.diff(psi_s, _Y)
    v = -sym.diff(psi_s, _X)
    p = sym.cos(sym.pi * _X) * sym.cos(sym.pi * _Y) * g
    f = []
    for comp in (u, v):
        adv = u * sym.diff(comp, _X) + v * sym.diff(comp, _Y)
        press = sym.diff(p, _X if comp is u else _Y) / We
        f.append(sym.diff(comp, _T) + adv + press - _lap(comp) / Re)
    return NSManufactured(
        vel=_vector([u, v]),
        p=_scalar(p),
        grad_vel=_tensor22([_grad(u), _grad(v)]),
        forcing=_vector([sym.simplify(fi) for fi in f]),
    )


def _tensor22(rows) -> Callable:
    """Lambdify a 2x2 list-of-lists as ``f(pts, t) -> (npts, 2, 2)``."""
    fns = [[_scalar(e) for e in row] for row in rows]

    def call(pts: np.ndarray, t: float) -> np.ndarray:
        return np.stack(
            [np.stack([f(pts, t) for f in row], axis=1) for row in fns],
            axis=1,
        )

    return call
