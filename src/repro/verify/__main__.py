"""CLI entry point: ``python -m repro.verify [--quick] [--out PATH]``.

Runs the MMS ladders, writes ``verify_report.json``, prints the measured
orders, and exits non-zero if any gated order misses its threshold — the
contract the ``verify-smoke`` CI job enforces.
"""

from __future__ import annotations

import argparse
import sys

from .harness import run_all, write_report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro.verify")
    ap.add_argument(
        "--quick", action="store_true",
        help="CI-sized ladders (seconds instead of minutes)",
    )
    ap.add_argument("--out", default="verify_report.json")
    args = ap.parse_args(argv)

    report = run_all(quick=args.quick)
    write_report(report, args.out)
    for case in report["cases"]:
        status = "PASS" if case["passed"] else "FAIL"
        print(f"[{status}] {case['name']}")
        for name, f in case["fields"].items():
            gate = case["thresholds"].get(name)
            gate_s = f" (gate >= {gate})" if gate is not None else ""
            h1 = (
                f", H1 order {f['h1_order']:.2f}"
                if f.get("h1_order") is not None
                else ""
            )
            print(f"    {name}: L2 order {f['l2_order']:.2f}{gate_s}{h1}")
    print(f"report -> {args.out}")
    if not report["passed"]:
        print("verification FAILED: convergence order below threshold")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
