"""Method-of-manufactured-solutions (MMS) verification layer.

The projection-based semi-implicit CHNS scheme we reproduce (Khanwale et
al., arXiv:2107.05123) claims second-order accuracy in space and time;
the fully-coupled framework (arXiv:2009.06628) demonstrates the MMS
methodology for pinning those orders.  This package makes both claims
falsifiable: :mod:`manufactured` derives exact solutions + forcing terms
symbolically (sympy), :mod:`harness` runs refinement ladders through the
production solvers and fits convergence orders, and ``python -m
repro.verify --quick`` is the CI gate (non-zero exit on an order miss).
"""

from .harness import (  # noqa: F401
    fit_order,
    l2_error,
    h1_error,
    run_all,
    write_report,
)
from .manufactured import ch_manufactured, ns_manufactured  # noqa: F401
