"""Refinement ladders, error norms and order fitting for the MMS layer.

Two ladder kinds per solver family:

* **Spatial**: uniform meshes at increasing tree level with ``dt``
  proportional to ``h`` (both schemes are second order, so the total error
  contracts as ``h^2`` along the ladder) — errors measured against the
  exact solution in L2 and H1-seminorm at the final time.
* **Temporal**: one fixed mesh, dt-halving against a small-dt reference
  computed *on the same mesh*, which cancels the spatial error exactly and
  isolates the order of the time discretization.

``fit_order`` is a least-squares slope of ``log(err)`` vs ``log(h)`` (or
``log(dt)``); :func:`run_all` executes every case and produces the
machine-readable ``verify_report.json`` payload that the CI ``verify-smoke``
job gates on.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..chns import forms
from ..chns.ch_solver import CHSolver
from ..chns.params import CHNSParams
from ..chns.timestepper import CHNSTimeStepper, no_slip_bc
from ..fem.basis import tabulate
from ..mesh.mesh import Mesh
from ..octree.build import uniform_tree
from .manufactured import ch_manufactured, ns_manufactured

# ----------------------------------------------------------------- norms


def _quad_weights(mesh: Mesh):
    _, w, _, _ = tabulate(mesh.dim)
    return w, mesh.elem_h() ** mesh.dim


def l2_error(
    mesh: Mesh, u: np.ndarray, exact: Optional[Callable], t: float = 0.0
) -> float:
    """``||u_h - u*||_{L2}`` by quadrature.  ``exact=None`` gives ``||u_h||``;
    ``exact`` may also be a DOF array (same-mesh discrete reference)."""
    uq = forms.field_at_quad(mesh, u)
    if exact is not None:
        if callable(exact):
            xq = forms.quad_xy(mesh)
            e, q, dim = xq.shape
            ex = np.asarray(exact(xq.reshape(-1, dim), t))
            uq = uq - ex.reshape(uq.shape)
        else:
            uq = uq - forms.field_at_quad(mesh, np.asarray(exact))
    w, vol = _quad_weights(mesh)
    sq = uq**2 if uq.ndim == 2 else np.sum(uq**2, axis=-1)
    return float(np.sqrt((np.einsum("q,eq->e", w, sq) * vol).sum()))


def h1_error(
    mesh: Mesh, u: np.ndarray, grad_exact: Optional[Callable], t: float = 0.0
) -> float:
    """H1 seminorm ``||grad(u_h - u*)||_{L2}``.  For a vector field the
    exact gradient callable returns ``(npts, k, dim)`` (``d u_k / d x_j``)
    and is transposed to the discrete layout ``(e, q, dim, k)``."""
    gq = forms.grad_at_quad(mesh, u)  # (e, q, dim[, k])
    if grad_exact is not None:
        xq = forms.quad_xy(mesh)
        e, q, dim = xq.shape
        ex = np.asarray(grad_exact(xq.reshape(-1, dim), t))
        if gq.ndim == 3:  # scalar field: exact (npts, dim)
            gq = gq - ex.reshape(e, q, dim)
        else:  # vector field: exact (npts, k, dim) -> (e, q, dim, k)
            k = gq.shape[-1]
            gq = gq - ex.reshape(e, q, k, dim).transpose(0, 1, 3, 2)
    w, vol = _quad_weights(mesh)
    axes = tuple(range(2, gq.ndim))
    sq = np.sum(gq**2, axis=axes)
    return float(np.sqrt((np.einsum("q,eq->e", w, sq) * vol).sum()))


def fit_order(hs, errs) -> float:
    """Least-squares slope of log(err) against log(h)."""
    hs = np.asarray(hs, dtype=float)
    errs = np.asarray(errs, dtype=float)
    if np.any(errs <= 0):
        return float("inf")  # exact to round-off: treat as passing
    return float(np.polyfit(np.log(hs), np.log(errs), 1)[0])


# ----------------------------------------------------------------- cases


@dataclass
class FieldOrders:
    l2_errors: List[float]
    l2_order: float
    h1_errors: Optional[List[float]] = None
    h1_order: Optional[float] = None


@dataclass
class CaseResult:
    name: str
    ladder: List[float]  # h per level, or dt per rung
    fields: Dict[str, FieldOrders]
    thresholds: Dict[str, float]  # field -> required L2 order
    passed: bool = field(init=False)

    def __post_init__(self):
        self.passed = all(
            self.fields[f].l2_order >= self.thresholds[f]
            for f in self.thresholds
        )


def _ch_final_state(level: int, dt: float, nsteps: int, prm, mms, theta=0.5):
    mesh = Mesh.from_tree(uniform_tree(2, level))
    ch = CHSolver(mesh, prm)
    phi = mesh.interpolate(lambda xx: mms.phi(xx, 0.0))
    mu = ch.initial_mu(phi)
    for n in range(nsteps):
        tn = n * dt
        s = theta * forms.source_at(mesh, mms.f_phi, tn + dt)
        if theta != 1.0:
            s = s + (1.0 - theta) * forms.source_at(mesh, mms.f_phi, tn)
        res = ch.solve(phi, mu, None, dt, theta=theta, source_phi=s, tol=1e-12)
        phi, mu = res.phi, res.mu
    return mesh, phi, mu


def run_ch_spatial(levels, *, T=0.2, cfl=0.5, prm=None) -> CaseResult:
    prm = prm or CHNSParams(Pe=10.0, Cn=0.2)
    mms = ch_manufactured(prm.Pe, prm.Cn)
    hs, e_phi, e_mu, g_phi = [], [], [], []
    for lev in levels:
        h = 1.0 / (1 << lev)
        nsteps = max(2, int(round(T / (cfl * h))))
        dt = T / nsteps
        mesh, phi, mu = _ch_final_state(lev, dt, nsteps, prm, mms)
        hs.append(h)
        e_phi.append(l2_error(mesh, phi, mms.phi, T))
        e_mu.append(l2_error(mesh, mu, mms.mu, T))
        g_phi.append(h1_error(mesh, phi, mms.grad_phi, T))
    return CaseResult(
        name="ch_spatial",
        ladder=hs,
        fields={
            "phi": FieldOrders(e_phi, fit_order(hs, e_phi),
                               g_phi, fit_order(hs, g_phi)),
            "mu": FieldOrders(e_mu, fit_order(hs, e_mu)),
        },
        thresholds={"phi": 1.9},
    )


def run_ch_temporal(level, dts, *, T=0.2, prm=None) -> CaseResult:
    prm = prm or CHNSParams(Pe=10.0, Cn=0.2)
    mms = ch_manufactured(prm.Pe, prm.Cn)
    ref_dt = min(dts) / 4.0
    mesh, phi_ref, _ = _ch_final_state(
        level, ref_dt, int(round(T / ref_dt)), prm, mms
    )
    errs = []
    for dt in dts:
        _, phi, _ = _ch_final_state(level, dt, int(round(T / dt)), prm, mms)
        errs.append(l2_error(mesh, phi, phi_ref))
    return CaseResult(
        name="ch_temporal",
        ladder=list(dts),
        fields={"phi": FieldOrders(errs, fit_order(dts, errs))},
        thresholds={"phi": 1.9},
    )


def _smooth_pressure(mesh: Mesh, p: np.ndarray, passes: int = 2) -> np.ndarray:
    """Consistent-mass Jacobi smoothing ``p <- M_L^{-1} M p``.

    The stabilized equal-order projection leaves an O(1)-amplitude
    checkerboard component in the raw pressure (the inf-sup defect mode the
    Brezzi-Pitkaranta term merely bounds).  Each smoothing pass damps the
    checkerboard by ~1/9 in 2D while perturbing smooth modes by only
    ``O(h^2)`` (``M_L^{-1} M = I + O(h^2) lap``), so the smoothed field is
    the mesh-convergent pressure readout — the standard reporting practice
    for stabilized equal-order discretizations."""
    M = forms.mass(mesh)
    ML = np.asarray(M.sum(axis=1)).ravel()
    for _ in range(passes):
        p = (M @ p) / ML
    return p - p.mean()


def _project_div_free(ts: CHNSTimeStepper, vel: np.ndarray) -> np.ndarray:
    """Discrete Leray projection of a velocity DOF field.

    The interpolant of an exactly divergence-free field is not *discretely*
    divergence-free (``div_h v = O(h^2)``); started unprojected, the first
    pressure increment spikes like ``O(h^2/dt)`` and wrecks the temporal
    ladder.  One PP+VU pass at unit pseudo-timestep removes the divergence
    (the dt scaling cancels between the two solves)."""
    pp = ts.pp.solve(
        ts.phi, vel, 1.0, tol=1e-12,
        exact_projection=True, correction_masks=ts.v_masks,
    )
    vu = ts.vu.solve(
        ts.phi, vel, pp.p, 1.0,
        dirichlet_masks=ts.v_masks, dirichlet_values=ts.v_values,
        tol=1e-12,
    )
    return vu.vel


def _ns_stepper(level: int, dt: float, prm, mms) -> CHNSTimeStepper:
    mesh = Mesh.from_tree(uniform_tree(2, level))
    ts = CHNSTimeStepper(
        mesh, prm, velocity_bc=no_slip_bc, sources={"ns": mms.forcing},
        pp_mode="schur",
    )
    n = mesh.n_dofs
    xy = mesh.dof_xy()
    p0 = mms.p(xy, 0.0)
    ts.restore(
        phi=np.ones(n),
        mu=np.zeros(n),
        vel=mms.vel(xy, 0.0),
        vel_old=mms.vel(xy, -dt),
        p=p0 - p0.mean(),
        step_count=0,
        t=0.0,
    )
    ts.vel = _project_div_free(ts, ts.vel)
    ts.vel_old = _project_div_free(ts, ts.vel_old)
    _equilibrate_pressure(ts, dt, mms)
    return ts


def _equilibrate_pressure(ts: CHNSTimeStepper, dt: float, mms) -> None:
    """Relax the stored pressure onto the discrete projection fixed point.

    The interpolant of the exact pressure is not the *discrete* pressure
    the scheme settles on; started off the fixed point, the first few
    steps absorb an O(1) transient that differs per ladder rung (different
    step counts to the same final time) and pollutes the measured temporal
    order.  With the exact Schur projection the predictor/projection pair
    is a Richardson iteration whose contraction rate is O(dt) — a handful
    of passes at frozen t=0 state puts the pressure on the fixed point
    before the clock starts."""
    F = 0.5 * (
        forms.source_at(ts.mesh, mms.forcing, 0.0)
        + forms.source_at(ts.mesh, mms.forcing, dt)
    )
    p = ts.p
    for _ in range(50):
        ns = ts.ns.solve(
            ts.phi, ts.mu, ts.vel, ts.vel_old, p, dt,
            dirichlet_masks=ts.v_masks, dirichlet_values=ts.v_values,
            forcing=F,
        )
        pp = ts.pp.solve(
            ts.phi, ns.vel_star, dt,
            exact_projection=True, correction_masks=ts.v_masks,
        )
        p = p + pp.p
        p -= p.mean()
        if float(np.linalg.norm(pp.p)) < 1e-11 * max(
            1.0, float(np.linalg.norm(p))
        ):
            break
    ts.p = p


def _ns_final_state(level, dt, nsteps, prm, mms):
    ts = _ns_stepper(level, dt, prm, mms)
    for _ in range(nsteps):
        ts.step(dt)
    return ts


def run_ns_spatial(levels, *, T=0.1, cfl=0.25, prm=None) -> CaseResult:
    prm = prm or CHNSParams(Re=1.0, We=1.0, rho_minus=1.0, eta_minus=1.0)
    mms = ns_manufactured(prm.Re, prm.We)
    hs, e_v, e_p, g_v = [], [], [], []
    for lev in levels:
        h = 1.0 / (1 << lev)
        nsteps = max(2, int(round(T / (cfl * h))))
        dt = T / nsteps
        ts = _ns_final_state(lev, dt, nsteps, prm, mms)
        hs.append(h)
        e_v.append(l2_error(ts.mesh, ts.vel, mms.vel, T))
        e_p.append(l2_error(ts.mesh, _smooth_pressure(ts.mesh, ts.p), mms.p, T))
        g_v.append(h1_error(ts.mesh, ts.vel, mms.grad_vel, T))
    return CaseResult(
        name="ns_spatial",
        ladder=hs,
        fields={
            "vel": FieldOrders(e_v, fit_order(hs, e_v),
                               g_v, fit_order(hs, g_v)),
            "p": FieldOrders(e_p, fit_order(hs, e_p)),
        },
        thresholds={"vel": 1.9, "p": 0.7},
    )


def run_ns_temporal(level, dts, *, T=0.32, prm=None) -> CaseResult:
    prm = prm or CHNSParams(Re=1.0, We=1.0, rho_minus=1.0, eta_minus=1.0)
    mms = ns_manufactured(prm.Re, prm.We)
    ref_dt = min(dts) / 8.0
    ref = _ns_final_state(level, ref_dt, int(round(T / ref_dt)), prm, mms)
    errs_v, errs_p = [], []
    p_ref = _smooth_pressure(ref.mesh, ref.p)
    for dt in dts:
        ts = _ns_final_state(level, dt, int(round(T / dt)), prm, mms)
        errs_v.append(l2_error(ref.mesh, ts.vel, ref.vel))
        errs_p.append(l2_error(ref.mesh, _smooth_pressure(ts.mesh, ts.p), p_ref))
    return CaseResult(
        name="ns_temporal",
        ladder=list(dts),
        fields={
            "vel": FieldOrders(errs_v, fit_order(dts, errs_v)),
            "p": FieldOrders(errs_p, fit_order(dts, errs_p)),
        },
        thresholds={"vel": 1.9, "p": 0.7},
    )


# ---------------------------------------------------------------- driver


def run_all(quick: bool = True) -> dict:
    """Every ladder; ``quick`` is the CI-sized configuration."""
    if quick:
        cases = [
            run_ch_spatial((2, 3, 4)),
            run_ch_temporal(3, (0.1, 0.05, 0.025)),
            run_ns_spatial((2, 3, 4)),
            run_ns_temporal(3, (0.08, 0.04, 0.02)),
        ]
    else:
        cases = [
            run_ch_spatial((3, 4, 5)),
            run_ch_temporal(4, (0.1, 0.05, 0.025, 0.0125)),
            run_ns_spatial((3, 4, 5)),
            run_ns_temporal(4, (0.08, 0.04, 0.02, 0.01)),
        ]
    return {
        "quick": quick,
        "cases": [asdict(c) for c in cases],
        "passed": all(c.passed for c in cases),
    }


def write_report(report: dict, path: str = "verify_report.json") -> None:
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
