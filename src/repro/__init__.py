"""repro — Python reproduction of "Scalable adaptive algorithms for
next-generation multiphase flow simulations" (IPDPS 2023).

Subpackages
-----------
octree : linear octrees (Morton keys, multi-level refine/coarsen, balance,
         partitioning, parallel coarsening, overlap search)
mpi    : threaded SPMD simulator with MPI semantics and traffic counters
mesh   : hanging-node CG meshes, inter-grid transfer, distributed kernels
fem    : elemental operators (GEMM-expressed), assembly, zip/unzip layout
la     : Krylov solvers, preconditioners, Newton, block storage
core   : the paper's local-Cahn region identification (Algorithms 1-4)
chns   : Cahn-Hilliard Navier-Stokes two-block projection solver
amr    : remeshing driver and checkpoint/restart
perf   : calibrated machine/application performance models
obs    : per-rank tracing/metrics (spans, counters, world-level reports)
"""

__version__ = "1.0.0"

from . import amr, chns, core, fem, io, la, mesh, mpi, obs, octree, perf  # noqa: F401
