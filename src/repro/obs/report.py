"""Reduce per-rank trace snapshots into a world-level report.

A :class:`WorldReport` is the observability analogue of the paper's Fig. 5
breakdown: for every span path it carries per-rank inclusive/exclusive
times reduced to min/max/mean plus the *imbalance factor* ``max/mean`` (the
standard load-balance metric; 1.0 = perfectly balanced), and for every
counter the per-rank values plus their sum.

Two ways to build one:

* :func:`world_report` — from snapshots already in hand (e.g. the per-rank
  traces ``run_spmd`` collected automatically, or a single local snapshot).
* :func:`gather_world` — called *inside* an SPMD program: gathers every
  rank's local snapshot to ``root`` over the communicator itself, i.e. the
  reduction rides the existing transport and therefore works identically on
  the thread, process, and serial backends.

Span identity is the slash-joined path from the root (``"chns.step/ch"``),
so differently-nested spans with the same leaf name stay distinct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


def _flatten(nodes: Sequence[dict], prefix: str, out: dict) -> None:
    for node in nodes:
        path = f"{prefix}/{node['name']}" if prefix else node["name"]
        out[path] = node
        _flatten(node["children"], path, out)


def flatten_spans(snapshot: dict) -> dict:
    """Map span path -> node dict for one rank snapshot."""
    out: dict = {}
    _flatten(snapshot.get("spans", []), "", out)
    return out


@dataclass
class SpanStat:
    """Cross-rank statistics for one span path."""

    path: str
    count: int  # per-rank call count (ranks that entered the span)
    n_ranks: int  # how many ranks entered this span
    inclusive_min: float
    inclusive_max: float
    inclusive_mean: float
    exclusive_mean: float
    imbalance: float  # inclusive max/mean over participating ranks

    @property
    def depth(self) -> int:
        return self.path.count("/")

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]


class WorldReport:
    """Merged view over the per-rank snapshots of one run."""

    def __init__(self, snapshots: Sequence[dict]):
        self.snapshots = [s for s in snapshots if s is not None]
        self.n_ranks = len(self.snapshots)
        per_rank = [flatten_spans(s) for s in self.snapshots]
        # Union of paths, ordered by first appearance walking rank 0, 1, ...
        # (pre-order within each rank) — deterministic across backends.
        paths: list[str] = []
        seen = set()
        for flat in per_rank:
            for p in flat:
                if p not in seen:
                    seen.add(p)
                    paths.append(p)
        self.spans: dict[str, SpanStat] = {}
        for p in paths:
            nodes = [flat[p] for flat in per_rank if p in flat]
            inc = [n["inclusive"] for n in nodes]
            exc = [n["exclusive"] for n in nodes]
            mean = sum(inc) / len(inc)
            self.spans[p] = SpanStat(
                path=p,
                count=max(n["count"] for n in nodes),
                n_ranks=len(nodes),
                inclusive_min=min(inc),
                inclusive_max=max(inc),
                inclusive_mean=mean,
                exclusive_mean=sum(exc) / len(exc),
                imbalance=(max(inc) / mean) if mean > 0 else 1.0,
            )
        self.counters: dict[str, list] = {}
        for snap in self.snapshots:
            for k in snap.get("counters", {}):
                self.counters.setdefault(k, [])
        for k in self.counters:
            self.counters[k] = [
                snap.get("counters", {}).get(k, 0) for snap in self.snapshots
            ]
        self.gauges: dict[str, list] = {}
        for snap in self.snapshots:
            for k in snap.get("gauges", {}):
                self.gauges.setdefault(k, [])
        for k in self.gauges:
            self.gauges[k] = [
                snap.get("gauges", {}).get(k) for snap in self.snapshots
            ]

    # ------------------------------------------------------------- queries

    def counter_total(self, name: str) -> float:
        return sum(self.counters.get(name, []))

    def span_tree_signature(self) -> list:
        """Schedule-independent identity of the trace: every span path with
        its per-rank call counts, plus every counter with its per-rank
        values — everything except wall times.  Two runs of the same SPMD
        program must produce equal signatures on every backend."""
        sig = []
        for p in sorted(self.spans):
            counts = []
            for snap in self.snapshots:
                flat = flatten_spans(snap)
                counts.append(flat[p]["count"] if p in flat else 0)
            sig.append((p, tuple(counts)))
        for k in sorted(self.counters):
            sig.append((f"counter:{k}", tuple(self.counters[k])))
        return sig

    def phase_seconds(self, path: str) -> float:
        """Mean inclusive seconds of one span path (0.0 if never entered)."""
        st = self.spans.get(path)
        return st.inclusive_mean if st is not None else 0.0

    # ------------------------------------------------------------ plain data

    def to_dict(self) -> dict:
        return {
            "n_ranks": self.n_ranks,
            "spans": [
                {
                    "path": s.path,
                    "count": s.count,
                    "n_ranks": s.n_ranks,
                    "inclusive_min_s": s.inclusive_min,
                    "inclusive_max_s": s.inclusive_max,
                    "inclusive_mean_s": s.inclusive_mean,
                    "exclusive_mean_s": s.exclusive_mean,
                    "imbalance": s.imbalance,
                }
                for s in self.spans.values()
            ],
            "counters": {
                k: {"per_rank": v, "total": sum(v)}
                for k, v in self.counters.items()
            },
            "gauges": dict(self.gauges),
        }

    def format(self, *, min_seconds: float = 0.0) -> str:
        """Human-readable per-phase table (benchmarks, EXPERIMENTS.md)."""
        rows = []
        for s in self.spans.values():
            if s.inclusive_mean < min_seconds:
                continue
            indent = "  " * s.depth
            rows.append(
                (
                    indent + s.name,
                    s.count,
                    f"{s.inclusive_mean * 1e3:.3f}",
                    f"{s.exclusive_mean * 1e3:.3f}",
                    f"{s.inclusive_min * 1e3:.3f}",
                    f"{s.inclusive_max * 1e3:.3f}",
                    f"{s.imbalance:.2f}",
                )
            )
        headers = (
            "span", "count", "incl ms", "excl ms", "min ms", "max ms", "imbal"
        )
        cols = list(zip(*([headers] + rows))) if rows else [[h] for h in headers]
        widths = [max(len(str(v)) for v in col) for col in cols]

        def line(vals):
            out = [str(vals[0]).ljust(widths[0])]
            out += [str(v).rjust(w) for v, w in zip(vals[1:], widths[1:])]
            return " | ".join(out)

        text = [line(headers), "-+-".join("-" * w for w in widths)]
        text += [line(r) for r in rows]
        if self.counters:
            text.append("")
            for k in sorted(self.counters):
                v = self.counters[k]
                text.append(f"counter {k}: total={sum(v)} per_rank={v}")
        return "\n".join(text)


def world_report(snapshots) -> WorldReport:
    """Build a :class:`WorldReport` from per-rank snapshots (or one dict)."""
    if isinstance(snapshots, dict):
        snapshots = [snapshots]
    return WorldReport(list(snapshots))


def gather_world(comm, root: int = 0) -> Optional[WorldReport]:
    """SPMD-side reduction: gather every rank's local snapshot to ``root``
    through the communicator (works on every runtime backend) and return the
    merged report there (None elsewhere, and everywhere when disabled).

    Collective: every rank must call it, enabled or not.
    """
    from . import tracer

    tr = tracer.current()
    snaps = comm.gather(tr.snapshot() if tr is not None else None, root=root)
    if comm.rank != root or snaps is None:
        return None
    if all(s is None for s in snaps):
        return None
    return WorldReport([s for s in snaps if s is not None])
