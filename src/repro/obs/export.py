"""Exporters: per-phase JSON and Chrome ``chrome://tracing`` format.

The Chrome trace is the standard ``traceEvents`` JSON (complete ``"X"``
events): load it at ``chrome://tracing`` or https://ui.perfetto.dev.  Each
simulated rank becomes one ``tid`` so the per-rank timelines stack, and the
wall-clock origin of every rank is shifted to its own trace epoch (the
ranks' ``perf_counter`` bases are not comparable across OS processes).

Event recording must be on (``obs.enable(events=True)``) for the Chrome
export; span aggregates and counters are always available.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from .report import WorldReport


def to_json(report: WorldReport, path: Optional[str] = None) -> str:
    """Serialize a world report (per-phase stats + counters) to JSON."""
    text = json.dumps(report.to_dict(), indent=2)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text


def chrome_trace_events(
    snapshots: Sequence[dict], *, pid: int = 0
) -> list[dict]:
    """Chrome ``traceEvents`` list from per-rank snapshots (rank = tid)."""
    events: list[dict] = []
    for rank, snap in enumerate(snapshots):
        if snap is None or not snap.get("events"):
            continue
        for name, depth, start_s, dur_s in snap["events"]:
            events.append(
                {
                    "name": name,
                    "cat": f"depth{depth}",
                    "ph": "X",
                    "ts": round(start_s * 1e6, 3),  # microseconds
                    "dur": round(dur_s * 1e6, 3),
                    "pid": pid,
                    "tid": rank,
                }
            )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
    return events


def to_chrome_trace(
    snapshots: Sequence[dict], path: Optional[str] = None, *, pid: int = 0
) -> str:
    """Write per-rank snapshots as a ``chrome://tracing`` JSON document."""
    doc = {
        "traceEvents": chrome_trace_events(snapshots, pid=pid),
        "displayTimeUnit": "ms",
    }
    text = json.dumps(doc)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text
