"""repro.obs — per-rank tracing and metrics for the whole stack.

The instrument panel behind the reproduction's performance claims:
hierarchical :func:`span` timers with inclusive/exclusive attribution,
named :func:`incr` counters and :func:`gauge` values, per-rank in-memory
trace buffers, SPMD-aware reduction of per-rank traces into world-level
reports (min/max/mean/imbalance per span), and exporters to JSON and the
Chrome ``chrome://tracing`` format.

Tracing is **disabled by default** and importing this module never enables
it; the disabled fast path is a single thread-local read (gated < 5% on the
hottest instrumented kernel by the benchmark suite).  Typical use::

    import repro.obs as obs

    obs.enable()                      # or obs.tracing() as a context manager
    ...                               # instrumented code runs normally
    report = obs.world_report(obs.snapshot())
    print(report.format())

Around SPMD runs nothing extra is needed: when the calling thread has
tracing enabled, ``run_spmd`` gives every rank its own tracer and ships the
per-rank snapshots home on the existing result transport (thread, process,
or serial backend alike).  They are available afterwards as
:func:`last_spmd_traces` / :func:`last_spmd_report`, and SPMD code can also
reduce in-world with :func:`gather_world`.

Span taxonomy and the relation to ``CommStats`` and ``repro.perf`` are
documented in DESIGN.md §6; the public API in docs/API.md.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .export import chrome_trace_events, to_chrome_trace, to_json  # noqa: F401
from .report import (  # noqa: F401
    SpanStat,
    WorldReport,
    flatten_spans,
    gather_world,
    world_report,
)
from .tracer import (  # noqa: F401
    NULL_SPAN,
    Tracer,
    begin_rank,
    current,
    disable,
    enable,
    end_rank,
    gauge,
    incr,
    is_enabled,
    rank_armed,
    snapshot,
    span,
    stopwatch,
    tracing,
)

#: Per-rank snapshots of the most recent traced ``run_spmd`` on this thread
#: (set by repro.mpi.comm.run_spmd; None until a traced run completes).
_last_spmd: Optional[list] = None


def _set_last_spmd(snaps: Sequence[dict]) -> None:
    global _last_spmd
    _last_spmd = list(snaps)


def last_spmd_traces() -> Optional[list]:
    """Per-rank snapshots collected by the most recent traced SPMD run."""
    return _last_spmd


def last_spmd_report() -> Optional[WorldReport]:
    """World-level report over :func:`last_spmd_traces` (None if untraced)."""
    if not _last_spmd:
        return None
    return WorldReport(_last_spmd)


__all__ = [
    "Tracer",
    "WorldReport",
    "SpanStat",
    "NULL_SPAN",
    "enable",
    "disable",
    "is_enabled",
    "current",
    "span",
    "stopwatch",
    "incr",
    "gauge",
    "snapshot",
    "tracing",
    "world_report",
    "gather_world",
    "flatten_spans",
    "to_json",
    "to_chrome_trace",
    "chrome_trace_events",
    "last_spmd_traces",
    "last_spmd_report",
    "begin_rank",
    "end_rank",
    "rank_armed",
]
