"""Per-rank tracing and metrics: hierarchical spans, counters, gauges.

The tracer is the measurement substrate behind every timing claim in
EXPERIMENTS.md: the paper's scaling study (Fig. 5) attributes cost to
per-solver, per-phase buckets (NS/PP/VU/CH matvec, ghost exchange, remesh),
and this module is how the reproduction records the same buckets.

Design constraints, in order of priority:

1. **Disabled by default, negligible overhead when disabled.**  Importing
   this module never activates tracing; a disabled ``span(...)`` returns a
   shared no-op context manager after a single thread-local read.  Hot
   paths (the per-MATVEC ghost exchange, the per-call numeric assembly) are
   instrumented unconditionally in library code and rely on this.
2. **Per-rank isolation.**  Simulated SPMD ranks are threads (thread and
   serial backends) or forked processes (process backend).  Tracer state is
   therefore *thread-local*: each rank sees exactly its own spans and
   counters, on every backend, without locks on the hot path.
3. **Deterministic structure.**  Span nesting, span counts, and counter
   values depend only on the code path executed — never on the schedule —
   so cross-backend runs of the same SPMD program produce identical span
   *trees* and counter values (wall times differ; the equivalence tests
   exclude them).

The span tree records *inclusive* wall time per node; *exclusive* time is
derived at snapshot time (inclusive minus the sum of the children's
inclusive times).  Optional event recording (``enable(events=True)``) keeps
begin/end timestamps per span entry for Chrome ``chrome://tracing`` export.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Optional

__all__ = [
    "Tracer",
    "enable",
    "disable",
    "is_enabled",
    "current",
    "span",
    "stopwatch",
    "incr",
    "gauge",
    "snapshot",
    "tracing",
]


class _Node:
    """One name in the span hierarchy: call count + inclusive time."""

    __slots__ = ("name", "count", "total", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.children: dict[str, _Node] = {}

    def snapshot(self) -> dict:
        kids = [c.snapshot() for c in self.children.values()]
        return {
            "name": self.name,
            "count": self.count,
            "inclusive": self.total,
            "exclusive": self.total - sum(k["inclusive"] for k in kids),
            "children": kids,
        }


class _Span:
    """Active span handle (context manager).  One per ``span()`` entry."""

    __slots__ = ("_tracer", "_node", "_t0", "elapsed")

    def __init__(self, tracer: "Tracer", node: _Node) -> None:
        self._tracer = tracer
        self._node = node
        self.elapsed = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self._node)
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = perf_counter()
        dt = t1 - self._t0
        self.elapsed = dt
        node = self._node
        node.count += 1
        node.total += dt
        tr = self._tracer
        tr._stack.pop()
        if tr._events is not None:
            tr._events.append(
                (node.name, len(tr._stack), self._t0 - tr._epoch, dt)
            )
        return False


class _NullSpan:
    """Shared no-op span: what ``span()`` returns while tracing is off.

    Carries ``elapsed = 0.0`` so code written against :func:`stopwatch`
    (which always times) can also consume a plain disabled span safely.
    """

    __slots__ = ()
    elapsed = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Stopwatch:
    """Always-times context manager that *also* records a span when tracing
    is enabled.  Lets callers keep their own timer fields (e.g. the CHNS
    stepper's public ``timers``) as views of the same measurement."""

    __slots__ = ("_name", "_inner", "_t0", "elapsed")

    def __init__(self, name: str) -> None:
        self._name = name
        self.elapsed = 0.0

    def __enter__(self) -> "_Stopwatch":
        self._inner = span(self._name)
        self._inner.__enter__()
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.elapsed = perf_counter() - self._t0
        self._inner.__exit__(*exc)
        return False


class Tracer:
    """Span/counter/gauge recorder for one rank (one thread of execution)."""

    __slots__ = ("_root", "_stack", "counters", "gauges", "_events", "_epoch")

    def __init__(self, *, events: bool = False) -> None:
        self._root = _Node("")
        self._stack: list[_Node] = [self._root]
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: (name, depth, start_rel_s, duration_s) tuples when event recording
        #: is on; None otherwise (zero cost).
        self._events: Optional[list] = [] if events else None
        self._epoch = perf_counter()

    # ------------------------------------------------------------- recording

    def span(self, name: str) -> _Span:
        top = self._stack[-1]
        node = top.children.get(name)
        if node is None:
            node = top.children[name] = _Node(name)
        return _Span(self, node)

    def incr(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> dict:
        """Plain-data (pickle-friendly) view of everything recorded so far.

        ``spans`` is the forest under the implicit root; each node carries
        ``name``, ``count``, ``inclusive``, ``exclusive`` (seconds), and
        ``children``.
        """
        if len(self._stack) != 1:
            open_names = [n.name for n in self._stack[1:]]
            raise RuntimeError(f"snapshot inside open span(s): {open_names}")
        return {
            "spans": [c.snapshot() for c in self._root.children.values()],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "events": list(self._events) if self._events is not None else None,
        }


# --------------------------------------------------------------------- state
#
# One tracer per thread of execution (= per simulated rank).  ``_armed``
# marks that tracing was requested: rank threads/processes spawned by
# ``run_spmd`` consult it (via begin_rank) to decide whether to install
# their own tracer.  Forked rank processes inherit it by copy-on-write.

_tls = threading.local()
_armed = False
_armed_events = False


def enable(*, events: bool = False) -> Tracer:
    """Turn tracing on for the current thread (and arm SPMD rank capture).

    Never called implicitly — importing :mod:`repro.obs` leaves tracing off
    (asserted by the test-suite).  ``events=True`` additionally records
    begin/end timestamps per span entry for Chrome-trace export (more memory,
    slightly more overhead).
    """
    global _armed, _armed_events
    tr = Tracer(events=events)
    _tls.tracer = tr
    _armed = True
    _armed_events = events
    return tr


def disable() -> None:
    """Turn tracing off for the current thread and disarm rank capture."""
    global _armed, _armed_events
    _tls.tracer = None
    _armed = False
    _armed_events = False


def is_enabled() -> bool:
    """True iff the *current thread* has an active tracer."""
    return getattr(_tls, "tracer", None) is not None


def current() -> Optional[Tracer]:
    """The current thread's tracer, or None when tracing is disabled."""
    return getattr(_tls, "tracer", None)


def span(name: str):
    """Context manager timing one region under the current span.

    The single hot-path entry point: when tracing is disabled this is one
    thread-local read plus returning a shared no-op object.
    """
    tr = getattr(_tls, "tracer", None)
    if tr is None:
        return NULL_SPAN
    return tr.span(name)


def stopwatch(name: str) -> _Stopwatch:
    """A span that always measures: ``sw.elapsed`` is valid after exit even
    with tracing disabled (then nothing is recorded)."""
    return _Stopwatch(name)


def incr(name: str, amount: float = 1) -> None:
    """Add ``amount`` to a named counter (no-op while disabled)."""
    tr = getattr(_tls, "tracer", None)
    if tr is not None:
        tr.incr(name, amount)


def gauge(name: str, value: float) -> None:
    """Record the latest value of a named gauge (no-op while disabled)."""
    tr = getattr(_tls, "tracer", None)
    if tr is not None:
        tr.gauge(name, value)


def snapshot() -> Optional[dict]:
    """Snapshot of the current thread's tracer (None while disabled)."""
    tr = getattr(_tls, "tracer", None)
    return tr.snapshot() if tr is not None else None


class tracing:
    """``with obs.tracing() as tr:`` — scoped enable/disable."""

    def __init__(self, *, events: bool = False) -> None:
        self._events = events

    def __enter__(self) -> Tracer:
        self._prev = getattr(_tls, "tracer", None)
        self._prev_armed = (_armed, _armed_events)
        return enable(events=self._events)

    def __exit__(self, *exc) -> bool:
        global _armed, _armed_events
        _tls.tracer = self._prev
        _armed, _armed_events = self._prev_armed
        return False


# ----------------------------------------------------------- SPMD rank hooks
#
# run_spmd wraps the rank function with these when the *caller's* thread has
# tracing enabled: each rank gets a fresh tracer for the duration of the run
# and its snapshot rides home on the existing result transport (so the
# process backend ships it through the same pipe/shared-memory path as user
# results — no side channel).


def rank_armed() -> bool:
    """Should SPMD ranks of a new run record traces?"""
    return _armed


def begin_rank() -> Tracer:
    """Install a fresh tracer on the calling rank thread/process."""
    tr = Tracer(events=_armed_events)
    _tls.tracer = tr
    return tr


def end_rank() -> Optional[dict]:
    """Snapshot and uninstall the rank tracer (returns the snapshot).

    Spans left open by a rank exception are force-closed (unwound without
    accumulating) so the snapshot never masks the original error."""
    tr = getattr(_tls, "tracer", None)
    if tr is None:
        return None
    del tr._stack[1:]
    snap = tr.snapshot()
    _tls.tracer = None
    return snap
