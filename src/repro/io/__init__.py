"""I/O: VTK export for visualization, time-series snapshots."""

from .vtk import read_vtk_summary, write_time_series, write_vtk  # noqa: F401
