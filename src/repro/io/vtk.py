"""Legacy-VTK export of octree meshes and fields.

Writes ASCII VTK unstructured grids (quads in 2D, hexahedra in 3D) with node
and cell data — loadable by ParaView/VisIt, the tools used for figures like
the paper's jet snapshots.  The writer reorders corners from Morton order to
VTK's winding, handles hanging nodes by writing interpolated values, and is
deliberately dependency-free.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from ..mesh.mesh import Mesh

#: Morton corner order -> VTK winding, per dimension.
_VTK_ORDER = {
    2: [0, 1, 3, 2],  # VTK_QUAD
    3: [0, 1, 3, 2, 4, 5, 7, 6],  # VTK_HEXAHEDRON
}
_VTK_CELL_TYPE = {2: 9, 3: 12}


def write_vtk(
    path: str,
    mesh: Mesh,
    point_data: Optional[Dict[str, np.ndarray]] = None,
    cell_data: Optional[Dict[str, np.ndarray]] = None,
    *,
    title: str = "repro octree mesh",
) -> str:
    """Write the mesh (+ DOF fields and per-element fields) as legacy VTK.

    ``point_data`` values are DOF vectors (length ``n_dofs``) or full node
    vectors (length ``n_nodes``); DOF vectors are expanded through the
    hanging-node interpolation so every written node carries a value.
    Returns the path written.
    """
    if not path.endswith(".vtk"):
        path = path + ".vtk"
    dim = mesh.dim
    coords = mesh.node_xy()
    n_nodes = mesh.n_nodes
    en = mesh.nodes.elem_nodes[:, _VTK_ORDER[dim]]
    nc = en.shape[1]

    lines = [
        "# vtk DataFile Version 3.0",
        title,
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
        f"POINTS {n_nodes} double",
    ]
    pts3 = np.zeros((n_nodes, 3))
    pts3[:, :dim] = coords
    lines.extend(" ".join(f"{v:.10g}" for v in p) for p in pts3)

    lines.append(f"CELLS {mesh.n_elems} {mesh.n_elems * (nc + 1)}")
    lines.extend(
        f"{nc} " + " ".join(str(int(i)) for i in row) for row in en
    )
    lines.append(f"CELL_TYPES {mesh.n_elems}")
    lines.extend([str(_VTK_CELL_TYPE[dim])] * mesh.n_elems)

    if point_data:
        lines.append(f"POINT_DATA {n_nodes}")
        for name, vec in point_data.items():
            vec = np.asarray(vec, dtype=np.float64)
            if len(vec) == mesh.n_dofs:
                vec = mesh.node_values(vec)
            elif len(vec) != n_nodes:
                raise ValueError(
                    f"point field '{name}' has length {len(vec)}; expected "
                    f"{mesh.n_dofs} (DOFs) or {n_nodes} (nodes)"
                )
            lines.append(f"SCALARS {name} double 1")
            lines.append("LOOKUP_TABLE default")
            lines.extend(f"{v:.10g}" for v in vec)

    if cell_data:
        lines.append(f"CELL_DATA {mesh.n_elems}")
        for name, vec in cell_data.items():
            vec = np.asarray(vec, dtype=np.float64)
            if len(vec) != mesh.n_elems:
                raise ValueError(
                    f"cell field '{name}' has length {len(vec)}; expected "
                    f"{mesh.n_elems}"
                )
            lines.append(f"SCALARS {name} double 1")
            lines.append("LOOKUP_TABLE default")
            lines.extend(f"{v:.10g}" for v in vec)

    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return path


def read_vtk_summary(path: str) -> dict:
    """Parse the structural header of a legacy VTK file (round-trip checks)."""
    out = {"points": 0, "cells": 0, "point_fields": [], "cell_fields": []}
    section = None
    with open(path) as fh:
        for line in fh:
            tok = line.split()
            if not tok:
                continue
            if tok[0] == "POINTS":
                out["points"] = int(tok[1])
            elif tok[0] == "CELLS":
                out["cells"] = int(tok[1])
            elif tok[0] == "POINT_DATA":
                section = "point"
            elif tok[0] == "CELL_DATA":
                section = "cell"
            elif tok[0] == "SCALARS":
                out[f"{section}_fields"].append(tok[1])
    return out


def write_time_series(
    directory: str,
    basename: str,
    step: int,
    mesh: Mesh,
    point_data: Optional[Dict[str, np.ndarray]] = None,
    cell_data: Optional[Dict[str, np.ndarray]] = None,
) -> str:
    """Write one snapshot of a time series (``basename_0007.vtk``)."""
    os.makedirs(directory, exist_ok=True)
    return write_vtk(
        os.path.join(directory, f"{basename}_{step:04d}"),
        mesh,
        point_data,
        cell_data,
        title=f"{basename} step {step}",
    )
