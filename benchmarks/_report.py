"""Shared reporting helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's figures as a text table and
writes it to ``benchmarks/results/<experiment>.txt`` (and stdout), recording
paper-reported values next to our measured/modeled values.
``make_experiments_md.py`` collates these into EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import platform as _platform
import time as _time
from typing import Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def host_provenance() -> dict:
    """Machine-readable measurement provenance, embedded in the meta of
    every ``BENCH_*.json``: CPU count, platform, python, and the default
    SPMD backend.  ``single_core_host`` makes the ROADMAP's "all timings so
    far are from a 1-core host" caveat a queryable fact instead of tribal
    knowledge: consumers comparing thread-vs-process speedups must check it.
    """
    from repro.runtime import default_backend_name

    ncpu = os.cpu_count()
    return {
        "generated_unix": int(_time.time()),
        "host_cpus": ncpu,
        "single_core_host": ncpu == 1,
        "platform": _platform.platform(),
        "machine": _platform.machine(),
        "python": _platform.python_version(),
        "default_spmd_backend": default_backend_name(),
    }


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    cols = [
        [str(h)] + [("%g" % r[i]) if isinstance(r[i], float) else str(r[i]) for r in rows]
        for i, h in enumerate(headers)
    ]
    widths = [max(len(c) for c in col) for col in cols]
    def line(vals):
        return " | ".join(v.rjust(w) for v, w in zip(vals, widths))
    out = [line([c[0] for c in cols])]
    out.append("-+-".join("-" * w for w in widths))
    for j in range(len(rows)):
        out.append(line([c[j + 1] for c in cols]))
    return "\n".join(out)


def provenance() -> str:
    """One-line measurement provenance: which SPMD backend produced the
    numbers below, on how many cores.  Benchmark honesty: wall-clock numbers
    from different backends are not comparable without this."""
    from repro.runtime import default_backend_name

    return (
        f"(SPMD backend: {default_backend_name()}; "
        f"host cores: {os.cpu_count()})"
    )


def report(experiment: str, title: str, body: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = f"# {experiment}: {title}\n{provenance()}\n\n{body}\n"
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    print("\n" + text)
