"""E2 / Figs. 2-3 — zip/unzip DOF layout vs strided assembly.

Regenerates the paper's data-layout experiment: multi-DOF elemental vector
and matrix assembly writing straight into the interleaved (BAIJ) layout with
strided access, versus assembling in the zipped (DOF-blocked, GEMM-friendly)
layout with one final unzip.  Both variants produce bitwise-comparable
results; the benchmark reports their relative speed.
"""

import numpy as np
import pytest

from repro.fem.layout import (
    assemble_matrix_strided,
    assemble_matrix_zipped,
    assemble_vector_strided,
    assemble_vector_zipped,
    strided_indices,
    unzip_matrix,
    unzip_vector,
    zip_matrix,
    zip_vector,
)

from _report import format_table, report

N_ELEMS = 4096
NDOF = 4  # e.g. (u, v, w, p) momentum block in 3D
DIM = 3
NQ = 8


@pytest.fixture(scope="module")
def coeffs():
    rng = np.random.default_rng(0)
    h = rng.uniform(0.01, 0.1, N_ELEMS)
    cv = rng.standard_normal((N_ELEMS, NDOF, NQ))
    cm = rng.standard_normal((N_ELEMS, NDOF, NDOF, NQ))
    return h, cv, cm


def test_vector_strided(coeffs, benchmark):
    h, cv, _ = coeffs
    benchmark(assemble_vector_strided, cv, h, DIM)


def test_vector_zipped(coeffs, benchmark):
    h, cv, _ = coeffs
    benchmark(assemble_vector_zipped, cv, h, DIM)


def test_matrix_strided(coeffs, benchmark):
    h, _, cm = coeffs
    benchmark(assemble_matrix_strided, cm, h, DIM)


def test_matrix_zipped(coeffs, benchmark):
    h, _, cm = coeffs
    benchmark(assemble_matrix_zipped, cm, h, DIM)


def test_fig23_report(coeffs, benchmark):
    import time

    h, cv, cm = coeffs
    # Equality of the two layouts' results (the paper's correctness claim).
    v1 = assemble_vector_strided(cv, h, DIM)
    v2 = assemble_vector_zipped(cv, h, DIM)
    assert np.allclose(v1, v2, atol=1e-12)
    m1 = assemble_matrix_strided(cm, h, DIM)
    m2 = assemble_matrix_zipped(cm, h, DIM)
    assert np.allclose(m1, m2, atol=1e-12)

    # zip/unzip are exact inverses (Fig. 2/3 memory views).
    assert np.array_equal(unzip_vector(zip_vector(v1, NDOF)), v1)
    assert np.array_equal(unzip_matrix(zip_matrix(m1, NDOF)), m1)
    # Paper's worked example: dof 0 of a 2-DOF 2D element writes 0,2,4,6.
    assert strided_indices(4, 2, 0).tolist() == [0, 2, 4, 6]
    assert strided_indices(4, 2, 1).tolist() == [1, 3, 5, 7]

    def timeit(fn, *args, reps=5):
        best = np.inf
        for _ in range(reps):
            t0 = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - t0)
        return best

    benchmark.pedantic(assemble_vector_zipped, args=(cv, h, DIM), rounds=3)
    tv_s = timeit(assemble_vector_strided, cv, h, DIM)
    tv_z = timeit(assemble_vector_zipped, cv, h, DIM)
    tm_s = timeit(assemble_matrix_strided, cm, h, DIM)
    tm_z = timeit(assemble_matrix_zipped, cm, h, DIM)
    rows = [
        ["vector, strided (ms)", "baseline", tv_s * 1e3],
        ["vector, zipped+unzip (ms)", "faster", tv_z * 1e3],
        ["vector speedup", ">1x", tv_s / tv_z],
        ["matrix, strided (ms)", "baseline", tm_s * 1e3],
        ["matrix, zipped+unzip (ms)", "faster", tm_z * 1e3],
        ["matrix speedup", ">1x", tm_s / tm_z],
        ["results identical", "yes", "yes"],
    ]
    report(
        "fig2_3",
        "zip/unzip layout for matrix & vector assembly (4-DOF 3D block)",
        format_table(["variant", "paper", "measured"], rows),
    )
    # The zipped GEMM formulation must not lose to the strided loop.
    assert tv_z < tv_s * 1.5
    assert tm_z < tm_s * 1.5
