"""Symbolic/numeric split assembly: plan numeric update vs per-call COO path.

Two measurements feed ``BENCH_PR2.json``:

* ``reassembly``: the per-call reference path
  (:func:`repro.fem.assembly.assemble_matrix` — COO construction + ``P^T A P``
  sparse matmuls every call) against :meth:`AssemblyPlan.assemble` numeric
  updates on the same coefficient batch.  The quick profile uses a >= 32x32
  element 2D mesh; the CI gate **fails if the plan path is not >= 2x faster**.
* ``ch_newton_iterate``: one CH residual+jacobian evaluation pair at the same
  Newton iterate, before (seed implementation: reference assembly, mobility
  stiffness assembled twice) vs after (plan cache + per-iterate operator
  sharing).

Run standalone (exits non-zero if the gate fails)::

    PYTHONPATH=src python benchmarks/bench_assembly_plan.py --quick

or as part of ``benchmarks/run_all.py --quick``, which embeds the same
numbers in its report and writes this file's ``BENCH_PR2.json`` too.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np
import scipy.sparse as sp

from repro.chns import forms
from repro.chns.ch_solver import CHSolver
from repro.chns.free_energy import mobility, psi_double_prime, psi_prime
from repro.chns.params import CHNSParams
from repro.fem.assembly import assemble_matrix
from repro.fem.operators import mass_matrix, stiffness_matrix
from repro.fem.plan import AssemblyPlan
from repro.mesh.mesh import Mesh, mesh_from_field
from repro.octree.build import uniform_tree

DEFAULT_OUT = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_PR2.json"
)
SPEEDUP_GATE = 2.0


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_reassembly(quick: bool) -> dict:
    """Per-call COO reference vs plan numeric update on one mesh."""

    def interface(x):
        return np.linalg.norm(x - 0.5, axis=1) - 0.3

    if quick:
        # Uniform 32x32 (the gated quick size) plus an adaptive mesh with
        # hanging nodes so the projection is exercised.
        meshes = {
            "uniform_32x32": Mesh.from_tree(uniform_tree(2, 5)),
            "adaptive_2d": mesh_from_field(
                interface, 2, max_level=6, min_level=4, threshold=0.05
            ),
        }
        repeats = 30
    else:
        meshes = {
            "uniform_64x64": Mesh.from_tree(uniform_tree(2, 6)),
            "adaptive_2d": mesh_from_field(
                interface, 2, max_level=8, min_level=5, threshold=0.03
            ),
            "adaptive_3d": mesh_from_field(
                interface, 3, max_level=4, min_level=2, threshold=0.1
            ),
        }
        repeats = 50

    out: dict = {}
    for name, mesh in meshes.items():
        rng = np.random.default_rng(0)
        nq = 2**mesh.dim
        coeff = rng.uniform(0.5, 2.0, (mesh.n_elems, nq))
        Ke = stiffness_matrix(mesh.elem_h(), mesh.dim, coeff)

        t_sym0 = time.perf_counter()
        plan = AssemblyPlan(mesh)
        t_symbolic = time.perf_counter() - t_sym0

        t_ref = _best_of(lambda: assemble_matrix(mesh, Ke), repeats)
        t_plan = _best_of(lambda: plan.assemble(Ke), repeats)
        err = float(
            np.abs(plan.assemble(Ke) - assemble_matrix(mesh, Ke)).max()
        )
        out[name] = {
            "n_elems": int(mesh.n_elems),
            "n_dofs": int(mesh.n_dofs),
            "hanging_nodes": int(mesh.nodes.is_hanging.sum()),
            "reference_percall_ms": round(t_ref * 1e3, 4),
            "plan_numeric_ms": round(t_plan * 1e3, 4),
            "plan_symbolic_ms": round(t_symbolic * 1e3, 4),
            "speedup": round(t_ref / t_plan, 2),
            "symbolic_amortized_after_calls": (
                int(np.ceil(t_symbolic / max(t_ref - t_plan, 1e-12)))
            ),
            "max_abs_diff_vs_reference": err,
        }
    return out


def bench_ch_iterate(quick: bool) -> dict:
    """One CH Newton residual+jacobian pair: seed path vs cached plan path."""

    def interface(x):
        return np.linalg.norm(x - 0.5, axis=1) - 0.3

    max_level = 5 if quick else 6
    mesh = mesh_from_field(
        interface, 2, max_level=max_level, min_level=4, threshold=0.05
    )
    prm = CHNSParams()
    ch = CHSolver(mesh, prm)
    phi = mesh.interpolate(
        lambda x: np.tanh(-interface(x) / (np.sqrt(2) * prm.Cn))
    )
    mu = ch.initial_mu(phi)
    dt = 1e-3
    n = mesh.n_dofs
    x = np.concatenate([phi, mu])

    # --- before: the seed implementation.  Reference assembly everywhere,
    # and residual/jacobian each assemble the mobility stiffness and
    # re-evaluate phi at quadrature points independently.
    M = assemble_matrix(mesh, mass_matrix(mesh.elem_h(), 2))
    K = assemble_matrix(mesh, stiffness_matrix(mesh.elem_h(), 2))
    mob_coeff = 1.0 / (prm.Pe * prm.Cn)
    Cn2 = prm.Cn**2

    def legacy_mobility_stiffness(p):
        m_q = mobility(forms.field_at_quad(mesh, p))
        return assemble_matrix(
            mesh, stiffness_matrix(mesh.elem_h(), 2, m_q)
        )

    def legacy_pair():
        p, m = x[:n], x[n:]
        Km = legacy_mobility_stiffness(p)
        r_phi = M @ ((p - phi) / dt) + mob_coeff * (Km @ m)
        psi_q = psi_prime(forms.field_at_quad(mesh, p))
        r_mu = M @ m - forms.source(mesh, psi_q) - Cn2 * (K @ p)
        _ = np.concatenate([r_phi, r_mu])
        Km2 = legacy_mobility_stiffness(p)
        psi2_q = psi_double_prime(forms.field_at_quad(mesh, p))
        M_psi2 = assemble_matrix(mesh, mass_matrix(mesh.elem_h(), 2, psi2_q))
        return sp.bmat(
            [[M / dt, mob_coeff * Km2], [-M_psi2 - Cn2 * K, M]], format="csr"
        )

    # --- after: the current code path (plan cache + IterateCache).
    residual, jacobian, _ = ch.operators(phi, mu, None, dt)

    def cached_pair():
        ch._iterate.clear()  # a fresh Newton iterate, not a warm rerun
        residual(x)
        return jacobian(x)

    repeats = 5 if quick else 10
    cached_pair()  # warm the assembly-plan cache (symbolic phase)
    t_before = _best_of(legacy_pair, repeats)
    t_after = _best_of(cached_pair, repeats)
    return {
        "n_elems": int(mesh.n_elems),
        "n_dofs": int(mesh.n_dofs),
        "seed_iterate_ms": round(t_before * 1e3, 3),
        "cached_iterate_ms": round(t_after * 1e3, 3),
        "speedup": round(t_before / t_after, 2),
        "mobility_assemblies_per_iterate": {"seed": 2, "cached": 1},
    }


def run(quick: bool) -> dict:
    """All sections + the quick-size gate verdict (used by run_all.py)."""
    out = {
        "reassembly": bench_reassembly(quick),
        "ch_newton_iterate": bench_ch_iterate(quick),
        "speedup_gate": SPEEDUP_GATE,
    }
    gate_mesh = "uniform_32x32" if quick else "uniform_64x64"
    out["gate_mesh"] = gate_mesh
    out["gate_speedup"] = out["reassembly"][gate_mesh]["speedup"]
    out["gate_passed"] = bool(out["gate_speedup"] >= SPEEDUP_GATE)
    return out


def write_report(section: dict, quick: bool, output: str = DEFAULT_OUT) -> None:
    """Wrap a ``run()`` section in the PR 1 provenance headers and write it."""
    from _report import host_provenance

    report = {
        "meta": {
            **host_provenance(),
            "quick": quick,
            "note": (
                "assembly-plan numeric updates vs per-call COO reference; "
                "single-process timings (no SPMD backend involved), so "
                "provenance is host + python only"
            ),
        },
        "assembly_plan": section,
    }
    os.makedirs(os.path.dirname(output), exist_ok=True)
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {output}")

    # Text table alongside the figure benchmarks (collated into
    # EXPERIMENTS.md by make_experiments_md.py).
    from _report import format_table, report as text_report

    rows = [
        (
            name,
            row["n_elems"],
            row["hanging_nodes"],
            row["reference_percall_ms"],
            row["plan_numeric_ms"],
            row["plan_symbolic_ms"],
            f"{row['speedup']}x",
        )
        for name, row in section["reassembly"].items()
    ]
    ch = section["ch_newton_iterate"]
    body = format_table(
        ["mesh", "elems", "hanging", "reference ms", "plan ms",
         "symbolic ms", "speedup"],
        rows,
    ) + (
        f"\n\nCH Newton iterate (residual+jacobian at one iterate): "
        f"seed {ch['seed_iterate_ms']}ms -> cached {ch['cached_iterate_ms']}ms "
        f"({ch['speedup']}x; mobility assemblies 2 -> 1)\n"
        f"gate: plan >= {section['speedup_gate']}x vs per-call COO on "
        f"{section['gate_mesh']}: "
        f"{'PASS' if section['gate_passed'] else 'FAIL'} "
        f"({section['gate_speedup']}x)"
    )
    text_report(
        "assembly_plan",
        "symbolic/numeric split assembly plans (PR 2)",
        body,
    )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="CI-sized workloads")
    ap.add_argument("--output", default=DEFAULT_OUT)
    args = ap.parse_args(argv)

    section = run(args.quick)
    write_report(section, args.quick, args.output)

    for name, row in section["reassembly"].items():
        print(
            f"  {name}: reference {row['reference_percall_ms']}ms -> plan "
            f"{row['plan_numeric_ms']}ms ({row['speedup']}x)"
        )
    ch = section["ch_newton_iterate"]
    print(
        f"  ch iterate: seed {ch['seed_iterate_ms']}ms -> cached "
        f"{ch['cached_iterate_ms']}ms ({ch['speedup']}x)"
    )
    if not section["gate_passed"]:
        print(
            f"ERROR: plan speedup {section['gate_speedup']}x on "
            f"{section['gate_mesh']} below the {SPEEDUP_GATE}x gate",
            file=sys.stderr,
        )
        return 1
    print(
        f"gate ok: {section['gate_speedup']}x >= {SPEEDUP_GATE}x on "
        f"{section['gate_mesh']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
