"""Ablation A4 — erosion/dilation vs connected-component labeling (Sec. V).

The paper's related-work argument made executable: (i) CCL costs more than
the MATVEC-based identifier; (ii) a volume filter on components cannot flag
a thin filament attached to a large body (one component), while the
erosion/dilation pipeline does.
"""

import time

import numpy as np
import pytest

from repro.core.connected_components import flag_small_components, label_components
from repro.core.identifier import IdentifierConfig, identify_local_cahn
from repro.mesh.mesh import mesh_from_field

from _report import format_table, report


def scene_phi(x):
    """Blob + attached filament + one detached small droplet."""
    y, xx = x[..., 1], x[..., 0]
    blob = np.sqrt((xx - 0.3) ** 2 + (y - 0.55) ** 2) - 0.16
    fil = np.maximum(np.abs(y - 0.55) - 0.025, (xx - 0.3) * (xx - 0.85))
    droplet = np.sqrt((xx - 0.75) ** 2 + (y - 0.2) ** 2) - 0.045
    return np.tanh(np.minimum(np.minimum(blob, fil), droplet) / 0.008)


@pytest.fixture(scope="module")
def mesh():
    return mesh_from_field(scene_phi, 2, max_level=7, min_level=4, threshold=0.9)


def test_ccl_kernel(mesh, benchmark):
    phi = mesh.interpolate(scene_phi)
    benchmark.pedantic(label_components, args=(mesh, phi, -0.8), rounds=3)


def test_identifier_kernel(mesh, benchmark):
    phi = mesh.interpolate(scene_phi)
    cfg = IdentifierConfig(delta=-0.8, n_erode=5, n_extra_dilate=3)
    benchmark.pedantic(identify_local_cahn, args=(mesh, phi, cfg), rounds=3)


def test_ablation_ccl_report(mesh, benchmark):
    phi = mesh.interpolate(scene_phi)
    cfg = IdentifierConfig(delta=-0.8, n_erode=5, n_extra_dilate=3)

    t0 = time.perf_counter()
    ccl = flag_small_components(mesh, phi, delta=-0.8, volume_threshold=0.015)
    t_ccl = time.perf_counter() - t0
    t0 = time.perf_counter()
    res = benchmark.pedantic(
        identify_local_cahn, args=(mesh, phi, cfg), rounds=1
    )
    t_id = time.perf_counter() - t0

    centers = mesh.elem_centers()
    on_filament = (centers[:, 0] > 0.5) & (np.abs(centers[:, 1] - 0.55) < 0.1)
    near_droplet = np.linalg.norm(centers - np.array([0.75, 0.2]), axis=1) < 0.1

    rows = [
        ["components found", ccl.n_components, "-"],
        ["detached droplet flagged",
         "yes" if (ccl.small_elements & near_droplet).any() else "NO",
         "yes" if (res.detected & near_droplet).any() else "NO"],
        ["attached filament flagged",
         "yes" if (ccl.small_elements & on_filament).any() else "NO",
         "yes" if (res.detected & on_filament).any() else "NO"],
        ["wall time (ms)", round(t_ccl * 1e3, 1), round(t_id * 1e3, 1)],
        ["needs neighbor/graph structure", "union-find graph",
         "no (MATVEC only)"],
    ]
    report(
        "ablation_ccl",
        "Erosion/dilation vs connected-component labeling (paper Sec. V)",
        format_table(["quantity", "CCL + volume filter", "identifier"], rows)
        + "\n\nThe filament belongs to the blob's component, so no size "
        "threshold can flag it — the paper's Fig. 1b argument, verified.",
    )
    assert (res.detected & near_droplet).any()
    assert (res.detected & on_filament).any()
    assert not (ccl.small_elements & on_filament).any()
