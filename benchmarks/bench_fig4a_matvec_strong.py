"""E3 / Fig. 4a — MATVEC strong scaling.

Two layers, per the documented substitution:

1. *Simulator measurements*: the real distributed MATVEC (GhostRead ->
   elemental pass -> GhostWrite over NBX) runs on a fixed adaptive mesh at
   1..8 simulated ranks; wall time and exact ghost-traffic counters are
   recorded, and the surface-to-volume ghost coefficient is fitted from the
   counters.
2. *Machine-model extrapolation*: the calibrated alpha-beta-gamma model
   (anchored to the paper's 224-process and 28,672-process points) produces
   the full Fig. 4a curve — 13M elements, 224 -> 28,672 processes, checking
   the paper's 2.87 s -> 0.027 s and 81% parallel efficiency.
"""

import os
import time

import numpy as np
import pytest

from repro.fem.operators import stiffness_matrix
from repro.mesh.distributed import DistributedField
from repro.mesh.mesh import mesh_from_field
from repro.mpi.comm import run_spmd
from repro.mpi.stats import CommStats
from repro.perf.machine import MachineModel, parallel_efficiency
from repro.perf.model import fit_ghost_coeff
from repro.runtime import ProcessBackend

from _report import format_table, report

PAPER_PROCS = [224, 448, 896, 1792, 3584, 7168, 14336, 28672]
PAPER_T0, PAPER_T1 = 2.87, 0.027
PAPER_EFF = 0.81


def adaptive_mesh():
    def phi(x):
        return np.linalg.norm(x - 0.5, axis=1) - 0.3

    return mesh_from_field(phi, 2, max_level=7, min_level=4, threshold=0.03)


@pytest.fixture(scope="module")
def mesh():
    return adaptive_mesh()


def _distributed_matvec_run(mesh, nprocs, n_iters=3, backend=None):
    Ke = stiffness_matrix(mesh.elem_h(), mesh.dim)
    u = np.ones(mesh.n_nodes)
    stats = CommStats()

    def fn(comm):
        df = DistributedField(comm, mesh)
        owned = df.from_global(u)
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(n_iters):
            owned = df.matvec(Ke[df.elem_lo : df.elem_hi], owned)
            owned /= max(np.abs(owned).max(), 1e-30)
        comm.barrier()
        return (time.perf_counter() - t0) / n_iters

    t_wall = time.perf_counter()
    times = run_spmd(nprocs, fn, stats=stats, backend=backend)
    t_wall = time.perf_counter() - t_wall
    return max(times), stats.snapshot(), t_wall


def test_simulated_matvec_rank4(mesh, benchmark):
    """Timed kernel: one distributed MATVEC pass at 4 simulated ranks."""

    def once():
        return _distributed_matvec_run(mesh, 4, n_iters=1)

    benchmark.pedantic(once, rounds=3, iterations=1)


def test_fig4a_strong_scaling(mesh, benchmark):
    # --- simulator measurements -------------------------------------------
    benchmark.pedantic(_distributed_matvec_run, args=(mesh, 2, 1), rounds=1)
    sim_rows = []
    ghost_bytes = []
    grains = []
    for p in (1, 2, 4, 8):
        t, snap, _ = _distributed_matvec_run(mesh, p)
        sim_rows.append([p, mesh.n_elems // p, t * 1e3, snap["bytes_sent"]])
        if p > 1:
            ghost_bytes.append(snap["bytes_sent"] / p / 3)  # per rank per iter
            grains.append(mesh.n_elems / p)
    coeff = fit_ghost_coeff(np.array(grains), np.array(ghost_bytes), mesh.dim)

    sim_table = format_table(
        ["ranks", "elems/rank", "ms/MATVEC", "total bytes"], sim_rows
    )

    # --- model extrapolation to the paper's scale --------------------------
    model = MachineModel()
    times = np.array(
        [model.matvec_time(13e6, p, dim=3, ghost_coeff=max(coeff, 1.0))
         for p in PAPER_PROCS]
    )
    eff = parallel_efficiency(times, np.array(PAPER_PROCS))
    rows = [
        [p, round(t, 4), round(e, 3)]
        for p, t, e in zip(PAPER_PROCS, times, eff)
    ]
    model_table = format_table(["procs", "model time (s)", "efficiency"], rows)

    summary = format_table(
        ["quantity", "paper", "reproduced"],
        [
            ["time @ 224 procs (s)", PAPER_T0, round(float(times[0]), 3)],
            ["time @ 28,672 procs (s)", PAPER_T1, round(float(times[-1]), 4)],
            ["efficiency @ 128x procs", PAPER_EFF, round(float(eff[-1]), 3)],
            ["fitted ghost surface coeff", "-", round(coeff, 2)],
        ],
    )
    report(
        "fig4a",
        "MATVEC strong scaling (13M elements, 224 -> 28,672 processes)",
        "Simulator (real SPMD kernels, counters measured):\n"
        + sim_table
        + "\n\nMachine-model extrapolation at paper scale:\n"
        + model_table
        + "\n\nAnchors:\n"
        + summary,
    )
    assert abs(float(times[0]) - PAPER_T0) / PAPER_T0 < 0.05
    assert abs(float(times[-1]) - PAPER_T1) / PAPER_T1 < 0.10
    assert abs(float(eff[-1]) - PAPER_EFF) < 0.05
    # Strong scaling monotone decreasing.
    assert np.all(np.diff(times) < 0)


def _matrix_free_matvec_run(mesh, nprocs, n_iters, backend):
    """Wall time of the matrix-free (per-element assembly) MATVEC program."""
    u = np.ones(mesh.n_nodes)

    def fn(comm):
        df = DistributedField(comm, mesh)
        owned = df.from_global(u)
        comm.barrier()
        for _ in range(n_iters):
            owned = df.matvec_matrix_free(owned)
            owned /= max(np.abs(owned).max(), 1e-30)
        comm.barrier()
        return None

    t0 = time.perf_counter()
    run_spmd(nprocs, fn, backend=backend, timeout=600)
    return time.perf_counter() - t0


@pytest.mark.skipif(
    not ProcessBackend.is_available(), reason="fork not available"
)
def test_backend_speedup_8ranks(benchmark):
    """Thread vs process backend, 8 simulated ranks, matrix-free MATVEC.

    The workload is the compute-dense matrix-free kernel (per-element
    on-the-fly assembly): each rank spends ~60 ms/iteration of
    interpreter-bound work that the GIL serializes on the thread backend
    but the process backend runs on separate cores.  On a multi-core host
    the process backend must win by >= 2x wall-clock.  On single-core
    hosts the number is recorded but not asserted — benchmark honesty
    requires publishing the host context either way.  (The fully
    vectorized batched kernel is deliberately *not* used here: it spends
    microseconds per rank, so it measures transport latency, not
    scalability; its per-backend numbers live in BENCH_PR1.json.)
    """
    cores = os.cpu_count() or 1
    big_mesh = mesh_from_field(
        lambda x: np.linalg.norm(x - 0.5, axis=1) - 0.3,
        2, max_level=9, min_level=4, threshold=0.03,
    )
    # Warm both paths once (fork pools, imports) before timing.
    _matrix_free_matvec_run(big_mesh, 2, 1, "thread")
    _matrix_free_matvec_run(big_mesh, 2, 1, "process")
    n_iters = 6
    wall_thread = _matrix_free_matvec_run(big_mesh, 8, n_iters, "thread")
    wall_process = _matrix_free_matvec_run(big_mesh, 8, n_iters, "process")
    benchmark.pedantic(
        lambda: None, rounds=1
    )  # keep pytest-benchmark fixture satisfied
    speedup = wall_thread / wall_process
    report(
        "backend_speedup",
        "thread vs process backend, 8-rank matrix-free MATVEC",
        format_table(
            ["backend", "wall s (8 ranks)", "cores", "speedup vs thread"],
            [
                ["thread", round(wall_thread, 4), cores, 1.0],
                ["process", round(wall_process, 4), cores, round(speedup, 3)],
            ],
        )
        + "\n\nEach backend ran the identical SPMD matrix-free MATVEC "
        f"program ({big_mesh.n_elems} elements, {n_iters} iterations/rank)."
        "\nThe >=2x acceptance gate applies on hosts with >= 4 cores; on "
        "fewer cores\nthe ranks serialize either way and the honest number "
        "is reported unasserted.",
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"process backend speedup {speedup:.2f}x < 2x on {cores} cores"
        )
