"""E8 / Fig. 8 — element fraction by octree level.

The paper's Fig. 8 histogram for the jet run: the finest level (15) holds
the largest element fraction, levels 13-14 together hold ~25%, yet level 15
covers only ~0.01% of the volume; resolving everything at level 15 would
cost 8-10x the elements and ~20-25x the solve time (O(N log N) estimate).
This benchmark reproduces the distribution's shape on the scaled jet mesh
and evaluates the paper's own cost arithmetic.
"""

import numpy as np
import pytest

from repro.amr.driver import level_fractions, uniform_equivalent_points
from repro.chns.initial_conditions import jet_column
from repro.mesh.mesh import mesh_from_field

from _report import format_table, report

MAX_LEVEL = 8


def jet_phi(x):
    return jet_column(
        x, half_width=0.1, length=0.5, Cn=0.01, perturb_amp=0.25, perturb_k=5
    )


def build():
    return mesh_from_field(jet_phi, 2, max_level=MAX_LEVEL, min_level=3,
                           threshold=0.95)


def test_level_fraction_kernel(benchmark):
    mesh = build()
    benchmark(level_fractions, mesh)


def test_fig8_level_fractions(benchmark):
    mesh = benchmark.pedantic(build, rounds=1)
    fr = level_fractions(mesh)
    lv = fr["levels"]
    ef = fr["element_fraction"]
    vf = fr["volume_fraction"]

    finest = int(lv[np.nonzero(fr["counts"])[0][-1]])
    near_finest = float(ef[finest - 2] + ef[finest - 1])

    # Paper's uniform-cost estimate at the finest level.
    n_adaptive = mesh.n_elems
    n_uniform = (2**finest) ** mesh.dim
    elem_factor = n_uniform / n_adaptive
    # O(N log N) solve-time multiplier (paper footnote 7).
    time_factor = (n_uniform * np.log(n_uniform)) / (
        n_adaptive * np.log(n_adaptive)
    )

    hist_rows = [
        [int(l), round(float(e), 4), round(float(v), 4)]
        for l, e, v in zip(lv, ef, vf)
        if fr["counts"][int(l)] > 0
    ]
    hist = format_table(["level", "element fraction", "volume fraction"], hist_rows)

    rows = [
        ["max element fraction at finest level", "yes",
         "yes" if ef[finest] == ef.max() else "NO"],
        ["fraction at (finest-2, finest-1)", "~0.25", round(near_finest, 3)],
        ["finest-level volume fraction", "1e-4 (0.01%)",
         f"{float(vf[finest]):.2e}"],
        ["uniform/adaptive element factor", "8-10x", round(elem_factor, 1)],
        ["uniform/adaptive time factor (N log N)", "20-25x",
         round(time_factor, 1)],
        ["equivalent uniform points", "3.5e13 (level 15, 3D)",
         f"{uniform_equivalent_points(mesh):.3g}"],
    ]
    report(
        "fig8",
        "Element fraction vs octree level (jet mesh)",
        hist + "\n\n" + format_table(["quantity", "paper", "measured"], rows),
    )
    # Shape assertions: finest dominates counts, not volume.
    assert ef[finest] == ef.max()
    assert vf[finest] < 0.2
    assert elem_factor > 2.0
    assert time_factor > elem_factor
