"""Ablation A3 — block (BAIJ) vs scalar (AIJ) sparse storage.

The paper stores multi-DOF systems in PETSc's MATMPIBAIJ: "much more
efficient than the non-block version MATMPIAIJ, specifically for the
multi-dof system" (Sec. II-D).  This ablation builds the same multi-DOF
operator in both formats (scipy BSR with node-sized blocks vs plain CSR)
and compares MATVEC throughput, plus the level-aware erosion counter
ablation (Sec. II-B3): without the counter the morphological front moves
faster through coarse elements, breaking physical uniformity.
"""

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.erode_dilate import Stage, erode_dilate
from repro.core.threshold import threshold_octree
from repro.mesh.mesh import Mesh
from repro.octree.build import uniform_tree
from repro.octree.refine import refine

from _report import format_table, report

NDOF = 4


def block_system(level=6, ndof=NDOF, seed=0):
    """Multi-DOF operator with dense node-blocks (momentum-like coupling)."""
    m = Mesh.from_tree(uniform_tree(2, level))
    from repro.fem.assembly import assemble_matrix
    from repro.fem.operators import mass_matrix, stiffness_matrix

    S = assemble_matrix(
        m, stiffness_matrix(m.elem_h(), 2) + mass_matrix(m.elem_h(), 2)
    ).tocsr()
    rng = np.random.default_rng(seed)
    coupling = rng.standard_normal((ndof, ndof)) * 0.1 + np.eye(ndof)
    A_csr = sp.kron(S, coupling, format="csr")
    A_bsr = sp.kron(S, coupling, format="bsr")
    assert A_bsr.blocksize == (ndof, ndof)
    x = rng.standard_normal(A_csr.shape[0])
    return A_csr, A_bsr, x


@pytest.fixture(scope="module")
def system():
    return block_system()


def test_csr_matvec_kernel(system, benchmark):
    A_csr, _, x = system
    benchmark(lambda: A_csr @ x)


def test_bsr_matvec_kernel(system, benchmark):
    _, A_bsr, x = system
    benchmark(lambda: A_bsr @ x)


def _front_radius(mesh, vec):
    """Radius of the remaining +1 region after erosion of a centered disk."""
    xy = mesh.dof_xy()
    pos = vec > 0
    if not np.any(pos):
        return 0.0
    return float(np.linalg.norm(xy[pos] - 0.5, axis=1).max())


def test_ablation_block_and_counter_report(system, benchmark):
    A_csr, A_bsr, x = system

    def timeit(fn, reps=20):
        best = np.inf
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    benchmark.pedantic(lambda: A_bsr @ x, rounds=5)
    t_csr = timeit(lambda: A_csr @ x)
    t_bsr = timeit(lambda: A_bsr @ x)
    assert np.allclose(A_csr @ x, A_bsr @ x, atol=1e-10)
    storage_csr = A_csr.data.nbytes + A_csr.indices.nbytes + A_csr.indptr.nbytes
    storage_bsr = A_bsr.data.nbytes + A_bsr.indices.nbytes + A_bsr.indptr.nbytes
    table_blk = format_table(
        ["format", "MATVEC ms", "index+data bytes"],
        [
            ["AIJ (CSR, scalar entries)", round(t_csr * 1e3, 3), storage_csr],
            [f"BAIJ (BSR, {NDOF}x{NDOF} blocks)", round(t_bsr * 1e3, 3),
             storage_bsr],
        ],
    )

    # --- level-counter ablation -------------------------------------------
    t = uniform_tree(2, 4)
    targets = t.levels.copy()
    centers = t.centers() / float(1 << 19)
    targets[centers[:, 0] > 0.5] = 6  # right half two levels finer
    mesh = Mesh.from_tree(refine(t, targets))
    phi = mesh.interpolate(
        lambda x: np.tanh((np.linalg.norm(x - 0.5, axis=1) - 0.3) / 0.02)
    )
    bw = threshold_octree(phi, -0.8)
    base = int(mesh.tree.levels.max())
    with_counter = erode_dilate(mesh, bw, Stage.EROSION, 4, base)

    def erode_no_counter(vec, steps):
        """Ablated kernel: every interface element erodes every sweep,
        regardless of its level (wait counters removed)."""
        from repro.core.threshold import interface_elements

        out = vec.copy()
        en = mesh.nodes.elem_nodes
        for _ in range(steps):
            nodal = mesh.node_values(out)
            trigger = interface_elements(mesh, out)
            if np.any(trigger):
                nodal_new = nodal.copy()
                nodal_new[en[trigger].ravel()] = -1.0
                out = nodal_new[mesh.nodes.node_of_dof]
        return out

    without_counter = erode_no_counter(bw, 4)
    xy = mesh.dof_xy()

    def side_radius(vec, side):
        sel = (xy[:, 0] > 0.5) if side == "fine" else (xy[:, 0] <= 0.5)
        pos = (vec > 0) & sel
        if not np.any(pos):
            return 0.0
        return float(np.linalg.norm(xy[pos] - 0.5, axis=1).max())

    rows = [
        ["fine-side front radius (with counter)", "-",
         round(side_radius(with_counter, "fine"), 3)],
        ["coarse-side front radius (with counter)", "match",
         round(side_radius(with_counter, "coarse"), 3)],
        ["fine-side front radius (no counter)", "-",
         round(side_radius(without_counter, "fine"), 3)],
        ["coarse-side front radius (no counter)", "lags",
         round(side_radius(without_counter, "coarse"), 3)],
    ]
    asym_with = abs(
        side_radius(with_counter, "fine") - side_radius(with_counter, "coarse")
    )
    asym_without = abs(
        side_radius(without_counter, "fine")
        - side_radius(without_counter, "coarse")
    )
    table_cnt = format_table(["quantity", "expected", "measured"], rows)
    report(
        "ablation_block_counter",
        "Block storage (BAIJ vs AIJ) and the level-aware erosion counter",
        "Block-format MATVEC (same operator, same result):\n" + table_blk
        + "\n\nLevel-aware counter (Sec. II-B3) on a mixed-level mesh "
        "(levels 4 | 6): erosion fronts per side after 4 sweeps:\n"
        + table_cnt
        + f"\n\nfront asymmetry with counter: {asym_with:.3f}, without: "
        f"{asym_without:.3f} — the counter keeps the physical erosion "
        "speed uniform across resolution jumps.",
    )
    assert asym_with <= asym_without + 1e-12
