"""Ablation A1 — single-pass multi-level refine/coarsen (contribution #2)
vs the level-by-level protocol of prior frameworks.

The paper tailors octree refinement so the element sizes may drop many
levels in one remeshing step, "in contrast [to] existing approaches, where
refinement or coarsening of the octrees is done level by level."  This
ablation measures both protocols producing *identical* meshes on an
interface whose required depth jumps by up to 5 levels — the regime of a
moving, suddenly-breaking interface.
"""

import time

import numpy as np
import pytest

from repro.octree.build import uniform_tree
from repro.octree.coarsen import coarsen
from repro.octree.level_by_level import (
    coarsen_level_by_level,
    refine_level_by_level,
)
from repro.octree.refine import refine

from _report import format_table, report


def make_case(jump):
    """Coarse base with an interface band needing `jump` extra levels."""
    t = uniform_tree(2, 4)
    centers = t.centers() / float(t.anchors.max() + t.sizes()[0])
    band = np.abs(np.linalg.norm(centers - 0.5, axis=1) - 0.3) < 0.06
    targets = t.levels.copy()
    targets[band] = t.levels[band] + jump
    return t, targets


def _timeit(fn, *args, reps=5):
    best = np.inf
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_single_pass_refine_kernel(benchmark):
    t, targets = make_case(4)
    benchmark(refine, t, targets)


def test_level_by_level_refine_kernel(benchmark):
    t, targets = make_case(4)
    benchmark(refine_level_by_level, t, targets)


def test_ablation_multilevel_report(benchmark):
    rows = []
    for jump in (1, 2, 3, 4, 5):
        t, targets = make_case(jump)
        t_multi, multi = _timeit(refine, t, targets)
        t_lbl, (lbl, passes) = _timeit(refine_level_by_level, t, targets)
        assert lbl == multi
        rows.append(
            [jump, len(multi), 1, passes, t_multi * 1e3, t_lbl * 1e3,
             round(t_lbl / t_multi, 2)]
        )
    table_r = format_table(
        ["level jump", "elements", "passes (ours)", "passes (baseline)",
         "ours ms", "baseline ms", "slowdown"],
        rows,
    )

    # Coarsening counterpart: deep collapse of a fine band.
    rows_c = []
    for drop in (1, 2, 3, 4):
        t = uniform_tree(2, 6)
        votes = np.maximum(t.levels - drop, 2)
        t_multi, multi = _timeit(coarsen, t, votes)
        t_lbl, (lbl, passes) = _timeit(coarsen_level_by_level, t, votes)
        assert lbl == multi
        rows_c.append(
            [drop, len(multi), passes, t_multi * 1e3, t_lbl * 1e3,
             round(t_lbl / t_multi, 2)]
        )
    table_c = format_table(
        ["level drop", "elements", "baseline passes", "ours ms",
         "baseline ms", "slowdown"],
        rows_c,
    )
    benchmark.pedantic(refine, args=make_case(4), rounds=3)
    report(
        "ablation_multilevel",
        "Single-pass multi-level refine/coarsen vs level-by-level baseline",
        "Refinement (identical outputs asserted):\n" + table_r
        + "\n\nCoarsening:\n" + table_c
        + "\n\nThe baseline's pass count — and the intermediate grids each "
        "pass rebuilds — grows linearly with the level jump; the paper's "
        "single-pass algorithms stay at one traversal.",
    )
    # The headline claim: baseline cost grows with the jump, ours does not.
    assert rows[-1][3] == 5  # five baseline passes at jump 5
    assert rows[-1][2] == 1
