"""Cost of the REPRO_SPMD_CHECK runtime-checker hooks (PR 5).

Every blocking collective on :class:`repro.mpi.comm.Comm` now calls into
:func:`repro.analysis.runtime_check.verify_collective` before executing.
With checks disabled (the default) that hook is a module lookup plus one
predicate — this benchmark gates that the hook costs **< 5%** on a
collective-dense workload, so the checkers are free to ship always-wired.

Method (mirrors ``bench_obs_phases.measure_disabled_overhead``): the same
SPMD program — a barrier/allreduce/allgather loop on the thread backend,
transport-bound, the worst case for a per-collective hook — runs twice:

* **raw**: ``Comm._verify`` replaced with a bound no-op, i.e. the pre-PR
  call sequence;
* **hooked**: the shipped code with checks disabled.

Wall time is min-of-repeats with retries, because the gate compares two
near-identical numbers under scheduler noise.  The enabled-mode cost
(fingerprint rendezvous per collective, ``force_checks(True)``) is reported
informationally — it is opt-in diagnostics, not a gated path.

Artifacts: section in ``benchmarks/results/BENCH_PR5.json`` (standalone
write) plus a text table collated into EXPERIMENTS.md; wired into
``run_all.py`` (``--quick`` included), which fails if the gate does.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.analysis.runtime_check import force_checks
from repro.mpi.comm import Comm, run_spmd

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
OVERHEAD_GATE = 0.05  # disabled-mode hook must stay within 5%

_NPROCS = 4


def _collective_dense(comm, n_iters):
    """Transport-bound loop: three collectives per iteration, tiny payloads,
    so per-collective fixed costs dominate the measurement."""
    acc = np.zeros(4)
    for _ in range(n_iters):
        comm.barrier()
        acc = acc + comm.allreduce(np.full(4, 1.0 + comm.rank))
        comm.allgather(comm.rank)
    return float(acc.sum())


def _one_sample(n_iters):
    t0 = time.perf_counter()
    run_spmd(_NPROCS, _collective_dense, n_iters, backend="thread",
             timeout=300)
    return time.perf_counter() - t0


def _time_run(n_iters, repeats):
    return min(_one_sample(n_iters) for _ in range(repeats))


def run(quick: bool) -> dict:
    n_iters = 150 if quick else 600
    samples = 6 if quick else 10
    n_collectives = 3 * n_iters * _NPROCS

    saved_verify = Comm._verify

    def _noop_verify(self, op, value, symmetric):
        return None

    # Warm both paths (imports, first-run allocation) before timing.
    with force_checks(False):
        _time_run(n_iters // 10 or 1, 1)

    # The two configurations differ by one predicate per collective — far
    # below scheduler noise on a single sample.  Samples alternate raw /
    # hooked so load transients hit both sides equally, and the gate
    # compares the best (least-perturbed) sample of each, with retry
    # rounds on top for busy hosts (CI neighbors, the rest of run_all).
    overhead = float("inf")
    t_raw = t_hooked = float("inf")
    for _ in range(3):  # timing-noise retries: gate on the best attempt
        for _ in range(samples):
            try:
                Comm._verify = _noop_verify
                t_raw = min(t_raw, _one_sample(n_iters))
            finally:
                Comm._verify = saved_verify
            with force_checks(False):
                t_hooked = min(t_hooked, _one_sample(n_iters))
        overhead = t_hooked / t_raw - 1.0
        if overhead < OVERHEAD_GATE:
            break

    with force_checks(True):
        t_enabled = _time_run(n_iters, 2 if quick else 3)

    out = {
        "nprocs": _NPROCS,
        "n_collectives": n_collectives,
        "raw_wall_s": round(t_raw, 5),
        "hooked_wall_s": round(t_hooked, 5),
        "enabled_wall_s": round(t_enabled, 5),
        "disabled_overhead_frac": round(overhead, 4),
        "enabled_overhead_frac": round(t_enabled / t_raw - 1.0, 4),
        "per_collective_enabled_us": round(
            (t_enabled - t_raw) / n_collectives * 1e6, 2
        ),
        "gate": OVERHEAD_GATE,
        "gate_passed": bool(overhead < OVERHEAD_GATE),
    }
    return out


def write_report(section: dict, quick: bool) -> None:
    from _report import format_table, report as text_report

    rows = [
        ("no hook (pre-PR 5)", f"{section['raw_wall_s'] * 1e3:.1f}", "baseline"),
        (
            "hook, checks disabled",
            f"{section['hooked_wall_s'] * 1e3:.1f}",
            f"{section['disabled_overhead_frac'] * 100:+.1f}%",
        ),
        (
            "hook, REPRO_SPMD_CHECK=1",
            f"{section['enabled_wall_s'] * 1e3:.1f}",
            f"{section['enabled_overhead_frac'] * 100:+.1f}%",
        ),
    ]
    body = (
        format_table(["configuration", "wall ms", "vs baseline"], rows)
        + f"\n\nworkload: {section['n_collectives']} collectives "
        + f"(barrier+allreduce+allgather) across {section['nprocs']} ranks, "
        + "thread backend"
        + "\nenabled mode adds one fingerprint rendezvous per collective: "
        + f"{section['per_collective_enabled_us']:.1f} us each (informational)"
        + f"\ngate: disabled-mode overhead "
        + f"{section['disabled_overhead_frac'] * 100:.1f}% < "
        + f"{section['gate'] * 100:.0f}% "
        + f"[{'PASS' if section['gate_passed'] else 'FAIL'}]"
    )
    text_report(
        "spmd_check_overhead",
        "runtime-checker hook cost on a collective-dense workload (PR 5)",
        body,
    )
    from _report import host_provenance

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_PR5.json"), "w") as fh:
        json.dump(
            {"meta": host_provenance(), "quick": quick,
             "spmd_check": section},
            fh, indent=2,
        )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="CI-sized workloads")
    args = ap.parse_args(argv)
    section = run(args.quick)
    write_report(section, args.quick)
    return 0 if section["gate_passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
