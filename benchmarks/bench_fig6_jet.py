"""E6 / Fig. 6 — primary jet atomization (scaled demonstration).

The paper's headline run resolves a 3D jet at octree level 15 (35 trillion
equivalent grid points).  The Python reproduction runs the same pipeline —
jet inflow, CHNS two-block stepping, identifier-driven AMR — on a scaled 2D
configuration, and reports the *equivalent uniform grid points* metric for
the adaptive mesh the run produces, plus interface statistics demonstrating
that the jet column develops and the framework keeps the interface resolved.
"""

import numpy as np
import pytest

from repro.amr.driver import RemeshConfig, uniform_equivalent_points
from repro.chns.initial_conditions import jet_column
from repro.chns.params import CHNSParams
from repro.chns.timestepper import CHNSTimeStepper, jet_inflow_bc
from repro.core.identifier import IdentifierConfig
from repro.mesh.mesh import mesh_from_field

from _report import format_table, report

CN = 0.03
MAX_LEVEL = 6


def jet_phi(x):
    return jet_column(x, half_width=0.1, length=0.35, Cn=CN, perturb_amp=0.15)


def build_stepper():
    mesh = mesh_from_field(jet_phi, 2, max_level=MAX_LEVEL, min_level=3,
                           threshold=0.95)
    prm = CHNSParams(
        Re=200.0, We=4.0, Pe=200.0, Cn=CN, rho_minus=0.2, eta_minus=0.2
    )
    ts = CHNSTimeStepper(
        mesh,
        prm,
        velocity_bc=lambda m: jet_inflow_bc(m, half_width=0.1, speed=1.0),
        remesh_config=RemeshConfig(
            coarse_level=3,
            interface_level=MAX_LEVEL,
            feature_level=MAX_LEVEL,
            identifier=IdentifierConfig(delta=-0.8, n_erode=3, n_extra_dilate=3),
        ),
        remesh_every=2,
    )
    ts.initialize(jet_phi)
    return ts


def test_jet_step(benchmark):
    ts = build_stepper()
    benchmark.pedantic(ts.step, args=(5e-4,), rounds=2, iterations=1)


def test_fig6_jet_atomization(benchmark):
    def run():
        ts = build_stepper()
        for _ in range(4):
            ts.step(5e-4)
        return ts

    ts = benchmark.pedantic(run, rounds=1)
    mesh = ts.mesh
    d = ts.diagnostics()
    # Interface band element count (|phi| < 0.95 at some corner).
    ev = mesh.elem_gather(ts.phi)
    interface = np.any(np.abs(ev) < 0.95, axis=1)
    equiv = uniform_equivalent_points(mesh)
    ratio = equiv / mesh.n_dofs

    rows = [
        ["finest octree level", 15, int(mesh.tree.levels.max())],
        ["coarsest octree level", 4, int(mesh.tree.levels.min())],
        ["equivalent uniform grid points", "3.5e13", f"{equiv:.3g}"],
        ["actual DOFs", "-", mesh.n_dofs],
        ["adaptivity compression factor", ">>1", round(ratio, 1)],
        ["interface elements", "-", int(interface.sum())],
        ["phase bounds after 4 steps", "[-1,1]+eps",
         f"[{d.phi_min:.2f}, {d.phi_max:.2f}]"],
        ["mass drift", "~0", f"{abs(d.mass):.4f} (see note)"],
        ["velocity max", "O(1)", round(float(np.abs(ts.vel).max()), 2)],
    ]
    report(
        "fig6",
        "Primary jet atomization (scaled 2D run; paper: 3D @ level 15)",
        format_table(["quantity", "paper", "measured"], rows)
        + "\n\nNote: with an inflow boundary, phase mass is injected by the "
        "jet; the bound check and stable stepping are the invariants.",
    )
    assert mesh.tree.levels.max() == MAX_LEVEL
    assert ratio > 2.0  # adaptivity pays off even at demo scale
    assert d.phi_min > -1.5 and d.phi_max < 1.5
    assert np.abs(ts.vel).max() < 10.0  # no blow-up
