"""E1 / Fig. 1 — identification of key regions (drop and filament).

Regenerates the paper's Fig. 1 pipeline on both the uniform-grid (image)
reference and the adaptive octree mesh: a small droplet and the thin tail of
a blob+filament are flagged for local-Cahn reduction, while bulk features
survive erosion and are not flagged.  The timed kernel is the full
LOCALCAHNIDENTIFIER (Algorithm 1) on an adaptive mesh.
"""

import numpy as np
import pytest

from repro.core import image
from repro.core.identifier import IdentifierConfig, identify_local_cahn
from repro.mesh.mesh import mesh_from_field

from _report import format_table, report


def drop_phi(x, center, radius, eps=0.01):
    d = np.linalg.norm(x - np.asarray(center), axis=-1) - radius
    return np.tanh(d / (np.sqrt(2) * eps))


def scene_phi(x):
    """Small drop + large drop + thin filament off the large drop."""
    small = drop_phi(x, (0.2, 0.2), 0.05, eps=0.008)
    big = drop_phi(x, (0.65, 0.65), 0.2, eps=0.008)
    y, xx = x[..., 1], x[..., 0]
    fil = np.tanh(
        np.maximum(np.abs(y - 0.65) - 0.02, (xx - 0.05) * (xx - 0.45)) / 0.008
    )
    return np.minimum(np.minimum(small, big), fil)


@pytest.fixture(scope="module")
def mesh():
    return mesh_from_field(scene_phi, 2, max_level=7, min_level=4, threshold=0.9)


def test_fig1_image_reference(benchmark):
    n = 257
    xs = np.linspace(0, 1, n)
    X, Y = np.meshgrid(xs, xs, indexing="ij")
    pts = np.stack([X, Y], axis=-1)
    phi = scene_phi(pts)

    roi = benchmark(
        image.identify_regions, phi, delta=-0.8, n_erode=12, n_extra_dilate=3
    )
    # Small drop flagged; big drop interior not.
    assert roi[int(0.2 * n), int(0.2 * n)] == 1
    assert roi[int(0.65 * n), int(0.65 * n)] == 0
    # Filament mid-body flagged.
    assert roi[int(0.25 * n), int(0.65 * n)] == 1


def test_fig1_octree_identifier(mesh, benchmark):
    phi = mesh.interpolate(scene_phi)
    cfg = IdentifierConfig(delta=-0.8, n_erode=5, n_extra_dilate=3)

    res = benchmark(identify_local_cahn, mesh, phi, cfg)

    centers = mesh.elem_centers()
    d_small = np.linalg.norm(centers - np.array([0.2, 0.2]), axis=1)
    d_big = np.linalg.norm(centers - np.array([0.65, 0.65]), axis=1)
    det = res.detected
    n_small = int((det & (d_small < 0.12)).sum())
    n_big_interior = int((det & (d_big < 0.1)).sum())
    rows = [
        ["small droplet flagged", "yes", "yes" if n_small > 0 else "NO"],
        ["large drop interior flagged", "no", "no" if n_big_interior == 0 else "YES"],
        ["detected elements", "-", int(det.sum())],
        ["mesh elements", "-", mesh.n_elems],
        ["erosion sweeps", "paper: series", cfg.n_erode],
        ["extra dilations", "3-4", cfg.n_extra_dilate],
    ]
    report(
        "fig1",
        "Identification of key regions (drop + filament), T/E/D/S pipeline",
        format_table(["quantity", "paper", "measured"], rows),
    )
    assert n_small > 0
    assert n_big_interior == 0
