"""E9 / Sec. II-C3c — NBX sparse exchange vs raw MPI_Alltoall.

The paper saw its nodal-enumeration return-address step scale fine to 28K
cores and then blow up 15x by 56K cores due to the dense Alltoall used for
receive counts; switching to Hoefler et al.'s NBX fixed it.  This benchmark
(1) measures both exchanges in the simulator — same delivered messages,
drastically different collective traffic — and (2) evaluates the congestion
model at the paper's core counts.
"""

import numpy as np
import pytest

from repro.mpi.comm import run_spmd
from repro.mpi.sparse_exchange import dense_exchange, nbx_exchange
from repro.mpi.stats import CommStats
from repro.perf.machine import MachineModel

from _report import format_table, report

NPROCS = 16
NEIGHBORS = 3  # sparse pattern: each rank talks to 3 others


def _pattern(comm):
    return {
        (comm.rank + d) % comm.size: np.arange(32, dtype=np.int64)
        for d in (1, 4, 7)
    }


def _run(exchange):
    stats = CommStats()

    def fn(comm):
        got = exchange(comm, _pattern(comm))
        comm.barrier()
        return len(got)

    counts = run_spmd(NPROCS, fn, stats=stats)
    return counts, stats.snapshot()


def test_nbx_exchange_kernel(benchmark):
    benchmark.pedantic(lambda: _run(nbx_exchange), rounds=3, iterations=1)


def test_dense_exchange_kernel(benchmark):
    benchmark.pedantic(lambda: _run(dense_exchange), rounds=3, iterations=1)


def test_nbx_vs_alltoall_report(benchmark):
    (counts_n, snap_n) = benchmark.pedantic(
        lambda: _run(nbx_exchange), rounds=1
    )
    counts_d, snap_d = _run(dense_exchange)
    assert counts_n == counts_d == [NEIGHBORS] * NPROCS

    sim = format_table(
        ["quantity", "dense Alltoall", "NBX"],
        [
            ["messages delivered/rank", NEIGHBORS, NEIGHBORS],
            ["collective bytes (total)", snap_d["collective_bytes"],
             snap_n["collective_bytes"]],
            ["collectives (total)", snap_d["collectives"], snap_n["collectives"]],
            ["p2p messages (total)", snap_d["messages"], snap_n["messages"]],
        ],
    )

    m = MachineModel()
    procs = [7168, 14336, 28672, 57344, 114688]
    rows = []
    for p in procs:
        dense = m.alltoall_dense_time(p)
        nbx = m.sparse_exchange_time(NEIGHBORS * 9, NEIGHBORS * 9 * 64)
        rows.append([p, round(dense, 4), round(nbx, 5), round(dense / nbx, 1)])
    model = format_table(
        ["procs", "dense Alltoall (s)", "NBX (s)", "ratio"], rows
    )
    blowup = m.alltoall_dense_time(57344) / m.alltoall_dense_time(28672)
    summary = format_table(
        ["quantity", "paper", "reproduced"],
        [
            ["Alltoall blowup 28K -> 56K cores", "15x", f"{blowup:.1f}x"],
            ["NBX cost grows with p", "no (Omega(p)-free)", "no"],
        ],
    )
    report(
        "nbx",
        "NBX sparse exchange vs raw Alltoall (Sec. II-C3c fixup)",
        "Simulator (16 ranks, 3 neighbors each):\n" + sim
        + "\n\nCongestion-model at paper scale:\n" + model
        + "\n\n" + summary,
    )
    # Dense pays Omega(p) collective volume even for a sparse pattern.
    assert snap_d["collective_bytes"] > 4 * snap_n["collective_bytes"]
    assert blowup > 4.0  # severe superlinear growth (paper: 15x)
