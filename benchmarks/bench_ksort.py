"""E10 / Sec. II-C3a-b — hierarchical k-way sort and memoized comm_split.

Regenerates the distributed-sort experiment: the flat sample sort keeps an
O(p) splitter table and a single monolithic exchange; the staged k-way sort
(HykSort-flavored) keeps O(k) splitters per stage, O(log_k p) stages, and
memoizes the stage communicators so repeated sorts never re-split (the
paper stores them in an MPI attribute cache).
"""

import numpy as np
import pytest

from repro.mpi.comm import run_spmd
from repro.mpi.hierarchical import kway_stage_comms
from repro.mpi.sort import is_globally_sorted, kway_sort, sample_sort
from repro.mpi.stats import CommStats
from repro.perf.machine import MachineModel

from _report import format_table, report

NPROCS = 8
N_KEYS = 20_000


def _sort_run(sorter, seed=0, **kw):
    rng = np.random.default_rng(seed)
    data = [
        rng.integers(0, 2**60, N_KEYS // NPROCS).astype(np.uint64)
        for _ in range(NPROCS)
    ]
    stats = CommStats()

    def fn(comm):
        out = sorter(comm, data[comm.rank], **kw)
        assert is_globally_sorted(comm, out)
        return len(out)

    run_spmd(NPROCS, fn, stats=stats)
    return stats.snapshot()


def test_sample_sort_kernel(benchmark):
    benchmark.pedantic(lambda: _sort_run(sample_sort), rounds=3, iterations=1)


def test_kway_sort_kernel(benchmark):
    benchmark.pedantic(lambda: _sort_run(kway_sort, k=2), rounds=3, iterations=1)


def test_memoized_split_kernel(benchmark):
    """Repeated k-way sorts on the same communicator: splits happen once."""

    def run():
        stats = CommStats()
        rng = np.random.default_rng(1)
        data = [rng.integers(0, 2**60, 500).astype(np.uint64) for _ in range(NPROCS)]

        def fn(comm):
            for _ in range(3):
                kway_sort(comm, data[comm.rank], k=2)
            return comm.stats.snapshot()["comm_splits"]

        return run_spmd(NPROCS, fn, stats=stats)

    splits = benchmark.pedantic(run, rounds=1)
    # 8 ranks, k=2: ladder depth 2 -> at most 2 splits per rank, not 6.
    assert max(splits) <= 2 * NPROCS  # world-total counter; not per sort


def test_ksort_report(benchmark):
    snap_flat = benchmark.pedantic(lambda: _sort_run(sample_sort), rounds=1)
    snap_kway = _sort_run(kway_sort, k=2)

    sim = format_table(
        ["counter (8 ranks, 20K keys)", "flat sample sort", "k-way staged"],
        [
            ["collectives", snap_flat["collectives"], snap_kway["collectives"]],
            ["collective bytes", snap_flat["collective_bytes"],
             snap_kway["collective_bytes"]],
            ["comm splits", snap_flat["comm_splits"], snap_kway["comm_splits"]],
        ],
    )

    m = MachineModel()
    rows = []
    for p in (1792, 14336, 114688, 2_000_000):
        stages = max(int(np.ceil(np.log(p) / np.log(128))), 1)
        rows.append(
            [p, stages, 128, p, round(m.kway_sort_time(1e9, p), 3)]
        )
    model = format_table(
        ["procs", "stages (k=128)", "splitters/stage (k-way)",
         "splitters (flat, O(p))", "k-way model time (s)"],
        rows,
    )
    report(
        "ksort",
        "Hierarchical k-way distributed sort (splitter storage O(k) vs O(p))",
        "Simulator counters:\n" + sim
        + "\n\nStage count at scale (paper: k=128 -> <=3 stages to 2M procs):\n"
        + model,
    )
    # The paper's claim: at k=128, at most three stages up to 2M processes.
    assert rows[-1][1] <= 3
