"""Unified benchmark runner: one command, machine-readable output.

Runs the SPMD-bound benchmarks (distributed MATVEC strong scaling, the
hierarchical k-way sort, NBX vs dense exchange) on every available execution
backend and writes a JSON report seeding the perf trajectory across PRs:

    PYTHONPATH=src python benchmarks/run_all.py --quick

Output (default ``benchmarks/results/BENCH_PR1.json``) records, per number,
the backend that produced it plus host metadata — benchmark honesty demands
the provenance ride with the measurement.  The ``--quick`` profile is sized
for CI (< ~2 min on one core); omit it for the full mesh/key counts.

The assembly-plan section (symbolic/numeric split vs per-call COO assembly,
``bench_assembly_plan.py``) runs as part of every invocation and is also
written standalone to ``benchmarks/results/BENCH_PR2.json``; the run fails
if the plan path is not >= 2x faster than the reference path on the quick
problem size.

The obs-phases section (``bench_obs_phases.py``) traces a distributed
MATVEC and a short CHNS run through ``repro.obs`` on every backend, prints
the per-phase timing table (ghost exchange, numeric assembly, Newton solve,
remesh), and fails the run if the backends disagree on the span-tree
signature or if disabled tracing costs more than 5% on the assembly hot
path.  It drops a Chrome trace of the CHNS run into
``benchmarks/results/obs_chns_trace.json``.

The precond section (``bench_precond.py``) reruns the quick
``rising_bubble_2d`` scenario with Jacobi vs PCD inner preconditioning and
fails the run unless PCD reduces NS+PP Krylov iterations per step at
matched tolerance (standalone report: ``results/BENCH_PR8.json``).

The kernels section (``bench_kernels.py``) times the JIT fused element
kernels against the NumPy fallback (full operator numeric update and
matrix-free MATVEC) and fails the run if the >= 5x / >= 3x speedup gates
miss on hosts where Numba is installed; without Numba the identical
fallback timings are recorded honestly and the gates are waived
(standalone report: ``results/BENCH_PR9.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

import bench_assembly_plan
import bench_kernels
import bench_obs_phases
import bench_precond
import bench_scenarios
import bench_spmd_check
from _report import host_provenance

from repro.fem.operators import stiffness_matrix
from repro.mesh.distributed import DistributedField
from repro.mesh.mesh import mesh_from_field
from repro.mpi.comm import run_spmd
from repro.mpi.sort import is_globally_sorted, kway_sort, sample_sort
from repro.mpi.sparse_exchange import dense_exchange, nbx_exchange
from repro.mpi.stats import CommStats
from repro.runtime import ProcessBackend, available_backends

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "results", "BENCH_PR1.json")


def usable_backends() -> list[str]:
    names = [n for n in ("thread", "process", "serial") if n in available_backends()]
    if not ProcessBackend.is_available() and "process" in names:
        names.remove("process")
    return names


def bench_matvec(backends: list[str], quick: bool) -> dict:
    """Distributed MATVEC strong scaling per backend (the Fig. 4a kernel)."""

    def phi(x):
        return np.linalg.norm(x - 0.5, axis=1) - 0.3

    max_level = 6 if quick else 7
    mesh = mesh_from_field(phi, 2, max_level=max_level, min_level=4, threshold=0.03)
    Ke = stiffness_matrix(mesh.elem_h(), mesh.dim)
    u = np.ones(mesh.n_nodes)
    n_iters = 2 if quick else 3

    def fn(comm):
        df = DistributedField(comm, mesh)
        owned = df.from_global(u)
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(n_iters):
            owned = df.matvec(Ke[df.elem_lo : df.elem_hi], owned)
            owned /= max(np.abs(owned).max(), 1e-30)
        comm.barrier()
        return (time.perf_counter() - t0) / n_iters

    out: dict = {"n_elems": int(mesh.n_elems), "ranks": {}, "n_iters": n_iters}
    for p in (1, 2, 4, 8):
        out["ranks"][p] = {}
        for bk in backends:
            stats = CommStats()
            t0 = time.perf_counter()
            times = run_spmd(p, fn, stats=stats, backend=bk, timeout=300)
            wall = time.perf_counter() - t0
            out["ranks"][p][bk] = {
                "max_rank_time_s": round(max(times), 5),
                "wall_s": round(wall, 5),
                "bytes_sent": stats.snapshot()["bytes_sent"],
                "messages": stats.snapshot()["messages"],
            }
    if "thread" in backends and "process" in backends:
        # Speedup is measured on the compute-dense matrix-free kernel
        # (per-element on-the-fly assembly) at 8 ranks — the same workload
        # gated in bench_fig4a_matvec_strong.py.  The batched-GEMM numbers
        # above spend microseconds of compute per rank, so their
        # thread/process ratio measures transport latency, not scalability.
        mf_mesh = mesh_from_field(
            phi, 2, max_level=9, min_level=4, threshold=0.03
        )
        mf_u = np.ones(mf_mesh.n_nodes)
        mf_iters = 2 if quick else 6

        def fn_mf(comm):
            df = DistributedField(comm, mf_mesh)
            owned = df.from_global(mf_u)
            comm.barrier()
            for _ in range(mf_iters):
                owned = df.matvec_matrix_free(owned)
                owned /= max(np.abs(owned).max(), 1e-30)
            comm.barrier()

        walls = {}
        for bk in ("thread", "process"):
            t0 = time.perf_counter()
            run_spmd(8, fn_mf, backend=bk, timeout=600)
            walls[bk] = time.perf_counter() - t0
        out["matrix_free_8ranks"] = {
            "n_elems": int(mf_mesh.n_elems),
            "n_iters": mf_iters,
            "thread_wall_s": round(walls["thread"], 5),
            "process_wall_s": round(walls["process"], 5),
        }
        out["thread_vs_process_speedup_8ranks"] = round(
            walls["thread"] / walls["process"], 3
        )
    return out


def bench_ksort(backends: list[str], quick: bool) -> dict:
    """Hierarchical k-way sort + flat sample sort; serial determinism check."""
    nprocs = 8
    n_keys = 8_000 if quick else 20_000
    rng = np.random.default_rng(0)
    data = [
        rng.integers(0, 2**60, n_keys // nprocs).astype(np.uint64)
        for _ in range(nprocs)
    ]

    def run(sorter, bk, **kw):
        stats = CommStats()

        def fn(comm):
            out = sorter(comm, data[comm.rank], **kw)
            assert is_globally_sorted(comm, out)
            return out

        t0 = time.perf_counter()
        res = run_spmd(nprocs, fn, stats=stats, backend=bk, timeout=300)
        wall = time.perf_counter() - t0
        digest = int(np.bitwise_xor.reduce(np.concatenate(res) * 0x9E3779B97F4A7C15))
        return wall, stats.snapshot(), digest

    out: dict = {"n_keys": n_keys, "backends": {}}
    for bk in backends:
        w_flat, s_flat, d_flat = run(sample_sort, bk)
        w_kway, s_kway, d_kway = run(kway_sort, bk, k=2)
        out["backends"][bk] = {
            "sample_sort_wall_s": round(w_flat, 5),
            "kway_sort_wall_s": round(w_kway, 5),
            "kway_comm_splits": s_kway["comm_splits"],
            "digest_sample": d_flat,
            "digest_kway": d_kway,
        }
    if "serial" in backends:
        # Acceptance check: two consecutive serial runs are bit-identical.
        again = {
            "digest_sample": run(sample_sort, "serial")[2],
            "digest_kway": run(kway_sort, "serial", k=2)[2],
        }
        ser = out["backends"]["serial"]
        out["serial_deterministic"] = (
            again["digest_sample"] == ser["digest_sample"]
            and again["digest_kway"] == ser["digest_kway"]
        )
    return out


def bench_nbx(backends: list[str], quick: bool) -> dict:
    """NBX vs dense exchange timing/counters per backend."""
    nprocs = 8
    payload = 500 if quick else 4000
    rng = np.random.default_rng(1)
    outgoing = [
        {
            int(d): rng.standard_normal(payload)
            for d in rng.choice(nprocs, size=2, replace=False)
        }
        for _ in range(nprocs)
    ]

    def run(exchange, bk):
        stats = CommStats()

        def fn(comm):
            got = exchange(comm, outgoing[comm.rank])
            comm.barrier()
            return sorted(got)

        t0 = time.perf_counter()
        run_spmd(nprocs, fn, stats=stats, backend=bk, timeout=300)
        return time.perf_counter() - t0, stats.snapshot()

    out: dict = {"payload_doubles": payload, "backends": {}}
    for bk in backends:
        w_nbx, s_nbx = run(nbx_exchange, bk)
        w_dense, s_dense = run(dense_exchange, bk)
        out["backends"][bk] = {
            "nbx_wall_s": round(w_nbx, 5),
            "dense_wall_s": round(w_dense, 5),
            "nbx_collectives": s_nbx["collectives"],
            "dense_collectives": s_dense["collectives"],
        }
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="CI-sized workloads")
    ap.add_argument("--output", default=DEFAULT_OUT)
    ap.add_argument(
        "--backends",
        default=",".join(usable_backends()),
        help="comma-separated subset of: " + ",".join(usable_backends()),
    )
    args = ap.parse_args(argv)
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]

    report = {
        "meta": {
            **host_provenance(),
            "quick": args.quick,
            "backends": backends,
            "note": (
                "every number is tagged with the SPMD backend that produced "
                "it; thread/process wall-clock comparisons are only "
                "meaningful when single_core_host is false"
            ),
        }
    }
    t0 = time.perf_counter()
    print(f"run_all: backends={backends} quick={args.quick}")
    report["matvec_strong"] = bench_matvec(backends, args.quick)
    print("  matvec done")
    report["ksort"] = bench_ksort(backends, args.quick)
    print("  ksort done")
    report["nbx"] = bench_nbx(backends, args.quick)
    print("  nbx done")
    report["assembly_plan"] = bench_assembly_plan.run(args.quick)
    bench_assembly_plan.write_report(report["assembly_plan"], args.quick)
    print("  assembly_plan done")
    report["obs_phases"] = bench_obs_phases.run(args.quick, backends)
    bench_obs_phases.write_report(report["obs_phases"], args.quick)
    print("  obs_phases done")
    report["spmd_check"] = bench_spmd_check.run(args.quick)
    bench_spmd_check.write_report(report["spmd_check"], args.quick)
    print("  spmd_check done")
    report["scenario_batch"] = bench_scenarios.run(args.quick)
    bench_scenarios.write_report(report["scenario_batch"], args.quick)
    print("  scenario_batch done")
    report["precond"] = bench_precond.run(args.quick)
    bench_precond.write_report(report["precond"], args.quick)
    print("  precond done")
    report["kernels"] = bench_kernels.run(args.quick)
    bench_kernels.write_report(report["kernels"], args.quick)
    print("  kernels done")
    report["meta"]["total_wall_s"] = round(time.perf_counter() - t0, 2)

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.output} ({report['meta']['total_wall_s']}s)")

    if "thread_vs_process_speedup_8ranks" in report["matvec_strong"]:
        sp = report["matvec_strong"]["thread_vs_process_speedup_8ranks"]
        print(f"thread->process speedup @8 ranks: {sp}x on {os.cpu_count()} cores")
    if report["ksort"].get("serial_deterministic") is False:
        print("ERROR: serial backend non-deterministic", file=sys.stderr)
        return 1
    ap_sec = report["assembly_plan"]
    if not ap_sec["gate_passed"]:
        print(
            f"ERROR: assembly-plan speedup {ap_sec['gate_speedup']}x below "
            f"the {ap_sec['speedup_gate']}x gate on {ap_sec['gate_mesh']}",
            file=sys.stderr,
        )
        return 1
    print(
        f"assembly plan: {ap_sec['gate_speedup']}x vs per-call COO on "
        f"{ap_sec['gate_mesh']}"
    )
    ob_sec = report["obs_phases"]
    if not ob_sec["gate_passed"]:
        print(
            "ERROR: obs gates failed — span trees identical: "
            f"matvec={ob_sec['signature_identical_matvec']} "
            f"chns={ob_sec['signature_identical_chns']}, disabled overhead "
            f"{ob_sec['overhead']['overhead_frac']:.1%} "
            f"(gate {ob_sec['overhead']['gate']:.0%})",
            file=sys.stderr,
        )
        return 1
    print(
        "obs phases (mean ms): "
        + "  ".join(
            f"{k.removesuffix('_s')}={v * 1e3:.2f}"
            for k, v in ob_sec["phases"].items()
        )
    )
    sc_sec = report["spmd_check"]
    if not sc_sec["gate_passed"]:
        print(
            "ERROR: spmd-check hook overhead "
            f"{sc_sec['disabled_overhead_frac']:.1%} exceeds the "
            f"{sc_sec['gate']:.0%} gate with checks disabled",
            file=sys.stderr,
        )
        return 1
    print(
        f"spmd check hook: {sc_sec['disabled_overhead_frac']:+.1%} disabled, "
        f"{sc_sec['enabled_overhead_frac']:+.1%} enabled "
        f"({sc_sec['per_collective_enabled_us']}us/collective)"
    )
    sb_sec = report["scenario_batch"]
    if not sb_sec["gate_passed"]:
        print(
            "ERROR: scenario batch lost/failed jobs: "
            + json.dumps({c: r["statuses"] for c, r in sb_sec["runs"].items()}),
            file=sys.stderr,
        )
        return 1
    print(
        f"scenario batch: {sb_sec['n_jobs']} jobs, "
        f"{sb_sec['runs']['1']['jobs_per_min']} jobs/min @c1, "
        f"{sb_sec['runs']['4']['jobs_per_min']} @c4 "
        f"({sb_sec['speedup_c4_vs_c1']}x on {os.cpu_count()} cores)"
    )
    pc_sec = report["precond"]
    if not pc_sec["gate_passed"]:
        print(
            "ERROR: PCD did not reduce NS+PP Krylov iterations/step vs "
            f"Jacobi on {pc_sec['scenario']} "
            f"(jacobi={pc_sec['runs']['jacobi']['nspp_per_step']}, "
            f"pcd={pc_sec['runs']['pcd']['nspp_per_step']})",
            file=sys.stderr,
        )
        return 1
    print(
        f"precond: PCD {pc_sec['iteration_reduction']}x fewer NS+PP "
        f"iterations/step vs Jacobi on {pc_sec['scenario']}"
    )
    kn_sec = report["kernels"]
    if not kn_sec["gate_passed"]:
        print(
            f"ERROR: kernel speedups update {kn_sec['update_speedup']}x / "
            f"matvec {kn_sec['matvec_speedup']}x below the "
            f"{kn_sec['update_gate']}x/{kn_sec['matvec_gate']}x gates on "
            f"{kn_sec['gate_mesh']}",
            file=sys.stderr,
        )
        return 1
    print(
        f"kernels: update {kn_sec['update_speedup']}x, matvec "
        f"{kn_sec['matvec_speedup']}x vs NumPy fallback "
        + (
            "(gates enforced)"
            if kn_sec["gate_enforced"]
            else "(Numba unavailable; gates waived, fallback recorded)"
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
