"""Ablation A2 — GMG vs Jacobi-CG for the variable-density pressure Poisson.

The paper identifies the variable-coefficient PP-solve as the dominant cost
and defers GMG to future work after finding AMG setup too expensive at scale
(Sec. III, footnote 5).  This ablation quantifies the opportunity on the
exact operator class — a 1/rho-coefficient Poisson problem with a 100:1
density contrast across a drop interface — comparing Jacobi-preconditioned
CG (the paper's production choice), GMG-preconditioned CG, and the V-cycle
as a standalone solver.
"""

import time

import numpy as np
import pytest

from repro.fem.assembly import apply_dirichlet, assemble_matrix, assemble_vector
from repro.fem.basis import quad_point_coords
from repro.fem.operators import load_vector, stiffness_matrix
from repro.la.gmg import GeometricMultigrid
from repro.la.krylov import cg
from repro.la.precond import JacobiPreconditioner
from repro.mesh.mesh import Mesh
from repro.octree import morton
from repro.octree.build import uniform_tree

from _report import format_table, report


def pp_system(level, contrast=100.0):
    """Variable-density pressure Poisson: div( (1/rho) grad p ) = f."""
    m = Mesh.from_tree(uniform_tree(2, level))
    h = m.elem_h()
    scale = float(1 << morton.MAX_DEPTH)
    qp = quad_point_coords(m.tree.anchors / scale, h, 2).reshape(-1, 2)
    rho = np.where(np.linalg.norm(qp - 0.5, axis=-1) < 0.25, contrast, 1.0)
    inv_rho = (1.0 / rho).reshape(m.n_elems, -1)
    A = assemble_matrix(m, stiffness_matrix(h, 2, inv_rho))
    b = assemble_vector(m, load_vector(h, 2, 1.0))
    mask = m.boundary_dof_mask()
    return (m,) + apply_dirichlet(A, b, mask, np.zeros(m.n_dofs))


@pytest.fixture(scope="module")
def system():
    return pp_system(6)


def test_jacobi_cg_kernel(system, benchmark):
    m, A, b = system
    benchmark.pedantic(
        lambda: cg(A, b, M=JacobiPreconditioner(A), tol=1e-9, maxiter=6000),
        rounds=3,
    )


def test_gmg_cg_kernel(system, benchmark):
    m, A, b = system
    gmg = GeometricMultigrid(m, A, coarsest_level=2)
    benchmark.pedantic(lambda: cg(A, b, M=gmg, tol=1e-9, maxiter=200), rounds=3)


def test_ablation_gmg_report(benchmark):
    rows = []
    for level in (4, 5, 6):
        m, A, b = pp_system(level)
        t0 = time.perf_counter()
        plain = cg(A, b, M=JacobiPreconditioner(A), tol=1e-9, maxiter=8000)
        t_plain = time.perf_counter() - t0
        t0 = time.perf_counter()
        gmg = GeometricMultigrid(m, A, coarsest_level=2)
        t_setup = time.perf_counter() - t0
        t0 = time.perf_counter()
        pre = cg(A, b, M=gmg, tol=1e-9, maxiter=400)
        t_gmg = time.perf_counter() - t0
        assert plain.converged and pre.converged
        assert np.allclose(pre.x, plain.x, atol=1e-5)
        rows.append(
            [m.n_dofs, plain.iterations, pre.iterations,
             round(t_plain * 1e3, 1), round((t_setup + t_gmg) * 1e3, 1),
             round(plain.iterations / pre.iterations, 1)]
        )
    benchmark.pedantic(lambda: pp_system(4), rounds=1)
    table = format_table(
        ["DOFs", "Jacobi-CG iters", "GMG-CG iters", "Jacobi-CG ms",
         "GMG total ms (incl. setup)", "iteration ratio"],
        rows,
    )
    report(
        "ablation_gmg",
        "GMG vs Jacobi-CG on the variable-density pressure Poisson "
        "(100:1 contrast)",
        table
        + "\n\nJacobi-CG iterations grow with refinement; GMG-CG stays "
        "nearly mesh-independent — the speedup the paper anticipates for "
        "its dominant PP-solve (it used Jacobi-type iterative solvers in "
        "production after rejecting AMG setup costs).",
    )
    # Mesh-independence of GMG vs growth of Jacobi-CG.
    gmg_iters = [r[2] for r in rows]
    jac_iters = [r[1] for r in rows]
    assert max(gmg_iters) - min(gmg_iters) <= 4
    assert jac_iters[-1] > 1.5 * jac_iters[0]
    assert rows[-1][5] >= 5.0
