"""Per-phase timing breakdown from the repro.obs tracing subsystem.

Two traced workloads run on every usable SPMD backend:

* a distributed MATVEC (the ghost-exchange hot path), and
* a short CHNS run with a remesh (assembly, Newton/Krylov, remesh phases),

and the per-rank traces are reduced into world reports.  The table this
emits is the observability analogue of the paper's Fig. 5 cost breakdown:
mean seconds per phase — ghost exchange, numeric assembly, Newton solve,
remesh — plus the per-solver-block profile that feeds the Fig. 5
application model (``repro.perf.model.phase_profile`` /
``iter_profile_from_obs``).

Two gates (run_all.py fails if either does):

* **determinism** — every backend must produce the identical span-tree
  signature (same spans, same per-rank call counts, same counters; wall
  times excluded) for the same program;
* **overhead** — with tracing disabled, the instrumented assembly-plan
  numeric update must be within 5% of an uninstrumented replica.

Artifacts (``benchmarks/results/``): ``obs_phases.txt`` (table, collated
into EXPERIMENTS.md), ``obs_phases.json`` (per-phase numbers + gate
verdicts), ``obs_chns_trace.json`` (Chrome trace — load in
``chrome://tracing`` / Perfetto; one row per rank).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import obs
from repro.amr.driver import RemeshConfig
from repro.chns.initial_conditions import drop
from repro.chns.params import CHNSParams
from repro.chns.timestepper import CHNSTimeStepper, no_slip_bc
from repro.fem.operators import mass_matrix, stiffness_matrix
from repro.mesh.distributed import DistributedField
from repro.mesh.mesh import Mesh, mesh_from_field
from repro.mpi.comm import run_spmd
from repro.octree.build import uniform_tree
from repro.perf.model import iter_profile_from_obs, phase_profile
from repro.runtime import ProcessBackend, available_backends

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
OVERHEAD_GATE = 0.05  # disabled tracing must stay within 5%

PRM = CHNSParams(Re=10.0, We=1.0, Pe=100.0, Cn=0.1)


def usable_backends() -> list[str]:
    names = [n for n in ("thread", "process", "serial") if n in available_backends()]
    if not ProcessBackend.is_available() and "process" in names:
        names.remove("process")
    return names


# ------------------------------------------------------------- workloads
#
# Rank functions live at module level so the fork-based process backend can
# ship them; the meshes are built once and inherited copy-on-write.


def _phi0(x):
    return drop(x, (0.5, 0.5), 0.25, PRM.Cn)


def _matvec_rank(comm, mesh, Ke, u, n_iters):
    df = DistributedField(comm, mesh)
    owned = df.from_global(u)
    for _ in range(n_iters):
        owned = df.matvec(Ke[df.elem_lo : df.elem_hi], owned)
        owned /= max(np.abs(owned).max(), 1e-30)
    return float(owned.sum())


def _chns_rank(comm, max_level, n_steps):
    mesh = mesh_from_field(_phi0, 2, max_level=max_level, min_level=2,
                           threshold=0.95)
    ts = CHNSTimeStepper(
        mesh,
        PRM,
        velocity_bc=no_slip_bc,
        remesh_config=RemeshConfig(
            coarse_level=2, interface_level=max_level,
            feature_level=max_level,
        ),
        remesh_every=1,
    )
    ts.initialize(_phi0)
    for _ in range(n_steps):
        ts.step(1e-3)
    return float(ts.phi.sum())


def _traced(nprocs, fn, *args, backends, events=False):
    """Run one SPMD program traced on each backend -> {name: WorldReport},
    plus the raw per-rank snapshots of the first backend (Chrome export)."""
    reports, snaps = {}, None
    for name in backends:
        with obs.tracing(events=events):
            run_spmd(nprocs, fn, *args, timeout=600, backend=name)
            reports[name] = obs.last_spmd_report()
            if snaps is None:
                snaps = obs.last_spmd_traces()
    return reports, snaps


def _agg(report, leaf: str) -> float:
    """Mean inclusive seconds summed over every span path with this leaf
    name (ghost.read appears under matvec and under plan-build paths)."""
    return sum(s.inclusive_mean for s in report.spans.values() if s.name == leaf)


def _signatures_match(reports: dict) -> bool:
    sigs = [r.span_tree_signature() for r in reports.values()]
    return all(s == sigs[0] for s in sigs[1:])


def measure_disabled_overhead() -> dict:
    """Instrumented assembly-plan numeric update vs an inline replica with
    no span entry, tracing disabled (same methodology as the tier-1 test,
    tests/obs/test_tracer.py::TestOverhead)."""
    import scipy.sparse as sp

    from repro.fem.plan import AssemblyPlan

    assert not obs.is_enabled()
    mesh = Mesh.from_tree(uniform_tree(2, 5))  # 32x32
    plan = AssemblyPlan(mesh)
    rng = np.random.default_rng(0)
    Ke = rng.standard_normal(plan.ke_shape)

    def raw():
        vals = Ke.ravel()[plan._src] * plan._weight
        data = np.bincount(plan._slot, weights=vals, minlength=plan.nnz)
        A = sp.csr_matrix((plan.n_dofs, plan.n_dofs), dtype=np.float64)
        A.data = data
        A.indices = plan.indices
        A.indptr = plan.indptr
        return A

    def instrumented():
        plan.assemble(Ke)

    def best_of(f, repeats=7, inner=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(inner):
                f()
            best = min(best, (time.perf_counter() - t0) / inner)
        return best

    raw()
    instrumented()
    overhead = float("inf")
    for _ in range(3):  # timing-noise retries: gate on the best attempt
        t_raw = best_of(raw)
        t_inst = best_of(instrumented)
        overhead = min(overhead, t_inst / t_raw - 1.0)
        if overhead < OVERHEAD_GATE:
            break
    return {
        "raw_us": round(t_raw * 1e6, 2),
        "instrumented_us": round(t_inst * 1e6, 2),
        "overhead_frac": round(overhead, 4),
        "gate": OVERHEAD_GATE,
        "gate_passed": bool(overhead < OVERHEAD_GATE),
    }


def run(quick: bool, backends: list[str] | None = None) -> dict:
    backends = backends or usable_backends()

    # Workload A: distributed MATVEC — the ghost-exchange phases.
    mesh = Mesh.from_tree(uniform_tree(2, 4 if quick else 5))
    Ke = stiffness_matrix(mesh.elem_h(), 2) + mass_matrix(mesh.elem_h(), 2)
    u = np.random.default_rng(7).standard_normal(mesh.n_dofs)
    n_iters = 3 if quick else 10
    mv_reports, _ = _traced(
        4, _matvec_rank, mesh, Ke, u, n_iters, backends=backends
    )

    # Workload B: CHNS steps + remesh — assembly/Newton/remesh phases.
    # events=True so the first backend's trace exports to chrome://tracing.
    max_level, n_steps = (4, 2) if quick else (5, 3)
    ch_reports, ch_snaps = _traced(
        2, _chns_rank, max_level, n_steps, backends=backends, events=True
    )

    ref_mv = mv_reports[backends[0]]
    ref_ch = ch_reports[backends[0]]
    phases = {
        "ghost_exchange_s": _agg(ref_mv, "ghost.read")
        + _agg(ref_mv, "ghost.write"),
        "numeric_assembly_s": _agg(ref_ch, "assembly.numeric"),
        "newton_solve_s": _agg(ref_ch, "newton"),
        "remesh_s": _agg(ref_ch, "remesh"),
    }
    out = {
        "backends": backends,
        "phases": {k: round(v, 5) for k, v in phases.items()},
        "chns_per_step_profile_s": {
            k: round(v, 5) for k, v in phase_profile(ref_ch).items()
        },
        "iter_profile": {
            k: round(v, 2) for k, v in iter_profile_from_obs(ref_ch).items()
        },
        "counters": {
            "ghost.reads": ref_mv.counter_total("ghost.reads"),
            "ghost.writes": ref_mv.counter_total("ghost.writes"),
            "assembly.numeric": ref_ch.counter_total("assembly.numeric"),
            "newton.iterations": ref_ch.counter_total("newton.iterations"),
            "krylov.iterations": ref_ch.counter_total("krylov.iterations"),
        },
        "signature_identical_matvec": _signatures_match(mv_reports),
        "signature_identical_chns": _signatures_match(ch_reports),
        "overhead": measure_disabled_overhead(),
    }
    out["gate_passed"] = bool(
        out["signature_identical_matvec"]
        and out["signature_identical_chns"]
        and out["overhead"]["gate_passed"]
    )

    # Artifacts: per-phase JSON + full world report + Chrome trace.
    from _report import host_provenance

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "obs_phases.json"), "w") as fh:
        json.dump(
            {"meta": host_provenance(), **out,
             "chns_world_report": ref_ch.to_dict()},
            fh, indent=2,
        )
    obs.to_chrome_trace(
        ch_snaps, os.path.join(RESULTS_DIR, "obs_chns_trace.json")
    )
    return out


def write_report(section: dict, quick: bool) -> None:
    from _report import format_table, report as text_report

    rows = [
        ("ghost exchange", f"{section['phases']['ghost_exchange_s'] * 1e3:.2f}",
         f"{section['counters']['ghost.reads']} reads"),
        ("numeric assembly", f"{section['phases']['numeric_assembly_s'] * 1e3:.2f}",
         f"{section['counters']['assembly.numeric']} updates"),
        ("Newton solve", f"{section['phases']['newton_solve_s'] * 1e3:.2f}",
         f"{section['counters']['newton.iterations']} iters"),
        ("remesh", f"{section['phases']['remesh_s'] * 1e3:.2f}", ""),
    ]
    prof = section["chns_per_step_profile_s"]
    prof_rows = [(b, f"{prof[b] * 1e3:.2f}") for b in ("ch", "ns", "pp", "vu", "remesh")]
    body = (
        format_table(["phase", "mean ms", "counters"], rows)
        + "\n\nCHNS per-step solver profile (feeds the Fig. 5 model via "
        + "repro.perf.model.phase_profile):\n\n"
        + format_table(["block", "ms/step"], prof_rows)
        + "\n\nmeasured Krylov/Newton iteration profile: "
        + json.dumps(section["iter_profile"])
        + "\ngates: identical span trees across "
        + ",".join(section["backends"])
        + f" [{'PASS' if section['signature_identical_chns'] and section['signature_identical_matvec'] else 'FAIL'}]"
        + f"; disabled overhead {section['overhead']['overhead_frac'] * 100:.1f}%"
        + f" < {section['overhead']['gate'] * 100:.0f}%"
        + f" [{'PASS' if section['overhead']['gate_passed'] else 'FAIL'}]"
        + "\nChrome trace: benchmarks/results/obs_chns_trace.json "
        + "(chrome://tracing or Perfetto; one row per rank)"
    )
    text_report(
        "obs_phases",
        "per-phase timings from the repro.obs tracing subsystem (PR 3)",
        body,
    )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="CI-sized workloads")
    args = ap.parse_args(argv)
    section = run(args.quick)
    write_report(section, args.quick)
    return 0 if section["gate_passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
