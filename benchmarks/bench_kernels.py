"""JIT-compiled fused element kernels vs the interpreted plan path (PR 9).

Two measurements feed ``BENCH_PR9.json``:

* ``fused_update``: one full operator numeric update (elemental batch +
  plan CSR scatter) through :mod:`repro.fem.kernels` with the JIT path on,
  against the identical call under ``kernels.fallback_only()`` (the seed
  einsum + bincount path).  The CI gate **fails if the JIT path is not
  >= 5x faster** on the 64x64 mesh — but only on hosts where Numba is
  installed: without it both timings are the same fallback code, the run
  is recorded honestly (``jit_available: false``) and the gate is waived.
* ``matvec``: :meth:`repro.fem.matvec.MatrixFreeOperator.matvec` (fused
  gather/GEMV/scatter kernel) vs the same call under ``fallback_only``;
  gate >= 3x, same availability rule.

Every report embeds :func:`repro.fem.kernels.provenance` (Numba presence
and version, selection counters) so a number can never silently come from
the wrong path.

Run standalone (exits non-zero if an enforced gate fails)::

    PYTHONPATH=src python benchmarks/bench_kernels.py --quick

or as part of ``benchmarks/run_all.py --quick``, which embeds the same
numbers in its report and writes this file's ``BENCH_PR9.json`` too.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.fem import kernels
from repro.fem.matvec import MatrixFreeOperator
from repro.fem.operators import mass_matrix, stiffness_matrix
from repro.fem.plan import get_plan
from repro.mesh.mesh import Mesh, mesh_from_field
from repro.octree.build import uniform_tree

DEFAULT_OUT = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_PR9.json"
)
UPDATE_GATE = 5.0
MATVEC_GATE = 3.0


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _meshes(quick: bool) -> dict:
    def interface(x):
        return np.linalg.norm(x - 0.5, axis=1) - 0.3

    meshes = {"uniform_64x64": Mesh.from_tree(uniform_tree(2, 6))}
    if not quick:
        meshes["adaptive_2d"] = mesh_from_field(
            interface, 2, max_level=8, min_level=5, threshold=0.03
        )
        meshes["adaptive_3d"] = mesh_from_field(
            interface, 3, max_level=4, min_level=2, threshold=0.1
        )
    return meshes


def bench_fused_update(quick: bool) -> dict:
    """Full convection numeric update (corner-fused Ke + CSR scatter):
    JIT kernels vs the seed einsum + bincount path."""
    repeats = 20 if quick else 40
    out: dict = {}
    for name, mesh in _meshes(quick).items():
        plan = get_plan(mesh)
        rng = np.random.default_rng(0)
        vel = rng.standard_normal((mesh.n_dofs, mesh.dim))
        vel_c = mesh.elem_gather(vel)
        h = mesh.elem_h()

        def update():
            return plan.assemble(
                kernels.convection_ke_corners(h, mesh.dim, vel_c)
            )

        def fallback_update():
            with kernels.fallback_only():
                return update()

        update()  # warm (compiles on Numba hosts; no-op otherwise)
        t_jit = _best_of(update, repeats)
        t_fb = _best_of(fallback_update, repeats)
        err = float(np.abs(update() - fallback_update()).max())
        out[name] = {
            "n_elems": int(mesh.n_elems),
            "n_dofs": int(mesh.n_dofs),
            "hanging_nodes": int(mesh.nodes.is_hanging.sum()),
            "fallback_ms": round(t_fb * 1e3, 4),
            "jit_ms": round(t_jit * 1e3, 4),
            "speedup": round(t_fb / t_jit, 2),
            "max_abs_diff_jit_vs_fallback": err,
        }
    return out


def bench_matvec(quick: bool) -> dict:
    """Matrix-free MATVEC: fused JIT gather/GEMV/scatter vs einsum+add.at."""
    repeats = 30 if quick else 60
    out: dict = {}
    for name, mesh in _meshes(quick).items():
        rng = np.random.default_rng(1)
        Ke = stiffness_matrix(mesh.elem_h(), mesh.dim) + mass_matrix(
            mesh.elem_h(), mesh.dim
        )
        op = MatrixFreeOperator(mesh, Ke)
        u = rng.standard_normal(mesh.n_dofs)

        def mv():
            return op.matvec(u)

        def fallback_mv():
            with kernels.fallback_only():
                return op.matvec(u)

        mv()  # warm
        t_jit = _best_of(mv, repeats)
        t_fb = _best_of(fallback_mv, repeats)
        err = float(np.abs(mv() - fallback_mv()).max())
        out[name] = {
            "n_elems": int(mesh.n_elems),
            "n_dofs": int(mesh.n_dofs),
            "fallback_ms": round(t_fb * 1e3, 4),
            "jit_ms": round(t_jit * 1e3, 4),
            "speedup": round(t_fb / t_jit, 2),
            "max_abs_diff_jit_vs_fallback": err,
        }
    return out


def run(quick: bool) -> dict:
    """All sections + the gate verdict (used by run_all.py).

    The >=5x/>=3x gates are *enforced* only where the JIT path is live
    (Numba installed, REPRO_JIT not 0).  On fallback-only hosts the same
    numbers are recorded with ``gate_enforced: false`` — an honest ~1.0x,
    never a fake pass.
    """
    kernels.reset_stats()
    out = {
        "fused_update": bench_fused_update(quick),
        "matvec": bench_matvec(quick),
        "update_gate": UPDATE_GATE,
        "matvec_gate": MATVEC_GATE,
        "gate_mesh": "uniform_64x64",
        "provenance": kernels.provenance(),
    }
    jit_live = bool(out["provenance"]["have_numba"]) and bool(
        out["provenance"]["jit_enabled"]
    )
    out["jit_available"] = jit_live
    out["gate_enforced"] = jit_live
    out["update_speedup"] = out["fused_update"]["uniform_64x64"]["speedup"]
    out["matvec_speedup"] = out["matvec"]["uniform_64x64"]["speedup"]
    out["gate_passed"] = (not jit_live) or (
        out["update_speedup"] >= UPDATE_GATE
        and out["matvec_speedup"] >= MATVEC_GATE
    )
    return out


def write_report(section: dict, quick: bool, output: str = DEFAULT_OUT) -> None:
    """Wrap a ``run()`` section in the PR 1 provenance headers and write it."""
    from _report import host_provenance

    report = {
        "meta": {
            **host_provenance(),
            "quick": quick,
            "note": (
                "JIT fused element kernels vs the interpreted plan path; "
                "single-process timings.  jit_available records whether "
                "Numba was importable — without it both columns run the "
                "same NumPy fallback and the speedup gates are waived "
                "(enforced in CI where Numba is installed)."
            ),
        },
        "kernels": section,
    }
    os.makedirs(os.path.dirname(output), exist_ok=True)
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {output}")

    from _report import format_table, report as text_report

    prov = section["provenance"]
    rows = [
        (
            "update:" + name,
            row["n_elems"],
            row.get("hanging_nodes", 0),
            row["fallback_ms"],
            row["jit_ms"],
            f"{row['speedup']}x",
        )
        for name, row in section["fused_update"].items()
    ] + [
        (
            "matvec:" + name,
            row["n_elems"],
            "-",
            row["fallback_ms"],
            row["jit_ms"],
            f"{row['speedup']}x",
        )
        for name, row in section["matvec"].items()
    ]
    body = format_table(
        ["path", "elems", "hanging", "fallback ms", "jit ms", "speedup"],
        rows,
    ) + (
        f"\n\nnumba: {'yes ' + str(prov['numba_version']) if prov['have_numba'] else 'not installed'}"
        f" | jit_enabled: {prov['jit_enabled']}"
        f" | selections: jit_hits={prov['stats']['jit_hits']}"
        f" fallback={prov['stats']['fallback']}\n"
        f"gates on {section['gate_mesh']}: fused update >= "
        f"{section['update_gate']}x ({section['update_speedup']}x), matvec >= "
        f"{section['matvec_gate']}x ({section['matvec_speedup']}x) — "
        + (
            f"{'PASS' if section['gate_passed'] else 'FAIL'}"
            if section["gate_enforced"]
            else "not enforced (NumPy fallback on both sides; honest ~1x)"
        )
    )
    text_report(
        "kernels",
        "JIT-compiled fused element kernels (PR 9)",
        body,
    )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="CI-sized workloads")
    ap.add_argument("--output", default=DEFAULT_OUT)
    args = ap.parse_args(argv)

    section = run(args.quick)
    write_report(section, args.quick, args.output)

    for kind in ("fused_update", "matvec"):
        for name, row in section[kind].items():
            print(
                f"  {kind}:{name}: fallback {row['fallback_ms']}ms -> jit "
                f"{row['jit_ms']}ms ({row['speedup']}x)"
            )
    if not section["gate_enforced"]:
        print(
            "gates not enforced: Numba unavailable or REPRO_JIT=0 "
            "(fallback timings recorded honestly)"
        )
        return 0
    if not section["gate_passed"]:
        print(
            f"ERROR: kernel speedups update {section['update_speedup']}x / "
            f"matvec {section['matvec_speedup']}x below the "
            f"{UPDATE_GATE}x/{MATVEC_GATE}x gates",
            file=sys.stderr,
        )
        return 1
    print(
        f"gate ok: update {section['update_speedup']}x >= {UPDATE_GATE}x, "
        f"matvec {section['matvec_speedup']}x >= {MATVEC_GATE}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
