"""E7 / Fig. 7 — progressive adaptive refinement across many levels.

The paper's Fig. 7 shows a 2D slice of the jet mesh with octree levels
spanning 4..15 — an 11-level spread, i.e. a 10^9x elemental volume ratio in
3D — where the erosion/dilation identifier resolves filament tips and small
bubbles two levels deeper than the bulk interface.  This benchmark drives
the same pipeline on a scaled field and verifies: multi-level span in one
remesh, features deeper than the interface, and the volume-ratio arithmetic
of the paper at its own levels.
"""

import numpy as np
import pytest

from repro.amr.driver import RemeshConfig, remesh
from repro.core.identifier import IdentifierConfig
from repro.mesh.mesh import mesh_from_field
from repro.octree import morton

from _report import format_table, report


def scene_phi(x):
    """Bulk interface + a small droplet (the 'tiny bubble' of Fig. 7)."""
    d_big = np.linalg.norm(x - np.array([0.65, 0.6]), axis=-1) - 0.22
    d_small = np.linalg.norm(x - np.array([0.22, 0.25]), axis=-1) - 0.05
    return np.tanh(np.minimum(d_big, d_small) / 0.012)


def run_remesh():
    mesh = mesh_from_field(scene_phi, 2, max_level=7, min_level=3, threshold=0.9)
    phi = mesh.interpolate(scene_phi)
    cfg = RemeshConfig(
        coarse_level=3,
        interface_level=7,
        feature_level=9,
        identifier=IdentifierConfig(delta=-0.8, n_erode=5, n_extra_dilate=3),
    )
    return remesh(mesh, {"phi": phi}, cfg)


def test_progressive_refinement_kernel(benchmark):
    benchmark.pedantic(run_remesh, rounds=2, iterations=1)


def test_fig7_progressive_refinement(benchmark):
    new_mesh, new_fields, info = benchmark.pedantic(run_remesh, rounds=1)
    levels = new_mesh.tree.levels
    span = int(levels.max() - levels.min())
    vol_ratio = float(8.0 ** (15 - 4))  # paper's own 3D arithmetic
    our_ratio = float(4.0**span)  # 2D
    fine = levels == levels.max()
    centers = new_mesh.elem_centers()
    d_small = np.linalg.norm(centers - np.array([0.22, 0.25]), axis=1)

    rows = [
        ["coarsest level", 4, int(levels.min())],
        ["finest level", 15, int(levels.max())],
        ["level span", 11, span],
        ["elemental volume ratio (paper 3D levels)", "1e9",
         f"{vol_ratio:.3g}"],
        ["elemental volume ratio (this run, 2D)", "-", f"{our_ratio:.3g}"],
        ["feature levels deeper than interface", 2,
         int(levels.max()) - 7],
        ["finest elements near the small droplet", "all",
         "all" if bool(np.all(d_small[fine] < 0.15)) else "NO"],
        ["elements after remesh", "-", new_mesh.n_elems],
        ["refined (count)", "-", info.n_refined],
        ["coarsened (count)", "-", info.n_coarsened],
    ]
    report(
        "fig7",
        "Progressive adaptive refinement (levels, feature vs interface)",
        format_table(["quantity", "paper", "measured"], rows),
    )
    assert span >= 5  # multi-level in a single remesh
    assert levels.max() == 9  # feature level reached
    assert np.all(d_small[fine] < 0.15)  # only the droplet gets level 9
    assert np.isclose(vol_ratio, 8.0**11)
