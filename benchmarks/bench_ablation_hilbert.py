"""Ablation A5 — Hilbert vs Morton SFC ordering for partition locality.

The paper's framework family (Dendro) supports Hilbert ordering because
contiguous Hilbert chunks have smaller surface area than Morton chunks:
fewer ghost nodes, less MATVEC communication.  This ablation measures the
cross-partition adjacency fraction (ghost-traffic proxy) of both orderings
on uniform and adaptive meshes and propagates the difference through the
machine model's MATVEC communication term.
"""

import numpy as np
import pytest

from repro.mesh.mesh import mesh_from_field
from repro.octree.build import uniform_tree
from repro.octree.hilbert import chunk_surface_ratio
from repro.perf.machine import MachineModel

from _report import format_table, report


def adaptive_tree():
    def phi(x):
        return np.linalg.norm(x - 0.5, axis=1) - 0.3

    return mesh_from_field(phi, 2, max_level=7, min_level=4, threshold=0.03).tree


def test_hilbert_ratio_kernel(benchmark):
    t = uniform_tree(2, 5)
    benchmark.pedantic(
        chunk_surface_ratio, args=(t.anchors, t.levels, 2, 8, "hilbert"),
        rounds=3,
    )


def test_ablation_hilbert_report(benchmark):
    rows = []
    cases = [
        ("uniform level 5", uniform_tree(2, 5)),
        ("uniform level 6", uniform_tree(2, 6)),
        ("adaptive (interface)", adaptive_tree()),
    ]
    benchmark.pedantic(
        chunk_surface_ratio,
        args=(cases[0][1].anchors, cases[0][1].levels, 2, 8, "hilbert"),
        rounds=1,
    )
    # Power-of-4 part counts align chunk boundaries with quadrants for BOTH
    # curves (identical partitions); the locality gap appears at the
    # non-aligned counts a real scheduler produces.
    for name, t in cases:
        for nparts in (3, 6, 7, 12):
            rm = chunk_surface_ratio(t.anchors, t.levels, 2, nparts, "morton")
            rh = chunk_surface_ratio(t.anchors, t.levels, 2, nparts, "hilbert")
            rows.append(
                [name, nparts, round(rm, 4), round(rh, 4),
                 round(100 * (1 - rh / rm), 1)]
            )
    table = format_table(
        ["mesh", "parts", "Morton cross-adjacency", "Hilbert cross-adjacency",
         "ghost reduction %"],
        rows,
    )

    # Propagate through the MATVEC model: ghost surface scales with the
    # cross-adjacency ratio.
    m = MachineModel()
    mean_red = np.mean([r[4] for r in rows]) / 100.0
    t_m = m.matvec_time(13e6, 28672, ghost_coeff=6.0)
    t_h = m.matvec_time(13e6, 28672, ghost_coeff=6.0 * (1 - mean_red))
    model = format_table(
        ["quantity", "Morton", "Hilbert"],
        [
            ["modeled MATVEC @ 28,672 procs (s)", round(t_m, 4), round(t_h, 4)],
            ["mean ghost reduction", "-", f"{mean_red:.0%}"],
        ],
    )
    report(
        "ablation_hilbert",
        "Hilbert vs Morton ordering: partition surface (ghost) comparison",
        table + "\n\n" + model
        + "\n\nHilbert chunks have no long jumps, so their boundaries are "
        "smaller; at MATVEC-dominated scales the effect on wall time is "
        "modest (communication is a minor share), matching why the paper "
        "family treats ordering as a tuning knob rather than a headline.",
    )
    # Hilbert wins on average and in the clear majority of configurations
    # (individual counts can favor Morton when a chunk cut happens to land
    # on a quadrant boundary for one curve but not the other).
    assert mean_red > 0.02
    strictly = sum(1 for r in rows if r[3] < r[2])
    assert strictly >= len(rows) * 2 // 3
