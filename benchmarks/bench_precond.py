"""PCD vs Jacobi: NS/PP Krylov iterations per step on a registry scenario.

Runs the same quick ``rising_bubble_2d`` job twice — once with the
historical Jacobi inner preconditioner and once with the GMG-backed PCD
block preconditioner (``precond="pcd"``) — at identical solver tolerances,
and compares the per-step NS and PP Krylov iteration counts recorded by the
time stepper's ``iteration_counts`` plumbing.

Gate: PCD must reduce the *combined* NS+PP iterations per step.  Wall time
is reported but not gated (on CI-sized meshes the V-cycle setup can eat the
iteration savings; the paper-scale argument is about iteration growth with
mesh size, which the iteration counts capture).

Artifacts: ``benchmarks/results/BENCH_PR8.json`` (standalone) and the
``precond`` section of the run_all report; text table in
``benchmarks/results/precond.txt``.

Run:  PYTHONPATH=src python benchmarks/bench_precond.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import replace

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.scenarios import build  # noqa: E402
from repro.scenarios.runner import _ChnsState  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
DEFAULT_OUT = os.path.join(RESULTS_DIR, "BENCH_PR8.json")


def _run_variant(cfg, precond: str, n_steps: int) -> dict:
    state = _ChnsState(replace(cfg, precond=precond))
    state.fresh_start()
    t0 = time.perf_counter()
    for step in range(n_steps):
        state.advance(step)
    wall = time.perf_counter() - t0
    counts = state.stepper.iteration_counts
    return {
        "precond": precond,
        "n_steps": n_steps,
        "wall_s": round(wall, 4),
        "krylov_ns": counts["krylov_ns"],
        "krylov_pp": counts["krylov_pp"],
        "krylov_vu": counts["krylov_vu"],
        "ns_per_step": round(counts["krylov_ns"] / n_steps, 2),
        "pp_per_step": round(counts["krylov_pp"] / n_steps, 2),
        "nspp_per_step": round(
            (counts["krylov_ns"] + counts["krylov_pp"]) / n_steps, 2
        ),
    }


def run(quick: bool) -> dict:
    cfg = build("rising_bubble_2d", quick=True)
    n_steps = 2 if quick else 6
    out: dict = {
        "scenario": cfg.name,
        "n_elems_level": cfg.domain.max_level,
        "dt": cfg.time.dt,
        "runs": {},
    }
    for precond in ("jacobi", "pcd"):
        out["runs"][precond] = _run_variant(cfg, precond, n_steps)
    j, p = out["runs"]["jacobi"], out["runs"]["pcd"]
    out["iteration_reduction"] = round(
        j["nspp_per_step"] / max(p["nspp_per_step"], 1e-12), 3
    )
    out["gate_passed"] = p["nspp_per_step"] < j["nspp_per_step"]
    return out


def write_report(section: dict, quick: bool) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "meta": {
            "bench": "precond",
            "quick": quick,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "precond": section,
    }
    with open(DEFAULT_OUT, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    j, p = section["runs"]["jacobi"], section["runs"]["pcd"]
    lines = [
        "PCD vs Jacobi — NS+PP Krylov iterations/step "
        f"({section['scenario']})",
        f"{'precond':<10}{'ns/step':>10}{'pp/step':>10}"
        f"{'ns+pp':>10}{'wall_s':>10}",
        f"{'jacobi':<10}{j['ns_per_step']:>10}{j['pp_per_step']:>10}"
        f"{j['nspp_per_step']:>10}{j['wall_s']:>10}",
        f"{'pcd':<10}{p['ns_per_step']:>10}{p['pp_per_step']:>10}"
        f"{p['nspp_per_step']:>10}{p['wall_s']:>10}",
        f"reduction: {section['iteration_reduction']}x  "
        f"gate_passed: {section['gate_passed']}",
    ]
    with open(os.path.join(RESULTS_DIR, "precond.txt"), "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print("\n".join(lines))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--quick", action="store_true")
    args = ap.parse_args(argv)
    section = run(args.quick)
    write_report(section, args.quick)
    if not section["gate_passed"]:
        print(
            "ERROR: PCD did not reduce NS+PP Krylov iterations/step vs "
            "Jacobi",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
