"""E4 / Fig. 4b — MATVEC weak scaling (fixed grain of ~35K elements/core).

Simulator runs keep the per-rank element count constant while the rank count
grows (the real weak-scaling protocol), then the calibrated machine model
reproduces the paper's 28 -> 14,336-core curve: 1.58 s -> 1.9 s, i.e. ~82%
weak-scaling efficiency with a slowly growing execution time.
"""

import time

import numpy as np
import pytest

from repro.fem.operators import stiffness_matrix
from repro.mesh.distributed import DistributedField
from repro.mesh.mesh import Mesh
from repro.mpi.comm import run_spmd
from repro.mpi.stats import CommStats
from repro.octree.build import uniform_tree
from repro.perf.machine import MachineModel, weak_efficiency

from _report import format_table, report

PAPER_PROCS = [28, 112, 448, 1792, 7168, 14336]
PAPER_T0, PAPER_T1 = 1.58, 1.9
GRAIN = 35_000


def _weak_run(level, nprocs, n_iters=3):
    """Mesh grows with rank count: level+k quadrupling elements per +k."""
    mesh = Mesh.from_tree(uniform_tree(2, level))
    Ke = stiffness_matrix(mesh.elem_h(), mesh.dim)
    u = np.ones(mesh.n_nodes)
    stats = CommStats()

    def fn(comm):
        df = DistributedField(comm, mesh)
        owned = df.from_global(u)
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(n_iters):
            owned = df.matvec(Ke[df.elem_lo : df.elem_hi], owned)
            owned /= max(np.abs(owned).max(), 1e-30)
        comm.barrier()
        return (time.perf_counter() - t0) / n_iters

    times = run_spmd(nprocs, fn, stats=stats)
    return mesh.n_elems, max(times), stats.snapshot()


def test_simulated_weak_pair(benchmark):
    """Timed kernel: grain-preserving pair (level 5 @ 1 rank ~ level 6 @ 4)."""

    def once():
        _weak_run(6, 4, n_iters=1)

    benchmark.pedantic(once, rounds=3, iterations=1)


def test_fig4b_weak_scaling(benchmark):
    # --- simulator: constant grain, growing world --------------------------
    benchmark.pedantic(_weak_run, args=(5, 1, 1), rounds=1)
    sim_rows = []
    for level, p in ((5, 1), (6, 4), (7, 16)):
        n, t, snap = _weak_run(level, p)
        sim_rows.append([p, n // p, t * 1e3, snap["bytes_sent"]])
    grain_sim = sim_rows[0][1]
    sim_table = format_table(
        ["ranks", "elems/rank", "ms/MATVEC", "total bytes"], sim_rows
    )

    # --- model at paper scale ----------------------------------------------
    model = MachineModel()
    times = np.array(
        [model.matvec_time(GRAIN * p, p, dim=3) for p in PAPER_PROCS]
    )
    eff = weak_efficiency(times)
    rows = [
        [p, GRAIN, round(t, 3), round(e, 3)]
        for p, t, e in zip(PAPER_PROCS, times, eff)
    ]
    model_table = format_table(
        ["procs", "elems/rank", "model time (s)", "weak eff."], rows
    )
    summary = format_table(
        ["quantity", "paper", "reproduced"],
        [
            ["time @ 28 cores (s)", PAPER_T0, round(float(times[0]), 3)],
            ["time @ 14,336 cores (s)", PAPER_T1, round(float(times[-1]), 3)],
            ["weak efficiency", 0.82, round(float(eff[-1]), 3)],
        ],
    )
    report(
        "fig4b",
        "MATVEC weak scaling (~35K elements per core, 28 -> 14,336 cores)",
        "Simulator (constant grain per rank):\n"
        + sim_table
        + "\n\nMachine-model extrapolation at paper scale:\n"
        + model_table
        + "\n\nAnchors:\n"
        + summary,
    )
    # Shape: slowly growing, stays within the paper's band.
    assert times[-1] > times[0]
    assert abs(float(times[-1]) - PAPER_T1) / PAPER_T1 < 0.1
    assert 0.75 < float(eff[-1]) < 0.95
