"""E5 / Fig. 5 — full application scaling (CH / NS / PP / VU / remeshing).

Layer 1 runs the *real* CHNS two-block stepper (a rising-bubble case with
AMR) at laptop scale and measures each block's wall time and Krylov
iteration profile.  Layer 2 feeds the measured iteration counts into the
calibrated application model and evaluates it at the paper's process counts
(~14K -> ~114K on a 700M-element mesh), checking the paper's headline
speedups: NS 6.6x, PP 5.3x, VU 5.5x, CH 4x for 8x processes, with the
remeshing cost dropping ~2.5x per 4x processes up to ~57K and growing
beyond.
"""

import numpy as np
import pytest

from repro.chns.initial_conditions import rising_bubble
from repro.chns.params import CHNSParams
from repro.chns.timestepper import CHNSTimeStepper, no_slip_bc
from repro.mesh.mesh import Mesh
from repro.octree.build import uniform_tree
from repro.perf.machine import MachineModel
from repro.perf.model import ApplicationModel, paper_fig5_solvers

from _report import format_table, report

PAPER_PROCS = [14336, 28672, 57344, 114688]
PAPER_SPEEDUP = {"ns": 6.6, "pp": 5.3, "vu": 5.5, "ch": 4.0}


def small_chns_run(n_steps=3):
    mesh = Mesh.from_tree(uniform_tree(2, 4))
    prm = CHNSParams(
        Re=50.0, We=2.0, Pe=100.0, Cn=0.08, Fr=1.0,
        rho_minus=0.5, eta_minus=0.5,
    )
    ts = CHNSTimeStepper(mesh, prm, velocity_bc=no_slip_bc)
    ts.initialize(lambda x: rising_bubble(x, radius=0.2, Cn=prm.Cn))
    for _ in range(n_steps):
        ts.step(1e-3)
    return ts


def test_small_application_step(benchmark):
    """Timed kernel: one full CHNS timestep (all four solves)."""
    ts = small_chns_run(n_steps=1)
    benchmark.pedantic(ts.step, args=(1e-3,), rounds=3, iterations=1)


def test_fig5_application_scaling(benchmark):
    ts = benchmark.pedantic(small_chns_run, kwargs={"n_steps": 3}, rounds=1)
    t = ts.timers
    measured = format_table(
        ["block", "measured s (3 steps, laptop 2D)"],
        [
            ["CH-solve", round(t.ch, 3)],
            ["NS-solve", round(t.ns, 3)],
            ["PP-solve", round(t.pp, 3)],
            ["VU-solve", round(t.vu, 3)],
        ],
    )

    app = ApplicationModel(
        machine=MachineModel(),
        n_elems=700e6,
        dim=3,
        solvers=paper_fig5_solvers(),
    )
    b = app.breakdown(PAPER_PROCS)
    rows = []
    for name in ("ch", "ns", "pp", "vu", "remesh"):
        rows.append([name] + [round(float(x), 2) for x in b[name]])
    curve = format_table(["block"] + [str(p) for p in PAPER_PROCS], rows)

    sp_rows = []
    for name, target in PAPER_SPEEDUP.items():
        got = app.speedup(name, PAPER_PROCS[0], PAPER_PROCS[-1])
        sp_rows.append([name.upper() + "-solve", target, round(got, 2)])
    r_lo = app.remesh_time(PAPER_PROCS[0]) / app.remesh_time(PAPER_PROCS[2])
    sp_rows.append(["remesh 14K->57K (4x procs)", 2.5, round(r_lo, 2)])
    grows = app.remesh_time(PAPER_PROCS[3]) > app.remesh_time(PAPER_PROCS[2])
    sp_rows.append(["remesh grows past 57K", "yes", "yes" if grows else "NO"])
    summary = format_table(
        ["quantity (speedup for 8x procs)", "paper", "reproduced"], sp_rows
    )

    report(
        "fig5",
        "Application scaling on ~700M elements (TACC Frontera, modeled)",
        "Measured small-scale CHNS block times (real solver, 2D):\n"
        + measured
        + "\n\nModeled per-step block times (s) at paper scale:\n"
        + curve
        + "\n\nSpeedups 14,336 -> 114,688 processes:\n"
        + summary,
    )

    for name, target in PAPER_SPEEDUP.items():
        got = app.speedup(name, PAPER_PROCS[0], PAPER_PROCS[-1])
        assert abs(got - target) / target < 0.1, name
    assert grows
    # PP is the most expensive solve until remeshing dominates (paper III-B).
    assert b["pp"][0] == max(b[n][0] for n in ("ch", "ns", "pp", "vu"))
    # The real solver's PP block is nontrivial too.
    assert t.pp > 0
