"""Batch simulation throughput: N tiny scenario jobs at concurrency 1 vs 4.

Measures the PR 6 batch service (``repro.scenarios.batch``) end to end:
the same set of quick 2D jobs runs once with one worker rank and once with
four, and the report records jobs/min for both plus the speedup.  Workers
execute on the default usable SPMD backend (process when fork is available
— true multi-core — else thread); host provenance rides with every number
because concurrency speedups are meaningless without the core count.

Gate: every job in both batches must report ``succeeded`` — a batch service
that loses or corrupts jobs fails CI regardless of how fast it is.  The
concurrency *speedup* is deliberately not gated (a 1-core host honestly
yields ~1x; see ``meta.single_core_host``).

Artifacts: section in ``benchmarks/results/BENCH_PR6.json`` (standalone)
and the ``scenario_batch`` section of the run_all report; text table in
``benchmarks/results/scenario_batch.txt``.

Run:  PYTHONPATH=src python benchmarks/bench_scenarios.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runtime import ProcessBackend  # noqa: E402
from repro.scenarios import ResultsStore, build, make_jobs, run_batch  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
DEFAULT_OUT = os.path.join(RESULTS_DIR, "BENCH_PR6.json")


def _batch_backend() -> str:
    return "process" if ProcessBackend.is_available() else "thread"


def _timed_batch(jobs, concurrency: int, backend: str) -> dict:
    root = tempfile.mkdtemp(prefix=f"bench_scn_c{concurrency}_")
    try:
        t0 = time.perf_counter()
        report = run_batch(
            jobs, ResultsStore(root), concurrency=concurrency,
            backend=backend, resume=False,
        )
        wall = time.perf_counter() - t0
        return {
            "concurrency": concurrency,
            "wall_s": round(wall, 4),
            "jobs_per_min": round(60.0 * report.n_run / wall, 3),
            "statuses": report.statuses,
            "all_succeeded": report.all_succeeded,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run(quick: bool) -> dict:
    backend = _batch_backend()
    # Seeded repeats of the two cheapest CH families: enough work to keep 4
    # ranks busy, small enough for CI.
    n_repeats = 3 if quick else 6
    configs = [build("drop_2d", quick=True), build("coalescence_2d", quick=True)]
    jobs = make_jobs(configs, repeats=n_repeats)
    out: dict = {
        "backend": backend,
        "n_jobs": len(jobs),
        "scenarios": sorted({j.config.name for j in jobs}),
        "runs": {},
    }
    for concurrency in (1, 4):
        out["runs"][str(concurrency)] = _timed_batch(jobs, concurrency, backend)
    r1, r4 = out["runs"]["1"], out["runs"]["4"]
    out["speedup_c4_vs_c1"] = round(r1["wall_s"] / r4["wall_s"], 3)
    out["gate_passed"] = bool(r1["all_succeeded"] and r4["all_succeeded"])
    return out


def write_report(section: dict, quick: bool, output: str = DEFAULT_OUT) -> None:
    from _report import format_table, host_provenance, report as text_report

    payload = {
        "meta": {
            **host_provenance(),
            "quick": quick,
            "note": (
                "batch-service throughput for independent scenario jobs; "
                "c4-vs-c1 speedup is only meaningful when single_core_host "
                "is false and the backend is 'process'"
            ),
        },
        "scenario_batch": section,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {output}")

    rows = [
        (
            f"concurrency {r['concurrency']}",
            f"{r['wall_s']:.2f}",
            f"{r['jobs_per_min']:.1f}",
            json.dumps(r["statuses"]),
        )
        for r in section["runs"].values()
    ]
    body = (
        format_table(["batch", "wall s", "jobs/min", "statuses"], rows)
        + f"\n\n{section['n_jobs']} jobs over {section['backend']} workers; "
        + f"c4 vs c1 speedup {section['speedup_c4_vs_c1']}x "
        + f"(honest number — see single_core_host in the JSON meta)\n"
        + f"gate (all jobs succeeded at both concurrencies): "
        + ("PASS" if section["gate_passed"] else "FAIL")
    )
    text_report(
        "scenario_batch",
        "concurrent batch simulation throughput (PR 6)",
        body,
    )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="CI-sized workloads")
    ap.add_argument("--output", default=DEFAULT_OUT)
    args = ap.parse_args(argv)
    section = run(args.quick)
    write_report(section, args.quick, args.output)
    return 0 if section["gate_passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
