"""Tests for the SPMD simulator: p2p, collectives, split, stats."""

import numpy as np
import pytest

from repro.mpi.comm import MAX, MIN, Comm, SpmdError, run_spmd
from repro.mpi.stats import CommStats, payload_bytes


class TestRunSpmd:
    def test_returns_per_rank_results(self):
        out = run_spmd(4, lambda c: c.rank * 10)
        assert out == [0, 10, 20, 30]

    def test_propagates_exceptions(self):
        def boom(comm):
            if comm.rank == 2:
                raise ValueError("kaboom")

        with pytest.raises(SpmdError, match="rank 2"):
            run_spmd(4, boom)

    def test_deadlock_detected(self):
        def hang(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=99)

        with pytest.raises(SpmdError):
            run_spmd(2, hang, timeout=0.5)

    def test_single_rank(self):
        assert run_spmd(1, lambda c: c.size) == [1]


class TestPointToPoint:
    def test_ring(self):
        def ring(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.array([comm.rank]), right, tag=1)
            got = comm.recv(left, tag=1)
            return int(got[0])

        out = run_spmd(5, ring)
        assert out == [4, 0, 1, 2, 3]

    def test_tag_matching(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=10)
                comm.send("b", 1, tag=20)
            else:
                # Receive out of order by tag.
                b = comm.recv(0, tag=20)
                a = comm.recv(0, tag=10)
                return a + b

        assert run_spmd(2, fn)[1] == "ab"

    def test_any_source(self):
        def fn(comm):
            if comm.rank == 0:
                vals = sorted(comm.recv() for _ in range(comm.size - 1))
                return vals
            comm.send(comm.rank, 0)

        assert run_spmd(4, fn)[0] == [1, 2, 3]

    def test_recv_with_status(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=5)
            else:
                payload, src, tag = comm.recv_with_status()
                return (payload, src, tag)

        assert run_spmd(2, fn)[1] == ("x", 0, 5)

    def test_sendrecv(self):
        def fn(comm):
            partner = comm.size - 1 - comm.rank
            return comm.sendrecv(comm.rank, partner, partner)

        assert run_spmd(4, fn) == [3, 2, 1, 0]

    def test_iprobe(self):
        def fn(comm):
            if comm.rank == 0:
                assert comm.iprobe() is None or True  # may be empty initially
                comm.barrier()
                st = comm.iprobe(source=1, tag=3)
                assert st == (1, 3)
                return comm.recv(1, 3)
            comm.send(42, 0, tag=3)
            comm.barrier()

        assert run_spmd(2, fn)[0] == 42


class TestCollectives:
    def test_bcast(self):
        out = run_spmd(4, lambda c: c.bcast("payload" if c.rank == 2 else None, root=2))
        assert out == ["payload"] * 4

    def test_gather_scatter(self):
        def fn(comm):
            g = comm.gather(comm.rank**2, root=1)
            s = comm.scatter([10, 11, 12, 13] if comm.rank == 0 else None, root=0)
            return (g, s)

        out = run_spmd(4, fn)
        assert out[1][0] == [0, 1, 4, 9]
        assert out[0][0] is None
        assert [o[1] for o in out] == [10, 11, 12, 13]

    def test_allgather(self):
        out = run_spmd(3, lambda c: c.allgather(c.rank + 1))
        assert out == [[1, 2, 3]] * 3

    def test_allreduce_sum_arrays(self):
        def fn(comm):
            return comm.allreduce(np.full(3, comm.rank, dtype=np.int64))

        out = run_spmd(4, fn)
        for arr in out:
            assert np.array_equal(arr, np.full(3, 6))

    def test_allreduce_max_min(self):
        out = run_spmd(4, lambda c: (c.allreduce(c.rank, MAX), c.allreduce(c.rank, MIN)))
        assert out == [(3, 0)] * 4

    def test_scan_exscan(self):
        out = run_spmd(4, lambda c: (c.scan(c.rank + 1), c.exscan(c.rank + 1)))
        assert [o[0] for o in out] == [1, 3, 6, 10]
        assert [o[1] for o in out] == [None, 1, 3, 6]

    def test_alltoall(self):
        def fn(comm):
            return comm.alltoall([comm.rank * 10 + d for d in range(comm.size)])

        out = run_spmd(3, fn)
        assert out[0] == [0, 10, 20]
        assert out[2] == [2, 12, 22]

    def test_alltoallv_arrays(self):
        def fn(comm):
            sends = [np.arange(d, dtype=np.int64) + comm.rank for d in range(comm.size)]
            recv = comm.alltoallv(sends)
            return [r.tolist() for r in recv]

        out = run_spmd(3, fn)
        # Rank 1 receives arrays of length 1 from every source.
        assert out[1] == [[0], [1], [2]]

    def test_back_to_back_collectives(self):
        def fn(comm):
            acc = []
            for i in range(20):
                acc.append(comm.allreduce(i + comm.rank))
            return acc

        out = run_spmd(4, fn)
        assert out[0] == out[3]
        assert out[0][0] == 0 + 1 + 2 + 3

    def test_reduce(self):
        out = run_spmd(3, lambda c: c.reduce(c.rank + 1, root=2))
        assert out == [None, None, 6]


class TestSplit:
    def test_split_even_odd(self):
        def fn(comm):
            sub = comm.split(comm.rank % 2)
            total = sub.allreduce(comm.rank)
            return (sub.size, sub.rank, total)

        out = run_spmd(6, fn)
        for r, (size, subrank, total) in enumerate(out):
            assert size == 3
            assert subrank == r // 2
            assert total == (0 + 2 + 4 if r % 2 == 0 else 1 + 3 + 5)

    def test_split_undefined_color(self):
        def fn(comm):
            sub = comm.split(-1 if comm.rank == 0 else 0)
            if comm.rank == 0:
                return sub is None
            return sub.size

        out = run_spmd(3, fn)
        assert out == [True, 2, 2]

    def test_split_key_reorders(self):
        def fn(comm):
            sub = comm.split(0, key=-comm.rank)
            return sub.rank

        out = run_spmd(4, fn)
        assert out == [3, 2, 1, 0]

    def test_split_cached_avoids_resplit(self):
        def fn(comm):
            stats = comm.stats
            sub1 = comm.split_cached(comm.rank % 2, comm.rank, cache_tag="t")
            n1 = stats.snapshot()["comm_splits"]
            sub2 = comm.split_cached(comm.rank % 2, comm.rank, cache_tag="t")
            n2 = stats.snapshot()["comm_splits"]
            assert sub1 is sub2
            comm.barrier()
            return (n1, n2)

        out = run_spmd(4, fn)
        for n1, n2 in out:
            assert n2 == n1  # no additional split happened

    def test_successive_splits_are_independent(self):
        def fn(comm):
            a = comm.split(0)
            b = comm.split(0)
            a.send(1, (a.rank + 1) % a.size, tag=1) if a.rank == 0 else None
            if a.rank == 1:
                assert a.recv(0, tag=1) == 1
            # b's mailboxes must be empty.
            assert b.iprobe() is None
            b.barrier()
            return True

        assert all(run_spmd(2, fn))


class TestStats:
    def test_payload_bytes(self):
        assert payload_bytes(np.zeros(10, np.float64)) == 80
        assert payload_bytes(None) == 0
        assert payload_bytes(3) == 8
        assert payload_bytes([np.zeros(2), np.zeros(3)]) == 40
        assert payload_bytes({"a": 1}) > 0

    def test_payload_bytes_width_aware_scalars(self):
        # NumPy scalars count their true width, not a flat 8 bytes.
        assert payload_bytes(np.float32(1.5)) == 4
        assert payload_bytes(np.float64(1.5)) == 8
        assert payload_bytes(np.int16(3)) == 2
        assert payload_bytes(np.int64(3)) == 8
        assert payload_bytes(np.uint8(3)) == 1
        # Booleans are 1 byte (bool is a subclass of int — order matters).
        assert payload_bytes(True) == 1
        assert payload_bytes(np.bool_(False)) == 1
        # Native Python numbers ship as 8-byte machine words.
        assert payload_bytes(3.25) == 8

    def test_payload_bytes_sparse_exchange_payloads(self):
        # The (ids, values) tuples the NBX ghost exchange puts on the wire.
        ids = np.arange(5, dtype=np.int64)
        vals = np.ones(5, dtype=np.float64)
        assert payload_bytes((ids, vals)) == 5 * 8 + 5 * 8
        # Mixed widths still sum exactly.
        assert payload_bytes((ids, vals.astype(np.float32))) == 40 + 20
        # Empty arrays are free.
        assert payload_bytes((np.empty(0, np.int64),)) == 0

    def test_payload_bytes_unpicklable_warns_not_silent(self):
        unpicklable = lambda: None  # noqa: E731 — local lambda can't pickle
        with pytest.warns(RuntimeWarning, match="unpicklable"):
            n = payload_bytes(unpicklable)
        assert n > 0

    def test_counters_accumulate(self):
        stats = CommStats()

        def fn(comm):
            comm.send(np.zeros(100), (comm.rank + 1) % comm.size)
            comm.recv()
            comm.allreduce(1)
            comm.barrier()

        run_spmd(4, fn, stats=stats)
        snap = stats.snapshot()
        assert snap["messages"] == 4
        assert snap["bytes_sent"] == 4 * 800
        assert snap["collectives"] == 4
        assert snap["barriers"] == 4
