"""Tests for distributed sorting, NBX exchange, and hierarchical staging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.collectives import (
    allgatherv,
    allreduce_sum,
    exscan_sum,
    gatherv,
    scatterv,
)
from repro.mpi.comm import run_spmd
from repro.mpi.hierarchical import kway_stage_comms
from repro.mpi.sort import (
    is_globally_sorted,
    kway_sort,
    partition_balanced,
    sample_sort,
)
from repro.mpi.sparse_exchange import dense_exchange, nbx_exchange
from repro.mpi.stats import CommStats


def _global_sort_check(nprocs, sorter, seed=0, n_per_rank=200, **kw):
    rng = np.random.default_rng(seed)
    data = [
        rng.integers(0, 10**6, size=rng.integers(0, n_per_rank)).astype(np.uint64)
        for _ in range(nprocs)
    ]

    def fn(comm):
        out = sorter(comm, data[comm.rank], **kw)
        assert is_globally_sorted(comm, out)
        return out

    outs = run_spmd(nprocs, fn)
    merged = np.concatenate(outs)
    expect = np.sort(np.concatenate(data))
    assert np.array_equal(merged, expect)


class TestSampleSort:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 7])
    def test_sorts_globally(self, nprocs):
        _global_sort_check(nprocs, sample_sort, seed=nprocs)

    def test_with_payload(self):
        rng = np.random.default_rng(3)
        keys = [rng.permutation(100).astype(np.uint64) * 4 + r for r in range(4)]

        def fn(comm):
            k, p = sample_sort(comm, keys[comm.rank], keys[comm.rank] * 2)
            assert np.array_equal(p, k * 2)  # payload follows its key
            return k

        outs = run_spmd(4, fn)
        merged = np.concatenate(outs)
        assert np.array_equal(merged, np.sort(np.concatenate(keys)))

    def test_empty_ranks(self):
        data = [np.arange(50, dtype=np.uint64), np.zeros(0, np.uint64)]

        def fn(comm):
            return sample_sort(comm, data[comm.rank])

        outs = run_spmd(2, fn)
        assert np.array_equal(np.concatenate(outs), np.arange(50, dtype=np.uint64))

    def test_duplicates(self):
        data = [np.full(100, 7, np.uint64), np.full(100, 7, np.uint64)]
        outs = run_spmd(2, lambda c: sample_sort(c, data[c.rank]))
        assert len(np.concatenate(outs)) == 200


class TestKwaySort:
    @pytest.mark.parametrize("nprocs,k", [(4, 2), (8, 2), (8, 3), (6, 128)])
    def test_sorts_globally(self, nprocs, k):
        _global_sort_check(nprocs, kway_sort, seed=nprocs * 10 + k, k=k)

    def test_payload_follows(self):
        rng = np.random.default_rng(9)
        keys = [rng.permutation(64).astype(np.uint64) + 64 * r for r in range(8)]

        def fn(comm):
            k, p = kway_sort(comm, keys[comm.rank], keys[comm.rank] + 1, k=2)
            assert np.array_equal(p, k + 1)
            return k

        outs = run_spmd(8, fn)
        assert np.array_equal(
            np.concatenate(outs), np.sort(np.concatenate(keys))
        )

    def test_ladder_memoized(self):
        def fn(comm):
            l1 = kway_stage_comms(comm, 2)
            before = comm.stats.snapshot()["comm_splits"]
            l2 = kway_stage_comms(comm, 2)
            after = comm.stats.snapshot()["comm_splits"]
            assert l1 is l2
            comm.barrier()
            return after - before

        out = run_spmd(8, fn)
        assert all(d == 0 for d in out)

    def test_ladder_depth(self):
        def fn(comm):
            return len(kway_stage_comms(comm, 2))

        # 8 ranks, k=2 -> stages of sizes 8 -> 4 -> 2: depth 2 splits.
        out = run_spmd(8, fn)
        assert all(d == 2 for d in out)


class TestPartitionBalanced:
    def test_balances_counts(self):
        data = [np.arange(95, dtype=np.uint64), np.arange(95, 100, dtype=np.uint64),
                np.zeros(0, np.uint64), np.arange(100, 101, dtype=np.uint64)]

        def fn(comm):
            out = partition_balanced(comm, data[comm.rank])
            assert is_globally_sorted(comm, out)
            return len(out)

        counts = run_spmd(4, fn)
        assert sum(counts) == 101
        assert max(counts) - min(counts) <= 1

    def test_payload_preserved(self):
        data = [np.arange(10, dtype=np.uint64) + 10 * r for r in range(3)]

        def fn(comm):
            k, p = partition_balanced(comm, data[comm.rank], data[comm.rank] * 3)
            assert np.array_equal(p, k * 3)
            return k

        outs = run_spmd(3, fn)
        assert np.array_equal(np.concatenate(outs), np.arange(30, dtype=np.uint64))


class TestSparseExchange:
    @pytest.mark.parametrize("exchange", [dense_exchange, nbx_exchange])
    def test_delivers_same_messages(self, exchange):
        def fn(comm):
            # Sparse pattern: talk to rank+1 and rank+3 only.
            outgoing = {
                (comm.rank + 1) % comm.size: np.array([comm.rank, 1]),
                (comm.rank + 3) % comm.size: np.array([comm.rank, 3]),
            }
            got = exchange(comm, outgoing)
            comm.barrier()
            return {src: tuple(v) for src, v in got.items()}

        out = run_spmd(8, fn)
        for r, got in enumerate(out):
            assert got[(r - 1) % 8] == ((r - 1) % 8, 1)
            assert got[(r - 3) % 8] == ((r - 3) % 8, 3)
            assert len(got) == 2

    def test_nbx_empty_pattern(self):
        out = run_spmd(4, lambda c: nbx_exchange(c, {}))
        assert out == [{}] * 4

    def test_nbx_repeated_calls(self):
        def fn(comm):
            a = nbx_exchange(comm, {(comm.rank + 1) % comm.size: "x"})
            b = nbx_exchange(comm, {(comm.rank + 2) % comm.size: "y"})
            return (sorted(a), sorted(b))

        out = run_spmd(4, fn)
        for r, (a, b) in enumerate(out):
            assert a == [(r - 1) % 4]
            assert b == [(r - 2) % 4]

    def test_nbx_cheaper_than_dense_for_sparse_pattern(self):
        """The paper's point: dense Alltoall costs Omega(p) per rank even
        when the pattern is sparse; NBX costs only the actual messages."""
        s_dense, s_nbx = CommStats(), CommStats()

        def fn_d(comm):
            dense_exchange(comm, {(comm.rank + 1) % comm.size: b"m"})
            comm.barrier()

        def fn_n(comm):
            nbx_exchange(comm, {(comm.rank + 1) % comm.size: b"m"})
            comm.barrier()

        run_spmd(16, fn_d, stats=s_dense)
        run_spmd(16, fn_n, stats=s_nbx)
        # Dense adds an alltoall collective with p entries per rank.
        assert s_dense.snapshot()["collective_bytes"] > s_nbx.snapshot()["collective_bytes"]


class TestCollectiveHelpers:
    def test_allgatherv_order(self):
        def fn(comm):
            return allgatherv(comm, np.full(comm.rank, comm.rank))

        out = run_spmd(3, fn)
        assert np.array_equal(out[0], np.array([1, 2, 2]))

    def test_gatherv_scatterv_roundtrip(self):
        def fn(comm):
            full = gatherv(comm, np.arange(comm.rank + 1, dtype=np.int64), root=0)
            counts = comm.allgather(comm.rank + 1)
            back = scatterv(comm, full, counts, root=0)
            return back

        out = run_spmd(3, fn)
        assert np.array_equal(out[0], [0])
        assert np.array_equal(out[2], [0, 1, 2])

    def test_exscan_sum(self):
        out = run_spmd(4, lambda c: exscan_sum(c, c.rank + 1))
        assert out == [0, 1, 3, 6]

    def test_allreduce_sum_helper(self):
        out = run_spmd(3, lambda c: allreduce_sum(c, np.ones(2)))
        assert np.array_equal(out[0], [3.0, 3.0])


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000), nprocs=st.sampled_from([2, 3, 5]))
def test_property_sample_sort_random(seed, nprocs):
    _global_sort_check(nprocs, sample_sort, seed=seed, n_per_rank=60)
