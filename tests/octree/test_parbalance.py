"""Tests for distributed 2:1 balance restoration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.comm import run_spmd
from repro.octree.balance import balance, is_balanced
from repro.octree.build import build_tree, uniform_tree
from repro.octree.parbalance import par_balance
from repro.octree.partition import scatter_tree
from repro.octree.refine import refine
from repro.octree.tree import Octree


def gather(outs, dim=2):
    return Octree(
        np.concatenate([o.anchors for o in outs]),
        np.concatenate([o.levels for o in outs]),
        dim,
    )


def run_par_balance(tree, nprocs):
    parts = scatter_tree(tree, nprocs)
    outs = run_spmd(nprocs, lambda c: par_balance(c, parts[c.rank]))
    return gather(outs, tree.dim)


class TestParBalance:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4])
    def test_cross_rank_violation_fixed(self, nprocs):
        """A deep refinement at a partition boundary must ripple into the
        neighboring rank's chunk."""
        t = uniform_tree(2, 2)
        targets = t.levels.copy()
        targets[len(t) // 2] = 6  # deep spike in the middle of the SFC order
        unbalanced = refine(t, targets)
        out = run_par_balance(unbalanced, nprocs)
        assert is_balanced(out)
        assert out == balance(unbalanced)

    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_already_balanced_unchanged(self, nprocs):
        t = uniform_tree(2, 3)
        out = run_par_balance(t, nprocs)
        assert out == t

    def test_boundary_spike_both_sides(self):
        """Spikes at both chunk endpoints stress the query routing."""
        t = uniform_tree(2, 2)
        targets = t.levels.copy()
        targets[0] = 5
        targets[-1] = 5
        unbalanced = refine(t, targets)
        out = run_par_balance(unbalanced, 3)
        assert is_balanced(out)
        assert out == balance(unbalanced)

    def test_3d(self):
        t = uniform_tree(3, 1)
        targets = t.levels.copy()
        targets[3] = 4
        unbalanced = refine(t, targets)
        out = run_par_balance(unbalanced, 2)
        assert is_balanced(out)
        assert out == balance(unbalanced)

    def test_empty_rank(self):
        t = uniform_tree(2, 1)
        targets = t.levels.copy()
        targets[0] = 4
        unbalanced = refine(t, targets)
        # More ranks than wanted: scatter produces small/empty chunks.
        out = run_par_balance(unbalanced, 6)
        assert is_balanced(out)
        assert out == balance(unbalanced)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000), nprocs=st.sampled_from([2, 3]))
def test_property_par_balance_equals_serial(seed, nprocs):
    rng = np.random.default_rng(seed)

    def pred(anchors, levels):
        return rng.random(len(levels)) < 0.4

    t = build_tree(2, pred, max_level=5, min_level=1)
    out = run_par_balance(t, nprocs)
    assert out == balance(t)
