"""Tests for the level-by-level baselines vs single-pass multi-level AMR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree.build import build_tree, uniform_tree
from repro.octree.coarsen import coarsen
from repro.octree.level_by_level import (
    coarsen_level_by_level,
    refine_level_by_level,
)
from repro.octree.refine import refine
from repro.octree.tree import Octree


def random_leaf_tree(seed, dim=2, max_level=4, p=0.5):
    rng = np.random.default_rng(seed)

    def pred(anchors, levels):
        return rng.random(len(levels)) < p

    return build_tree(dim, pred, max_level=max_level, min_level=1)


class TestRefineBaseline:
    @pytest.mark.parametrize("jump", [1, 2, 3, 4])
    def test_same_result_as_single_pass(self, jump):
        t = uniform_tree(2, 2)
        targets = t.levels + jump
        multi = refine(t, targets)
        lbl, passes = refine_level_by_level(t, targets)
        assert lbl == multi
        assert passes == jump

    def test_mixed_targets(self):
        t = random_leaf_tree(0)
        rng = np.random.default_rng(1)
        targets = np.minimum(t.levels + rng.integers(0, 4, len(t)), 8)
        multi = refine(t, targets)
        lbl, passes = refine_level_by_level(t, targets)
        assert lbl == multi
        assert passes == int((targets - t.levels).max())

    def test_noop_costs_zero_passes(self):
        t = uniform_tree(2, 3)
        lbl, passes = refine_level_by_level(t, t.levels)
        assert lbl == t
        assert passes == 0

    def test_intermediate_grid_count_grows_with_jump(self):
        """The baseline builds one intermediate grid per level of depth —
        the overhead the paper's single-pass REFINE removes."""
        t = Octree.root(2)
        _, p1 = refine_level_by_level(t, np.array([2]))
        _, p2 = refine_level_by_level(t, np.array([6]))
        assert p2 == 6 and p1 == 2

    def test_rejects_coarsening(self):
        t = uniform_tree(2, 2)
        with pytest.raises(ValueError):
            refine_level_by_level(t, t.levels - 1)


class TestCoarsenBaseline:
    @pytest.mark.parametrize("drop", [1, 2, 3])
    def test_same_result_as_single_pass(self, drop):
        t = uniform_tree(2, 4)
        votes = np.maximum(t.levels - drop, 0)
        multi = coarsen(t, votes)
        lbl, passes = coarsen_level_by_level(t, votes)
        assert lbl == multi
        assert passes >= drop  # one pass per level + fixed-point check

    def test_mixed_votes(self):
        t = random_leaf_tree(3)
        rng = np.random.default_rng(4)
        votes = np.maximum(t.levels - rng.integers(0, 4, len(t)), 0)
        multi = coarsen(t, votes)
        lbl, _ = coarsen_level_by_level(t, votes)
        assert lbl == multi

    def test_rejects_refining_votes(self):
        t = uniform_tree(2, 2)
        with pytest.raises(ValueError):
            coarsen_level_by_level(t, t.levels + 1)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2000))
def test_property_baselines_match_single_pass(seed):
    t = random_leaf_tree(seed, max_level=4)
    rng = np.random.default_rng(seed + 9)
    up = np.minimum(t.levels + rng.integers(0, 3, len(t)), 7)
    assert refine_level_by_level(t, up)[0] == refine(t, up)
    down = np.maximum(t.levels - rng.integers(0, 3, len(t)), 0)
    assert coarsen_level_by_level(t, down)[0] == coarsen(t, down)
