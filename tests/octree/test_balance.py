"""Tests for 2:1 balancing and neighbor queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import morton
from repro.octree.balance import balance, is_balanced
from repro.octree.build import build_tree, uniform_tree
from repro.octree.neighbors import (
    direction_stencil,
    face_neighbor_anchors,
    leaf_neighbors,
)
from repro.octree.refine import refine
from repro.octree.tree import Octree


def random_leaf_tree(seed, dim, max_level=5, p=0.4):
    rng = np.random.default_rng(seed)

    def pred(anchors, levels):
        return rng.random(len(levels)) < p

    return build_tree(dim, pred, max_level=max_level)


class TestNeighbors:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_direction_stencil_count(self, dim):
        assert len(direction_stencil(dim)) == 3**dim - 1

    def test_uniform_grid_neighbors(self):
        t = uniform_tree(2, 2)
        nbr = leaf_neighbors(t)
        # Interior cell: all 8 neighbors valid; corner cell: 3 valid.
        valid_counts = np.sum(nbr >= 0, axis=1)
        assert valid_counts.max() == 8
        assert valid_counts.min() == 3
        # Neighbor relation is symmetric on a uniform grid.
        for i in range(len(t)):
            for j in nbr[i]:
                if j >= 0:
                    assert i in nbr[j]

    def test_face_neighbor_anchors(self):
        t = uniform_tree(2, 1)
        out, inside = face_neighbor_anchors(t.anchors, t.levels, 2)
        assert out.shape == (4, 4, 2)
        # Each level-1 cell has exactly 2 in-cube face neighbors.
        assert np.all(inside.sum(axis=1) == 2)

    def test_neighbor_of_coarse_cell_is_fine(self):
        # Refine one quadrant only; its coarse siblings see the fine leaves.
        t = uniform_tree(2, 1)
        targets = t.levels.copy()
        targets[0] = 2
        t2 = refine(t, targets)
        nbr = leaf_neighbors(t2)
        coarse = np.nonzero(t2.levels == 1)[0]
        fine_seen = t2.levels[nbr[coarse][nbr[coarse] >= 0]]
        assert fine_seen.max() == 2


class TestBalance:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_uniform_is_balanced(self, dim):
        assert is_balanced(uniform_tree(dim, 3))

    def test_detects_violation(self):
        # One leaf at level 3 next to a level-1 leaf.
        t = uniform_tree(2, 1)
        targets = t.levels.copy()
        targets[0] = 3
        t2 = refine(t, targets)
        assert not is_balanced(t2)

    @pytest.mark.parametrize("dim", [2, 3])
    def test_balance_fixes_violation(self, dim):
        t = uniform_tree(dim, 1)
        targets = t.levels.copy()
        targets[0] = 4
        t2 = refine(t, targets)
        b = balance(t2)
        assert is_balanced(b)
        assert b.is_linear()
        assert b.coverage() == pytest.approx(1.0)
        # Balancing only refines.
        idx = t2.locate_points(b.centers().astype(np.int64))
        assert np.all(b.levels >= t2.levels[idx])

    def test_balance_idempotent(self):
        t = random_leaf_tree(0, 2)
        b = balance(t)
        assert balance(b) == b

    @pytest.mark.parametrize("dim", [2, 3])
    def test_balance_minimal_on_already_balanced(self, dim):
        t = uniform_tree(dim, 2)
        assert balance(t) == t

    def test_corner_balance_enforced(self):
        """A diagonal (corner) neighbor difference of 2 must be repaired."""
        half = 1 << (morton.MAX_DEPTH - 1)
        quarter = half // 2
        # level-2 leaf at origin corner region + coarse level-... build:
        t = uniform_tree(2, 1)
        targets = np.array([3, 1, 1, 1])
        t2 = refine(t, targets)
        b = balance(t2)
        assert is_balanced(b)
        # The diagonal quadrant (far corner) may stay at level 1 only if the
        # corner-adjacent leaves allow it; verify via the checker, plus no
        # leaf pair sharing the center point differs by more than 1:
        center = np.array([[half, half]])
        probes = np.array(
            [
                [half - 1, half - 1],
                [half, half],
                [half - 1, half],
                [half, half - 1],
            ]
        )
        idx = b.locate_points(probes)
        levs = b.levels[idx]
        assert levs.max() - levs.min() <= 1


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), dim=st.sampled_from([2, 3]))
def test_property_balance(seed, dim):
    t = random_leaf_tree(seed, dim, max_level=4 if dim == 3 else 6)
    b = balance(t)
    assert is_balanced(b)
    assert b.is_linear()
    assert b.coverage() == pytest.approx(t.coverage())
    # Only refinement happened.
    idx = t.locate_points(b.centers().astype(np.int64))
    assert np.all(b.levels >= t.levels[idx])
