"""Unit and property tests for Morton/SFC key machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import morton


def rand_octants(rng, n, dim, max_level=8):
    levels = rng.integers(0, max_level + 1, size=n)
    size = morton.cell_size(levels)
    cells = rng.integers(0, 1 << max_level, size=(n, dim))
    anchors = (cells % (1 << levels)[:, None]) * size[:, None]
    return anchors, levels


class TestDilate:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_roundtrip(self, dim):
        x = np.arange(0, 1 << morton.MAX_DEPTH, 12345, dtype=np.uint64)
        assert np.array_equal(morton._contract(morton._dilate(x, dim), dim), x)

    def test_dilate2_small(self):
        assert int(morton._dilate(np.array([0b11], np.uint64), 2)[0]) == 0b0101
        assert int(morton._dilate(np.array([0b10], np.uint64), 2)[0]) == 0b0100

    def test_dilate3_small(self):
        assert int(morton._dilate(np.array([0b11], np.uint64), 3)[0]) == 0b001001
        assert int(morton._dilate(np.array([0b101], np.uint64), 3)[0]) == 0b001000001


class TestKeys:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_decode_roundtrip(self, dim):
        rng = np.random.default_rng(0)
        anchors, levels = rand_octants(rng, 500, dim)
        k = morton.keys(anchors, levels, dim)
        a2, l2 = morton.decode_key(k, dim)
        assert np.array_equal(a2, anchors)
        assert np.array_equal(l2, levels)

    @pytest.mark.parametrize("dim", [2, 3])
    def test_preorder_ancestor_precedes(self, dim):
        rng = np.random.default_rng(1)
        anchors, levels = rand_octants(rng, 200, dim, max_level=6)
        sel = levels > 0
        pa, pl = morton.parent(anchors[sel], levels[sel])
        kp = morton.keys(pa, pl, dim)
        kc = morton.keys(anchors[sel], levels[sel], dim)
        assert np.all(kp < kc)

    def test_root_key_is_zero(self):
        k = morton.keys(np.zeros((1, 2), np.int64), np.zeros(1, np.int64), 2)
        assert int(k[0]) == 0

    @pytest.mark.parametrize("dim", [2, 3])
    def test_keys_unique_per_octant(self, dim):
        rng = np.random.default_rng(2)
        anchors, levels = rand_octants(rng, 1000, dim)
        k = morton.keys(anchors, levels, dim)
        packed = [tuple(a) + (l,) for a, l in zip(anchors.tolist(), levels.tolist())]
        assert len(set(k.tolist())) == len(set(packed))

    def test_rejects_bad_level(self):
        with pytest.raises(ValueError):
            morton.keys(np.zeros((1, 2), np.int64), np.array([morton.MAX_DEPTH + 1]), 2)

    def test_rejects_out_of_domain_anchor(self):
        with pytest.raises(ValueError):
            morton.morton(np.array([[1 << morton.MAX_DEPTH, 0]]), 2)


class TestHierarchy:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_children_are_descendants(self, dim):
        rng = np.random.default_rng(3)
        anchors, levels = rand_octants(rng, 100, dim, max_level=6)
        ca, cl = morton.children(anchors, levels, dim)
        for c in range(1 << dim):
            assert np.all(morton.is_ancestor(anchors, levels, ca[:, c], cl[:, c]))
            assert np.all(
                morton.is_ancestor(anchors, levels, ca[:, c], cl[:, c], strict=True)
            )

    @pytest.mark.parametrize("dim", [2, 3])
    def test_parent_of_child_is_self(self, dim):
        rng = np.random.default_rng(4)
        anchors, levels = rand_octants(rng, 100, dim, max_level=6)
        ca, cl = morton.children(anchors, levels, dim)
        for c in range(1 << dim):
            pa, pl = morton.parent(ca[:, c], cl[:, c])
            assert np.array_equal(pa, anchors)
            assert np.array_equal(pl, levels)

    @pytest.mark.parametrize("dim", [2, 3])
    def test_children_morton_order(self, dim):
        a = np.zeros((1, dim), np.int64)
        l = np.zeros(1, np.int64)
        ca, cl = morton.children(a, l, dim)
        k = morton.keys(ca[0], cl[0], dim)
        assert np.all(k[:-1] < k[1:])

    @pytest.mark.parametrize("dim", [2, 3])
    def test_child_index_roundtrip(self, dim):
        rng = np.random.default_rng(5)
        anchors, levels = rand_octants(rng, 100, dim, max_level=6)
        ca, cl = morton.children(anchors, levels, dim)
        for c in range(1 << dim):
            idx = morton.child_index(ca[:, c], cl[:, c], dim)
            assert np.all(idx == c)

    def test_is_ancestor_not_strict_includes_self(self):
        a = np.array([[0, 0]])
        l = np.array([3])
        assert morton.is_ancestor(a, l, a, l)[0]
        assert not morton.is_ancestor(a, l, a, l, strict=True)[0]

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            morton.parent(np.zeros((1, 2), np.int64), np.zeros(1, np.int64))

    def test_cannot_refine_past_max_depth(self):
        with pytest.raises(ValueError):
            morton.children(
                np.zeros((1, 2), np.int64), np.array([morton.MAX_DEPTH]), 2
            )

    @pytest.mark.parametrize("dim", [2, 3])
    def test_disjoint_siblings_do_not_overlap(self, dim):
        a = np.zeros((1, dim), np.int64)
        ca, cl = morton.children(a, np.zeros(1, np.int64), dim)
        for i in range(1 << dim):
            for j in range(1 << dim):
                ov = morton.overlaps(ca[0, i], cl[0, i], ca[0, j], cl[0, j])
                assert bool(ov) == (i == j)


class TestDescendantRange:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_range_contains_exactly_descendants(self, dim):
        rng = np.random.default_rng(6)
        anchors, levels = rand_octants(rng, 50, dim, max_level=4)
        lo, hi = morton.descendant_key_range(anchors, levels, dim)
        probes_a, probes_l = rand_octants(rng, 300, dim, max_level=6)
        pk = morton.keys(probes_a, probes_l, dim)
        for i in range(len(levels)):
            in_range = (pk >= lo[i]) & (pk < hi[i])
            is_desc = morton.is_ancestor(anchors[i], levels[i], probes_a, probes_l)
            assert np.array_equal(in_range, is_desc)


@settings(max_examples=60, deadline=None)
@given(
    data=st.data(),
    dim=st.sampled_from([2, 3]),
)
def test_key_order_matches_hierarchy_property(data, dim):
    """Pre-order hierarchical property: ancestor < descendant; SFC order total."""
    lev = data.draw(st.integers(min_value=1, max_value=6))
    cell = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << lev) - 1),
            min_size=dim,
            max_size=dim,
        )
    )
    size = int(morton.cell_size(np.array([lev]))[0])
    anchor = np.array(cell) * size
    k_self = morton.keys(anchor[None], np.array([lev]), dim)[0]
    pa, pl = morton.parent(anchor[None], np.array([lev]))
    k_parent = morton.keys(pa, pl, dim)[0]
    assert k_parent < k_self
    lo, hi = morton.descendant_key_range(pa, pl, dim)
    assert lo[0] <= k_self < hi[0]
