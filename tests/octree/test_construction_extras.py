"""Tests for point-cloud construction and complete_region."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import morton
from repro.octree.build import complete_region, tree_from_points, uniform_tree
from repro.octree.tree import Octree


class TestTreeFromPoints:
    def test_leaf_occupancy_bound(self):
        rng = np.random.default_rng(0)
        pts = rng.random((500, 2))
        t = tree_from_points(2, pts, max_points_per_leaf=12, max_level=10)
        assert t.is_linear()
        grid = (pts * (1 << morton.MAX_DEPTH)).astype(np.int64)
        idx = t.locate_points(grid)
        counts = np.bincount(idx, minlength=len(t))
        assert counts.max() <= 12

    def test_clustered_points_refine_locally(self):
        rng = np.random.default_rng(1)
        cluster = rng.random((400, 2)) * 0.1 + 0.05  # dense corner cluster
        t = tree_from_points(2, cluster, max_points_per_leaf=5, max_level=12)
        # Fine levels only near the cluster.
        fine = t.levels >= t.levels.max() - 1
        centers = t.centers() / (1 << morton.MAX_DEPTH)
        assert np.all(np.linalg.norm(centers[fine] - 0.1, axis=1) < 0.25)
        assert t.coverage() == pytest.approx(1.0)

    def test_3d(self):
        rng = np.random.default_rng(2)
        pts = rng.random((200, 3))
        t = tree_from_points(3, pts, max_points_per_leaf=20, max_level=6)
        assert t.is_linear()
        assert t.coverage() == pytest.approx(1.0)

    def test_rejects_bad_points(self):
        with pytest.raises(ValueError):
            tree_from_points(2, np.array([[1.5, 0.2]]))
        with pytest.raises(ValueError):
            tree_from_points(2, np.array([0.5, 0.5]))

    def test_max_level_cap(self):
        pts = np.full((50, 2), 0.3)  # coincident points cannot be separated
        t = tree_from_points(2, pts, max_points_per_leaf=1, max_level=5)
        assert t.levels.max() == 5


class TestCompleteRegion:
    def test_same_level_endpoints(self):
        u = uniform_tree(2, 2)
        cr = complete_region(u.anchors[0], 2, u.anchors[-1], 2, 2)
        assert cr.is_linear()
        # Region + both endpoints partitions the cube.
        total = cr.merged(
            Octree(
                np.stack([u.anchors[0], u.anchors[-1]]),
                np.array([2, 2]),
                2,
            )
        )
        assert total.is_linear()
        assert total.coverage() == pytest.approx(1.0)

    def test_adjacent_octants_empty_region(self):
        u = uniform_tree(2, 3)
        cr = complete_region(u.anchors[0], 3, u.anchors[1], 3, 2)
        assert len(cr) == 0

    def test_mixed_levels(self):
        half = 1 << (morton.MAX_DEPTH - 1)
        quarter = half // 2
        a = np.array([0, 0])  # level-2 first cell
        b = np.array([half, half])  # level-1 last quadrant
        cr = complete_region(a, 2, b, 1, 2)
        total = cr.merged(Octree(np.stack([a, b]), np.array([2, 1]), 2))
        assert total.is_linear()
        assert total.coverage() == pytest.approx(1.0)

    def test_rejects_wrong_order(self):
        u = uniform_tree(2, 2)
        with pytest.raises(ValueError):
            complete_region(u.anchors[-1], 2, u.anchors[0], 2, 2)

    def test_minimality(self):
        """Every emitted octant's parent would overlap an endpoint or leave
        the interval, so the cover is minimal."""
        u = uniform_tree(2, 3)
        a, b = u.anchors[5], u.anchors[40]
        cr = complete_region(a, 3, b, 3, 2)
        ka = morton.keys(a[None], np.array([3]), 2)[0]
        kb = morton.keys(b[None], np.array([3]), 2)[0]
        for i in range(len(cr)):
            if cr.levels[i] == 0:
                continue
            pa, pl = morton.parent(cr.anchors[i], cr.levels[i])
            lo, hi = morton.descendant_key_range(pa[None], pl[None], 2)
            parent_inside = (
                lo[0] > ka
                and hi[0] <= kb
                and not morton.overlaps(pa, pl[()], a, 3)
                and not morton.overlaps(pa, pl[()], b, 3)
            )
            assert not parent_inside


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_complete_region_partition(seed):
    """region + endpoints always tile the span exactly, at random levels."""
    rng = np.random.default_rng(seed)
    u = uniform_tree(2, 3)
    i, j = sorted(rng.choice(len(u), size=2, replace=False))
    if i == j:
        return
    a, b = u.anchors[i], u.anchors[j]
    cr = complete_region(a, 3, b, 3, 2)
    total = cr.merged(Octree(np.stack([a, b]), np.array([3, 3]), 2))
    assert total.is_linear()
    # Volume = everything from a to b inclusive.
    expect = (j - i + 1) * (1 / 64)
    assert total.coverage() == pytest.approx(expect)
