"""Property-based octree invariants.

Randomized structural properties of the SFC/octree layer:

* Morton key encode/decode round-trips exactly at every level and dimension.
* Hilbert ranks invert (``hilbert_index_inverse`` is a true inverse).
* ``refine`` followed by ``coarsen`` voting the original levels is the
  identity — multi-level refinement emits complete descendant blocks and
  coarsening's consensus rule merges exactly those blocks back.
* ``balance`` is idempotent, and ``par_balance`` preserves (and restores)
  the 2:1 condition, matching the serial result on the gathered union.

Uses hypothesis when available; otherwise each property degrades to a
deterministic seeded sweep so the suite runs in minimal environments.
"""

import numpy as np
import pytest

from repro.mpi.comm import run_spmd
from repro.octree import morton
from repro.octree.balance import balance, is_balanced
from repro.octree.build import build_tree, uniform_tree
from repro.octree.coarsen import coarsen
from repro.octree.hilbert import hilbert_index_inverse, hilbert_index_single
from repro.octree.parbalance import par_balance
from repro.octree.partition import scatter_tree
from repro.octree.refine import refine
from repro.octree.tree import Octree

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - container always ships hypothesis
    HAVE_HYPOTHESIS = False


def seed_cases(n=20, max_seed=100_000):
    """Decorator: ``fn(seed)`` runs over random seeds — drawn by hypothesis
    when installed, else a fixed deterministic sweep of ``n`` seeds."""
    if HAVE_HYPOTHESIS:

        def deco(fn):
            return settings(max_examples=n, deadline=None)(
                given(seed=st.integers(0, max_seed))(fn)
            )

        return deco

    sweep = np.random.default_rng(0).integers(0, max_seed, size=n)

    def deco(fn):
        return pytest.mark.parametrize("seed", [int(s) for s in sweep])(fn)

    return deco


def random_tree(rng, dim=2, max_level=5):
    def pred(anchors, levels):
        return rng.random(len(levels)) < 0.4

    return build_tree(dim, pred, max_level=max_level, min_level=1)


# ---------------------------------------------------------------- SFC keys


@seed_cases(n=25)
def test_morton_key_roundtrip(seed):
    rng = np.random.default_rng(seed)
    dim = 2 + seed % 2
    level = int(rng.integers(0, morton.MAX_DEPTH + 1))
    size = int(morton.cell_size(level))
    n_cells = (1 << morton.MAX_DEPTH) // size
    anchors = rng.integers(0, n_cells, size=(32, dim)) * size
    levels = np.full(32, level, dtype=np.int64)
    k = morton.keys(anchors, levels, dim)
    a_back, l_back = morton.decode_key(k, dim)
    np.testing.assert_array_equal(a_back, anchors)
    np.testing.assert_array_equal(l_back, levels)


@seed_cases(n=25)
def test_hilbert_index_roundtrip(seed):
    rng = np.random.default_rng(seed)
    dim = 2 + seed % 2
    level = int(rng.integers(1, 11))
    for _ in range(16):
        cell = rng.integers(0, 1 << level, size=dim)
        h = hilbert_index_single(cell, level, dim)
        np.testing.assert_array_equal(
            hilbert_index_inverse(h, level, dim), cell
        )


@seed_cases(n=10)
def test_hilbert_rank_is_bijection(seed):
    """All cells of a small grid map to distinct ranks covering the range."""
    rng = np.random.default_rng(seed)
    dim = 2 + seed % 2
    level = int(rng.integers(1, 4 if dim == 3 else 5))
    n = 1 << level
    cells = np.stack(
        np.meshgrid(*[np.arange(n)] * dim, indexing="ij"), axis=-1
    ).reshape(-1, dim)
    ranks = {hilbert_index_single(c, level, dim) for c in cells}
    assert ranks == set(range(n**dim))


# ------------------------------------------------------- refine <-> coarsen


@seed_cases(n=15)
def test_refine_then_coarsen_is_identity(seed):
    rng = np.random.default_rng(seed)
    dim = 2 + seed % 2
    t = random_tree(rng, dim=dim, max_level=4 if dim == 3 else 5)
    targets = t.levels + rng.integers(0, 3, size=len(t))
    refined = refine(t, targets)
    assert refined.is_linear()
    # Vote each refined leaf back to the level of its originating leaf.
    orig = t.locate_points(refined.centers().astype(np.int64))
    votes = t.levels[orig]
    assert np.all(votes <= refined.levels)
    assert coarsen(refined, votes) == t


@seed_cases(n=15)
def test_refine_preserves_volume(seed):
    rng = np.random.default_rng(seed)
    dim = 2 + seed % 2
    t = random_tree(rng, dim=dim, max_level=4)
    targets = t.levels + rng.integers(0, 3, size=len(t))
    refined = refine(t, targets)
    assert refined.volumes().sum() == pytest.approx(t.volumes().sum())


# ------------------------------------------------------------- 2:1 balance


@seed_cases(n=10)
def test_balance_idempotent(seed):
    rng = np.random.default_rng(seed)
    t = random_tree(rng, dim=2, max_level=6)
    b = balance(t)
    assert is_balanced(b)
    assert balance(b) == b


@seed_cases(n=8)
def test_par_balance_restores_and_preserves_2to1(seed):
    rng = np.random.default_rng(seed)
    nprocs = int(rng.integers(2, 4))
    t = uniform_tree(2, 2)
    targets = t.levels.copy()
    targets[rng.integers(0, len(t))] = int(rng.integers(4, 7))
    unbalanced = refine(t, targets)

    parts = scatter_tree(unbalanced, nprocs)
    outs = run_spmd(nprocs, lambda c: par_balance(c, parts[c.rank]))
    union = Octree(
        np.concatenate([o.anchors for o in outs]),
        np.concatenate([o.levels for o in outs]),
        t.dim,
    )
    assert is_balanced(union)
    assert union == balance(unbalanced)

    # Preservation: running par_balance again on the balanced partition is
    # the identity on every rank's chunk.
    parts2 = scatter_tree(union, nprocs)
    outs2 = run_spmd(nprocs, lambda c: par_balance(c, parts2[c.rank]))
    for before, after in zip(parts2, outs2):
        assert after == before
