"""Tests for Hilbert-curve ordering and partition locality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import morton
from repro.octree.build import build_tree, uniform_tree
from repro.octree.hilbert import (
    chunk_surface_ratio,
    hilbert_index_single,
    hilbert_keys,
    hilbert_sort,
)


class TestHilbertCurve:
    @pytest.mark.parametrize("dim,level", [(2, 2), (2, 3), (2, 4), (3, 2)])
    def test_bijection(self, dim, level):
        n = 1 << level
        cells = np.stack(
            np.meshgrid(*([np.arange(n)] * dim), indexing="ij"), axis=-1
        ).reshape(-1, dim)
        idx = [hilbert_index_single(c, level, dim) for c in cells]
        assert sorted(idx) == list(range(n**dim))

    @pytest.mark.parametrize("dim,level", [(2, 3), (2, 4), (3, 2)])
    def test_consecutive_cells_are_face_adjacent(self, dim, level):
        """The defining Hilbert property: the curve moves one face at a time
        (Morton, by contrast, jumps)."""
        n = 1 << level
        cells = np.stack(
            np.meshgrid(*([np.arange(n)] * dim), indexing="ij"), axis=-1
        ).reshape(-1, dim)
        by_rank = {hilbert_index_single(c, level, dim): c for c in cells}
        for h in range(n**dim - 1):
            step = np.abs(by_rank[h] - by_rank[h + 1]).sum()
            assert step == 1

    def test_morton_jumps_hilbert_does_not(self):
        """Contrast test: Morton's max step is large; Hilbert's is 1."""
        level, dim = 4, 2
        n = 1 << level
        cells = np.stack(
            np.meshgrid(np.arange(n), np.arange(n), indexing="ij"), axis=-1
        ).reshape(-1, 2)
        m_rank = {}
        for c in cells:
            m = morton.morton(
                (c * (1 << (morton.MAX_DEPTH - level)))[None], 2
            )[0]
            m_rank[int(m)] = c
        m_sorted = [m_rank[k] for k in sorted(m_rank)]
        m_steps = [
            int(np.abs(a - b).sum()) for a, b in zip(m_sorted, m_sorted[1:])
        ]
        assert max(m_steps) > 1  # Morton jumps


class TestHilbertKeys:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_ancestor_precedes_descendants(self, dim):
        rng = np.random.default_rng(0)
        t = uniform_tree(dim, 3)
        k = hilbert_keys(t.anchors, t.levels, dim)
        # Parent keys precede all their children's keys.
        pa, pl = morton.parent(t.anchors, t.levels)
        kp = hilbert_keys(pa, pl, dim)
        assert np.all(kp < k)

    def test_keys_unique(self):
        t = uniform_tree(2, 4)
        k = hilbert_keys(t.anchors, t.levels, 2)
        assert len(np.unique(k)) == len(t)

    def test_sort_is_permutation(self):
        rng = np.random.default_rng(1)

        def pred(anchors, levels):
            return rng.random(len(levels)) < 0.5

        t = build_tree(2, pred, max_level=4, min_level=1)
        perm = hilbert_sort(t.anchors, t.levels, 2)
        assert sorted(perm.tolist()) == list(range(len(t)))


class TestPartitionQuality:
    @pytest.mark.parametrize("nparts", [4, 8])
    def test_hilbert_at_least_as_local_as_morton(self, nparts):
        """Average cross-partition adjacency (ghost-traffic proxy) under
        Hilbert ordering does not exceed Morton's on a uniform grid."""
        t = uniform_tree(2, 5)
        r_m = chunk_surface_ratio(t.anchors, t.levels, 2, nparts, "morton")
        r_h = chunk_surface_ratio(t.anchors, t.levels, 2, nparts, "hilbert")
        assert r_h <= r_m * 1.05  # allow tiny noise; typically strictly less

    def test_rejects_unknown_order(self):
        t = uniform_tree(2, 2)
        with pytest.raises(ValueError):
            chunk_surface_ratio(t.anchors, t.levels, 2, 2, "zorder")


@settings(max_examples=20, deadline=None)
@given(
    dim=st.sampled_from([2, 3]),
    seed=st.integers(0, 1000),
)
def test_property_hilbert_key_hierarchy(dim, seed):
    """Random octants: descendants always key after their ancestors."""
    rng = np.random.default_rng(seed)
    level = int(rng.integers(1, 5))
    cell = rng.integers(0, 1 << level, size=dim)
    anchor = cell * (1 << (morton.MAX_DEPTH - level))
    k_self = hilbert_keys(anchor[None], np.array([level]), dim)[0]
    ca, cl = morton.children(anchor, np.int64(level), dim)
    kids = hilbert_keys(ca, cl, dim)
    assert np.all(kids > k_self)
