"""Tests for multi-level refine (Alg. 5) and coarsen (Alg. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import morton
from repro.octree.build import build_tree, uniform_tree
from repro.octree.coarsen import coarsen, coarsen_recursive
from repro.octree.domain import BoxDomain
from repro.octree.refine import refine, refine_recursive
from repro.octree.tree import Octree


def random_leaf_tree(seed, dim, max_level=4, p=0.5):
    rng = np.random.default_rng(seed)

    def pred(anchors, levels):
        return rng.random(len(levels)) < p

    return build_tree(dim, pred, max_level=max_level)


class TestRefine:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_noop(self, dim):
        t = random_leaf_tree(0, dim)
        out = refine(t, t.levels)
        assert out == t

    @pytest.mark.parametrize("dim", [2, 3])
    def test_uniform_refine_one_level(self, dim):
        t = uniform_tree(dim, 2)
        out = refine(t, t.levels + 1)
        assert out == uniform_tree(dim, 3)

    @pytest.mark.parametrize("dim", [2, 3])
    def test_multi_level_jump(self, dim):
        t = Octree.root(dim)
        out = refine(t, np.array([3]))
        assert out == uniform_tree(dim, 3)

    def test_mixed_jumps_sorted_and_complete(self):
        t = uniform_tree(2, 1)
        targets = np.array([1, 3, 2, 4])
        out = refine(t, targets)
        assert out.is_linear()
        assert out.coverage() == pytest.approx(1.0)
        assert set(np.unique(out.levels)) == {1, 3, 2, 4}

    def test_rejects_coarsening_targets(self):
        t = uniform_tree(2, 2)
        with pytest.raises(ValueError):
            refine(t, t.levels - 1)

    def test_domain_discards_void_descendants(self):
        dom = BoxDomain([0.0, 0.0], [0.26, 0.26])
        t = uniform_tree(2, 2, domain=dom)  # cells covering [0,.25]^2 + cut cells
        out = refine(t, t.levels + 2, domain=dom)
        assert out.is_linear()
        assert np.all(dom.retain(out.anchors, out.levels))
        # Refinement cannot increase covered volume.
        assert out.coverage() <= t.coverage() + 1e-15

    @pytest.mark.parametrize("dim", [2, 3])
    def test_matches_recursive_reference(self, dim):
        t = random_leaf_tree(1, dim, max_level=3)
        rng = np.random.default_rng(2)
        targets = t.levels + rng.integers(0, 3, len(t))
        out = refine(t, targets)
        ref = refine_recursive(t, targets)
        assert out == ref

    def test_count_formula(self):
        t = Octree.root(3)
        out = refine(t, np.array([2]))
        assert len(out) == 8**2


class TestCoarsen:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_noop_votes(self, dim):
        t = random_leaf_tree(3, dim)
        out = coarsen(t, t.levels)
        assert out == t

    @pytest.mark.parametrize("dim", [2, 3])
    def test_full_collapse_to_root(self, dim):
        t = uniform_tree(dim, 3)
        out = coarsen(t, np.zeros(len(t), np.int64))
        assert len(out) == 1
        assert out.levels[0] == 0

    @pytest.mark.parametrize("dim", [2, 3])
    def test_multi_level_collapse(self, dim):
        t = uniform_tree(dim, 3)
        out = coarsen(t, np.ones(len(t), np.int64))
        assert out == uniform_tree(dim, 1)

    def test_single_dissent_blocks_whole_ancestor(self):
        """One leaf voting to stay fine prevents its ancestors from forming,
        but does not block disjoint subtrees (consensus requirement (i))."""
        t = uniform_tree(2, 2)
        votes = np.zeros(len(t), np.int64)
        votes[0] = 2  # first leaf refuses any coarsening
        out = coarsen(t, votes)
        # The quadrant containing leaf 0 stays at level 2; consensus cannot
        # produce the root, so the other three quadrants coarsen to level 1.
        assert out.is_linear()
        assert out.coverage() == pytest.approx(1.0)
        assert np.sum(out.levels == 2) == 4
        assert np.sum(out.levels == 1) == 3

    def test_coarsest_ancestor_requirement(self):
        """Requirement (ii): output is the coarsest acceptable ancestor."""
        t = uniform_tree(2, 3)
        votes = np.full(len(t), 1, np.int64)
        out = coarsen(t, votes)
        assert np.all(out.levels == 1)

    def test_incomplete_tree_coarsens_partial_families(self):
        dom = BoxDomain([0.0, 0.0], [0.4, 0.4])
        t = uniform_tree(2, 3, domain=dom)
        out = coarsen(t, np.zeros(len(t), np.int64))
        # Everything collapses to the root even though the input is incomplete.
        assert len(out) == 1
        assert out.levels[0] == 0

    def test_rejects_votes_finer_than_leaf(self):
        t = uniform_tree(2, 1)
        with pytest.raises(ValueError):
            coarsen(t, t.levels + 1)

    @pytest.mark.parametrize("dim", [2, 3])
    def test_matches_recursive_reference(self, dim):
        t = random_leaf_tree(4, dim, max_level=3)
        rng = np.random.default_rng(5)
        votes = np.maximum(t.levels - rng.integers(0, 4, len(t)), 0)
        out = coarsen(t, votes)
        ref = coarsen_recursive(t, votes)
        assert out == ref

    @pytest.mark.parametrize("dim", [2, 3])
    def test_refine_then_coarsen_roundtrip(self, dim):
        t = random_leaf_tree(6, dim, max_level=3)
        fine = refine(t, np.minimum(t.levels + 2, morton.MAX_DEPTH))
        # Vote each fine leaf back to its original ancestor's level.
        orig_idx = t.locate_points(fine.centers().astype(np.int64))
        votes = t.levels[orig_idx]
        back = coarsen(fine, votes)
        assert back == t


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), dim=st.sampled_from([2, 3]))
def test_property_coarsen_consensus(seed, dim):
    """Vectorized coarsen == literal Algorithm 6 on random trees and votes."""
    t = random_leaf_tree(seed, dim, max_level=3, p=0.5)
    rng = np.random.default_rng(seed + 1)
    votes = np.maximum(t.levels - rng.integers(0, 4, len(t)), 0)
    out = coarsen(t, votes)
    ref = coarsen_recursive(t, votes)
    assert out == ref
    assert out.is_linear()
    assert out.coverage() == pytest.approx(t.coverage())
    # No output octant is finer than its input leaves, and every vote is
    # respected: the ancestor containing each input leaf has level >= vote.
    idx = out.locate_points(t.centers().astype(np.int64))
    assert np.all(out.levels[idx] >= votes)
    assert np.all(out.levels[idx] <= t.levels)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), dim=st.sampled_from([2, 3]))
def test_property_refine_matches_reference(seed, dim):
    t = random_leaf_tree(seed, dim, max_level=3, p=0.4)
    rng = np.random.default_rng(seed + 7)
    targets = np.minimum(t.levels + rng.integers(0, 3, len(t)), morton.MAX_DEPTH)
    out = refine(t, targets)
    assert out == refine_recursive(t, targets)
    assert out.is_linear()
    assert out.coverage() == pytest.approx(t.coverage())
