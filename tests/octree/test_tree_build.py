"""Tests for the Octree container, construction, and domains."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import morton
from repro.octree.build import build_tree, tree_from_function, uniform_tree
from repro.octree.domain import BoxDomain, ComplementDomain, SphereDomain
from repro.octree.tree import Octree


def random_leaf_tree(rng, dim, max_level=5, p_refine=0.5):
    """Random linear tree by stochastic top-down refinement."""

    def pred(anchors, levels):
        return rng.random(len(levels)) < p_refine

    return build_tree(dim, pred, max_level=max_level)


class TestOctreeBasics:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_root(self, dim):
        t = Octree.root(dim)
        assert len(t) == 1
        assert t.is_linear()
        assert t.coverage() == pytest.approx(1.0)

    def test_constructor_sorts(self):
        a = np.array([[0, 0], [1 << (morton.MAX_DEPTH - 1), 0], [0, 0]])
        l = np.array([1, 1, 3])
        t = Octree(a, l, 2)
        assert t.is_sorted()

    @pytest.mark.parametrize("dim", [2, 3])
    def test_uniform_tree_counts(self, dim):
        for lev in range(0, 4):
            t = uniform_tree(dim, lev)
            assert len(t) == (1 << (dim * lev))
            assert t.is_linear()
            assert np.all(t.levels == lev)
            assert t.coverage() == pytest.approx(1.0)

    @pytest.mark.parametrize("dim", [2, 3])
    def test_random_build_is_linear_and_complete(self, dim):
        rng = np.random.default_rng(0)
        t = random_leaf_tree(rng, dim)
        assert t.is_linear()
        assert t.coverage() == pytest.approx(1.0)

    def test_eq(self):
        t = uniform_tree(2, 2)
        assert t == t.copy()
        assert t != uniform_tree(2, 3)


class TestLinearize:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_removes_duplicates(self, dim):
        t = uniform_tree(dim, 2)
        dup = t.merged(t)
        lin = dup.linearize()
        assert lin == t

    @pytest.mark.parametrize("dim", [2, 3])
    def test_removes_ancestors_keeps_finest(self, dim):
        t = uniform_tree(dim, 3)
        with_root = t.merged(Octree.root(dim))
        lin = with_root.linearize()
        assert lin == t

    def test_chain_of_ancestors(self):
        # root, a child, a grandchild along the same SFC path
        anchors = np.zeros((3, 2), np.int64)
        levels = np.array([0, 1, 2])
        t = Octree(anchors, levels, 2).linearize()
        assert len(t) == 1
        assert t.levels[0] == 2

    @pytest.mark.parametrize("dim", [2, 3])
    def test_idempotent(self, dim):
        rng = np.random.default_rng(1)
        t = random_leaf_tree(rng, dim)
        merged = t.merged(uniform_tree(dim, 1))
        once = merged.linearize()
        twice = once.linearize()
        assert once == twice
        assert once.is_linear()


class TestLocate:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_locate_centers(self, dim):
        rng = np.random.default_rng(2)
        t = random_leaf_tree(rng, dim)
        centers = t.centers().astype(np.int64)
        idx = t.locate_points(centers)
        assert np.array_equal(idx, np.arange(len(t)))

    @pytest.mark.parametrize("dim", [2, 3])
    def test_locate_anchors(self, dim):
        rng = np.random.default_rng(3)
        t = random_leaf_tree(rng, dim)
        idx = t.locate_points(t.anchors)
        assert np.array_equal(idx, np.arange(len(t)))

    def test_locate_uncovered_returns_minus_one(self):
        # Incomplete tree: only the first quadrant at level 1.
        half = 1 << (morton.MAX_DEPTH - 1)
        t = Octree(np.array([[0, 0]]), np.array([1]), 2)
        assert t.locate_points(np.array([[half, half]]))[0] == -1
        assert t.locate_points(np.array([[10, 10]]))[0] == 0

    def test_find_exact(self):
        t = uniform_tree(2, 2)
        idx = t.find(t.anchors, t.levels)
        assert np.array_equal(idx, np.arange(len(t)))
        missing = t.find(t.anchors[:1], np.array([3]))
        assert missing[0] == -1


class TestDomains:
    def test_box_domain_incomplete(self):
        dom = BoxDomain([0.0, 0.0], [0.5, 0.5])
        t = uniform_tree(2, 2, domain=dom)
        # Only the 4 level-2 cells in the lower-left quadrant survive.
        assert len(t) == 4
        assert t.coverage() == pytest.approx(0.25)

    def test_sphere_domain_conservative(self):
        dom = SphereDomain([0.5, 0.5], 0.25)
        t = uniform_tree(2, 4, domain=dom)
        assert 0 < len(t) < 16**2
        # All retained cells intersect the disk (conservative box test).
        centers = t.centers() / (1 << morton.MAX_DEPTH)
        half = t.sizes() / (1 << morton.MAX_DEPTH) / 2
        dist = np.linalg.norm(centers - 0.5, axis=1)
        assert np.all(dist <= 0.25 + np.sqrt(2) * half + 1e-12)

    def test_complement_domain(self):
        hole = SphereDomain([0.5, 0.5], 0.2)
        dom = ComplementDomain(hole)
        t = uniform_tree(2, 4, domain=dom)
        centers = t.centers() / (1 << morton.MAX_DEPTH)
        dist = np.linalg.norm(centers - 0.5, axis=1)
        # No cell fully inside the hole survives.
        half = t.sizes()[0] / (1 << morton.MAX_DEPTH) / 2
        assert np.all(dist > 0.2 - np.sqrt(2) * half - 1e-12)

    def test_tree_from_function_refines_interface(self):
        def phi(x):
            return np.linalg.norm(x - 0.5, axis=1) - 0.3

        t = tree_from_function(2, phi, max_level=6, min_level=2, threshold=0.05)
        assert t.is_linear()
        assert t.coverage() == pytest.approx(1.0)
        # The finest cells hug the circle; coarse cells exist away from it.
        assert t.levels.max() == 6
        assert t.levels.min() == 2
        fine = t.levels == 6
        centers = t.centers()[fine] / (1 << morton.MAX_DEPTH)
        d = np.abs(np.linalg.norm(centers - 0.5, axis=1) - 0.3)
        # Fine cells sit within a cell-diagonal reach of the interface.
        assert np.all(d < 0.1)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), dim=st.sampled_from([2, 3]))
def test_property_build_always_linear_complete(seed, dim):
    rng = np.random.default_rng(seed)
    t = random_leaf_tree(rng, dim, max_level=4, p_refine=0.4)
    assert t.is_linear()
    assert t.coverage() == pytest.approx(1.0)
    # Volumes partition the cube: locate a random point uniquely.
    pts = rng.integers(0, 1 << morton.MAX_DEPTH, size=(20, dim))
    idx = t.locate_points(pts)
    assert np.all(idx >= 0)
