"""Tests for distributed octree algorithms: partition, overlap search,
parallel coarsening (Algorithm 7), distributed tree sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.comm import run_spmd
from repro.octree import morton
from repro.octree.build import build_tree, uniform_tree
from repro.octree.coarsen import coarsen
from repro.octree.overlap import (
    local_overlap_range,
    overlapping_ranks,
    overlapping_ranks_bsearch,
    sq_below,
)
from repro.octree.parcoarsen import par_coarsen
from repro.octree.partition import (
    distributed_sort_tree,
    gather_tree,
    partition_endpoints,
    repartition,
    scatter_tree,
)
from repro.octree.tree import Octree


def random_leaf_tree(seed, dim, max_level=4, p=0.5):
    rng = np.random.default_rng(seed)

    def pred(anchors, levels):
        return rng.random(len(levels)) < p

    return build_tree(dim, pred, max_level=max_level)


class TestScatterGather:
    def test_scatter_covers_all(self):
        t = uniform_tree(2, 3)
        parts = scatter_tree(t, 4)
        assert sum(len(p) for p in parts) == len(t)

    def test_gather_roundtrip(self):
        t = random_leaf_tree(0, 2)
        parts = scatter_tree(t, 3)

        def fn(comm):
            return gather_tree(comm, parts[comm.rank])

        outs = run_spmd(3, fn)
        for g in outs:
            assert g == t

    def test_partition_endpoints(self):
        t = uniform_tree(2, 2)
        parts = scatter_tree(t, 4)

        def fn(comm):
            lows, highs = partition_endpoints(comm, parts[comm.rank])
            return (lows, highs)

        lows, highs = run_spmd(4, fn)[0]
        for r in range(4):
            assert np.array_equal(lows[r][0], parts[r].anchors[0])
            assert np.array_equal(highs[r][0], parts[r].anchors[-1])


class TestRepartition:
    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_unweighted_balances(self, nprocs):
        t = random_leaf_tree(1, 2)
        parts = scatter_tree(t, nprocs)
        # Unbalance: give everything to rank 0.
        lop = [t] + [Octree.empty(2) for _ in range(nprocs - 1)]

        def fn(comm):
            out = repartition(comm, lop[comm.rank])
            return out

        outs = run_spmd(nprocs, fn)
        sizes = [len(o) for o in outs]
        assert sum(sizes) == len(t)
        assert max(sizes) - min(sizes) <= 1
        merged = Octree(
            np.concatenate([o.anchors for o in outs]),
            np.concatenate([o.levels for o in outs]),
            2,
            presorted=True,
        )
        assert merged == t

    def test_weighted(self):
        t = uniform_tree(2, 3)  # 64 leaves
        parts = scatter_tree(t, 2)
        # Make the first 16 leaves 10x heavier.
        weights = [np.ones(len(p)) for p in parts]
        weights[0][:16] = 10.0

        def fn(comm):
            return len(repartition(comm, parts[comm.rank], weights[comm.rank]))

        sizes = run_spmd(2, fn)
        assert sum(sizes) == 64
        # Rank 0 takes far fewer elements because its head is heavy.
        assert sizes[0] < sizes[1]

    def test_payload_travels(self):
        t = uniform_tree(2, 2)
        parts = scatter_tree(t, 2)
        payloads = [np.arange(len(parts[0])), np.arange(len(parts[1])) + 100]

        def fn(comm):
            out, p = repartition(
                comm, parts[comm.rank], payload=payloads[comm.rank]
            )
            return (out, p)

        outs = run_spmd(2, fn)
        allp = np.concatenate([o[1] for o in outs])
        expect = np.concatenate(payloads)
        assert np.array_equal(np.sort(allp), np.sort(expect))


class TestOverlapSearch:
    def test_sq_below_basic(self):
        root = (np.zeros(2, np.int64), 0)
        half = 1 << (morton.MAX_DEPTH - 1)
        q0 = (np.zeros(2, np.int64), 1)
        q3 = (np.array([half, half]), 1)
        assert sq_below(root, q3, 2)  # ancestor overlap
        assert sq_below(q3, root, 2)  # overlap is symmetric in ⊑
        assert sq_below(q0, q3, 2)  # plain SFC order
        assert not sq_below(q3, q0, 2)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bsearch_equals_bruteforce(self, seed):
        g = random_leaf_tree(seed, 2)
        h = random_leaf_tree(seed + 100, 2)
        gp = scatter_tree(g, 3)
        hp = scatter_tree(h, 5)
        h_lows = [(p.anchors[0], int(p.levels[0])) if len(p) else None for p in hp]
        h_highs = [(p.anchors[-1], int(p.levels[-1])) if len(p) else None for p in hp]
        for p in gp:
            if not len(p):
                continue
            my_lo = (p.anchors[0], int(p.levels[0]))
            my_hi = (p.anchors[-1], int(p.levels[-1]))
            brute = overlapping_ranks(my_lo, my_hi, h_lows, h_highs, 2)
            fast = overlapping_ranks_bsearch(my_lo, my_hi, h_lows, h_highs, 2)
            assert brute == fast

    @pytest.mark.parametrize("seed", [0, 5])
    def test_overlap_detection_complete(self, seed):
        """Every (g-chunk, h-chunk) pair with an actual octant overlap is
        reported by the endpoint-interval search."""
        g = random_leaf_tree(seed, 2, max_level=3)
        h = random_leaf_tree(seed + 50, 2, max_level=3)
        gp, hp = scatter_tree(g, 2), scatter_tree(h, 3)
        h_lows = [(p.anchors[0], int(p.levels[0])) if len(p) else None for p in hp]
        h_highs = [(p.anchors[-1], int(p.levels[-1])) if len(p) else None for p in hp]
        for p in gp:
            if not len(p):
                continue
            my_lo = (p.anchors[0], int(p.levels[0]))
            my_hi = (p.anchors[-1], int(p.levels[-1]))
            reported = set(overlapping_ranks(my_lo, my_hi, h_lows, h_highs, 2))
            for q, hq in enumerate(hp):
                actual = False
                for i in range(len(p)):
                    ov = morton.overlaps(
                        p.anchors[i], p.levels[i], hq.anchors, hq.levels
                    )
                    if np.any(ov):
                        actual = True
                        break
                if actual:
                    assert q in reported

    def test_local_overlap_range(self):
        t = uniform_tree(2, 3)
        # Query: a level-1 octant should overlap exactly 16 level-3 leaves.
        half = 1 << (morton.MAX_DEPTH - 1)
        s, e = local_overlap_range(t, np.array([half, 0]), 1)
        assert e - s == 16
        ov = morton.overlaps(
            t.anchors[s:e], t.levels[s:e], np.array([half, 0]), 1
        )
        assert np.all(ov)

    def test_local_overlap_range_includes_ancestor(self):
        t = uniform_tree(2, 1)
        # Query a level-3 octant inside leaf 0: the coarse leaf is returned.
        s, e = local_overlap_range(t, np.array([0, 0]), 3)
        assert (s, e) == (0, 1)


class TestParCoarsen:
    def _check(self, tree, votes, nprocs):
        parts = scatter_tree(tree, nprocs)
        bounds = np.linspace(0, len(tree), nprocs + 1).astype(int)
        vparts = [votes[bounds[r] : bounds[r + 1]] for r in range(nprocs)]

        def fn(comm):
            return par_coarsen(comm, parts[comm.rank], vparts[comm.rank])

        outs = run_spmd(nprocs, fn)
        merged = Octree(
            np.concatenate([o.anchors for o in outs]),
            np.concatenate([o.levels for o in outs]),
            tree.dim,
        )
        expected = coarsen(tree, votes)
        # Global result equals serial coarsening, duplicates removed.
        dedup = merged.linearize()
        assert dedup == expected
        # No duplicates should exist at all after repartitioning.
        assert len(merged) == len(expected)

    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4])
    def test_family_split_across_ranks(self, nprocs):
        t = uniform_tree(2, 2)
        votes = np.ones(len(t), np.int64)
        self._check(t, votes, nprocs)

    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_aggressive_collapse_to_root(self, nprocs):
        t = uniform_tree(2, 3)
        votes = np.zeros(len(t), np.int64)
        self._check(t, votes, nprocs)

    @pytest.mark.parametrize("dim", [2, 3])
    def test_random_votes(self, dim):
        t = random_leaf_tree(7, dim, max_level=3)
        rng = np.random.default_rng(8)
        votes = np.maximum(t.levels - rng.integers(0, 3, len(t)), 0)
        self._check(t, votes, 3)

    def test_no_coarsening(self):
        t = random_leaf_tree(9, 2)
        self._check(t, t.levels.copy(), 3)

    def test_incomplete_tree(self):
        from repro.octree.domain import BoxDomain

        dom = BoxDomain([0.0, 0.0], [0.6, 0.6])
        t = uniform_tree(2, 3, domain=dom)
        votes = np.maximum(t.levels - 2, 0)
        self._check(t, votes, 3)


class TestDistributedSortTree:
    def test_sorts_scattered_tree(self):
        t = random_leaf_tree(11, 2)
        rng = np.random.default_rng(12)
        perm = rng.permutation(len(t))
        chunks = np.array_split(perm, 4)
        parts = [
            Octree(t.anchors[c], t.levels[c], 2) for c in chunks
        ]

        def fn(comm):
            return distributed_sort_tree(comm, parts[comm.rank], k=2)

        outs = run_spmd(4, fn)
        merged = Octree(
            np.concatenate([o.anchors for o in outs]),
            np.concatenate([o.levels for o in outs]),
            2,
            presorted=True,
        )
        assert merged == t


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500), nprocs=st.sampled_from([2, 3]))
def test_property_par_coarsen_equals_serial(seed, nprocs):
    t = random_leaf_tree(seed, 2, max_level=3, p=0.5)
    rng = np.random.default_rng(seed + 1)
    votes = np.maximum(t.levels - rng.integers(0, 4, len(t)), 0)
    parts = scatter_tree(t, nprocs)
    bounds = np.linspace(0, len(t), nprocs + 1).astype(int)
    vparts = [votes[bounds[r] : bounds[r + 1]] for r in range(nprocs)]

    def fn(comm):
        return par_coarsen(comm, parts[comm.rank], vparts[comm.rank])

    outs = run_spmd(nprocs, fn)
    merged = Octree(
        np.concatenate([o.anchors for o in outs]),
        np.concatenate([o.levels for o in outs]),
        2,
    )
    assert merged == coarsen(t, votes)
