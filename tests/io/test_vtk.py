"""Tests for the VTK writer."""

import numpy as np
import pytest

from repro.io.vtk import read_vtk_summary, write_time_series, write_vtk
from repro.mesh.mesh import Mesh, mesh_from_field
from repro.octree.build import uniform_tree


def drop(x):
    return np.linalg.norm(x - 0.5, axis=-1) - 0.25


class TestWriteVtk:
    def test_structure_2d(self, tmp_path):
        m = Mesh.from_tree(uniform_tree(2, 3))
        phi = m.interpolate(lambda x: x[:, 0])
        p = write_vtk(
            str(tmp_path / "mesh"), m,
            point_data={"phi": phi},
            cell_data={"level": m.tree.levels.astype(float)},
        )
        s = read_vtk_summary(p)
        assert s["points"] == m.n_nodes
        assert s["cells"] == m.n_elems
        assert s["point_fields"] == ["phi"]
        assert s["cell_fields"] == ["level"]

    def test_structure_3d(self, tmp_path):
        m = Mesh.from_tree(uniform_tree(3, 2))
        p = write_vtk(str(tmp_path / "mesh3d"), m)
        s = read_vtk_summary(p)
        assert s["points"] == m.n_nodes
        assert s["cells"] == m.n_elems

    def test_adaptive_mesh_hanging_nodes_expanded(self, tmp_path):
        m = mesh_from_field(drop, 2, max_level=5, min_level=2, threshold=0.05)
        assert np.any(m.nodes.is_hanging)
        phi = m.interpolate(lambda x: 2 * x[:, 0] + x[:, 1])
        p = write_vtk(str(tmp_path / "adaptive"), m, point_data={"f": phi})
        # Every node (hanging included) received a value: count the scalars.
        lines = open(p).read().splitlines()
        i = lines.index("LOOKUP_TABLE default")
        vals = [float(v) for v in lines[i + 1 : i + 1 + m.n_nodes]]
        assert len(vals) == m.n_nodes
        # Linear field: value equals 2x + y at every written node.
        xy = m.node_xy()
        assert np.allclose(vals, 2 * xy[:, 0] + xy[:, 1], atol=1e-9)

    def test_vtk_winding_positive_area(self, tmp_path):
        """VTK quad winding must traverse the cell boundary (not Morton's
        Z pattern): the shoelace area of each written quad is positive."""
        m = Mesh.from_tree(uniform_tree(2, 2))
        p = write_vtk(str(tmp_path / "w"), m)
        lines = open(p).read().splitlines()
        pts_start = next(i for i, l in enumerate(lines) if l.startswith("POINTS"))
        pts = np.array(
            [list(map(float, lines[pts_start + 1 + i].split()))
             for i in range(m.n_nodes)]
        )[:, :2]
        cells_start = next(i for i, l in enumerate(lines) if l.startswith("CELLS"))
        for e in range(m.n_elems):
            conn = list(map(int, lines[cells_start + 1 + e].split()))[1:]
            poly = pts[conn]
            area = 0.5 * np.sum(
                poly[:, 0] * np.roll(poly[:, 1], -1)
                - np.roll(poly[:, 0], -1) * poly[:, 1]
            )
            assert area > 0

    def test_rejects_wrong_lengths(self, tmp_path):
        m = Mesh.from_tree(uniform_tree(2, 2))
        with pytest.raises(ValueError):
            write_vtk(str(tmp_path / "x"), m, point_data={"bad": np.ones(3)})
        with pytest.raises(ValueError):
            write_vtk(str(tmp_path / "y"), m, cell_data={"bad": np.ones(3)})

    def test_time_series_naming(self, tmp_path):
        m = Mesh.from_tree(uniform_tree(2, 1))
        p = write_time_series(str(tmp_path / "series"), "jet", 7, m)
        assert p.endswith("jet_0007.vtk")
        s = read_vtk_summary(p)
        assert s["cells"] == 4
