"""Failure injection and edge-case behavior across the stack.

A production library must fail loudly and precisely; these tests pin down
the error contracts: bad inputs raise specific exceptions, solvers report
non-convergence instead of returning garbage, and distributed primitives
surface deadlocks and rank failures.
"""

import numpy as np
import pytest

from repro.amr.checkpoint import load_checkpoint, save_checkpoint
from repro.amr.driver import RemeshConfig
from repro.chns.params import CHNSParams
from repro.la.krylov import bicgstab, cg, gmres
from repro.la.newton import newton_solve
from repro.mesh.intergrid import transfer_cell_centered, transfer_node_centered
from repro.mesh.mesh import Mesh
from repro.mpi.comm import Comm, SpmdError, run_spmd
from repro.octree import morton
from repro.octree.build import build_tree, uniform_tree
from repro.octree.coarsen import coarsen
from repro.octree.domain import BoxDomain
from repro.octree.parcoarsen import par_coarsen
from repro.octree.refine import refine
from repro.octree.tree import Octree


class TestOctreeContracts:
    def test_morton_rejects_negative_anchor(self):
        with pytest.raises(ValueError):
            morton.morton(np.array([[-1, 0]]), 2)

    def test_octree_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Octree(np.zeros((2, 2), np.int64), np.zeros(3, np.int64), 2)

    def test_refine_rejects_wrong_target_length(self):
        t = uniform_tree(2, 2)
        with pytest.raises(ValueError):
            refine(t, t.levels[:-1])

    def test_refine_rejects_past_max_depth(self):
        t = uniform_tree(2, 1)
        with pytest.raises(ValueError):
            refine(t, np.full(len(t), morton.MAX_DEPTH + 1))

    def test_coarsen_rejects_negative_votes(self):
        t = uniform_tree(2, 2)
        with pytest.raises(ValueError):
            coarsen(t, np.full(len(t), -1))

    def test_merged_rejects_dim_mismatch(self):
        with pytest.raises(ValueError):
            uniform_tree(2, 1).merged(uniform_tree(3, 1))

    def test_locate_outside_domain(self):
        dom = BoxDomain([0, 0], [0.5, 0.5])
        t = uniform_tree(2, 2, domain=dom)
        far = np.array([[(1 << morton.MAX_DEPTH) - 1] * 2])
        assert t.locate_points(far)[0] == -1

    def test_balance_rejects_nonlinear_input(self):
        from repro.octree.balance import balance

        t = uniform_tree(2, 2)
        dup = t.merged(Octree.root(2))  # contains an ancestor
        with pytest.raises(ValueError):
            balance(dup)


class TestDistributedContracts:
    def test_rank_exception_identifies_rank(self):
        def fail_on_two(comm):
            if comm.rank == 2:
                raise RuntimeError("injected")
            comm.barrier()

        with pytest.raises(SpmdError, match="rank 2"):
            run_spmd(4, fail_on_two, timeout=5)

    def test_recv_timeout_is_deadlock_error(self):
        with pytest.raises(SpmdError, match="timed out|deadlock"):
            run_spmd(2, lambda c: c.recv(source=1 - c.rank, tag=9), timeout=0.3)

    def test_send_to_invalid_rank(self):
        def fn(comm):
            comm.send(1, comm.size + 5)

        with pytest.raises(SpmdError):
            run_spmd(2, fn)

    def test_alltoall_wrong_length(self):
        def fn(comm):
            comm.alltoall([1])  # needs comm.size entries

        with pytest.raises(SpmdError):
            run_spmd(3, fn)

    def test_par_coarsen_vote_length_mismatch(self):
        t = uniform_tree(2, 2)

        def fn(comm):
            par_coarsen(comm, t, np.zeros(3, np.int64))

        with pytest.raises(SpmdError):
            run_spmd(2, fn)

    def test_more_ranks_than_elements(self):
        """Degenerate decomposition: some ranks own zero elements."""
        from repro.mesh.distributed import DistributedField
        from repro.fem.operators import mass_matrix

        mesh = Mesh.from_tree(uniform_tree(2, 1))  # 4 elements
        Ke = mass_matrix(mesh.elem_h(), 2)
        u = np.ones(mesh.n_nodes)

        def fn(comm):
            df = DistributedField(comm, mesh)
            out = df.matvec(Ke[df.elem_lo : df.elem_hi], df.from_global(u))
            return (df.owned, out)

        outs = run_spmd(6, fn)  # 6 ranks, 4 elements
        total = sum(len(o[0]) for o in outs)
        assert total == mesh.n_nodes


class TestSolverContracts:
    def test_cg_reports_breakdown_on_indefinite(self):
        A = np.diag([1.0, -1.0, 2.0])
        b = np.ones(3)
        res = cg(lambda x: A @ x, b, maxiter=10)
        assert not res.converged

    def test_gmres_zero_matrix(self):
        res = gmres(lambda x: np.zeros_like(x), np.ones(4), maxiter=8)
        assert not res.converged

    def test_bicgstab_singular_reports(self):
        A = np.zeros((3, 3))
        res = bicgstab(lambda x: A @ x, np.ones(3), maxiter=10)
        assert not res.converged

    def test_newton_nonconvergence_reported(self):
        import scipy.sparse as sp

        def F(x):
            return np.array([np.exp(x[0]) + 1.0])  # no real root

        def J(x):
            return sp.csr_matrix(np.array([[np.exp(x[0])]]))

        res = newton_solve(F, J, np.array([0.0]), tol=1e-12, maxiter=3)
        assert not res.converged
        assert res.iterations == 3

    def test_krylov_rejects_unknown_operator(self):
        with pytest.raises(TypeError):
            cg("not an operator", np.ones(3))


class TestMeshAndTransferContracts:
    def test_evaluate_outside_domain(self):
        dom = BoxDomain([0, 0], [0.5, 0.5])
        t = uniform_tree(2, 3, domain=dom)
        m = Mesh.from_tree(t)
        u = np.zeros(m.n_dofs)
        with pytest.raises(ValueError):
            m.evaluate_at(u, np.array([[0.9, 0.9]]))

    def test_transfer_onto_noncovering_grid(self):
        dom = BoxDomain([0, 0], [0.5, 0.5])
        old = uniform_tree(2, 2, domain=dom)
        new = uniform_tree(2, 2)  # full cube: not covered by old
        with pytest.raises(ValueError):
            transfer_cell_centered(old, np.ones(len(old)), new)

    def test_node_transfer_noncovering_source(self):
        dom = BoxDomain([0, 0], [0.5, 0.5])
        m_old = Mesh.from_tree(uniform_tree(2, 3, domain=dom))
        m_new = Mesh.from_tree(uniform_tree(2, 2))
        with pytest.raises(ValueError):
            transfer_node_centered(m_old, np.zeros(m_old.n_dofs), m_new)

    def test_remesh_config_validation(self):
        with pytest.raises(ValueError):
            RemeshConfig(coarse_level=3, interface_level=2, feature_level=4)


class TestCheckpointContracts:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(str(tmp_path / "nope"))

    def test_fields_roundtrip_dtypes(self, tmp_path):
        t = uniform_tree(2, 2)
        p = str(tmp_path / "c")
        save_checkpoint(p, t, {"a": np.arange(3.0), "b": np.arange(4)}, 1)
        _, fields, _ = load_checkpoint(p)
        assert fields["a"].dtype == np.float64
        assert fields["b"].dtype == np.int64


class TestParamContracts:
    def test_rejects_nonpositive(self):
        for kw in ({"Re": 0}, {"We": -1}, {"Pe": 0}, {"Cn": -0.1},
                   {"rho_minus": 0.0}):
            with pytest.raises(ValueError):
                CHNSParams(**kw)
