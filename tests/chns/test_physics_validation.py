"""Physics validation: Laplace pressure jump, temporal self-convergence,
and long(er)-horizon invariants of the CHNS solver."""

import numpy as np
import pytest

from repro.chns import forms
from repro.chns.ch_solver import CHSolver
from repro.chns.free_energy import ginzburg_landau_energy, total_mass
from repro.chns.initial_conditions import drop
from repro.chns.params import CHNSParams
from repro.chns.timestepper import CHNSTimeStepper, no_slip_bc
from repro.mesh.mesh import Mesh
from repro.octree.build import uniform_tree

pytestmark = pytest.mark.slow  # multi-second CHNS runs throughout


@pytest.fixture(scope="module")
def mesh32():
    return Mesh.from_tree(uniform_tree(2, 5))


class TestLaplacePressureJump:
    def test_static_drop_pressure_jump_scales_with_curvature(self, mesh32):
        """Young-Laplace: a static drop carries an inside-outside pressure
        difference ~ sigma/R (2D: sigma * kappa = sigma / R).  In the
        non-dimensional CHNS form the jump scales with 1/(We R); we verify
        the measured jump is positive inside and roughly doubles when the
        radius halves."""
        jumps = {}
        for radius in (0.3, 0.15):
            prm = CHNSParams(
                Re=1.0, We=1.0, Pe=100.0, Cn=0.04,
                rho_minus=1.0, eta_minus=1.0,  # matched phases: no buoyancy
            )
            ts = CHNSTimeStepper(mesh32, prm, velocity_bc=no_slip_bc)
            ts.initialize(lambda x, r=radius: drop(x, (0.5, 0.5), r, prm.Cn))
            for _ in range(4):
                ts.step(2e-4)
            xy = ts.mesh.dof_xy()
            r_dof = np.linalg.norm(xy - 0.5, axis=1)
            inside = r_dof < radius - 3 * prm.Cn
            outside = r_dof > radius + 3 * prm.Cn
            jumps[radius] = float(
                ts.p[inside].mean() - ts.p[outside].mean()
            )
        assert jumps[0.3] > 0  # higher pressure inside the drop
        assert jumps[0.15] > 0
        # Young-Laplace monotonicity: smaller radius -> larger jump (the
        # exact factor-2 ratio needs full pressure equilibration; after a
        # short transient we assert the robust qualitative ordering).
        assert jumps[0.15] > 1.3 * jumps[0.3]

    def test_spurious_currents_bounded(self, mesh32):
        """Static-drop parasitic velocities stay small relative to the
        capillary scale sigma/mu (a standard surface-tension sanity check)."""
        prm = CHNSParams(Re=1.0, We=1.0, Pe=100.0, Cn=0.05,
                         rho_minus=1.0, eta_minus=1.0)
        ts = CHNSTimeStepper(mesh32, prm, velocity_bc=no_slip_bc)
        ts.initialize(lambda x: drop(x, (0.5, 0.5), 0.25, prm.Cn))
        for _ in range(5):
            ts.step(2e-4)
        u_cap = 1.0 / prm.We * prm.Re  # sigma / mu in our scaling
        assert np.abs(ts.vel).max() < 0.05 * u_cap


class TestTemporalConvergence:
    def test_ch_self_convergence_in_dt(self):
        """Halving dt must shrink the difference to a reference solution —
        the implicit CH block converges in time (order >= 1)."""
        mesh = Mesh.from_tree(uniform_tree(2, 4))
        prm = CHNSParams(Pe=30.0, Cn=0.08)
        T = 4e-3

        def run(nsteps):
            ch = CHSolver(mesh, prm)
            phi = mesh.interpolate(lambda x: drop(x, (0.5, 0.5), 0.25, 0.05))
            mu = ch.initial_mu(phi)
            dt = T / nsteps
            for _ in range(nsteps):
                res = ch.solve(phi, mu, None, dt, tol=1e-11)
                phi, mu = res.phi, res.mu
            return phi

        ref = run(16)
        e2 = float(np.linalg.norm(run(2) - ref))
        e4 = float(np.linalg.norm(run(4) - ref))
        e8 = float(np.linalg.norm(run(8) - ref))
        assert e4 < e2
        assert e8 < e4
        # At least first-order observed rates.
        assert e2 / e4 > 1.6


class TestLongerHorizon:
    def test_ten_step_invariants(self):
        """Ten CHNS steps of a buoyant bubble: conservation, boundedness,
        energy sanity, and no divergence growth."""
        mesh = Mesh.from_tree(uniform_tree(2, 4))
        prm = CHNSParams(Re=40.0, We=2.0, Pe=100.0, Cn=0.08, Fr=1.0,
                         rho_minus=0.4, eta_minus=0.5)
        ts = CHNSTimeStepper(mesh, prm, velocity_bc=no_slip_bc)
        ts.initialize(lambda x: drop(x, (0.5, 0.35), 0.18, prm.Cn))
        m0 = ts.diagnostics().mass
        divs = []
        for _ in range(10):
            ts.step(1e-3)
            d = ts.diagnostics()
            assert abs(d.mass - m0) < 1e-5
            assert -1.3 < d.phi_min and d.phi_max < 1.3
            divs.append(d.div_l2)
        assert np.all(np.isfinite(ts.vel))
        assert max(divs[-3:]) < 10 * (min(divs[:3]) + 1e-3)  # no blow-up

    def test_drop_relaxes_toward_circle(self):
        """A square blob under CH dynamics rounds off: the interface
        perimeter (Ginzburg-Landau energy) decreases monotonically."""
        mesh = Mesh.from_tree(uniform_tree(2, 5))
        prm = CHNSParams(Pe=20.0, Cn=0.05)
        ch = CHSolver(mesh, prm)

        def square(x):
            d = np.maximum(np.abs(x[:, 0] - 0.5), np.abs(x[:, 1] - 0.5)) - 0.2
            return np.tanh(d / (np.sqrt(2) * prm.Cn))

        phi = mesh.interpolate(square)
        mu = ch.initial_mu(phi)
        energies = [ginzburg_landau_energy(mesh, phi, prm.Cn)]
        for _ in range(6):
            res = ch.solve(phi, mu, None, 5e-4)
            phi, mu = res.phi, res.mu
            energies.append(ginzburg_landau_energy(mesh, phi, prm.Cn))
        diffs = np.diff(energies)
        assert np.all(diffs <= 1e-10)
        assert energies[-1] < 0.95 * energies[0]  # visible rounding
