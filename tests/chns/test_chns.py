"""Tests for the CHNS solver blocks and the two-block time stepper."""

import numpy as np
import pytest

from repro.chns import forms
from repro.chns.ch_solver import CHSolver
from repro.chns.free_energy import (
    ginzburg_landau_energy,
    mobility,
    psi,
    psi_double_prime,
    psi_prime,
    total_mass,
)
from repro.chns.initial_conditions import (
    drop,
    filament,
    jet_column,
    rising_bubble,
    tanh_profile,
    two_drops,
)
from repro.chns.ns_solver import NSSolver
from repro.chns.params import CHNSParams
from repro.chns.pp_solver import PPSolver
from repro.chns.timestepper import (
    CHNSTimeStepper,
    lid_driven_bc,
    no_slip_bc,
)
from repro.chns.vu_solver import VUSolver
from repro.mesh.mesh import Mesh
from repro.octree.build import uniform_tree


@pytest.fixture(scope="module")
def mesh16():
    return Mesh.from_tree(uniform_tree(2, 4))


@pytest.fixture(scope="module")
def mesh8():
    return Mesh.from_tree(uniform_tree(2, 3))


class TestParams:
    def test_mixture_limits(self):
        p = CHNSParams(rho_plus=1.0, rho_minus=0.2, eta_plus=1.0, eta_minus=0.5)
        assert np.isclose(p.rho(1.0), 1.0)
        assert np.isclose(p.rho(-1.0), 0.2)
        assert np.isclose(p.eta(1.0), 1.0)
        assert np.isclose(p.eta(-1.0), 0.5)

    def test_clamping_protects_overshoot(self):
        p = CHNSParams(rho_minus=0.1)
        assert p.rho_clamped(np.array([-1.5]))[0] > 0
        assert p.rho_clamped(np.array([-1.5]))[0] == p.rho_clamped(np.array([-1.0]))[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            CHNSParams(Re=-1)
        with pytest.raises(ValueError):
            CHNSParams(Cn=0)

    def test_gravity_off_by_default(self):
        assert CHNSParams().gravity_coeff() == 0.0
        assert CHNSParams(Fr=2.0).gravity_coeff() == 0.5


class TestFreeEnergy:
    def test_psi_minima(self):
        assert psi(1.0) == 0.0
        assert psi(-1.0) == 0.0
        assert psi(0.0) == 0.25
        assert np.allclose(psi_prime(np.array([-1.0, 0.0, 1.0])), [0, 0, 0])

    def test_psi_derivative_consistency(self):
        x = np.linspace(-1.2, 1.2, 41)
        eps = 1e-6
        num = (psi(x + eps) - psi(x - eps)) / (2 * eps)
        assert np.allclose(num, psi_prime(x), atol=1e-8)
        num2 = (psi_prime(x + eps) - psi_prime(x - eps)) / (2 * eps)
        assert np.allclose(num2, psi_double_prime(x), atol=1e-6)

    def test_mobility_degenerate(self):
        assert mobility(0.0) == 1.0
        assert mobility(1.0) < 1e-3
        assert np.isfinite(mobility(1.5))  # clamped, not NaN

    def test_energy_of_uniform_phase_is_zero(self, mesh8):
        phi = np.ones(mesh8.n_dofs)
        assert ginzburg_landau_energy(mesh8, phi, 0.05) < 1e-14

    def test_total_mass_of_constant(self, mesh8):
        phi = np.full(mesh8.n_dofs, 0.3)
        assert np.isclose(total_mass(mesh8, phi), 0.3)


class TestInitialConditions:
    def test_drop_signs(self):
        x = np.array([[0.5, 0.5], [0.0, 0.0]])
        phi = drop(x, (0.5, 0.5), 0.2, 0.02)
        assert phi[0] < -0.9  # inside
        assert phi[1] > 0.9  # outside

    def test_two_drops_union(self):
        x = np.array([[0.3, 0.5], [0.7, 0.5], [0.5, 0.1]])
        phi = two_drops(x, (0.3, 0.5), 0.1, (0.7, 0.5), 0.1, 0.02)
        assert phi[0] < -0.9 and phi[1] < -0.9 and phi[2] > 0.9

    def test_filament_geometry(self):
        x = np.array([[0.5, 0.5], [0.5, 0.8], [0.05, 0.5]])
        phi = filament(x, 0.5, 0.05, 0.2, 0.8, 0.02)
        assert phi[0] < -0.9
        assert phi[1] > 0.9
        assert phi[2] > 0.9  # outside the span

    def test_jet_column(self):
        x = np.array([[0.1, 0.5], [0.1, 0.9], [0.9, 0.5]])
        phi = jet_column(x, half_width=0.08, length=0.45, Cn=0.02)
        assert phi[0] < -0.9  # inside jet near inlet
        assert phi[1] > 0.9  # above jet
        assert phi[2] > 0.9  # past the tip

    def test_tanh_profile_inside_sign(self):
        assert tanh_profile(np.array([-1.0]), 0.02, inside=-1.0)[0] < -0.99
        assert tanh_profile(np.array([-1.0]), 0.02, inside=+1.0)[0] > 0.99


class TestCHSolver:
    def test_mass_conserved_no_flow(self, mesh16):
        prm = CHNSParams(Pe=50.0, Cn=0.06)
        ch = CHSolver(mesh16, prm)
        phi = mesh16.interpolate(lambda x: drop(x, (0.5, 0.5), 0.25, prm.Cn))
        mu = ch.initial_mu(phi)
        m0 = total_mass(mesh16, phi)
        for _ in range(3):
            res = ch.solve(phi, mu, None, dt=5e-4)
            assert res.newton.converged
            phi, mu = res.phi, res.mu
        assert np.isclose(total_mass(mesh16, phi), m0, atol=1e-8)

    def test_energy_decays_no_flow(self, mesh16):
        prm = CHNSParams(Pe=50.0, Cn=0.06)
        ch = CHSolver(mesh16, prm)
        phi = mesh16.interpolate(lambda x: drop(x, (0.5, 0.5), 0.25, 0.03))
        mu = ch.initial_mu(phi)
        e_prev = ginzburg_landau_energy(mesh16, phi, prm.Cn)
        for _ in range(3):
            res = ch.solve(phi, mu, None, dt=5e-4)
            phi, mu = res.phi, res.mu
            e = ginzburg_landau_energy(mesh16, phi, prm.Cn)
            assert e <= e_prev + 1e-10
            e_prev = e

    def test_bounds_approximately_respected(self, mesh16):
        prm = CHNSParams(Pe=50.0, Cn=0.06)
        ch = CHSolver(mesh16, prm)
        phi = mesh16.interpolate(lambda x: drop(x, (0.5, 0.5), 0.25, prm.Cn))
        mu = ch.initial_mu(phi)
        for _ in range(3):
            res = ch.solve(phi, mu, None, dt=5e-4)
            phi, mu = res.phi, res.mu
        assert phi.min() > -1.1 and phi.max() < 1.1

    def test_equilibrium_is_stationary(self, mesh16):
        """A flat mixture at a well bottom stays put."""
        prm = CHNSParams(Pe=50.0, Cn=0.05)
        ch = CHSolver(mesh16, prm)
        phi = np.ones(mesh16.n_dofs)
        mu = ch.initial_mu(phi)
        res = ch.solve(phi, mu, None, dt=1e-3)
        assert np.allclose(res.phi, 1.0, atol=1e-8)

    def test_advection_moves_interface(self, mesh16):
        prm = CHNSParams(Pe=200.0, Cn=0.06)
        ch = CHSolver(mesh16, prm)
        phi = mesh16.interpolate(lambda x: drop(x, (0.4, 0.5), 0.2, prm.Cn))
        mu = ch.initial_mu(phi)
        vel = np.zeros((mesh16.n_dofs, 2))
        vel[:, 0] = 1.0  # uniform rightward flow
        com0 = _phase_com(mesh16, phi)
        for _ in range(4):
            res = ch.solve(phi, mu, vel, dt=2e-3)
            phi, mu = res.phi, res.mu
        com1 = _phase_com(mesh16, phi)
        assert com1[0] > com0[0] + 1e-3  # drop moved right
        assert abs(com1[1] - com0[1]) < 1e-3


def _phase_com(mesh, phi):
    """Center of mass of the (phi < 0) phase."""
    w = np.maximum(-phi, 0.0)
    xy = mesh.dof_xy()
    return (xy * w[:, None]).sum(axis=0) / w.sum()


class TestNSPPVU:
    def test_projection_reduces_divergence(self, mesh16):
        """PP+VU projects a non-solenoidal field toward divergence-free."""
        prm = CHNSParams(We=1.0)
        pp = PPSolver(mesh16, prm)
        vu = VUSolver(mesh16, prm)
        phi = np.ones(mesh16.n_dofs)
        xy = mesh16.dof_xy()
        vel = np.stack([xy[:, 0] ** 2, xy[:, 1]], axis=1)  # div = 2x + 1
        d0 = forms.divergence_l2(mesh16, vel)
        dt = 0.1
        p = pp.solve(phi, vel, dt).p
        out = vu.solve(phi, vel, p, dt)
        d1 = forms.divergence_l2(mesh16, out.vel)
        assert d1 < 0.5 * d0

    def test_vu_mass_matrix_reused(self, mesh16):
        prm = CHNSParams()
        vu = VUSolver(mesh16, prm)
        M1 = vu.M
        phi = np.ones(mesh16.n_dofs)
        vel = np.zeros((mesh16.n_dofs, 2))
        p = np.zeros(mesh16.n_dofs)
        vu.solve(phi, vel, p, 0.1)
        assert vu.M is M1  # assembled once, never rebuilt

    def test_ns_rest_stays_at_rest(self, mesh16):
        prm = CHNSParams()
        ns = NSSolver(mesh16, prm)
        phi = np.ones(mesh16.n_dofs)
        ch = CHSolver(mesh16, prm)
        mu = ch.initial_mu(phi)
        vel = np.zeros((mesh16.n_dofs, 2))
        p = np.zeros(mesh16.n_dofs)
        masks, values = no_slip_bc(mesh16)
        res = ns.solve(phi, mu, vel, vel, p, 0.01, dirichlet_masks=masks,
                       dirichlet_values=values)
        assert np.max(np.abs(res.vel_star)) < 1e-8

    def test_gravity_accelerates_flow(self, mesh16):
        prm = CHNSParams(Fr=0.5, rho_minus=0.99, eta_minus=1.0)
        ns = NSSolver(mesh16, prm)
        ch = CHSolver(mesh16, prm)
        phi = np.ones(mesh16.n_dofs)
        mu = ch.initial_mu(phi)
        vel = np.zeros((mesh16.n_dofs, 2))
        p = np.zeros(mesh16.n_dofs)
        res = ns.solve(phi, mu, vel, vel, p, 0.01)
        # Gravity points -y: interior velocity becomes negative in y.
        interior = ~mesh16.boundary_dof_mask()
        assert res.vel_star[interior, 1].mean() < -1e-6

    def test_pressure_mean_zero(self, mesh16):
        prm = CHNSParams()
        pp = PPSolver(mesh16, prm)
        phi = np.ones(mesh16.n_dofs)
        xy = mesh16.dof_xy()
        vel = np.stack([np.sin(xy[:, 0]), np.zeros(mesh16.n_dofs)], axis=1)
        res = pp.solve(phi, vel, 0.1)
        assert abs(res.p.mean()) < 1e-12


class TestTimeStepper:
    def test_quiescent_drop_short_run(self, mesh8):
        """A drop at rest: mass conserved, phi bounded, no velocity blowup."""
        prm = CHNSParams(Re=10.0, We=1.0, Pe=50.0, Cn=0.1, rho_minus=0.5,
                         eta_minus=0.5)
        ts = CHNSTimeStepper(mesh8, prm, velocity_bc=no_slip_bc)
        ts.initialize(lambda x: drop(x, (0.5, 0.5), 0.25, prm.Cn))
        m0 = ts.diagnostics().mass
        for _ in range(3):
            ts.step(1e-3)
        d = ts.diagnostics()
        assert np.isclose(d.mass, m0, atol=1e-6)
        assert d.phi_min > -1.2 and d.phi_max < 1.2
        assert np.max(np.abs(ts.vel)) < 1.0

    def test_lid_driven_single_phase(self, mesh8):
        """Single-phase cavity: lid drives a vortex; divergence stays small."""
        prm = CHNSParams(Re=50.0, rho_minus=1.0, eta_minus=1.0, Pe=1e4, Cn=0.1)

        def regularized_lid(m):
            # Polynomial lid profile vanishing at the corners avoids the
            # classic corner-singularity divergence spike.
            masks, values = lid_driven_bc(m, 1.0)
            top = m.face_dof_mask(1, 1)
            x = m.dof_xy()[:, 0]
            values[0][top] = 16.0 * (x[top] * (1 - x[top])) ** 2
            return masks, values

        ts = CHNSTimeStepper(mesh8, prm, velocity_bc=regularized_lid)
        ts.initialize(lambda x: np.ones(len(x)))
        for _ in range(5):
            ts.step(2e-3)
        d = ts.diagnostics()
        interior = ~mesh8.boundary_dof_mask()
        # Momentum diffused into the cavity.
        assert np.max(np.abs(ts.vel[interior, 0])) > 1e-3
        assert d.div_l2 < 1.0

    def test_timers_populated(self, mesh8):
        prm = CHNSParams(Pe=50.0, Cn=0.1, rho_minus=0.5, eta_minus=0.5)
        ts = CHNSTimeStepper(mesh8, prm, velocity_bc=no_slip_bc)
        ts.initialize(lambda x: drop(x, (0.5, 0.5), 0.25, prm.Cn))
        t = ts.step(1e-3)
        assert t.ch > 0 and t.ns > 0 and t.pp > 0 and t.vu > 0
        assert ts.timers.total() >= t.total()

    def test_two_blocks_per_step(self, mesh8):
        prm = CHNSParams(Pe=50.0, Cn=0.1, rho_minus=0.5, eta_minus=0.5)
        ts = CHNSTimeStepper(mesh8, prm, n_blocks=2, velocity_bc=no_slip_bc)
        ts.initialize(lambda x: drop(x, (0.5, 0.5), 0.25, prm.Cn))
        ts.step(1e-3)
        assert ts.step_count == 1
