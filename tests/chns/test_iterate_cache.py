"""Per-iterate operator cache in the CH block: residual + jacobian at the
same Newton iterate must share one mobility-stiffness assembly and one
quad-point phi evaluation, instead of assembling each twice."""

import numpy as np
import pytest

from repro.chns.ch_solver import CHSolver
from repro.chns.params import CHNSParams
from repro.la.newton import IterateCache
from repro.mesh.mesh import Mesh
from repro.octree.build import uniform_tree


@pytest.fixture(scope="module")
def mesh():
    return Mesh.from_tree(uniform_tree(2, 3))


@pytest.fixture()
def solver(mesh):
    return CHSolver(mesh, CHNSParams(Cn=0.05, Pe=100.0, Re=10.0))


def drop(mesh):
    x = mesh.dof_xy()
    return np.tanh(
        (0.25 - np.linalg.norm(x - 0.5, axis=1)) / (np.sqrt(2) * 0.05)
    )


class TestIterateCache:
    def test_same_iterate_shares_value(self):
        cache = IterateCache()
        x = np.arange(5.0)
        calls = []
        v1 = cache.get(x, "k", lambda: calls.append(1) or 42)
        v2 = cache.get(x.copy(), "k", lambda: calls.append(1) or 43)
        assert v1 == v2 == 42 and len(calls) == 1

    def test_new_iterate_invalidates(self):
        cache = IterateCache()
        x = np.arange(5.0)
        assert cache.get(x, "k", lambda: 1) == 1
        assert cache.get(x + 1e-16, "k", lambda: 2) == 2  # any change counts
        assert cache.get(x, "other", lambda: 3) == 3  # and clears all keys
        assert cache.get(x, "k", lambda: 4) == 4


class TestCHOperatorSharing:
    def test_one_mobility_assembly_per_iterate(self, mesh, solver):
        """The acceptance counter: residual + jacobian at one iterate =
        exactly one mobility-stiffness assembly, one phi quad evaluation."""
        phi = drop(mesh)
        mu = solver.initial_mu(phi)
        residual, jacobian, _ = solver.operators(phi, mu, None, 1e-3)
        x = np.concatenate([phi, mu])
        before = dict(solver.counters)
        residual(x)
        jacobian(x)
        assert solver.counters["mobility_assemblies"] - before["mobility_assemblies"] == 1
        assert solver.counters["phi_quad_evals"] - before["phi_quad_evals"] == 1

        # A genuinely new iterate assembles again — the cache is per-iterate,
        # not stale across the Newton trajectory.
        x2 = x.copy()
        x2[: mesh.n_dofs] *= 0.9
        residual(x2)
        assert solver.counters["mobility_assemblies"] - before["mobility_assemblies"] == 2

    def test_full_solve_assembles_only_on_residual_iterates(self, mesh, solver):
        """Across a whole Newton solve the jacobian calls piggyback on the
        residual's assemblies: total mobility assemblies == residual evals
        (each at a distinct iterate), never residual + jacobian evals."""
        phi = drop(mesh)
        mu = solver.initial_mu(phi)
        res = solver.solve(phi, mu, None, 1e-3)
        assert res.newton.converged
        c = solver.counters
        assert c["jacobian_evals"] >= 1
        assert c["mobility_assemblies"] == c["residual_evals"]
        assert c["phi_quad_evals"] == c["residual_evals"]

    def test_solution_unchanged_by_caching(self, mesh):
        """Caching is an evaluation-sharing optimization only: the Newton
        trajectory is identical to recomputing everything."""
        prm = CHNSParams(Cn=0.05, Pe=100.0, Re=10.0)
        phi = drop(mesh)
        s1 = CHSolver(mesh, prm)
        mu = s1.initial_mu(phi)
        r1 = s1.solve(phi, mu, None, 1e-3)

        s2 = CHSolver(mesh, prm)
        s2._iterate = IterateCache()
        # Defeat the cache by clearing it around every lookup.
        orig_get = s2._iterate.get

        def no_cache_get(x, key, build):
            s2._iterate.clear()
            return orig_get(x, key, build)

        s2._iterate.get = no_cache_get
        r2 = s2.solve(phi, mu, None, 1e-3)
        assert np.array_equal(r1.phi, r2.phi)
        assert np.array_equal(r1.mu, r2.mu)
        assert s2.counters["mobility_assemblies"] > s1.counters["mobility_assemblies"]
