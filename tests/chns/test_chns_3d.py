"""3D exercises of the full stack: identifier, CH, and a CHNS step on octrees.

The paper's production runs are 3D; these tests keep the 3D code paths honest
at small scale (the 2D suite carries the detailed physics checks).
"""

import numpy as np
import pytest

from repro.chns.ch_solver import CHSolver
from repro.chns.free_energy import total_mass
from repro.chns.initial_conditions import drop
from repro.chns.params import CHNSParams
from repro.chns.timestepper import CHNSTimeStepper, no_slip_bc
from repro.core.erode_dilate import Stage, erode_dilate
from repro.core.identifier import IdentifierConfig, identify_local_cahn
from repro.core.threshold import threshold_octree
from repro.mesh.intergrid import transfer_node_centered
from repro.mesh.mesh import Mesh, mesh_from_field
from repro.octree.build import uniform_tree


@pytest.fixture(scope="module")
def mesh3d():
    return Mesh.from_tree(uniform_tree(3, 3))  # 8^3 elements, 9^3 nodes


class TestIdentifier3D:
    def test_erosion_kills_small_ball(self, mesh3d):
        phi = mesh3d.interpolate(lambda x: drop(x, (0.5, 0.5, 0.5), 0.2, 0.05))
        bw = threshold_octree(phi, -0.8)
        assert np.any(bw > 0)
        out = erode_dilate(mesh3d, bw, Stage.EROSION, 2)
        assert np.all(out < 0)

    def test_identifier_flags_small_ball_only(self):
        def phi_f(x):
            # Wide separation: on the adaptive mesh the pure-phase bulk is
            # coarse (level 3), so each dilation sweep can advance a whole
            # coarse cell — the balls must sit farther apart than the
            # dilation reach.
            small = drop(x, (0.2, 0.2, 0.2), 0.14, 0.03)
            big = drop(x, (0.7, 0.7, 0.7), 0.26, 0.03)
            return np.minimum(small, big)

        m = mesh_from_field(phi_f, 3, max_level=5, min_level=3, threshold=0.9)
        res = identify_local_cahn(
            m,
            m.interpolate(phi_f),
            IdentifierConfig(delta=-0.8, n_erode=3, n_extra_dilate=2),
        )
        assert res.detected.sum() > 0
        centers = m.elem_centers()[res.detected]
        d_small = np.linalg.norm(centers - 0.2, axis=1)
        d_big = np.linalg.norm(centers - 0.7, axis=1)
        assert np.all(d_small < d_big)

    def test_3d_image_equivalence_single_step(self, mesh3d):
        """Mesh erosion == 3x3x3 box-stencil erosion on the node grid."""
        from repro.core import image

        phi = mesh3d.interpolate(lambda x: drop(x, (0.4, 0.5, 0.5), 0.3, 0.04))
        bw = threshold_octree(phi, -0.8)
        out = erode_dilate(mesh3d, bw, Stage.EROSION, 1)
        n = round(mesh3d.n_dofs ** (1 / 3))
        coords = mesh3d.nodes.coords[mesh3d.nodes.node_of_dof]
        step = coords.max() // (n - 1)
        grid = np.zeros((n, n, n), dtype=np.int8)
        idx = tuple((coords // step).T)
        grid[idx] = ((bw + 1) // 2).astype(np.int8)
        ref = image.erode(grid, 1)
        got = np.zeros_like(grid)
        got[idx] = ((out + 1) // 2).astype(np.int8)
        assert np.array_equal(got, ref)


class TestCH3D:
    def test_mass_conserved_and_bounded(self, mesh3d):
        prm = CHNSParams(Pe=50.0, Cn=0.12)
        ch = CHSolver(mesh3d, prm)
        phi = mesh3d.interpolate(lambda x: drop(x, (0.5, 0.5, 0.5), 0.3, prm.Cn))
        mu = ch.initial_mu(phi)
        m0 = total_mass(mesh3d, phi)
        res = ch.solve(phi, mu, None, dt=1e-3)
        assert res.newton.converged
        assert np.isclose(total_mass(mesh3d, res.phi), m0, atol=1e-8)
        assert res.phi.min() > -1.2 and res.phi.max() < 1.2


class TestCHNS3D:
    def test_single_timestep_runs(self):
        mesh = Mesh.from_tree(uniform_tree(3, 2))
        prm = CHNSParams(Re=10.0, Pe=50.0, Cn=0.2, rho_minus=0.5,
                         eta_minus=0.5, gravity_dir=(0.0, 0.0, -1.0))
        ts = CHNSTimeStepper(mesh, prm, velocity_bc=no_slip_bc)
        ts.initialize(lambda x: drop(x, (0.5, 0.5, 0.5), 0.3, prm.Cn))
        t = ts.step(1e-3)
        d = ts.diagnostics()
        assert t.ch > 0 and t.ns > 0 and t.pp > 0 and t.vu > 0
        assert ts.vel.shape == (mesh.n_dofs, 3)
        assert np.all(np.isfinite(ts.vel))
        assert d.phi_min > -1.5 and d.phi_max < 1.5


class TestTransfer3D:
    def test_linears_exact_across_levels(self):
        c = Mesh.from_tree(uniform_tree(3, 1))
        f = Mesh.from_tree(uniform_tree(3, 3))
        u = c.interpolate(lambda x: x[:, 0] - 2 * x[:, 1] + 0.5 * x[:, 2])
        v = transfer_node_centered(c, u, f)
        expect = f.interpolate(lambda x: x[:, 0] - 2 * x[:, 1] + 0.5 * x[:, 2])
        assert np.allclose(v, expect, atol=1e-12)

    def test_adaptive_3d_transfer(self):
        def phi_f(x):
            return drop(x, (0.5, 0.5, 0.5), 0.3, 0.05)

        m1 = mesh_from_field(phi_f, 3, max_level=4, min_level=2, threshold=0.9)
        m2 = Mesh.from_tree(uniform_tree(3, 3))
        u = m1.interpolate(phi_f)
        v = transfer_node_centered(m1, u, m2)
        assert np.all(np.isfinite(v))
        assert v.min() >= -1.01 and v.max() <= 1.01
