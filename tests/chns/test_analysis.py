"""Tests for the spray/droplet post-processing analysis."""

import numpy as np
import pytest

from repro.chns.analysis import (
    breakup_detected,
    droplet_statistics,
    interface_measure,
    phase_volume,
)
from repro.chns.initial_conditions import drop, two_drops
from repro.mesh.mesh import Mesh
from repro.octree.build import uniform_tree


@pytest.fixture(scope="module")
def mesh():
    return Mesh.from_tree(uniform_tree(2, 6))


class TestPhaseVolume:
    def test_single_drop_area(self, mesh):
        phi = mesh.interpolate(lambda x: drop(x, (0.5, 0.5), 0.25, 0.02))
        vol = phase_volume(mesh, phi, immersed_sign=-1.0)
        assert vol == pytest.approx(np.pi * 0.25**2, rel=0.02)

    def test_pure_phases(self, mesh):
        assert phase_volume(mesh, np.ones(mesh.n_dofs)) == pytest.approx(0.0, abs=1e-12)
        assert phase_volume(mesh, -np.ones(mesh.n_dofs)) == pytest.approx(1.0)

    def test_opposite_convention(self, mesh):
        phi = mesh.interpolate(lambda x: drop(x, (0.5, 0.5), 0.25, 0.02,
                                              inside=+1.0))
        vol = phase_volume(mesh, phi, immersed_sign=+1.0)
        assert vol == pytest.approx(np.pi * 0.25**2, rel=0.02)


class TestInterfaceMeasure:
    def test_circle_perimeter(self, mesh):
        Cn = 0.02
        phi = mesh.interpolate(lambda x: drop(x, (0.5, 0.5), 0.25, Cn))
        L = interface_measure(mesh, phi, Cn)
        assert L == pytest.approx(2 * np.pi * 0.25, rel=0.15)

    def test_scales_with_radius(self, mesh):
        Cn = 0.02
        L1 = interface_measure(
            mesh, mesh.interpolate(lambda x: drop(x, (0.5, 0.5), 0.3, Cn)), Cn
        )
        L2 = interface_measure(
            mesh, mesh.interpolate(lambda x: drop(x, (0.5, 0.5), 0.15, Cn)), Cn
        )
        assert L1 / L2 == pytest.approx(2.0, rel=0.1)

    def test_no_interface_zero(self, mesh):
        assert interface_measure(mesh, np.ones(mesh.n_dofs), 0.02) < 1e-10


class TestDropletStatistics:
    def test_two_drops_census(self, mesh):
        phi = mesh.interpolate(
            lambda x: two_drops(x, (0.3, 0.3), 0.12, (0.72, 0.72), 0.08, 0.015)
        )
        st = droplet_statistics(mesh, phi)
        assert st.count == 2
        # Volumes ordered by label; compare as a set against pi r^2 (the
        # element-count census slightly over-counts via the interface band).
        areas = sorted(st.volumes)
        assert areas[1] == pytest.approx(np.pi * 0.12**2, rel=0.45)
        assert areas[0] == pytest.approx(np.pi * 0.08**2, rel=0.6)
        # Centroids land on the drop centers.
        cents = st.centroids[np.argsort(st.volumes)]
        assert np.allclose(cents[1], [0.3, 0.3], atol=0.02)
        assert np.allclose(cents[0], [0.72, 0.72], atol=0.02)
        # D32 lies between the two equivalent diameters.
        d = np.sort(st.equivalent_diameters)
        assert d[0] < st.sauter_mean_diameter < d[1] * 1.05
        assert 0.5 < st.largest_fraction < 1.0

    def test_empty(self, mesh):
        st = droplet_statistics(mesh, np.ones(mesh.n_dofs))
        assert st.count == 0
        assert st.sauter_mean_diameter == 0.0

    def test_breakup_detection(self, mesh):
        one = droplet_statistics(
            mesh, mesh.interpolate(lambda x: drop(x, (0.5, 0.5), 0.2, 0.02))
        )
        two = droplet_statistics(
            mesh,
            mesh.interpolate(
                lambda x: two_drops(x, (0.3, 0.5), 0.12, (0.7, 0.5), 0.12, 0.02)
            ),
        )
        assert breakup_detected(one, two)
        assert not breakup_detected(two, one)
        # A volume floor suppresses spurious tiny fragments.
        assert not breakup_detected(one, two, min_volume=1.0)
