"""Tests for multi-level inter-grid transfer (serial and parallel)."""

import numpy as np
import pytest

from repro.mesh.intergrid import (
    par_transfer_node_centered,
    transfer_cell_centered,
    transfer_node_centered,
)
from repro.mesh.mesh import Mesh
from repro.mpi.comm import run_spmd
from repro.octree.build import build_tree, uniform_tree
from repro.octree.partition import partition_endpoints, scatter_tree
from repro.octree.refine import refine
from repro.octree.tree import Octree


def random_mesh(seed, dim=2, max_level=4):
    rng = np.random.default_rng(seed)

    def pred(anchors, levels):
        return rng.random(len(levels)) < 0.45

    return Mesh.from_tree(build_tree(2, pred, max_level=max_level, min_level=1))


class TestNodeCentered:
    def test_identity_transfer(self):
        m = random_mesh(0)
        u = m.interpolate(lambda x: np.sin(3 * x[:, 0]) + x[:, 1] ** 2)
        v = transfer_node_centered(m, u, m)
        assert np.allclose(v, u, atol=1e-12)

    @pytest.mark.parametrize("jump", [1, 2, 3])
    def test_coarse_to_fine_multi_level_exact_for_linears(self, jump):
        """Coarse-to-fine interpolation across multi-level jumps is exact for
        affine fields (the transfer is the FE interpolant)."""
        coarse = Mesh.from_tree(uniform_tree(2, 2))
        fine = Mesh.from_tree(uniform_tree(2, 2 + jump))
        u = coarse.interpolate(lambda x: 3 * x[:, 0] - 2 * x[:, 1] + 0.1)
        v = transfer_node_centered(coarse, u, fine)
        expect = fine.interpolate(lambda x: 3 * x[:, 0] - 2 * x[:, 1] + 0.1)
        assert np.allclose(v, expect, atol=1e-12)

    def test_fine_to_coarse_injection(self):
        fine = Mesh.from_tree(uniform_tree(2, 4))
        coarse = Mesh.from_tree(uniform_tree(2, 2))
        u = fine.interpolate(lambda x: np.cos(x[:, 0] * 2) * x[:, 1])
        v = transfer_node_centered(fine, u, coarse)
        expect = coarse.interpolate(lambda x: np.cos(x[:, 0] * 2) * x[:, 1])
        # Injection at shared node locations is exact.
        assert np.allclose(v, expect, atol=1e-12)

    def test_adaptive_to_adaptive(self):
        m1 = random_mesh(1)
        m2 = random_mesh(2)
        u = m1.interpolate(lambda x: x[:, 0] * x[:, 1])
        v = transfer_node_centered(m1, u, m2)
        # Bilinear x*y is reproduced exactly within each source element only
        # if the target nodes coincide or the field is elementwise bilinear —
        # which x*y is on axis-aligned boxes.
        expect = m2.interpolate(lambda x: x[:, 0] * x[:, 1])
        assert np.allclose(v, expect, atol=1e-10)

    def test_roundtrip_coarse_fine_coarse(self):
        coarse = Mesh.from_tree(uniform_tree(2, 3))
        fine = Mesh.from_tree(uniform_tree(2, 5))
        u = coarse.interpolate(lambda x: np.sin(2 * x[:, 0]))
        back = transfer_node_centered(
            fine, transfer_node_centered(coarse, u, fine), coarse
        )
        assert np.allclose(back, u, atol=1e-12)

    def test_transfer_through_hanging_nodes(self):
        t = uniform_tree(2, 2)
        targets = t.levels.copy()
        targets[:4] = 4  # refine one corner region heavily
        m_adapt = Mesh.from_tree(refine(t, targets))
        m_uni = Mesh.from_tree(uniform_tree(2, 3))
        u = m_adapt.interpolate(lambda x: 2 * x[:, 0] + x[:, 1])
        v = transfer_node_centered(m_adapt, u, m_uni)
        assert np.allclose(
            v, m_uni.interpolate(lambda x: 2 * x[:, 0] + x[:, 1]), atol=1e-12
        )


class TestCellCentered:
    def test_coarse_to_fine_copy(self):
        coarse = uniform_tree(2, 1)
        fine = uniform_tree(2, 3)
        vals = np.arange(len(coarse), dtype=np.float64)
        out = transfer_cell_centered(coarse, vals, fine)
        # Each fine cell inherits its ancestor's value.
        idx = coarse.locate_points(fine.centers().astype(np.int64))
        assert np.array_equal(out, vals[idx])

    def test_fine_to_coarse_average(self):
        fine = uniform_tree(2, 2)
        coarse = uniform_tree(2, 1)
        vals = np.ones(len(fine))
        out = transfer_cell_centered(fine, vals, coarse)
        assert np.allclose(out, 1.0)

    def test_volume_weighted_average_on_adaptive(self):
        rng = np.random.default_rng(3)

        def pred(anchors, levels):
            return rng.random(len(levels)) < 0.5

        fine = build_tree(2, pred, max_level=4, min_level=2)
        coarse = uniform_tree(2, 1)
        vals = rng.random(len(fine))
        out = transfer_cell_centered(fine, vals, coarse)
        # Conservation: total integral preserved by averaging.
        total_fine = float((vals * fine.volumes()).sum())
        total_coarse = float((out * coarse.volumes()).sum())
        assert np.isclose(total_fine, total_coarse, rtol=1e-12)

    def test_mixed_direction(self):
        rng = np.random.default_rng(4)

        def pred(anchors, levels):
            return rng.random(len(levels)) < 0.5

        a = build_tree(2, pred, max_level=3, min_level=1)
        b = uniform_tree(2, 2)
        vals = np.ones(len(a)) * 7.0
        out = transfer_cell_centered(a, vals, b)
        assert np.allclose(out, 7.0)  # constant preserved both directions


class TestParallelTransfer:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4])
    def test_matches_serial(self, nprocs):
        old_mesh = random_mesh(5)
        new_mesh_global = random_mesh(6)
        u = old_mesh.interpolate(lambda x: np.sin(4 * x[:, 0]) * x[:, 1] + 1)
        serial = transfer_node_centered(old_mesh, u, new_mesh_global)

        old_parts = scatter_tree(old_mesh.tree, nprocs)
        new_parts = scatter_tree(new_mesh_global.tree, nprocs)
        corner_vals = old_mesh.elem_gather(u)
        bounds = np.linspace(0, old_mesh.n_elems, nprocs + 1).astype(int)

        def fn(comm):
            r = comm.rank
            old_local = old_parts[r]
            cv = corner_vals[bounds[r] : bounds[r + 1]]
            new_local = Mesh(new_parts[r], check_balance=False)
            old_eps = partition_endpoints(comm, old_local)
            new_eps = partition_endpoints(comm, new_parts[r])
            out = par_transfer_node_centered(
                comm, old_local, cv, new_local, old_eps, new_eps
            )
            # Return values keyed by node coordinate for global comparison.
            coords = new_local.nodes.coords[new_local.nodes.node_of_dof]
            return coords, out

        results = run_spmd(nprocs, fn)
        # Compare every local DOF against the serial transfer at the same
        # coordinate.
        global_coords = new_mesh_global.nodes.coords[
            new_mesh_global.nodes.node_of_dof
        ]
        lookup = {tuple(c): v for c, v in zip(global_coords.tolist(), serial)}
        for coords, vals in results:
            for c, v in zip(coords.tolist(), vals):
                key = tuple(c)
                if key in lookup:  # chunk-local hanging status may differ
                    assert abs(lookup[key] - v) < 1e-10

    def test_empty_old_rank(self):
        """Ranks owning no old elements still deliver (everything ships from
        the ranks that do)."""
        old_mesh = Mesh.from_tree(uniform_tree(2, 3))
        new_mesh_global = Mesh.from_tree(uniform_tree(2, 2))
        u = old_mesh.interpolate(lambda x: x[:, 0])
        old_parts = [old_mesh.tree, Octree.empty(2)]
        new_parts = scatter_tree(new_mesh_global.tree, 2)
        cv = old_mesh.elem_gather(u)
        cvs = [cv, cv[:0]]

        def fn(comm):
            r = comm.rank
            new_local = Mesh(new_parts[r], check_balance=False)
            old_eps = partition_endpoints(comm, old_parts[r])
            new_eps = partition_endpoints(comm, new_parts[r])
            out = par_transfer_node_centered(
                comm, old_parts[r], cvs[r], new_local, old_eps, new_eps
            )
            coords = new_local.nodes.coords[new_local.nodes.node_of_dof]
            return coords, out

        results = run_spmd(2, fn)
        scale = float(1 << 19)
        for coords, vals in results:
            assert np.allclose(vals, np.asarray(coords)[:, 0] / scale, atol=1e-12)
