"""Tests for nodal enumeration, hanging nodes, and the Mesh wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.mesh import Mesh, mesh_from_field
from repro.mesh.nodes import enumerate_nodes, pack_points, unpack_points
from repro.octree import morton
from repro.octree.balance import balance
from repro.octree.build import build_tree, uniform_tree
from repro.octree.refine import refine


def two_level_mesh(dim=2):
    """One quadrant refined one extra level -> guaranteed hanging nodes."""
    t = uniform_tree(dim, 1)
    targets = t.levels.copy()
    targets[0] = 2
    return Mesh.from_tree(refine(t, targets))


def random_mesh(seed, dim, max_level=4, p=0.45):
    rng = np.random.default_rng(seed)

    def pred(anchors, levels):
        return rng.random(len(levels)) < p

    return Mesh.from_tree(build_tree(dim, pred, max_level=max_level, min_level=1))


class TestPacking:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_roundtrip_including_max_coord(self, dim):
        hi = 1 << morton.MAX_DEPTH
        rng = np.random.default_rng(0)
        pts = rng.integers(0, hi + 1, size=(100, dim))
        pts[0] = hi  # the far corner
        keys = pack_points(pts, dim)
        assert np.array_equal(unpack_points(keys, dim), pts)

    def test_unique(self):
        hi = 1 << morton.MAX_DEPTH
        pts = np.array([[0, hi], [hi, 0], [0, 0], [hi, hi]])
        assert len(np.unique(pack_points(pts, 2))) == 4


class TestUniformMeshNodes:
    @pytest.mark.parametrize("dim,level", [(2, 2), (2, 3), (3, 2)])
    def test_counts(self, dim, level):
        m = Mesh.from_tree(uniform_tree(dim, level))
        n_side = (1 << level) + 1
        assert m.n_nodes == n_side**dim
        assert m.n_dofs == m.n_nodes  # no hanging nodes on uniform meshes
        assert not np.any(m.nodes.is_hanging)

    def test_p_is_identity(self):
        m = Mesh.from_tree(uniform_tree(2, 2))
        eye = m.nodes.P.toarray()
        assert np.array_equal(eye, np.eye(m.n_dofs))

    def test_elem_nodes_are_corners(self):
        m = Mesh.from_tree(uniform_tree(2, 1))
        for e in range(m.n_elems):
            got = m.nodes.coords[m.nodes.elem_nodes[e]]
            assert np.array_equal(got, m.tree.corners()[e])


class TestHangingNodes:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_hanging_exist_on_graded_mesh(self, dim):
        m = two_level_mesh(dim)
        assert np.any(m.nodes.is_hanging)

    def test_2d_hanging_count(self):
        # One refined quadrant in 2D: hanging nodes are the midpoints of the
        # two coarse edges separating fine from coarse: exactly 2.
        m = two_level_mesh(2)
        assert int(m.nodes.is_hanging.sum()) == 2

    def test_hanging_weights_sum_to_one(self):
        for dim in (2, 3):
            m = two_level_mesh(dim)
            rows = np.asarray(m.nodes.P.sum(axis=1)).ravel()
            assert np.allclose(rows, 1.0)

    @pytest.mark.parametrize("dim", [2, 3])
    def test_linear_field_interpolates_exactly(self, dim):
        """Patch property: hanging interpolation reproduces affine fields."""
        m = random_mesh(1, dim)
        coeffs = np.arange(1, dim + 1, dtype=np.float64)

        def f(x):
            return x @ coeffs + 0.5

        u = m.interpolate(f)
        nv = m.node_values(u)
        expect = f(m.nodes.coords / float(1 << morton.MAX_DEPTH))
        assert np.allclose(nv, expect, atol=1e-12)

    @pytest.mark.parametrize("dim", [2, 3])
    def test_no_hanging_parent_chains_unresolved(self, dim):
        m = random_mesh(2, dim)
        # Every P column refers to a DOF; every hanging row must have weights.
        hang_rows = np.nonzero(m.nodes.is_hanging)[0]
        for r in hang_rows[:50]:
            row = m.nodes.P.getrow(r)
            assert row.nnz >= 2
            assert np.isclose(row.sum(), 1.0)

    def test_3d_face_hanging_weights(self):
        m = two_level_mesh(3)
        # Face-hanging nodes have 4 parents at weight 1/4; edge-hanging 2 at 1/2.
        P = m.nodes.P
        for r in np.nonzero(m.nodes.is_hanging)[0]:
            w = np.sort(P.getrow(r).data)
            ok = (len(w) == 2 and np.allclose(w, 0.5)) or (
                len(w) == 4 and np.allclose(w, 0.25)
            )
            assert ok, f"unexpected hanging weights {w}"


class TestMesh:
    def test_requires_balance(self):
        t = uniform_tree(2, 1)
        targets = t.levels.copy()
        targets[0] = 3
        unbalanced = refine(t, targets)
        with pytest.raises(ValueError):
            Mesh(unbalanced)
        m = Mesh.from_tree(unbalanced)  # balances internally
        assert m.n_elems >= len(unbalanced)

    def test_boundary_masks(self):
        m = Mesh.from_tree(uniform_tree(2, 2))
        nb = m.boundary_dof_mask()
        # 2D level-2 grid: 5x5 nodes, 16 on the boundary.
        assert int(nb.sum()) == 16
        left = m.face_dof_mask(0, 0)
        assert int(left.sum()) == 5
        xy = m.dof_xy()
        assert np.all(xy[left][:, 0] == 0.0)

    def test_gather_scatter_adjoint(self):
        """elem_scatter is the exact transpose of elem_gather."""
        m = random_mesh(3, 2)
        rng = np.random.default_rng(4)
        u = rng.standard_normal(m.n_dofs)
        w = rng.standard_normal((m.n_elems, 1 << m.dim))
        lhs = float(np.sum(m.elem_gather(u) * w))
        rhs = float(u @ m.elem_scatter(w))
        assert np.isclose(lhs, rhs, rtol=1e-12)

    @pytest.mark.parametrize("dim", [2, 3])
    def test_evaluate_at_reproduces_linears(self, dim):
        m = random_mesh(5, dim)

        def f(x):
            return 2.0 * x[:, 0] - (x[:, 1] if dim > 1 else 0) + 0.25

        u = m.interpolate(f)
        rng = np.random.default_rng(6)
        pts = rng.random((50, dim))
        vals = m.evaluate_at(u, pts)
        assert np.allclose(vals, f(pts), atol=1e-10)

    def test_mesh_from_field(self):
        def phi(x):
            return np.linalg.norm(x - 0.5, axis=1) - 0.25

        m = mesh_from_field(phi, 2, max_level=5, min_level=2, threshold=0.02)
        assert m.tree.levels.max() == 5
        assert m.n_dofs > 0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2000), dim=st.sampled_from([2, 3]))
def test_property_partition_of_unity(seed, dim):
    """P rows always sum to 1 and constants are reproduced exactly."""
    m = random_mesh(seed, dim, max_level=3)
    ones = np.ones(m.n_dofs)
    assert np.allclose(m.node_values(ones), 1.0)
    # Element gather of the constant is constant.
    assert np.allclose(m.elem_gather(ones), 1.0)
