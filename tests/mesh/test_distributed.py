"""Tests for the distributed elemental kernels (ghost exchange, MATVEC,
distributed erosion/dilation) against their serial counterparts."""

import numpy as np
import pytest

from repro.core.erode_dilate import Stage, erode_dilate
from repro.core.threshold import threshold_octree
from repro.fem.matvec import apply_elemental
from repro.fem.operators import mass_matrix, stiffness_matrix
from repro.mesh.distributed import DistributedField
from repro.mesh.mesh import Mesh
from repro.mpi.comm import run_spmd
from repro.mpi.stats import CommStats
from repro.octree.build import uniform_tree


def drop_phi(x, center=(0.5, 0.5), radius=0.25, eps=0.02):
    d = np.linalg.norm(x - np.asarray(center), axis=-1) - radius
    return np.tanh(d / (np.sqrt(2) * eps))


@pytest.fixture(scope="module")
def mesh():
    return Mesh.from_tree(uniform_tree(2, 4))


class TestOwnership:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_every_node_owned_once(self, mesh, nprocs):
        def fn(comm):
            df = DistributedField(comm, mesh)
            return df.owned

        outs = run_spmd(nprocs, fn)
        allnodes = np.concatenate(outs)
        assert len(allnodes) == mesh.n_nodes
        assert len(np.unique(allnodes)) == mesh.n_nodes

    def test_elements_cover_all(self, mesh):
        def fn(comm):
            df = DistributedField(comm, mesh)
            return df.elem_hi - df.elem_lo

        outs = run_spmd(3, fn)
        assert sum(outs) == mesh.n_elems


class TestGhostExchange:
    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_ghost_read_matches_global(self, mesh, nprocs):
        rng = np.random.default_rng(0)
        global_vals = rng.standard_normal(mesh.n_nodes)

        def fn(comm):
            df = DistributedField(comm, mesh)
            full = df.ghost_read(df.from_global(global_vals))
            return np.allclose(full, global_vals[df.needed])

        assert all(run_spmd(nprocs, fn))

    def test_ghost_write_add(self, mesh):
        """Each rank adds 1 to every needed node; owners see the touch count."""

        def fn(comm):
            df = DistributedField(comm, mesh)
            ones = np.ones(len(df.needed))
            own0 = ones[np.searchsorted(df.needed, df.owned)]
            out = df.ghost_write(ones, own0, mode="add")
            return (df.owned, out)

        outs = run_spmd(3, fn)
        count = np.zeros(mesh.n_nodes)
        for ids, vals in outs:
            count[ids] = vals
        # A node is counted once per rank that needs it: >= 1 everywhere.
        assert count.min() >= 1
        assert count.max() <= 3


class TestDistributedMatvec:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4])
    def test_matches_serial_on_uniform_mesh(self, mesh, nprocs):
        Ke = stiffness_matrix(mesh.elem_h(), 2) + mass_matrix(mesh.elem_h(), 2)
        rng = np.random.default_rng(1)
        u = rng.standard_normal(mesh.n_dofs)  # uniform: nodes == dofs
        serial = apply_elemental(mesh, Ke, u)

        def fn(comm):
            df = DistributedField(comm, mesh)
            out = df.matvec(Ke[df.elem_lo : df.elem_hi], df.from_global(u))
            return (df.owned, out)

        outs = run_spmd(nprocs, fn)
        got = np.zeros(mesh.n_nodes)
        for ids, vals in outs:
            got[ids] = vals
        assert np.allclose(got, serial, atol=1e-12)

    @pytest.mark.parametrize("nprocs", [1, 3])
    def test_matrix_free_matches_batched(self, mesh, nprocs):
        """Per-element on-the-fly assembly == precomputed Ke batch, bitwise.

        A NumPy-fallback-path invariant (the JIT kernels reassociate the
        two paths differently and only agree to round-off; JIT-vs-fallback
        parity lives in ``tests/fem/test_kernels.py``), so pin it under
        ``kernels.fallback_only()`` regardless of host Numba."""
        from repro.fem import kernels

        Ke = stiffness_matrix(mesh.elem_h(), 2)
        rng = np.random.default_rng(2)
        u = rng.standard_normal(mesh.n_nodes)

        def fn(comm):
            df = DistributedField(comm, mesh)
            batched = df.matvec(Ke[df.elem_lo : df.elem_hi], df.from_global(u))
            mf = df.matvec_matrix_free(df.from_global(u))
            return np.array_equal(batched, mf)

        # The force-fallback depth is process-global, so one scope covers
        # every rank of the SPMD run.
        with kernels.fallback_only():
            assert all(run_spmd(nprocs, fn))

    def test_traffic_counted(self, mesh):
        stats = CommStats()
        Ke = mass_matrix(mesh.elem_h(), 2)
        u = np.ones(mesh.n_dofs)

        def fn(comm):
            df = DistributedField(comm, mesh)
            df.matvec(Ke[df.elem_lo : df.elem_hi], df.from_global(u))

        run_spmd(4, fn, stats=stats)
        snap = stats.snapshot()
        assert snap["messages"] > 0
        assert snap["bytes_sent"] > 0


class TestDistributedErodeDilate:
    @pytest.mark.parametrize("nprocs", [2, 4])
    @pytest.mark.parametrize("stage", [Stage.EROSION, Stage.DILATION])
    def test_matches_serial(self, mesh, nprocs, stage):
        phi = mesh.interpolate(lambda x: drop_phi(x))
        bw = threshold_octree(phi, -0.8)
        serial = erode_dilate(mesh, bw, stage, 2)

        def fn(comm):
            df = DistributedField(comm, mesh)
            owned = df.from_global(bw)  # uniform mesh: node vec == dof vec
            wait = np.zeros(df.elem_hi - df.elem_lo, dtype=np.int64)
            counters = np.zeros_like(wait)
            for _ in range(2):
                owned = df.erode_dilate_step(owned, stage.value, wait, counters)
            return (df.owned, owned)

        outs = run_spmd(nprocs, fn)
        got = np.zeros(mesh.n_nodes)
        for ids, vals in outs:
            got[ids] = vals
        assert np.array_equal(got, serial)

    def test_stale_ghosts_do_not_overwrite(self, mesh):
        """A rank that doesn't trigger must not push stale reads over a
        neighbor's fresh erosion (INSERT push-mask semantics)."""
        phi = mesh.interpolate(lambda x: drop_phi(x, center=(0.15, 0.15), radius=0.1))
        bw = threshold_octree(phi, -0.8)
        serial = erode_dilate(mesh, bw, Stage.EROSION, 1)

        def fn(comm):
            df = DistributedField(comm, mesh)
            owned = df.from_global(bw)
            wait = np.zeros(df.elem_hi - df.elem_lo, dtype=np.int64)
            counters = np.zeros_like(wait)
            owned = df.erode_dilate_step(owned, -1.0, wait, counters)
            return (df.owned, owned)

        outs = run_spmd(4, fn)
        got = np.zeros(mesh.n_nodes)
        for ids, vals in outs:
            got[ids] = vals
        assert np.array_equal(got, serial)
